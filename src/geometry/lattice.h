/**
 * @file
 * Lattice algebra: extended gcd, Bezout certificates for vectors, and
 * unimodular completion of a primitive vector.
 *
 * The d-dimensional generalization of the paper's 2-D mapping-vector
 * construction (Section 4.1) rests on these: a prime occupancy vector
 * ~ov is completed to a unimodular basis, and the quotient lattice
 * Z^d / Z*ov becomes the storage index space.
 */

#ifndef UOV_GEOMETRY_LATTICE_H
#define UOV_GEOMETRY_LATTICE_H

#include <cstdint>

#include "geometry/ivec.h"
#include "geometry/matrix.h"

namespace uov {

/** Result of the extended Euclidean algorithm: a*x + b*y == g. */
struct ExtGcd
{
    int64_t g; ///< gcd(a, b), non-negative
    int64_t x; ///< Bezout coefficient of a
    int64_t y; ///< Bezout coefficient of b
};

/** Extended Euclid; g == gcd(a,b) >= 0 and a*x + b*y == g. */
ExtGcd extGcd(int64_t a, int64_t b);

/**
 * Bezout certificate for a vector: returns alpha with
 * alpha.dot(v) == content(v).
 * @pre v is not the zero vector
 */
IVec bezoutVector(const IVec &v);

/**
 * Unimodular completion: given a primitive vector v (content 1),
 * returns a d x d unimodular matrix U such that U * v == e_0 (the
 * first standard basis vector).
 *
 * Rows 1..d-1 of U then form a projection Z^d -> Z^{d-1} whose kernel
 * is exactly the lattice line Z*v -- the key to d-dimensional OV
 * storage mappings.
 *
 * @pre v.content() == 1
 */
IMatrix unimodularCompletion(const IVec &v);

/**
 * Solve a * x == c (mod m) for x in [0, m).
 * @pre m > 0 and gcd(a, m) divides c
 */
int64_t solveCongruence(int64_t a, int64_t c, int64_t m);

} // namespace uov

#endif // UOV_GEOMETRY_LATTICE_H
