#include "schedule/executor.h"

#include "geometry/polyhedron.h"
#include "support/error.h"

namespace uov {

namespace {

/** SplitMix64-style avalanche; the executor's mixing primitive. */
uint64_t
mix64(uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
hashPoint(const IVec &q)
{
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (size_t c = 0; c < q.dim(); ++c)
        h = mix64(h ^ (static_cast<uint64_t>(q[c]) + 0xabcdef123ULL * c));
    return h;
}

bool
inBox(const IVec &p, const IVec &lo, const IVec &hi)
{
    for (size_t c = 0; c < p.dim(); ++c)
        if (p[c] < lo[c] || p[c] > hi[c])
            return false;
    return true;
}

} // namespace

StencilComputation::StencilComputation(Stencil s)
    : stencil(std::move(s)),
      boundary([](const IVec &p) { return hashPoint(p); })
{
}

StencilComputation::StencilComputation(Stencil s, BoundaryFn b)
    : stencil(std::move(s)), boundary(std::move(b))
{
    UOV_REQUIRE(boundary, "null boundary function");
}

uint64_t
StencilComputation::combine(const IVec &q,
                            const std::vector<uint64_t> &inputs) const
{
    UOV_CHECK(inputs.size() == stencil.size(),
              "combine expects one input per dependence");
    uint64_t acc = hashPoint(q);
    for (uint64_t in : inputs)
        acc = mix64(acc ^ in);
    return acc;
}

ExpandedArray<uint64_t>
computeReference(const StencilComputation &comp, const IVec &lo,
                 const IVec &hi)
{
    ExpandedArray<uint64_t> values(lo, hi);
    LexSchedule order = LexSchedule::identity(lo.dim());
    std::vector<uint64_t> inputs(comp.stencil.size());
    order.forEach(lo, hi, [&](const IVec &q) {
        for (size_t i = 0; i < comp.stencil.size(); ++i) {
            IVec p = q - comp.stencil.dep(i);
            inputs[i] = inBox(p, lo, hi) ? values.at(p)
                                         : comp.boundary(p);
        }
        values.at(q) = comp.combine(q, inputs);
    });
    return values;
}

ExecutionResult
runWithOvStorage(const StencilComputation &comp, const Schedule &schedule,
                 const IVec &lo, const IVec &hi, const IVec &ov,
                 ModLayout layout)
{
    ExpandedArray<uint64_t> ref = computeReference(comp, lo, hi);

    StorageMapping sm =
        StorageMapping::create(ov, Polyhedron::box(lo, hi), layout);
    CheckedOVArray<uint64_t> store(std::move(sm));

    ExecutionResult result;
    result.schedule_name = schedule.name();

    std::vector<uint64_t> inputs(comp.stencil.size());
    schedule.forEach(lo, hi, [&](const IVec &q) {
        for (size_t i = 0; i < comp.stencil.size(); ++i) {
            IVec p = q - comp.stencil.dep(i);
            inputs[i] = inBox(p, lo, hi) ? store.read(q, p)
                                         : comp.boundary(p);
        }
        uint64_t value = comp.combine(q, inputs);
        store.write(q, value);
        ++result.points;
        result.checksum += value; // commutative fold
        if (value != ref.at(q))
            ++result.mismatches;
    });
    result.clobbers = store.violations().size();
    return result;
}

ExecutionResult
runWithExpandedStorage(const StencilComputation &comp,
                       const Schedule &schedule, const IVec &lo,
                       const IVec &hi)
{
    ExpandedArray<uint64_t> ref = computeReference(comp, lo, hi);
    ExpandedArray<uint64_t> store(lo, hi);

    ExecutionResult result;
    result.schedule_name = schedule.name();

    std::vector<uint64_t> inputs(comp.stencil.size());
    schedule.forEach(lo, hi, [&](const IVec &q) {
        for (size_t i = 0; i < comp.stencil.size(); ++i) {
            IVec p = q - comp.stencil.dep(i);
            inputs[i] = inBox(p, lo, hi) ? store.at(p)
                                         : comp.boundary(p);
        }
        uint64_t value = comp.combine(q, inputs);
        store.at(q) = value;
        ++result.points;
        result.checksum += value;
        if (value != ref.at(q))
            ++result.mismatches;
    });
    return result;
}

} // namespace uov
