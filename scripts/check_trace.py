#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by uov's tracer.

Checks, per thread (pid, tid):

  * every event carries the required fields (name, ph, pid, tid, and
    a numeric ts for non-metadata phases);
  * B/E pairs are balanced and properly nested (an E always matches
    the innermost open B of the same name);
  * timestamps are monotonically non-decreasing in file order.

Usage:
    check_trace.py TRACE.json [TRACE2.json ...]
    some-producer | check_trace.py -

Exit status 0 when every input passes, 1 otherwise.  Prints one
summary line per input so CI logs show what was validated.
"""

import json
import sys

KNOWN_PHASES = {"B", "E", "C", "i", "I", "M", "X"}


def check_events(events, label):
    errors = []
    open_spans = {}  # (pid, tid) -> stack of begin names
    last_ts = {}     # (pid, tid) -> last timestamp seen
    counted = 0

    for n, e in enumerate(events):
        where = f"{label}: event {n}"
        if not isinstance(e, dict):
            errors.append(f"{where}: not an object")
            continue
        for field in ("name", "ph", "pid", "tid"):
            if field not in e:
                errors.append(f"{where}: missing '{field}'")
        ph = e.get("ph")
        if ph not in KNOWN_PHASES:
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        if ph == "M":
            continue  # metadata carries no timestamp
        counted += 1

        ts = e.get("ts")
        if not isinstance(ts, (int, float)):
            errors.append(f"{where}: missing numeric 'ts'")
            continue
        key = (e.get("pid"), e.get("tid"))
        if key in last_ts and ts < last_ts[key]:
            errors.append(
                f"{where}: ts {ts} < previous {last_ts[key]} "
                f"on tid {key[1]}"
            )
        last_ts[key] = ts

        if ph == "B":
            open_spans.setdefault(key, []).append(e["name"])
        elif ph == "E":
            stack = open_spans.get(key, [])
            if not stack:
                errors.append(
                    f"{where}: E '{e.get('name')}' with no open span "
                    f"on tid {key[1]}"
                )
            else:
                top = stack.pop()
                # uov's exporter emits E events named like their B;
                # a name mismatch means interleaved (non-nested) spans.
                if e.get("name") not in (None, top):
                    errors.append(
                        f"{where}: E '{e.get('name')}' closes "
                        f"B '{top}' on tid {key[1]}"
                    )

    for (pid, tid), stack in open_spans.items():
        if stack:
            errors.append(
                f"{label}: {len(stack)} unclosed span(s) on "
                f"tid {tid}: {', '.join(stack)}"
            )
    return counted, errors


def check_file(path):
    label = "<stdin>" if path == "-" else path
    try:
        if path == "-":
            doc = json.load(sys.stdin)
        else:
            with open(path, "r", encoding="utf-8") as f:
                doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{label}: unreadable: {e}"]

    if isinstance(doc, dict):
        events = doc.get("traceEvents")
    elif isinstance(doc, list):
        events = doc  # bare-array variant chrome://tracing also loads
    else:
        events = None
    if not isinstance(events, list):
        return [f"{label}: no traceEvents array"]

    counted, errors = check_events(events, label)
    if not errors:
        threads = len({(e.get("pid"), e.get("tid"))
                       for e in events
                       if isinstance(e, dict) and e.get("ph") != "M"})
        print(f"{label}: OK ({counted} events, {threads} thread(s))")
    return errors


def main(argv):
    if len(argv) < 2 or argv[1] in ("--help", "-h"):
        print(__doc__.strip())
        return 0 if len(argv) >= 2 else 1
    failures = []
    for path in argv[1:]:
        failures.extend(check_file(path))
    for msg in failures:
        print(f"check_trace: {msg}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
