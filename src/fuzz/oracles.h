/**
 * @file
 * Differential oracles: every answer the system produces, recomputed
 * a second (and third) way, on inputs nobody hand-picked.
 *
 * The paper's claims are equivalences, so each oracle cross-checks
 * independent implementations of the same mathematical object and
 * reports the first disagreement as a human-readable discrepancy:
 *
 *  - Membership: UovOracle::isUov vs a forward-closure brute-force
 *    cone enumeration vs DONE/DEAD (UOV(V) = { q - p | p in
 *    DEAD(V, q) }) vs independent certificate re-verification.
 *  - Search: branch-and-bound vs exhaustive ball search, for both
 *    objectives, and vs the FIFO / no-bound-shrinking ablations.
 *  - Mapping: OV/modular storage mappings executed under random legal
 *    schedules with writer-tracked storage -- no live value may be
 *    overwritten, for both mod-class layouts.
 *  - Streaming: fused StreamingSim vs record-then-replay vs a direct
 *    SimMem run on fuzzed kernel configurations, all statistics
 *    bit-identical.
 *  - Service: the canonicalizing, caching, single-flight QueryService
 *    answered through the batch executor at several thread counts and
 *    cache configurations vs the single-threaded direct core/search
 *    path, responses byte-identical and cache metrics reconciled.
 *  - Codegen: generated C kernels JIT-compiled with the host compiler
 *    and executed, bit-exact against the C++ interpreter oracle for
 *    every schedule x storage variant (skipped when the environment
 *    has no C compiler).
 *  - Tune: the joint autotuner run under the deterministic simulator
 *    evaluator -- every evaluated candidate must be legal (schedule
 *    validates, OV-mapped vectors re-verified with the exact UOV
 *    oracle), repeated runs must agree byte-for-byte, a 0 ms deadline
 *    must still return a legal certified Degraded best, and (with a
 *    host compiler) JIT-measured candidates are bit-exact against the
 *    interpreter by construction.
 *  - Durability: the persistent result store under injected write and
 *    fsync failures, byte-level crash truncation, and corruption --
 *    the reopened log is always exactly the acknowledged appends or a
 *    checksummed prefix of them; a restarted service replays its
 *    batch byte-identically with zero searches; shed responses are
 *    certified answers and the response classes reconcile.
 *
 * An oracle returns std::nullopt when every cross-check agrees, or a
 * description of the first discrepancy.  Exceptions escaping an
 * oracle are also bugs (the harness catches and reports them).
 */

#ifndef UOV_FUZZ_ORACLES_H
#define UOV_FUZZ_ORACLES_H

#include <optional>
#include <string>
#include <vector>

#include "core/stencil.h"
#include "fuzz/generator.h"
#include "geometry/ivec.h"

namespace uov {
namespace fuzz {

/**
 * One reproducible stencil-shaped fuzz input.  Dependences are stored
 * as a raw vector (not a Stencil) so the shrinker can propose
 * mutations and validate them by attempted construction.
 */
struct FuzzCase
{
    uint64_t seed = 0;          ///< case seed (0 for corpus cases)
    std::vector<IVec> deps;     ///< stencil dependence vectors
    std::vector<IVec> candidates; ///< membership candidates
    IVec lo;                    ///< ISG box low corner
    IVec hi;                    ///< ISG box high corner

    /** Construct the stencil. @throws UovUserError when invalid */
    Stencil stencil() const { return Stencil(deps); }

    /** True iff deps form a valid stencil and the box is non-empty. */
    bool valid() const;

    std::string str() const;
};

/** Regenerate the case a seed denotes (the repro contract). */
FuzzCase makeCase(uint64_t case_seed, const GenOptions &opt = {});

/** Build a case from a parsed nest (corpus replay; seed stays 0). */
FuzzCase caseFromNest(const LoopNest &nest);

/** A discrepancy description, or nullopt when all checks agree. */
using OracleVerdict = std::optional<std::string>;

OracleVerdict checkMembership(const FuzzCase &c);
OracleVerdict checkSearch(const FuzzCase &c);
OracleVerdict checkMapping(const FuzzCase &c);
OracleVerdict checkService(const FuzzCase &c);

/**
 * Fault-injection oracle: replays a batch (presentations of the case
 * stencil plus deliberately bad lines) through the service under
 * seed-derived fail-point configurations and per-request deadlines.
 * Asserts the robustness contract rather than exact answers: every
 * request draws exactly one response, in order; every answer line
 * carries an isUov-verified vector no worse than ov_o; the
 * optimal/degraded/request_errors counters sum to the batch size;
 * and with fail points disabled, deadline 0 and unbounded batches
 * stay byte-identical to the direct path.
 */
OracleVerdict checkFault(const FuzzCase &c);

/**
 * The streaming oracle draws its own kernel configuration (stencil5
 * or PSM, sizes, variant) from the seed; it has no stencil-shaped
 * input to shrink.
 */
OracleVerdict checkStreaming(uint64_t case_seed);

/**
 * Native-codegen oracle: realize the case stencil as a
 * single-statement nest over a clamped box, run the C++ interpreter
 * as ground truth, then generate, JIT-compile, and execute every
 * applicable (schedule, storage) kernel variant and compare outputs
 * bit-exactly.  Also asserts the OV-mapped temporary is sized exactly
 * mapping.cellCount().  Returns nullopt without checking anything
 * when no host C compiler is on PATH (the skip is graceful by
 * design: sanitizer CI images may lack one), or when the planning
 * pipeline rejects the case shape (not a codegen bug).
 */
OracleVerdict checkCodegen(const FuzzCase &c);

/**
 * Autotuner oracle: run the joint (UOV, schedule, factors) tuner on
 * the case stencil over a clamped box with the deterministic
 * simulator evaluator and assert its contracts -- every evaluated
 * candidate is legal (ScheduleBuilder::validate passes; an OV-mapped
 * candidate's vector is a true UOV with ov[0] >= 1), two identical
 * runs agree on the candidate space, every score, and the winner, and
 * a 0 ms deadline still yields a legal best tagged Degraded with at
 * least candidate 0 evaluated.  When a host C compiler is available a
 * small lowerable-only JIT-evaluated tune also runs; JitEvaluator
 * verifies every measured kernel bit-exactly against the interpreter
 * internally, so any divergence surfaces as a thrown discrepancy.
 * Returns nullopt without checking anything when the planning
 * pipeline rejects the case shape (not a tuner bug).
 */
OracleVerdict checkTune(const FuzzCase &c);

/**
 * Durability oracle: drives the persistent ResultStore and the
 * admission-control shed path through seed-derived crashes and write
 * failures.  Asserts the recovery contract rather than liveness:
 * with `store_write`/`store_fsync` fail points armed, the reopened
 * log holds exactly the acknowledged appends (rolled-back appends
 * leave no trace); a simulated kill -9 (the log truncated at an
 * arbitrary byte) or a flipped byte reopens to a checksummed *prefix*
 * of the acknowledged sequence, repaired idempotently; a restarted
 * QueryService over the store answers the same batch byte-identically
 * with zero branch-and-bound searches; an unopenable store degrades
 * to storeless service, not an outage; and every shed response is a
 * certified isUov answer no worse than ov_o with the
 * optimal/degraded/error counters still reconciling.
 */
OracleVerdict checkDurability(const FuzzCase &c);

/**
 * Independent reference for non-negative integer cone membership:
 * forward closure from the origin over h-levels of the positive
 * functional (a different algorithm from ConeSolver's memoized
 * backward search).  nullopt when the stencil has no exact positive
 * functional (the closure cannot be bounded).
 */
std::optional<bool> bruteForceConeContains(const Stencil &stencil,
                                           const IVec &target);

} // namespace fuzz
} // namespace uov

#endif // UOV_FUZZ_ORACLES_H
