#include "sim/trace.h"

#include <sstream>
#include <unordered_set>

#include "support/error.h"
#include "support/table.h"

namespace uov {

void
Trace::reserve(size_t n)
{
    size_t want = (n + kChunkEvents - 1) / kChunkEvents;
    while (_chunks.size() < want) {
        _chunks.emplace_back();
        _chunks.back().reserve(kChunkEvents);
    }
}

uint64_t
Trace::footprintBytes(int64_t line_bytes) const
{
    UOV_REQUIRE(line_bytes > 0, "line size must be positive");
    std::unordered_set<uint64_t> lines;
    forEach([&](const TraceEvent &e) {
        TraceEvent::Kind k = e.kind();
        if (k == TraceEvent::Kind::Load || k == TraceEvent::Kind::Store)
            lines.insert(e.addr() / static_cast<uint64_t>(line_bytes));
    });
    return lines.size() * static_cast<uint64_t>(line_bytes);
}

double
Trace::replay(MemorySystem &ms) const
{
    forEach([&](const TraceEvent &e) {
        switch (e.kind()) {
          case TraceEvent::Kind::Load:
            ms.access(e.addr(), false);
            break;
          case TraceEvent::Kind::Store:
            ms.access(e.addr(), true);
            break;
          case TraceEvent::Kind::Branch:
            ms.branch();
            break;
          case TraceEvent::Kind::Compute:
            ms.compute(e.computeCycles());
            break;
        }
    });
    return ms.cycles();
}

std::string
Trace::summary() const
{
    std::ostringstream oss;
    oss << formatCount(static_cast<int64_t>(size())) << " events ("
        << formatCount(static_cast<int64_t>(loadCount())) << " loads, "
        << formatCount(static_cast<int64_t>(storeCount()))
        << " stores, "
        << formatCount(static_cast<int64_t>(branchCount()))
        << " branches), footprint "
        << formatCount(static_cast<int64_t>(footprintBytes()))
        << " bytes";
    return oss.str();
}

} // namespace uov
