#include "core/cone_pruner.h"

#include <algorithm>
#include <cmath>

#include "support/checked.h"

namespace uov {

namespace {

/// Safety factor: lower bounds shrink slightly so floating-point error
/// can never over-prune.
constexpr double kSafety = 0.999;

double
distSquaredPointToRay(double px, double py, double ex, double ey)
{
    double e2 = ex * ex + ey * ey;
    double t = (px * ex + py * ey) / e2;
    if (t < 0)
        t = 0;
    double dx = px - t * ex;
    double dy = py - t * ey;
    return dx * dx + dy * dy;
}

} // namespace

ConePruner::ConePruner(const Stencil &stencil)
    : _dim(stencil.dim()), _exact2d(stencil.dim() == 2)
{
    if (_exact2d) {
        auto [lo, hi] = stencil.extremeVectors2D();
        _ray_lo = lo;
        _ray_hi = hi;
    }

    // Dual functionals valid in any dimension: coordinate axes on which
    // all dependences share a sign, and the exact positive functional.
    for (size_t c = 0; c < _dim; ++c) {
        if (stencil.allNonNegativeInCoord(c)) {
            IVec u(_dim);
            u[c] = 1;
            _dualFunctionals.push_back(u);
        }
        if (stencil.allNonPositiveInCoord(c)) {
            IVec u(_dim);
            u[c] = -1;
            _dualFunctionals.push_back(u);
        }
    }
    if (auto h = stencil.positiveFunctional())
        _dualFunctionals.push_back(*h);
}

double
ConePruner::minReachableNormSquared(const IVec &w) const
{
    if (_exact2d) {
        // min |w + c| over the real cone = distance from -w to the cone
        // spanned by the extreme rays.
        double px = -static_cast<double>(w[0]);
        double py = -static_cast<double>(w[1]);
        double lox = static_cast<double>(_ray_lo[0]);
        double loy = static_cast<double>(_ray_lo[1]);
        double hix = static_cast<double>(_ray_hi[0]);
        double hiy = static_cast<double>(_ray_hi[1]);

        // -w inside the cone?  The cone is salient (all dependences in
        // the lexicographic half-plane), so "between the extreme rays"
        // is two cross-product tests -- except in the degenerate
        // single-ray case, where the sign along the ray decides.
        double cross_lo = lox * py - loy * px; // lo x p >= 0: p ccw of lo
        double cross_hi = px * hiy - py * hix; // p x hi >= 0: p cw of hi
        bool degenerate = (lox * hiy - loy * hix) == 0;
        if (degenerate) {
            if (cross_lo == 0 && px * lox + py * loy >= 0)
                return 0.0;
        } else if (cross_lo >= 0 && cross_hi >= 0) {
            return 0.0;
        }
        double d = std::min(distSquaredPointToRay(px, py, lox, loy),
                            distSquaredPointToRay(px, py, hix, hiy));
        return d * kSafety;
    }

    // General dimension: |w + c| >= u.(w + c)/|u| >= u.w/|u| for any
    // dual functional u (u.c >= 0 on the cone).
    double best = 0.0;
    for (const auto &u : _dualFunctionals) {
        double uw = 0.0, uu = 0.0;
        for (size_t i = 0; i < _dim; ++i) {
            uw += static_cast<double>(u[i]) * static_cast<double>(w[i]);
            uu += static_cast<double>(u[i]) * static_cast<double>(u[i]);
        }
        if (uw <= 0)
            continue;
        best = std::max(best, uw * uw / uu);
    }
    return best * kSafety;
}

} // namespace uov
