/**
 * @file
 * Memory-access policies for the kernels.
 *
 * Every kernel variant (Section 5's natural / OV-mapped / tiled /
 * storage-optimized codes) is written once, templated on a policy:
 *
 *   NativeMem -- direct array access, zero overhead; used for
 *                wall-clock benchmarking on the host.
 *   SimMem    -- every load/store/branch is replayed through a
 *                MemorySystem; used to reproduce the paper's
 *                cycles-per-iteration curves on the simulated 1998
 *                machines.
 *
 * SimBuffer couples real storage with a stable virtual address range
 * from a VirtualArena so the simulated address stream reflects the
 * kernel's actual layout (including OV interleaving).
 */

#ifndef UOV_SIM_MEMORY_POLICY_H
#define UOV_SIM_MEMORY_POLICY_H

#include <cstdint>
#include <vector>

#include "sim/machine.h"
#include "support/error.h"

namespace uov {

/** Hands out non-overlapping virtual address ranges. */
class VirtualArena
{
  public:
    /** Reserve @p bytes aligned to @p align; returns the base address. */
    uint64_t
    allocate(uint64_t bytes, uint64_t align = 64)
    {
        UOV_REQUIRE(align > 0 && (align & (align - 1)) == 0,
                    "alignment must be a power of two");
        _next = (_next + align - 1) & ~(align - 1);
        uint64_t base = _next;
        _next += bytes;
        return base;
    }

  private:
    uint64_t _next = 1 << 20; // keep address 0 unused
};

/** Real storage plus its simulated address range. */
template <typename T>
class SimBuffer
{
  public:
    SimBuffer(VirtualArena &arena, size_t count, T fill = T{})
        : _data(count, fill),
          _base(arena.allocate(count * sizeof(T)))
    {
    }

    size_t size() const { return _data.size(); }
    T *data() { return _data.data(); }
    const T *data() const { return _data.data(); }

    uint64_t
    addr(size_t i) const
    {
        return _base + i * sizeof(T);
    }

    T &operator[](size_t i) { return _data[i]; }
    const T &operator[](size_t i) const { return _data[i]; }

  private:
    std::vector<T> _data;
    uint64_t _base;
};

/** Zero-overhead policy for wall-clock runs. */
struct NativeMem
{
    template <typename T>
    inline T
    load(const SimBuffer<T> &b, size_t i)
    {
        return b.data()[i];
    }

    template <typename T>
    inline void
    store(SimBuffer<T> &b, size_t i, T v)
    {
        b.data()[i] = v;
    }

    inline void branch() {}
    inline void compute(double) {}
};

/** Trace-replay policy for the simulated machines. */
struct SimMem
{
    MemorySystem *ms;

    template <typename T>
    inline T
    load(const SimBuffer<T> &b, size_t i)
    {
        ms->access(b.addr(i), false);
        return b.data()[i];
    }

    template <typename T>
    inline void
    store(SimBuffer<T> &b, size_t i, T v)
    {
        ms->access(b.addr(i), true);
        b.data()[i] = v;
    }

    inline void branch() { ms->branch(); }
    inline void compute(double c) { ms->compute(c); }
};

} // namespace uov

#endif // UOV_SIM_MEMORY_POLICY_H
