#include "schedule/legality.h"

#include <unordered_map>

#include "support/checked.h"
#include "support/error.h"

namespace uov {

bool
permutationLegal(const std::vector<size_t> &perm, const Stencil &stencil)
{
    UOV_REQUIRE(perm.size() == stencil.dim(), "permutation rank mismatch");
    for (const auto &v : stencil.deps()) {
        IVec permuted(v.dim());
        for (size_t k = 0; k < perm.size(); ++k)
            permuted[k] = v[perm[k]];
        if (!permuted.isLexPositive())
            return false;
    }
    return true;
}

bool
transformLegal(const IMatrix &transform, const Stencil &stencil)
{
    UOV_REQUIRE(transform.cols() == stencil.dim(),
                "transform rank mismatch");
    for (const auto &v : stencil.deps()) {
        if (!(transform * v).isLexPositive())
            return false;
    }
    return true;
}

bool
tilingLegal(const IMatrix &transform, const Stencil &stencil)
{
    UOV_REQUIRE(transform.cols() == stencil.dim(),
                "transform rank mismatch");
    for (const auto &v : stencil.deps()) {
        IVec t = transform * v;
        bool nonneg = true;
        for (size_t c = 0; c < t.dim(); ++c)
            if (t[c] < 0)
                nonneg = false;
        if (!nonneg || t.isZero())
            return false;
    }
    return true;
}

bool
wavefrontLegal(const IVec &h, const Stencil &stencil)
{
    UOV_REQUIRE(h.dim() == stencil.dim(), "wavefront rank mismatch");
    for (const auto &v : stencil.deps())
        if (h.dot(v) <= 0)
            return false;
    return true;
}

bool
scheduleRespectsStencil(const Schedule &schedule, const IVec &lo,
                        const IVec &hi, const Stencil &stencil)
{
    std::unordered_map<IVec, size_t, IVecHash> position;
    size_t counter = 0;
    bool duplicate = false;
    schedule.forEach(lo, hi, [&](const IVec &q) {
        if (!position.emplace(q, counter++).second)
            duplicate = true;
    });
    if (duplicate)
        return false;

    // Completeness: every box point visited.
    int64_t expected = 1;
    for (size_t c = 0; c < lo.dim(); ++c)
        expected = checkedMul(expected,
                              checkedAdd(checkedSub(hi[c], lo[c]), 1));
    if (static_cast<int64_t>(position.size()) != expected)
        return false;

    // Every in-box dependence edge satisfied.
    for (const auto &[q, pos] : position) {
        for (const auto &v : stencil.deps()) {
            auto it = position.find(q - v);
            if (it != position.end() && it->second >= pos)
                return false;
        }
    }
    return true;
}

bool
jamLegal(const std::vector<IVec> &dists, size_t jam_dim,
         int64_t factor)
{
    if (factor <= 1)
        return true;
    for (const IVec &d : dists) {
        bool outer_zero = true;
        for (size_t k = 0; k < jam_dim; ++k)
            if (d[k] != 0) {
                outer_zero = false;
                break;
            }
        if (!outer_zero)
            continue;
        if (d[jam_dim] < 1 || d[jam_dim] >= factor)
            continue;
        // Same jam block is possible; the inner suffix must not run
        // the consumer at an earlier inner point than the producer.
        for (size_t k = jam_dim + 1; k < d.dim(); ++k) {
            if (d[k] > 0)
                break; // lex-positive suffix: consumer later, fine
            if (d[k] < 0)
                return false; // lex-negative suffix: reordered
        }
    }
    return true;
}

IMatrix
skewToNonNegative(const Stencil &stencil)
{
    size_t d = stencil.dim();
    for (const auto &v : stencil.deps())
        UOV_REQUIRE(v[0] > 0,
                    "skewToNonNegative needs every dependence to "
                    "advance dimension 0; " << v.str() << " does not");

    IMatrix t = IMatrix::identity(d);
    for (size_t k = 1; k < d; ++k) {
        int64_t f = 0;
        for (const auto &v : stencil.deps()) {
            if (v[k] < 0)
                f = std::max(f, ceilDiv(-v[k], v[0]));
        }
        t(k, 0) = f;
    }
    // Postcondition: all transformed deps component-wise non-negative.
    for (const auto &v : stencil.deps()) {
        IVec tv = t * v;
        for (size_t c = 0; c < d; ++c)
            UOV_CHECK(tv[c] >= 0, "skew failed on " << v.str());
    }
    return t;
}

} // namespace uov
