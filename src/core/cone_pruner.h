/**
 * @file
 * Geometric pruning for the UOV search (Section 3.2.1, Figure 4).
 *
 * During the backward search, the offset w accumulated so far can only
 * grow by further stencil vectors: any candidate reachable from w has
 * the form w + c with c in the real cone spanned by V.  If even the
 * closest such point lies outside the current search radius, w is
 * pruned.  The reachable-region test {w : dist(-w, cone(V)) < R} is
 * exactly the paper's extreme-vector parallelepiped in 2-D, and a
 * conservative dual-functional bound in higher dimensions.
 */

#ifndef UOV_CORE_CONE_PRUNER_H
#define UOV_CORE_CONE_PRUNER_H

#include <optional>
#include <vector>

#include "core/stencil.h"
#include "geometry/ivec.h"

namespace uov {

/** Lower-bounds the distance from offsets to cone-reachable candidates. */
class ConePruner
{
  public:
    explicit ConePruner(const Stencil &stencil);

    /**
     * A lower bound on min over real c in cone(V) of |w + c|^2.
     * Exact in 2-D; conservative (possibly 0 = "cannot prune") in
     * higher dimensions.  Includes a small safety factor so floating
     * point can never prune a genuinely reachable candidate.
     */
    double minReachableNormSquared(const IVec &w) const;

    /** True iff no point within squared radius is reachable from w. */
    bool
    prune(const IVec &w, int64_t radius_squared) const
    {
        return minReachableNormSquared(w) >=
               static_cast<double>(radius_squared);
    }

  private:
    size_t _dim;
    bool _exact2d;
    IVec _ray_lo; ///< clockwise-most extreme dependence (2-D)
    IVec _ray_hi; ///< counter-clockwise-most extreme dependence (2-D)

    /** Dual functionals u with u . v >= 0 for every dependence. */
    std::vector<IVec> _dualFunctionals;
};

} // namespace uov

#endif // UOV_CORE_CONE_PRUNER_H
