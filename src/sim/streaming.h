/**
 * @file
 * Fused record-and-replay: stream one kernel pass into N machines.
 *
 * The scaling figures replay the same address stream through three
 * machine models.  Recording a trace and replaying it three times
 * materializes gigabytes for the 1e7-point sweeps; running the kernel
 * once per machine triples the kernel work.  StreamingSim is the
 * middle path: a memory policy that forwards every load, store,
 * branch, and compute hint directly into all attached MemorySystems
 * during a single kernel pass.  No trace is ever materialized, so
 * peak memory is the kernel's own working set -- independent of trace
 * length -- and each machine observes exactly the stream a dedicated
 * SimMem run would, so per-level statistics and cycle counts are
 * bit-identical to record-then-replay (a regression test asserts
 * this; the record/replay path stays for diffing and tests).
 */

#ifndef UOV_SIM_STREAMING_H
#define UOV_SIM_STREAMING_H

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/machine.h"
#include "sim/memory_policy.h"

namespace uov {

/**
 * Memory policy fanning each event out to N memory systems.  Holds
 * non-owning pointers; see MultiMachineSim for the owning wrapper.
 */
struct StreamingSim
{
    std::vector<MemorySystem *> systems;

    template <typename T>
    inline T
    load(const SimBuffer<T> &b, size_t i)
    {
        uint64_t a = b.addr(i);
        for (MemorySystem *ms : systems)
            ms->access(a, false);
        return b.data()[i];
    }

    template <typename T>
    inline void
    store(SimBuffer<T> &b, size_t i, T v)
    {
        uint64_t a = b.addr(i);
        for (MemorySystem *ms : systems)
            ms->access(a, true);
        b.data()[i] = v;
    }

    inline void
    branch()
    {
        for (MemorySystem *ms : systems)
            ms->branch();
    }

    inline void
    compute(double c)
    {
        for (MemorySystem *ms : systems)
            ms->compute(c);
    }
};

/**
 * Owns one MemorySystem per machine config and hands out the fused
 * policy over all of them.  Addresses stay stable for the wrapper's
 * lifetime, so the policy may be copied freely into kernel calls.
 */
class MultiMachineSim
{
  public:
    explicit MultiMachineSim(const std::vector<MachineConfig> &configs);

    size_t size() const { return _systems.size(); }
    MemorySystem &system(size_t i);
    const MemorySystem &system(size_t i) const;

    /** The fused policy feeding every owned system. */
    StreamingSim policy();

    /** Total events (accesses + branches) absorbed across systems. */
    uint64_t eventsProcessed() const;

    /**
     * Emit one "sim.machine.cycles" trace counter sample per owned
     * machine (series keys m0, m1, ...), so a traced sweep shows each
     * model's cycle total advancing chunk by chunk.  No-op while
     * tracing is disabled; machines past the eighth are not sampled
     * (counter keys must be static strings).
     */
    void traceCycleCounters() const;

    /** Cold-start every system. */
    void reset();

  private:
    std::vector<std::unique_ptr<MemorySystem>> _systems;
};

} // namespace uov

#endif // UOV_SIM_STREAMING_H
