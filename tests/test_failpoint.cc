/**
 * @file
 * Deadlines, cancellation tokens, and the fail-point registry.
 */

#include <gtest/gtest.h>

#include <thread>

#include "support/deadline.h"
#include "support/failpoint.h"

namespace uov {
namespace {

using failpoint::Action;
using failpoint::Config;
using failpoint::FailPointError;
using failpoint::Registry;
using failpoint::ScopedFailPoints;

// ---------------------------------------------------------------- //
// Deadline
// ---------------------------------------------------------------- //

TEST(Deadline, DefaultNeverExpires)
{
    Deadline d;
    EXPECT_FALSE(d.bounded());
    EXPECT_FALSE(d.expired());
    EXPECT_EQ(d.remainingMillis(), INT64_MAX);
    EXPECT_FALSE(Deadline::never().expired());
}

TEST(Deadline, NegativeMillisMeansUnbounded)
{
    Deadline d = Deadline::afterMillis(-1);
    EXPECT_FALSE(d.bounded());
    EXPECT_FALSE(d.expired());
}

TEST(Deadline, ZeroMillisExpiresImmediately)
{
    Deadline d = Deadline::afterMillis(0);
    EXPECT_TRUE(d.bounded());
    EXPECT_TRUE(d.expired());
    EXPECT_EQ(d.remainingMillis(), 0);
}

TEST(Deadline, FutureDeadlineIsNotExpired)
{
    Deadline d = Deadline::afterMillis(60'000);
    EXPECT_TRUE(d.bounded());
    EXPECT_FALSE(d.expired());
    EXPECT_GT(d.remainingMillis(), 0);
    EXPECT_LE(d.remainingMillis(), 60'000);
}

TEST(Deadline, ExplicitClockPoint)
{
    Deadline past = Deadline::at(Deadline::Clock::now() -
                                 std::chrono::milliseconds(5));
    EXPECT_TRUE(past.expired());
    EXPECT_EQ(past.remainingMillis(), 0);
}

// ---------------------------------------------------------------- //
// CancelToken
// ---------------------------------------------------------------- //

TEST(CancelToken, InertTokenNeverCancels)
{
    CancelToken t;
    EXPECT_FALSE(t.cancelled());
    t.requestCancel(); // no-op, must not crash
    EXPECT_FALSE(t.cancelled());
}

TEST(CancelToken, CopiesShareState)
{
    CancelToken t = CancelToken::make();
    CancelToken copy = t;
    EXPECT_FALSE(copy.cancelled());
    t.requestCancel();
    EXPECT_TRUE(copy.cancelled());
    EXPECT_TRUE(t.cancelled());
}

// ---------------------------------------------------------------- //
// Fail points
// ---------------------------------------------------------------- //

TEST(FailPoint, DisarmedSiteIsFree)
{
    ScopedFailPoints scope; // clears on exit
    EXPECT_NO_THROW(failpoint::fire("nowhere"));
    EXPECT_EQ(Registry::instance().fires("nowhere"), 0u);
}

TEST(FailPoint, CertainThrowFires)
{
    ScopedFailPoints scope;
    Config config;
    config.probability = 1.0;
    Registry::instance().arm("boom", config);
    EXPECT_THROW(failpoint::fire("boom"), FailPointError);
    EXPECT_THROW(failpoint::fire("boom"), FailPointError);
    EXPECT_EQ(Registry::instance().fires("boom"), 2u);
    EXPECT_EQ(Registry::instance().totalFires(), 2u);
    // Other sites stay disarmed.
    EXPECT_NO_THROW(failpoint::fire("quiet"));
}

TEST(FailPoint, ZeroProbabilityNeverFires)
{
    ScopedFailPoints scope;
    Config config;
    config.probability = 0.0;
    Registry::instance().arm("never", config);
    for (int i = 0; i < 100; ++i)
        EXPECT_NO_THROW(failpoint::fire("never"));
    EXPECT_EQ(Registry::instance().fires("never"), 0u);
}

TEST(FailPoint, SeededStreamIsDeterministic)
{
    auto run = [](uint64_t seed) {
        ScopedFailPoints scope;
        Config config;
        config.probability = 0.5;
        config.seed = seed;
        Registry::instance().arm("coin", config);
        std::string pattern;
        for (int i = 0; i < 32; ++i) {
            try {
                failpoint::fire("coin");
                pattern += '.';
            } catch (const FailPointError &) {
                pattern += 'X';
            }
        }
        return pattern;
    };
    std::string a = run(42);
    EXPECT_EQ(a, run(42));
    EXPECT_NE(a, run(43));
    // A fair-ish coin actually fired and actually missed.
    EXPECT_NE(a.find('X'), std::string::npos);
    EXPECT_NE(a.find('.'), std::string::npos);
}

TEST(FailPoint, DelayActionSleepsInsteadOfThrowing)
{
    ScopedFailPoints scope;
    Config config;
    config.probability = 1.0;
    config.action = Action::Delay;
    config.delay_ms = 1;
    Registry::instance().arm("slow", config);
    auto before = std::chrono::steady_clock::now();
    EXPECT_NO_THROW(failpoint::fire("slow"));
    auto elapsed = std::chrono::steady_clock::now() - before;
    EXPECT_GE(std::chrono::duration_cast<std::chrono::microseconds>(
                  elapsed)
                  .count(),
              900);
    EXPECT_EQ(Registry::instance().fires("slow"), 1u);
}

TEST(FailPoint, DisarmStopsFiringButKeepsCount)
{
    ScopedFailPoints scope;
    Config config;
    config.probability = 1.0;
    Registry::instance().arm("once", config);
    EXPECT_THROW(failpoint::fire("once"), FailPointError);
    Registry::instance().disarm("once");
    EXPECT_NO_THROW(failpoint::fire("once"));
    EXPECT_EQ(Registry::instance().fires("once"), 1u);
}

TEST(FailPoint, SpecParsing)
{
    ScopedFailPoints scope(
        "a:1,b:0.5:7:delay3,c:0:9:throw");
    auto sites = Registry::instance().armedSites();
    ASSERT_EQ(sites.size(), 3u);
    EXPECT_EQ(sites[0], "a");
    EXPECT_EQ(sites[1], "b");
    EXPECT_EQ(sites[2], "c");
    EXPECT_THROW(failpoint::fire("a"), FailPointError);
    EXPECT_NO_THROW(failpoint::fire("c"));
}

TEST(FailPoint, MalformedSpecsAreRejected)
{
    ScopedFailPoints scope;
    std::string error;
    Registry &reg = Registry::instance();
    EXPECT_FALSE(reg.armFromSpec("noprob", &error));
    EXPECT_FALSE(reg.armFromSpec("x:notanumber", &error));
    EXPECT_FALSE(reg.armFromSpec("x:2.0", &error)); // prob > 1
    EXPECT_FALSE(reg.armFromSpec("x:0.5:seedless:", &error));
    EXPECT_FALSE(reg.armFromSpec("x:0.5:1:explode", &error));
    EXPECT_FALSE(reg.armFromSpec(":0.5", &error));
    EXPECT_FALSE(error.empty());
    // Empty entries are tolerated (trailing commas).
    EXPECT_TRUE(reg.armFromSpec("ok:1,", &error));
    EXPECT_THROW(failpoint::fire("ok"), FailPointError);
}

TEST(FailPoint, ClearResetsCounts)
{
    {
        ScopedFailPoints scope("gone:1");
        EXPECT_THROW(failpoint::fire("gone"), FailPointError);
        EXPECT_EQ(Registry::instance().totalFires(), 1u);
    }
    EXPECT_EQ(Registry::instance().totalFires(), 0u);
    EXPECT_EQ(Registry::instance().fires("gone"), 0u);
    EXPECT_NO_THROW(failpoint::fire("gone"));
}

TEST(FailPoint, ConcurrentHitsStayConsistent)
{
    ScopedFailPoints scope;
    Config config;
    config.probability = 1.0;
    Registry::instance().arm("race", config);
    std::atomic<uint64_t> caught{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < 50; ++i) {
                try {
                    failpoint::fire("race");
                } catch (const FailPointError &) {
                    caught.fetch_add(1);
                }
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(caught.load(), 200u);
    EXPECT_EQ(Registry::instance().fires("race"), 200u);
    EXPECT_EQ(Registry::instance().totalFires(), 200u);
}

} // namespace
} // namespace uov
