/**
 * @file
 * Unit tests for OVArray / CheckedOVArray / ExpandedArray: storage
 * sharing along the OV, clobber detection, and bounds checking.
 */

#include <gtest/gtest.h>

#include "mapping/expanded_array.h"
#include "mapping/ov_array.h"
#include "support/error.h"

namespace uov {
namespace {

StorageMapping
simpleMapping(int64_t n = 8, int64_t m = 8)
{
    Polyhedron isg = Polyhedron::box(IVec{0, 0}, IVec{n, m});
    return StorageMapping::create(IVec{1, 1}, isg);
}

TEST(OVArrayTest, SharesCellsAlongOv)
{
    OVArray<int> arr(simpleMapping());
    arr.at(IVec{2, 3}) = 42;
    EXPECT_EQ(arr.at(IVec{3, 4}), 42); // (2,3) + ov
    EXPECT_EQ(arr.at(IVec{4, 5}), 42); // (2,3) + 2*ov
    arr.at(IVec{3, 4}) = 7;
    EXPECT_EQ(arr.at(IVec{2, 3}), 7);
}

TEST(OVArrayTest, DistinctClassesAreIndependent)
{
    OVArray<int> arr(simpleMapping());
    arr.at(IVec{2, 3}) = 1;
    arr.at(IVec{2, 4}) = 2;
    EXPECT_EQ(arr.at(IVec{2, 3}), 1);
    EXPECT_EQ(arr.at(IVec{2, 4}), 2);
}

TEST(OVArrayTest, AllocatesExactlyCellCount)
{
    OVArray<int> arr(simpleMapping(6, 4));
    EXPECT_EQ(arr.cellCount(), 6 + 4 + 1);
    EXPECT_EQ(arr.cells().size(), 11u);
}

TEST(CheckedOVArrayTest, CleanWhenReadsSeeTheirProducers)
{
    CheckedOVArray<int> arr(simpleMapping());
    arr.write(IVec{1, 1}, 10);
    EXPECT_EQ(arr.read(IVec{2, 1}, IVec{1, 1}), 10);
    EXPECT_TRUE(arr.clean());
}

TEST(CheckedOVArrayTest, DetectsClobber)
{
    CheckedOVArray<int> arr(simpleMapping());
    arr.write(IVec{1, 1}, 10);
    // (2,2) = (1,1) + ov lands in the same cell.
    arr.write(IVec{2, 2}, 20);
    int v = arr.read(IVec{3, 1}, IVec{1, 1});
    EXPECT_EQ(v, 20); // wrong value is surfaced, not masked
    ASSERT_EQ(arr.violations().size(), 1u);
    const auto &viol = arr.violations()[0];
    EXPECT_EQ(viol.reader, (IVec{3, 1}));
    EXPECT_EQ(viol.expected_writer, (IVec{1, 1}));
    EXPECT_EQ(viol.actual_writer, (IVec{2, 2}));
    EXPECT_FALSE(viol.str().empty());
}

TEST(CheckedOVArrayTest, ReadOfNeverWrittenCellIsViolation)
{
    CheckedOVArray<int> arr(simpleMapping());
    arr.read(IVec{2, 2}, IVec{1, 1});
    EXPECT_EQ(arr.violations().size(), 1u);
}

TEST(CheckedOVArrayTest, PeekDoesNotRecord)
{
    CheckedOVArray<int> arr(simpleMapping());
    arr.write(IVec{1, 1}, 5);
    EXPECT_EQ(arr.peek(IVec{1, 1}), 5);
    EXPECT_TRUE(arr.clean());
}

TEST(ExpandedArrayTest, RowMajorIndexingAndBounds)
{
    ExpandedArray<int> arr(IVec{0, 0}, IVec{3, 2});
    EXPECT_EQ(arr.cellCount(), 4 * 3);
    arr.at(IVec{1, 2}) = 9;
    EXPECT_EQ(arr.at(IVec{1, 2}), 9);
    EXPECT_TRUE(arr.inBounds(IVec{3, 2}));
    EXPECT_FALSE(arr.inBounds(IVec{4, 0}));
    EXPECT_THROW(arr.at(IVec{4, 0}), UovInternalError);
}

TEST(ExpandedArrayTest, NegativeOrigins)
{
    ExpandedArray<int> arr(IVec{-2, -2}, IVec{2, 2}, -1);
    EXPECT_EQ(arr.cellCount(), 25);
    EXPECT_EQ(arr.at(IVec{-2, -2}), -1);
    arr.at(IVec{-1, 1}) = 3;
    EXPECT_EQ(arr.at(IVec{-1, 1}), 3);
}

TEST(ExpandedArrayTest, ThreeDimensional)
{
    ExpandedArray<double> arr(IVec{0, 0, 0}, IVec{2, 2, 2});
    EXPECT_EQ(arr.cellCount(), 27);
    arr.at(IVec{1, 1, 1}) = 2.5;
    EXPECT_EQ(arr.at(IVec{1, 1, 1}), 2.5);
    // Distinct points own distinct cells.
    arr.at(IVec{2, 1, 0}) = 1.0;
    EXPECT_EQ(arr.at(IVec{1, 1, 1}), 2.5);
}

TEST(ExpandedArrayTest, RejectsEmptyBox)
{
    EXPECT_THROW(ExpandedArray<int>(IVec{0, 3}, IVec{3, 0}),
                 UovUserError);
}

} // namespace
} // namespace uov
