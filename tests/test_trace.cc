/**
 * @file
 * Tests for trace recording and replay: record-once/replay-anywhere
 * equivalence with direct simulation, the packed 8-byte event
 * encoding, chunked storage, footprint accounting, and the Table 1
 * storage story read off real address streams.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "kernels/psm.h"
#include "kernels/stencil5.h"
#include "sim/trace.h"

namespace uov {
namespace {

TEST(TraceEventPacked, RoundTripOverFullAddressRange)
{
    ASSERT_EQ(sizeof(TraceEvent), 8u);
    const uint64_t max_addr = TraceEvent::kPayloadMask; // 2^62 - 1
    std::vector<uint64_t> addrs = {0,
                                   1,
                                   64,
                                   4096,
                                   (uint64_t{1} << 20),
                                   (uint64_t{1} << 40) + 12345,
                                   (uint64_t{1} << 61),
                                   max_addr - 1,
                                   max_addr};
    // A few pseudo-random points across the range too.
    uint64_t x = 0x243f6a8885a308d3ull;
    for (int i = 0; i < 64; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        addrs.push_back(x & TraceEvent::kPayloadMask);
    }
    for (uint64_t a : addrs) {
        for (auto k : {TraceEvent::Kind::Load, TraceEvent::Kind::Store}) {
            TraceEvent e(k, a);
            EXPECT_EQ(e.kind(), k) << a;
            EXPECT_EQ(e.addr(), a) << a;
        }
    }
    TraceEvent b(TraceEvent::Kind::Branch, 0);
    EXPECT_EQ(b.kind(), TraceEvent::Kind::Branch);
    EXPECT_EQ(b.addr(), 0u);
}

TEST(TraceEventPacked, EqualitySemantics)
{
    TraceEvent a(TraceEvent::Kind::Load, 4096);
    TraceEvent b(TraceEvent::Kind::Load, 4096);
    TraceEvent c(TraceEvent::Kind::Store, 4096); // same addr, other kind
    TraceEvent d(TraceEvent::Kind::Load, 4100);  // same kind, other addr
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_NE(a, d);
    EXPECT_NE(c, d);
}

TEST(TraceEventPacked, ComputeHintRoundTrips)
{
    for (double cycles : {0.0, 1.0, 3.0, 4.0, 0.5, 12.25}) {
        TraceEvent e = TraceEvent::compute(cycles);
        EXPECT_EQ(e.kind(), TraceEvent::Kind::Compute);
        EXPECT_DOUBLE_EQ(e.computeCycles(), cycles);
    }
}

TEST(TraceModel, ChunkedRecordingCrossesChunkBoundaries)
{
    Trace t;
    const size_t n = 2 * Trace::kChunkEvents + 3;
    t.reserve(n);
    for (size_t i = 0; i < n; ++i)
        t.record(i % 2 ? TraceEvent::Kind::Store
                       : TraceEvent::Kind::Load,
                 i * 4);
    EXPECT_EQ(t.size(), n);
    EXPECT_EQ(t.loadCount() + t.storeCount(), n);
    // Spot-check both sides of each chunk boundary.
    for (size_t i : {size_t{0}, Trace::kChunkEvents - 1,
                     Trace::kChunkEvents, 2 * Trace::kChunkEvents,
                     n - 1}) {
        EXPECT_EQ(t.at(i).addr(), i * 4) << i;
    }
    EXPECT_THROW(t.at(n), UovUserError);
    // forEach visits everything in record order.
    size_t seen = 0;
    t.forEach([&](const TraceEvent &e) {
        if (seen == Trace::kChunkEvents) {
            EXPECT_EQ(e.addr(), Trace::kChunkEvents * 4);
        }
        ++seen;
    });
    EXPECT_EQ(seen, n);
}

TEST(TraceModel, CountsAndFootprint)
{
    Trace t;
    t.record(TraceEvent::Kind::Load, 0);
    t.record(TraceEvent::Kind::Load, 8);
    t.record(TraceEvent::Kind::Store, 64);
    t.record(TraceEvent::Kind::Branch, 0);
    t.recordCompute(3.0); // excluded from footprint and counts
    EXPECT_EQ(t.loadCount(), 2u);
    EXPECT_EQ(t.storeCount(), 1u);
    EXPECT_EQ(t.branchCount(), 1u);
    // Two 64-byte lines touched; the packed branch/compute payloads
    // must not leak into the footprint.
    EXPECT_EQ(t.footprintBytes(64), 128u);
    EXPECT_FALSE(t.summary().empty());
}

TEST(TraceModel, ReplayMatchesDirectSimulation)
{
    Stencil5Config cfg;
    cfg.length = 256;
    cfg.steps = 6;

    // Record once.
    Trace trace;
    double kernel_result;
    double recorded_compute;
    {
        VirtualArena arena;
        TracingMem mem{&trace, 0};
        kernel_result = runStencil5(Stencil5Variant::Ov, cfg, mem,
                                    arena);
        recorded_compute = mem.compute_cycles;
    }
    EXPECT_GT(trace.size(), 0u);

    // Direct simulation with identical addresses.
    double direct_result;
    MemorySystem direct(MachineConfig::pentiumPro());
    {
        VirtualArena arena;
        SimMem mem{&direct};
        direct_result =
            runStencil5(Stencil5Variant::Ov, cfg, mem, arena);
    }
    EXPECT_EQ(kernel_result, direct_result);

    // Replay: identical access stream, and compute hints replayed in
    // stream order -> bit-identical cycles.
    MemorySystem replayed(MachineConfig::pentiumPro());
    double replay_cycles = trace.replay(replayed);
    EXPECT_EQ(replayed.accesses(), direct.accesses());
    EXPECT_EQ(replayed.l1().misses(), direct.l1().misses());
    EXPECT_EQ(replayed.pageFaults(), direct.pageFaults());
    EXPECT_EQ(replay_cycles, direct.cycles());
    // The recorder still totals the hints for summary consumers.
    EXPECT_DOUBLE_EQ(recorded_compute,
                     3.0 * (cfg.length - 4) * cfg.steps);
}

TEST(TraceModel, ReplayAcrossMachinesWithoutRerunningKernel)
{
    Stencil5Config cfg;
    cfg.length = 512;
    cfg.steps = 4;
    Trace trace;
    {
        VirtualArena arena;
        TracingMem mem{&trace, 0};
        runStencil5(Stencil5Variant::Natural, cfg, mem, arena);
    }
    double prev = 0;
    for (const MachineConfig &m :
         {MachineConfig::pentiumPro(), MachineConfig::ultra2(),
          MachineConfig::alpha21164()}) {
        MemorySystem ms(m);
        double c = trace.replay(ms);
        EXPECT_GT(c, 0.0) << m.name;
        EXPECT_NE(c, prev) << m.name; // machines differ
        prev = c;
    }
}

TEST(TraceModel, InterleavedAndBlockedAddressSignatures)
{
    // The two Figure 5 layouts must be visible in the raw address
    // streams: blocked writes march in 4-byte steps within a row,
    // interleaved writes in 8-byte steps (two floats per element).
    Stencil5Config cfg;
    cfg.length = 64;
    cfg.steps = 2;
    auto write_stride = [&](Stencil5Variant v) {
        Trace t;
        VirtualArena arena;
        TracingMem mem{&t, 0};
        runStencil5(v, cfg, mem, arena);
        // Find two consecutive interior stores and report their gap.
        uint64_t prev = 0;
        std::vector<uint64_t> gaps;
        t.forEach([&](const TraceEvent &e) {
            if (e.kind() != TraceEvent::Kind::Store)
                return;
            if (prev != 0 && e.addr() > prev)
                gaps.push_back(e.addr() - prev);
            prev = e.addr();
        });
        // The dominant gap.
        std::sort(gaps.begin(), gaps.end());
        return gaps[gaps.size() / 2];
    };
    EXPECT_EQ(write_stride(Stencil5Variant::Ov), 4u);
    EXPECT_EQ(write_stride(Stencil5Variant::OvInterleaved), 8u);
}

TEST(TraceModel, PsmTraceCountsBranchesAndTableLoads)
{
    PsmConfig cfg;
    cfg.n0 = 16;
    cfg.n1 = 20;
    Trace t;
    VirtualArena arena;
    TracingMem mem{&t, 0};
    runPsm(PsmVariant::Natural, cfg, mem, arena);
    EXPECT_EQ(t.branchCount(),
              static_cast<uint64_t>(3 * cfg.n0 * cfg.n1));
    // Loads per iteration: 2 string chars + 1 weight + 4 dp reads.
    EXPECT_GE(t.loadCount(),
              static_cast<uint64_t>(7 * cfg.n0 * cfg.n1));
}

TEST(TraceModel, FootprintsTellTheTable1Story)
{
    Stencil5Config cfg;
    cfg.length = 1024;
    cfg.steps = 8;
    auto footprint = [&](Stencil5Variant v) {
        Trace t;
        VirtualArena arena;
        TracingMem mem{&t, 0};
        runStencil5(v, cfg, mem, arena);
        return t.footprintBytes(4); // element-granular
    };
    uint64_t natural = footprint(Stencil5Variant::Natural);
    uint64_t ov = footprint(Stencil5Variant::Ov);
    uint64_t opt = footprint(Stencil5Variant::StorageOptimized);
    // Natural ~ (T+1)L floats; OV ~ 2L; optimized ~ L.
    EXPECT_GT(natural, 3 * ov);
    EXPECT_GT(ov, opt);
    EXPECT_NEAR(static_cast<double>(ov) / (2 * 1024 * 4), 1.0, 0.05);
}

} // namespace
} // namespace uov
