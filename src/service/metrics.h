/**
 * @file
 * Thin alias header: the metrics registry was promoted to
 * src/support/metrics.* so the span tracer and the service share one
 * registry type.  Existing service code and tests keep including
 * "service/metrics.h" and naming uov::service::MetricsRegistry; both
 * resolve to the support-layer types.
 */

#ifndef UOV_SERVICE_METRICS_H
#define UOV_SERVICE_METRICS_H

#include "support/metrics.h"

namespace uov {
namespace service {

using uov::Counter;
using uov::Gauge;
using uov::Histogram;
using uov::MetricsRegistry;

} // namespace service
} // namespace uov

#endif // UOV_SERVICE_METRICS_H
