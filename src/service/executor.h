/**
 * @file
 * Batch executor: the newline-delimited query protocol and the fan-out
 * of parsed requests onto a ThreadPool.
 *
 * Protocol (one request per line; '#' comments and blank lines are
 * skipped and consume no request index; sub-syntax -- 'lo..hi' ranges
 * and bracketed integer tuples -- matches driver/nest_parser):
 *
 *     # best UOV by squared length
 *     query shortest deps [1,0] [0,1] [1,1]
 *     # best UOV by storage cells over the bounded ISG
 *     query storage bounds 0..17 0..99 deps [1,-2] [1,-1] [1,0] [1,1] [1,2]
 *
 * Responses are written strictly in request order, one line each:
 *
 *     answer <idx> best=(1, 1) value=2 initial=4 canon=3 cert=...
 *     error <idx> <message>
 *
 * so output is byte-deterministic for a given input at every thread
 * count.  A malformed line yields an error response (the batch keeps
 * going); the error text is part of the deterministic contract.
 */

#ifndef UOV_SERVICE_EXECUTOR_H
#define UOV_SERVICE_EXECUTOR_H

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "service/service.h"
#include "support/thread_pool.h"

namespace uov {
namespace service {

/** One parsed protocol line (or its parse failure). */
struct Request
{
    size_t index = 0;       ///< 1-based request number
    std::string error;      ///< nonempty: parse failed, text to echo
    std::vector<IVec> deps; ///< as presented (not yet canonical)
    SearchObjective objective = SearchObjective::ShortestVector;
    std::optional<IVec> isg_lo;
    std::optional<IVec> isg_hi;
};

/**
 * Parse every request line in @p in.  Never throws: malformed lines
 * become Requests carrying an error message.
 */
std::vector<Request> parseRequests(std::istream &in);

/** Parse one request line (no comment/blank handling). */
Request parseRequestLine(const std::string &line, size_t index);

/**
 * Answer one request through the service; returns the full response
 * line ("answer ..." or "error ...").  Input-dependent failures
 * (invalid stencil, bad bounds) become error responses; internal
 * errors propagate.
 */
std::string runRequest(QueryService &service, const Request &request);

/**
 * Answer a batch on @p pool (requests fan out; identical in-flight
 * queries coalesce inside the service).  Responses are returned in
 * request order.  The pool's queue depth is tracked in the service's
 * "service.queue_depth" gauge.
 */
std::vector<std::string> runBatch(QueryService &service,
                                  const std::vector<Request> &requests,
                                  ThreadPool &pool);

/** Single-threaded reference executor (no pool, no service state). */
std::vector<std::string>
runBatchDirect(const std::vector<Request> &requests,
               uint64_t max_visits = 10'000'000);

} // namespace service
} // namespace uov

#endif // UOV_SERVICE_EXECUTOR_H
