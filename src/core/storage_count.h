/**
 * @file
 * Storage requirements of an occupancy vector over a bounded ISG
 * (Sections 3.2 and 4.3).
 *
 * An OV partitions iteration points into storage-equivalence classes
 * (points differing by an integral multiple of the OV).  With known ISG
 * bounds the class count is the number of integer points in the
 * projection of the ISG onto the hyperplane perpendicular to the OV,
 * times the number of classes lying along the OV itself
 * (gcd of its coordinates, for non-prime OVs).
 */

#ifndef UOV_CORE_STORAGE_COUNT_H
#define UOV_CORE_STORAGE_COUNT_H

#include <cstdint>

#include "geometry/ivec.h"
#include "geometry/polyhedron.h"

namespace uov {

/**
 * The 2-D mapping direction for an occupancy vector: for prime
 * ov == (i, j) this is mv == (-j, i) (Section 4.1); for non-prime OVs
 * the primitive part is used.  @pre ov is 2-D and nonzero
 */
IVec mappingVector2D(const IVec &ov);

/**
 * Number of storage cells required when reusing storage along @p ov
 * over the iteration space @p isg:
 *
 *   2-D:  projectionCount(primitive mv) * content(ov)
 *         -- exact (Figure 6: |mv.xp1 - mv.xp2| + 1 for prime OVs).
 *
 *   d-D:  product of projected bounding-box extents (rows 1..d-1 of a
 *         unimodular completion of ov / g) * g -- exact for boxes whose
 *         projection is again a box, an upper bound otherwise.
 *
 * This is the number of cells the OV storage mapping *allocates* (the
 * range of SM over the ISG).  For non-prime OVs a few projection lines
 * near the ISG corners may hold fewer than g occupied classes, so the
 * exact occupied-class count (storageCellCountExact) can be slightly
 * smaller; allocation follows the paper's formula.
 */
int64_t storageCellCount(const IVec &ov, const Polyhedron &isg);

/**
 * Exact cell count by enumerating integer ISG points and counting
 * distinct storage classes.  Small ISGs only (bounding-box scan).
 */
int64_t storageCellCountExact(const IVec &ov, const Polyhedron &isg,
                              int64_t max_scan = 10000000);

/**
 * The paper's Section 3.2.1 known-bounds search radius: the best OV
 * satisfies |ov_best| <= P_ovo * |ov_o| / P_M, where P_ovo is the
 * projection of the ISG perpendicular to the initial OV and P_M the
 * minimum projection on any hyperplane.  Returns the squared radius.
 */
int64_t knownBoundsRadiusSquared(const IVec &initial_ov,
                                 const Polyhedron &isg);

} // namespace uov

#endif // UOV_CORE_STORAGE_COUNT_H
