/**
 * @file
 * Reproduces Figure 4: how the initial UOV ov_o = sum(V) bounds the
 * search region, and how much the reachability pruning (the paper's
 * extreme-vector parallelepiped) cuts from the search.
 */

#include "bench_common.h"

#include "core/cone_pruner.h"
#include "core/search.h"

using namespace uov;

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseArgs(argc, argv);
    bench::banner("Figure 4 (bounding the search with ov_o and the "
                  "dependence cone)");

    Table t("Search-region geometry per stencil");
    t.header({"stencil", "ov_o", "|ov_o|^2", "extreme vectors",
              "visited", "pruned", "best uov"});

    for (const Stencil &s :
         {stencils::simpleExample(), stencils::threeVector(),
          stencils::fivePoint(),
          Stencil({IVec{1, 5}, IVec{1, -5}, IVec{2, 0}})}) {
        auto [lo, hi] = s.extremeVectors2D();
        SearchResult r =
            BranchBoundSearch(s, SearchObjective::ShortestVector).run();
        t.addRow()
            .cell(s.str())
            .cell(s.initialUov().str())
            .cell(s.initialUov().normSquared())
            .cell(lo.str() + " / " + hi.str())
            .cell(r.stats.visited)
            .cell(r.stats.pruned)
            .cell(r.best_uov.str());
    }
    bench::emit(t, opt);

    // Demonstrate the pruning region test on the 5-point stencil.
    Stencil five = stencils::fivePoint();
    ConePruner pruner(five);
    int64_t radius_sq = five.initialUov().normSquared();

    Table p("Reachability pruning around the 5-point stencil "
            "(radius^2 = |ov_o|^2 = " +
            std::to_string(radius_sq) + ")");
    p.header({"offset w", "min reachable |.|^2 (lower bound)",
              "pruned?"});
    for (const IVec &w : {IVec{1, 0}, IVec{1, 2}, IVec{2, 4}, IVec{3, 6},
                          IVec{4, 8}, IVec{5, 10}}) {
        double lb = pruner.minReachableNormSquared(w);
        p.addRow()
            .cell(w.str())
            .cell(lb, 2)
            .cell(pruner.prune(w, radius_sq) ? "yes" : "no");
    }
    bench::emit(p, opt);
    return 0;
}
