/**
 * @file
 * Extension experiment for the paper's Section 7 future work
 * ("multiple-level optimizations like hierarchical tiling"): one-level
 * L1 tiling vs two-level L1-in-L2 tiling of the OV-mapped 5-point
 * stencil, on the simulated machines.
 *
 * With only two rows of OV storage the inner-tile working set already
 * fits L1, so the second level matters most for the *natural* code
 * whose footprint spans L2 -- exactly the regime the hierarchy
 * targets.
 */

#include "bench_common.h"

#include "core/stencil.h"
#include "kernels/stencil5.h"
#include "schedule/executor.h"
#include "schedule/legality.h"

using namespace uov;

namespace {

/** cycles/iter for an arbitrary schedule replayed on a machine. */
double
simulateSchedule(const Schedule &sched, const Stencil &stencil,
                 const IVec &lo, const IVec &hi, int64_t cells_len,
                 const MachineConfig &machine)
{
    // Replay the schedule's access pattern through the memory system:
    // each visited point performs the stencil's loads on the 2-row OV
    // store plus one store.
    MemorySystem ms(machine);
    VirtualArena arena;
    SimBuffer<float> a(arena, static_cast<size_t>(2 * cells_len));
    SimMem mem{&ms};
    uint64_t iters = 0;
    sched.forEach(lo, hi, [&](const IVec &q) {
        ++iters;
        for (const auto &v : stencil.deps()) {
            IVec p = q - v;
            int64_t idx =
                (p[0] & 1) * cells_len +
                std::clamp<int64_t>(p[1], 0, cells_len - 1);
            (void)mem.load(a, static_cast<size_t>(idx));
        }
        int64_t widx = (q[0] & 1) * cells_len +
                       std::clamp<int64_t>(q[1], 0, cells_len - 1);
        mem.store(a, static_cast<size_t>(widx), 1.0f);
        mem.compute(3.0);
    });
    return ms.cycles() / static_cast<double>(iters);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseArgs(argc, argv);
    bench::banner("extension: hierarchical (two-level) tiling, "
                  "Section 7 future work");

    Stencil five = stencils::fivePoint();
    IMatrix skew = skewToNonNegative(five);

    // Length chosen so the 2-row OV store exceeds L2: the regime
    // where grouping time-tile rows inside an L2-sized window pays.
    const int64_t len = opt.quick ? 1 << 16 : 1 << 18;
    const int64_t steps = 24;
    const int64_t tile_t = 4; // several time-tile rows re-stream L
    IVec lo{1, 0}, hi{steps, len - 1};

    for (const auto &machine : bench::paperMachines()) {
        int64_t l1_tile =
            std::max<int64_t>(64, machine.l1.size_bytes / 8);
        // Outer s-window sized to L2; outer t covers all time rows.
        int64_t l2_factor = std::max<int64_t>(
            2, machine.l2.size_bytes / 8 / l1_tile);

        TiledSchedule one_level({tile_t, l1_tile}, skew, "L1-tile");
        HierarchicalTiledSchedule two_level(
            {tile_t, l1_tile}, {steps / tile_t, l2_factor}, skew,
            "L1-in-L2");

        Table t("5-point stencil, OV storage, L=" + formatCount(len) +
                " on " + machine.name);
        t.header({"schedule", "cycles/iter"});
        t.addRow()
            .cell(one_level.name())
            .cell(simulateSchedule(one_level, five, lo, hi, len,
                                   machine),
                  2);
        t.addRow()
            .cell(two_level.name())
            .cell(simulateSchedule(two_level, five, lo, hi, len,
                                   machine),
                  2);
        t.addRow()
            .cell("untiled (lex)")
            .cell(simulateSchedule(LexSchedule::identity(2), five, lo,
                                   hi, len, machine),
                  2);
        bench::emit(t, opt);
    }
    return 0;
}
