/**
 * @file
 * Protein alignment demo: score two synthetic amino-acid sequences
 * with every storage variant of the DP kernel, confirm they agree,
 * and compare storage and wall-clock time -- the paper's Section 5
 * workload as an application.
 */

#include <chrono>
#include <iostream>

#include "analysis/pipeline.h"
#include "kernels/psm.h"
#include "support/table.h"

using namespace uov;

int
main(int argc, char **argv)
{
    int64_t n = argc > 1 ? std::stoll(argv[1]) : 1500;

    std::cout << "aligning two synthetic proteins of length " << n
              << " over the " << kPsmAlphabet
              << "-letter amino-acid alphabet\n\n";

    // What the compiler pipeline says about this DP's storage.
    MappingPlan plan = planStorageMapping(nests::proteinMatching(n, n),
                                          0);
    std::cout << "dependence stencil " << plan.stencil.str()
              << " -> UOV " << plan.search.best_uov << ": each value "
              << "array collapses to one anti-diagonal of "
              << plan.mapping.cellCount() << " cells\n\n";

    PsmConfig cfg;
    cfg.n0 = cfg.n1 = n;
    cfg.tile_i = cfg.tile_j = 256;

    Table t("PSM variants, n0=n1=" + std::to_string(n));
    t.header({"variant", "score", "temp cells", "ms", "tilable"});

    int32_t reference = 0;
    bool first = true, agree = true;
    for (PsmVariant v : allPsmVariants()) {
        VirtualArena arena;
        NativeMem mem;
        auto start = std::chrono::steady_clock::now();
        int32_t score = runPsm(v, cfg, mem, arena);
        auto stop = std::chrono::steady_clock::now();
        double ms =
            std::chrono::duration<double, std::milli>(stop - start)
                .count();
        if (first) {
            reference = score;
            first = false;
        }
        agree = agree && score == reference;
        t.addRow()
            .cell(psmVariantName(v))
            .cell(static_cast<int64_t>(score))
            .cell(formatCount(psmTemporaryStorage(v, n, n)))
            .cell(ms, 1)
            .cell(psmVariantTiled(v)
                      ? "yes"
                      : (v == PsmVariant::StorageOptimized ? "no"
                                                           : "yes"));
    }
    t.print(std::cout);

    std::cout << "\nall variants agree on the score: "
              << (agree ? "yes" : "NO") << "\n";
    std::cout << "natural storage would be "
              << formatCount(psmTemporaryStorage(PsmVariant::Natural, n,
                                                 n))
              << " cells; OV-mapped uses "
              << formatCount(psmTemporaryStorage(PsmVariant::Ov, n, n))
              << " -- and unlike the storage-optimized version it can "
                 "still be tiled.\n";
    return agree ? 0 : 1;
}
