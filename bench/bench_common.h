/**
 * @file
 * Shared plumbing for the per-table / per-figure bench binaries.
 *
 * Every binary prints the paper-style rows as an aligned table on
 * stdout; pass --csv for machine-readable output instead.  The header
 * of each binary's output names the paper artifact it regenerates.
 */

#ifndef UOV_BENCH_BENCH_COMMON_H
#define UOV_BENCH_BENCH_COMMON_H

#include <chrono>
#include <functional>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "sim/machine.h"
#include "sim/streaming.h"
#include "support/table.h"
#include "support/thread_pool.h"
#include "support/trace.h"

namespace uov {
namespace bench {

/** Common command-line options. */
struct Options
{
    bool csv = false;   ///< emit CSV instead of aligned tables
    bool quick = false; ///< shrink sweeps (used by CI smoke runs)
};

inline Options
parseArgs(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--csv")
            o.csv = true;
        else if (a == "--quick")
            o.quick = true;
        else if (a == "--help" || a == "-h") {
            std::cout << "usage: " << argv[0] << " [--csv] [--quick]\n";
            std::exit(0);
        }
    }
    return o;
}

inline void
emit(const Table &t, const Options &o)
{
    if (o.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);
    std::cout << "\n";
}

/** Banner naming the paper artifact being regenerated. */
inline void
banner(const std::string &what)
{
    std::cout << "# Strout et al., ASPLOS 1998 -- reproducing " << what
              << "\n\n";
}

/**
 * The three testbed machines.  @p memory_scale shrinks physical
 * memory so the paper's out-of-memory regime appears within a sweep
 * that simulates in seconds (documented per bench).
 */
inline std::vector<MachineConfig>
paperMachines(double memory_scale = 1.0)
{
    std::vector<MachineConfig> machines = {MachineConfig::pentiumPro(),
                                           MachineConfig::ultra2(),
                                           MachineConfig::alpha21164()};
    for (auto &m : machines) {
        auto scaled = static_cast<int64_t>(
            static_cast<double>(m.memory_bytes) * memory_scale);
        m.memory_bytes = std::max<int64_t>(scaled, m.page_bytes * 16);
    }
    return machines;
}

/**
 * One fused simulation pass: per-machine cycle totals plus the raw
 * material for throughput reporting.  `machines` holds indices into
 * the bench's machine vector; `cycles[k]` is machines[k]'s total.
 */
struct FusedRun
{
    std::vector<size_t> machines;
    std::vector<double> cycles;
    uint64_t events = 0; ///< simulated events applied, all machines
    double wall_ns = 0;
};

/**
 * Run @p kernel once, streaming every event into the machines named
 * by @p group (indices into @p machines) simultaneously.  The caller
 * must only group machines that would observe the same address
 * stream: the scaling benches tune tile sizes to each machine's L1,
 * so tiled variants are grouped by tile configuration while untiled
 * variants fuse all machines into a single kernel pass.
 */
template <typename KernelFn>
FusedRun
runFusedGroup(const std::vector<MachineConfig> &machines,
              std::vector<size_t> group, KernelFn &&kernel)
{
    std::vector<MachineConfig> cfgs;
    cfgs.reserve(group.size());
    for (size_t i : group)
        cfgs.push_back(machines[i]);
    MultiMachineSim sim(cfgs);
    StreamingSim mem = sim.policy();
    VirtualArena arena;
    trace::Span span("sim.fused_pass");
    span.arg("machines", static_cast<int64_t>(cfgs.size()));
    auto start = std::chrono::steady_clock::now();
    kernel(mem, arena);
    auto stop = std::chrono::steady_clock::now();
    sim.traceCycleCounters();
    span.arg("events", static_cast<int64_t>(sim.eventsProcessed()));

    FusedRun r;
    r.machines = std::move(group);
    r.cycles.reserve(r.machines.size());
    for (size_t k = 0; k < r.machines.size(); ++k)
        r.cycles.push_back(sim.system(k).cycles());
    r.events = sim.eventsProcessed();
    r.wall_ns =
        std::chrono::duration<double, std::nano>(stop - start).count();
    return r;
}

/**
 * Millions of simulated events per second for aggregated fused runs
 * (events summed across machines; time summed across tasks, so with
 * the pool saturating every core this is per-core throughput).
 */
inline double
mEventsPerSec(double events, double wall_ns)
{
    return wall_ns > 0 ? events * 1000.0 / wall_ns : 0.0;
}

/** Header label of the throughput column the scaling benches emit. */
inline const char *const kThroughputHeader = "MEvents/s";

/** Median wall-clock nanoseconds of fn() over @p reps runs. */
inline double
measureNs(const std::function<void()> &fn, int reps = 5)
{
    std::vector<double> samples;
    samples.reserve(static_cast<size_t>(reps));
    for (int r = 0; r < reps; ++r) {
        auto start = std::chrono::steady_clock::now();
        fn();
        auto stop = std::chrono::steady_clock::now();
        samples.push_back(
            std::chrono::duration<double, std::nano>(stop - start)
                .count());
    }
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
}

} // namespace bench
} // namespace uov

#endif // UOV_BENCH_BENCH_COMMON_H
