/**
 * @file
 * Unit tests for storage-cell counting (Figures 3 and 6, Tables 1/2
 * storage columns) and the known-bounds search radius.
 */

#include <gtest/gtest.h>

#include "core/storage_count.h"
#include "support/error.h"

namespace uov {
namespace {

TEST(StorageCount, MappingVector2D)
{
    EXPECT_EQ(mappingVector2D(IVec{1, 1}), (IVec{-1, 1}));
    EXPECT_EQ(mappingVector2D(IVec{3, 1}), (IVec{-1, 3}));
    // Non-prime OVs use the primitive part.
    EXPECT_EQ(mappingVector2D(IVec{2, 0}), (IVec{0, 1}));
    EXPECT_EQ(mappingVector2D(IVec{3, 0}), (IVec{0, 1}));
    EXPECT_THROW(mappingVector2D(IVec{0, 0}), UovUserError);
    EXPECT_THROW(mappingVector2D(IVec{1, 1, 1}), UovUserError);
}

TEST(StorageCount, Figure6RectangleIsNPlusMPlusOne)
{
    // Figure 6: ISG rectangle with corners (0,0)..(n,m), ov=(1,1):
    // |mv.xp1 - mv.xp2| + 1 = n + m + 1.
    int64_t n = 8, m = 5;
    Polyhedron isg = Polyhedron::box(IVec{0, 0}, IVec{n, m});
    EXPECT_EQ(storageCellCount(IVec{1, 1}, isg), n + m + 1);
    EXPECT_EQ(storageCellCountExact(IVec{1, 1}, isg), n + m + 1);
}

TEST(StorageCount, Figure3LongerOvCanNeedLessStorage)
{
    // Figure 3: over the parallelogram (1,1),(1,6),(10,4),(10,9) the
    // shorter ov2=(3,0) needs 27 cells while the longer ov1=(3,1)
    // needs only 16.
    Polyhedron isg = Polyhedron::fromVertices2D(
        {IVec{1, 1}, IVec{1, 6}, IVec{10, 4}, IVec{10, 9}});
    EXPECT_EQ(storageCellCount(IVec{3, 1}, isg), 16);
    EXPECT_EQ(storageCellCount(IVec{3, 0}, isg), 27);
    EXPECT_GT((IVec{3, 1}).normSquared(), (IVec{3, 0}).normSquared());
}

TEST(StorageCount, FivePointStencilTwoRows)
{
    // Table 1: the 5-point stencil's UOV (2,0) over a T x L ISG costs
    // ~2 rows of length L+1.
    int64_t t_steps = 100, len = 50;
    Polyhedron isg = Polyhedron::box(IVec{0, 0}, IVec{t_steps, len});
    EXPECT_EQ(storageCellCount(IVec{2, 0}, isg), 2 * (len + 1));
    EXPECT_EQ(storageCellCountExact(IVec{2, 0}, isg), 2 * (len + 1));
}

TEST(StorageCount, ExactMatchesFormulaForUnitMappingVectors)
{
    // When the mapping vector's entries are all in {-1, 0, 1}, every
    // value in the projection interval is attained, so allocation ==
    // occupancy.  These are the OVs that arise in the paper's codes.
    Polyhedron isg = Polyhedron::box(IVec{0, 0}, IVec{7, 9});
    // (2,0) also keeps equality: each projection line runs the full
    // length of an axis, so both mod-classes are always occupied.
    for (const IVec &ov :
         {IVec{1, 0}, IVec{0, 1}, IVec{1, 1}, IVec{1, -1}, IVec{2, 0}}) {
        EXPECT_EQ(storageCellCount(ov, isg),
                  storageCellCountExact(ov, isg))
            << ov.str();
    }
}

TEST(StorageCount, AllocationUpperBoundsOccupancy)
{
    // Allocation follows the paper's formula (projection interval x
    // gcd).  Occupancy can be slightly smaller: skew mapping vectors
    // leave Frobenius gaps at the ISG corners, and for non-prime OVs a
    // few corner lines hold fewer than gcd classes.
    Polyhedron isg = Polyhedron::box(IVec{0, 0}, IVec{7, 9});
    for (const IVec &ov :
         {IVec{2, 1}, IVec{3, -2}, IVec{2, 0}, IVec{2, 2}, IVec{4, -2}}) {
        int64_t alloc = storageCellCount(ov, isg);
        int64_t used = storageCellCountExact(ov, isg);
        EXPECT_GE(alloc, used) << ov.str();
        // The mapping still fits everything it maps.
        EXPECT_GT(used, 0) << ov.str();
    }
}

TEST(StorageCount, NonPrimeMultipliesClasses)
{
    Polyhedron isg = Polyhedron::box(IVec{0, 0}, IVec{10, 10});
    int64_t prime = storageCellCount(IVec{1, 1}, isg);
    int64_t doubled = storageCellCount(IVec{2, 2}, isg);
    EXPECT_EQ(doubled, 2 * prime);
}

TEST(StorageCount, ThreeDimensionalBox)
{
    // ov = (1,0,0) on box T x N x M: cells = (N+1)*(M+1) (one slab).
    Polyhedron isg = Polyhedron::box(IVec{0, 0, 0}, IVec{9, 4, 6});
    EXPECT_EQ(storageCellCount(IVec{1, 0, 0}, isg), 5 * 7);
    EXPECT_EQ(storageCellCountExact(IVec{1, 0, 0}, isg), 5 * 7);
    // ov = (2,0,0): two slabs.
    EXPECT_EQ(storageCellCount(IVec{2, 0, 0}, isg), 2 * 5 * 7);
}

TEST(StorageCount, ThreeDimensionalDiagonalExactVsEstimate)
{
    Polyhedron isg = Polyhedron::box(IVec{0, 0, 0}, IVec{4, 4, 4});
    // The bounding-box formula upper-bounds the exact count.
    for (const IVec &ov : {IVec{1, 1, 0}, IVec{1, 1, 1}, IVec{2, 1, 0}}) {
        EXPECT_GE(storageCellCount(ov, isg),
                  storageCellCountExact(ov, isg))
            << ov.str();
        EXPECT_GT(storageCellCountExact(ov, isg), 0) << ov.str();
    }
}

TEST(StorageCount, KnownBoundsRadiusCoversInitialOv)
{
    Polyhedron isg = Polyhedron::box(IVec{0, 0}, IVec{20, 20});
    IVec ovo{2, 2};
    int64_t r_sq = knownBoundsRadiusSquared(ovo, isg);
    EXPECT_GE(r_sq, ovo.normSquared());
}

TEST(StorageCount, KnownBoundsRadiusFigure3AdmitsLongerWinner)
{
    // The radius must be generous enough that (3,1) stays in range
    // even though |(3,1)| > |(3,0)|.
    Polyhedron isg = Polyhedron::fromVertices2D(
        {IVec{1, 1}, IVec{1, 6}, IVec{10, 4}, IVec{10, 9}});
    int64_t r_sq = knownBoundsRadiusSquared(IVec{3, 0}, isg);
    EXPECT_GE(r_sq, (IVec{3, 1}).normSquared());
}

} // namespace
} // namespace uov
