#include "kernels/simple.h"

namespace uov {

const char *
simpleVariantName(SimpleVariant v)
{
    switch (v) {
      case SimpleVariant::Natural:          return "Natural";
      case SimpleVariant::OvMapped:         return "OV-Mapped";
      case SimpleVariant::StorageOptimized: return "Storage Optimized";
    }
    return "?";
}

int64_t
simpleStorage(SimpleVariant v, int64_t n, int64_t m)
{
    switch (v) {
      case SimpleVariant::Natural:
        return n * m; // Figure 1(a): nm temporaries
      case SimpleVariant::OvMapped:
        return n + m + 1; // Figure 1(b)
      case SimpleVariant::StorageOptimized:
        return m + 2; // Figure 1(c)
    }
    return 0;
}

} // namespace uov
