/**
 * @file
 * Parallel wavefront execution over OV-mapped storage.
 *
 * The paper motivates schedule freedom partly by parallelism ("[tiling]
 * can also be used as a technique to implement parallelism").  A legal
 * wavefront h (h.v > 0 for every dependence) makes every point of one
 * wave independent; with a *universal* OV the storage is also
 * race-free: two iterations share a cell only when they differ by a
 * multiple of the OV, and h is strictly positive on the dependence
 * cone containing the OV, so cell-sharers always sit on different
 * waves.  Threads split each wave; a barrier separates waves.
 *
 * This is the concurrency counterpart of the executor's sequential
 * schedule sweep, with the same bit-exact comparison against full
 * expansion.
 */

#ifndef UOV_SCHEDULE_PARALLEL_EXECUTOR_H
#define UOV_SCHEDULE_PARALLEL_EXECUTOR_H

#include "schedule/executor.h"

namespace uov {

/** Outcome of one parallel run. */
struct ParallelExecutionResult
{
    uint64_t points = 0;
    uint64_t mismatches = 0;
    unsigned threads = 0;
    int64_t waves = 0;

    bool correct() const { return mismatches == 0; }
};

/**
 * Execute comp over [lo, hi] by waves of h with @p threads worker
 * threads and OV storage for @p ov; every produced value is compared
 * against the fully expanded reference.
 *
 * @pre h is a legal wavefront for comp.stencil (h.v > 0 for all v)
 */
ParallelExecutionResult runParallelWavefront(
    const StencilComputation &comp, const IVec &lo, const IVec &hi,
    const IVec &h, const IVec &ov, unsigned threads,
    ModLayout layout = ModLayout::Interleaved);

} // namespace uov

#endif // UOV_SCHEDULE_PARALLEL_EXECUTOR_H
