/**
 * @file
 * Array region analysis (Section 2, citing Creusillet/Irigoin):
 * which elements a loop nest imports, which it exports, and which are
 * temporaries eligible for OV storage mapping.
 *
 * The paper's method applies only to values that are *temporary* --
 * produced and fully consumed inside the nest, dead on exit except for
 * an explicitly live-out region.  This module computes those regions
 * exactly (by enumeration over the bounded ISG) so the applicability
 * check is real rather than asserted.
 */

#ifndef UOV_ANALYSIS_REGION_H
#define UOV_ANALYSIS_REGION_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ir/program.h"

namespace uov {

/** Which written elements remain live after the nest. */
using LiveOutPredicate = std::function<bool(const IVec &element)>;

/** Exact region summary for one statement's array. */
struct RegionSummary
{
    std::string array;
    int64_t written = 0;     ///< distinct elements written
    int64_t imported = 0;    ///< distinct elements read from outside
    int64_t live_out = 0;    ///< written elements live after the nest
    int64_t temporary = 0;   ///< written and not live-out

    /** True iff the nest produces temporaries worth OV-mapping. */
    bool hasTemporaries() const { return temporary > 0; }

    std::string str() const;
};

/**
 * Analyze the regions of the statement's written array.
 *
 * @param live_out which written elements the rest of the program still
 *        needs (e.g. "the last row of A" in Figure 1)
 * @param max_scan enumeration guard (trip count bound)
 */
RegionSummary analyzeRegions(const LoopNest &nest, size_t stmt_index,
                             const LiveOutPredicate &live_out,
                             int64_t max_scan = 10000000);

/** Convenience predicates. */
namespace live_out {

/** Nothing survives the nest. */
LiveOutPredicate nothing();

/** Every written element survives. */
LiveOutPredicate everything();

/** Elements whose coordinate @p dim equals @p value survive. */
LiveOutPredicate hyperplane(size_t dim, int64_t value);

} // namespace live_out

} // namespace uov

#endif // UOV_ANALYSIS_REGION_H
