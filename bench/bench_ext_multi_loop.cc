/**
 * @file
 * Extension experiment for the rest of Section 7's future work:
 * multi-statement nests (per-array UOVs under the whole nest's
 * schedule constraints) and shared UOVs across loop nests.
 */

#include "bench_common.h"

#include "analysis/multi.h"
#include "core/uov.h"

using namespace uov;

namespace {

LoopNest
psmTwoStatementNest(int64_t n)
{
    LoopNest nest("psm2", IVec{1, 1}, IVec{n, n});
    Statement e;
    e.name = "E";
    e.write = uniformAccess("E", IVec{0, 0});
    e.reads = {uniformAccess("E", IVec{0, -1}),
               uniformAccess("D", IVec{0, -1})};
    nest.addStatement(e);
    Statement d;
    d.name = "D";
    d.write = uniformAccess("D", IVec{0, 0});
    d.reads = {uniformAccess("D", IVec{-1, -1}),
               uniformAccess("D", IVec{-1, 0}),
               uniformAccess("E", IVec{0, 0})};
    nest.addStatement(d);
    return nest;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseArgs(argc, argv);
    bench::banner("extension: multi-statement nests and shared UOVs "
                  "(Section 7 future work)");

    // Per-array UOVs for the two-statement PSM DP.
    int64_t n = 1000;
    MultiNestPlan plan = planMultiStatement(psmTwoStatementNest(n));
    Table t("Two-statement PSM (score D + gap chain E), n=" +
            formatCount(n));
    t.header({"array", "uov", "cells", "note"});
    for (const auto &a : plan.arrays) {
        t.addRow()
            .cell(a.array)
            .cell(a.uov.str())
            .cell(formatCount(a.mapping.cellCount()))
            .cell(a.array == "E"
                      ? "exact analysis: one cell per row beats the "
                        "conservative anti-diagonal"
                      : "anti-diagonal, as in Table 2");
    }
    bench::emit(t, opt);
    std::cout << "total " << formatCount(plan.totalCells())
              << " cells vs Table 2's conservative "
              << formatCount(4 * n + 1) << " (and "
              << formatCount(n * n + 2 * n) << " natural)\n\n";

    // Shared UOVs across loop nests touching the same array.
    Table s("Shared UOV across two loops (paper: 'allows two loops to "
            "use the same OV-mapping')");
    s.header({"loop A stencil", "loop B stencil", "shared uov"});
    struct Row
    {
        Stencil a;
        Stencil b;
    };
    const Row rows[] = {
        {stencils::simpleExample(), Stencil({IVec{1, 1}})},
        {stencils::fivePoint(),
         Stencil({IVec{1, -1}, IVec{1, 0}, IVec{1, 1}})},
        {stencils::simpleExample(), stencils::fivePoint()},
        {stencils::simpleExample(), Stencil({IVec{2, 0}})},
    };
    for (const Row &r : rows) {
        auto shared = findSharedUov({r.a, r.b});
        s.addRow()
            .cell(r.a.str())
            .cell(r.b.str())
            .cell(shared ? shared->str() : "(none in search ball)");
    }
    bench::emit(s, opt);
    return 0;
}
