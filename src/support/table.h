/**
 * @file
 * Plain-text and CSV table emitters for the benchmark harness.
 *
 * Every bench binary reproduces one of the paper's tables or figures; a
 * Table collects rows and renders them either as an aligned text table
 * (for the console) or CSV (for plotting).
 */

#ifndef UOV_SUPPORT_TABLE_H
#define UOV_SUPPORT_TABLE_H

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace uov {

/** A simple column-aligned table with a title and header row. */
class Table
{
  public:
    explicit Table(std::string title) : _title(std::move(title)) {}

    /** Set the header row; defines the column count. */
    void header(std::vector<std::string> cols);

    /** Append a row; must match the header width if one was set. */
    void row(std::vector<std::string> cells);

    /** Convenience: build a row from heterogeneous cells. */
    class RowBuilder
    {
      public:
        explicit RowBuilder(Table &table) : _table(table) {}
        ~RowBuilder() { _table.row(std::move(_cells)); }

        RowBuilder(const RowBuilder &) = delete;
        RowBuilder &operator=(const RowBuilder &) = delete;

        RowBuilder &cell(const std::string &s);
        RowBuilder &cell(int64_t v);
        RowBuilder &cell(uint64_t v);
        RowBuilder &cell(double v, int precision = 2);

      private:
        Table &_table;
        std::vector<std::string> _cells;
    };

    RowBuilder addRow() { return RowBuilder(*this); }

    const std::string &title() const { return _title; }
    size_t rowCount() const { return _rows.size(); }

    /** Render as an aligned text table. */
    void print(std::ostream &os) const;

    /** Render as CSV (header + rows, no title). */
    void printCsv(std::ostream &os) const;

  private:
    std::string _title;
    std::vector<std::string> _header;
    std::vector<std::vector<std::string>> _rows;
};

/** Format a double with fixed precision (locale-independent). */
std::string formatDouble(double v, int precision = 2);

/** Format a count with thousands separators: 1234567 -> "1,234,567". */
std::string formatCount(int64_t v);

} // namespace uov

#endif // UOV_SUPPORT_TABLE_H
