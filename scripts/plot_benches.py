#!/usr/bin/env python3
"""Plot the scaling benches' CSV output as paper-style figures.

Usage:
    build/bench/bench_fig9_11_stencil_scaling --csv > stencil.csv
    scripts/plot_benches.py stencil.csv -o fig9_11.png

Each bench emits one CSV table per simulated machine when run with
--csv; this script splits on header rows (first cell "Length" or
"Problem Size" or "N=M"), plots every version column against the size
column on log-x axes, and writes one subplot per machine -- the same
layout as the paper's Figures 9-14.

Unknown columns are tolerated generically rather than by name:
per-unit diagnostic columns (any header containing "/", e.g.
"MEvents/s" or "ns/span", and tail-latency percentile columns such as
"p99 us" or "p999 us") and columns with any non-numeric cell are
skipped with a note, so benches may append new diagnostics without
breaking the plots.

Requires matplotlib; degrades to a textual summary without it.
--self-test exercises the parsing/skipping logic on synthetic data
and needs neither matplotlib nor an input file (CI runs it).
"""

import argparse
import csv
import re
import sys

SIZE_HEADERS = {"Length", "Problem Size", "N=M"}

# Tail-latency columns the service benches emit ("p99 us",
# "p999 us", "p50"...): machine-dependent diagnostics, not
# paper-figure series.
PERCENTILE_HEADER = re.compile(r"^p\d+(\.\d+)?\b", re.IGNORECASE)


def skip_reason(header, values):
    """Why a column can't be plotted, or None if it can."""
    if "/" in header:
        return "per-unit diagnostic"
    if PERCENTILE_HEADER.match(header.strip()):
        return "per-unit diagnostic"
    if any(v is None for v in values):
        return "non-numeric cells"
    return None


def parse_tables(path):
    """Split a --csv dump into (header, rows) tables."""
    tables = []
    current = None
    with open(path, newline="") as f:
        for row in csv.reader(f):
            if not row:
                continue
            if row[0] in SIZE_HEADERS:
                current = {"header": row, "rows": []}
                tables.append(current)
            elif current is not None:
                current["rows"].append(row)
    return tables


def to_number(cell):
    try:
        return float(cell.replace(",", ""))
    except ValueError:
        return None


def self_test():
    """Assert the column-skipping contract on synthetic tables."""
    import tempfile

    csv_text = (
        "Length,Tiled,MEvents/s,ns/span,nodes/s,arena KiB,Ragged,"
        "p99 us,p999 us\n"
        "64,10,99.5,1.25,552032,1024,1,42,262143\n"
        "128,12,98.0,1.30,673719,2048\n"
    )
    with tempfile.NamedTemporaryFile(
        "w", suffix=".csv", delete=False
    ) as f:
        f.write(csv_text)
        path = f.name
    tables = parse_tables(path)
    assert len(tables) == 1, tables
    header = tables[0]["header"]
    rows = tables[0]["rows"]
    assert header[0] == "Length" and len(rows) == 2

    def col(name):
        i = header.index(name)
        return [to_number(r[i]) if i < len(r) else None for r in rows]

    # Plain numeric columns plot; any "/" header is skipped whatever
    # its values; a ragged column skips for its missing cell.
    assert skip_reason("Tiled", col("Tiled")) is None
    assert skip_reason("MEvents/s", col("MEvents/s")) \
        == "per-unit diagnostic"
    assert skip_reason("ns/span", col("ns/span")) \
        == "per-unit diagnostic"
    # The search benches' throughput column is a per-unit diagnostic
    # (machine-dependent); the arena footprint column is plain numeric
    # and plots.
    assert skip_reason("nodes/s", col("nodes/s")) \
        == "per-unit diagnostic"
    assert skip_reason("arena KiB", col("arena KiB")) is None
    assert skip_reason("Ragged", col("Ragged")) == "non-numeric cells"
    # Tail-latency percentile columns are diagnostics whatever their
    # values -- skipped even where every cell is numeric -- but
    # percentile-lookalike words ("page MB") still plot.
    assert skip_reason("p99 us", col("p99 us")) \
        == "per-unit diagnostic"
    assert skip_reason("p999 us", col("p999 us")) \
        == "per-unit diagnostic"
    assert skip_reason("P50", [1.0]) == "per-unit diagnostic"
    assert skip_reason("page MB", [1.0]) is None
    assert to_number("1,234") == 1234.0
    assert to_number("n/a") is None
    print("plot_benches self-test: OK")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("csv_file", nargs="?")
    ap.add_argument("-o", "--output", default="bench.png")
    ap.add_argument("--title", default="")
    ap.add_argument("--self-test", action="store_true",
                    help="validate parsing/skipping logic and exit")
    args = ap.parse_args()

    if args.self_test:
        self_test()
        return
    if not args.csv_file:
        ap.error("csv_file is required unless --self-test is given")

    tables = parse_tables(args.csv_file)
    if not tables:
        sys.exit("no size-indexed tables found in " + args.csv_file)

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib unavailable; textual summary instead:")
        for i, t in enumerate(tables):
            print(f"table {i}: columns {t['header']}")
            for row in t["rows"]:
                print("  ", row)
        return

    fig, axes = plt.subplots(1, len(tables),
                             figsize=(6 * len(tables), 4.5),
                             squeeze=False)
    for ax, table in zip(axes[0], tables):
        header = table["header"]
        sizes = [to_number(r[0]) for r in table["rows"]]
        for col in range(1, len(header)):
            # Rows narrower than the header (or vice versa) only
            # suppress the affected column, not the whole figure.
            values = [
                to_number(r[col]) if col < len(r) else None
                for r in table["rows"]
            ]
            reason = skip_reason(header[col], values)
            if reason:
                print(f"skipping column '{header[col]}' ({reason})")
                continue
            ax.plot(sizes, values, marker="o", label=header[col])
        ax.set_xscale("log")
        ax.set_xlabel(header[0])
        ax.set_ylabel("Cycles per Iteration")
        ax.grid(True, alpha=0.3)
        ax.legend(fontsize=7)
    if args.title:
        fig.suptitle(args.title)
    fig.tight_layout()
    fig.savefig(args.output, dpi=140)
    print("wrote", args.output)


if __name__ == "__main__":
    main()
