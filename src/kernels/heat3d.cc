#include "kernels/heat3d.h"

namespace uov {

const std::vector<Heat3DVariant> &
allHeat3DVariants()
{
    static const std::vector<Heat3DVariant> all = {
        Heat3DVariant::StorageOptimized, Heat3DVariant::Natural,
        Heat3DVariant::NaturalTiled,     Heat3DVariant::Ov,
        Heat3DVariant::OvTiled,
    };
    return all;
}

const char *
heat3DVariantName(Heat3DVariant v)
{
    switch (v) {
      case Heat3DVariant::Natural:          return "Natural";
      case Heat3DVariant::NaturalTiled:     return "Natural Tiled";
      case Heat3DVariant::Ov:               return "OV-Mapped";
      case Heat3DVariant::OvTiled:          return "OV-Mapped Tiled";
      case Heat3DVariant::StorageOptimized: return "Storage Optimized";
    }
    return "?";
}

int64_t
heat3DTemporaryStorage(Heat3DVariant v, const Heat3DConfig &cfg)
{
    switch (v) {
      case Heat3DVariant::Natural:
      case Heat3DVariant::NaturalTiled:
        return cfg.steps * cfg.nx * cfg.ny;
      case Heat3DVariant::Ov:
      case Heat3DVariant::OvTiled:
        return 2 * cfg.nx * cfg.ny;
      case Heat3DVariant::StorageOptimized:
        return cfg.nx * cfg.ny + 2 * cfg.ny;
    }
    return 0;
}

std::vector<float>
heat3DInput(int64_t nx, int64_t ny, uint64_t seed)
{
    SplitMix64 rng(seed);
    std::vector<float> input(static_cast<size_t>(nx * ny));
    for (auto &v : input)
        v = static_cast<float>(rng.nextDouble());
    return input;
}

} // namespace uov
