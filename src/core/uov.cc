#include "core/uov.h"

#include "geometry/isqrt.h"
#include "support/error.h"

namespace uov {

UovOracle::UovOracle(Stencil stencil) : _cone(std::move(stencil))
{
}

UovOracle::UovOracle(std::shared_ptr<ConeMemo> memo)
    : _cone(std::move(memo))
{
}

bool
UovOracle::isUov(const IVec &w)
{
    UOV_REQUIRE(w.dim() == stencil().dim(),
                "candidate " << w.str() << " has dimension " << w.dim()
                             << " but stencil " << stencil().str()
                             << " has dimension " << stencil().dim());
    if (w.isZero())
        return false;
    for (const auto &v : stencil().deps()) {
        if (!_cone.contains(w - v))
            return false;
    }
    return true;
}

std::optional<UovCertificate>
UovOracle::certify(const IVec &w)
{
    if (!isUov(w))
        return std::nullopt;

    UovCertificate cert;
    cert.uov = w;
    const auto &deps = stencil().deps();
    for (size_t i = 0; i < deps.size(); ++i) {
        auto coeffs = _cone.certificate(w - deps[i]);
        UOV_CHECK(coeffs, "isUov(" << w.str()
                              << ") true but certificate missing for "
                              << (w - deps[i]).str()
                              << " = w - " << deps[i].str()
                              << " over stencil " << stencil().str());
        // Row i is the combination for w with a_ii incremented to
        // account for the v_i we peeled off.
        (*coeffs)[i] += 1;
        cert.rows.push_back(std::move(*coeffs));
    }

    // Verify every row reconstructs w with a positive diagonal.
    for (size_t i = 0; i < cert.rows.size(); ++i) {
        UOV_CHECK(cert.rows[i][i] >= 1,
                  "certificate for " << w.str() << " over stencil "
                      << stencil().str() << ": diagonal coefficient "
                      << cert.rows[i][i] << " for dependence "
                      << deps[i].str() << " must be >= 1");
        IVec sum(stencil().dim());
        for (size_t j = 0; j < deps.size(); ++j)
            sum += deps[j] * cert.rows[i][j];
        UOV_CHECK(sum == w, "certificate row " << i
                                << " for dependence " << deps[i].str()
                                << " over stencil " << stencil().str()
                                << " sums to " << sum.str() << " != "
                                << w.str());
    }
    return cert;
}

GeneralUovOracle::GeneralUovOracle(Stencil schedule_cone,
                                   std::vector<IVec> consumers)
    : _cone(std::move(schedule_cone)), _consumers(std::move(consumers))
{
    UOV_REQUIRE(!_consumers.empty(),
                "array with no consumers needs no storage at all");
    for (const auto &c : _consumers) {
        UOV_REQUIRE(c.dim() == _cone.stencil().dim(),
                    "consumer " << c.str() << " has dimension "
                                << c.dim() << " but schedule cone "
                                << _cone.stencil().str()
                                << " has dimension "
                                << _cone.stencil().dim());
        UOV_REQUIRE(c.isZero() || _cone.stencil().contains(c),
                    "consumer " << c.str()
                        << " is not a schedule dependence; liveness "
                           "would not be schedule-bounded");
    }
}

bool
GeneralUovOracle::isUov(const IVec &w)
{
    UOV_REQUIRE(w.dim() == _cone.stencil().dim(),
                "candidate " << w.str() << " has dimension " << w.dim()
                             << " but schedule cone "
                             << _cone.stencil().str()
                             << " has dimension "
                             << _cone.stencil().dim());
    if (w.isZero())
        return false;
    for (const auto &c : _consumers) {
        if (!_cone.contains(w - c))
            return false;
    }
    return true;
}

IVec
GeneralUovOracle::searchShortest()
{
    IVec initial = initialUov();
    UOV_CHECK(isUov(initial),
              "initial UOV " << initial.str()
                             << " must be safe for schedule cone "
                             << _cone.stencil().str());
    int64_t best_sq = initial.normSquared();
    IVec best = initial;
    int64_t radius = isqrt64(best_sq) + 1;
    size_t d = initial.dim();
    IVec w(d);
    for (size_t c = 0; c < d; ++c)
        w[c] = -radius;
    for (;;) {
        if (!w.isZero() && w.normSquared() < best_sq && isUov(w)) {
            best_sq = w.normSquared();
            best = w;
        }
        size_t c = d;
        bool done = false;
        while (c-- > 0) {
            if (w[c] < radius) {
                ++w[c];
                break;
            }
            w[c] = -radius;
            if (c == 0)
                done = true;
        }
        if (done)
            break;
    }
    return best;
}

bool
ovLegalForLinearSchedule(const IVec &h, const IVec &ov,
                         const Stencil &stencil)
{
    UOV_REQUIRE(h.dim() == stencil.dim() && ov.dim() == stencil.dim(),
                "schedule vector " << h.str() << " and OV " << ov.str()
                                   << " must match stencil "
                                   << stencil.str() << " dimension "
                                   << stencil.dim());
    for (const auto &v : stencil.deps())
        UOV_REQUIRE(h.dot(v) > 0,
                    "h is not a legal schedule vector: h." << v.str()
                        << " <= 0");
    UOV_REQUIRE(!ov.isZero(), "zero occupancy vector for stencil "
                                  << stencil.str());

    int64_t h_ov = h.dot(ov);
    for (const auto &v : stencil.deps()) {
        if (v == ov)
            continue; // the overwriter reads before it writes
        if (h.dot(v) >= h_ov)
            return false;
    }
    return true;
}

std::optional<IVec>
findSharedUov(const std::vector<Stencil> &stencils)
{
    UOV_REQUIRE(!stencils.empty(), "no stencils given");
    size_t d = stencils[0].dim();
    for (const auto &s : stencils)
        UOV_REQUIRE(s.dim() == d, "stencil " << s.str()
                                      << " has dimension " << s.dim()
                                      << " but the first stencil has "
                                      << d);

    std::vector<UovOracle> oracles;
    oracles.reserve(stencils.size());
    int64_t radius_sq = 0;
    for (const auto &s : stencils) {
        oracles.emplace_back(s);
        radius_sq = std::max(radius_sq, s.initialUov().normSquared());
    }
    int64_t radius = isqrt64(radius_sq) + 1;

    std::optional<IVec> best;
    int64_t best_sq = INT64_MAX;
    IVec w(d);
    for (size_t c = 0; c < d; ++c)
        w[c] = -radius;
    for (;;) {
        int64_t sq = w.normSquared();
        if (!w.isZero() && sq <= radius_sq && sq < best_sq) {
            bool all = true;
            for (auto &oracle : oracles) {
                if (!oracle.isUov(w)) {
                    all = false;
                    break;
                }
            }
            if (all) {
                best = w;
                best_sq = sq;
            }
        }
        size_t c = d;
        bool done = false;
        while (c-- > 0) {
            if (w[c] < radius) {
                ++w[c];
                break;
            }
            w[c] = -radius;
            if (c == 0)
                done = true;
        }
        if (done)
            break;
    }
    return best;
}

} // namespace uov
