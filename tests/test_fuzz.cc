/**
 * @file
 * Tests for the differential fuzzing subsystem (src/fuzz/): generator
 * distributions and legality, fixed-seed oracle smoke runs, harness
 * bookkeeping, and -- the critical property -- that an intentionally
 * broken oracle is caught and shrunk to a tiny paste-able repro.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/uov.h"
#include "driver/nest_parser.h"
#include "fuzz/fuzzer.h"
#include "schedule/legality.h"

namespace uov {
namespace fuzz {
namespace {

// ---------------------------------------------------------------- //
// Generators
// ---------------------------------------------------------------- //

TEST(FuzzGenerator, StencilsAreValidAndBounded)
{
    SplitMix64 rng(11);
    GenOptions opt;
    for (int i = 0; i < 200; ++i) {
        Stencil s = randomStencil(rng, opt);
        EXPECT_GE(s.dim(), opt.min_dim);
        EXPECT_LE(s.dim(), opt.max_dim);
        EXPECT_GE(s.size(), 1u);
        EXPECT_LE(s.size(), opt.max_deps);
        for (const auto &v : s.deps()) {
            EXPECT_TRUE(v.isLexPositive());
            EXPECT_GE(v[0], 0);
            for (size_t k = 0; k < v.dim(); ++k)
                EXPECT_LE(std::abs(v[k]), opt.max_coord);
        }
        // The header contract: generated stencils always admit the
        // exact positive functional.
        EXPECT_TRUE(s.positiveFunctional().has_value());
    }
}

TEST(FuzzGenerator, DeterministicFromSeed)
{
    SplitMix64 a(77), b(77);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(randomStencil(a).deps(), randomStencil(b).deps());

    FuzzCase ca = makeCase(123456, {});
    FuzzCase cb = makeCase(123456, {});
    EXPECT_EQ(ca.deps, cb.deps);
    EXPECT_EQ(ca.candidates, cb.candidates);
    EXPECT_EQ(ca.lo, cb.lo);
    EXPECT_EQ(ca.hi, cb.hi);
}

TEST(FuzzGenerator, IsgBoxesRespectSideBounds)
{
    SplitMix64 rng(3);
    GenOptions opt;
    for (int i = 0; i < 100; ++i) {
        IVec lo, hi;
        randomIsgBox(rng, 3, opt, lo, hi);
        for (size_t k = 0; k < 3; ++k) {
            EXPECT_LE(lo[k], hi[k]);
            EXPECT_GE(hi[k] - lo[k], opt.min_box_side);
            EXPECT_LE(hi[k] - lo[k], opt.max_box_side);
        }
    }
}

TEST(FuzzGenerator, LegalSchedulesRespectTheStencil)
{
    // The generator promises legality; the empirical oracle verifies
    // it, for both the adversarial and the cone-safe families.
    SplitMix64 rng(2026);
    for (int i = 0; i < 40; ++i) {
        Stencil s = randomStencilDim(rng, 2, {});
        IVec lo{0, 0}, hi{5, 5};
        auto sched = randomLegalSchedule(rng, s);
        EXPECT_TRUE(scheduleRespectsStencil(*sched, lo, hi, s))
            << sched->name() << " over " << s.str();
        auto safe = randomLegalSchedule(rng, s, /*cone_safe=*/true);
        EXPECT_TRUE(scheduleRespectsStencil(*safe, lo, hi, s))
            << safe->name() << " over " << s.str();
        // cone_safe never falls back to an in-box topological order.
        EXPECT_EQ(safe->name().find("random-topo"), std::string::npos);
    }
}

TEST(FuzzGenerator, NestsCarryExtractableStencils)
{
    SplitMix64 rng(31);
    for (int i = 0; i < 50; ++i) {
        LoopNest nest = randomNest(rng);
        FuzzCase c = caseFromNest(nest);
        EXPECT_TRUE(c.valid()) << c.str();
        EXPECT_FALSE(c.candidates.empty());
    }
}

// ---------------------------------------------------------------- //
// Oracles: fixed-seed smoke (the differential claim itself)
// ---------------------------------------------------------------- //

class OracleSmoke : public ::testing::TestWithParam<OracleKind>
{
};

TEST_P(OracleSmoke, TwentyFixedSeedsAgree)
{
    SplitMix64 seeds(0xF00D);
    for (int i = 0; i < 20; ++i) {
        uint64_t seed = seeds.next();
        FuzzCase c = makeCase(seed, {});
        OracleVerdict v = runOracle(GetParam(), c);
        EXPECT_FALSE(v.has_value())
            << oracleName(GetParam()) << " seed " << seed << ": " << *v;
    }
}

INSTANTIATE_TEST_SUITE_P(AllOracles, OracleSmoke,
                         ::testing::Values(OracleKind::Membership,
                                           OracleKind::Search,
                                           OracleKind::Mapping,
                                           OracleKind::Streaming,
                                           OracleKind::Fault),
                         [](const auto &info) {
                             return std::string(
                                 oracleName(info.param));
                         });

TEST(FuzzOracles, BruteForceConeAgreesOnKnownPoints)
{
    // Independent spot-check of the independent checker.
    Stencil s({IVec{1, -2}, IVec{1, 2}});
    EXPECT_EQ(bruteForceConeContains(s, IVec{2, 0}),
              std::optional<bool>(true)); // v1 + v2
    EXPECT_EQ(bruteForceConeContains(s, IVec{0, 0}),
              std::optional<bool>(true)); // empty combination
    EXPECT_EQ(bruteForceConeContains(s, IVec{0, 1}),
              std::optional<bool>(false));
    EXPECT_EQ(bruteForceConeContains(s, IVec{-1, 0}),
              std::optional<bool>(false)); // h . target < 0
}

// ---------------------------------------------------------------- //
// Harness
// ---------------------------------------------------------------- //

TEST(FuzzHarness, ReportCountsAndDeterminism)
{
    FuzzOptions opt;
    opt.seed = 7;
    opt.iters = 24;
    FuzzReport a = runFuzzer(opt);
    EXPECT_TRUE(a.ok()) << a.str();
    EXPECT_EQ(a.cases, 24u);
    EXPECT_EQ(a.corpus_cases, 0u);
    EXPECT_EQ(a.oracle_runs, 24u);

    FuzzReport b = runFuzzer(opt);
    EXPECT_EQ(b.cases, a.cases);
    EXPECT_EQ(b.failures.size(), a.failures.size());
}

TEST(FuzzHarness, CorpusDirectoryReplays)
{
    FuzzOptions opt;
    opt.iters = 0;
    for (const char *f :
         {"stencil5.nest", "psm.nest", "boundary_topo.nest"})
        opt.corpus_files.push_back(std::string(UOV_CORPUS_DIR) + "/" +
                                   f);
    FuzzReport r = runFuzzer(opt);
    EXPECT_TRUE(r.ok()) << r.str();
    EXPECT_EQ(r.corpus_cases, 3u);
    // Seven stencil-shaped oracles per corpus nest (membership,
    // search, mapping, service, codegen, tune, durability).
    EXPECT_EQ(r.oracle_runs, 21u);
}

TEST(FuzzHarness, MissingCorpusFileIsAFailure)
{
    FuzzOptions opt;
    opt.iters = 0;
    opt.corpus_files.push_back("/nonexistent/nope.nest");
    FuzzReport r = runFuzzer(opt);
    ASSERT_EQ(r.failures.size(), 1u);
    EXPECT_NE(r.failures[0].detail.find("cannot open"),
              std::string::npos);
}

TEST(FuzzHarness, OracleExceptionBecomesVerdict)
{
    // A case the oracles cannot even construct a Stencil from must
    // surface as a verdict, not an escaped exception.
    FuzzCase c;
    c.seed = 1;
    c.deps = {IVec{-1, 0}}; // not lex-positive: Stencil() throws
    c.candidates = {IVec{1, 0}};
    c.lo = IVec{0, 0};
    c.hi = IVec{3, 3};
    OracleVerdict v = runOracle(OracleKind::Membership, c);
    ASSERT_TRUE(v.has_value());
    EXPECT_NE(v->find("oracle threw"), std::string::npos);
}

// ---------------------------------------------------------------- //
// Shrinker
// ---------------------------------------------------------------- //

TEST(FuzzShrinker, MinimizesToThePredicateCore)
{
    // Failure iff some dependence has a coordinate >= 2: the shrunk
    // case must be exactly one dependence carrying the witness.
    FuzzCase c = makeCase(0xABCDE, {});
    c.deps.push_back(IVec(std::vector<int64_t>(c.deps[0].dim(), 0)));
    c.deps.back()[0] = 3;

    auto fails = [](const FuzzCase &m) {
        for (const auto &v : m.deps)
            for (size_t k = 0; k < v.dim(); ++k)
                if (v[k] >= 2)
                    return true;
        return false;
    };
    ASSERT_TRUE(fails(c));

    ShrinkStats stats;
    FuzzCase small = shrinkCase(c, fails, &stats);
    EXPECT_TRUE(fails(small));
    EXPECT_TRUE(small.valid());
    EXPECT_EQ(small.deps.size(), 1u);
    // 1-minimal: every coordinate is 0 except one equal to 2.
    int64_t sum = 0;
    for (size_t k = 0; k < small.deps[0].dim(); ++k)
        sum += std::abs(small.deps[0][k]);
    EXPECT_EQ(sum, 2);
    EXPECT_GT(stats.attempts, 0u);
    EXPECT_GT(stats.accepted, 0u);
}

TEST(FuzzShrinker, NonFailingInputReturnsUnchanged)
{
    FuzzCase c = makeCase(42, {});
    ShrinkStats stats;
    FuzzCase same =
        shrinkCase(c, [](const FuzzCase &) { return false; }, &stats);
    EXPECT_EQ(same.deps, c.deps);
    EXPECT_EQ(stats.accepted, 0u);
}

TEST(FuzzShrinker, NestTextParsesBack)
{
    FuzzCase c = makeCase(555, {});
    LoopNest nest = parseNestString(caseToNestText(c));
    FuzzCase back = caseFromNest(nest);
    EXPECT_EQ(back.deps, c.deps);
}

// ---------------------------------------------------------------- //
// The acceptance property: a broken oracle is caught and shrunk
// ---------------------------------------------------------------- //

TEST(FuzzMutation, BrokenOracleIsCaughtAndShrunkToTinyRepro)
{
    // Mutated membership claim: "the initial UOV is universal only
    // when all of its coordinates are non-negative" -- a plausible
    // sign bug.  The real oracle proves the initial UOV universal
    // unconditionally, so the differential predicate fails exactly
    // on stencils whose dependence sum has a negative coordinate.
    auto broken_disagrees = [](const FuzzCase &m) {
        Stencil s = m.stencil();
        UovOracle oracle(s);
        IVec w = s.initialUov();
        bool real = oracle.isUov(w);
        bool mutated = real;
        for (size_t k = 0; k < w.dim(); ++k)
            if (w[k] < 0)
                mutated = false;
        return real != mutated;
    };

    // Sweep fixed seeds until the fuzzer-style generator produces a
    // case the broken oracle miscounts; the generator draws negative
    // trailing coordinates often, so this terminates fast.
    SplitMix64 seeds(0xBADBEEF);
    FuzzCase failing;
    bool found = false;
    for (int i = 0; i < 500 && !found; ++i) {
        FuzzCase c = makeCase(seeds.next(), {});
        if (broken_disagrees(c)) {
            failing = c;
            found = true;
        }
    }
    ASSERT_TRUE(found) << "no disagreeing case in 500 seeds";

    ShrinkStats stats;
    FuzzCase small = shrinkCase(failing, broken_disagrees, &stats);

    // The acceptance bar: at most 3 dependence vectors survive.
    EXPECT_TRUE(broken_disagrees(small));
    EXPECT_LE(small.deps.size(), 3u);
    EXPECT_LE(small.deps.size(), failing.deps.size());

    // And the repro is paste-able: the nest text parses back into a
    // case with the same stencil, and the block names the oracle.
    std::string repro =
        reproString(small, "membership", "mutation check");
    EXPECT_NE(repro.find("uovfuzz --replay"), std::string::npos);
    LoopNest nest = parseNestString(caseToNestText(small));
    EXPECT_EQ(caseFromNest(nest).deps, small.deps);
}

} // namespace
} // namespace fuzz
} // namespace uov
