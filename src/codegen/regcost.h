/**
 * @file
 * Register-pressure cost model for unroll-and-jam factor selection
 * (the "Tiling Perspective for Register Optimization" direction from
 * PAPERS.md, scaled down to the paper's uniform-stencil class).
 *
 * Unrolling the innermost loop by U and jamming the second-innermost
 * loop by J replicates the statement J*U times per iteration of the
 * emitted body.  Copies whose read offsets coincide share a load, and
 * a read that lands on another copy's write is forwarded through a
 * register instead of touching memory at all.  The model enumerates a
 * small candidate grid, counts distinct loads / forwards / registers
 * exactly (the dependence distances are constants, so the count is a
 * set cardinality, not an estimate), and picks the legal candidate
 * with the fewest loads per iteration that still fits the register
 * budget.
 *
 * The budget is informed by the live-value count the mapping layer
 * already knows: a kernel whose whole OV-mapped working set fits in
 * registers cannot need more load slots than it has cells.
 */

#ifndef UOV_CODEGEN_REGCOST_H
#define UOV_CODEGEN_REGCOST_H

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/ivec.h"
// jamLegal lives with the other schedule-legality predicates; kept
// reachable from here because jam selection is its main client.
#include "schedule/legality.h"

namespace uov {

/** One unroll-and-jam candidate with its exact register economics. */
struct RegisterPlan
{
    int64_t jam = 1;    ///< unroll-and-jam factor, second-innermost
    int64_t unroll = 1; ///< unroll factor, innermost loop
    int64_t loads = 0;  ///< distinct val() reads per emitted body
    int64_t forwards = 0; ///< reads satisfied by an in-tile write
    int64_t regs = 0;   ///< estimated registers the body keeps live

    /** Statement copies per emitted body. */
    int64_t copies() const { return jam * unroll; }

    /** Loads per original iteration (the quantity minimized). */
    double loadsPerIter() const
    {
        return static_cast<double>(loads) /
               static_cast<double>(copies());
    }

    std::string str() const;
};

/**
 * Pick unroll-and-jam factors for a depth-@p depth nest whose reads
 * carry the constant distances @p dists.
 *
 * Candidates are {1,2,4} x {1,2,4,8} (jam fixed to 1 for 1-D nests
 * and for illegal jams).  @p available_regs bounds the estimated
 * pressure; @p live_hint, when positive, is the mapping layer's
 * simultaneously-live value count -- distinct loads can never exceed
 * it, so it tightens the pressure estimate for tiny working sets.
 *
 * Deterministic: a pure function of its arguments.
 * @pre depth >= 1, every distance has dimension depth
 */
RegisterPlan pickRegisterPlan(const std::vector<IVec> &dists,
                              size_t depth,
                              int64_t available_regs = 16,
                              int64_t live_hint = 0);

/**
 * Exact register economics of one (jam, unroll) choice (the inner
 * loop of pickRegisterPlan, exposed so tests and benches can tabulate
 * the whole candidate grid).
 * @pre jam >= 1, unroll >= 1; jam == 1 when depth == 1
 */
RegisterPlan evaluateRegisterPlan(const std::vector<IVec> &dists,
                                  size_t depth, int64_t jam,
                                  int64_t unroll,
                                  int64_t live_hint = 0);

} // namespace uov

#endif // UOV_CODEGEN_REGCOST_H
