/**
 * @file
 * Reproduces Figures 12-14: protein string matching cycles per
 * iteration over a problem-size sweep (problem size = n0*n1, square
 * strings), five code versions, three simulated testbeds.
 *
 * Expected shapes: the natural version's O(n0*n1) tables fall out of
 * cache (and, at the top of the sweep, out of the scaled memory)
 * first; OV-mapped and storage-optimized versions stay small.  On the
 * branch-heavy machines (Ultra2 / Alpha presets carry higher
 * mispredict costs) the branch term compresses the relative gap --
 * the paper's conjecture for why tiling did not help there.
 *
 * Execution pipeline: like Figures 9-11, every sweep point runs as a
 * task on the shared thread pool, streaming one kernel pass into all
 * machines that share the address stream (all three for untiled
 * variants, same-tile machines for tiled ones).  The MEvents/s
 * column is aggregate per-core simulation throughput for the row.
 */

#include "bench_common.h"

#include <numeric>

#include "kernels/psm.h"

using namespace uov;

namespace {

PsmConfig
configFor(const MachineConfig &machine, int64_t n)
{
    PsmConfig cfg;
    cfg.n0 = cfg.n1 = n;
    // Tile for L1: a tile's D/E working set ~ L1.
    cfg.tile_i = cfg.tile_j =
        std::max<int64_t>(16, machine.l1.size_bytes / (4 * 8));
    return cfg;
}

std::vector<std::vector<size_t>>
machineGroups(const std::vector<MachineConfig> &machines, PsmVariant v,
              int64_t n)
{
    if (!psmVariantTiled(v)) {
        std::vector<size_t> all(machines.size());
        std::iota(all.begin(), all.end(), size_t{0});
        return {all};
    }
    std::vector<std::vector<size_t>> groups;
    std::vector<int64_t> keys;
    for (size_t i = 0; i < machines.size(); ++i) {
        int64_t key = configFor(machines[i], n).tile_i;
        size_t g = 0;
        while (g < keys.size() && keys[g] != key)
            ++g;
        if (g == keys.size()) {
            keys.push_back(key);
            groups.emplace_back();
        }
        groups[g].push_back(i);
    }
    return groups;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseArgs(argc, argv);
    bench::banner("Figures 12-14 (protein string matching scaling, 3 "
                  "machines)");

    std::vector<int64_t> sides = {32, 100, 316, 1000, 2000};
    if (opt.quick)
        sides = {32, 100, 316};

    auto machines = bench::paperMachines();
    machines[0].memory_bytes = 8ll << 20;
    machines[1].memory_bytes = 16ll << 20;
    machines[2].memory_bytes = 32ll << 20;

    const auto &variants = allPsmVariants();

    struct Meta
    {
        size_t li, vi;
    };
    std::vector<Meta> metas;
    std::vector<std::future<bench::FusedRun>> futures;
    for (size_t li = 0; li < sides.size(); ++li) {
        for (size_t vi = 0; vi < variants.size(); ++vi) {
            PsmVariant v = variants[vi];
            for (auto &group : machineGroups(machines, v, sides[li])) {
                PsmConfig cfg =
                    configFor(machines[group[0]], sides[li]);
                metas.push_back({li, vi});
                futures.push_back(ThreadPool::shared().submit(
                    [&machines, group, cfg, v] {
                        return bench::runFusedGroup(
                            machines, group,
                            [&](StreamingSim &mem, VirtualArena &arena) {
                                runPsm(v, cfg, mem, arena);
                            });
                    }));
            }
        }
    }

    std::vector<std::vector<std::vector<double>>> cycles(
        machines.size(),
        std::vector<std::vector<double>>(
            sides.size(), std::vector<double>(variants.size(), 0)));
    std::vector<double> row_events(sides.size(), 0);
    std::vector<double> row_ns(sides.size(), 0);
    for (size_t t = 0; t < futures.size(); ++t) {
        bench::FusedRun r = futures[t].get();
        for (size_t k = 0; k < r.machines.size(); ++k)
            cycles[r.machines[k]][metas[t].li][metas[t].vi] =
                r.cycles[k];
        row_events[metas[t].li] += static_cast<double>(r.events);
        row_ns[metas[t].li] += r.wall_ns;
    }

    for (size_t mi = 0; mi < machines.size(); ++mi) {
        const auto &machine = machines[mi];
        Table t("Figure " +
                std::string(machine.name == "PentiumPro-200" ? "12"
                            : machine.name == "Ultra2-200"   ? "13"
                                                             : "14") +
                ": cycles/iteration on " + machine.name +
                " (problem size = n0*n1)");
        std::vector<std::string> header = {"Problem Size"};
        for (PsmVariant v : variants)
            header.push_back(psmVariantName(v));
        header.push_back(bench::kThroughputHeader);
        t.header(header);

        for (size_t li = 0; li < sides.size(); ++li) {
            double iters = static_cast<double>(sides[li]) *
                           static_cast<double>(sides[li]);
            auto row = t.addRow();
            row.cell(formatCount(sides[li] * sides[li]));
            for (size_t vi = 0; vi < variants.size(); ++vi)
                row.cell(cycles[mi][li][vi] / iters, 1);
            row.cell(bench::mEventsPerSec(row_events[li], row_ns[li]),
                     2);
        }
        bench::emit(t, opt);
    }

    // Shape check: at the largest size on the PentiumPro, OV-mapped
    // tiled beats natural (Figure 12's headline) -- read off the
    // fused results (the table tile equals L1/32, the seed's check
    // tile).
    {
        auto vi = [&](PsmVariant v) {
            for (size_t i = 0; i < variants.size(); ++i)
                if (variants[i] == v)
                    return i;
            return size_t{0};
        };
        size_t last = sides.size() - 1;
        double iters = static_cast<double>(sides[last]) *
                       static_cast<double>(sides[last]);
        double natural = cycles[0][last][vi(PsmVariant::Natural)] / iters;
        double ov_tiled =
            cycles[0][last][vi(PsmVariant::OvTiled)] / iters;
        std::cerr << "shape check @ size="
                  << formatCount(sides[last] * sides[last]) << " on "
                  << machines[0].name
                  << ": natural=" << formatDouble(natural, 1)
                  << " vs ov_tiled=" << formatDouble(ov_tiled, 1)
                  << " -> "
                  << (ov_tiled < natural ? "reproduced"
                                         : "NOT reproduced")
                  << "\n";
    }
    return 0;
}
