/**
 * @file
 * The differential fuzzing harness: corpus replay + seeded random
 * sweep over the nine oracle families, with automatic shrinking of
 * anything that fails.
 *
 * One harness serves three masters: the uovfuzz CLI (soak runs and
 * bug triage), the fixed-seed ctest smoke suite (CI), and unit tests
 * (which inject intentionally broken oracles to prove failures are
 * caught and shrunk).  Determinism contract: a (seed, iters, oracle)
 * triple always generates the same case sequence, and any failing
 * case is reproducible from its printed case seed alone.
 */

#ifndef UOV_FUZZ_FUZZER_H
#define UOV_FUZZ_FUZZER_H

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "fuzz/oracles.h"
#include "fuzz/shrinker.h"

namespace uov {
namespace fuzz {

/** The nine differential oracle families. */
enum class OracleKind
{
    Membership, ///< isUov vs DONE/DEAD vs brute force vs certificates
    Search,     ///< branch-and-bound vs exhaustive vs ablations
    Mapping,    ///< storage mappings executed under legal schedules
    Streaming,  ///< fused simulation vs record-then-replay vs direct
    Service,    ///< concurrent cached QueryService vs direct search
    Fault,      ///< batches under fail points and random deadlines
    Codegen,    ///< JIT-compiled kernels vs the interpreter oracle
    Tune,       ///< autotuner legality/determinism/anytime contracts
    Durability, ///< store crash/replay prefixes + shed-answer legality
};

/** Number of OracleKind values (the random sweep cycles them all). */
constexpr size_t kOracleKindCount = 9;

const char *oracleName(OracleKind kind);

/** Parse "membership" | "search" | "mapping" | "streaming" |
 *  "service" | "fault" | "codegen" | "tune" | "durability". */
std::optional<OracleKind> parseOracleName(const std::string &name);

/** Harness configuration. */
struct FuzzOptions
{
    uint64_t seed = 1;
    uint64_t iters = 100;
    /** Restrict to one oracle; nullopt cycles through all nine. */
    std::optional<OracleKind> only;
    bool shrink = true;
    GenOptions gen;
    /** Nest files replayed (membership+search+mapping) before the
     *  random sweep -- the seed corpus. */
    std::vector<std::string> corpus_files;
    /** Progress/diagnostic stream (nullptr = silent). */
    std::ostream *log = nullptr;
};

/** One caught discrepancy, shrunk and ready to paste into a report. */
struct FuzzFailure
{
    std::string oracle;
    uint64_t case_seed = 0;     ///< 0 for corpus-file cases
    std::string source;         ///< "random" or the corpus path
    std::string detail;         ///< the oracle's discrepancy text
    FuzzCase shrunk;            ///< minimized case (== original when
                                ///< shrinking is off or inapplicable)
    ShrinkStats shrink_stats;
    std::string repro;          ///< paste-able repro block
};

/** Outcome of one harness run. */
struct FuzzReport
{
    uint64_t cases = 0;         ///< inputs generated (corpus + random)
    uint64_t corpus_cases = 0;  ///< corpus inputs replayed
    uint64_t oracle_runs = 0;   ///< oracle invocations
    std::vector<FuzzFailure> failures;

    bool ok() const { return failures.empty(); }
    std::string str() const;
};

/**
 * Replay the corpus, then sweep @p iters random cases.  Never throws
 * on oracle failure -- discrepancies (including exceptions escaping
 * an oracle) become FuzzFailure entries.
 */
FuzzReport runFuzzer(const FuzzOptions &options);

/**
 * Run one oracle on one stencil-shaped case (the harness's inner
 * step, exposed for unit tests and --replay).  Streaming ignores the
 * case body and uses only its seed.  Exceptions are converted into a
 * verdict.
 */
OracleVerdict runOracle(OracleKind kind, const FuzzCase &c);

} // namespace fuzz
} // namespace uov

#endif // UOV_FUZZ_FUZZER_H
