#include "mapping/storage_mapping.h"

#include <sstream>

#include "geometry/lattice.h"
#include "support/checked.h"
#include "support/error.h"

namespace uov {

StorageMapping
StorageMapping::create(const IVec &ov, const Polyhedron &isg,
                       ModLayout layout, int64_t block_pad)
{
    UOV_REQUIRE(!ov.isZero(), "zero occupancy vector");
    UOV_REQUIRE(block_pad >= 0, "negative block padding");
    UOV_REQUIRE(ov.dim() == isg.dim(),
                "OV dimension " << ov.dim() << " != ISG dimension "
                                << isg.dim());
    size_t d = ov.dim();

    StorageMapping sm;
    sm._ov = ov;
    sm._layout = layout;
    sm._g = ov.content();
    IVec prim = ov.dividedBy(sm._g);

    // Class selector for non-prime OVs: alpha . prim == 1, so points
    // along the primitive direction cycle through the g classes
    // (Section 4.2; for ov=(2,0) this is q0 mod 2, as in Figure 5).
    if (sm._g > 1)
        sm._alpha = bezoutVector(prim);
    else
        sm._alpha = IVec(d); // unused

    // Projection rows whose joint kernel is exactly the OV line.
    if (d == 2) {
        sm._mv.push_back(IVec{checkedNeg(prim[1]), prim[0]});
    } else if (d == 1) {
        // Degenerate: every iteration lands in the same projected slot
        // (all reuse happens along the single axis).
        sm._mv.clear();
    } else {
        IMatrix u = unimodularCompletion(prim);
        for (size_t r = 1; r < u.rows(); ++r)
            sm._mv.push_back(u.row(r));
    }

    // Per-row extents over the ISG, linearized row-major.
    int64_t extent_product = 1;
    sm._lo.resize(sm._mv.size());
    std::vector<int64_t> extent(sm._mv.size());
    for (size_t k = 0; k < sm._mv.size(); ++k) {
        int64_t lo = isg.minDot(sm._mv[k]).ceil();
        int64_t hi = isg.maxDot(sm._mv[k]).floor();
        UOV_REQUIRE(hi >= lo, "ISG projects to an empty range along "
                                  << sm._mv[k].str());
        sm._lo[k] = lo;
        extent[k] = checkedAdd(checkedSub(hi, lo), 1);
        extent_product = checkedMul(extent_product, extent[k]);
    }
    sm._stride.assign(sm._mv.size(), 1);
    for (size_t k = sm._mv.size(); k-- > 1;)
        sm._stride[k - 1] = checkedMul(sm._stride[k], extent[k]);

    if (layout == ModLayout::Blocked && sm._g > 1 && block_pad > 0) {
        int64_t padded = checkedAdd(extent_product, block_pad);
        sm._mod_factor = padded;
        sm._cells = checkedMul(sm._g, padded);
    } else {
        sm._cells = checkedMul(sm._g, extent_product);
        sm._mod_factor =
            layout == ModLayout::Interleaved ? 1 : extent_product;
    }
    return sm;
}

int64_t
StorageMapping::operator()(const IVec &q) const
{
    UOV_CHECK(q.dim() == _ov.dim(), "point dimension mismatch");

    int64_t linear = 0;
    for (size_t k = 0; k < _mv.size(); ++k) {
        int64_t coord = checkedSub(_mv[k].dot(q), _lo[k]);
        linear = checkedAdd(linear, checkedMul(coord, _stride[k]));
    }

    if (_g == 1)
        return linear;

    int64_t cls = floorMod(_alpha.dot(q), _g);
    if (_layout == ModLayout::Interleaved)
        return checkedAdd(checkedMul(linear, _g), cls);
    return checkedAdd(linear, checkedMul(cls, _mod_factor));
}

std::string
StorageMapping::str() const
{
    std::ostringstream oss;
    oss << "SM(q) = ";
    if (_mv.empty()) {
        oss << "0";
    } else {
        for (size_t k = 0; k < _mv.size(); ++k) {
            if (k)
                oss << " + ";
            IVec scaled =
                (_g > 1 && _layout == ModLayout::Interleaved)
                    ? _mv[k] * _g
                    : _mv[k];
            int64_t stride = _stride[k];
            oss << scaled.str() << ".q";
            if (stride != 1)
                oss << "*" << stride;
        }
    }
    if (_g > 1) {
        oss << " + (" << _alpha.str() << ".q mod " << _g << ")";
        if (_layout == ModLayout::Blocked)
            oss << "*" << _mod_factor;
    }
    // Fold the shift: the -lo terms scaled like the linear part.
    int64_t shift = 0;
    for (size_t k = 0; k < _mv.size(); ++k)
        shift += -_lo[k] * _stride[k];
    if (_g > 1 && _layout == ModLayout::Interleaved)
        shift *= _g;
    oss << " + " << shift;
    oss << "   [" << _cells << " cells, "
        << (_layout == ModLayout::Interleaved ? "interleaved" : "blocked")
        << "]";
    return oss.str();
}

} // namespace uov
