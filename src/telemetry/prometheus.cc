#include "telemetry/prometheus.h"

#include <sstream>

namespace uov {
namespace telemetry {

namespace {

bool
legalNameChar(char c, bool first)
{
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
        c == ':')
        return true;
    return !first && c >= '0' && c <= '9';
}

/** le="..." upper bound of bit-width bucket @p b (2^b - 1). */
uint64_t
bucketUpper(size_t b)
{
    return b == 0 ? 0 : (uint64_t{1} << b) - 1;
}

void
renderHistogram(std::ostringstream &oss, const std::string &name,
                const Histogram::Snapshot &h)
{
    oss << "# TYPE " << name << " histogram\n";
    // Cumulative series over the non-empty prefix of the bucket
    // range: rendering all 48 would be 47 zero lines for a typical
    // microsecond histogram.  The +Inf bucket is mandatory and by
    // construction equals the count.
    size_t last = 0;
    for (size_t b = 0; b < Histogram::kBuckets; ++b)
        if (h.buckets[b] != 0)
            last = b;
    uint64_t cumulative = 0;
    for (size_t b = 0; b <= last && h.count != 0; ++b) {
        cumulative += h.buckets[b];
        oss << name << "_bucket{le=\"" << bucketUpper(b) << "\"} "
            << cumulative << "\n";
    }
    oss << name << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    oss << name << "_sum " << h.sum << "\n";
    oss << name << "_count " << h.count << "\n";
    // Interpolated quantile companions (gauges: they can move down).
    oss << "# TYPE " << name << "_p50 gauge\n"
        << name << "_p50 " << h.percentile(0.5) << "\n"
        << "# TYPE " << name << "_p99 gauge\n"
        << name << "_p99 " << h.percentile(0.99) << "\n"
        << "# TYPE " << name << "_p999 gauge\n"
        << name << "_p999 " << h.percentile(0.999) << "\n";
}

} // namespace

std::string
sanitizeMetricName(const std::string &name)
{
    if (name.empty())
        return "_";
    std::string out;
    out.reserve(name.size() + 1);
    for (size_t i = 0; i < name.size(); ++i) {
        char c = name[i];
        if (legalNameChar(c, /*first=*/out.empty()))
            out.push_back(c);
        else if (out.empty() && c >= '0' && c <= '9') {
            out.push_back('_');
            out.push_back(c);
        } else
            out.push_back('_');
    }
    return out;
}

std::string
escapeLabelValue(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        switch (c) {
          case '\\':
            out += "\\\\";
            break;
          case '"':
            out += "\\\"";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out.push_back(c);
        }
    }
    return out;
}

std::string
renderPrometheus(const MetricsSnapshot &snapshot,
                 const std::string &prefix)
{
    std::ostringstream oss;
    for (const auto &[name, value] : snapshot.counters) {
        std::string n = prefix + sanitizeMetricName(name) + "_total";
        oss << "# TYPE " << n << " counter\n" << n << " " << value
            << "\n";
    }
    for (const auto &[name, value] : snapshot.gauges) {
        std::string n = prefix + sanitizeMetricName(name);
        oss << "# TYPE " << n << " gauge\n" << n << " " << value
            << "\n";
    }
    for (const auto &[name, h] : snapshot.histograms)
        renderHistogram(oss, prefix + sanitizeMetricName(name), h);
    return oss.str();
}

std::string
renderPrometheus(const MetricsRegistry &registry,
                 const std::string &prefix)
{
    return renderPrometheus(registry.snapshot(), prefix);
}

} // namespace telemetry
} // namespace uov
