/**
 * @file
 * Reproduces Figure 6 and Section 4.3: computing storage allocation
 * from the ISG's extreme points -- for a rectangle (0,0)..(n,m) with
 * ov = (1,1), |mv.xp1 - mv.xp2| + 1 = n + m + 1 cells.
 */

#include "bench_common.h"

#include "core/storage_count.h"
#include "mapping/storage_mapping.h"

using namespace uov;

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseArgs(argc, argv);
    bench::banner("Figure 6 (storage allocation from ISG extreme "
                  "points)");

    Table t("Figure 6: ov=(1,1) on the rectangle (0,0)..(n,m)");
    t.header({"n", "m", "mv", "mv.xp1", "mv.xp2", "cells", "n+m+1"});
    for (auto [n, m] : {std::pair<int64_t, int64_t>{8, 5},
                        {20, 13},
                        {100, 1},
                        {64, 64}}) {
        Polyhedron isg = Polyhedron::box(IVec{0, 0}, IVec{n, m});
        IVec mv = mappingVector2D(IVec{1, 1});
        // The extreme points achieving the projection extremes.
        int64_t p1 = mv.dot(IVec{0, m}); // max: -0 + m
        int64_t p2 = mv.dot(IVec{n, 0}); // min: -n + 0
        t.addRow()
            .cell(n)
            .cell(m)
            .cell(mv.str())
            .cell(p1)
            .cell(p2)
            .cell(storageCellCount(IVec{1, 1}, isg))
            .cell(n + m + 1);
    }
    bench::emit(t, opt);

    // General OVs on general vertices: allocation always covers the
    // occupied classes and is exact for the paper's unit mappings.
    Table g("Allocation vs occupied classes on the Figure 3 "
            "parallelogram");
    g.header({"ov", "allocated", "occupied (exact)"});
    Polyhedron para = Polyhedron::fromVertices2D(
        {IVec{1, 1}, IVec{1, 6}, IVec{10, 4}, IVec{10, 9}});
    for (const IVec &ov :
         {IVec{1, 1}, IVec{3, 1}, IVec{3, 0}, IVec{2, 2}}) {
        g.addRow()
            .cell(ov.str())
            .cell(storageCellCount(ov, para))
            .cell(storageCellCountExact(ov, para));
    }
    bench::emit(g, opt);
    return 0;
}
