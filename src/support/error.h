/**
 * @file
 * Error handling primitives for the uov library.
 *
 * Follows the gem5 convention of distinguishing internal invariant
 * violations (panic -> UovInternalError) from user-input problems
 * (fatal -> UovUserError).  Both throw exceptions rather than abort so
 * that library users and tests can recover.
 */

#ifndef UOV_SUPPORT_ERROR_H
#define UOV_SUPPORT_ERROR_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace uov {

/** Base class of all exceptions thrown by the uov library. */
class UovError : public std::runtime_error
{
  public:
    explicit UovError(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {}
};

/**
 * Thrown when a library invariant is violated: this indicates a bug in
 * the library itself, never a user mistake.
 */
class UovInternalError : public UovError
{
  public:
    explicit UovInternalError(const std::string &what_arg)
        : UovError("internal error: " + what_arg)
    {}
};

/**
 * Thrown when the caller supplied invalid input (empty stencil,
 * non-lexicographically-positive dependence, degenerate polyhedron...).
 */
class UovUserError : public UovError
{
  public:
    explicit UovUserError(const std::string &what_arg)
        : UovError(what_arg)
    {}
};

/** Thrown when exact integer arithmetic would overflow. */
class UovOverflowError : public UovError
{
  public:
    explicit UovOverflowError(const std::string &what_arg)
        : UovError("integer overflow: " + what_arg)
    {}
};

namespace detail {

/** Build "<file>:<line>: <msg>" for check macros. */
std::string checkMessage(const char *file, int line, const char *expr,
                         const std::string &msg);

} // namespace detail

} // namespace uov

/**
 * Check an internal invariant; throws UovInternalError on failure.
 * Usage: UOV_CHECK(x > 0, "x must be positive, got " << x);
 */
#define UOV_CHECK(expr, msg)                                              \
    do {                                                                  \
        if (!(expr)) {                                                    \
            std::ostringstream uov_check_oss_;                            \
            uov_check_oss_ << msg;                                        \
            throw ::uov::UovInternalError(::uov::detail::checkMessage(    \
                __FILE__, __LINE__, #expr, uov_check_oss_.str()));        \
        }                                                                 \
    } while (0)

/** Validate user input; throws UovUserError on failure. */
#define UOV_REQUIRE(expr, msg)                                            \
    do {                                                                  \
        if (!(expr)) {                                                    \
            std::ostringstream uov_require_oss_;                          \
            uov_require_oss_ << msg;                                      \
            throw ::uov::UovUserError(uov_require_oss_.str());            \
        }                                                                 \
    } while (0)

/** Unconditional internal failure. */
#define UOV_UNREACHABLE(msg)                                              \
    do {                                                                  \
        std::ostringstream uov_unreachable_oss_;                          \
        uov_unreachable_oss_ << msg;                                      \
        throw ::uov::UovInternalError(::uov::detail::checkMessage(        \
            __FILE__, __LINE__, "unreachable", uov_unreachable_oss_.str())); \
    } while (0)

#endif // UOV_SUPPORT_ERROR_H
