#include "core/reduction.h"

#include "support/checked.h"
#include "support/error.h"

namespace uov {

int64_t
PartitionInstance::half() const
{
    int64_t total = 0;
    for (int64_t a : values)
        total = checkedAdd(total, a);
    UOV_REQUIRE(total % 2 == 0, "partition instance total " << total
                                    << " is odd: trivially unsolvable, "
                                       "construction undefined");
    return total / 2;
}

bool
PartitionInstance::valid() const
{
    if (values.empty())
        return false;
    int64_t total = 0;
    for (int64_t a : values) {
        if (a <= 0)
            return false;
        total = checkedAdd(total, a);
    }
    return total % 2 == 0;
}

UovMembershipInstance
buildReduction(const PartitionInstance &instance)
{
    UOV_REQUIRE(instance.valid(),
                "reduction needs positive values with an even sum");
    auto n = static_cast<int64_t>(instance.values.size());
    UOV_REQUIRE(n <= 12, "reduction limited to n <= 12 (magic "
                         "coordinates must fit int64, stencil must fit "
                         "32 vectors); got n=" << n);

    // powers[i] = (n+1)^i, exactly.
    std::vector<int64_t> powers(n + 1);
    powers[0] = 1;
    for (int64_t i = 1; i <= n; ++i)
        powers[i] = checkedMul(powers[i - 1], n + 1);

    std::vector<IVec> deps;
    for (int64_t i = 0; i < n; ++i) {
        int64_t magic = checkedAdd(powers[i], powers[n]);
        deps.push_back(IVec{0, magic});
        deps.push_back(IVec{instance.values[i], magic});
    }

    // w = (h, n*(n+1)^n + ((n+1)^n - 1)/n): the second coordinate is
    // the sum over i of the magic values, so exactly n stencil vectors
    // -- one per index -- participate in any decomposition.
    int64_t h = instance.half();
    int64_t geo = (powers[n] - 1) / n; // sum_{i<n} (n+1)^i, exact
    int64_t w2 = checkedAdd(checkedMul(n, powers[n]), geo);

    return UovMembershipInstance{Stencil(std::move(deps)), IVec{h, w2}};
}

std::optional<uint64_t>
solvePartitionBruteForce(const PartitionInstance &instance)
{
    UOV_REQUIRE(instance.valid(), "invalid partition instance");
    size_t n = instance.values.size();
    UOV_REQUIRE(n <= 24, "brute force limited to n <= 24");
    int64_t h = instance.half();

    for (uint64_t mask = 0; mask < (1ull << n); ++mask) {
        int64_t sum = 0;
        for (size_t i = 0; i < n; ++i)
            if (mask & (1ull << i))
                sum += instance.values[i];
        if (sum == h)
            return mask;
    }
    return std::nullopt;
}

} // namespace uov
