/**
 * @file
 * C code generation for OV-mapped loop nests (Section 4: "After
 * selecting an occupancy vector ... we must determine a storage
 * mapping in order to generate code").
 *
 * Given a loop nest, a mapping plan, and a schedule choice, emits a
 * self-contained C function:
 *
 *   void kernel(const double *input, double *output);
 *
 * with the temporary array declared at exactly
 * plan.mapping.cellCount() elements and every access routed through
 * SM(q) = mv.q + shift + modterm.  Supported schedules: the original
 * lexicographic order (1- to 6-D nests) and rectangular tiling of a
 * skewed space (2-D, Section 2's tiling).  The generated text is
 * deterministic; the integration tests compile it with the host C
 * compiler, load it with dlopen, and compare against a bit-exact
 * C++ reference.
 */

#ifndef UOV_CODEGEN_CODEGEN_H
#define UOV_CODEGEN_CODEGEN_H

#include <optional>
#include <string>
#include <vector>

#include "analysis/pipeline.h"
#include "geometry/matrix.h"
#include "ir/program.h"

namespace uov {

/** How the generated loops are ordered. */
enum class GenSchedule
{
    Lexicographic, ///< original program order
    SkewedTiled,   ///< rectangular tiles of the skewed space
};

/** Storage discipline of the generated temporary array. */
enum class GenStorage
{
    Expanded, ///< full array over the iteration box (baseline)
    OvMapped, ///< plan.mapping's cells
};

/** Code-generation parameters. */
struct CodegenOptions
{
    GenSchedule schedule = GenSchedule::Lexicographic;
    GenStorage storage = GenStorage::OvMapped;
    std::vector<int64_t> tile_sizes; ///< required for SkewedTiled
    std::string function_name = "uov_kernel";
};

/** A generated compilation unit. */
struct GeneratedCode
{
    std::string source;        ///< complete C translation unit
    std::string function_name; ///< exported symbol
    int64_t temp_cells;        ///< temporary array size in elements
};

/**
 * Generate C for @p nest's statement 0 with @p plan's storage mapping.
 *
 * The emitted function signature is
 *   void <name>(const double *input, double *output);
 * where input supplies boundary values indexed by a canned convention
 * (see the generated comment) and output receives one value per
 * iteration-space point on the final hyperplane of dimension 0.
 *
 * @pre the nest is 1- to 6-D with a single statement whose reads all
 *      carry constant loop-carried distances (the paper's program
 *      class); SkewedTiled additionally requires depth 2
 */
GeneratedCode generateC(const LoopNest &nest, const MappingPlan &plan,
                        const CodegenOptions &options = {});

/**
 * Helper for tests/examples: compile @p code with the host C compiler
 * into a shared object under @p work_dir and return the .so path.
 * @throws UovError when no compiler is available or compilation fails
 */
std::string compileToSharedObject(const GeneratedCode &code,
                                  const std::string &work_dir);

} // namespace uov

#endif // UOV_CODEGEN_CODEGEN_H
