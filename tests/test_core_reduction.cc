/**
 * @file
 * Tests for the NP-completeness reduction (Section 3.1 theorem):
 * PARTITION instances map to UOV-membership queries, and the answers
 * agree in both directions.
 */

#include <gtest/gtest.h>

#include "core/reduction.h"
#include "core/uov.h"
#include "support/rng.h"

namespace uov {
namespace {

TEST(Reduction, InstanceValidation)
{
    EXPECT_TRUE((PartitionInstance{{1, 1}}).valid());
    EXPECT_TRUE((PartitionInstance{{3, 1, 2}}).valid());
    EXPECT_FALSE((PartitionInstance{{}}).valid());
    EXPECT_FALSE((PartitionInstance{{1, 2}}).valid()); // odd total
    EXPECT_FALSE((PartitionInstance{{0, 2, 2}}).valid());
    EXPECT_FALSE((PartitionInstance{{-1, 1, 2}}).valid());
}

TEST(Reduction, BruteForceOracle)
{
    auto sol = solvePartitionBruteForce(PartitionInstance{{1, 2, 3}});
    ASSERT_TRUE(sol.has_value());
    // Either {3} or {1,2}.
    int64_t sum = 0;
    std::vector<int64_t> vals{1, 2, 3};
    for (size_t i = 0; i < 3; ++i)
        if (*sol & (1ull << i))
            sum += vals[i];
    EXPECT_EQ(sum, 3);

    EXPECT_FALSE(
        solvePartitionBruteForce(PartitionInstance{{1, 1, 4}}).has_value());
}

TEST(Reduction, ConstructionShape)
{
    PartitionInstance inst{{2, 3, 5}};
    UovMembershipInstance red = buildReduction(inst);
    // 2n vectors (r_i and s_i all distinct here).
    EXPECT_EQ(red.stencil.size(), 6u);
    EXPECT_EQ(red.stencil.dim(), 2u);
    EXPECT_EQ(red.query[0], 5); // h = 10/2
    // Second coordinate: n*(n+1)^n + ((n+1)^n - 1)/n with n=3:
    // 3*64 + 21 = 213.
    EXPECT_EQ(red.query[1], 213);
}

TEST(Reduction, SolvableInstanceIsUov)
{
    // {2,3,5}: 2+3 = 5 -> solvable.
    UovMembershipInstance red = buildReduction(PartitionInstance{{2, 3, 5}});
    UovOracle oracle(red.stencil);
    EXPECT_TRUE(oracle.isUov(red.query));
}

TEST(Reduction, UnsolvableInstanceIsNotUov)
{
    // {1,1,4}: total 6, target 3, but subsets reach {0,1,2,4,5,6}.
    UovMembershipInstance red = buildReduction(PartitionInstance{{1, 1, 4}});
    UovOracle oracle(red.stencil);
    EXPECT_FALSE(oracle.isUov(red.query));
}

TEST(Reduction, EquivalenceOnRandomInstances)
{
    SplitMix64 rng(20260704);
    int checked = 0;
    while (checked < 30) {
        size_t n = 2 + rng.nextBelow(4); // 2..5 values
        PartitionInstance inst;
        for (size_t i = 0; i < n; ++i)
            inst.values.push_back(1 + rng.nextInRange(0, 9));
        // Force an even total by adjusting the last element.
        int64_t total = 0;
        for (int64_t v : inst.values)
            total += v;
        if (total % 2 != 0)
            inst.values.back() += 1;
        if (!inst.valid())
            continue;

        bool partition_yes =
            solvePartitionBruteForce(inst).has_value();
        UovMembershipInstance red = buildReduction(inst);
        UovOracle oracle(red.stencil);
        EXPECT_EQ(oracle.isUov(red.query), partition_yes)
            << "values[0]=" << inst.values[0] << " n=" << n;
        ++checked;
    }
}

TEST(Reduction, GuardsRejectOversizedInstances)
{
    PartitionInstance big;
    for (int i = 0; i < 13; ++i)
        big.values.push_back(2);
    ASSERT_TRUE(big.valid());
    EXPECT_THROW(buildReduction(big), UovUserError);
}

} // namespace
} // namespace uov
