/**
 * @file
 * Minimal leveled logger.
 *
 * The library is quiet by default (Warn); benches and examples raise the
 * level to Info to narrate what they reproduce.  Not thread-safe by
 * design -- the library is single-threaded.
 */

#ifndef UOV_SUPPORT_LOGGING_H
#define UOV_SUPPORT_LOGGING_H

#include <iostream>
#include <sstream>
#include <string>

namespace uov {

/** Severity levels, most severe first. */
enum class LogLevel { Error = 0, Warn = 1, Info = 2, Debug = 3 };

/** Global log configuration and sink. */
class Logger
{
  public:
    /** The process-wide logger instance. */
    static Logger &instance();

    LogLevel level() const { return _level; }
    void level(LogLevel lvl) { _level = lvl; }

    /** Redirect output (tests capture messages this way). */
    void sink(std::ostream *os) { _sink = os; }

    /**
     * Emit structured JSON instead of the "[uov:level] msg" prefix
     * format: one object per line with "ts" (milliseconds since the
     * logger first wrote), "level", and "msg" keys, message text
     * escaped with the same helper the metrics JSON uses.  Log
     * shippers ingest this without a parse grammar.
     */
    void setJsonMode(bool on) { _json = on; }
    bool jsonMode() const { return _json; }

    /**
     * Provider for the current request's trace id, consulted on every
     * emitted line.  When set and returning nonzero, JSON-mode lines
     * gain a "trace_id" key (16 lowercase hex digits) and prefix-mode
     * lines a trailing " trace_id=<hex>" token -- the link between a
     * log record and the flight recorder / Perfetto span that share
     * the id.  The telemetry layer installs a provider reading its
     * thread-local request scope (support cannot depend on telemetry,
     * so the dependency is inverted through this hook).  Null (the
     * default) restores plain output.
     */
    using TraceIdFn = uint64_t (*)();
    void setTraceIdProvider(TraceIdFn fn) { _trace_id = fn; }
    TraceIdFn traceIdProvider() const { return _trace_id; }

    bool enabled(LogLevel lvl) const
    {
        return static_cast<int>(lvl) <= static_cast<int>(_level);
    }

    /** Emit one formatted line if @p lvl is enabled. */
    void write(LogLevel lvl, const std::string &msg);

  private:
    Logger() = default;

    LogLevel _level = LogLevel::Warn;
    std::ostream *_sink = &std::cerr;
    bool _json = false;
    TraceIdFn _trace_id = nullptr;
};

/** 16 lowercase hex digits of @p id (the trace-id wire form). */
std::string traceIdHex(uint64_t id);

/** Name of a level for the log prefix. */
const char *logLevelName(LogLevel lvl);

} // namespace uov

#define UOV_LOG(lvl, msg)                                                 \
    do {                                                                  \
        if (::uov::Logger::instance().enabled(lvl)) {                     \
            std::ostringstream uov_log_oss_;                              \
            uov_log_oss_ << msg;                                          \
            ::uov::Logger::instance().write(lvl, uov_log_oss_.str());     \
        }                                                                 \
    } while (0)

#define UOV_LOG_ERROR(msg) UOV_LOG(::uov::LogLevel::Error, msg)
#define UOV_LOG_WARN(msg)  UOV_LOG(::uov::LogLevel::Warn, msg)
#define UOV_LOG_INFO(msg)  UOV_LOG(::uov::LogLevel::Info, msg)
#define UOV_LOG_DEBUG(msg) UOV_LOG(::uov::LogLevel::Debug, msg)

#endif // UOV_SUPPORT_LOGGING_H
