/**
 * @file
 * Deterministic random-input generators for the differential fuzzing
 * harness (src/fuzz/).
 *
 * Every generator consumes a SplitMix64 stream and nothing else, so a
 * case is fully reproducible from its seed: the same seed regenerates
 * the same stencil, nest, ISG box, candidate vectors, and legal
 * schedules on any platform.  Sizes are kept deliberately small (the
 * oracles cross-check against exhaustive enumerations that are
 * exponential in dimension and radius); the knobs in GenOptions bound
 * every dimension of the input space.
 */

#ifndef UOV_FUZZ_GENERATOR_H
#define UOV_FUZZ_GENERATOR_H

#include <memory>
#include <vector>

#include "core/stencil.h"
#include "geometry/ivec.h"
#include "ir/program.h"
#include "schedule/schedule.h"
#include "support/rng.h"

namespace uov {
namespace fuzz {

/** Bounds on generated inputs. */
struct GenOptions
{
    size_t min_dim = 2;       ///< loop-nest depth lower bound
    size_t max_dim = 3;       ///< loop-nest depth upper bound
    size_t max_deps = 4;      ///< stencil vectors per statement
    int64_t max_coord = 3;    ///< |coordinate| bound on dependences
    int64_t min_box_side = 4; ///< ISG box edge length lower bound
    int64_t max_box_side = 7; ///< ISG box edge length upper bound
    size_t max_statements = 3; ///< statements per generated nest
};

/**
 * Random valid stencil: 1..max_deps distinct lexicographically
 * positive vectors of one dimension drawn from [min_dim, max_dim].
 * Every coordinate is bounded by max_coord, and dimension 0 is kept
 * non-negative so generated stencils always admit the exact positive
 * functional (ConeSolver's fast path) -- pathological functional-free
 * stencils are covered by dedicated unit tests, not the fuzzer.
 */
Stencil randomStencil(SplitMix64 &rng, const GenOptions &opt = {});

/** Random stencil of a specific dimension (same distribution). */
Stencil randomStencilDim(SplitMix64 &rng, size_t dim,
                         const GenOptions &opt = {});

/**
 * Random candidate occupancy vector for membership queries: drawn
 * from the cube |w_c| <= radius, biased toward the interesting shell
 * (near-zero and near-initial-UOV candidates are where the oracles
 * disagree when they disagree at all).  May be zero or non-UOV on
 * purpose -- the oracles must agree on rejections too.
 */
IVec randomCandidate(SplitMix64 &rng, size_t dim, int64_t radius);

/** Random ISG box [lo, hi] with side lengths from GenOptions. */
void randomIsgBox(SplitMix64 &rng, size_t dim, const GenOptions &opt,
                  IVec &lo, IVec &hi);

/**
 * Random loop nest in the parser's program class: 1..max_statements
 * statements, each with one uniform write and 1..max_deps uniform
 * reads of its own array (offsets -v for lex-positive v, so statement
 * 0 always carries a regular flow stencil).  Names, bounds, and
 * offsets are all drawn from the rng; the result round-trips through
 * formatNest/parseNest by construction of the IR, which is exactly
 * the property test_nest_parser.cc checks on 1k of these.
 */
LoopNest randomNest(SplitMix64 &rng, const GenOptions &opt = {});

/**
 * Random *legal* schedule for @p stencil: one of
 *  - a random topological order of the dependence graph (always
 *    legal, adversarial tie-breaking),
 *  - a legal loop permutation (falls back to identity),
 *  - a legal wavefront h (perturbed positive functional),
 *  - a skewed rectangular tiling when the stencil admits the
 *    canonical skew (every dependence advances dimension 0).
 * The choice itself is part of the random stream.  Legality is the
 * generator's contract; tests verify it with the empirical oracle.
 *
 * With @p cone_safe the topological-order arm is replaced by a legal
 * wavefront (or program order).  An in-box topological order respects
 * only the dependence edges whose endpoints both land in the ISG box;
 * near the boundary, a forcing chain q <- q-v_i <- ... <- p+v_j can
 * pass through points *outside* the box, and then the topo order may
 * run q before p's last consumer even though q - p is in the
 * dependence cone.  UOV storage reuse (cells shared along q - p = ov)
 * is only guaranteed safe for schedules that respect the full cone
 * precedence -- which every affine family here does: sums of
 * lexicographically positive vectors stay lexicographically positive,
 * so cone differences order consistently under permutation, wavefront,
 * and legal tilings.  Oracles that execute with OV storage must pass
 * cone_safe = true; discovered by this fuzzer (see DESIGN.md).
 */
std::unique_ptr<Schedule> randomLegalSchedule(SplitMix64 &rng,
                                              const Stencil &stencil,
                                              bool cone_safe = false);

} // namespace fuzz
} // namespace uov

#endif // UOV_FUZZ_GENERATOR_H
