/**
 * @file
 * Tests for multi-dimensional affine schedules: enumeration order,
 * legality, agreement with WavefrontSchedule in the 1-D case, the
 * r-dimensional OV-legality rule vs the empirical oracle, and UOV
 * correctness under affine schedules.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/uov.h"
#include "schedule/executor.h"
#include "schedule/legality.h"
#include "schedule/ov_legality.h"

namespace uov {
namespace {

TEST(AffineSchedule, CompleteEnumeration)
{
    AffineSchedule s({IVec{2, 1}, IVec{0, 1}});
    std::set<std::vector<int64_t>> seen;
    uint64_t count = 0;
    s.forEach(IVec{0, 0}, IVec{5, 7}, [&](const IVec &q) {
        ++count;
        EXPECT_TRUE(seen.insert(q.coords()).second);
    });
    EXPECT_EQ(count, 6u * 8u);
}

TEST(AffineSchedule, OrderFollowsTimeTuples)
{
    AffineSchedule s({IVec{1, 1}, IVec{0, 1}});
    std::vector<IVec> order;
    s.forEach(IVec{0, 0}, IVec{1, 1},
              [&](const IVec &q) { order.push_back(q); });
    // times: (0,0)->(0,0), (0,1)->(1,1), (1,0)->(1,0), (1,1)->(2,1).
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], (IVec{0, 0}));
    EXPECT_EQ(order[1], (IVec{1, 0}));
    EXPECT_EQ(order[2], (IVec{0, 1}));
    EXPECT_EQ(order[3], (IVec{1, 1}));
}

TEST(AffineSchedule, OneRowMatchesWavefront)
{
    IVec h{3, 1};
    AffineSchedule affine({h});
    WavefrontSchedule wave(h);
    std::vector<IVec> a, w;
    IVec lo{0, 0}, hi{4, 6};
    affine.forEach(lo, hi, [&](const IVec &q) { a.push_back(q); });
    wave.forEach(lo, hi, [&](const IVec &q) { w.push_back(q); });
    EXPECT_EQ(a, w);
}

TEST(AffineSchedule, RespectsStencilWhenLegal)
{
    Stencil five = stencils::fivePoint();
    // time row (1,0) alone ties whole rows; adding (0,1) orders them.
    AffineSchedule legal({IVec{1, 0}, IVec{0, 1}});
    EXPECT_TRUE(scheduleRespectsStencil(legal, IVec{0, 0}, IVec{6, 6},
                                        five));
    // Reversed second level: (1,0),(0,-1) -- still legal for the
    // 5-point stencil?  time of (1,k) = (1, -k): first component
    // positive, lex-positive: yes.
    AffineSchedule reversed({IVec{1, 0}, IVec{0, -1}});
    EXPECT_TRUE(scheduleRespectsStencil(reversed, IVec{0, 0},
                                        IVec{6, 6}, five));
}

TEST(AffineSchedule, OvRuleMatchesOneDimensionalRule)
{
    Stencil s = stencils::simpleExample();
    for (const IVec &h : {IVec{2, 1}, IVec{1, 2}, IVec{3, 1}}) {
        AffineSchedule affine({h});
        for (const IVec &ov :
             {IVec{1, 1}, IVec{0, 4}, IVec{1, 0}, IVec{2, 2}}) {
            EXPECT_EQ(ovLegalForAffineSchedule(affine, ov, s),
                      ovLegalForLinearSchedule(h, ov, s))
                << h.str() << " " << ov.str();
        }
    }
}

TEST(AffineSchedule, SecondLevelBreaksTiesSafely)
{
    // Stencil {(1,0),(0,1),(1,1)} with schedule ((1,1), (0,1)):
    // ov = (0,2): time (2,2); deps' times (1,0),(1,1),(2,1): all
    // lex-less -> safe under THIS schedule, though not universal.
    Stencil s = stencils::simpleExample();
    AffineSchedule sched({IVec{1, 1}, IVec{0, 1}}, "diag-then-j");
    IVec ov{0, 2};
    ASSERT_FALSE(UovOracle(s).isUov(ov));
    EXPECT_TRUE(ovLegalForAffineSchedule(sched, ov, s));
    EXPECT_TRUE(ovLegalForSchedule(sched, IVec{0, 0}, IVec{7, 7}, ov,
                                   s));
    // The executor agrees.
    StencilComputation comp(s);
    ExecutionResult r =
        runWithOvStorage(comp, sched, IVec{0, 0}, IVec{7, 7}, ov);
    EXPECT_TRUE(r.correct());

    // But the same ov under the transposed schedule clobbers.
    AffineSchedule other({IVec{1, 1}, IVec{1, 0}}, "diag-then-i");
    EXPECT_FALSE(ovLegalForAffineSchedule(other, ov, s));
    ExecutionResult bad =
        runWithOvStorage(comp, other, IVec{0, 0}, IVec{7, 7}, ov);
    EXPECT_FALSE(bad.correct());
}

TEST(AffineSchedule, UovSafeUnderAffineFamily)
{
    Stencil five = stencils::fivePoint();
    StencilComputation comp(five);
    for (const auto &rows :
         {std::vector<IVec>{IVec{1, 0}, IVec{0, 1}},
          std::vector<IVec>{IVec{1, 0}, IVec{0, -1}},
          std::vector<IVec>{IVec{3, 1}},
          std::vector<IVec>{IVec{4, -1}, IVec{0, 1}}}) {
        AffineSchedule sched(rows);
        ASSERT_TRUE(scheduleRespectsStencil(sched, IVec{0, 0},
                                            IVec{7, 7}, five))
            << sched.name();
        ExecutionResult r = runWithOvStorage(
            comp, sched, IVec{0, 0}, IVec{7, 7}, IVec{2, 0});
        EXPECT_TRUE(r.correct()) << sched.name();
        EXPECT_EQ(r.clobbers, 0u) << sched.name();
    }
}

TEST(AffineSchedule, IllegalScheduleRejectedByOvRule)
{
    Stencil five = stencils::fivePoint();
    AffineSchedule bad({IVec{0, 1}}); // ties (1,-2) vs ... illegal
    EXPECT_THROW(ovLegalForAffineSchedule(bad, IVec{2, 0}, five),
                 UovUserError);
    EXPECT_THROW(AffineSchedule({}), UovUserError);
}

} // namespace
} // namespace uov
