/**
 * @file
 * Reproduces Table 1: temporary storage of the 5-point stencil's
 * natural, OV-mapped, and storage-optimized versions -- the symbolic
 * formulas, concrete counts, and the pipeline-derived numbers.
 */

#include "bench_common.h"

#include "analysis/pipeline.h"
#include "kernels/stencil5.h"

using namespace uov;

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseArgs(argc, argv);
    bench::banner("Table 1 (5-point stencil temporary storage)");

    Table t("Table 1: L = array length, T = time steps");
    t.header({"version", "paper formula", "L=1000,T=100",
              "L=100000,T=1000"});
    struct Row
    {
        Stencil5Variant v;
        const char *formula;
    };
    for (const Row &r :
         {Row{Stencil5Variant::Natural, "TL"},
          Row{Stencil5Variant::Ov, "2L"},
          Row{Stencil5Variant::StorageOptimized, "L+3"}}) {
        t.addRow()
            .cell(stencil5VariantName(r.v))
            .cell(r.formula)
            .cell(formatCount(
                stencil5TemporaryStorage(r.v, 1000, 100)))
            .cell(formatCount(
                stencil5TemporaryStorage(r.v, 100000, 1000)));
    }
    bench::emit(t, opt);

    // Cross-check the OV row against the compiler pipeline.
    MappingPlan plan =
        planStorageMapping(nests::fivePointStencil(100, 1000), 0);
    std::cout << "pipeline-derived UOV " << plan.search.best_uov
              << " over T=100, L=1000: " << plan.mapping.cellCount()
              << " cells (formula 2L = 2000)\n";
    std::cout << "full expansion would need "
              << formatCount(plan.expanded_cells) << " cells ("
              << formatDouble(plan.expansionRatio(), 1)
              << "x more than OV-mapped)\n";
    return plan.mapping.cellCount() == 2000 ? 0 : 1;
}
