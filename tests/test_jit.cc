/**
 * @file
 * JitCompiler negative paths and cache behavior: a missing compiler
 * is detectable up front (tests skip, not fail), a failed compile
 * surfaces the compiler's stderr in the exception, and recompiling
 * identical source is a cache hit that never invokes the compiler.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "codegen/codegen.h"
#include "codegen/jit.h"

namespace uov {
namespace {

/** Scoped setenv/unsetenv that restores the old value on exit. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : _name(name)
    {
        const char *old = std::getenv(name);
        if (old != nullptr) {
            _had_old = true;
            _old = old;
        }
        if (value != nullptr)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (_had_old)
            ::setenv(_name.c_str(), _old.c_str(), 1);
        else
            ::unsetenv(_name.c_str());
    }

  private:
    std::string _name;
    bool _had_old = false;
    std::string _old;
};

JitOptions
freshCacheOptions(const std::string &tag)
{
    static int counter = 0;
    JitOptions opts;
    opts.cache_dir = ::testing::TempDir() + "uov_jit_" + tag + "_" +
                     std::to_string(counter++);
    // TempDir survives across runs; a cached .so from a previous
    // invocation would turn first compiles into cache hits.
    std::filesystem::remove_all(opts.cache_dir);
    return opts;
}

constexpr const char *kTrivialKernel =
    "void jit_trivial(double *output) { output[0] = 42.0; }\n";

TEST(Jit, ExplicitMissingCompilerThrowsAtConstruction)
{
    // A compiler named explicitly is a configuration the user chose;
    // when it does not resolve, construction throws one actionable
    // error instead of failing confusingly on every compile().
    JitOptions opts = freshCacheOptions("missing");
    opts.compiler = "uov-no-such-compiler-on-any-path";
    try {
        JitCompiler jit(opts);
        FAIL() << "expected UovUserError";
    } catch (const UovUserError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("uov-no-such-compiler-on-any-path"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("not an executable"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("compiler option"), std::string::npos)
            << msg;
    }
}

TEST(Jit, BrokenUovCcThrowsAtConstructionAndDisablesProbe)
{
    // A set-but-broken UOV_CC is respected, not silently skipped:
    // the probe reports no compiler (so guarded tests skip) and
    // construction raises one actionable error naming the variable.
    ScopedEnv env("UOV_CC", "/nonexistent/uov-cc-binary");
    EXPECT_EQ(JitCompiler::findHostCompiler(), "");
    EXPECT_FALSE(JitCompiler::hostCompilerAvailable());
    try {
        JitCompiler jit(freshCacheOptions("broken_env"));
        FAIL() << "expected UovUserError";
    } catch (const UovUserError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("UOV_CC"), std::string::npos) << msg;
        EXPECT_NE(msg.find("/nonexistent/uov-cc-binary"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("fix or unset"), std::string::npos) << msg;
    }
}

TEST(Jit, UnconfiguredProbeNeverThrows)
{
    // With neither an explicit compiler nor UOV_CC, an empty PATH
    // just means "no compiler": construction succeeds, available()
    // is false, and compile() raises the actionable guidance.
    ScopedEnv cc("UOV_CC", nullptr);
    ScopedEnv path("PATH", "");
    JitCompiler jit(freshCacheOptions("probe"));
    EXPECT_FALSE(jit.available());
    try {
        jit.compile(kTrivialKernel);
        FAIL() << "expected UovUserError";
    } catch (const UovUserError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("no host C compiler found"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("UOV_CC"), std::string::npos) << msg;
    }
}

TEST(Jit, CompileErrorSurfacesStderr)
{
    if (!JitCompiler::hostCompilerAvailable())
        GTEST_SKIP() << "no host C compiler on PATH";
    JitCompiler jit(freshCacheOptions("err"));
    try {
        jit.compile("void broken( { this is not C;\n");
        FAIL() << "expected UovError";
    } catch (const UovError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("JIT compilation failed"),
                  std::string::npos)
            << msg;
        // The diagnostic text itself must ride along, not just a
        // return code.
        EXPECT_NE(msg.find("compiler stderr:"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("error"), std::string::npos) << msg;
    }
}

TEST(Jit, CacheHitSkipsCompilerInvocation)
{
    if (!JitCompiler::hostCompilerAvailable())
        GTEST_SKIP() << "no host C compiler on PATH";
    JitCompiler jit(freshCacheOptions("cache"));

    std::string first = jit.compile(kTrivialKernel);
    EXPECT_EQ(jit.compilesInvoked(), 1u);
    EXPECT_EQ(jit.cacheHits(), 0u);

    std::string second = jit.compile(kTrivialKernel);
    EXPECT_EQ(second, first);
    EXPECT_EQ(jit.compilesInvoked(), 1u) << "cache hit recompiled";
    EXPECT_EQ(jit.cacheHits(), 1u);

    // Different source, different object.
    std::string third = jit.compile(
        "void jit_other(double *output) { output[0] = 7.0; }\n");
    EXPECT_NE(third, first);
    EXPECT_EQ(jit.compilesInvoked(), 2u);
}

TEST(Jit, CacheKeyCoversFlagsAndSource)
{
    JitOptions a = freshCacheOptions("key");
    JitOptions b = a;
    b.flags.push_back("-DSOMETHING");
    JitCompiler ja(a), jb(b);
    EXPECT_NE(ja.cacheKey(kTrivialKernel), jb.cacheKey(kTrivialKernel));
    EXPECT_NE(ja.cacheKey(kTrivialKernel), ja.cacheKey("int x;\n"));
    EXPECT_EQ(ja.cacheKey(kTrivialKernel), ja.cacheKey(kTrivialKernel));
}

TEST(Jit, LoadAndResolveSymbols)
{
    if (!JitCompiler::hostCompilerAvailable())
        GTEST_SKIP() << "no host C compiler on PATH";
    JitCompiler jit(freshCacheOptions("load"));
    JitKernel kernel = jit.load(jit.compile(kTrivialKernel));
    ASSERT_TRUE(static_cast<bool>(kernel));

    auto fn = kernel.fn<void (*)(double *)>("jit_trivial");
    double out = 0.0;
    fn(&out);
    EXPECT_EQ(out, 42.0);

    EXPECT_THROW(kernel.sym("no_such_symbol"), UovError);

    // Moved-from kernels give up their handle.
    JitKernel moved = std::move(kernel);
    EXPECT_TRUE(static_cast<bool>(moved));
    EXPECT_FALSE(static_cast<bool>(kernel));
}

TEST(Jit, CompileAndLoadGeneratedKernel)
{
    if (!JitCompiler::hostCompilerAvailable())
        GTEST_SKIP() << "no host C compiler on PATH";
    LoopNest nest = nests::simpleExample(8, 9);
    MappingPlan plan = planStorageMapping(nest, 0);
    GeneratedCode code = generateC(nest, plan);

    JitCompiler jit(freshCacheOptions("gen"));
    JitKernel kernel = jit.compileAndLoad(code);
    std::vector<double> out(
        static_cast<size_t>(outputCellCount(nest)), -1.0);
    kernel.fn<void (*)(double *)>(code.function_name.c_str())(
        out.data());
    EXPECT_EQ(out, interpretKernel(nest));
}

} // namespace
} // namespace uov
