#include "kernels/stencil5.h"

namespace uov {

const std::vector<Stencil5Variant> &
allStencil5Variants()
{
    static const std::vector<Stencil5Variant> all = {
        Stencil5Variant::StorageOptimized,
        Stencil5Variant::Natural,
        Stencil5Variant::NaturalTiled,
        Stencil5Variant::Ov,
        Stencil5Variant::OvInterleaved,
        Stencil5Variant::OvTiled,
        Stencil5Variant::OvInterleavedTiled,
    };
    return all;
}

const char *
stencil5VariantName(Stencil5Variant v)
{
    switch (v) {
      case Stencil5Variant::Natural:            return "Natural";
      case Stencil5Variant::NaturalTiled:       return "Natural Tiled";
      case Stencil5Variant::Ov:                 return "OV-Mapped";
      case Stencil5Variant::OvInterleaved:
        return "OV-Mapped Interleaved";
      case Stencil5Variant::OvTiled:            return "OV-Mapped Tiled";
      case Stencil5Variant::OvInterleavedTiled:
        return "OV-Mapped Interleaved Tiled";
      case Stencil5Variant::StorageOptimized:
        return "Storage Optimized";
    }
    return "?";
}

bool
stencil5VariantTiled(Stencil5Variant v)
{
    return v == Stencil5Variant::NaturalTiled ||
           v == Stencil5Variant::OvTiled ||
           v == Stencil5Variant::OvInterleavedTiled;
}

int64_t
stencil5TemporaryStorage(Stencil5Variant v, int64_t length,
                         int64_t steps)
{
    switch (v) {
      case Stencil5Variant::Natural:
      case Stencil5Variant::NaturalTiled:
        return steps * length; // Table 1: TL
      case Stencil5Variant::Ov:
      case Stencil5Variant::OvInterleaved:
      case Stencil5Variant::OvTiled:
      case Stencil5Variant::OvInterleavedTiled:
        return 2 * length; // Table 1: 2L
      case Stencil5Variant::StorageOptimized:
        return length + 3; // Table 1: L+3
    }
    return 0;
}

std::vector<float>
stencil5Input(int64_t length, uint64_t seed)
{
    SplitMix64 rng(seed);
    std::vector<float> input(static_cast<size_t>(length));
    for (auto &v : input)
        v = static_cast<float>(rng.nextDouble());
    return input;
}

} // namespace uov
