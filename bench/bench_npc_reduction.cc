/**
 * @file
 * Reproduces the Section 3.1 theorem experimentally: PARTITION
 * instances map to UOV-membership queries and the answers agree;
 * the exact solver's work grows with instance size, as NP-completeness
 * predicts for the worst case.
 */

#include "bench_common.h"

#include "core/reduction.h"
#include "core/uov.h"
#include "support/rng.h"

using namespace uov;

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseArgs(argc, argv);
    bench::banner("Theorem 3.1 (UOV membership is NP-complete; "
                  "PARTITION reduction)");

    Table t("Named PARTITION instances through the reduction");
    t.header({"values", "partition?", "w in UOV(V)?", "agree",
              "cone nodes"});

    struct Named
    {
        const char *label;
        std::vector<int64_t> values;
    };
    const Named named[] = {
        {"{1,1}", {1, 1}},
        {"{2,3,5}", {2, 3, 5}},
        {"{1,1,4}", {1, 1, 4}},
        {"{3,3,4,4}", {3, 3, 4, 4}},
        {"{1,2,3,4,10}", {1, 2, 3, 4, 10}},
        {"{5,5,5,5,5,5}", {5, 5, 5, 5, 5, 5}},
    };
    bool all_agree = true;
    for (const Named &c : named) {
        PartitionInstance inst{c.values};
        bool partition = solvePartitionBruteForce(inst).has_value();
        UovMembershipInstance red = buildReduction(inst);
        UovOracle oracle(red.stencil);
        bool member = oracle.isUov(red.query);
        bool agree = partition == member;
        all_agree = all_agree && agree;
        t.addRow()
            .cell(c.label)
            .cell(partition ? "yes" : "no")
            .cell(member ? "yes" : "no")
            .cell(agree ? "yes" : "NO")
            .cell(oracle.cone().nodesExpanded());
    }
    bench::emit(t, opt);

    // Random sweep + work growth with n.
    Table g("Exact-solver work vs instance size (random instances)");
    g.header({"n", "instances", "agreements", "avg cone nodes",
              "max cone nodes"});
    SplitMix64 rng(19981004);
    size_t max_n = opt.quick ? 6 : 9;
    for (size_t n = 2; n <= max_n; ++n) {
        uint64_t agreements = 0, total_nodes = 0, max_nodes = 0;
        const int kInstances = 20;
        for (int k = 0; k < kInstances; ++k) {
            PartitionInstance inst;
            for (size_t i = 0; i < n; ++i)
                inst.values.push_back(1 + rng.nextInRange(0, 9));
            int64_t total = 0;
            for (int64_t v : inst.values)
                total += v;
            if (total % 2)
                inst.values.back() += 1;

            bool partition = solvePartitionBruteForce(inst).has_value();
            UovMembershipInstance red = buildReduction(inst);
            UovOracle oracle(red.stencil);
            bool member = oracle.isUov(red.query);
            if (partition == member)
                ++agreements;
            uint64_t nodes = oracle.cone().nodesExpanded();
            total_nodes += nodes;
            max_nodes = std::max(max_nodes, nodes);
        }
        g.addRow()
            .cell(int64_t(n))
            .cell(int64_t(kInstances))
            .cell(agreements)
            .cell(total_nodes / kInstances)
            .cell(max_nodes);
        all_agree = all_agree && (agreements == kInstances);
    }
    bench::emit(g, opt);

    std::cout << "reduction sound on every instance: "
              << (all_agree ? "yes" : "NO") << "\n";
    return all_agree ? 0 : 1;
}
