#include "sim/trace.h"

#include <sstream>
#include <unordered_set>

#include "support/error.h"
#include "support/table.h"

namespace uov {

uint64_t
Trace::loadCount() const
{
    uint64_t n = 0;
    for (const auto &e : _events)
        if (e.kind == TraceEvent::Kind::Load)
            ++n;
    return n;
}

uint64_t
Trace::storeCount() const
{
    uint64_t n = 0;
    for (const auto &e : _events)
        if (e.kind == TraceEvent::Kind::Store)
            ++n;
    return n;
}

uint64_t
Trace::branchCount() const
{
    uint64_t n = 0;
    for (const auto &e : _events)
        if (e.kind == TraceEvent::Kind::Branch)
            ++n;
    return n;
}

uint64_t
Trace::footprintBytes(int64_t line_bytes) const
{
    UOV_REQUIRE(line_bytes > 0, "line size must be positive");
    std::unordered_set<uint64_t> lines;
    for (const auto &e : _events) {
        if (e.kind != TraceEvent::Kind::Branch)
            lines.insert(e.addr / static_cast<uint64_t>(line_bytes));
    }
    return lines.size() * static_cast<uint64_t>(line_bytes);
}

double
Trace::replay(MemorySystem &ms) const
{
    for (const auto &e : _events) {
        switch (e.kind) {
          case TraceEvent::Kind::Load:
            ms.access(e.addr, false);
            break;
          case TraceEvent::Kind::Store:
            ms.access(e.addr, true);
            break;
          case TraceEvent::Kind::Branch:
            ms.branch();
            break;
        }
    }
    return ms.cycles();
}

std::string
Trace::summary() const
{
    std::ostringstream oss;
    oss << formatCount(static_cast<int64_t>(size())) << " events ("
        << formatCount(static_cast<int64_t>(loadCount())) << " loads, "
        << formatCount(static_cast<int64_t>(storeCount()))
        << " stores, "
        << formatCount(static_cast<int64_t>(branchCount()))
        << " branches), footprint "
        << formatCount(static_cast<int64_t>(footprintBytes()))
        << " bytes";
    return oss.str();
}

} // namespace uov
