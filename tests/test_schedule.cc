/**
 * @file
 * Unit tests for schedules and legality checks: complete enumeration,
 * algebraic vs empirical legality agreement, and the canonical skew.
 */

#include <gtest/gtest.h>

#include <set>

#include "schedule/legality.h"
#include "schedule/schedule.h"
#include "support/error.h"

namespace uov {
namespace {

/** Every schedule must visit every box point exactly once. */
void
expectCompleteEnumeration(const Schedule &s, const IVec &lo,
                          const IVec &hi)
{
    std::set<std::vector<int64_t>> seen;
    uint64_t count = 0;
    s.forEach(lo, hi, [&](const IVec &q) {
        ++count;
        EXPECT_TRUE(seen.insert(q.coords()).second)
            << s.name() << " revisits " << q.str();
        for (size_t c = 0; c < q.dim(); ++c) {
            EXPECT_GE(q[c], lo[c]) << s.name();
            EXPECT_LE(q[c], hi[c]) << s.name();
        }
    });
    uint64_t expected = 1;
    for (size_t c = 0; c < lo.dim(); ++c)
        expected *= static_cast<uint64_t>(hi[c] - lo[c] + 1);
    EXPECT_EQ(count, expected) << s.name();
}

TEST(Schedules, LexIdentityOrder)
{
    LexSchedule s = LexSchedule::identity(2);
    std::vector<IVec> order;
    s.forEach(IVec{0, 0}, IVec{1, 1},
              [&](const IVec &q) { order.push_back(q); });
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], (IVec{0, 0}));
    EXPECT_EQ(order[1], (IVec{0, 1}));
    EXPECT_EQ(order[2], (IVec{1, 0}));
    EXPECT_EQ(order[3], (IVec{1, 1}));
}

TEST(Schedules, LexInterchangeOrder)
{
    LexSchedule s({1, 0}); // j outer, i inner
    std::vector<IVec> order;
    s.forEach(IVec{0, 0}, IVec{1, 1},
              [&](const IVec &q) { order.push_back(q); });
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], (IVec{0, 0}));
    EXPECT_EQ(order[1], (IVec{1, 0}));
    EXPECT_EQ(order[2], (IVec{0, 1}));
    EXPECT_EQ(order[3], (IVec{1, 1}));
}

TEST(Schedules, BadPermutationRejected)
{
    EXPECT_THROW(LexSchedule({0, 0}), UovUserError);
    EXPECT_THROW(LexSchedule({1, 2}), UovUserError);
}

TEST(Schedules, AllSchedulesEnumerateCompletely)
{
    IVec lo{0, 0}, hi{5, 7};
    expectCompleteEnumeration(LexSchedule::identity(2), lo, hi);
    expectCompleteEnumeration(LexSchedule({1, 0}), lo, hi);
    expectCompleteEnumeration(
        TransformedSchedule(IMatrix({{1, 0}, {2, 1}}), "skew2"), lo, hi);
    expectCompleteEnumeration(TiledSchedule::rectangular({3, 4}), lo, hi);
    expectCompleteEnumeration(
        TiledSchedule({2, 3}, IMatrix({{1, 0}, {1, 1}}), "skew-tile"),
        lo, hi);
    expectCompleteEnumeration(WavefrontSchedule(IVec{1, 1}), lo, hi);
    expectCompleteEnumeration(WavefrontSchedule(IVec{2, -1}), lo, hi);
    expectCompleteEnumeration(
        RandomTopoSchedule(stencils::simpleExample(), 42), lo, hi);
}

TEST(Schedules, ThreeDimensionalEnumeration)
{
    IVec lo{0, 0, 0}, hi{3, 2, 4};
    expectCompleteEnumeration(LexSchedule::identity(3), lo, hi);
    expectCompleteEnumeration(TiledSchedule::rectangular({2, 2, 2}), lo,
                              hi);
    expectCompleteEnumeration(
        RandomTopoSchedule(stencils::heat3D(), 7), lo, hi);
}

TEST(Schedules, NonUnimodularTransformRejected)
{
    EXPECT_THROW(TransformedSchedule(IMatrix({{2, 0}, {0, 1}})),
                 UovUserError);
    EXPECT_THROW(TiledSchedule({2, 2}, IMatrix({{1, 1}, {1, 1}})),
                 UovUserError);
}

TEST(Legality, PermutationChecks)
{
    // Simple example: interchange is legal.
    EXPECT_TRUE(permutationLegal({0, 1}, stencils::simpleExample()));
    EXPECT_TRUE(permutationLegal({1, 0}, stencils::simpleExample()));
    // 5-point stencil: interchange flips (1,-2) to (-2,1) -- illegal.
    EXPECT_TRUE(permutationLegal({0, 1}, stencils::fivePoint()));
    EXPECT_FALSE(permutationLegal({1, 0}, stencils::fivePoint()));
}

TEST(Legality, TransformChecks)
{
    IMatrix skew({{1, 0}, {2, 1}});
    EXPECT_TRUE(transformLegal(skew, stencils::fivePoint()));
    IMatrix reverse({{1, 0}, {0, -1}});
    // Reversal of j: (1,2) -> (1,-2) still lex-positive; (1,-2)->(1,2).
    EXPECT_TRUE(transformLegal(reverse, stencils::fivePoint()));
    // But reversal of time is illegal.
    IMatrix treverse({{-1, 0}, {0, 1}});
    EXPECT_FALSE(transformLegal(treverse, stencils::fivePoint()));
}

TEST(Legality, TilingNeedsSkewForFivePoint)
{
    EXPECT_FALSE(
        tilingLegal(IMatrix::identity(2), stencils::fivePoint()));
    IMatrix skew = skewToNonNegative(stencils::fivePoint());
    EXPECT_EQ(skew, IMatrix({{1, 0}, {2, 1}}));
    EXPECT_TRUE(tilingLegal(skew, stencils::fivePoint()));
}

TEST(Legality, TilingLegalForForwardOnlyStencils)
{
    EXPECT_TRUE(
        tilingLegal(IMatrix::identity(2), stencils::simpleExample()));
    EXPECT_TRUE(
        tilingLegal(IMatrix::identity(2), stencils::proteinMatching()));
}

TEST(Legality, SkewRequiresTimeAdvance)
{
    // (0,1) does not advance dimension 0.
    EXPECT_THROW(skewToNonNegative(stencils::simpleExample()),
                 UovUserError);
    IMatrix skew3 = skewToNonNegative(stencils::heat3D());
    EXPECT_TRUE(tilingLegal(skew3, stencils::heat3D()));
}

TEST(Legality, WavefrontChecks)
{
    EXPECT_TRUE(wavefrontLegal(IVec{1, 1}, stencils::simpleExample()));
    EXPECT_FALSE(wavefrontLegal(IVec{1, 1}, stencils::fivePoint()));
    EXPECT_TRUE(wavefrontLegal(IVec{3, 1}, stencils::fivePoint()));
}

TEST(Legality, EmpiricalMatchesAlgebraic)
{
    IVec lo{0, 0}, hi{6, 6};
    Stencil five = stencils::fivePoint();

    // Legal cases.
    EXPECT_TRUE(scheduleRespectsStencil(LexSchedule::identity(2), lo, hi,
                                        five));
    IMatrix skew = skewToNonNegative(five);
    EXPECT_TRUE(scheduleRespectsStencil(
        TiledSchedule({3, 3}, skew, "skew-tile"), lo, hi, five));
    EXPECT_TRUE(scheduleRespectsStencil(WavefrontSchedule(IVec{3, 1}),
                                        lo, hi, five));
    EXPECT_TRUE(scheduleRespectsStencil(RandomTopoSchedule(five, 99), lo,
                                        hi, five));

    // Illegal cases.
    EXPECT_FALSE(scheduleRespectsStencil(LexSchedule({1, 0}), lo, hi,
                                         five));
    EXPECT_FALSE(scheduleRespectsStencil(
        TiledSchedule::rectangular({3, 3}), lo, hi, five));
    EXPECT_FALSE(scheduleRespectsStencil(WavefrontSchedule(IVec{1, 1}),
                                         lo, hi, five));
}

TEST(Legality, RandomTopoAlwaysLegalAcrossSeeds)
{
    IVec lo{0, 0}, hi{5, 5};
    for (uint64_t seed = 0; seed < 10; ++seed) {
        EXPECT_TRUE(scheduleRespectsStencil(
            RandomTopoSchedule(stencils::simpleExample(), seed), lo, hi,
            stencils::simpleExample()))
            << seed;
    }
}

} // namespace
} // namespace uov
