/**
 * @file
 * Fully expanded storage over an iteration-space box: the "natural"
 * baseline of Section 5.  Every iteration point owns a distinct cell,
 * so no storage dependence is ever introduced -- at the cost of
 * O(volume) memory.
 */

#ifndef UOV_MAPPING_EXPANDED_ARRAY_H
#define UOV_MAPPING_EXPANDED_ARRAY_H

#include <cstdint>
#include <vector>

#include "geometry/ivec.h"
#include "support/checked.h"
#include "support/error.h"

namespace uov {

/** Dense row-major storage over the integer box [lo, hi]. */
template <typename T>
class ExpandedArray
{
  public:
    ExpandedArray(IVec lo, IVec hi, T fill = T{})
        : _lo(std::move(lo)), _hi(std::move(hi))
    {
        UOV_REQUIRE(_lo.dim() == _hi.dim(), "box dimension mismatch");
        // Row-major strides: last dimension contiguous.
        _stride.assign(_lo.dim(), 1);
        int64_t cells = 1;
        for (size_t c = _lo.dim(); c-- > 0;) {
            UOV_REQUIRE(_lo[c] <= _hi[c], "empty box dimension " << c);
            _stride[c] = cells;
            cells = checkedMul(cells,
                               checkedAdd(checkedSub(_hi[c], _lo[c]), 1));
        }
        _data.assign(static_cast<size_t>(cells), fill);
    }

    int64_t cellCount() const { return static_cast<int64_t>(_data.size()); }

    bool
    inBounds(const IVec &q) const
    {
        UOV_CHECK(q.dim() == _lo.dim(), "point dimension mismatch");
        for (size_t c = 0; c < q.dim(); ++c)
            if (q[c] < _lo[c] || q[c] > _hi[c])
                return false;
        return true;
    }

    T &
    at(const IVec &q)
    {
        return _data[index(q)];
    }

    const T &
    at(const IVec &q) const
    {
        return _data[index(q)];
    }

  private:
    size_t
    index(const IVec &q) const
    {
        UOV_CHECK(inBounds(q), "point " << q.str() << " outside box");
        int64_t i = 0;
        for (size_t c = 0; c < q.dim(); ++c)
            i = checkedAdd(i,
                           checkedMul(checkedSub(q[c], _lo[c]),
                                      _stride[c]));
        return static_cast<size_t>(i);
    }

    IVec _lo;
    IVec _hi;
    std::vector<int64_t> _stride;
    std::vector<T> _data;
};

} // namespace uov

#endif // UOV_MAPPING_EXPANDED_ARRAY_H
