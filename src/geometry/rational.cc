#include "geometry/rational.h"

#include <sstream>

#include "support/checked.h"
#include "support/error.h"

namespace uov {

Rational::Rational(int64_t n, int64_t d) : _num(n), _den(d)
{
    UOV_REQUIRE(d != 0, "rational with zero denominator");
    normalize();
}

void
Rational::normalize()
{
    if (_den < 0) {
        _num = checkedNeg(_num);
        _den = checkedNeg(_den);
    }
    int64_t g = gcd64(_num, _den);
    if (g > 1) {
        _num /= g;
        _den /= g;
    }
    if (_num == 0)
        _den = 1;
}

Rational
Rational::operator+(const Rational &o) const
{
    // a/b + c/d = (a*d + c*b) / (b*d); reduce via gcd(b, d) first to
    // keep intermediates small.
    int64_t g = gcd64(_den, o._den);
    int64_t bg = _den / g;
    int64_t dg = o._den / g;
    int64_t num = checkedAdd(checkedMul(_num, dg), checkedMul(o._num, bg));
    int64_t den = checkedMul(checkedMul(bg, g), dg);
    return Rational(num, den);
}

Rational
Rational::operator-(const Rational &o) const
{
    return *this + (-o);
}

Rational
Rational::operator*(const Rational &o) const
{
    // Cross-reduce before multiplying.
    int64_t g1 = gcd64(_num, o._den);
    int64_t g2 = gcd64(o._num, _den);
    int64_t num = checkedMul(_num / g1, o._num / g2);
    int64_t den = checkedMul(_den / g2, o._den / g1);
    return Rational(num, den);
}

Rational
Rational::operator/(const Rational &o) const
{
    UOV_REQUIRE(o._num != 0, "rational division by zero");
    return *this * Rational(o._den, o._num);
}

Rational
Rational::operator-() const
{
    Rational r;
    r._num = checkedNeg(_num);
    r._den = _den;
    return r;
}

bool
Rational::operator<(const Rational &o) const
{
    // a/b < c/d  <=>  a*d < c*b  (b, d > 0)
    return checkedMul(_num, o._den) < checkedMul(o._num, _den);
}

int64_t
Rational::floor() const
{
    return floorDiv(_num, _den);
}

int64_t
Rational::ceil() const
{
    return ceilDiv(_num, _den);
}

std::string
Rational::str() const
{
    std::ostringstream oss;
    oss << *this;
    return oss.str();
}

std::ostream &
operator<<(std::ostream &os, const Rational &r)
{
    os << r.num();
    if (r.den() != 1)
        os << "/" << r.den();
    return os;
}

} // namespace uov
