/**
 * @file
 * Measures what arming the live telemetry plane costs the serving
 * hot path, in both states:
 *
 *   baseline -- a warm-cache replay with no plane attached (the
 *               production configuration without --admin-port), and
 *   armed    -- the same replay with trace scopes, flight-recorder
 *               digests, and SLO samples per request, while a
 *               scraper hammers the /metrics and /flight endpoints
 *               concurrently (the worst-case observer).
 *
 * The run fails (exit 1) when the armed replay exceeds a generous
 * multiple of the baseline, so CI catches an accidentally heavyweight
 * observation path (a lock on the request path, an allocation per
 * digest) before it ships.  Not a paper artifact -- this measures the
 * observability layer added on top of the reproduction.
 */

#include <atomic>
#include <iomanip>
#include <thread>

#include "bench_common.h"
#include "fuzz/workload.h"
#include "service/executor.h"
#include "telemetry/admin_server.h"

using namespace uov;
using namespace uov::bench;
using namespace uov::service;

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);
    std::cout << "# Telemetry-plane overhead on a warm-cache replay "
                 "(engineering artifact, not a paper figure)\n\n";

    const size_t requests = opt.quick ? 300 : 2000;
    const int reps = opt.quick ? 3 : 7;
    fuzz::WorkloadOptions wopt;
    wopt.requests = requests;
    wopt.distinct = 12;
    wopt.seed = 0xBE7A;
    std::vector<Request> workload = fuzz::makeWorkload(wopt);

    ServiceOptions so;
    so.max_visits = 50'000;
    MetricsRegistry metrics;
    QueryService svc(so, metrics);
    ThreadPool pool(4);

    // Prime the cache: the timed replays below measure the serving
    // layer, not the NP-complete search.
    runBatch(svc, workload, pool);

    double base_ns = measureNs(
                         [&] { runBatch(svc, workload, pool); }, reps) /
                     static_cast<double>(requests);

    // Arm the plane and scrape it as hard as a misbehaving collector
    // would: a tight loop over the two expensive endpoints.
    telemetry::FlightRecorder flight(1024);
    telemetry::SloTracker slo;
    TelemetryPlane plane;
    plane.flight = &flight;
    plane.slo = &slo;

    telemetry::AdminHooks hooks;
    hooks.metrics = &metrics;
    hooks.flight = &flight;
    hooks.slo = &slo;
    telemetry::AdminServer admin(hooks, 0);

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> scrapes{0};
    std::thread scraper([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            admin.handle("GET", "/metrics");
            admin.handle("GET", "/flight");
            admin.handle("GET", "/slo");
            scrapes.fetch_add(1, std::memory_order_relaxed);
        }
    });

    double armed_ns =
        measureNs(
            [&] { runBatch(svc, workload, pool, nullptr, &plane); },
            reps) /
        static_cast<double>(requests);

    stop.store(true, std::memory_order_relaxed);
    scraper.join();
    admin.stop();

    Table t("Telemetry-plane overhead per warm request");
    t.header({"Variant", "ns/request", "vs baseline"});
    auto ratio = [&](double ns) {
        std::ostringstream oss;
        oss << std::fixed << std::setprecision(2)
            << (base_ns > 0 ? ns / base_ns : 0.0) << "x";
        return oss.str();
    };
    t.addRow().cell("plane off").cell(base_ns, 1).cell("1.00x");
    t.addRow()
        .cell("plane armed + scraper")
        .cell(armed_ns, 1)
        .cell(ratio(armed_ns));
    emit(t, opt);

    std::cout << "scraper completed " << scrapes.load()
              << " metrics+flight+slo sweeps during the armed pass\n";

    // Gate: observation must stay cheap relative to serving.  A warm
    // request is a cache lookup (~microseconds), so 2x plus 50 us of
    // absolute headroom tolerates CI noise and scraper contention
    // while still catching a per-request lock convoy or a rendering
    // call sneaking onto the hot path.
    double limit_ns = base_ns * 2.0 + 50'000.0;
    bool ok = armed_ns <= limit_ns;
    std::cout << "armed-path gate: " << std::fixed
              << std::setprecision(1) << armed_ns << " ns <= "
              << limit_ns << " ns -> "
              << (ok ? "reproduced" : "FAILED") << "\n";
    return ok ? 0 : 1;
}
