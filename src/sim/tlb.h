/**
 * @file
 * A fully associative LRU page-translation buffer.  Also reused as the
 * resident-set model for finite physical memory (pages instead of
 * translations; a miss is then a page fault).
 */

#ifndef UOV_SIM_TLB_H
#define UOV_SIM_TLB_H

#include <cstdint>
#include <list>
#include <unordered_map>

namespace uov {

/** Fully associative LRU map over page numbers. */
class Tlb
{
  public:
    /**
     * @param entries capacity in pages
     * @param page_bytes page size (power of two)
     */
    Tlb(int64_t entries, int64_t page_bytes);

    /** Touch the page containing @p addr; true on hit. */
    bool access(uint64_t addr);

    /** True iff every entry is occupied (next miss evicts). */
    bool
    full() const
    {
        return static_cast<int64_t>(_order.size()) >= _entries;
    }

    uint64_t hits() const { return _hits; }
    uint64_t misses() const { return _misses; }
    double missRate() const;

    void reset();

  private:
    int64_t _entries;
    unsigned _page_shift;

    // LRU: list of page numbers, most recent at front, plus an index.
    std::list<uint64_t> _order;
    std::unordered_map<uint64_t, std::list<uint64_t>::iterator> _where;

    uint64_t _hits = 0;
    uint64_t _misses = 0;
};

} // namespace uov

#endif // UOV_SIM_TLB_H
