/**
 * @file
 * The schedule/storage executor: runs a stencil computation under an
 * arbitrary schedule with a chosen storage backend and checks the
 * results against a fully expanded reference.
 *
 * This is the empirical heart of the reproduction.  The paper's claim
 * is that a UOV-mapped array is correct under *every* legal schedule;
 * the executor demonstrates it by (a) computing each point's value
 * with a deterministic mixing function whose result is independent of
 * execution order, (b) re-running under adversarial schedules with the
 * OV-mapped store, and (c) comparing every produced value bit-for-bit
 * while the CheckedOVArray also tracks cell writers to pinpoint
 * clobbers.  A non-universal OV must fail this test for some legal
 * schedule; a UOV never may.
 */

#ifndef UOV_SCHEDULE_EXECUTOR_H
#define UOV_SCHEDULE_EXECUTOR_H

#include <cstdint>
#include <functional>
#include <string>

#include "core/stencil.h"
#include "mapping/expanded_array.h"
#include "mapping/ov_array.h"
#include "schedule/schedule.h"

namespace uov {

/** Boundary values for reads that leave the iteration box. */
using BoundaryFn = std::function<uint64_t(const IVec &)>;

/** A stencil computation over a box: value(q) = mix(q, inputs). */
struct StencilComputation
{
    Stencil stencil;
    BoundaryFn boundary; ///< defaults to hashing the point

    explicit StencilComputation(Stencil s);
    StencilComputation(Stencil s, BoundaryFn b);

    /**
     * The value of iteration q given its inputs (stencil order).
     * Deterministic and schedule-independent: a pure function of q and
     * the input values.
     */
    uint64_t combine(const IVec &q,
                     const std::vector<uint64_t> &inputs) const;
};

/** Outcome of one scheduled run against the reference. */
struct ExecutionResult
{
    std::string schedule_name;
    uint64_t points = 0;        ///< iterations executed
    uint64_t mismatches = 0;    ///< values differing from reference
    uint64_t clobbers = 0;      ///< CheckedOVArray violations
    uint64_t checksum = 0;      ///< order-independent value checksum

    bool correct() const { return mismatches == 0; }
};

/**
 * Compute the reference: every point's value with fully expanded
 * storage under the original lexicographic order.
 */
ExpandedArray<uint64_t> computeReference(const StencilComputation &comp,
                                         const IVec &lo, const IVec &hi);

/**
 * Run @p schedule with OV-mapped storage for occupancy vector @p ov
 * and compare against the reference (computed internally).
 */
ExecutionResult runWithOvStorage(const StencilComputation &comp,
                                 const Schedule &schedule, const IVec &lo,
                                 const IVec &hi, const IVec &ov,
                                 ModLayout layout =
                                     ModLayout::Interleaved);

/**
 * Run @p schedule with fully expanded storage (always correct for any
 * legal schedule; used as a control).
 */
ExecutionResult runWithExpandedStorage(const StencilComputation &comp,
                                       const Schedule &schedule,
                                       const IVec &lo, const IVec &hi);

} // namespace uov

#endif // UOV_SCHEDULE_EXECUTOR_H
