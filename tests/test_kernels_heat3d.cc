/**
 * @file
 * Tests for the 3-D heat kernel: identical results across variants
 * and shapes, storage formulas, agreement with the 3-D UOV machinery,
 * and simulated runs.
 */

#include <gtest/gtest.h>

#include "core/search.h"
#include "core/uov.h"
#include "kernels/heat3d.h"
#include "schedule/legality.h"

namespace uov {
namespace {

double
runNative(Heat3DVariant v, const Heat3DConfig &cfg)
{
    VirtualArena arena;
    NativeMem mem;
    return runHeat3D(v, cfg, mem, arena);
}

TEST(Heat3DKernel, AllVariantsAgreeBitwise)
{
    Heat3DConfig cfg;
    cfg.nx = 21;
    cfg.ny = 17;
    cfg.steps = 7; // odd
    cfg.tile_t = 3;
    cfg.tile_x = 9;
    cfg.tile_y = 5;
    double reference = runNative(Heat3DVariant::Natural, cfg);
    for (Heat3DVariant v : allHeat3DVariants())
        EXPECT_EQ(runNative(v, cfg), reference)
            << heat3DVariantName(v);
}

class Heat3DSweep
    : public ::testing::TestWithParam<
          std::tuple<int64_t, int64_t, int64_t>>
{
};

TEST_P(Heat3DSweep, VariantsAgreeAcrossShapes)
{
    auto [nx, ny, steps] = GetParam();
    Heat3DConfig cfg;
    cfg.nx = nx;
    cfg.ny = ny;
    cfg.steps = steps;
    cfg.tile_t = 2;
    cfg.tile_x = 7;
    cfg.tile_y = 11;
    double reference = runNative(Heat3DVariant::Natural, cfg);
    for (Heat3DVariant v : allHeat3DVariants())
        EXPECT_EQ(runNative(v, cfg), reference)
            << heat3DVariantName(v) << " " << nx << "x" << ny << "x"
            << steps;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Heat3DSweep,
    ::testing::Values(std::make_tuple(4, 4, 1),
                      std::make_tuple(5, 9, 3),
                      std::make_tuple(16, 16, 8),
                      std::make_tuple(33, 7, 5)));

TEST(Heat3DKernel, StorageFormulas)
{
    Heat3DConfig cfg;
    cfg.nx = 100;
    cfg.ny = 80;
    cfg.steps = 50;
    EXPECT_EQ(heat3DTemporaryStorage(Heat3DVariant::Natural, cfg),
              50 * 100 * 80);
    EXPECT_EQ(heat3DTemporaryStorage(Heat3DVariant::OvTiled, cfg),
              2 * 100 * 80);
    EXPECT_EQ(
        heat3DTemporaryStorage(Heat3DVariant::StorageOptimized, cfg),
        100 * 80 + 2 * 80);
}

TEST(Heat3DKernel, UovMachineryAgreesWithHardcodedChoices)
{
    // The kernel hard-codes UOV (2,0,0) and the skew u=x+t, w=y+t;
    // the library derives both.
    Stencil s = stencils::heat3D();
    SearchResult r =
        BranchBoundSearch(s, SearchObjective::ShortestVector).run();
    EXPECT_EQ(r.best_uov, (IVec{2, 0, 0}));

    IMatrix skew = skewToNonNegative(s);
    EXPECT_EQ(skew, IMatrix({{1, 0, 0}, {1, 1, 0}, {1, 0, 1}}));
    EXPECT_TRUE(tilingLegal(skew, s));
    EXPECT_FALSE(tilingLegal(IMatrix::identity(3), s));
}

TEST(Heat3DKernel, SimulatedRunMatchesNative)
{
    Heat3DConfig cfg;
    cfg.nx = 24;
    cfg.ny = 24;
    cfg.steps = 4;
    double native = runNative(Heat3DVariant::OvTiled, cfg);
    VirtualArena arena;
    MemorySystem ms(MachineConfig::alpha21164());
    SimMem sim{&ms};
    EXPECT_EQ(runHeat3D(Heat3DVariant::OvTiled, cfg, sim, arena),
              native);
    EXPECT_GT(ms.accesses(), 0u);
}

TEST(Heat3DKernel, OvUsesFarLessMemoryThanNatural)
{
    Heat3DConfig cfg;
    cfg.nx = 128;
    cfg.ny = 128;
    cfg.steps = 64;
    EXPECT_GT(heat3DTemporaryStorage(Heat3DVariant::Natural, cfg),
              30 * heat3DTemporaryStorage(Heat3DVariant::Ov, cfg));
}

TEST(Heat3DKernel, RejectsDegenerate)
{
    Heat3DConfig cfg;
    cfg.nx = 2;
    VirtualArena arena;
    NativeMem mem;
    EXPECT_THROW(runHeat3D(Heat3DVariant::Natural, cfg, mem, arena),
                 UovUserError);
}

} // namespace
} // namespace uov
