/**
 * @file
 * Tests for the 5-point stencil kernel variants: identical results
 * across all storage versions and schedules, Table 1 storage formulas,
 * tiling legality of the hand-written skew, and sane simulated
 * behaviour.
 */

#include <gtest/gtest.h>

#include "core/uov.h"
#include "kernels/stencil5.h"
#include "schedule/legality.h"

namespace uov {
namespace {

double
runNative(Stencil5Variant v, const Stencil5Config &cfg)
{
    VirtualArena arena;
    NativeMem mem;
    return runStencil5(v, cfg, mem, arena);
}

TEST(Stencil5Kernel, AllVariantsAgreeBitwise)
{
    Stencil5Config cfg;
    cfg.length = 300;
    cfg.steps = 17; // odd: exercises the (t mod 2) row selection
    cfg.tile_t = 4;
    cfg.tile_s = 64;

    double reference = runNative(Stencil5Variant::Natural, cfg);
    for (Stencil5Variant v : allStencil5Variants()) {
        EXPECT_EQ(runNative(v, cfg), reference)
            << stencil5VariantName(v);
    }
}

class Stencil5Sweep
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>>
{
};

TEST_P(Stencil5Sweep, VariantsAgreeAcrossProblemShapes)
{
    auto [length, steps] = GetParam();
    Stencil5Config cfg;
    cfg.length = length;
    cfg.steps = steps;
    cfg.tile_t = 3;
    cfg.tile_s = 37; // deliberately unaligned tile width

    double reference = runNative(Stencil5Variant::Natural, cfg);
    for (Stencil5Variant v : allStencil5Variants()) {
        EXPECT_EQ(runNative(v, cfg), reference)
            << stencil5VariantName(v) << " L=" << length
            << " T=" << steps;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Stencil5Sweep,
    ::testing::Values(std::make_tuple(8, 1), std::make_tuple(9, 2),
                      std::make_tuple(64, 5), std::make_tuple(65, 8),
                      std::make_tuple(128, 16),
                      std::make_tuple(257, 31)));

TEST(Stencil5Kernel, Table1StorageFormulas)
{
    int64_t len = 1000, steps = 50;
    EXPECT_EQ(stencil5TemporaryStorage(Stencil5Variant::Natural, len,
                                       steps),
              steps * len);
    EXPECT_EQ(stencil5TemporaryStorage(Stencil5Variant::Ov, len, steps),
              2 * len);
    EXPECT_EQ(stencil5TemporaryStorage(
                  Stencil5Variant::OvInterleavedTiled, len, steps),
              2 * len);
    EXPECT_EQ(stencil5TemporaryStorage(
                  Stencil5Variant::StorageOptimized, len, steps),
              len + 3);
}

TEST(Stencil5Kernel, HandSkewMatchesLegalityLayer)
{
    // The kernel's hard-coded skew s = i + 2t is exactly
    // skewToNonNegative of the 5-point stencil.
    IMatrix skew = skewToNonNegative(stencils::fivePoint());
    EXPECT_EQ(skew, IMatrix({{1, 0}, {2, 1}}));
    EXPECT_TRUE(tilingLegal(skew, stencils::fivePoint()));
    // And (2,0) -- the storage the kernels hard-code -- is a UOV.
    EXPECT_TRUE(UovOracle(stencils::fivePoint()).isUov(IVec{2, 0}));
}

TEST(Stencil5Kernel, VariantMetadata)
{
    EXPECT_STREQ(stencil5VariantName(Stencil5Variant::Ov), "OV-Mapped");
    EXPECT_TRUE(stencil5VariantTiled(Stencil5Variant::OvTiled));
    EXPECT_FALSE(stencil5VariantTiled(Stencil5Variant::Ov));
    EXPECT_EQ(allStencil5Variants().size(), 7u);
}

TEST(Stencil5Kernel, SimulatedRunMatchesNativeResult)
{
    Stencil5Config cfg;
    cfg.length = 128;
    cfg.steps = 6;
    double native = runNative(Stencil5Variant::Ov, cfg);

    VirtualArena arena;
    MemorySystem ms(MachineConfig::pentiumPro());
    SimMem sim{&ms};
    double simulated = runStencil5(Stencil5Variant::Ov, cfg, sim, arena);
    EXPECT_EQ(simulated, native);
    EXPECT_GT(ms.accesses(), 0u);
    EXPECT_GT(ms.cycles(), 0.0);
}

TEST(Stencil5Kernel, SimulatedAccessCountsMatchAnalyticForm)
{
    Stencil5Config cfg;
    cfg.length = 64;
    cfg.steps = 4;
    VirtualArena arena;
    MemorySystem ms(MachineConfig::pentiumPro());
    SimMem sim{&ms};
    runStencil5(Stencil5Variant::Natural, cfg, sim, arena);
    // Interior points: 5 loads + 1 store; boundary (4/row): 1 load +
    // 1 store; final row sum: L loads.
    int64_t interior = cfg.steps * (cfg.length - 4);
    int64_t boundary = cfg.steps * 4;
    int64_t expected = interior * 6 + boundary * 2 + cfg.length;
    EXPECT_EQ(ms.accesses(), static_cast<uint64_t>(expected));
}

TEST(Stencil5Kernel, StorageOptimizedTouchesLessMemoryThanNatural)
{
    Stencil5Config cfg;
    cfg.length = 4096;
    cfg.steps = 8;
    auto footprint = [&](Stencil5Variant v) {
        VirtualArena arena;
        MemorySystem ms(MachineConfig::pentiumPro());
        SimMem sim{&ms};
        runStencil5(v, cfg, sim, arena);
        // Unique pages touched ~ footprint: use TLB miss count with a
        // huge TLB as a proxy via L2 misses instead; simplest robust
        // proxy: simulated cycles should be ordered natural >= ov.
        return ms.cycles();
    };
    EXPECT_GE(footprint(Stencil5Variant::Natural),
              footprint(Stencil5Variant::Ov) * 0.9);
}

TEST(Stencil5Kernel, RejectsDegenerateProblems)
{
    Stencil5Config cfg;
    cfg.length = 4;
    VirtualArena arena;
    NativeMem mem;
    EXPECT_THROW(runStencil5(Stencil5Variant::Natural, cfg, mem, arena),
                 UovUserError);
}

} // namespace
} // namespace uov
