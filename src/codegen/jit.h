/**
 * @file
 * Compile-and-dlopen JIT pipeline for generated kernels.
 *
 * JitCompiler shells out to a host C compiler (UOV_CC, then cc / gcc /
 * clang on PATH) with -O2 -march=native, caches the shared objects it
 * produces under a content hash of (compiler, flags, source) so
 * identical source is never compiled twice, and loads kernels through
 * dlopen/dlsym wrapped in the RAII JitKernel (dlclose on destruction).
 *
 * -ffp-contract=off is part of the default flags on purpose: the
 * differential oracle compares JIT output bit-exactly against the
 * C++ interpreter, and FMA contraction under -march=native would
 * change the rounding of the generated a*b+c chains.
 *
 * Everything degrades loudly but gracefully: a missing compiler is
 * detectable up front (available() / hostCompilerAvailable()), and a
 * failed compile throws a UovError carrying the compiler's stderr.
 * A compiler named *explicitly* -- JitOptions::compiler or a set
 * UOV_CC -- that does not resolve to an executable is a configuration
 * error: construction throws one actionable UovUserError instead of
 * silently falling back or failing per compile.
 */

#ifndef UOV_CODEGEN_JIT_H
#define UOV_CODEGEN_JIT_H

#include <cstdint>
#include <string>
#include <vector>

namespace uov {

struct GeneratedCode;

namespace jit_detail {

/**
 * Run @p compiler on @p c_path producing the shared object
 * @p so_path (adds -shared -fPIC).  Shared by JitCompiler and the
 * uncached compileToSharedObject test helper.
 * @throws UovError on failure, message carrying the command line and
 *         the compiler's captured stderr
 */
void runHostCompiler(const std::string &compiler,
                     const std::vector<std::string> &flags,
                     const std::string &c_path,
                     const std::string &so_path);

} // namespace jit_detail

/** A dlopen'ed shared object; unloads (dlclose) on destruction. */
class JitKernel
{
  public:
    JitKernel() = default;
    ~JitKernel();

    JitKernel(JitKernel &&other) noexcept;
    JitKernel &operator=(JitKernel &&other) noexcept;
    JitKernel(const JitKernel &) = delete;
    JitKernel &operator=(const JitKernel &) = delete;

    /** True when a shared object is loaded. */
    explicit operator bool() const { return _handle != nullptr; }

    /** Path of the loaded .so. */
    const std::string &path() const { return _path; }

    /**
     * Resolve @p name.  @throws UovError when nothing is loaded or
     * the symbol is missing (message carries dlerror()).
     */
    void *sym(const std::string &name) const;

    /** Typed convenience: kernel.fn<void (*)(double *)>("f"). */
    template <typename Fn>
    Fn
    fn(const std::string &name) const
    {
        return reinterpret_cast<Fn>(sym(name));
    }

  private:
    friend class JitCompiler;
    JitKernel(void *handle, std::string path)
        : _handle(handle), _path(std::move(path))
    {}

    void *_handle = nullptr;
    std::string _path;
};

/** JitCompiler configuration. */
struct JitOptions
{
    /** Compiler executable; empty auto-detects (UOV_CC, cc, gcc,
     *  clang -- first found on PATH). */
    std::string compiler;
    /** Optimization / codegen flags (the cache key includes them). */
    std::vector<std::string> flags = {"-O2", "-march=native",
                                      "-ffp-contract=off"};
    /** Shared-object cache directory; empty uses
     *  <tmp>/uov-jit-cache-<uid>. */
    std::string cache_dir;
};

/**
 * Shells out to the host C compiler and caches the results.
 *
 * Cache keying: FNV-1a over compiler path, flags, and full source
 * text; a hit returns the existing .so without invoking the compiler
 * (observable through cacheHits() / compilesInvoked(), which the
 * negative-path tests assert).  Compiles land in the cache atomically
 * (write to a process-unique temp name, then rename), so concurrent
 * processes sharing a cache directory never load a half-written .so.
 */
class JitCompiler
{
  public:
    /** @throws UovUserError when an explicitly named compiler
     *  (options.compiler, else a nonempty $UOV_CC) is nonexistent or
     *  not executable.  The unconfigured probe never throws. */
    explicit JitCompiler(JitOptions options = {});

    /** Detected compiler path ("" when none was found). */
    const std::string &compiler() const { return _compiler; }

    /** True when a compiler is available to this instance. */
    bool available() const { return !_compiler.empty(); }

    /** Probe the default candidates (for skip-not-fail guards). */
    static bool hostCompilerAvailable();

    /** First of $UOV_CC, cc, gcc, clang found on PATH ("" if none). */
    static std::string findHostCompiler();

    /** Content-hash cache key of @p source under this configuration. */
    std::string cacheKey(const std::string &source) const;

    /**
     * Compile @p source to a shared object; returns its path.
     * @throws UovUserError when no compiler is available
     * @throws UovError on compile failure (message carries stderr)
     */
    std::string compile(const std::string &source);

    /** dlopen @p so_path. @throws UovError with dlerror() on failure */
    JitKernel load(const std::string &so_path) const;

    /** compile() + load() for a generated compilation unit. */
    JitKernel compileAndLoad(const GeneratedCode &code);

    /** Compiler invocations this instance has performed. */
    uint64_t compilesInvoked() const { return _compiles; }

    /** compile() calls satisfied from the shared-object cache. */
    uint64_t cacheHits() const { return _cache_hits; }

    const std::string &cacheDir() const { return _cache_dir; }

  private:
    std::string _compiler;
    std::vector<std::string> _flags;
    std::string _cache_dir;
    uint64_t _compiles = 0;
    uint64_t _cache_hits = 0;
};

} // namespace uov

#endif // UOV_CODEGEN_JIT_H
