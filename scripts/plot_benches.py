#!/usr/bin/env python3
"""Plot the scaling benches' CSV output as paper-style figures.

Usage:
    build/bench/bench_fig9_11_stencil_scaling --csv > stencil.csv
    scripts/plot_benches.py stencil.csv -o fig9_11.png

Each bench emits one CSV table per simulated machine when run with
--csv; this script splits on header rows (first cell "Length" or
"Problem Size" or "N=M"), plots every version column against the size
column on log-x axes, and writes one subplot per machine -- the same
layout as the paper's Figures 9-14.

Unknown columns are tolerated generically rather than by name:
rate/diagnostic columns (header ending in "/s") and columns with any
non-numeric cell are skipped with a note, so benches may append new
diagnostics without breaking the plots.

Requires matplotlib; degrades to a textual summary without it.
"""

import argparse
import csv
import sys

SIZE_HEADERS = {"Length", "Problem Size", "N=M"}


def skip_reason(header, values):
    """Why a column can't be plotted, or None if it can."""
    if header.endswith("/s"):
        return "rate diagnostic"
    if any(v is None for v in values):
        return "non-numeric cells"
    return None


def parse_tables(path):
    """Split a --csv dump into (header, rows) tables."""
    tables = []
    current = None
    with open(path, newline="") as f:
        for row in csv.reader(f):
            if not row:
                continue
            if row[0] in SIZE_HEADERS:
                current = {"header": row, "rows": []}
                tables.append(current)
            elif current is not None:
                current["rows"].append(row)
    return tables


def to_number(cell):
    try:
        return float(cell.replace(",", ""))
    except ValueError:
        return None


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("csv_file")
    ap.add_argument("-o", "--output", default="bench.png")
    ap.add_argument("--title", default="")
    args = ap.parse_args()

    tables = parse_tables(args.csv_file)
    if not tables:
        sys.exit("no size-indexed tables found in " + args.csv_file)

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib unavailable; textual summary instead:")
        for i, t in enumerate(tables):
            print(f"table {i}: columns {t['header']}")
            for row in t["rows"]:
                print("  ", row)
        return

    fig, axes = plt.subplots(1, len(tables),
                             figsize=(6 * len(tables), 4.5),
                             squeeze=False)
    for ax, table in zip(axes[0], tables):
        header = table["header"]
        sizes = [to_number(r[0]) for r in table["rows"]]
        for col in range(1, len(header)):
            # Rows narrower than the header (or vice versa) only
            # suppress the affected column, not the whole figure.
            values = [
                to_number(r[col]) if col < len(r) else None
                for r in table["rows"]
            ]
            reason = skip_reason(header[col], values)
            if reason:
                print(f"skipping column '{header[col]}' ({reason})")
                continue
            ax.plot(sizes, values, marker="o", label=header[col])
        ax.set_xscale("log")
        ax.set_xlabel(header[0])
        ax.set_ylabel("Cycles per Iteration")
        ax.grid(True, alpha=0.3)
        ax.legend(fontsize=7)
    if args.title:
        fig.suptitle(args.title)
    fig.tight_layout()
    fig.savefig(args.output, dpi=140)
    print("wrote", args.output)


if __name__ == "__main__":
    main()
