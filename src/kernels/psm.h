/**
 * @file
 * Protein string matching (Section 5): an affine-gap similarity DP
 * over two amino-acid strings with a 23 x 23 comparison-weight table.
 *
 * Two recurrences per iteration (i, j):
 *     E[i,j] = max(E[i,j-1] + gap_ext, D[i,j-1] + gap_open)
 *     D[i,j] = max(D[i-1,j-1] + W[a_i, b_j], D[i-1,j] + gap_open,
 *                  E[i,j])
 *
 * The loop-carried dependence stencil is {(1,0),(0,1),(1,1)} with UOV
 * (1,1), so each of the two value arrays OV-maps to an anti-diagonal
 * of n0+n1+1 cells: 2*(n0+n1)+2 total, matching Table 2's
 * "2n0+2n1+1" up to the boundary cell.  The storage-optimized version
 * (after [Alpern/Carter/Gatlin 95]) keeps two columns plus
 * temporaries (~2n0+3) and is locked to the column-sweep schedule.
 *
 * The inner loop's max() comparisons are the branches the paper
 * conjectures dominate on the Ultra 2 / Alpha (Figures 13, 14); the
 * kernels report them to the memory policy.
 */

#ifndef UOV_KERNELS_PSM_H
#define UOV_KERNELS_PSM_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/memory_policy.h"
#include "support/error.h"

namespace uov {

/** Amino-acid alphabet size (20 + B, Z, X). */
inline constexpr int kPsmAlphabet = 23;

/** Measured code versions of protein string matching. */
enum class PsmVariant
{
    Natural,
    NaturalTiled,
    Ov,
    OvTiled,
    StorageOptimized,
};

const std::vector<PsmVariant> &allPsmVariants();
const char *psmVariantName(PsmVariant v);
bool psmVariantTiled(PsmVariant v);

/** Problem and tiling parameters. */
struct PsmConfig
{
    int64_t n0 = 256; ///< length of string a
    int64_t n1 = 256; ///< length of string b
    int64_t tile_i = 64;
    int64_t tile_j = 64;
    int32_t gap_open = -4;
    int32_t gap_ext = -1;
};

/**
 * Temporary-storage cells (Table 2): natural n0*n1 + n0 + n1,
 * OV-mapped 2*n0 + 2*n1 + 1, storage-optimized 2*n0 + 3.
 */
int64_t psmTemporaryStorage(PsmVariant v, int64_t n0, int64_t n1);

/** Deterministic synthetic amino-acid string. */
std::vector<uint8_t> psmString(int64_t length, uint64_t seed);

/** The BLOSUM-like 23 x 23 weight table (deterministic, symmetric). */
const std::vector<int32_t> &psmWeightTable();

namespace detail {

inline constexpr int32_t kNegInf = INT32_MIN / 4;

/// Arithmetic cycles charged per iteration on simulated machines.
inline constexpr double kPsmComputeCycles = 4.0;

} // namespace detail

/**
 * Run one variant; returns D[n0, n1] (identical across variants).
 */
template <typename Mem>
int32_t
runPsm(PsmVariant variant, const PsmConfig &cfg, Mem &mem,
       VirtualArena &arena)
{
    const int64_t n0 = cfg.n0;
    const int64_t n1 = cfg.n1;
    UOV_REQUIRE(n0 >= 1 && n1 >= 1, "psm needs non-empty strings");

    std::vector<uint8_t> a = psmString(n0, 11);
    std::vector<uint8_t> b = psmString(n1, 13);
    const std::vector<int32_t> &w_table = psmWeightTable();

    SimBuffer<uint8_t> sa(arena, static_cast<size_t>(n0));
    SimBuffer<uint8_t> sb(arena, static_cast<size_t>(n1));
    SimBuffer<int32_t> sw(arena, w_table.size());
    std::copy(a.begin(), a.end(), sa.data());
    std::copy(b.begin(), b.end(), sb.data());
    std::copy(w_table.begin(), w_table.end(), sw.data());

    auto weight = [&](int64_t i, int64_t j) {
        int wa = mem.load(sa, static_cast<size_t>(i - 1));
        int wb = mem.load(sb, static_cast<size_t>(j - 1));
        return mem.load(sw,
                        static_cast<size_t>(wa * kPsmAlphabet + wb));
    };
    auto vmax = [&](int32_t x, int32_t y) {
        mem.branch();
        return x > y ? x : y;
    };
    auto init_d = [&](int64_t i, int64_t j) -> int32_t {
        // Boundary conditions: D[0,0]=0, gaps along the edges.
        if (i == 0 && j == 0)
            return 0;
        return cfg.gap_open +
               cfg.gap_ext * static_cast<int32_t>(i + j - 1);
    };

    switch (variant) {
      case PsmVariant::Natural:
      case PsmVariant::NaturalTiled: {
        auto cells = static_cast<size_t>((n0 + 1) * (n1 + 1));
        SimBuffer<int32_t> d(arena, cells);
        SimBuffer<int32_t> e(arena, cells, detail::kNegInf);
        auto at = [n1](int64_t i, int64_t j) {
            return static_cast<size_t>(i * (n1 + 1) + j);
        };
        for (int64_t i = 0; i <= n0; ++i)
            d.data()[at(i, 0)] = init_d(i, 0);
        for (int64_t j = 0; j <= n1; ++j)
            d.data()[at(0, j)] = init_d(0, j);

        auto point = [&](int64_t i, int64_t j) {
            int32_t ev = vmax(
                mem.load(e, at(i, j - 1)) + cfg.gap_ext,
                mem.load(d, at(i, j - 1)) + cfg.gap_open);
            int32_t dv =
                vmax(vmax(mem.load(d, at(i - 1, j - 1)) + weight(i, j),
                          mem.load(d, at(i - 1, j)) + cfg.gap_open),
                     ev);
            mem.compute(detail::kPsmComputeCycles);
            mem.store(e, at(i, j), ev);
            mem.store(d, at(i, j), dv);
        };
        if (variant == PsmVariant::Natural) {
            for (int64_t i = 1; i <= n0; ++i)
                for (int64_t j = 1; j <= n1; ++j)
                    point(i, j);
        } else {
            for (int64_t ib = 1; ib <= n0; ib += cfg.tile_i)
                for (int64_t jb = 1; jb <= n1; jb += cfg.tile_j)
                    for (int64_t i = ib;
                         i < ib + cfg.tile_i && i <= n0; ++i)
                        for (int64_t j = jb;
                             j < jb + cfg.tile_j && j <= n1; ++j)
                            point(i, j);
        }
        return mem.load(d, at(n0, n1));
      }

      case PsmVariant::Ov:
      case PsmVariant::OvTiled: {
        // UOV (1,1): SM(q) = (-1,1).q + n0, one anti-diagonal of
        // n0+n1+1 cells per array.
        auto cells = static_cast<size_t>(n0 + n1 + 1);
        SimBuffer<int32_t> d(arena, cells);
        SimBuffer<int32_t> e(arena, cells, detail::kNegInf);
        auto at = [n0](int64_t i, int64_t j) {
            return static_cast<size_t>(j - i + n0);
        };
        for (int64_t i = 0; i <= n0; ++i)
            d.data()[at(i, 0)] = init_d(i, 0);
        for (int64_t j = 0; j <= n1; ++j)
            d.data()[at(0, j)] = init_d(0, j);

        auto point = [&](int64_t i, int64_t j) {
            int32_t ev = vmax(
                mem.load(e, at(i, j - 1)) + cfg.gap_ext,
                mem.load(d, at(i, j - 1)) + cfg.gap_open);
            int32_t dv =
                vmax(vmax(mem.load(d, at(i - 1, j - 1)) + weight(i, j),
                          mem.load(d, at(i - 1, j)) + cfg.gap_open),
                     ev);
            mem.compute(detail::kPsmComputeCycles);
            mem.store(e, at(i, j), ev);
            mem.store(d, at(i, j), dv);
        };
        if (variant == PsmVariant::Ov) {
            for (int64_t i = 1; i <= n0; ++i)
                for (int64_t j = 1; j <= n1; ++j)
                    point(i, j);
        } else {
            for (int64_t ib = 1; ib <= n0; ib += cfg.tile_i)
                for (int64_t jb = 1; jb <= n1; jb += cfg.tile_j)
                    for (int64_t i = ib;
                         i < ib + cfg.tile_i && i <= n0; ++i)
                        for (int64_t j = jb;
                             j < jb + cfg.tile_j && j <= n1; ++j)
                            point(i, j);
        }
        return mem.load(d, at(n0, n1));
      }

      case PsmVariant::StorageOptimized: {
        // Column sweep with in-place columns: D and E columns of
        // n0+1 entries plus rotating scalars (~2n0+3 cells).  The
        // in-place updates create storage dependences that lock the
        // schedule; this version cannot be tiled.
        SimBuffer<int32_t> dcol(arena, static_cast<size_t>(n0 + 1));
        SimBuffer<int32_t> ecol(arena, static_cast<size_t>(n0 + 1),
                                detail::kNegInf);
        for (int64_t i = 0; i <= n0; ++i)
            dcol.data()[static_cast<size_t>(i)] = init_d(i, 0);

        for (int64_t j = 1; j <= n1; ++j) {
            int32_t diag = mem.load(dcol, 0); // D[0, j-1]
            mem.store(dcol, 0, init_d(0, j));
            for (int64_t i = 1; i <= n0; ++i) {
                auto ii = static_cast<size_t>(i);
                int32_t d_old = mem.load(dcol, ii); // D[i, j-1]
                int32_t ev = vmax(mem.load(ecol, ii) + cfg.gap_ext,
                                  d_old + cfg.gap_open);
                int32_t dv =
                    vmax(vmax(diag + weight(i, j),
                              mem.load(dcol, ii - 1) + cfg.gap_open),
                         ev);
                mem.compute(detail::kPsmComputeCycles);
                mem.store(ecol, ii, ev);
                mem.store(dcol, ii, dv);
                diag = d_old;
            }
        }
        return mem.load(dcol, static_cast<size_t>(n0));
      }
    }
    UOV_UNREACHABLE("bad psm variant");
}

} // namespace uov

#endif // UOV_KERNELS_PSM_H
