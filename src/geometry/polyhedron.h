/**
 * @file
 * Convex polyhedra for iteration-space geometry.
 *
 * The paper's ISG (iteration space graph) domain is the set of integer
 * solutions of A*i <= b (Section 4.3, footnote 6); its extreme points
 * drive storage allocation, and its projections drive the known-bounds
 * search objective (Section 3.2).  This class supports exactly that:
 * construction from constraints, boxes or 2-D vertex lists, exact
 * rational vertex enumeration, dot-product ranges, projection widths,
 * and minimum width (the paper's P_M).
 */

#ifndef UOV_GEOMETRY_POLYHEDRON_H
#define UOV_GEOMETRY_POLYHEDRON_H

#include <optional>
#include <vector>

#include "geometry/ivec.h"
#include "geometry/matrix.h"
#include "geometry/rational.h"

namespace uov {

/** A point with rational coordinates (polyhedron vertices). */
using RationalVec = std::vector<Rational>;

/** Dot product of a rational point with an integer direction. */
Rational dotRI(const RationalVec &p, const IVec &dir);

/** Bounded convex polyhedron (polytope) in Z^d, given by A x <= b. */
class Polyhedron
{
  public:
    /** Polytope from explicit constraints. @pre A.rows() == b.dim() */
    static Polyhedron fromConstraints(IMatrix a, IVec b);

    /** Axis-aligned box lo <= x <= hi (inclusive). */
    static Polyhedron box(const IVec &lo, const IVec &hi);

    /**
     * 2-D polytope from its vertex list (any order); computes the
     * convex hull and the corresponding edge constraints.
     * @pre all vertices are 2-D
     */
    static Polyhedron fromVertices2D(const std::vector<IVec> &pts);

    size_t dim() const { return _a.cols(); }
    const IMatrix &constraintMatrix() const { return _a; }
    const IVec &constraintRhs() const { return _b; }

    /** True iff the integer point satisfies every constraint. */
    bool contains(const IVec &p) const;

    /**
     * The extreme points (vertices).  Computed lazily by enumerating
     * d-subsets of constraints; exact rational arithmetic.
     * @throws UovUserError if the polyhedron is unbounded or empty
     */
    const std::vector<RationalVec> &vertices() const;

    /** max over vertices of dir . x. */
    Rational maxDot(const IVec &dir) const;

    /** min over vertices of dir . x. */
    Rational minDot(const IVec &dir) const;

    /**
     * Number of integer values taken by dir . x over the polytope:
     * floor(maxDot) - ceil(minDot) + 1 (0 if the range is empty).
     * This is the integer-point count of the projection onto the line
     * spanned by dir -- the paper's projection measure when dir is a
     * (primitive) mapping vector.
     */
    int64_t projectionCount(const IVec &dir) const;

    /**
     * Minimum projection count over candidate directions: the paper's
     * P_M ("minimum projection of the ISG on any hyperplane").  Exact
     * for 2-D polytopes (the minimizing direction is an edge normal);
     * for boxes it is the shortest side; otherwise returns 1 (a valid
     * but loose lower bound).
     */
    int64_t minProjectionCount() const;

    /** Integer bounding box [lo, hi] of the polytope. */
    void boundingBox(IVec &lo, IVec &hi) const;

    /**
     * Exact count of integer points inside, by scanning the bounding
     * box. @pre bounding-box volume <= maxScan
     */
    int64_t countIntegerPoints(int64_t max_scan = 100000000) const;

    /** Enumerate all integer points (small polytopes only). */
    std::vector<IVec> integerPoints(int64_t max_scan = 10000000) const;

  private:
    Polyhedron(IMatrix a, IVec b);

    void computeVertices() const;

    IMatrix _a;
    IVec _b;
    mutable bool _verticesValid = false;
    mutable std::vector<RationalVec> _vertices;
};

} // namespace uov

#endif // UOV_GEOMETRY_POLYHEDRON_H
