/**
 * @file
 * Reproduces Figure 2: the DONE and DEAD sets of a 3-vector stencil
 * around a query point, rendered as an ASCII grid, plus the identity
 * DEAD offsets == UOV(V).
 */

#include "bench_common.h"

#include "core/done_dead.h"
#include "core/uov.h"

using namespace uov;

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseArgs(argc, argv);
    bench::banner("Figure 2 (DONE and DEAD sets)");

    Stencil stencil = stencils::threeVector();
    std::cout << "stencil V = " << stencil.str()
              << " (the paper's figure uses a representative 3-vector "
                 "stencil; exact values are not printed there)\n\n";

    DoneDeadAnalysis dd(stencil);
    UovOracle oracle(stencil);

    IVec q{8, 8};
    IVec lo{2, 2}, hi{9, 14};

    // ASCII rendering: q = 'q', DEAD = '#', DONE-only = 'o', else '.'.
    std::cout << "around q = " << q << " ('#'=DEAD, 'o'=DONE only, "
              << "'.'=neither):\n";
    for (int64_t x = lo[0]; x <= hi[0]; ++x) {
        std::cout << "  ";
        for (int64_t y = lo[1]; y <= hi[1]; ++y) {
            IVec p{x, y};
            char c = '.';
            if (p == q)
                c = 'q';
            else if (dd.isDead(q, p))
                c = '#';
            else if (dd.isDone(q, p))
                c = 'o';
            std::cout << c << ' ';
        }
        std::cout << "\n";
    }
    std::cout << "\n";

    auto done = dd.enumerateDone(q, lo, hi);
    auto dead = dd.enumerateDead(q, lo, hi);

    Table t("Figure 2: set sizes in the window " + lo.str() + ".." +
            hi.str());
    t.header({"set", "points", "property"});
    t.addRow().cell("DONE(V,q)").cell(int64_t(done.size()))
        .cell("must execute before q");
    t.addRow().cell("DEAD(V,q)").cell(int64_t(dead.size()))
        .cell("values fully consumed once q runs");
    bench::emit(t, opt);

    // DEAD offsets are exactly the UOVs (Section 3.1).
    uint64_t checked = 0, agree = 0;
    for (const auto &p : done) {
        bool is_dead = dd.isDead(q, p);
        bool is_uov = oracle.isUov(q - p);
        ++checked;
        if (is_dead == is_uov)
            ++agree;
    }
    std::cout << "UOV(V) = { q - p : p in DEAD }: verified on "
              << checked << " DONE points, " << agree << " agree.\n";
    std::cout << "initial UOV (sum of V) = " << stencil.initialUov()
              << ", member: "
              << (oracle.isUov(stencil.initialUov()) ? "yes" : "NO")
              << "\n";
    return agree == checked ? 0 : 1;
}
