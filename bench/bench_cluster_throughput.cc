/**
 * @file
 * Cluster-serving drill for uovd: durability and overload behaviour
 * under a replayable high-volume workload, with tail latency from the
 * service's own metrics histograms.
 *
 * Three regimes over the same seeded workload (fuzz::makeWorkload):
 *
 *  - cold: a fresh service with an empty result store solves the
 *    batch and persists every answer.
 *  - warm restart: a *new* service process-equivalent (fresh cache,
 *    same store file) replays the identical batch.  Gate: byte-
 *    identical responses and zero branch-and-bound searches -- the
 *    whole corpus must come back from disk.
 *  - overload: the batch replayed at 4x the admission capacity with
 *    shedding armed.  Gate: zero hard errors -- every response is
 *    either optimal or a certified Degraded answer (the shed ov_o
 *    floor), never an error line.
 *
 * The bench exits nonzero when any gate fails, so CI can run it as a
 * smoke test (--quick).  Not a paper artifact -- this measures the
 * serving layer added on top of the reproduction (see DESIGN.md,
 * "Durability & overload").
 */

#include <cstdio>
#include <filesystem>
#include <string>

#include "bench_common.h"
#include "fuzz/workload.h"
#include "service/executor.h"

using namespace uov;
using namespace uov::bench;
using namespace uov::service;

namespace {

double
qps(size_t requests, double wall_ns)
{
    return wall_ns > 0 ? static_cast<double>(requests) * 1e9 / wall_ns
                       : 0.0;
}

struct RegimeResult
{
    std::vector<std::string> responses;
    double wall_ns = 0;
    uint64_t optimal = 0;
    uint64_t degraded = 0;
    uint64_t errors = 0;
    uint64_t shed = 0;
    uint64_t searches = 0;
    uint64_t p99_us = 0;
    uint64_t p999_us = 0;
};

RegimeResult
runRegime(const std::vector<Request> &workload,
          const ServiceOptions &so, unsigned threads,
          AdmissionController *admission, MetricsRegistry &metrics)
{
    QueryService svc(so, metrics);
    ThreadPool pool(threads);
    auto start = std::chrono::steady_clock::now();
    RegimeResult r;
    r.responses = runBatch(svc, workload, pool, admission);
    auto stop = std::chrono::steady_clock::now();
    r.wall_ns =
        std::chrono::duration<double, std::nano>(stop - start).count();
    r.optimal = metrics.counter("service.optimal").value();
    r.degraded = metrics.counter("service.degraded").value();
    r.errors = metrics.counter("service.request_errors").value();
    r.shed = metrics.counter("service.shed.responses").value();
    r.searches = svc.searchesExecuted();
    Histogram &latency = metrics.histogram("service.latency_us");
    r.p99_us = latency.percentile(0.99);
    r.p999_us = latency.percentile(0.999);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);
    std::cout << "# Cluster-serving drill: durable warm restart and "
                 "overload shedding (not a paper artifact)\n\n";

    const size_t requests = opt.quick ? 400 : 4000;
    const size_t distinct = opt.quick ? 8 : 32;
    const uint64_t kVisitCap = 50'000;
    const unsigned threads = 4;
    // "Capacity" for the overload regime: the admission high-water
    // mark.  The submit loop enqueues far faster than searches
    // complete, so a batch 4x this deep is guaranteed to cross it.
    const int64_t high_water =
        static_cast<int64_t>(requests / 4);

    fuzz::WorkloadOptions wopt;
    wopt.requests = requests;
    wopt.distinct = distinct;
    wopt.seed = 1998;
    std::vector<Request> workload = fuzz::makeWorkload(wopt);

    std::string store_path =
        (std::filesystem::temp_directory_path() /
         ("uov-bench-cluster-" +
          std::to_string(static_cast<long>(::getpid())) + ".store"))
            .string();
    ServiceOptions stored;
    stored.max_visits = kVisitCap;
    stored.store_path = store_path;

    Table t("Cluster serving, " + std::to_string(requests) +
            " requests over " + std::to_string(distinct) +
            " distinct queries, " + std::to_string(threads) +
            " threads");
    t.header({"Regime", "Wall ms", "QPS", "Optimal", "Degraded",
              "Errors", "Shed", "p99 us", "p999 us"});
    auto addRow = [&](const std::string &name, const RegimeResult &r) {
        t.addRow()
            .cell(name)
            .cell(r.wall_ns / 1e6)
            .cell(qps(r.responses.size(), r.wall_ns), 0)
            .cell(r.optimal)
            .cell(r.degraded)
            .cell(r.errors)
            .cell(r.shed)
            .cell(r.p99_us)
            .cell(r.p999_us);
    };

    int failures = 0;
    auto gate = [&](bool ok, const std::string &what) {
        if (!ok) {
            std::cerr << "GATE FAILED: " << what << "\n";
            ++failures;
        }
    };

    // Cold: empty store, every distinct query is a real search.
    RegimeResult cold;
    {
        MetricsRegistry metrics;
        cold = runRegime(workload, stored, threads, nullptr, metrics);
        addRow("cold", cold);
        gate(cold.errors == 0, "cold regime drew error lines");
    }

    // Warm restart: fresh service + cache, same store file.
    {
        MetricsRegistry metrics;
        RegimeResult warm =
            runRegime(workload, stored, threads, nullptr, metrics);
        addRow("warm-restart", warm);
        gate(warm.responses == cold.responses,
             "warm restart diverged from the cold run");
        gate(warm.searches == 0,
             "warm restart re-ran " + std::to_string(warm.searches) +
                 " searches");
    }

    // Overload: no store (worst case), 4x the admission capacity.
    {
        MetricsRegistry metrics;
        AdmissionOptions ao;
        ao.high_water = high_water;
        AdmissionController admission(ao, metrics);
        ServiceOptions storeless;
        storeless.max_visits = kVisitCap;
        RegimeResult over = runRegime(workload, storeless, threads,
                                      &admission, metrics);
        addRow("overload-4x", over);
        gate(over.errors == 0,
             "overload regime drew " + std::to_string(over.errors) +
                 " hard errors (must shed, not fail)");
        gate(over.optimal + over.degraded ==
                 static_cast<uint64_t>(workload.size()),
             "overload responses do not partition into "
             "optimal+degraded");
    }

    emit(t, opt);
    std::error_code ec;
    std::filesystem::remove(store_path, ec);
    if (failures)
        std::cerr << failures << " gate(s) failed\n";
    return failures ? 1 : 0;
}
