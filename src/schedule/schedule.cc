#include "schedule/schedule.h"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <unordered_map>

#include "support/checked.h"
#include "support/error.h"
#include "support/rng.h"

namespace uov {

namespace {

/** Odometer enumeration of [lo, hi] with dimension order perm. */
template <typename Visit>
void
scanBoxPermuted(const IVec &lo, const IVec &hi,
                const std::vector<size_t> &perm, Visit visit)
{
    size_t d = lo.dim();
    IVec p = lo;
    // Initialize to lows; iterate innermost = perm[d-1] fastest.
    for (;;) {
        visit(p);
        size_t level = d;
        bool done = false;
        while (level-- > 0) {
            size_t dim = perm[level];
            if (p[dim] < hi[dim]) {
                ++p[dim];
                break;
            }
            p[dim] = lo[dim];
            if (level == 0)
                done = true;
        }
        if (done)
            break;
    }
}

std::vector<size_t>
identityPerm(size_t d)
{
    std::vector<size_t> perm(d);
    std::iota(perm.begin(), perm.end(), 0);
    return perm;
}

/** Bounding box of T*[lo, hi] from its transformed corners. */
void
transformedBounds(const IMatrix &t, const IVec &lo, const IVec &hi,
                  IVec &tlo, IVec &thi)
{
    size_t d = lo.dim();
    tlo = IVec(d);
    thi = IVec(d);
    for (size_t r = 0; r < d; ++r) {
        int64_t mn = 0, mx = 0;
        for (size_t c = 0; c < d; ++c) {
            int64_t a = t(r, c);
            mn = checkedAdd(mn, a * (a >= 0 ? lo[c] : hi[c]));
            mx = checkedAdd(mx, a * (a >= 0 ? hi[c] : lo[c]));
        }
        tlo[r] = mn;
        thi[r] = mx;
    }
}

bool
inBox(const IVec &p, const IVec &lo, const IVec &hi)
{
    for (size_t c = 0; c < p.dim(); ++c)
        if (p[c] < lo[c] || p[c] > hi[c])
            return false;
    return true;
}

} // namespace

LexSchedule::LexSchedule(std::vector<size_t> perm) : _perm(std::move(perm))
{
    std::vector<size_t> sorted = _perm;
    std::sort(sorted.begin(), sorted.end());
    for (size_t i = 0; i < sorted.size(); ++i)
        UOV_REQUIRE(sorted[i] == i,
                    "permutation is not a bijection on 0.."
                        << sorted.size() - 1);
}

LexSchedule
LexSchedule::identity(size_t d)
{
    return LexSchedule(identityPerm(d));
}

std::string
LexSchedule::name() const
{
    std::ostringstream oss;
    oss << "lex(";
    for (size_t i = 0; i < _perm.size(); ++i) {
        if (i)
            oss << ",";
        oss << _perm[i];
    }
    oss << ")";
    return oss.str();
}

void
LexSchedule::forEach(const IVec &lo, const IVec &hi,
                     const IterationVisitor &visit) const
{
    UOV_REQUIRE(lo.dim() == _perm.size(), "schedule depth mismatch");
    scanBoxPermuted(lo, hi, _perm, visit);
}

TransformedSchedule::TransformedSchedule(IMatrix transform,
                                         std::string label)
    : _t(std::move(transform)), _label(std::move(label))
{
    UOV_REQUIRE(_t.rows() == _t.cols(), "transform must be square");
    UOV_REQUIRE(_t.isUnimodular(),
                "schedule transform must be unimodular to enumerate "
                "every iteration exactly once");
    _t_inv = _t.inverseUnimodular();
}

std::string
TransformedSchedule::name() const
{
    return _label.empty() ? "transformed" + _t.str() : _label;
}

void
TransformedSchedule::forEach(const IVec &lo, const IVec &hi,
                             const IterationVisitor &visit) const
{
    UOV_REQUIRE(lo.dim() == _t.rows(), "schedule depth mismatch");
    IVec tlo, thi;
    transformedBounds(_t, lo, hi, tlo, thi);
    scanBoxPermuted(tlo, thi, identityPerm(lo.dim()),
                    [&](const IVec &y) {
                        IVec q = _t_inv * y;
                        if (inBox(q, lo, hi))
                            visit(q);
                    });
}

TiledSchedule::TiledSchedule(std::vector<int64_t> tile_sizes,
                             IMatrix transform, std::string label)
    : _sizes(std::move(tile_sizes)), _t(std::move(transform)),
      _label(std::move(label))
{
    UOV_REQUIRE(_t.rows() == _t.cols() && _t.rows() == _sizes.size(),
                "tile sizes / transform shape mismatch");
    UOV_REQUIRE(_t.isUnimodular(), "tiling transform must be unimodular");
    for (int64_t s : _sizes)
        UOV_REQUIRE(s >= 1, "tile sizes must be positive");
    _t_inv = _t.inverseUnimodular();
}

TiledSchedule
TiledSchedule::rectangular(std::vector<int64_t> tile_sizes)
{
    size_t d = tile_sizes.size();
    return TiledSchedule(std::move(tile_sizes), IMatrix::identity(d),
                         "tiled-rect");
}

std::string
TiledSchedule::name() const
{
    std::ostringstream oss;
    oss << (_label.empty() ? std::string("tiled") : _label) << "[";
    for (size_t i = 0; i < _sizes.size(); ++i) {
        if (i)
            oss << "x";
        oss << _sizes[i];
    }
    oss << "]";
    return oss.str();
}

void
TiledSchedule::forEach(const IVec &lo, const IVec &hi,
                       const IterationVisitor &visit) const
{
    size_t d = lo.dim();
    UOV_REQUIRE(d == _sizes.size(), "schedule depth mismatch");
    IVec tlo, thi;
    transformedBounds(_t, lo, hi, tlo, thi);

    // Tile index space.
    IVec tile_lo(d), tile_hi(d);
    for (size_t c = 0; c < d; ++c) {
        tile_lo[c] = floorDiv(tlo[c], _sizes[c]);
        tile_hi[c] = floorDiv(thi[c], _sizes[c]);
    }

    scanBoxPermuted(tile_lo, tile_hi, identityPerm(d),
                    [&](const IVec &tile) {
        // Intra-tile bounds in transformed space, clipped to the hull.
        IVec ylo(d), yhi(d);
        for (size_t c = 0; c < d; ++c) {
            ylo[c] = std::max(tlo[c], tile[c] * _sizes[c]);
            yhi[c] = std::min(thi[c], tile[c] * _sizes[c] +
                                          _sizes[c] - 1);
        }
        bool empty = false;
        for (size_t c = 0; c < d; ++c)
            if (ylo[c] > yhi[c])
                empty = true;
        if (empty)
            return;
        scanBoxPermuted(ylo, yhi, identityPerm(d), [&](const IVec &y) {
            IVec q = _t_inv * y;
            if (inBox(q, lo, hi))
                visit(q);
        });
    });
}

HierarchicalTiledSchedule::HierarchicalTiledSchedule(
    std::vector<int64_t> inner_sizes, std::vector<int64_t> outer_factors,
    IMatrix transform, std::string label)
    : _inner(std::move(inner_sizes)), _t(std::move(transform)),
      _label(std::move(label))
{
    UOV_REQUIRE(_t.rows() == _t.cols() && _t.rows() == _inner.size() &&
                    outer_factors.size() == _inner.size(),
                "hierarchical tiling shape mismatch");
    UOV_REQUIRE(_t.isUnimodular(), "tiling transform must be unimodular");
    _outer.resize(_inner.size());
    for (size_t c = 0; c < _inner.size(); ++c) {
        UOV_REQUIRE(_inner[c] >= 1 && outer_factors[c] >= 1,
                    "tile sizes and factors must be positive");
        _outer[c] = checkedMul(_inner[c], outer_factors[c]);
    }
    _t_inv = _t.inverseUnimodular();
}

std::string
HierarchicalTiledSchedule::name() const
{
    std::ostringstream oss;
    oss << (_label.empty() ? std::string("hier-tiled") : _label) << "[";
    for (size_t i = 0; i < _inner.size(); ++i) {
        if (i)
            oss << "x";
        oss << _inner[i] << "/" << _outer[i];
    }
    oss << "]";
    return oss.str();
}

void
HierarchicalTiledSchedule::forEach(const IVec &lo, const IVec &hi,
                                   const IterationVisitor &visit) const
{
    size_t d = lo.dim();
    UOV_REQUIRE(d == _inner.size(), "schedule depth mismatch");
    IVec tlo, thi;
    transformedBounds(_t, lo, hi, tlo, thi);

    auto perm = identityPerm(d);

    // Outer super-tile grid.
    IVec olo(d), ohi(d);
    for (size_t c = 0; c < d; ++c) {
        olo[c] = floorDiv(tlo[c], _outer[c]);
        ohi[c] = floorDiv(thi[c], _outer[c]);
    }
    scanBoxPermuted(olo, ohi, perm, [&](const IVec &outer) {
        // Inner tile grid clipped to this super-tile.
        IVec ylo(d), yhi(d);
        for (size_t c = 0; c < d; ++c) {
            ylo[c] = std::max(tlo[c], outer[c] * _outer[c]);
            yhi[c] = std::min(thi[c],
                              outer[c] * _outer[c] + _outer[c] - 1);
        }
        for (size_t c = 0; c < d; ++c)
            if (ylo[c] > yhi[c])
                return;
        IVec ilo(d), ihi(d);
        for (size_t c = 0; c < d; ++c) {
            ilo[c] = floorDiv(ylo[c], _inner[c]);
            ihi[c] = floorDiv(yhi[c], _inner[c]);
        }
        scanBoxPermuted(ilo, ihi, perm, [&](const IVec &inner) {
            IVec plo(d), phi(d);
            for (size_t c = 0; c < d; ++c) {
                plo[c] = std::max(ylo[c], inner[c] * _inner[c]);
                phi[c] = std::min(yhi[c], inner[c] * _inner[c] +
                                              _inner[c] - 1);
            }
            for (size_t c = 0; c < d; ++c)
                if (plo[c] > phi[c])
                    return;
            scanBoxPermuted(plo, phi, perm, [&](const IVec &y) {
                IVec q = _t_inv * y;
                if (inBox(q, lo, hi))
                    visit(q);
            });
        });
    });
}

WavefrontSchedule::WavefrontSchedule(IVec h) : _h(std::move(h))
{
    UOV_REQUIRE(!_h.isZero(), "zero wavefront vector");
}

std::string
WavefrontSchedule::name() const
{
    return "wavefront" + _h.str();
}

void
WavefrontSchedule::forEach(const IVec &lo, const IVec &hi,
                           const IterationVisitor &visit) const
{
    size_t d = lo.dim();
    UOV_REQUIRE(d == _h.dim(), "schedule depth mismatch");

    // Range of h . q over the box.
    int64_t wmin = 0, wmax = 0;
    for (size_t c = 0; c < d; ++c) {
        int64_t a = _h[c];
        wmin = checkedAdd(wmin, a * (a >= 0 ? lo[c] : hi[c]));
        wmax = checkedAdd(wmax, a * (a >= 0 ? hi[c] : lo[c]));
    }
    // O(waves * volume): fine for the test/demo scale this targets.
    for (int64_t w = wmin; w <= wmax; ++w) {
        scanBoxPermuted(lo, hi, identityPerm(d), [&](const IVec &q) {
            if (_h.dot(q) == w)
                visit(q);
        });
    }
}

AffineSchedule::AffineSchedule(std::vector<IVec> rows, std::string label)
    : _rows(std::move(rows)), _label(std::move(label))
{
    UOV_REQUIRE(!_rows.empty(), "affine schedule needs at least one row");
    for (const auto &r : _rows)
        UOV_REQUIRE(r.dim() == _rows[0].dim(),
                    "affine schedule row dimension mismatch");
}

std::string
AffineSchedule::name() const
{
    if (!_label.empty())
        return _label;
    std::ostringstream oss;
    oss << "affine(";
    for (size_t i = 0; i < _rows.size(); ++i) {
        if (i)
            oss << "; ";
        oss << _rows[i];
    }
    oss << ")";
    return oss.str();
}

std::vector<int64_t>
AffineSchedule::timeOf(const IVec &q) const
{
    std::vector<int64_t> t;
    t.reserve(_rows.size());
    for (const auto &r : _rows)
        t.push_back(r.dot(q));
    return t;
}

void
AffineSchedule::forEach(const IVec &lo, const IVec &hi,
                        const IterationVisitor &visit) const
{
    UOV_REQUIRE(lo.dim() == _rows[0].dim(), "schedule depth mismatch");
    // Materialize and sort: simple and correct for the demo/test
    // scale this class targets (like WavefrontSchedule).
    std::vector<IVec> points;
    scanBoxPermuted(lo, hi, identityPerm(lo.dim()),
                    [&](const IVec &q) { points.push_back(q); });
    std::stable_sort(points.begin(), points.end(),
                     [&](const IVec &a, const IVec &b) {
                         auto ta = timeOf(a);
                         auto tb = timeOf(b);
                         if (ta != tb)
                             return ta < tb;
                         return a.coords() < b.coords();
                     });
    for (const auto &q : points)
        visit(q);
}

bool
ovLegalForAffineSchedule(const AffineSchedule &schedule, const IVec &ov,
                         const Stencil &stencil)
{
    UOV_REQUIRE(!ov.isZero(), "zero occupancy vector");
    for (const auto &v : stencil.deps()) {
        std::vector<int64_t> tv = schedule.timeOf(v);
        // Lexicographically positive == strictly greater than the
        // all-zero tuple.
        UOV_REQUIRE(tv > std::vector<int64_t>(tv.size(), 0),
                    "schedule is not legal for dependence " << v.str());
    }
    std::vector<int64_t> t_ov = schedule.timeOf(ov);
    for (const auto &v : stencil.deps()) {
        if (v == ov)
            continue;
        if (!(schedule.timeOf(v) < t_ov))
            return false;
    }
    return true;
}

RandomTopoSchedule::RandomTopoSchedule(Stencil stencil, uint64_t seed)
    : _stencil(std::move(stencil)), _seed(seed)
{
}

std::string
RandomTopoSchedule::name() const
{
    return "random-topo(seed=" + std::to_string(_seed) + ")";
}

void
RandomTopoSchedule::forEach(const IVec &lo, const IVec &hi,
                            const IterationVisitor &visit) const
{
    size_t d = lo.dim();
    UOV_REQUIRE(d == _stencil.dim(), "schedule depth mismatch");

    // Collect box points and index them.
    std::vector<IVec> points;
    scanBoxPermuted(lo, hi, identityPerm(d),
                    [&](const IVec &q) { points.push_back(q); });
    std::unordered_map<IVec, size_t, IVecHash> index;
    for (size_t i = 0; i < points.size(); ++i)
        index.emplace(points[i], i);

    // In-box predecessor counts.
    std::vector<uint32_t> pending(points.size(), 0);
    for (size_t i = 0; i < points.size(); ++i) {
        for (const auto &v : _stencil.deps()) {
            IVec pred = points[i] - v;
            if (index.count(pred))
                ++pending[i];
        }
    }

    std::vector<size_t> ready;
    for (size_t i = 0; i < points.size(); ++i)
        if (pending[i] == 0)
            ready.push_back(i);

    SplitMix64 rng(_seed);
    size_t emitted = 0;
    while (!ready.empty()) {
        size_t pick = rng.nextBelow(ready.size());
        size_t i = ready[pick];
        ready[pick] = ready.back();
        ready.pop_back();

        visit(points[i]);
        ++emitted;

        for (const auto &v : _stencil.deps()) {
            IVec succ = points[i] + v;
            auto it = index.find(succ);
            if (it != index.end() && --pending[it->second] == 0)
                ready.push_back(it->second);
        }
    }
    UOV_CHECK(emitted == points.size(),
              "dependence graph of a lex-positive stencil must be "
              "acyclic; emitted " << emitted << " of " << points.size());
}

} // namespace uov
