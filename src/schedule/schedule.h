/**
 * @file
 * Loop schedules: total execution orders over an iteration-space box.
 *
 * The UOV's defining property is schedule-independence: the storage
 * mapping stays correct under *any* legal schedule.  This module
 * provides the schedule family the claim is tested against --
 * lexicographic orders under loop permutation, unimodular (skewed)
 * transformations, rectangular tiling of a transformed space,
 * wavefronts, and random topological orders of the dependence graph.
 */

#ifndef UOV_SCHEDULE_SCHEDULE_H
#define UOV_SCHEDULE_SCHEDULE_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/stencil.h"
#include "geometry/ivec.h"
#include "geometry/matrix.h"

namespace uov {

/** Visitor for iteration points, called in execution order. */
using IterationVisitor = std::function<void(const IVec &)>;

/** A total execution order over integer boxes. */
class Schedule
{
  public:
    virtual ~Schedule() = default;

    /** Human-readable name for reports. */
    virtual std::string name() const = 0;

    /** Enumerate every point of [lo, hi] exactly once, in order. */
    virtual void forEach(const IVec &lo, const IVec &hi,
                         const IterationVisitor &visit) const = 0;
};

/**
 * Lexicographic order with a loop permutation: perm[k] names the
 * original dimension iterated at nest level k (outermost first).
 * perm = identity is the original program order; a 2-D swap is loop
 * interchange.
 */
class LexSchedule : public Schedule
{
  public:
    explicit LexSchedule(std::vector<size_t> perm);

    /** Original program order for depth d. */
    static LexSchedule identity(size_t d);

    std::string name() const override;
    void forEach(const IVec &lo, const IVec &hi,
                 const IterationVisitor &visit) const override;

    const std::vector<size_t> &perm() const { return _perm; }

  private:
    std::vector<size_t> _perm;
};

/**
 * Unimodular transformation schedule: execute points in lexicographic
 * order of y = T*q.  T unimodular makes this a bijection on Z^d, so
 * every box point appears exactly once (points whose preimage falls
 * outside the box are skipped).  Skewing and reversal-free interchange
 * compose here.
 */
class TransformedSchedule : public Schedule
{
  public:
    explicit TransformedSchedule(IMatrix transform,
                                 std::string label = "");

    std::string name() const override;
    void forEach(const IVec &lo, const IVec &hi,
                 const IterationVisitor &visit) const override;

    const IMatrix &transform() const { return _t; }

  private:
    IMatrix _t;
    IMatrix _t_inv;
    std::string _label;
};

/**
 * Rectangular tiling of a (possibly skewed) iteration space: the
 * transformed space y = T*q is partitioned into tiles of the given
 * sizes; tiles execute in lexicographic order of their index, points
 * within a tile in lexicographic order of y (Section 2's "atomic units
 * of execution").
 */
class TiledSchedule : public Schedule
{
  public:
    TiledSchedule(std::vector<int64_t> tile_sizes, IMatrix transform,
                  std::string label = "");

    /** Untransformed rectangular tiling. */
    static TiledSchedule rectangular(std::vector<int64_t> tile_sizes);

    std::string name() const override;
    void forEach(const IVec &lo, const IVec &hi,
                 const IterationVisitor &visit) const override;

    const IMatrix &transform() const { return _t; }
    const std::vector<int64_t> &tileSizes() const { return _sizes; }

  private:
    std::vector<int64_t> _sizes;
    IMatrix _t;
    IMatrix _t_inv;
    std::string _label;
};

/**
 * Two-level (hierarchical) tiling: inner tiles for one memory level
 * grouped into outer super-tiles for the next (the paper's Section 7
 * future work, citing Carter/Ferrante hierarchical tiling).  Outer
 * tiles execute lexicographically, inner tiles within an outer tile
 * lexicographically, points within an inner tile lexicographically --
 * all in the (optionally skewed) transformed space, legal under the
 * same component-wise non-negativity condition as single-level tiling.
 */
class HierarchicalTiledSchedule : public Schedule
{
  public:
    /**
     * @param inner_sizes inner (e.g. L1) tile edge lengths
     * @param outer_factors outer tile size in units of inner tiles
     * @param transform unimodular skew applied first
     */
    HierarchicalTiledSchedule(std::vector<int64_t> inner_sizes,
                              std::vector<int64_t> outer_factors,
                              IMatrix transform,
                              std::string label = "");

    std::string name() const override;
    void forEach(const IVec &lo, const IVec &hi,
                 const IterationVisitor &visit) const override;

  private:
    std::vector<int64_t> _inner;
    std::vector<int64_t> _outer; ///< in elements (inner * factor)
    IMatrix _t;
    IMatrix _t_inv;
    std::string _label;
};

/**
 * Wavefront schedule: points ordered by h . q, ties broken
 * lexicographically.  Legal iff h . v > 0 for every dependence; models
 * the fine-grained parallel schedules the UOV must survive.
 */
class WavefrontSchedule : public Schedule
{
  public:
    explicit WavefrontSchedule(IVec h);

    std::string name() const override;
    void forEach(const IVec &lo, const IVec &hi,
                 const IterationVisitor &visit) const override;

    const IVec &waveVector() const { return _h; }

  private:
    IVec _h;
};

/**
 * Multi-dimensional affine schedule: points ordered lexicographically
 * by (h_1.q, ..., h_r.q), remaining ties broken by lexicographic
 * point order.  Generalizes WavefrontSchedule (r = 1) and subsumes
 * non-unimodular time mappings like ((2,1).q, (0,1).q).  Legal iff
 * every dependence maps to a lexicographically positive tuple.
 */
class AffineSchedule : public Schedule
{
  public:
    explicit AffineSchedule(std::vector<IVec> rows,
                            std::string label = "");

    std::string name() const override;
    void forEach(const IVec &lo, const IVec &hi,
                 const IterationVisitor &visit) const override;

    const std::vector<IVec> &rows() const { return _rows; }

    /** The schedule tuple of a point. */
    std::vector<int64_t> timeOf(const IVec &q) const;

  private:
    std::vector<IVec> _rows;
    std::string _label;
};

/**
 * Algebraic OV-legality under an AffineSchedule (the r-dimensional
 * generalization of ovLegalForLinearSchedule): ov is safe iff every
 * dependence v != ov satisfies time(v) <lex time(ov).  Conservative
 * about ties, exactly like the 1-D rule.
 * @pre every dependence has lexicographically positive time
 */
bool ovLegalForAffineSchedule(const AffineSchedule &schedule,
                              const IVec &ov, const Stencil &stencil);

/**
 * A uniformly random topological order of the dependence graph: every
 * prefix respects the stencil, nothing else is promised.  The
 * adversarial end of "any legal schedule".
 */
class RandomTopoSchedule : public Schedule
{
  public:
    RandomTopoSchedule(Stencil stencil, uint64_t seed);

    std::string name() const override;
    void forEach(const IVec &lo, const IVec &hi,
                 const IterationVisitor &visit) const override;

  private:
    Stencil _stencil;
    uint64_t _seed;
};

} // namespace uov

#endif // UOV_SCHEDULE_SCHEDULE_H
