/**
 * @file
 * Unit tests for IVec and Rational.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "geometry/ivec.h"
#include "geometry/rational.h"
#include "support/error.h"

namespace uov {
namespace {

TEST(IVec, ConstructionAndAccess)
{
    IVec v{1, -2, 3};
    EXPECT_EQ(v.dim(), 3u);
    EXPECT_EQ(v[0], 1);
    EXPECT_EQ(v[1], -2);
    EXPECT_EQ(v[2], 3);
    EXPECT_THROW(v[3], UovInternalError);

    IVec zero(2);
    EXPECT_TRUE(zero.isZero());
    EXPECT_FALSE(v.isZero());
}

TEST(IVec, Arithmetic)
{
    IVec a{1, 2}, b{3, -1};
    EXPECT_EQ(a + b, (IVec{4, 1}));
    EXPECT_EQ(a - b, (IVec{-2, 3}));
    EXPECT_EQ(-a, (IVec{-1, -2}));
    EXPECT_EQ(a * 3, (IVec{3, 6}));
    IVec c = a;
    c += b;
    EXPECT_EQ(c, (IVec{4, 1}));
    c -= b;
    EXPECT_EQ(c, a);
}

TEST(IVec, DimensionMismatchThrows)
{
    IVec a{1, 2}, b{1, 2, 3};
    EXPECT_THROW(a + b, UovInternalError);
    EXPECT_THROW(a.dot(b), UovInternalError);
}

TEST(IVec, LexPositive)
{
    EXPECT_TRUE((IVec{1, -5}).isLexPositive());
    EXPECT_TRUE((IVec{0, 1}).isLexPositive());
    EXPECT_TRUE((IVec{0, 0, 2}).isLexPositive());
    EXPECT_FALSE((IVec{0, 0}).isLexPositive());
    EXPECT_FALSE((IVec{-1, 100}).isLexPositive());
    EXPECT_FALSE((IVec{0, -1, 5}).isLexPositive());
}

TEST(IVec, Norms)
{
    IVec v{3, -4};
    EXPECT_EQ(v.dot(v), 25);
    EXPECT_EQ(v.normSquared(), 25);
    EXPECT_EQ(v.norm1(), 7);
    EXPECT_EQ(v.normInf(), 4);
}

TEST(IVec, ContentAndPrimality)
{
    EXPECT_EQ((IVec{2, 0}).content(), 2);
    EXPECT_EQ((IVec{6, -9}).content(), 3);
    EXPECT_EQ((IVec{3, 5}).content(), 1);
    EXPECT_TRUE((IVec{3, 5}).isPrime());
    EXPECT_FALSE((IVec{2, 0}).isPrime());
    EXPECT_EQ((IVec{0, 0}).content(), 0);
    EXPECT_EQ((IVec{6, -9}).dividedBy(3), (IVec{2, -3}));
    EXPECT_THROW((IVec{6, -9}).dividedBy(4), UovInternalError);
}

TEST(IVec, HashAndEquality)
{
    std::unordered_set<IVec, IVecHash> set;
    set.insert(IVec{1, 2});
    set.insert(IVec{1, 2});
    set.insert(IVec{2, 1});
    EXPECT_EQ(set.size(), 2u);
    EXPECT_TRUE(set.count(IVec{1, 2}));
    EXPECT_FALSE(set.count(IVec{3, 3}));
}

TEST(IVec, Printing)
{
    EXPECT_EQ((IVec{1, -2}).str(), "(1, -2)");
    EXPECT_EQ(IVec{}.str(), "()");
}

TEST(IVec, OverflowPropagates)
{
    IVec big{INT64_MAX, 0};
    EXPECT_THROW(big + big, UovOverflowError);
    EXPECT_THROW(big * 2, UovOverflowError);
}

TEST(Rational, NormalizationAndSign)
{
    Rational r(6, -4);
    EXPECT_EQ(r.num(), -3);
    EXPECT_EQ(r.den(), 2);
    EXPECT_EQ(Rational(0, 7), Rational(0));
    EXPECT_THROW(Rational(1, 0), UovUserError);
}

TEST(Rational, Arithmetic)
{
    Rational a(1, 2), b(1, 3);
    EXPECT_EQ(a + b, Rational(5, 6));
    EXPECT_EQ(a - b, Rational(1, 6));
    EXPECT_EQ(a * b, Rational(1, 6));
    EXPECT_EQ(a / b, Rational(3, 2));
    EXPECT_EQ(-a, Rational(-1, 2));
    EXPECT_THROW(a / Rational(0), UovUserError);
}

TEST(Rational, Comparisons)
{
    EXPECT_LT(Rational(1, 3), Rational(1, 2));
    EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
    EXPECT_GE(Rational(2), Rational(2));
    EXPECT_GT(Rational(7, 3), Rational(2));
}

TEST(Rational, FloorCeil)
{
    EXPECT_EQ(Rational(7, 2).floor(), 3);
    EXPECT_EQ(Rational(7, 2).ceil(), 4);
    EXPECT_EQ(Rational(-7, 2).floor(), -4);
    EXPECT_EQ(Rational(-7, 2).ceil(), -3);
    EXPECT_EQ(Rational(4).floor(), 4);
    EXPECT_EQ(Rational(4).ceil(), 4);
}

TEST(Rational, CrossReductionAvoidsOverflow)
{
    // (2^40 / 3) * (3 / 2^40) must not overflow intermediates.
    Rational big(1ll << 40, 3);
    Rational inv(3, 1ll << 40);
    EXPECT_EQ(big * inv, Rational(1));
}

TEST(Rational, Printing)
{
    EXPECT_EQ(Rational(3, 6).str(), "1/2");
    EXPECT_EQ(Rational(4).str(), "4");
}

} // namespace
} // namespace uov
