/**
 * @file
 * Prometheus text exposition (format version 0.0.4) rendered from a
 * MetricsSnapshot.
 *
 * Mapping from the repo's metric model:
 *
 *  - names: dots become underscores, every other character outside
 *    [a-zA-Z0-9_:] becomes '_', and a leading digit gains a '_'
 *    prefix -- "service.cache.hits" scrapes as
 *    uov_service_cache_hits_total.  Everything carries the "uov_"
 *    namespace prefix so a shared Prometheus doesn't collide.
 *  - counters gain the conventional "_total" suffix.
 *  - gauges render as-is.
 *  - histograms render the full cumulative _bucket series over the
 *    registry's bit-width buckets (le = 2^b - 1, plus the mandatory
 *    le="+Inf"), _sum, and _count, all taken from one
 *    Histogram::Snapshot so count always equals the +Inf bucket even
 *    under concurrent increments (the scrape-consistency contract --
 *    see support/metrics.h).  Empty histograms still render a
 *    zero-valued +Inf bucket, _sum, and _count.  Because buckets are
 *    coarse, interpolated p50/p99/p999 companion gauges
 *    (<name>_p50 ...) are emitted too -- cheap for dashboards that
 *    would otherwise histogram_quantile over power-of-two buckets.
 *
 * renderPrometheus(registry) is the /metrics endpoint body; the
 * sanitize/escape helpers are exposed for tests and for the flight /
 * SLO JSON emitters that share the name rules.
 */

#ifndef UOV_TELEMETRY_PROMETHEUS_H
#define UOV_TELEMETRY_PROMETHEUS_H

#include <string>

#include "support/metrics.h"

namespace uov {
namespace telemetry {

/** Content-Type for the exposition body. */
inline const char *
prometheusContentType()
{
    return "text/plain; version=0.0.4; charset=utf-8";
}

/**
 * Sanitize @p name into a legal Prometheus metric name
 * ([a-zA-Z_:][a-zA-Z0-9_:]*): dots and other illegal characters map
 * to '_', a leading digit gains a '_' prefix, and an empty name
 * becomes "_".
 */
std::string sanitizeMetricName(const std::string &name);

/** Escape a label value (backslash, double quote, newline). */
std::string escapeLabelValue(const std::string &value);

/** Render one snapshot as the full exposition document. */
std::string renderPrometheus(const MetricsSnapshot &snapshot,
                             const std::string &prefix = "uov_");

/** Snapshot @p registry and render it. */
std::string renderPrometheus(const MetricsRegistry &registry,
                             const std::string &prefix = "uov_");

} // namespace telemetry
} // namespace uov

#endif // UOV_TELEMETRY_PROMETHEUS_H
