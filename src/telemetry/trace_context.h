/**
 * @file
 * Request-scoped trace context: one 64-bit id per request, carried by
 * value and mirrored into a thread-local scope so every layer a
 * request passes through -- executor, service, search, codegen/tune --
 * can stamp the same id into its structured logs, its flight-recorder
 * digest, and its Perfetto span args without threading a parameter
 * through every signature.
 *
 * The propagation contract (DESIGN.md "Telemetry plane"):
 *
 *  - The batch executor mints a fresh TraceContext per request
 *    (newTrace()) and opens a TraceScope for the request's whole
 *    execution on its pool thread.  A request never migrates threads
 *    mid-flight (the pool runs each task to completion, single-flight
 *    owners compute inline), so the thread-local scope is exactly the
 *    request scope.
 *  - Inner layers read currentTrace() / annotations() and *add*
 *    facts (cache hit, store hit, nodes expanded); they never mint
 *    ids.  Outside any scope both are inert: currentTrace() is id 0,
 *    annotation calls are no-ops -- one thread_local load, so the
 *    hooks can live permanently in the serving path.
 *  - Ids are process-unique, nonzero, and have the top bit clear (so
 *    they round-trip through int64 span args).  They are *not* part
 *    of any response line unless the caller opts in (`uovd
 *    --trace-ids`): the admin plane must not perturb byte-identical
 *    responses.
 *
 * installLoggerTraceIds() points the support logger's trace-id hook
 * at the thread-local scope, which links log records to the id
 * (support cannot depend on telemetry, hence the function-pointer
 * inversion).
 */

#ifndef UOV_TELEMETRY_TRACE_CONTEXT_H
#define UOV_TELEMETRY_TRACE_CONTEXT_H

#include <cstdint>
#include <string>

namespace uov {
namespace telemetry {

/** The per-request trace context, passed and captured by value. */
struct TraceContext
{
    uint64_t id = 0; ///< 0 = no context

    bool valid() const { return id != 0; }
};

/** Facts about one request, filled in by the layers it traverses. */
struct RequestAnnotations
{
    uint64_t key_hash = 0; ///< canonical-key hash (0 until known)
    uint64_t nodes = 0;    ///< branch-and-bound nodes expanded
    bool cache_hit = false;
    bool store_hit = false;
    bool coalesced = false; ///< answered by another flight's search
    bool searched = false;  ///< this request ran the solver itself
};

/** Mint a fresh process-unique id (nonzero, top bit clear). */
TraceContext newTrace();

/** The current thread's context ({0} outside any scope). */
TraceContext currentTrace();

/** 16-hex-digit wire form of the current id ("" outside a scope). */
std::string currentTraceHex();

/**
 * Mutable annotations of the innermost active scope on this thread;
 * null outside any scope.  Callers must not retain the pointer past
 * the scope.
 */
RequestAnnotations *annotations();

// Annotation helpers: one thread_local load, no-ops outside a scope.
void noteKeyHash(uint64_t hash);
void noteCacheHit();
void noteStoreHit();
void noteCoalesced();
void noteSearch(uint64_t nodes_expanded);

/**
 * RAII request scope: publishes @p ctx (and a fresh annotation
 * block) as this thread's current context; restores the previous
 * scope on destruction, so nested scopes (a request issuing a
 * sub-request) stack correctly.
 */
class TraceScope
{
  public:
    explicit TraceScope(TraceContext ctx);
    ~TraceScope();

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

    const TraceContext &context() const { return _ctx; }
    const RequestAnnotations &notes() const { return _notes; }
    RequestAnnotations &mutableNotes() { return _notes; }

  private:
    TraceContext _ctx;
    RequestAnnotations _notes;
    TraceScope *_prev;
};

/**
 * Point the support logger's trace-id hook at the thread-local scope
 * so every log line emitted inside a TraceScope carries the id.
 * Idempotent; call once from the driver when the telemetry plane is
 * armed.
 */
void installLoggerTraceIds();

} // namespace telemetry
} // namespace uov

#endif // UOV_TELEMETRY_TRACE_CONTEXT_H
