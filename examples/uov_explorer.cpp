/**
 * @file
 * Interactive UOV explorer: pass a stencil (and optionally ISG
 * bounds) on the command line; get the DONE/DEAD picture, both search
 * objectives, certificates, and the storage mapping.
 *
 *   $ ./uov_explorer 1,-2 1,-1 1,0 1,1 1,2
 *   $ ./uov_explorer --bounds 64x4096 1,0 0,1 1,1
 */

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/done_dead.h"
#include "core/search.h"
#include "core/storage_count.h"
#include "core/uov.h"
#include "mapping/storage_mapping.h"
#include "support/error.h"

using namespace uov;

namespace {

IVec
parseVector(const std::string &arg)
{
    std::vector<int64_t> coords;
    std::stringstream ss(arg);
    std::string tok;
    while (std::getline(ss, tok, ','))
        coords.push_back(std::stoll(tok));
    UOV_REQUIRE(!coords.empty(), "empty vector argument '" << arg << "'");
    return IVec(coords);
}

void
usage(const char *prog)
{
    std::cout
        << "usage: " << prog << " [--bounds NxM] v1 v2 ...\n"
        << "  each vi is a comma-separated dependence vector, e.g. "
           "1,-2\n"
        << "  --bounds NxM enables the known-bounds storage "
           "objective over the box (0,0)..(N,M) (2-D only)\n"
        << "example: " << prog << " 1,-2 1,-1 1,0 1,1 1,2\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<IVec> deps;
    int64_t bound_n = -1, bound_m = -1;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        }
        if (arg == "--bounds") {
            UOV_REQUIRE(i + 1 < argc, "--bounds needs NxM");
            std::string b = argv[++i];
            auto x = b.find('x');
            UOV_REQUIRE(x != std::string::npos, "--bounds needs NxM");
            bound_n = std::stoll(b.substr(0, x));
            bound_m = std::stoll(b.substr(x + 1));
            continue;
        }
        deps.push_back(parseVector(arg));
    }
    if (deps.empty()) {
        usage(argv[0]);
        std::cout << "\nno stencil given; using the paper's 5-point "
                     "stencil.\n\n";
        deps = stencils::fivePoint().deps();
    }

    try {
        Stencil stencil(deps);
        std::cout << "stencil " << stencil.str() << ", dim "
                  << stencil.dim() << "\n\n";

        // DONE/DEAD picture (2-D only).
        if (stencil.dim() == 2) {
            DoneDeadAnalysis dd(stencil);
            IVec q{8, 8};
            std::cout << "DONE ('o') / DEAD ('#') around q = " << q
                      << ":\n";
            for (int64_t x = 2; x <= 9; ++x) {
                std::cout << "  ";
                for (int64_t y = 2; y <= 14; ++y) {
                    IVec p{x, y};
                    char c = '.';
                    if (p == q)
                        c = 'q';
                    else if (dd.isDead(q, p))
                        c = '#';
                    else if (dd.isDone(q, p))
                        c = 'o';
                    std::cout << c << ' ';
                }
                std::cout << "\n";
            }
            std::cout << "\n";
        }

        std::cout << "initial UOV: " << stencil.initialUov() << "\n";

        SearchResult shortest =
            BranchBoundSearch(stencil, SearchObjective::ShortestVector)
                .run();
        std::cout << "shortest UOV: " << shortest.best_uov << "  ("
                  << shortest.stats.str() << ")\n";

        UovOracle oracle(stencil);
        auto cert = oracle.certify(shortest.best_uov);
        if (cert) {
            std::cout << "certificate rows (a_ij, diagonal >= 1):\n";
            for (size_t i = 0; i < cert->rows.size(); ++i) {
                std::cout << "  " << stencil.dep(i) << " : ";
                for (int64_t c : cert->rows[i])
                    std::cout << c << " ";
                std::cout << "\n";
            }
        }

        if (bound_n > 0 && stencil.dim() == 2) {
            Polyhedron isg =
                Polyhedron::box(IVec{0, 0}, IVec{bound_n, bound_m});
            SearchOptions sopts;
            sopts.isg = isg;
            SearchResult storage =
                BranchBoundSearch(stencil,
                                  SearchObjective::BoundedStorage,
                                  sopts)
                    .run();
            std::cout << "\nknown bounds (0,0)..(" << bound_n << ","
                      << bound_m << "):\n";
            std::cout << "  storage-optimal UOV: " << storage.best_uov
                      << " -> " << storage.best_objective
                      << " cells\n";
            std::cout << "  shortest UOV would use "
                      << storageCellCount(shortest.best_uov, isg)
                      << " cells\n";
            StorageMapping sm =
                StorageMapping::create(storage.best_uov, isg);
            std::cout << "  mapping: " << sm.str() << "\n";
        } else if (stencil.dim() == 2) {
            Polyhedron isg =
                Polyhedron::box(IVec{0, 0}, IVec{64, 64});
            StorageMapping sm =
                StorageMapping::create(shortest.best_uov, isg);
            std::cout << "\nmapping over (0,0)..(64,64): " << sm.str()
                      << "\n";
        }
    } catch (const UovError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
