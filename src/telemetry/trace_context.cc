#include "telemetry/trace_context.h"

#include <atomic>
#include <chrono>

#include "support/logging.h"
#include "support/rng.h"

namespace uov {
namespace telemetry {

namespace {

thread_local TraceScope *t_scope = nullptr;

/**
 * Id stream: splitmix64 over a process-unique base.  The base mixes
 * startup time with an address so two daemons started in the same
 * tick still draw disjoint streams; ids never influence responses,
 * so reproducibility is not required -- uniqueness and cheapness are.
 */
uint64_t
nextRawId()
{
    static std::atomic<uint64_t> counter{0};
    static const uint64_t base = [] {
        auto ticks = static_cast<uint64_t>(
            std::chrono::steady_clock::now().time_since_epoch()
                .count());
        return SplitMix64(ticks ^ reinterpret_cast<uintptr_t>(&counter))
            .next();
    }();
    return SplitMix64(base +
                      counter.fetch_add(1, std::memory_order_relaxed))
        .next();
}

uint64_t
currentIdForLogger()
{
    return t_scope != nullptr ? t_scope->context().id : 0;
}

} // namespace

TraceContext
newTrace()
{
    TraceContext ctx;
    do {
        // Top bit clear so the id survives an int64 span arg; 0 is
        // reserved for "no context".
        ctx.id = nextRawId() & ~(uint64_t{1} << 63);
    } while (ctx.id == 0);
    return ctx;
}

TraceContext
currentTrace()
{
    return t_scope != nullptr ? t_scope->context() : TraceContext{};
}

std::string
currentTraceHex()
{
    TraceContext ctx = currentTrace();
    return ctx.valid() ? traceIdHex(ctx.id) : std::string();
}

RequestAnnotations *
annotations()
{
    return t_scope != nullptr ? &t_scope->mutableNotes() : nullptr;
}

void
noteKeyHash(uint64_t hash)
{
    if (RequestAnnotations *a = annotations())
        a->key_hash = hash;
}

void
noteCacheHit()
{
    if (RequestAnnotations *a = annotations())
        a->cache_hit = true;
}

void
noteStoreHit()
{
    if (RequestAnnotations *a = annotations())
        a->store_hit = true;
}

void
noteCoalesced()
{
    if (RequestAnnotations *a = annotations())
        a->coalesced = true;
}

void
noteSearch(uint64_t nodes_expanded)
{
    if (RequestAnnotations *a = annotations()) {
        a->searched = true;
        a->nodes = nodes_expanded;
    }
}

TraceScope::TraceScope(TraceContext ctx) : _ctx(ctx), _prev(t_scope)
{
    t_scope = this;
}

TraceScope::~TraceScope()
{
    t_scope = _prev;
}

void
installLoggerTraceIds()
{
    Logger::instance().setTraceIdProvider(&currentIdForLogger);
}

} // namespace telemetry
} // namespace uov
