/**
 * @file
 * Steady-clock deadlines and cooperative cancellation.
 *
 * A Deadline is a point on the monotonic clock (or "never"); long
 * loops poll expired() and degrade gracefully instead of running
 * unbounded.  A CancelToken is a tiny shared flag for cancelling work
 * from another thread (the service watchdog, tests).  Both are
 * header-only and allocation-free except for the token's shared state.
 */

#ifndef UOV_SUPPORT_DEADLINE_H
#define UOV_SUPPORT_DEADLINE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace uov {

/** A monotonic-clock deadline, possibly unbounded. */
class Deadline
{
  public:
    using Clock = std::chrono::steady_clock;

    /** Default-constructed deadlines never expire. */
    Deadline() = default;

    /** A deadline that never expires. */
    static Deadline
    never()
    {
        return Deadline();
    }

    /**
     * A deadline @p ms milliseconds from now.  Negative values mean
     * unbounded (the CLI's "no deadline" sentinel); zero expires
     * immediately, which is legal and useful -- it forces the anytime
     * paths to return their seed incumbent deterministically.
     */
    static Deadline
    afterMillis(int64_t ms)
    {
        Deadline d;
        if (ms >= 0) {
            d._bounded = true;
            d._at = Clock::now() + std::chrono::milliseconds(ms);
        }
        return d;
    }

    /** A deadline at an explicit clock point. */
    static Deadline
    at(Clock::time_point when)
    {
        Deadline d;
        d._bounded = true;
        d._at = when;
        return d;
    }

    /** Whether this deadline can expire at all. */
    bool
    bounded() const
    {
        return _bounded;
    }

    /** Whether the deadline has passed (never true if unbounded). */
    bool
    expired() const
    {
        return _bounded && Clock::now() >= _at;
    }

    /**
     * Milliseconds until expiry, clamped to >= 0.  Unbounded deadlines
     * report INT64_MAX.
     */
    int64_t
    remainingMillis() const
    {
        if (!_bounded)
            return INT64_MAX;
        auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            _at - Clock::now());
        return left.count() < 0 ? 0 : left.count();
    }

  private:
    bool _bounded = false;
    Clock::time_point _at{};
};

/**
 * Shared cooperative-cancellation flag.  Copies observe the same
 * state; cancellation is sticky.  Default-constructed tokens are
 * never cancelled and allocate nothing.
 */
class CancelToken
{
  public:
    CancelToken() = default;

    /** A token that can actually be cancelled. */
    static CancelToken
    make()
    {
        CancelToken t;
        t._flag = std::make_shared<std::atomic<bool>>(false);
        return t;
    }

    /** Request cancellation; no-op on an inert token. */
    void
    requestCancel() const
    {
        if (_flag)
            _flag->store(true, std::memory_order_relaxed);
    }

    /** Whether cancellation has been requested. */
    bool
    cancelled() const
    {
        return _flag && _flag->load(std::memory_order_relaxed);
    }

  private:
    std::shared_ptr<std::atomic<bool>> _flag;
};

} // namespace uov

#endif // UOV_SUPPORT_DEADLINE_H
