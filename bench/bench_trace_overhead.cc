/**
 * @file
 * Measures the cost of the permanent trace instrumentation
 * (support/trace) in both states:
 *
 *   disabled -- the price every production run pays for leaving
 *               TRACE_SPAN / TRACE_COUNTER in the hot paths (one
 *               relaxed atomic load per site; must be within noise
 *               of the uninstrumented baseline loop), and
 *   enabled  -- the per-event cost of recording into the
 *               thread-local ring buffer.
 *
 * The run fails (exit 1) when the disabled span path exceeds a
 * generous multiple of the baseline loop, so CI catches an
 * accidentally heavyweight disabled path.
 */

#include "bench_common.h"

#include <cstdint>
#include <iomanip>

#include "support/trace.h"

using namespace uov;

namespace {

/** Median ns/iteration of fn over `iters` iterations. */
double
perIterNs(const std::function<void()> &fn, uint64_t iters, int reps)
{
    return bench::measureNs(fn, reps) / static_cast<double>(iters);
}

// The work a span brackets in the comparison loops; volatile so the
// compiler cannot delete the loop around an inert Span.
volatile uint64_t g_sink = 0;

void
body(uint64_t i)
{
    g_sink = g_sink + i;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseArgs(argc, argv);
    bench::banner("trace instrumentation overhead "
                  "(engineering artifact, not a paper figure)");

    const uint64_t iters = opt.quick ? 200'000 : 2'000'000;
    const int reps = opt.quick ? 3 : 7;

    // Baseline: the loop with no instrumentation at all.
    double base_ns = perIterNs(
        [&] {
            for (uint64_t i = 0; i < iters; ++i)
                body(i);
        },
        iters, reps);

    // Disabled tracing: every iteration constructs a TRACE_SPAN and
    // emits a TRACE_COUNTER, both of which must reduce to a relaxed
    // load and a branch.
    trace::Tracer::instance().disable();
    double disabled_ns = perIterNs(
        [&] {
            for (uint64_t i = 0; i < iters; ++i) {
                TRACE_SPAN("bench.overhead");
                TRACE_COUNTER("bench.counter", "i", i);
                body(i);
            }
        },
        iters, reps);

    // Enabled tracing: real events into the ring buffer.  One timed
    // pass over fewer iterations (3 events each), with the ring sized
    // to hold everything so no iteration hits the drop path, and a
    // warm-up event first so the buffer allocation stays outside the
    // timed region.
    const uint64_t enabled_iters = std::min<uint64_t>(iters, 250'000);
    trace::Tracer::instance().clear();
    trace::Tracer::instance().enable(size_t{1} << 20);
    TRACE_COUNTER("bench.warmup", "i", 0);
    double enabled_ns = perIterNs(
        [&] {
            for (uint64_t i = 0; i < enabled_iters; ++i) {
                TRACE_SPAN("bench.overhead");
                TRACE_COUNTER("bench.counter", "i", i);
                body(i);
            }
        },
        enabled_iters, 1);
    uint64_t recorded = trace::Tracer::instance().eventCount();
    uint64_t dropped = trace::Tracer::instance().droppedCount();
    trace::Tracer::instance().disable();
    trace::Tracer::instance().clear();

    Table t("Trace overhead per instrumented iteration");
    t.header({"Variant", "ns/span", "vs baseline"});
    auto ratio = [&](double ns) {
        std::ostringstream oss;
        oss << std::fixed << std::setprecision(2)
            << (base_ns > 0 ? ns / base_ns : 0.0) << "x";
        return oss.str();
    };
    t.addRow().cell("baseline (no macros)").cell(base_ns, 2).cell(
        "1.00x");
    t.addRow().cell("tracing disabled").cell(disabled_ns, 2).cell(
        ratio(disabled_ns));
    t.addRow().cell("tracing enabled").cell(enabled_ns, 2).cell(
        ratio(enabled_ns));
    bench::emit(t, opt);

    std::cout << "enabled pass recorded " << recorded << " events ("
              << dropped << " dropped)\n";

    // Gate: the disabled macros must stay within noise of the bare
    // loop.  The loop body is a single volatile add (~1 ns), so even
    // "within noise" leaves a wide relative band; 4x the baseline
    // plus 2 ns absolute headroom tolerates timer jitter on loaded CI
    // machines while still catching a mutex or allocation sneaking
    // into the disabled path (~20 ns+).
    double limit_ns = base_ns * 4.0 + 2.0;
    bool ok = disabled_ns <= limit_ns;
    std::cout << "disabled-path gate: " << std::fixed
              << std::setprecision(2) << disabled_ns << " ns <= "
              << limit_ns << " ns -> "
              << (ok ? "reproduced" : "FAILED") << "\n";
    return ok ? 0 : 1;
}
