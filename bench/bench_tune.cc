/**
 * @file
 * The joint autotuner on the paper's workloads: score-over-time
 * trajectories (which candidate the tuner believed in, and when) on
 * the 5-point stencil, the 3-D heat equation, and a hard
 * PARTITION-reduction stencil, followed by a plot_benches.py summary
 * of the simulator-predicted win and -- when a host compiler is
 * available -- the JIT-measured speedup of the tuned configuration
 * over the default lexicographic OV-mapped kernel.
 *
 * The anytime contract is asserted on every case: a 0 ms deadline
 * must return a legal Degraded configuration, and the unbounded best
 * must never score worse than the candidate-0 baseline.
 */

#include "bench_common.h"

#include "codegen/jit.h"
#include "core/reduction.h"
#include "support/rng.h"
#include "tune/tune.h"

using namespace uov;

namespace {

struct Case
{
    std::string name;
    Stencil stencil;
    IVec lo;
    IVec hi;
};

/** One best-so-far improvement from TuneOptions::on_candidate. */
struct Improvement
{
    size_t index = 0;
    int64_t elapsed_us = 0;
    double score = 0.0;
    std::string spec;
};

/** A small PARTITION instance's reduction stencil (hard UOV search
 *  geometry, the same family bench_search_anytime sweeps). */
Stencil
partitionStencil()
{
    SplitMix64 rng(19981004);
    PartitionInstance inst;
    for (size_t i = 0; i < 4; ++i)
        inst.values.push_back(
            1 + static_cast<int64_t>(rng.nextInRange(0, 9)));
    int64_t total = 0;
    for (int64_t v : inst.values)
        total += v;
    if (total % 2)
        inst.values.back() += 1;
    return buildReduction(inst).stencil;
}

int64_t
boxPoints(const IVec &lo, const IVec &hi)
{
    int64_t n = 1;
    for (size_t k = 0; k < lo.dim(); ++k)
        n *= hi[k] - lo[k] + 1;
    return n;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseArgs(argc, argv);
    bench::banner("joint autotuning (UOV x schedule x factors) on "
                  "paper workloads");

    std::vector<Case> cases;
    if (opt.quick) {
        cases.push_back({"stencil5", stencils::fivePoint(), IVec{0, 0},
                         IVec{15, 127}});
        cases.push_back({"heat3d", stencils::heat3D(), IVec{0, 0, 0},
                         IVec{3, 7, 7}});
    } else {
        cases.push_back({"stencil5", stencils::fivePoint(), IVec{0, 0},
                         IVec{31, 255}});
        cases.push_back({"heat3d", stencils::heat3D(), IVec{0, 0, 0},
                         IVec{7, 15, 15}});
    }
    {
        Stencil part = partitionStencil();
        std::vector<int64_t> lo(part.dim(), 0), hi(part.dim(), 2);
        hi[0] = opt.quick ? 2 : 3;
        cases.push_back({"partition", part, IVec(std::move(lo)),
                         IVec(std::move(hi))});
    }

    // Diagnostic trajectory: one row per best-so-far improvement.
    // Its header is deliberately not a recognized size header, so
    // plot_benches.py starts at the summary table below.
    Table trajectory("Best-so-far trajectory (one row per improving "
                     "candidate)");
    trajectory.header({"case", "candidate", "elapsed us", "score",
                       "schedule"});

    Table summary("Tuned vs default configuration per workload");
    summary.header({"Problem Size", "candidates", "evaluated",
                    "lex sim cycles", "best sim cycles",
                    "tune ms", "deadline0 evaluated"});

    bool jit = JitCompiler::hostCompilerAvailable();
    Table measured("JIT-measured winner vs default lexicographic "
                   "OV-mapped kernel" +
                   std::string(jit ? "" : " (no host compiler; "
                                          "simulator only)"));
    measured.header({"case", "lex ns", "best ns", "speedup",
                     "winner"});

    bool sound = true;
    for (const Case &c : cases) {
        std::vector<Improvement> improvements;
        double best_so_far = 0.0;
        tune::TuneOptions topt;
        // PARTITION-reduction and 3-D searches can run long; a node
        // budget keeps the embedded UOV searches from eating the
        // whole wall-clock budget before any candidate is scored,
        // and the deadline turns the remainder into a certified
        // best-so-far instead of a hang.
        topt.budget.max_nodes = 20'000;
        topt.budget.deadline =
            Deadline::afterMillis(opt.quick ? 1000 : 2000);
        topt.on_candidate = [&](const tune::TuneCandidate &cand,
                                double score, size_t index,
                                int64_t elapsed_us) {
            if (improvements.empty() || score < best_so_far) {
                best_so_far = score;
                improvements.push_back(
                    {index, elapsed_us, score, cand.str()});
            }
        };

        tune::Tuner tuner(nestFromStencil(c.stencil, c.lo, c.hi,
                                          c.name),
                          topt);
        tune::TuneResult res = tuner.run();

        for (const Improvement &imp : improvements) {
            trajectory.addRow()
                .cell(c.name)
                .cell(static_cast<int64_t>(imp.index))
                .cell(imp.elapsed_us)
                .cell(imp.score, 0)
                .cell(imp.spec);
        }

        // The same case under a zero deadline: the anytime floor.
        tune::TuneOptions zero;
        zero.budget.deadline = Deadline::afterMillis(0);
        tune::Tuner floor_tuner(
            nestFromStencil(c.stencil, c.lo, c.hi, c.name), zero);
        tune::TuneResult floor = floor_tuner.run();

        sound = sound && res.evaluated >= 1 &&
                res.best.schedule.legal(c.stencil) &&
                res.best_score <= tuner.scores()[0] &&
                floor.degraded() && floor.evaluated >= 1 &&
                floor.best.schedule.legal(c.stencil);

        summary.addRow()
            .cell(boxPoints(c.lo, c.hi))
            .cell(static_cast<int64_t>(res.candidates_total))
            .cell(static_cast<int64_t>(res.evaluated))
            .cell(tuner.scores()[0], 0)
            .cell(res.best_score, 0)
            .cell(res.elapsed_us / 1000)
            .cell(static_cast<int64_t>(floor.evaluated));

        // Wall-clock truth for the lowerable workloads.  Tiny boxes
        // (the PARTITION reduction) are skipped: per-call time there
        // is dominated by call overhead, so a "speedup" would be
        // measurement noise, not the kernel.
        if (jit && boxPoints(c.lo, c.hi) >= 256 &&
            res.best.schedule.lower(c.stencil).has_value()) {
            tune::JitEvalOptions jopts;
            jopts.runs = opt.quick ? 3 : 5;
            tune::JitEvaluator jit_eval(jopts);
            LoopNest nest =
                nestFromStencil(c.stencil, c.lo, c.hi, c.name);
            tune::TuneContext ctx(nest, tuner.stencil());
            double lex_ns =
                jit_eval.score(ctx, tuner.candidates()[0]);
            double best_ns = jit_eval.score(ctx, res.best);
            measured.addRow()
                .cell(c.name)
                .cell(lex_ns, 0)
                .cell(best_ns, 0)
                .cell(lex_ns / best_ns)
                .cell(res.best.str());
        }
    }

    bench::emit(trajectory, opt);
    bench::emit(summary, opt);
    if (jit)
        bench::emit(measured, opt);

    // Keep the CSV stream pure tables for the plot script.
    if (!opt.csv)
        std::cout << "anytime contract held on every case: "
                  << (sound ? "yes" : "NO") << "\n";
    return sound ? 0 : 1;
}
