/**
 * @file
 * google-benchmark suite over the kernel variants on the host: the
 * wall-clock complement to the simulated-machine figure benches.  The
 * relative shapes (tiled OV-mapped competitive at large sizes; natural
 * degrading as its footprint explodes) are architecture-robust even
 * though the host is not a 1998 machine.
 */

#include <benchmark/benchmark.h>

#include "kernels/psm.h"
#include "kernels/simple.h"
#include "kernels/stencil5.h"

using namespace uov;

namespace {

void
BM_Stencil5(benchmark::State &state)
{
    auto variant = static_cast<Stencil5Variant>(state.range(0));
    Stencil5Config cfg;
    cfg.length = state.range(1);
    cfg.steps = 8;
    cfg.tile_t = 8;
    cfg.tile_s = 2048;
    for (auto _ : state) {
        VirtualArena arena;
        NativeMem mem;
        benchmark::DoNotOptimize(runStencil5(variant, cfg, mem, arena));
    }
    state.SetItemsProcessed(state.iterations() * cfg.length *
                            cfg.steps);
    state.SetLabel(stencil5VariantName(variant));
}

void
BM_Psm(benchmark::State &state)
{
    auto variant = static_cast<PsmVariant>(state.range(0));
    PsmConfig cfg;
    cfg.n0 = cfg.n1 = state.range(1);
    cfg.tile_i = cfg.tile_j = 128;
    for (auto _ : state) {
        VirtualArena arena;
        NativeMem mem;
        benchmark::DoNotOptimize(runPsm(variant, cfg, mem, arena));
    }
    state.SetItemsProcessed(state.iterations() * cfg.n0 * cfg.n1);
    state.SetLabel(psmVariantName(variant));
}

void
BM_Simple(benchmark::State &state)
{
    auto variant = static_cast<SimpleVariant>(state.range(0));
    int64_t n = state.range(1);
    for (auto _ : state) {
        VirtualArena arena;
        NativeMem mem;
        benchmark::DoNotOptimize(
            runSimple(variant, n, n, mem, arena));
    }
    state.SetItemsProcessed(state.iterations() * n * n);
    state.SetLabel(simpleVariantName(variant));
}

void
registerAll()
{
    for (Stencil5Variant v : allStencil5Variants()) {
        for (int64_t len : {int64_t{4096}, int64_t{1048576}}) {
            benchmark::RegisterBenchmark("BM_Stencil5", BM_Stencil5)
                ->Args({static_cast<int64_t>(v), len})
                ->MinTime(0.05);
        }
    }
    for (PsmVariant v : allPsmVariants()) {
        for (int64_t n : {int64_t{128}, int64_t{1024}}) {
            benchmark::RegisterBenchmark("BM_Psm", BM_Psm)
                ->Args({static_cast<int64_t>(v), n})
                ->MinTime(0.05);
        }
    }
    for (SimpleVariant v :
         {SimpleVariant::Natural, SimpleVariant::OvMapped,
          SimpleVariant::StorageOptimized}) {
        benchmark::RegisterBenchmark("BM_Simple", BM_Simple)
            ->Args({static_cast<int64_t>(v), 512})
            ->MinTime(0.05);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
