/**
 * @file
 * Branch-and-bound search for the best universal occupancy vector
 * (Section 3.2.2, "Algorithm Visit").
 *
 * The search walks backward value dependences from an arbitrary origin
 * q, accumulating per-point PATHSETs (which dependences occur on some
 * path from q).  A point whose PATHSET equals the full stencil is a
 * certified UOV; the best one found so far bounds the region that
 * still needs exploring.  Priorities follow the paper: distance from q
 * when the ISG bounds are unknown, projected storage when they are
 * known.
 */

#ifndef UOV_CORE_SEARCH_H
#define UOV_CORE_SEARCH_H

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "core/cone.h"
#include "core/cone_pruner.h"
#include "core/stencil.h"
#include "geometry/ivec.h"
#include "geometry/polyhedron.h"
#include "support/arena.h"
#include "support/deadline.h"

namespace uov {

/** What "best" means (Section 3.2). */
enum class SearchObjective
{
    /** ISG bounds unknown at compile time: shortest OV (squared norm). */
    ShortestVector,
    /** ISG bounds known: fewest storage cells over the given ISG. */
    BoundedStorage,
};

/**
 * Resource budget for one search run.  The incumbent is seeded with
 * the always-legal ov_o = sum(v_i), so exhausting any budget axis
 * degrades to a certified best-so-far answer rather than failing
 * (the paper: "a compiler could limit the amount of time the
 * algorithm runs and just take the best answer").
 */
struct SearchBudget
{
    /** Wall-clock budget; unbounded by default.  0 ms is legal and
     *  deterministically returns the seed incumbent. */
    Deadline deadline;

    /** Stop after this many point expansions. */
    uint64_t max_nodes = 10'000'000;

    /** Cooperative cancellation from another thread. */
    CancelToken cancel;
};

/** How a search run ended. */
enum class SearchStatus
{
    Optimal,  ///< search space exhausted; the answer is optimal
    Degraded, ///< a budget axis expired; answer is best-so-far
};

/** Tuning and instrumentation knobs. */
struct SearchOptions
{
    /** Required iff objective == BoundedStorage. */
    std::optional<Polyhedron> isg;

    /**
     * Use the paper's priority queue (best candidates first).  With
     * false, a FIFO worklist is used instead -- the ablation baseline.
     */
    bool use_priority_queue = true;

    /**
     * Do not shrink the search radius when a better UOV is found
     * (ablation of the paper's "reset the bound" step, Section
     * 3.2.1): the region stays at the initial |ov_o| ball, so expect
     * more expansions.  Results remain optimal.
     */
    bool disable_bound_shrinking = false;

    /** Node / wall-clock / cancellation limits for this run. */
    SearchBudget budget;

    /**
     * Observer invoked whenever the incumbent improves (and once for
     * the ov_o seed), with the new best vector, its objective, the
     * nodes expanded so far, and elapsed microseconds.  Used by the
     * anytime bench to record incumbent-over-time trajectories.
     */
    std::function<void(const IVec &best, int64_t objective,
                       uint64_t nodes, int64_t elapsed_us)>
        on_incumbent;
};

/** Counters describing one search run. */
struct SearchStats
{
    uint64_t visited = 0;        ///< points expanded
    uint64_t enqueued = 0;       ///< queue pushes
    uint64_t pruned = 0;         ///< expansions skipped by geometry
    uint64_t bound_updates = 0;  ///< times a better UOV shrank the bound
    uint64_t visits_to_best = 0; ///< expansions before the final best
    uint64_t arena_bytes = 0;    ///< arena memory used by the frontier
    int64_t elapsed_us = 0;      ///< wall-clock time inside run()

    std::string str() const;
};

/** Search outcome: the best UOV and how it was found. */
struct SearchResult
{
    IVec best_uov;
    int64_t initial_objective = 0; ///< objective of ov_o
    int64_t best_objective = 0;    ///< objective of best_uov
    SearchStatus status = SearchStatus::Optimal;

    /**
     * Which budget axis expired when status == Degraded:
     * "node-budget", "deadline", or "cancelled".  Empty for Optimal.
     */
    std::string degraded_reason;

    SearchStats stats;

    /** Whether a budget axis expired before the space was exhausted. */
    bool
    degraded() const
    {
        return status == SearchStatus::Degraded;
    }
};

/** Branch-and-bound optimal-UOV search over one stencil. */
class BranchBoundSearch
{
  public:
    BranchBoundSearch(Stencil stencil, SearchObjective objective,
                      SearchOptions options = {});

    /** Run the search; deterministic for fixed inputs. */
    SearchResult run();

    const Stencil &stencil() const { return _stencil; }

    /**
     * The cone memo backing this search's verification pass; created
     * on first use.  Share it with certification / oracle work on the
     * same stencil so cone subproblems are solved once.
     */
    const std::shared_ptr<ConeMemo> &memo();

  private:
    int64_t objectiveOf(const IVec &w) const;

    Stencil _stencil;
    SearchObjective _objective;
    SearchOptions _options;
    ConePruner _pruner;
    std::shared_ptr<ConeMemo> _memo;
    Arena _arena; ///< frontier + point-state storage, reset per run()
};

/**
 * Reference implementation: exhaustively enumerate every integer
 * vector in the bound region and test UOV membership with the exact
 * oracle.  Used to cross-check BranchBoundSearch in tests; exponential
 * in dimension, so small radii only.
 */
SearchResult exhaustiveUovSearch(const Stencil &stencil,
                                 SearchObjective objective,
                                 const SearchOptions &options = {});

} // namespace uov

#endif // UOV_CORE_SEARCH_H
