/**
 * @file
 * Regression tests for the headline experimental shapes, using the
 * umbrella header (which doubles as its compile test).  These pin the
 * qualitative claims of Section 5 at reduced problem sizes so the
 * full bench sweeps cannot silently drift.
 */

#include <gtest/gtest.h>

#include "uov/uov.h"

namespace uov {
namespace {

double
stencilCpi(Stencil5Variant v, int64_t len, const MachineConfig &m)
{
    Stencil5Config cfg;
    cfg.length = len;
    cfg.steps = 8;
    cfg.tile_t = 8;
    cfg.tile_s = m.l1.size_bytes / 8;
    MemorySystem ms(m);
    SimMem mem{&ms};
    VirtualArena arena;
    runStencil5(v, cfg, mem, arena);
    return ms.cycles() / static_cast<double>(len * cfg.steps);
}

TEST(Shapes, InCacheVersionsAreClose)
{
    // Figure 7's claim at regression scale.
    MachineConfig m = MachineConfig::pentiumPro();
    double lo = 1e30, hi = 0;
    for (Stencil5Variant v :
         {Stencil5Variant::StorageOptimized, Stencil5Variant::Natural,
          Stencil5Variant::Ov, Stencil5Variant::OvInterleaved}) {
        double c = stencilCpi(v, 128, m);
        lo = std::min(lo, c);
        hi = std::max(hi, c);
    }
    EXPECT_LT(hi / lo, 2.5);
}

TEST(Shapes, NaturalFallsOutOfMemoryFirst)
{
    // Figures 9-11's claim: with memory scaled down, natural thrashes
    // while OV-tiled and storage-optimized stay flat.
    MachineConfig m = MachineConfig::pentiumPro();
    m.memory_bytes = 2ll << 20;
    int64_t len = 100000; // natural: 36*L bytes = 3.6 MB > 2 MB
    double natural = stencilCpi(Stencil5Variant::Natural, len, m);
    double ov_tiled = stencilCpi(Stencil5Variant::OvTiled, len, m);
    double opt = stencilCpi(Stencil5Variant::StorageOptimized, len, m);
    EXPECT_GT(natural, 3 * ov_tiled);
    EXPECT_GT(natural, 3 * opt);
    EXPECT_LT(ov_tiled, 30.0);
}

TEST(Shapes, TilingHelpsOvPastCache)
{
    // Past L2, untiled OV pays memory latency per row; tiled does not.
    MachineConfig m = MachineConfig::pentiumPro();
    int64_t len = 300000; // 2 rows = 2.4 MB > 256 KiB L2
    double ov = stencilCpi(Stencil5Variant::Ov, len, m);
    double ov_tiled = stencilCpi(Stencil5Variant::OvTiled, len, m);
    EXPECT_GT(ov, 1.3 * ov_tiled);
}

TEST(Shapes, TilingDoesNotRescueNaturalFromThrashing)
{
    // "tiling the natural codes did not help": each natural cell is
    // touched at most twice per tile, so once the footprint exceeds
    // memory, tiled natural thrashes like untiled natural while
    // OV-tiled stays flat.
    MachineConfig m = MachineConfig::pentiumPro();
    m.memory_bytes = 2ll << 20;
    int64_t len = 100000;
    double nat_tiled = stencilCpi(Stencil5Variant::NaturalTiled, len, m);
    double ov_tiled = stencilCpi(Stencil5Variant::OvTiled, len, m);
    EXPECT_GT(nat_tiled, 3 * ov_tiled);
}

TEST(Shapes, PsmNaturalDegradesOvDoesNot)
{
    // Figures 12-14 at regression scale.
    MachineConfig m = MachineConfig::pentiumPro();
    m.memory_bytes = 4ll << 20;
    auto cpi = [&](PsmVariant v, int64_t n) {
        PsmConfig cfg;
        cfg.n0 = cfg.n1 = n;
        cfg.tile_i = cfg.tile_j = 64;
        MemorySystem ms(m);
        SimMem mem{&ms};
        VirtualArena arena;
        runPsm(v, cfg, mem, arena);
        return ms.cycles() / static_cast<double>(n * n);
    };
    int64_t n = 1000; // natural D+E: 8 MB > 4 MB memory
    double natural = cpi(PsmVariant::Natural, n);
    double ov = cpi(PsmVariant::Ov, n);
    double ov_tiled = cpi(PsmVariant::OvTiled, n);
    EXPECT_GT(natural, 3 * ov);
    EXPECT_LE(ov_tiled, ov * 1.1);
}

TEST(Shapes, BranchCostCompressesPsmGapOnUltra2)
{
    // The paper's conjecture for Figures 13/14: branch stalls rather
    // than memory dominate PSM on the Ultra2/Alpha, shrinking the
    // relative benefit of better storage.  Compare the storage gap
    // with branches charged vs a branch-free clone of the machine.
    auto gap = [&](MachineConfig m) {
        PsmConfig cfg;
        cfg.n0 = cfg.n1 = 200;
        auto run = [&](PsmVariant v) {
            MemorySystem ms(m);
            SimMem mem{&ms};
            VirtualArena arena;
            runPsm(v, cfg, mem, arena);
            return ms.cycles();
        };
        return run(PsmVariant::Natural) / run(PsmVariant::Ov);
    };
    MachineConfig u2 = MachineConfig::ultra2();
    MachineConfig no_branch = u2;
    no_branch.branch_cycles = 0;
    no_branch.branch_mispredict_rate = 0;
    EXPECT_LT(gap(u2), gap(no_branch));
}

TEST(Shapes, UmbrellaHeaderExposesEverything)
{
    // Touch one symbol from each layer through the single include.
    EXPECT_EQ(stencils::fivePoint().initialUov(), (IVec{5, 0}));
    EXPECT_TRUE(UovOracle(stencils::simpleExample()).isUov(IVec{1, 1}));
    EXPECT_EQ(MachineConfig::alpha21164().name, "Alpha21164-500");
    EXPECT_EQ(parseNestString("nest n\nbounds 0..1\nstatement s\n"
                              "  write A[0]\n  read A[-1]\n")
                  .depth(),
              1u);
}

} // namespace
} // namespace uov
