#include "support/error.h"

namespace uov {
namespace detail {

std::string
checkMessage(const char *file, int line, const char *expr,
             const std::string &msg)
{
    std::ostringstream oss;
    oss << file << ":" << line << ": check `" << expr << "' failed";
    if (!msg.empty())
        oss << ": " << msg;
    return oss.str();
}

} // namespace detail
} // namespace uov
