/**
 * @file
 * Unit tests for the exact integer square root (geometry/isqrt.h),
 * including the near-2^63 range where std::sqrt(double)-derived
 * answers go wrong.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "geometry/isqrt.h"
#include "support/error.h"

namespace uov {
namespace {

TEST(Isqrt64, SmallValues)
{
    EXPECT_EQ(isqrt64(0), 0);
    EXPECT_EQ(isqrt64(1), 1);
    EXPECT_EQ(isqrt64(2), 1);
    EXPECT_EQ(isqrt64(3), 1);
    EXPECT_EQ(isqrt64(4), 2);
    EXPECT_EQ(isqrt64(99), 9);
    EXPECT_EQ(isqrt64(100), 10);
    EXPECT_EQ(isqrt64(101), 10);
}

TEST(Isqrt64, PerfectSquaresAndNeighbors)
{
    // For every r in a mixed sweep: isqrt(r^2) == r, isqrt(r^2 - 1)
    // == r - 1, isqrt(r^2 + 1) == r (the off-by-one boundary).
    for (int64_t r : {2LL, 3LL, 10LL, 1000LL, 65535LL, 65536LL,
                      1LL << 26, (1LL << 31) - 1, 3037000499LL}) {
        int64_t sq = r * r;
        EXPECT_EQ(isqrt64(sq), r) << "r=" << r;
        EXPECT_EQ(isqrt64(sq - 1), r - 1) << "r=" << r;
        if (sq <= INT64_MAX - 1)
            EXPECT_EQ(isqrt64(sq + 1), r) << "r=" << r;
    }
}

TEST(Isqrt64, ExactNearDoublePrecisionLimit)
{
    // Above 2^53 doubles cannot represent every integer, so the naive
    // cast-of-sqrt is off by one in both directions around perfect
    // squares.  These must all be exact.
    constexpr int64_t r = 94906266; // isqrt(2^53) + 1 territory
    EXPECT_EQ(isqrt64(r * r), r);
    EXPECT_EQ(isqrt64(r * r - 1), r - 1);
    EXPECT_EQ(isqrt64(r * r + 1), r);
}

TEST(Isqrt64, Int64MaxAdjacent)
{
    constexpr int64_t kMaxRoot = 3037000499; // floor(sqrt(INT64_MAX))
    EXPECT_EQ(isqrt64(INT64_MAX), kMaxRoot);
    EXPECT_EQ(isqrt64(INT64_MAX - 1), kMaxRoot);
    EXPECT_EQ(isqrt64(kMaxRoot * kMaxRoot), kMaxRoot);
    EXPECT_EQ(isqrt64(kMaxRoot * kMaxRoot - 1), kMaxRoot - 1);
    // (kMaxRoot + 1)^2 would overflow int64, so every n above
    // kMaxRoot^2 has root exactly kMaxRoot.
    EXPECT_EQ(isqrt64(kMaxRoot * kMaxRoot + 1), kMaxRoot);
}

TEST(Isqrt64, MonotoneOverBoundarySweep)
{
    int64_t prev = -1;
    for (int64_t n = 0; n < 5000; ++n) {
        int64_t r = isqrt64(n);
        EXPECT_LE(r * r, n);
        EXPECT_GT((r + 1) * (r + 1), n);
        EXPECT_GE(r, prev);
        prev = r;
    }
}

TEST(Isqrt64, RejectsNegative)
{
    EXPECT_THROW(isqrt64(-1), UovError);
    EXPECT_THROW(isqrt64(INT64_MIN), UovError);
}

} // namespace
} // namespace uov
