#include "support/metrics.h"

#include <bit>
#include <sstream>

#include "support/json.h"

namespace uov {

void
Histogram::observe(uint64_t v)
{
    size_t b = std::bit_width(v); // 0 -> bucket 0, 1 -> 1, 2..3 -> 2...
    if (b >= kBuckets)
        b = kBuckets - 1;
    // Order matters for scrape consistency: the sum and count are
    // added *before* the bucket increment is published with release
    // order.  A snapshot that observes the bucket increment (acquire)
    // is then guaranteed to also observe this observation's
    // contribution to _sum -- the rendered sum can never be missing a
    // rendered observation.  See Histogram::Snapshot.
    _sum.fetch_add(v, std::memory_order_relaxed);
    _count.fetch_add(1, std::memory_order_relaxed);
    _buckets[b].fetch_add(1, std::memory_order_release);
}

Histogram::Snapshot
Histogram::snapshot() const
{
    Snapshot s;
    for (size_t b = 0; b < kBuckets; ++b) {
        s.buckets[b] = _buckets[b].load(std::memory_order_acquire);
        s.count += s.buckets[b];
    }
    // Read after the acquiring bucket loads: every observation whose
    // bucket increment we saw has already contributed to _sum.
    s.sum = _sum.load(std::memory_order_relaxed);
    return s;
}

uint64_t
Histogram::Snapshot::percentile(double q) const
{
    return bucketPercentile(buckets, kBuckets, count, q);
}

uint64_t
Histogram::count() const
{
    return _count.load(std::memory_order_relaxed);
}

uint64_t
Histogram::sum() const
{
    return _sum.load(std::memory_order_relaxed);
}

uint64_t
Histogram::bucketCount(size_t b) const
{
    return b < kBuckets ? _buckets[b].load(std::memory_order_relaxed)
                        : 0;
}

uint64_t
Histogram::quantileUpperBound(double q) const
{
    uint64_t total = count();
    if (total == 0)
        return 0;
    if (q < 0)
        q = 0;
    if (q > 1)
        q = 1;
    uint64_t target = static_cast<uint64_t>(q * static_cast<double>(total));
    if (target == 0)
        target = 1;
    uint64_t seen = 0;
    for (size_t b = 0; b < kBuckets; ++b) {
        seen += bucketCount(b);
        if (seen >= target)
            return b == 0 ? 0 : (uint64_t{1} << b) - 1;
    }
    return ~uint64_t{0};
}

uint64_t
bucketPercentile(const uint64_t *buckets, size_t n, uint64_t count,
                 double q)
{
    if (count == 0)
        return 0;
    if (q < 0)
        q = 0;
    if (q > 1)
        q = 1;
    uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count));
    if (target == 0)
        target = 1;
    uint64_t seen = 0;
    for (size_t b = 0; b < n; ++b) {
        uint64_t in_bucket = buckets[b];
        if (seen + in_bucket < target) {
            seen += in_bucket;
            continue;
        }
        if (b == 0)
            return 0;
        // Bucket b holds values in [2^(b-1), 2^b - 1]; interpolate
        // the rank's position within the bucket toward the upper
        // bound (frac = 1 at the last rank in the bucket).
        uint64_t lower = uint64_t{1} << (b - 1);
        uint64_t upper = (uint64_t{1} << b) - 1;
        double frac = static_cast<double>(target - seen) /
                      static_cast<double>(in_bucket);
        return lower + static_cast<uint64_t>(
                           frac * static_cast<double>(upper - lower));
    }
    // Unreachable when count matches the bucket total (target <=
    // count), but keep the saturating answer for safety.
    return (uint64_t{1} << (n - 1)) - 1;
}

uint64_t
Histogram::percentile(double q) const
{
    return snapshot().percentile(q);
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto &slot = _counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto &slot = _gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto &slot = _histograms[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    MetricsSnapshot s;
    s.counters.reserve(_counters.size());
    for (const auto &[name, c] : _counters)
        s.counters.emplace_back(name, c->value());
    s.gauges.reserve(_gauges.size());
    for (const auto &[name, g] : _gauges)
        s.gauges.emplace_back(name, g->value());
    s.histograms.reserve(_histograms.size());
    for (const auto &[name, h] : _histograms)
        s.histograms.emplace_back(name, h->snapshot());
    return s;
}

Table
MetricsRegistry::table() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    Table t("Service metrics");
    t.header({"Metric", "Type", "Value"});
    for (const auto &[name, c] : _counters)
        t.addRow().cell(name).cell("counter").cell(c->value());
    for (const auto &[name, g] : _gauges)
        t.addRow().cell(name).cell("gauge").cell(g->value());
    for (const auto &[name, h] : _histograms) {
        std::ostringstream oss;
        oss << "count=" << h->count() << " sum=" << h->sum()
            << " p50=" << h->percentile(0.5)
            << " p95=" << h->percentile(0.95)
            << " p99=" << h->percentile(0.99);
        t.addRow().cell(name).cell("histogram").cell(oss.str());
    }
    return t;
}

std::string
MetricsRegistry::json() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::ostringstream oss;
    oss << "{\"counters\":{";
    bool first = true;
    for (const auto &[name, c] : _counters) {
        oss << (first ? "" : ",") << "\"" << jsonEscape(name)
            << "\":" << c->value();
        first = false;
    }
    oss << "},\"gauges\":{";
    first = true;
    for (const auto &[name, g] : _gauges) {
        oss << (first ? "" : ",") << "\"" << jsonEscape(name)
            << "\":" << g->value();
        first = false;
    }
    oss << "},\"histograms\":{";
    first = true;
    for (const auto &[name, h] : _histograms) {
        oss << (first ? "" : ",") << "\"" << jsonEscape(name)
            << "\":{\"count\":"
            << h->count() << ",\"sum\":" << h->sum()
            << ",\"p50_le\":" << h->quantileUpperBound(0.5)
            << ",\"p99_le\":" << h->quantileUpperBound(0.99) << "}";
        first = false;
    }
    oss << "}}";
    return oss.str();
}

} // namespace uov
