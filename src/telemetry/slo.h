/**
 * @file
 * Rolling-window SLO tracker: p50/p99/p999 latency and
 * degraded/shed/error ratios over the last W seconds, compared
 * against configurable targets and served as the /slo endpoint.
 *
 * The process-lifetime histograms in support/metrics answer "how has
 * this daemon behaved since it started"; an SLO verdict needs "how is
 * it behaving *now*".  The tracker keeps one slot per second (epoch
 * stamped, lazily reset when the ring laps), each holding outcome
 * counts and a bit-width latency histogram; report() merges the
 * slots whose epoch is still inside the window and reuses the shared
 * bucketPercentile interpolation, so /slo and /metrics quantiles
 * agree on method.
 *
 * record() takes one short mutex hold per request -- the serving path
 * already pays a mutex for the result cache shard, so this is noise;
 * the lock-light design budget is spent on the flight recorder, which
 * records strictly more often under error storms.
 *
 * Time is injected (NowFn, seconds) so tests can march the window
 * deterministically; production uses steady_clock.
 */

#ifndef UOV_TELEMETRY_SLO_H
#define UOV_TELEMETRY_SLO_H

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "support/metrics.h"
#include "telemetry/flight_recorder.h"

namespace uov {
namespace telemetry {

/** Targets; 0 (for latencies) / a negative ratio = not enforced. */
struct SloOptions
{
    int64_t window_s = 60;  ///< rolling window (clamped to [1, 600])
    uint64_t p50_us = 0;    ///< target: p50 latency <= this
    uint64_t p99_us = 0;
    uint64_t p999_us = 0;
    double max_degraded = -1; ///< target: degraded / total <= this
    double max_shed = -1;
    double max_error = -1;
};

class SloTracker
{
  public:
    using NowFn = std::function<int64_t()>; ///< seconds, monotone

    explicit SloTracker(SloOptions options = {}, NowFn now = nullptr);

    /** Record one finished request. */
    void record(FlightDigest::Outcome outcome, uint64_t latency_us);

    struct Report
    {
        int64_t window_s = 0;
        uint64_t total = 0;
        uint64_t degraded = 0; ///< excludes shed
        uint64_t shed = 0;
        uint64_t errors = 0;
        uint64_t p50_us = 0;
        uint64_t p99_us = 0;
        uint64_t p999_us = 0;
        bool ok = true; ///< every enforced target met

        /** The violated-target names ("p99_us", "max_error", ...). */
        std::vector<std::string> violations;
    };

    /** Merge the live window and judge it against the targets. */
    Report report() const;

    /** The /slo JSON document (window, counts, quantiles, verdict). */
    std::string json() const;

    const SloOptions &options() const { return _options; }

  private:
    struct Slot
    {
        int64_t epoch = -1; ///< second this slot currently holds
        uint64_t total = 0;
        uint64_t degraded = 0;
        uint64_t shed = 0;
        uint64_t errors = 0;
        uint64_t buckets[Histogram::kBuckets] = {};
    };

    Slot &slotFor(int64_t sec); ///< _mutex held

    SloOptions _options;
    NowFn _now;
    mutable std::mutex _mutex;
    std::vector<Slot> _slots;
};

} // namespace telemetry
} // namespace uov

#endif // UOV_TELEMETRY_SLO_H
