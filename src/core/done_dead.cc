#include "core/done_dead.h"

#include "support/error.h"

namespace uov {

DoneDeadAnalysis::DoneDeadAnalysis(Stencil stencil)
    : _cone(std::move(stencil))
{
}

DoneDeadAnalysis::DoneDeadAnalysis(std::shared_ptr<ConeMemo> memo)
    : _cone(std::move(memo))
{
}

bool
DoneDeadAnalysis::isDone(const IVec &q, const IVec &p)
{
    // The paper's formula allows all-zero coefficients, so q itself is
    // in DONE(V, q).  This matters for DEAD: when p + v == q the value
    // of p is consumed by q itself (read before write within the
    // iteration), as in Figure 1 where the UOV (1,1) is a stencil
    // vector.
    return _cone.contains(q - p);
}

bool
DoneDeadAnalysis::isDead(const IVec &q, const IVec &p)
{
    for (const auto &v : stencil().deps()) {
        if (!isDone(q, p + v))
            return false;
    }
    return true;
}

template <typename Pred>
std::vector<IVec>
DoneDeadAnalysis::enumerateBox(const IVec &lo, const IVec &hi, Pred pred)
{
    UOV_REQUIRE(lo.dim() == hi.dim() && lo.dim() == stencil().dim(),
                "enumeration box [" << lo.str() << ", " << hi.str()
                                    << "] must match stencil "
                                    << stencil().str() << " dimension "
                                    << stencil().dim());
    std::vector<IVec> out;
    IVec p = lo;
    size_t d = lo.dim();
    for (size_t c = 0; c < d; ++c)
        UOV_REQUIRE(lo[c] <= hi[c],
                    "empty enumeration box [" << lo.str() << ", "
                                              << hi.str()
                                              << "]: lo > hi on axis "
                                              << c);
    for (;;) {
        if (pred(p))
            out.push_back(p);
        size_t c = d;
        while (c-- > 0) {
            if (p[c] < hi[c]) {
                ++p[c];
                break;
            }
            p[c] = lo[c];
            if (c == 0)
                return out;
        }
    }
}

std::vector<IVec>
DoneDeadAnalysis::enumerateDone(const IVec &q, const IVec &lo,
                                const IVec &hi)
{
    return enumerateBox(lo, hi,
                        [&](const IVec &p) { return isDone(q, p); });
}

std::vector<IVec>
DoneDeadAnalysis::enumerateDead(const IVec &q, const IVec &lo,
                                const IVec &hi)
{
    return enumerateBox(lo, hi,
                        [&](const IVec &p) { return isDead(q, p); });
}

} // namespace uov
