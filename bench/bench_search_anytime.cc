/**
 * @file
 * Anytime behaviour of the branch-and-bound UOV search: the incumbent
 * is seeded with the always-legal ov_o = sum(v_i), so a feasible
 * answer exists at node 0 and every budget expiry degrades gracefully
 * to a certified best-so-far vector (the paper: "a compiler could
 * limit the amount of time the algorithm runs and just take the best
 * answer").
 *
 * Hard instances come from the Section 3.1 PARTITION reduction (the
 * NP-completeness construction), whose stencils force real search
 * effort.  n stays <= 8 because the reduction's magic coordinates make
 * |ov_o|^2 overflow int64 beyond that.
 *
 * Output: an incumbent-over-time trajectory table (diagnostic; not
 * plotted) followed by a "Problem Size" summary table in the standard
 * scaling-bench format, so scripts/plot_benches.py picks up
 * time-to-first-feasible vs time-to-optimal directly.
 */

#include "bench_common.h"

#include "core/reduction.h"
#include "core/search.h"
#include "support/rng.h"

using namespace uov;

namespace {

/** One incumbent observation from SearchOptions::on_incumbent. */
struct Observation
{
    int64_t objective = 0;
    uint64_t nodes = 0;
    int64_t elapsed_us = 0;
};

/** Seeded PARTITION instance sized n, parity-fixed to an even sum. */
PartitionInstance
randomInstance(size_t n, SplitMix64 &rng)
{
    PartitionInstance inst;
    for (size_t i = 0; i < n; ++i)
        inst.values.push_back(
            1 + static_cast<int64_t>(rng.nextInRange(0, 9)));
    int64_t total = 0;
    for (int64_t v : inst.values)
        total += v;
    if (total % 2)
        inst.values.back() += 1;
    return inst;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseArgs(argc, argv);
    bench::banner("anytime search (incumbent-over-time on "
                  "PARTITION-reduction stencils)");

    // Diagnostic trajectory table first: its header is deliberately
    // NOT a recognized size header, so plot_benches.py skips it and
    // starts plotting at the summary table below.
    Table trajectory("Incumbent trajectory (one improving row per "
                     "bound update)");
    trajectory.header({"n", "step", "nodes", "elapsed us",
                       "objective"});

    Table summary("Time to first feasible vs time to optimal");
    summary.header({"Problem Size", "first feasible us", "optimal us",
                    "nodes", "nodes/s", "arena KiB", "initial value",
                    "optimal value", "deadline0 value"});

    SplitMix64 rng(19981004);
    size_t max_n = opt.quick ? 5 : 8;
    bool sound = true;
    for (size_t n = 3; n <= max_n; ++n) {
        PartitionInstance inst = randomInstance(n, rng);
        UovMembershipInstance red = buildReduction(inst);

        std::vector<Observation> obs;
        SearchOptions options;
        options.on_incumbent = [&](const IVec &, int64_t objective,
                                   uint64_t nodes,
                                   int64_t elapsed_us) {
            obs.push_back({objective, nodes, elapsed_us});
        };
        BranchBoundSearch search(red.stencil,
                                 SearchObjective::ShortestVector,
                                 options);
        SearchResult result = search.run();

        for (size_t k = 0; k < obs.size(); ++k) {
            trajectory.addRow()
                .cell(int64_t(n))
                .cell(int64_t(k))
                .cell(obs[k].nodes)
                .cell(obs[k].elapsed_us)
                .cell(obs[k].objective);
        }

        // The same instance under a zero wall-clock budget: the
        // degraded answer is the certified ov_o seed, never worse.
        SearchOptions zero;
        zero.budget.deadline = Deadline::afterMillis(0);
        SearchResult degraded =
            BranchBoundSearch(red.stencil,
                              SearchObjective::ShortestVector, zero)
                .run();

        sound = sound && !obs.empty() && obs.front().nodes == 0 &&
                obs.back().objective == result.best_objective &&
                degraded.degraded() &&
                degraded.best_objective == result.initial_objective &&
                result.best_objective <= result.initial_objective;

        int64_t nodes_per_s =
            result.stats.elapsed_us > 0
                ? static_cast<int64_t>(
                      result.stats.visited * 1'000'000 /
                      static_cast<uint64_t>(result.stats.elapsed_us))
                : 0;
        summary.addRow()
            .cell(int64_t(n))
            .cell(obs.empty() ? int64_t(0) : obs.front().elapsed_us)
            .cell(result.stats.elapsed_us)
            .cell(result.stats.visited)
            .cell(nodes_per_s)
            .cell(int64_t(result.stats.arena_bytes / 1024))
            .cell(result.initial_objective)
            .cell(result.best_objective)
            .cell(degraded.best_objective);
    }

    bench::emit(trajectory, opt);
    bench::emit(summary, opt);

    // Keep the CSV stream pure tables: plot_benches.py would read a
    // trailing prose line as a stray row of the summary table.
    if (!opt.csv)
        std::cout << "anytime contract held on every instance: "
                  << (sound ? "yes" : "NO") << "\n";
    return sound ? 0 : 1;
}
