/**
 * @file
 * Unit tests for UOV membership, certificates, and DONE/DEAD sets --
 * including the paper's worked examples (Figures 1, 2, 5).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/done_dead.h"
#include "core/uov.h"
#include "support/error.h"

namespace uov {
namespace {

TEST(UovOracle, Figure1SimpleExample)
{
    // Paper Figure 1(b): (1,1) is a UOV for {(1,0),(0,1),(1,1)}.
    UovOracle oracle(stencils::simpleExample());
    EXPECT_TRUE(oracle.isUov(IVec{1, 1}));
    // Shorter vectors are not.
    EXPECT_FALSE(oracle.isUov(IVec{1, 0}));
    EXPECT_FALSE(oracle.isUov(IVec{0, 1}));
    EXPECT_FALSE(oracle.isUov(IVec{0, 0}));
}

TEST(UovOracle, Figure5FivePointStencil)
{
    // Paper Figure 5: (2,0) is the UOV for the 5-point stencil.
    UovOracle oracle(stencils::fivePoint());
    EXPECT_TRUE(oracle.isUov(IVec{2, 0}));
    // Nothing with time distance 1 can cover all five dependences.
    for (int64_t j = -4; j <= 4; ++j)
        EXPECT_FALSE(oracle.isUov(IVec{1, j})) << j;
    // Other time-2 vectors: (2,1) needs (2,1)-(1,-2)=(1,3) in cone: no.
    EXPECT_FALSE(oracle.isUov(IVec{2, 5}));
    EXPECT_TRUE(oracle.isUov(IVec{2, 1}) ==
                false); // (1,3) unreachable in one step
}

TEST(UovOracle, InitialUovAlwaysLegal)
{
    for (const Stencil &s :
         {stencils::simpleExample(), stencils::threeVector(),
          stencils::fivePoint(), stencils::proteinMatching(),
          stencils::heat3D()}) {
        UovOracle oracle(s);
        EXPECT_TRUE(oracle.isUov(oracle.initialUov())) << s.str();
    }
}

TEST(UovOracle, UovSetClosedUnderAddingGenerators)
{
    // If w is a UOV then w + v is too (the extra v extends each row).
    UovOracle oracle(stencils::simpleExample());
    IVec w{1, 1};
    ASSERT_TRUE(oracle.isUov(w));
    for (const auto &v : oracle.stencil().deps())
        EXPECT_TRUE(oracle.isUov(w + v)) << v.str();
}

TEST(UovOracle, CertificateRowsValidated)
{
    UovOracle oracle(stencils::fivePoint());
    auto cert = oracle.certify(IVec{2, 0});
    ASSERT_TRUE(cert.has_value());
    ASSERT_EQ(cert->rows.size(), 5u);
    const auto &deps = oracle.stencil().deps();
    for (size_t i = 0; i < cert->rows.size(); ++i) {
        EXPECT_GE(cert->rows[i][i], 1) << i;
        IVec sum(2);
        for (size_t j = 0; j < deps.size(); ++j) {
            EXPECT_GE(cert->rows[i][j], 0);
            sum += deps[j] * cert->rows[i][j];
        }
        EXPECT_EQ(sum, (IVec{2, 0}));
    }
}

TEST(UovOracle, CertifyRejectsNonUov)
{
    UovOracle oracle(stencils::simpleExample());
    EXPECT_FALSE(oracle.certify(IVec{1, 0}).has_value());
}

TEST(UovOracle, Heat3DUov)
{
    UovOracle oracle(stencils::heat3D());
    // (2,0,0): subtracting any generator leaves (1,+-1,0)/(1,0,+-1)/
    // (1,0,0), all generators. UOV.
    EXPECT_TRUE(oracle.isUov(IVec{2, 0, 0}));
    EXPECT_FALSE(oracle.isUov(IVec{1, 0, 0}));
    EXPECT_TRUE(oracle.isUov(oracle.initialUov()));
}

TEST(DoneDead, DoneContainsTransitiveProducers)
{
    DoneDeadAnalysis dd(stencils::simpleExample());
    IVec q{5, 5};
    EXPECT_TRUE(dd.isDone(q, IVec{4, 5}));  // one step (1,0)
    EXPECT_TRUE(dd.isDone(q, IVec{4, 4}));  // one step (1,1)
    EXPECT_TRUE(dd.isDone(q, IVec{2, 3}));  // multi-step
    EXPECT_TRUE(dd.isDone(q, q));           // all-zero coefficients
    EXPECT_FALSE(dd.isDone(q, IVec{6, 5})); // future point
    EXPECT_FALSE(dd.isDone(q, IVec{4, 6})); // incomparable
}

TEST(DoneDead, DeadSubsetOfDone)
{
    DoneDeadAnalysis dd(stencils::simpleExample());
    IVec q{5, 5};
    IVec lo{1, 1}, hi{5, 5};
    auto done = dd.enumerateDone(q, lo, hi);
    auto dead = dd.enumerateDead(q, lo, hi);
    EXPECT_FALSE(done.empty());
    EXPECT_FALSE(dead.empty());
    EXPECT_LT(dead.size(), done.size());
    for (const auto &p : dead) {
        EXPECT_TRUE(std::find(done.begin(), done.end(), p) != done.end())
            << p.str();
    }
}

TEST(DoneDead, DeadOffsetsAreExactlyUovs)
{
    // UOV(V) = { q - p : p in DEAD(V, q) } (Section 3.1).
    DoneDeadAnalysis dd(stencils::simpleExample());
    UovOracle oracle(stencils::simpleExample());
    IVec q{6, 6};
    IVec lo{2, 2}, hi{6, 6};
    for (int64_t x = lo[0]; x <= hi[0]; ++x) {
        for (int64_t y = lo[1]; y <= hi[1]; ++y) {
            IVec p{x, y};
            EXPECT_EQ(dd.isDead(q, p), oracle.isUov(q - p))
                << "p=" << p.str();
        }
    }
}

TEST(DoneDead, ShiftInvariance)
{
    // The stencil is uniform, so DONE/DEAD only depend on q - p.
    DoneDeadAnalysis dd(stencils::fivePoint());
    IVec q1{10, 10}, q2{3, -7};
    for (int64_t dt = 0; dt <= 3; ++dt) {
        for (int64_t dj = -4; dj <= 4; ++dj) {
            IVec off{dt, dj};
            EXPECT_EQ(dd.isDone(q1, q1 - off), dd.isDone(q2, q2 - off))
                << off.str();
            EXPECT_EQ(dd.isDead(q1, q1 - off), dd.isDead(q2, q2 - off))
                << off.str();
        }
    }
}

TEST(DoneDead, FivePointDeadRequiresAllConsumersDone)
{
    DoneDeadAnalysis dd(stencils::fivePoint());
    IVec q{4, 0};
    // (2,0) behind q: p = (2,0), all p+v within DONE? p+v = (3,j) for
    // j in {-2..2}; q - (3,j) = (1,-j), all generators. Dead.
    EXPECT_TRUE(dd.isDead(q, IVec{2, 0}));
    // p = (3,0): p+(1,2) = (4,2) which is not done before q=(4,0).
    EXPECT_FALSE(dd.isDead(q, IVec{3, 0}));
}

// Precondition failures must name the offending input, not just the
// rule: a fuzzer (or a user) pasting the message into a report needs
// the vector and the stencil it clashed with.
TEST(UovOracle, DimensionMismatchNamesCandidateAndStencil)
{
    UovOracle oracle(stencils::simpleExample()); // 2-D
    try {
        oracle.isUov(IVec{1, 1, 1});
        FAIL() << "expected UovUserError";
    } catch (const UovUserError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("(1, 1, 1)"), std::string::npos) << msg;
        EXPECT_NE(msg.find(stencils::simpleExample().str()),
                  std::string::npos)
            << msg;
    }
}

TEST(UovOracle, LinearLegalityErrorsNameTheInputs)
{
    Stencil s = stencils::simpleExample();
    // Zero OV: the message names the stencil being scheduled.
    try {
        ovLegalForLinearSchedule(IVec{2, 1}, IVec{0, 0}, s);
        FAIL() << "expected UovUserError";
    } catch (const UovUserError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("zero occupancy vector"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find(s.str()), std::string::npos) << msg;
    }
    // Illegal schedule vector: the message names the first violated
    // dependence, h.(0,1) = -1.
    try {
        ovLegalForLinearSchedule(IVec{1, -1}, IVec{1, 1}, s);
        FAIL() << "expected UovUserError";
    } catch (const UovUserError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("(0, 1)"), std::string::npos) << msg;
    }
}

TEST(DoneDead, EnumerationBoxErrorsNameTheBox)
{
    DoneDeadAnalysis dd(stencils::simpleExample());
    // Dimension mismatch names box and stencil.
    try {
        dd.enumerateDone(IVec{4, 4}, IVec{0, 0, 0}, IVec{2, 2, 2});
        FAIL() << "expected UovUserError";
    } catch (const UovError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("(0, 0, 0)"), std::string::npos) << msg;
    }
    // Inverted bounds name the box corners and the bad axis.
    try {
        dd.enumerateDone(IVec{4, 4}, IVec{0, 3}, IVec{2, 1});
        FAIL() << "expected UovUserError";
    } catch (const UovError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("empty enumeration box"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("(0, 3)"), std::string::npos) << msg;
        EXPECT_NE(msg.find("(2, 1)"), std::string::npos) << msg;
        EXPECT_NE(msg.find("axis 1"), std::string::npos) << msg;
    }
}

} // namespace
} // namespace uov
