/**
 * @file
 * The (nest, plan, schedule) triples pinned by the codegen golden
 * files.  Shared by test_codegen.cc (comparison) and
 * codegen_golden_gen.cc (regeneration via
 * scripts/update_codegen_golden.sh) so the two can never disagree
 * about what a golden case is.
 */

#ifndef UOV_TESTS_CODEGEN_GOLDEN_CASES_H
#define UOV_TESTS_CODEGEN_GOLDEN_CASES_H

#include <string>
#include <vector>

#include "codegen/codegen.h"

namespace uov {
namespace golden {

struct GoldenCase
{
    std::string name; ///< file stem under tests/data/codegen/
    LoopNest nest;
    CodegenOptions options;
};

/** The 3-D heat nest used across the codegen tests. */
inline LoopNest
heatNest3d()
{
    LoopNest nest("heat", IVec{1, 0, 0}, IVec{6, 7, 5});
    Statement s;
    s.name = "H";
    s.write = uniformAccess("H", IVec{0, 0, 0});
    s.reads = {uniformAccess("H", IVec{-1, 0, 0}),
               uniformAccess("H", IVec{-1, 1, 0}),
               uniformAccess("H", IVec{-1, -1, 0}),
               uniformAccess("H", IVec{-1, 0, 1}),
               uniformAccess("H", IVec{-1, 0, -1})};
    nest.addStatement(s);
    return nest;
}

/** The pinned golden triples.  Growing this list is fine; changing an
 *  existing entry means regenerating its golden file. */
inline std::vector<GoldenCase>
goldenCases()
{
    std::vector<GoldenCase> cases;
    {
        CodegenOptions opts;
        opts.function_name = "uov_golden_lex";
        cases.push_back({"lex_ov_stencil5",
                         nests::fivePointStencil(10, 12), opts});
    }
    {
        CodegenOptions opts;
        opts.schedule = GenSchedule::SkewedTiled;
        opts.tile_sizes = {4, 8};
        opts.function_name = "uov_golden_tiled";
        cases.push_back({"tiled_ov_stencil5",
                         nests::fivePointStencil(12, 16), opts});
    }
    {
        CodegenOptions opts;
        opts.schedule = GenSchedule::RegisterTiled;
        opts.function_name = "uov_golden_rtile";
        cases.push_back({"rtile_ov_heat3d", heatNest3d(), opts});
    }
    return cases;
}

} // namespace golden
} // namespace uov

#endif // UOV_TESTS_CODEGEN_GOLDEN_CASES_H
