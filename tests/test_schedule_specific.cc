/**
 * @file
 * Tests for the schedule-specific storage baseline: its OVs really
 * are shorter than the UOV, really work under their schedule, and
 * really break under others -- the paper's storage/flexibility
 * trade-off, quantified.
 */

#include <gtest/gtest.h>

#include "core/search.h"
#include "core/uov.h"
#include "schedule/executor.h"
#include "schedule/schedule_specific.h"

namespace uov {
namespace {

TEST(ScheduleSpecific, NeverWorseThanUov)
{
    for (const Stencil &s :
         {stencils::simpleExample(), stencils::fivePoint(),
          stencils::threeVector()}) {
        SearchResult uov =
            BranchBoundSearch(s, SearchObjective::ShortestVector).run();
        int64_t k = 1 + s.maxAbsCoord();
        IVec h{k, 1};
        ScheduleSpecificResult spec = bestOvForLinearSchedule(h, s);
        EXPECT_LE(spec.objective, uov.best_objective) << s.str();
        EXPECT_TRUE(ovLegalForLinearSchedule(h, spec.ov, s)) << s.str();
    }
}

TEST(ScheduleSpecific, StrictlyBeatsUovOnStorage)
{
    // Under the storage objective, wavefront schedules admit
    // "elongated" OVs like (0,k) whose projection is one row: far
    // fewer cells than the UOV's anti-diagonal -- and not universal.
    Stencil s = stencils::simpleExample();
    Polyhedron isg = Polyhedron::box(IVec{0, 0}, IVec{64, 1024});
    ScheduleSpecificResult spec =
        bestOvForLinearSchedule(IVec{2, 1}, s, isg);
    SearchOptions sopts;
    sopts.isg = isg;
    SearchResult uov =
        BranchBoundSearch(s, SearchObjective::BoundedStorage, sopts)
            .run();
    EXPECT_LT(spec.objective, uov.best_objective);
    EXPECT_FALSE(UovOracle(s).isUov(spec.ov));
}

TEST(ScheduleSpecific, ResultWorksUnderItsScheduleOnly)
{
    // ov = (0,4) is legal for h=(2,1) (every consumer is at most 3
    // wavefronts away) but ties with the (1,1) consumer under
    // h=(3,1), where the lexicographic tie-break runs the overwriter
    // first: a clobber.
    Stencil s = stencils::simpleExample();
    IVec ov{0, 4};
    ASSERT_TRUE(ovLegalForLinearSchedule(IVec{2, 1}, ov, s));
    ASSERT_FALSE(ovLegalForLinearSchedule(IVec{3, 1}, ov, s));

    StencilComputation comp(s);
    IVec lo{0, 0}, hi{8, 8};
    ExecutionResult good = runWithOvStorage(
        comp, WavefrontSchedule(IVec{2, 1}), lo, hi, ov);
    EXPECT_TRUE(good.correct());
    EXPECT_EQ(good.clobbers, 0u);

    ExecutionResult bad = runWithOvStorage(
        comp, WavefrontSchedule(IVec{3, 1}), lo, hi, ov);
    EXPECT_FALSE(bad.correct());

    // While the UOV survives both.
    SearchResult uov =
        BranchBoundSearch(s, SearchObjective::ShortestVector).run();
    for (const IVec &hh : {IVec{2, 1}, IVec{3, 1}}) {
        ExecutionResult r = runWithOvStorage(
            comp, WavefrontSchedule(hh), lo, hi, uov.best_uov);
        EXPECT_TRUE(r.correct()) << hh.str();
    }
}

TEST(ScheduleSpecific, StorageObjectiveOverIsg)
{
    Stencil s = stencils::fivePoint();
    Polyhedron isg = Polyhedron::box(IVec{0, 0}, IVec{32, 256});
    IVec h{3, 1};
    ScheduleSpecificResult spec =
        bestOvForLinearSchedule(h, s, isg);
    SearchOptions sopts;
    sopts.isg = isg;
    SearchResult uov =
        BranchBoundSearch(s, SearchObjective::BoundedStorage, sopts)
            .run();
    EXPECT_LE(spec.objective, uov.best_objective);
    EXPECT_GT(spec.objective, 0);
}

TEST(ScheduleSpecific, RejectsIllegalSchedule)
{
    EXPECT_THROW(bestOvForLinearSchedule(IVec{1, 1}, stencils::fivePoint()),
                 UovUserError);
}

TEST(ScheduleSpecific, SingleDependenceStencil)
{
    // {(1,0)} under h=(1,2): ov=(0,1) should be picked (h.(1,0)=1 <
    // h.(0,1)=2) -- the Figure 1(c) storage-optimized pattern.
    Stencil s({IVec{1, 0}});
    ScheduleSpecificResult spec =
        bestOvForLinearSchedule(IVec{1, 2}, s);
    EXPECT_EQ(spec.objective, 1);
    EXPECT_TRUE(ovLegalForLinearSchedule(IVec{1, 2}, spec.ov, s));
}

} // namespace
} // namespace uov
