/**
 * @file
 * Tests for modular storage mappings: indexing semantics, the
 * universal-safety search (including the negative result that
 * motivates occupancy vectors), schedule-specific moduli, and an
 * empirical clobber check of both.
 */

#include <gtest/gtest.h>

#include <optional>
#include <unordered_map>

#include "mapping/modular_mapping.h"
#include "schedule/schedule.h"
#include "support/error.h"

namespace uov {
namespace {

/**
 * Empirical safety of an arbitrary cell mapping under a schedule:
 * every in-box consumer of p must run before p's cell is rewritten.
 */
template <typename MapFn>
bool
mappingSafeUnder(const Schedule &sched, const IVec &lo, const IVec &hi,
                 const Stencil &stencil, MapFn cell)
{
    std::unordered_map<int64_t, IVec> owner; // cell -> live producer
    bool ok = true;
    auto in_box = [&](const IVec &p) {
        for (size_t c = 0; c < p.dim(); ++c)
            if (p[c] < lo[c] || p[c] > hi[c])
                return false;
        return true;
    };
    sched.forEach(lo, hi, [&](const IVec &q) {
        // Reads first: each read's producer must still own its cell.
        for (const auto &v : stencil.deps()) {
            IVec p = q - v;
            if (!in_box(p))
                continue;
            auto it = owner.find(cell(p));
            if (it == owner.end() || it->second != p)
                ok = false;
        }
        owner[cell(q)] = q;
    });
    return ok;
}

TEST(ModularMappingTest, IndexingAndWraparound)
{
    ModularMapping m(IVec{2, 3}, IVec{0, 0});
    EXPECT_EQ(m.cellCount(), 6);
    EXPECT_EQ(m(IVec{0, 0}), 0);
    EXPECT_EQ(m(IVec{2, 3}), 0);  // wraps both dimensions
    EXPECT_EQ(m(IVec{1, 4}), m(IVec{1, 1}));
    EXPECT_NE(m(IVec{0, 1}), m(IVec{1, 1}));
    EXPECT_FALSE(m.str().empty());
    EXPECT_THROW(ModularMapping(IVec{0, 3}, IVec{0, 0}), UovUserError);
}

TEST(ModularMappingTest, NegativeOriginNormalized)
{
    ModularMapping m(IVec{4}, IVec{-2});
    EXPECT_EQ(m(IVec{-2}), 0);
    EXPECT_EQ(m(IVec{2}), 0);
    EXPECT_EQ(m(IVec{-1}), 1);
}

TEST(ModuliSearch, SingleDependenceAllowsTinyRows)
{
    // Stencil {(1,0)}: a value is dead once the next i-iteration ran,
    // under every legal schedule -- so m = (1, full) is universally
    // safe: one row of cells.
    Stencil s({IVec{1, 0}});
    IVec lo{0, 0}, hi{9, 7};
    ModuliSearchResult r = universallySafeModuli(s, lo, hi);
    EXPECT_EQ(r.moduli, (IVec{1, 8}));
    EXPECT_EQ(r.cells, 8);
    EXPECT_FALSE(r.trivial);
}

TEST(ModuliSearch, SimpleExampleForcesTrivialModuli)
{
    // The motivating negative result: for {(1,0),(0,1),(1,1)} no
    // axis-aligned lattice difference is ever a UOV (its lex-positive
    // form always misses one dependence), so rectangular modular
    // storage cannot reuse ANY cell universally.  Occupancy vectors
    // (freely oriented lines) can.
    Stencil s = stencils::simpleExample();
    IVec lo{0, 0}, hi{7, 7};
    ModuliSearchResult r = universallySafeModuli(s, lo, hi);
    EXPECT_TRUE(r.trivial);
    EXPECT_EQ(r.cells, 64);
}

TEST(ModuliSearch, ScheduleSpecificModuliAreSmall)
{
    // Given a schedule, values die within a bounded number of
    // wavefronts, so small moduli suffice (Lefebvre/Feautrier's
    // setting).
    Stencil s = stencils::simpleExample();
    IVec lo{0, 0}, hi{7, 7};
    IVec h{2, 1};
    ModuliSearchResult spec = scheduleSpecificModuli(h, s, lo, hi);
    ModuliSearchResult univ = universallySafeModuli(s, lo, hi);
    EXPECT_LT(spec.cells, univ.cells);
    EXPECT_FALSE(spec.trivial);

    // And it is empirically safe under that schedule...
    ModularMapping m(spec.moduli, lo);
    EXPECT_TRUE(mappingSafeUnder(
        WavefrontSchedule(h), lo, hi, s,
        [&](const IVec &q) { return m(q); }));
}

TEST(ModuliSearch, ScheduleSpecificModuliBreakElsewhere)
{
    // ...but some other legal schedule clobbers it, unless it is
    // trivial.
    Stencil s = stencils::simpleExample();
    IVec lo{0, 0}, hi{7, 7};
    ModuliSearchResult spec =
        scheduleSpecificModuli(IVec{2, 1}, s, lo, hi);
    ASSERT_FALSE(spec.trivial);
    ModularMapping m(spec.moduli, lo);

    bool broke_somewhere = false;
    for (const IVec &h2 : {IVec{1, 2}, IVec{1, 3}, IVec{3, 1}}) {
        if (!mappingSafeUnder(WavefrontSchedule(h2), lo, hi, s,
                              [&](const IVec &q) { return m(q); }))
            broke_somewhere = true;
    }
    EXPECT_TRUE(broke_somewhere);
}

TEST(ModuliSearch, UniversalModuliSafeEverywhere)
{
    Stencil s({IVec{1, 0}});
    IVec lo{0, 0}, hi{7, 7};
    ModuliSearchResult r = universallySafeModuli(s, lo, hi);
    ModularMapping m(r.moduli, lo);
    for (const IVec &h : {IVec{2, 1}, IVec{1, 2}, IVec{5, 1}}) {
        EXPECT_TRUE(mappingSafeUnder(
            WavefrontSchedule(h), lo, hi, s,
            [&](const IVec &q) { return m(q); }))
            << h.str();
    }
    for (uint64_t seed = 0; seed < 5; ++seed) {
        EXPECT_TRUE(mappingSafeUnder(
            RandomTopoSchedule(s, seed), lo, hi, s,
            [&](const IVec &q) { return m(q); }))
            << seed;
    }
}

TEST(ModuliSearch, GuardsHugeSearches)
{
    Stencil s = stencils::simpleExample();
    EXPECT_THROW(
        universallySafeModuli(s, IVec{0, 0}, IVec{4000, 4000}),
        UovUserError);
}

} // namespace
} // namespace uov
