/**
 * @file
 * Non-negative integer cone membership for a dependence stencil.
 *
 * The fundamental question behind DONE / DEAD / UOV (Section 3.1): is a
 * vector w expressible as w = sum_i a_i * v_i with every a_i a
 * non-negative integer?  This is the problem whose "for each i, with
 * a_ii >= 1" variant the paper proves NP-complete, so the solver is an
 * exact exponential-worst-case memoized search -- fast in practice
 * because real stencils are tiny (the paper's own argument, Section 7).
 */

#ifndef UOV_CORE_CONE_H
#define UOV_CORE_CONE_H

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/stencil.h"
#include "geometry/ivec.h"

namespace uov {

/** Exact decision procedure for w in cone_{Z>=0}(V), with memoization. */
class ConeSolver
{
  public:
    /**
     * @param stencil the dependence set V
     * @param max_nodes search-budget safety valve; exceeded only by
     *        adversarial instances, throws UovError
     */
    explicit ConeSolver(Stencil stencil, uint64_t max_nodes = 50'000'000);

    const Stencil &stencil() const { return _stencil; }

    /** Is w a non-negative integer combination of the stencil vectors? */
    bool contains(const IVec &w);

    /**
     * Coefficient certificate: a vector a with w == sum a_i * v_i and
     * all a_i >= 0, or nullopt when w is not in the cone.  Coefficient
     * order matches stencil().deps().
     */
    std::optional<std::vector<int64_t>> certificate(const IVec &w);

    /** Number of memoized subproblems (for search diagnostics). */
    uint64_t memoSize() const { return _memo.size(); }

    /** Total recursion nodes expanded so far. */
    uint64_t nodesExpanded() const { return _nodes; }

  private:
    bool search(const IVec &w, uint32_t depth);

    /** Cheap certain-rejection tests; true means "definitely not". */
    bool prunedOut(const IVec &w) const;

    Stencil _stencil;
    std::optional<IVec> _h;              ///< positive functional, if exact
    std::vector<size_t> _non_neg_coords; ///< coords with all v[c] >= 0
    std::vector<size_t> _non_pos_coords; ///< coords with all v[c] <= 0
    uint64_t _max_nodes;
    uint64_t _nodes = 0;
    std::unordered_map<IVec, bool, IVecHash> _memo;
};

} // namespace uov

#endif // UOV_CORE_CONE_H
