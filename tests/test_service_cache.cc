/**
 * @file
 * Unit tests for the sharded LRU result cache: hit/miss accounting,
 * recency refresh, byte-budget eviction from the cold end, degenerate
 * budgets, shard rounding, metric mirroring, and a concurrent hammer
 * whose counters must reconcile exactly.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "service/result_cache.h"

namespace uov {
namespace service {
namespace {

/** Distinct same-sized keys: {(1,0),(k,1)} for varying k. */
CanonicalKey
keyFor(int64_t k)
{
    return makeKey(Stencil({IVec{1, 0}, IVec{k, 1}}),
                   SearchObjective::ShortestVector, std::nullopt,
                   std::nullopt);
}

ServiceAnswer
answerFor(int64_t k)
{
    ServiceAnswer a;
    a.best_uov = IVec{k, 1};
    a.best_objective = k * k + 1;
    a.initial_objective = 4 * a.best_objective;
    a.canonical_deps = 2;
    a.cert = {{1, 0}, {0, 1}};
    return a;
}

/** The cache's own per-entry accounting, for budget arithmetic. */
size_t
entryBytes(int64_t k)
{
    return keyFor(k).byteSize() + answerFor(k).byteSize() +
           2 * sizeof(void *);
}

TEST(ResultCache, MissThenHitReturnsStoredAnswer)
{
    ResultCache cache(1 << 20, 1);
    EXPECT_FALSE(cache.lookup(keyFor(1)).has_value());
    cache.insert(keyFor(1), answerFor(1));
    auto got = cache.lookup(keyFor(1));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->best_uov, (IVec{1, 1}));
    EXPECT_EQ(got->str(), answerFor(1).str());

    auto st = cache.stats();
    EXPECT_EQ(st.lookups, 2u);
    EXPECT_EQ(st.hits, 1u);
    EXPECT_EQ(st.misses, 1u);
    EXPECT_EQ(st.insertions, 1u);
    EXPECT_EQ(st.entries, 1u);
}

TEST(ResultCache, EvictsFromTheColdEnd)
{
    // Budget for exactly two entries, one shard.
    ResultCache cache(2 * entryBytes(0), 1);
    cache.insert(keyFor(0), answerFor(0));
    cache.insert(keyFor(1), answerFor(1));
    cache.insert(keyFor(2), answerFor(2)); // evicts key 0 (coldest)

    EXPECT_FALSE(cache.lookup(keyFor(0)).has_value());
    EXPECT_TRUE(cache.lookup(keyFor(1)).has_value());
    EXPECT_TRUE(cache.lookup(keyFor(2)).has_value());

    auto st = cache.stats();
    EXPECT_EQ(st.evictions, 1u);
    EXPECT_EQ(st.entries, 2u);
    EXPECT_LE(st.bytes, cache.maxBytes());
}

TEST(ResultCache, LookupRefreshesRecency)
{
    ResultCache cache(2 * entryBytes(0), 1);
    cache.insert(keyFor(0), answerFor(0));
    cache.insert(keyFor(1), answerFor(1));
    // Touch key 0 so key 1 becomes the cold end.
    EXPECT_TRUE(cache.lookup(keyFor(0)).has_value());
    cache.insert(keyFor(2), answerFor(2));

    EXPECT_TRUE(cache.lookup(keyFor(0)).has_value());
    EXPECT_FALSE(cache.lookup(keyFor(1)).has_value());
    EXPECT_TRUE(cache.lookup(keyFor(2)).has_value());
}

TEST(ResultCache, ZeroBudgetStoresNothing)
{
    ResultCache cache(0, 4);
    cache.insert(keyFor(1), answerFor(1));
    EXPECT_FALSE(cache.lookup(keyFor(1)).has_value());
    auto st = cache.stats();
    EXPECT_EQ(st.insertions, 0u);
    EXPECT_EQ(st.entries, 0u);
    EXPECT_EQ(st.bytes, 0u);
}

TEST(ResultCache, OversizedEntryIsNeverCached)
{
    // Budget smaller than one entry: the insert must be dropped, not
    // evict forever.
    ResultCache cache(entryBytes(1) - 1, 1);
    cache.insert(keyFor(1), answerFor(1));
    EXPECT_FALSE(cache.lookup(keyFor(1)).has_value());
    EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCache, DuplicateInsertRefreshesInsteadOfGrowing)
{
    ResultCache cache(1 << 20, 1);
    cache.insert(keyFor(1), answerFor(1));
    size_t bytes = cache.stats().bytes;
    cache.insert(keyFor(1), answerFor(1));
    auto st = cache.stats();
    EXPECT_EQ(st.entries, 1u);
    EXPECT_EQ(st.insertions, 1u);
    EXPECT_EQ(st.bytes, bytes);
}

TEST(ResultCache, ShardCountRoundsToPowerOfTwo)
{
    EXPECT_EQ(ResultCache(1 << 20, 0).shardCount(), 1u);
    EXPECT_EQ(ResultCache(1 << 20, 1).shardCount(), 1u);
    EXPECT_EQ(ResultCache(1 << 20, 5).shardCount(), 8u);
    EXPECT_EQ(ResultCache(1 << 20, 16).shardCount(), 16u);
    EXPECT_EQ(ResultCache(1 << 20, 1000).shardCount(), 256u);
}

TEST(ResultCache, MirrorsCountersIntoRegistry)
{
    MetricsRegistry metrics;
    ResultCache cache(2 * entryBytes(0), 1, &metrics);
    cache.insert(keyFor(0), answerFor(0));
    cache.insert(keyFor(1), answerFor(1));
    cache.insert(keyFor(2), answerFor(2));
    (void)cache.lookup(keyFor(2));
    (void)cache.lookup(keyFor(0)); // miss: evicted

    auto st = cache.stats();
    EXPECT_EQ(metrics.counter("service.cache.hits").value(), st.hits);
    EXPECT_EQ(metrics.counter("service.cache.misses").value(),
              st.misses);
    EXPECT_EQ(metrics.counter("service.cache.evictions").value(),
              st.evictions);
    EXPECT_EQ(static_cast<uint64_t>(
                  metrics.gauge("service.cache.bytes").value()),
              st.bytes);
}

TEST(ResultCache, ConcurrentHammerReconciles)
{
    ResultCache cache(64 * entryBytes(0), 8);
    constexpr int kThreads = 8;
    constexpr int kOpsPerThread = 4000;
    constexpr int64_t kKeys = 32;

    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&cache, t] {
            for (int i = 0; i < kOpsPerThread; ++i) {
                int64_t k = (t * 7 + i) % kKeys;
                if (auto got = cache.lookup(keyFor(k))) {
                    // Stored answers are never torn or mismatched.
                    ASSERT_EQ(got->str(), answerFor(k).str());
                } else {
                    cache.insert(keyFor(k), answerFor(k));
                }
            }
        });
    }
    for (auto &w : workers)
        w.join();

    auto st = cache.stats();
    EXPECT_EQ(st.lookups,
              static_cast<uint64_t>(kThreads) * kOpsPerThread);
    EXPECT_EQ(st.hits + st.misses, st.lookups);
    EXPECT_LE(st.bytes, cache.maxBytes());
    EXPECT_LE(st.entries, static_cast<uint64_t>(kKeys));
}

} // namespace
} // namespace service
} // namespace uov
