/**
 * @file
 * Unit tests for the batch executor: protocol parsing (including every
 * rejection path), request-ordered responses, byte-identity with the
 * single-threaded direct reference at several thread counts, and the
 * cache collapsing duplicate queries to one search per canonical key.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "service/executor.h"

namespace uov {
namespace service {
namespace {

constexpr uint64_t kVisitCap = 2'000;

TEST(Executor, ParsesShortestQuery)
{
    Request r = parseRequestLine(
        "query shortest deps [1,0] [0,1] [1,1]", 3);
    EXPECT_TRUE(r.error.empty()) << r.error;
    EXPECT_EQ(r.index, 3u);
    EXPECT_EQ(r.objective, SearchObjective::ShortestVector);
    ASSERT_EQ(r.deps.size(), 3u);
    EXPECT_EQ(r.deps[0], (IVec{1, 0}));
    EXPECT_FALSE(r.isg_lo.has_value());
}

TEST(Executor, ParsesStorageQueryWithBounds)
{
    Request r = parseRequestLine(
        "query storage bounds 0..17 0..99 deps [1,-1] [1,0] [1,1]", 1);
    EXPECT_TRUE(r.error.empty()) << r.error;
    EXPECT_EQ(r.objective, SearchObjective::BoundedStorage);
    ASSERT_TRUE(r.isg_lo.has_value());
    EXPECT_EQ(*r.isg_lo, (IVec{0, 0}));
    EXPECT_EQ(*r.isg_hi, (IVec{17, 99}));
}

TEST(Executor, RejectsMalformedLines)
{
    struct Case
    {
        const char *line;
        const char *substring;
    };
    const Case cases[] = {
        {"solve shortest deps [1,0]", "expected 'query'"},
        {"query fastest deps [1,0]", "bad objective"},
        {"query shortest", "missing 'deps'"},
        {"query shortest deps", "'deps' needs at least one vector"},
        {"query shortest deps (1,0)", "bad dependence"},
        {"query shortest deps [1,x]", "bad dependence"},
        {"query storage deps [1,0]", "storage query needs 'bounds'"},
        {"query shortest bounds 0..3 deps [1,0]",
         "'bounds' is only valid for storage queries"},
        {"query storage bounds deps [1,0]",
         "'bounds' needs at least one range"},
        {"query storage bounds 0-3 deps [1,0]", "bad range"},
        {"query storage bounds 5..3 deps [1,0]", "empty range"},
        {"query storage bounds 0..9 deps [1,0]",
         "does not match dependence rank"},
    };
    for (const Case &c : cases) {
        Request r = parseRequestLine(c.line, 1);
        EXPECT_NE(r.error.find(c.substring), std::string::npos)
            << "line '" << c.line << "' produced error '" << r.error
            << "'";
    }
}

TEST(Executor, SkipsCommentsAndBlankLines)
{
    std::istringstream in(
        "# corpus of queries\n"
        "\n"
        "query shortest deps [1,0] [0,1]   # trailing comment\n"
        "   \t\n"
        "bogus line\n");
    std::vector<Request> reqs = parseRequests(in);
    ASSERT_EQ(reqs.size(), 2u);
    EXPECT_EQ(reqs[0].index, 1u);
    EXPECT_TRUE(reqs[0].error.empty());
    EXPECT_EQ(reqs[1].index, 2u);
    EXPECT_FALSE(reqs[1].error.empty());
}

std::vector<Request>
mixedBatch()
{
    std::istringstream in(
        "query shortest deps [1,0] [0,1] [1,1]\n"
        "query shortest deps [1,1] [0,1] [1,0]\n" // same, reordered
        "query shortest deps [1,0] [2,0] [3,0]\n" // canonicalizes
        "query shortest deps [1,0] [3,0]\n"       // ...to this one
        "query storage bounds 0..7 0..7 deps [1,-1] [1,0] [1,1]\n"
        "query storage bounds 0..7 0..7 deps [1,1] [1,0] [1,-1]\n"
        "not even close\n"
        "query storage deps [1,0]\n" // storage without bounds
        "query shortest deps [1,0] [0,1] [1,1]\n");
    return parseRequests(in);
}

TEST(Executor, BatchMatchesDirectReferenceAtEveryThreadCount)
{
    std::vector<Request> reqs = mixedBatch();
    std::vector<std::string> direct = runBatchDirect(reqs, kVisitCap);
    ASSERT_EQ(direct.size(), reqs.size());
    // Responses carry the request index in order.
    EXPECT_EQ(direct[6].rfind("error 7 ", 0), 0u) << direct[6];
    EXPECT_EQ(direct[0].rfind("answer 1 ", 0), 0u) << direct[0];

    for (unsigned threads : {1u, 4u}) {
        ServiceOptions opt;
        opt.max_visits = kVisitCap;
        MetricsRegistry metrics;
        QueryService svc(opt, metrics);
        ThreadPool pool(threads);
        std::vector<std::string> got = runBatch(svc, reqs, pool);
        EXPECT_EQ(got, direct) << "threads=" << threads;
    }
}

TEST(Executor, NoCacheStillMatchesDirect)
{
    std::vector<Request> reqs = mixedBatch();
    std::vector<std::string> direct = runBatchDirect(reqs, kVisitCap);
    ServiceOptions opt;
    opt.cache_bytes = 0;
    opt.max_visits = kVisitCap;
    MetricsRegistry metrics;
    QueryService svc(opt, metrics);
    ThreadPool pool(2);
    EXPECT_EQ(runBatch(svc, reqs, pool), direct);
}

TEST(Executor, CacheCollapsesSearchesToDistinctCanonicalKeys)
{
    std::vector<Request> reqs = mixedBatch();
    ServiceOptions opt;
    opt.max_visits = kVisitCap;
    MetricsRegistry metrics;
    QueryService svc(opt, metrics);
    // One worker: no single-flight races, so every duplicate must be
    // a cache hit and the search count equals the distinct canonical
    // keys among the 7 well-formed requests:
    //   {(1,0),(0,1),(1,1)} shortest   (requests 1, 2, 9)
    //   {(1,0),(3,0)}       shortest   (requests 3, 4 -- request 3
    //                                   canonicalizes to request 4)
    //   5-point storage over [0,7]^2   (requests 5, 6)
    ThreadPool pool(1);
    runBatch(svc, reqs, pool);
    EXPECT_EQ(svc.searchesExecuted(), 3u);
    auto st = svc.cacheStats();
    EXPECT_EQ(st.misses, 3u);
    EXPECT_EQ(st.hits, 4u);
    // Every response for the same canonical key after the first is a
    // hit: hits + misses covers exactly the well-formed requests.
    EXPECT_EQ(st.hits + st.misses, 7u);
}

} // namespace
} // namespace service
} // namespace uov
