/**
 * @file
 * Ablation for Section 4's storage-layout choice: interleaved vs
 * blocked OV storage (Figure 5's two options) across cache-resident
 * and cache-busting sizes, on simulated machines and host wall-clock.
 * The paper: "interleaved storage will not have associativity
 * problems, but since the references are not consecutive hardware
 * prefetching may not occur".
 */

#include "bench_common.h"

#include "kernels/stencil5.h"

using namespace uov;

namespace {

double
simCyclesPerIter(Stencil5Variant v, const Stencil5Config &cfg,
                 const MachineConfig &machine)
{
    MemorySystem ms(machine);
    SimMem mem{&ms};
    VirtualArena arena;
    runStencil5(v, cfg, mem, arena);
    return ms.cycles() / (static_cast<double>(cfg.length) *
                          static_cast<double>(cfg.steps));
}

double
nativeNsPerIter(Stencil5Variant v, const Stencil5Config &cfg)
{
    double ns = bench::measureNs([&] {
        VirtualArena arena;
        NativeMem mem;
        volatile double sink = runStencil5(v, cfg, mem, arena);
        (void)sink;
    });
    return ns / (static_cast<double>(cfg.length) *
                 static_cast<double>(cfg.steps));
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseArgs(argc, argv);
    bench::banner("Section 4 ablation (blocked vs interleaved OV "
                  "storage)");

    const Stencil5Variant versions[] = {
        Stencil5Variant::Ov,
        Stencil5Variant::OvInterleaved,
        Stencil5Variant::OvTiled,
        Stencil5Variant::OvInterleavedTiled,
    };

    std::vector<int64_t> lengths = {1024, 65536, 1048576};
    if (opt.quick)
        lengths = {1024, 65536};

    for (const auto &machine : bench::paperMachines()) {
        Table t("Simulated cycles/iteration on " + machine.name);
        std::vector<std::string> header = {"Length"};
        for (Stencil5Variant v : versions)
            header.push_back(stencil5VariantName(v));
        t.header(header);
        for (int64_t len : lengths) {
            Stencil5Config cfg;
            cfg.length = len;
            cfg.steps = 8;
            cfg.tile_t = 8;
            cfg.tile_s = machine.l1.size_bytes / 8;
            auto row = t.addRow();
            row.cell(formatCount(len));
            for (Stencil5Variant v : versions)
                row.cell(simCyclesPerIter(v, cfg, machine), 2);
        }
        bench::emit(t, opt);
    }

    // Section 5's two hardware conjectures, isolated:
    // (a) padding rescues the blocked layout from L2 aliasing on the
    //     direct-mapped Ultra2 (rows a power-of-two apart);
    // (b) a next-line prefetcher narrows the layouts' gap on streams.
    {
        const int64_t len = 1 << 20; // rows 4 MiB apart: alias in 1 MiB L2
        const int64_t steps = 8;
        auto run_padded_ov = [&](const MachineConfig &machine,
                                 int64_t pad) {
            MemorySystem ms(machine);
            SimMem mem{&ms};
            VirtualArena arena;
            // Hand-rolled blocked OV stencil with padded rows.
            SimBuffer<float> a(
                arena, static_cast<size_t>(2 * (len + pad)));
            std::vector<float> input = stencil5Input(len);
            for (int64_t i = 0; i < len; ++i)
                a.data()[i] = input[static_cast<size_t>(i)];
            auto cell = [len, pad](int64_t t, int64_t i) {
                return static_cast<size_t>((t & 1) * (len + pad) + i);
            };
            for (int64_t t = 1; t <= steps; ++t) {
                for (int64_t i = 0; i < len; ++i) {
                    float v;
                    if (i >= 2 && i < len - 2) {
                        v = 0.1f * mem.load(a, cell(t - 1, i - 2)) +
                            0.2f * mem.load(a, cell(t - 1, i - 1)) +
                            0.4f * mem.load(a, cell(t - 1, i)) +
                            0.2f * mem.load(a, cell(t - 1, i + 1)) +
                            0.1f * mem.load(a, cell(t - 1, i + 2));
                        mem.compute(3.0);
                    } else {
                        v = mem.load(a, cell(t - 1, i));
                    }
                    mem.store(a, cell(t, i), v);
                }
            }
            return ms.cycles() / static_cast<double>(len * steps);
        };

        Table p("Padding and prefetch on Ultra2 (blocked OV rows 4 MiB "
                "apart, direct-mapped 1 MiB L2)");
        p.header({"configuration", "cycles/iter"});
        MachineConfig u2 = MachineConfig::ultra2();
        p.addRow().cell("blocked, no pad").cell(run_padded_ov(u2, 0),
                                                2);
        p.addRow()
            .cell("blocked, pad 16 floats (Section 4 padding)")
            .cell(run_padded_ov(u2, 16), 2);
        MachineConfig u2pf = u2;
        u2pf.next_line_prefetch = true;
        p.addRow()
            .cell("blocked, no pad + next-line prefetch")
            .cell(run_padded_ov(u2pf, 0), 2);
        p.addRow()
            .cell("blocked, pad 16 + next-line prefetch")
            .cell(run_padded_ov(u2pf, 16), 2);
        bench::emit(p, opt);
    }

    Table n("Host wall-clock ns/iteration (NativeMem)");
    std::vector<std::string> header = {"Length"};
    for (Stencil5Variant v : versions)
        header.push_back(stencil5VariantName(v));
    n.header(header);
    for (int64_t len : lengths) {
        Stencil5Config cfg;
        cfg.length = len;
        cfg.steps = 8;
        cfg.tile_t = 8;
        cfg.tile_s = 2048;
        auto row = n.addRow();
        row.cell(formatCount(len));
        for (Stencil5Variant v : versions)
            row.cell(nativeNsPerIter(v, cfg), 2);
    }
    bench::emit(n, opt);
    return 0;
}
