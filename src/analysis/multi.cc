#include "analysis/multi.h"

#include <sstream>

#include "core/uov.h"
#include "support/error.h"
#include "support/logging.h"

namespace uov {

namespace {

/** Distance of a read from the write of the same array. */
IVec
flowDistance(const Access &write, const Access &read)
{
    UOV_REQUIRE(write.coef.rows() == write.coef.cols() &&
                    write.coef.isUnimodular(),
                "write of " << write.array
                            << " must be unimodular for constant "
                               "distances");
    UOV_REQUIRE(read.coef == write.coef,
                "read " << read.str() << " does not share "
                        << write.array << "'s linear part");
    return write.coef.inverseUnimodular() *
           (write.offset - read.offset);
}

} // namespace

std::string
ArrayStoragePlan::str() const
{
    std::ostringstream oss;
    oss << array << ": uov " << uov << ", " << mapping.cellCount()
        << " cells, consumers {";
    for (size_t i = 0; i < consumers.size(); ++i) {
        if (i)
            oss << ", ";
        oss << consumers[i];
    }
    oss << "}";
    return oss.str();
}

int64_t
MultiNestPlan::totalCells() const
{
    int64_t total = 0;
    for (const auto &a : arrays)
        total += a.mapping.cellCount();
    return total;
}

std::string
MultiNestPlan::str() const
{
    std::ostringstream oss;
    oss << "schedule cone " << schedule_cone.str() << "\n";
    for (const auto &a : arrays)
        oss << "  " << a.str() << "\n";
    oss << "total cells: " << totalCells();
    return oss.str();
}

std::vector<IVec>
consumerDistances(const LoopNest &nest, const std::string &array)
{
    size_t writer = nest.writerOf(array);
    UOV_REQUIRE(writer != LoopNest::npos,
                "array " << array << " has no writer in " << nest.name());
    const Access &write = nest.statement(writer).write;

    std::vector<IVec> consumers;
    for (size_t si = 0; si < nest.statements().size(); ++si) {
        const Statement &stmt = nest.statement(si);
        for (const auto &read : stmt.reads) {
            if (read.array != array)
                continue;
            IVec d = flowDistance(write, read);
            if (d.isLexPositive()) {
                consumers.push_back(d);
            } else if (d.isZero()) {
                // Same-iteration use: a value-based flow only when the
                // reader runs after the writer within the body.
                if (si > writer)
                    consumers.push_back(d);
                // si <= writer: reads the previous value -- an import,
                // not a consumer of this iteration's value.
            }
            // Lex-negative: import; never consumes in-nest values.
        }
    }
    return consumers;
}

MultiNestPlan
planMultiStatement(const LoopNest &nest, ModLayout layout)
{
    // Schedule cone: every loop-carried flow dependence of any array.
    std::vector<IVec> cone_deps;
    for (size_t si = 0; si < nest.statements().size(); ++si) {
        const std::string &array = nest.statement(si).write.array;
        for (const auto &d : consumerDistances(nest, array))
            if (d.isLexPositive())
                cone_deps.push_back(d);
    }
    UOV_REQUIRE(!cone_deps.empty(),
                "nest " << nest.name()
                        << " carries no flow dependences; storage "
                           "mapping is trivial");
    Stencil cone(std::move(cone_deps));

    MultiNestPlan plan{cone, {}};
    Polyhedron domain = nest.domain();
    for (size_t si = 0; si < nest.statements().size(); ++si) {
        const std::string &array = nest.statement(si).write.array;
        std::vector<IVec> consumers = consumerDistances(nest, array);
        UOV_REQUIRE(!consumers.empty(),
                    "array " << array
                             << " is written but never consumed "
                                "in-nest; exclude it from OV mapping");

        GeneralUovOracle oracle(cone, consumers);
        IVec uov = oracle.searchShortest();
        StorageMapping mapping =
            StorageMapping::create(uov, domain, layout);
        UOV_LOG_INFO("multi-plan " << array << ": uov " << uov << ", "
                                   << mapping.cellCount() << " cells");
        plan.arrays.push_back(ArrayStoragePlan{
            array, si, std::move(consumers), uov, std::move(mapping)});
    }
    return plan;
}

} // namespace uov
