#include "fuzz/shrinker.h"

#include <cstdlib>
#include <sstream>

#include "support/error.h"

namespace uov {
namespace fuzz {

namespace {

/** Does the mutated case still describe a legal input? */
bool
usable(const FuzzCase &c)
{
    return c.valid();
}

/**
 * Propose @p mutated; accept it into @p current when it is legal and
 * still failing.  Returns true on acceptance.
 */
bool
tryAccept(FuzzCase &current, FuzzCase mutated,
          const FailPredicate &fails, ShrinkStats &stats)
{
    ++stats.attempts;
    if (!usable(mutated))
        return false;
    bool still_fails;
    try {
        still_fails = fails(mutated);
    } catch (const UovError &) {
        // An oracle that *throws* on the smaller input is still a
        // failure worth reporting, but a different one; keep the
        // shrink focused on the original discrepancy.
        still_fails = false;
    }
    if (!still_fails)
        return false;
    current = std::move(mutated);
    ++stats.accepted;
    return true;
}

/** Values to try in place of coordinate @p x, in shrink order. */
std::vector<int64_t>
shrinkTargets(int64_t x)
{
    std::vector<int64_t> out;
    if (x == 0)
        return out;
    out.push_back(0);
    if (std::abs(x) > 1)
        out.push_back(x / 2);
    out.push_back(x > 0 ? x - 1 : x + 1);
    return out;
}

} // namespace

FuzzCase
shrinkCase(const FuzzCase &failing, const FailPredicate &fails,
           ShrinkStats *stats_out)
{
    ShrinkStats stats;
    FuzzCase cur = failing;
    if (!usable(cur) || !fails(cur)) {
        if (stats_out)
            *stats_out = stats;
        return cur;
    }

    bool changed = true;
    while (changed) {
        changed = false;
        ++stats.rounds;

        // Pass 1: drop whole dependence vectors.
        for (size_t i = 0; i < cur.deps.size() && cur.deps.size() > 1;) {
            FuzzCase m = cur;
            m.deps.erase(m.deps.begin() +
                         static_cast<ptrdiff_t>(i));
            if (tryAccept(cur, std::move(m), fails, stats))
                changed = true;
            else
                ++i;
        }

        // Pass 2: pull dependence coordinates toward zero.
        for (size_t i = 0; i < cur.deps.size(); ++i) {
            for (size_t k = 0; k < cur.deps[i].dim(); ++k) {
                for (int64_t t : shrinkTargets(cur.deps[i][k])) {
                    FuzzCase m = cur;
                    m.deps[i][k] = t;
                    if (tryAccept(cur, std::move(m), fails, stats)) {
                        changed = true;
                        break;
                    }
                }
            }
        }

        // Pass 3: drop membership candidates.
        for (size_t i = 0;
             i < cur.candidates.size() && cur.candidates.size() > 1;) {
            FuzzCase m = cur;
            m.candidates.erase(m.candidates.begin() +
                               static_cast<ptrdiff_t>(i));
            if (tryAccept(cur, std::move(m), fails, stats))
                changed = true;
            else
                ++i;
        }

        // Pass 4: pull candidate coordinates toward zero.
        for (size_t i = 0; i < cur.candidates.size(); ++i) {
            for (size_t k = 0; k < cur.candidates[i].dim(); ++k) {
                for (int64_t t : shrinkTargets(cur.candidates[i][k])) {
                    FuzzCase m = cur;
                    m.candidates[i][k] = t;
                    if (tryAccept(cur, std::move(m), fails, stats)) {
                        changed = true;
                        break;
                    }
                }
            }
        }

        // Pass 5: collapse the ISG box (halve each side, then pull
        // the low corner toward the origin).
        for (size_t k = 0; k < cur.lo.dim(); ++k) {
            int64_t side = cur.hi[k] - cur.lo[k];
            if (side > 0) {
                FuzzCase m = cur;
                m.hi[k] = m.lo[k] + side / 2;
                if (tryAccept(cur, std::move(m), fails, stats))
                    changed = true;
            }
            for (int64_t t : shrinkTargets(cur.lo[k])) {
                FuzzCase m = cur;
                m.hi[k] += t - m.lo[k];
                m.lo[k] = t;
                if (tryAccept(cur, std::move(m), fails, stats)) {
                    changed = true;
                    break;
                }
            }
        }
    }

    if (stats_out)
        *stats_out = stats;
    return cur;
}

std::string
caseToNestText(const FuzzCase &c)
{
    std::ostringstream oss;
    oss << "nest shrunk" << (c.seed ? std::to_string(c.seed) : "")
        << "\n";
    oss << "bounds";
    for (size_t k = 0; k < c.lo.dim(); ++k)
        oss << " " << c.lo[k] << ".." << c.hi[k];
    oss << "\n";
    oss << "statement A\n";
    auto emit = [&](const IVec &off) {
        oss << "A[";
        for (size_t k = 0; k < off.dim(); ++k)
            oss << (k ? "," : "") << off[k];
        oss << "]";
    };
    oss << "  write ";
    emit(IVec(c.lo.dim()));
    oss << "\n";
    // A read at offset -v carries value-dependence distance v.
    for (const auto &v : c.deps) {
        oss << "  read  ";
        emit(-v);
        oss << "\n";
    }
    return oss.str();
}

std::string
reproString(const FuzzCase &c, const std::string &oracle,
            const std::string &detail)
{
    std::ostringstream oss;
    oss << "# ---- uovfuzz repro ----\n";
    oss << "# oracle: " << oracle << "\n";
    oss << "# discrepancy: " << detail << "\n";
    if (c.seed)
        oss << "# replay exactly: uovfuzz --replay " << c.seed
            << " --oracle " << oracle << "\n";
    oss << "# or save the nest below and run:\n";
    oss << "#   uovfuzz --oracle " << oracle
        << " --corpus-file repro.nest\n";
    for (const auto &w : c.candidates)
        oss << "# candidate " << w.str() << "\n";
    oss << caseToNestText(c);
    oss << "# -----------------------\n";
    return oss.str();
}

} // namespace fuzz
} // namespace uov
