/**
 * @file
 * Reproduces Figures 12-14: protein string matching cycles per
 * iteration over a problem-size sweep (problem size = n0*n1, square
 * strings), five code versions, three simulated testbeds.
 *
 * Expected shapes: the natural version's O(n0*n1) tables fall out of
 * cache (and, at the top of the sweep, out of the scaled memory)
 * first; OV-mapped and storage-optimized versions stay small.  On the
 * branch-heavy machines (Ultra2 / Alpha presets carry higher
 * mispredict costs) the branch term compresses the relative gap --
 * the paper's conjecture for why tiling did not help there.
 */

#include "bench_common.h"

#include "kernels/psm.h"

using namespace uov;

namespace {

double
simCyclesPerIter(PsmVariant v, const PsmConfig &cfg,
                 const MachineConfig &machine)
{
    MemorySystem ms(machine);
    SimMem mem{&ms};
    VirtualArena arena;
    runPsm(v, cfg, mem, arena);
    double iters = static_cast<double>(cfg.n0) *
                   static_cast<double>(cfg.n1);
    return ms.cycles() / iters;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseArgs(argc, argv);
    bench::banner("Figures 12-14 (protein string matching scaling, 3 "
                  "machines)");

    std::vector<int64_t> sides = {32, 100, 316, 1000, 2000};
    if (opt.quick)
        sides = {32, 100, 316};

    auto machines = bench::paperMachines();
    machines[0].memory_bytes = 8ll << 20;
    machines[1].memory_bytes = 16ll << 20;
    machines[2].memory_bytes = 32ll << 20;

    for (const auto &machine : machines) {
        Table t("Figure " +
                std::string(machine.name == "PentiumPro-200" ? "12"
                            : machine.name == "Ultra2-200"   ? "13"
                                                             : "14") +
                ": cycles/iteration on " + machine.name +
                " (problem size = n0*n1)");
        std::vector<std::string> header = {"Problem Size"};
        for (PsmVariant v : allPsmVariants())
            header.push_back(psmVariantName(v));
        t.header(header);

        for (int64_t n : sides) {
            PsmConfig cfg;
            cfg.n0 = cfg.n1 = n;
            // Tile for L1: a tile's D/E working set ~ L1.
            cfg.tile_i = cfg.tile_j = std::max<int64_t>(
                16, machine.l1.size_bytes / (4 * 8));

            auto row = t.addRow();
            row.cell(formatCount(n * n));
            for (PsmVariant v : allPsmVariants())
                row.cell(simCyclesPerIter(v, cfg, machine), 1);
        }
        bench::emit(t, opt);
    }

    // Shape check: at the largest size on the PentiumPro, OV-mapped
    // tiled beats natural (Figure 12's headline).
    {
        const auto &machine = machines[0];
        PsmConfig cfg;
        cfg.n0 = cfg.n1 = sides.back();
        cfg.tile_i = cfg.tile_j =
            std::max<int64_t>(16, machine.l1.size_bytes / 32);
        double natural =
            simCyclesPerIter(PsmVariant::Natural, cfg, machine);
        double ov_tiled =
            simCyclesPerIter(PsmVariant::OvTiled, cfg, machine);
        std::cerr << "shape check @ size="
                  << formatCount(cfg.n0 * cfg.n1) << " on "
                  << machine.name
                  << ": natural=" << formatDouble(natural, 1)
                  << " vs ov_tiled=" << formatDouble(ov_tiled, 1)
                  << " -> "
                  << (ov_tiled < natural ? "reproduced"
                                         : "NOT reproduced")
                  << "\n";
    }
    return 0;
}
