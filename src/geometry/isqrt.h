/**
 * @file
 * Exact integer square root.
 *
 * The search-radius computations (exhaustive ball enumeration, the
 * known-bounds radius) need floor(sqrt(n)) for n up to INT64_MAX.
 * Deriving it from std::sqrt(double) is wrong near 2^53: the rounded
 * double can land below (shaving the ball boundary) or above the true
 * root.  This helper is exact for every representable input.
 */

#ifndef UOV_GEOMETRY_ISQRT_H
#define UOV_GEOMETRY_ISQRT_H

#include <cmath>
#include <cstdint>

#include "support/error.h"

namespace uov {

/** floor(sqrt(n)) computed exactly. @pre n >= 0 */
inline int64_t
isqrt64(int64_t n)
{
    UOV_CHECK(n >= 0, "isqrt64 of negative " << n);
    if (n < 2)
        return n;
    // Double sqrt gives a guess within 1 ulp; correct it with exact
    // integer comparisons.  Guard r*r against overflow: the true root
    // is < 2^32, so clamp the guess before squaring.
    auto r = static_cast<int64_t>(std::sqrt(static_cast<double>(n)));
    constexpr int64_t kMaxRoot = 3037000499; // floor(sqrt(INT64_MAX))
    if (r > kMaxRoot)
        r = kMaxRoot;
    while (r > 0 && r * r > n)
        --r;
    while (r < kMaxRoot && (r + 1) * (r + 1) <= n)
        ++r;
    return r;
}

} // namespace uov

#endif // UOV_GEOMETRY_ISQRT_H
