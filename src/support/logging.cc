#include "support/logging.h"

namespace uov {

Logger &
Logger::instance()
{
    static Logger logger;
    return logger;
}

void
Logger::write(LogLevel lvl, const std::string &msg)
{
    if (_sink)
        *_sink << "[uov:" << logLevelName(lvl) << "] " << msg << "\n";
}

const char *
logLevelName(LogLevel lvl)
{
    switch (lvl) {
      case LogLevel::Error: return "error";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Info:  return "info";
      case LogLevel::Debug: return "debug";
    }
    return "?";
}

} // namespace uov
