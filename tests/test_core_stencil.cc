/**
 * @file
 * Unit tests for Stencil construction, validation and helpers.
 */

#include <gtest/gtest.h>

#include "core/stencil.h"
#include "support/error.h"

namespace uov {
namespace {

TEST(Stencil, ValidConstructionSortsAndDedupes)
{
    Stencil s({IVec{1, 1}, IVec{1, 0}, IVec{1, 1}, IVec{0, 1}});
    EXPECT_EQ(s.size(), 3u);
    EXPECT_EQ(s.dim(), 2u);
    EXPECT_TRUE(s.contains(IVec{1, 1}));
    EXPECT_FALSE(s.contains(IVec{2, 2}));
}

TEST(Stencil, RejectsBadInput)
{
    EXPECT_THROW(Stencil({}), UovUserError);
    EXPECT_THROW(Stencil({IVec{0, 0}}), UovUserError);
    EXPECT_THROW(Stencil({IVec{-1, 2}}), UovUserError);
    EXPECT_THROW(Stencil({IVec{1, 0}, IVec{1, 0, 0}}), UovUserError);
}

TEST(Stencil, RejectsMoreThan32Dependences)
{
    std::vector<IVec> deps;
    for (int64_t i = 1; i <= 33; ++i)
        deps.push_back(IVec{1, i});
    EXPECT_THROW(Stencil(std::move(deps)), UovUserError);
}

TEST(Stencil, InitialUovIsSum)
{
    EXPECT_EQ(stencils::simpleExample().initialUov(), (IVec{2, 2}));
    EXPECT_EQ(stencils::fivePoint().initialUov(), (IVec{5, 0}));
    EXPECT_EQ(stencils::proteinMatching().initialUov(), (IVec{2, 2}));
}

TEST(Stencil, PositiveFunctionalDominates)
{
    for (const Stencil &s :
         {stencils::simpleExample(), stencils::threeVector(),
          stencils::fivePoint(), stencils::heat3D()}) {
        auto h = s.positiveFunctional();
        ASSERT_TRUE(h.has_value()) << s.str();
        for (const auto &v : s.deps())
            EXPECT_GT(h->dot(v), 0) << s.str() << " v=" << v.str();
    }
}

TEST(Stencil, PositiveFunctionalOverflowReturnsNullopt)
{
    // Huge coordinates push M^{d-1} past int64.
    Stencil s({IVec{1, int64_t{1} << 40, 3},
               IVec{1, -(int64_t{1} << 40), 5}});
    EXPECT_FALSE(s.positiveFunctional().has_value());
}

TEST(Stencil, CoordinateSignClassification)
{
    Stencil five = stencils::fivePoint();
    EXPECT_TRUE(five.allNonNegativeInCoord(0));
    EXPECT_FALSE(five.allNonNegativeInCoord(1));
    EXPECT_FALSE(five.allNonPositiveInCoord(1));

    Stencil simple = stencils::simpleExample();
    EXPECT_TRUE(simple.allNonNegativeInCoord(0));
    EXPECT_TRUE(simple.allNonNegativeInCoord(1));
}

TEST(Stencil, MaxAbsCoord)
{
    EXPECT_EQ(stencils::fivePoint().maxAbsCoord(), 2);
    EXPECT_EQ(stencils::simpleExample().maxAbsCoord(), 1);
}

TEST(Stencil, ExtremeVectors2D)
{
    auto [lo, hi] = stencils::fivePoint().extremeVectors2D();
    // Clockwise-most is (1,-2); counter-clockwise-most is (1,2).
    EXPECT_EQ(lo, (IVec{1, -2}));
    EXPECT_EQ(hi, (IVec{1, 2}));

    auto [lo2, hi2] = stencils::simpleExample().extremeVectors2D();
    EXPECT_EQ(lo2, (IVec{1, 0}));
    EXPECT_EQ(hi2, (IVec{0, 1}));

    EXPECT_THROW(stencils::heat3D().extremeVectors2D(), UovUserError);
}

TEST(Stencil, NamedStencilsMatchPaper)
{
    EXPECT_EQ(stencils::simpleExample().size(), 3u);
    EXPECT_EQ(stencils::fivePoint().size(), 5u);
    EXPECT_EQ(stencils::proteinMatching().size(), 3u);
    EXPECT_EQ(stencils::heat3D().dim(), 3u);
    // PSM and the simple example share the same stencil shape.
    EXPECT_EQ(stencils::proteinMatching(), stencils::simpleExample());
}

} // namespace
} // namespace uov
