#include "service/canonical.h"

#include <sstream>

#include "core/cone.h"
#include "support/error.h"

namespace uov {
namespace service {

namespace {

/**
 * Cone-membership budget for canonicalization probes.  Real service
 * stencils resolve in well under this; adversarial instances (the
 * NP-completeness reductions) exhaust it, and the prober then reports
 * "not known to be a member", which keeps the dependence -- always
 * sound, merely less canonical.
 */
constexpr uint64_t kConeBudget = 200'000;

} // namespace

Stencil
canonicalizeStencil(const Stencil &s)
{
    std::vector<IVec> deps = s.deps();
    bool changed = true;
    while (changed && deps.size() >= 2) {
        changed = false;
        for (size_t j = 0; j < deps.size(); ++j) {
            std::vector<IVec> rest;
            rest.reserve(deps.size() - 1);
            for (size_t k = 0; k < deps.size(); ++k)
                if (k != j)
                    rest.push_back(deps[k]);
            const IVec &r = deps[j];
            bool removable = false;
            try {
                ConeSolver cone(Stencil(rest), kConeBudget);
                // (a) the cone survives without r, and (b) some
                // remaining dependence implies r's UOV constraint.
                if (cone.contains(r)) {
                    for (const IVec &vi : rest) {
                        if (cone.contains(vi - r)) {
                            removable = true;
                            break;
                        }
                    }
                }
            } catch (const UovError &) {
                removable = false; // budget/overflow: keep r
            }
            if (removable) {
                deps = std::move(rest);
                changed = true;
                break; // restart the scan on the reduced set
            }
        }
    }
    return Stencil(std::move(deps));
}

bool
CanonicalKey::operator==(const CanonicalKey &o) const
{
    return objective == o.objective && deadline_ms == o.deadline_ms &&
           deps == o.deps && isg_lo == o.isg_lo && isg_hi == o.isg_hi;
}

size_t
CanonicalKey::hash() const
{
    // FNV-1a style mix over the per-vector hashes and the scalars.
    size_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](size_t v) {
        h ^= v;
        h *= 0x100000001b3ULL;
    };
    mix(static_cast<size_t>(objective));
    mix(static_cast<size_t>(deadline_ms));
    for (const auto &v : deps)
        mix(IVecHash{}(v));
    if (isg_lo)
        mix(IVecHash{}(*isg_lo));
    if (isg_hi)
        mix(IVecHash{}(*isg_hi));
    return h;
}

size_t
CanonicalKey::byteSize() const
{
    size_t dim = deps.empty() ? 0 : deps[0].dim();
    size_t bytes = sizeof(CanonicalKey);
    bytes += deps.size() * (sizeof(IVec) + dim * sizeof(int64_t));
    if (isg_lo)
        bytes += 2 * dim * sizeof(int64_t);
    return bytes;
}

std::string
CanonicalKey::str() const
{
    std::ostringstream oss;
    oss << (objective == SearchObjective::ShortestVector ? "shortest"
                                                         : "storage");
    oss << " deps";
    for (const auto &v : deps)
        oss << " " << v;
    if (isg_lo && isg_hi)
        oss << " box " << *isg_lo << ".." << *isg_hi;
    if (deadline_ms >= 0)
        oss << " deadline_ms " << deadline_ms;
    return oss.str();
}

CanonicalKey
makeKey(const Stencil &canonical, SearchObjective objective,
        const std::optional<IVec> &isg_lo,
        const std::optional<IVec> &isg_hi, int64_t deadline_ms)
{
    UOV_REQUIRE(objective != SearchObjective::BoundedStorage ||
                    (isg_lo.has_value() && isg_hi.has_value()),
                "BoundedStorage key requires ISG bounds");
    CanonicalKey key;
    key.deps = canonical.deps();
    key.objective = objective;
    if (objective == SearchObjective::BoundedStorage) {
        key.isg_lo = isg_lo;
        key.isg_hi = isg_hi;
    }
    key.deadline_ms = deadline_ms < 0 ? -1 : deadline_ms;
    return key;
}

} // namespace service
} // namespace uov
