#include "codegen/jit.h"

#include <dlfcn.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "codegen/codegen.h"
#include "support/error.h"
#include "support/logging.h"

namespace uov {

namespace fs = std::filesystem;

namespace {

/** True when @p path names an executable regular file. */
bool
isExecutable(const fs::path &path)
{
    std::error_code ec;
    if (!fs::is_regular_file(path, ec))
        return false;
    return ::access(path.c_str(), X_OK) == 0;
}

/** Resolve @p name against PATH ("" when absent). */
std::string
searchPath(const std::string &name)
{
    if (name.find('/') != std::string::npos)
        return isExecutable(name) ? name : "";
    const char *path = std::getenv("PATH");
    if (path == nullptr)
        return "";
    std::stringstream ss(path);
    std::string dir;
    while (std::getline(ss, dir, ':')) {
        if (dir.empty())
            continue;
        fs::path candidate = fs::path(dir) / name;
        if (isExecutable(candidate))
            return candidate.string();
    }
    return "";
}

/** FNV-1a 64-bit over a byte string. */
uint64_t
fnv1a(uint64_t h, const std::string &bytes)
{
    for (unsigned char b : bytes) {
        h ^= b;
        h *= 0x100000001b3ULL;
    }
    // Separate fields so {"ab","c"} and {"a","bc"} hash apart.
    h ^= 0xff;
    h *= 0x100000001b3ULL;
    return h;
}

/** Read a whole file ("" when unreadable). */
std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

} // namespace

void
jit_detail::runHostCompiler(const std::string &compiler,
                            const std::vector<std::string> &flags,
                            const std::string &c_path,
                            const std::string &so_path)
{
    std::string log_path = so_path + ".log";
    std::ostringstream cmd;
    cmd << "'" << compiler << "'";
    for (const auto &f : flags)
        cmd << " " << f;
    cmd << " -shared -fPIC -o '" << so_path << "' '" << c_path
        << "' 2> '" << log_path << "'";
    int rc = std::system(cmd.str().c_str());
    if (rc != 0) {
        std::string stderr_text = slurp(log_path);
        std::error_code ec;
        fs::remove(so_path, ec);
        throw UovError("JIT compilation failed (rc=" +
                       std::to_string(rc) + "): " + cmd.str() +
                       "\ncompiler stderr:\n" + stderr_text);
    }
    std::error_code ec;
    fs::remove(log_path, ec);
}

JitKernel::~JitKernel()
{
    if (_handle != nullptr)
        ::dlclose(_handle);
}

JitKernel::JitKernel(JitKernel &&other) noexcept
    : _handle(other._handle), _path(std::move(other._path))
{
    other._handle = nullptr;
}

JitKernel &
JitKernel::operator=(JitKernel &&other) noexcept
{
    if (this != &other) {
        if (_handle != nullptr)
            ::dlclose(_handle);
        _handle = other._handle;
        _path = std::move(other._path);
        other._handle = nullptr;
    }
    return *this;
}

void *
JitKernel::sym(const std::string &name) const
{
    UOV_REQUIRE(_handle != nullptr,
                "JitKernel::sym('" << name
                                   << "'): no shared object loaded");
    ::dlerror(); // clear
    void *addr = ::dlsym(_handle, name.c_str());
    if (addr == nullptr) {
        const char *err = ::dlerror();
        throw UovError("dlsym('" + name + "') failed in " + _path +
                       ": " + (err ? err : "symbol is null"));
    }
    return addr;
}

JitCompiler::JitCompiler(JitOptions options)
    : _flags(std::move(options.flags))
{
    // A compiler named explicitly -- via options or $UOV_CC -- that
    // does not resolve is a configuration error surfaced once, here,
    // rather than as a confusing shell failure on every compile().
    // Only the unconfigured probe (cc/gcc/clang on PATH) may quietly
    // come up empty; that is the graceful skip-not-fail path.
    const char *env = std::getenv("UOV_CC");
    if (!options.compiler.empty()) {
        _compiler = searchPath(options.compiler);
        UOV_REQUIRE(!_compiler.empty(),
                    "JIT compiler '" << options.compiler
                        << "' is not an executable on PATH or disk; "
                           "fix the compiler option");
    } else if (env != nullptr && *env != '\0') {
        _compiler = searchPath(env);
        UOV_REQUIRE(!_compiler.empty(),
                    "UOV_CC='" << env
                        << "' is not an executable on PATH or disk; "
                           "fix or unset UOV_CC");
    } else {
        _compiler = findHostCompiler();
    }
    if (options.cache_dir.empty()) {
        _cache_dir = (fs::temp_directory_path() /
                      ("uov-jit-cache-" +
                       std::to_string(static_cast<long>(::getuid()))))
                         .string();
    } else {
        _cache_dir = options.cache_dir;
    }
}

std::string
JitCompiler::findHostCompiler()
{
    // A set-but-broken UOV_CC is respected, not silently skipped:
    // returning "" here makes hostCompilerAvailable() false, so
    // skip-guarded tests skip and JitCompiler construction raises
    // one actionable error instead of falling back behind the
    // user's back.
    if (const char *env = std::getenv("UOV_CC")) {
        if (*env != '\0')
            return searchPath(env);
    }
    for (const char *candidate : {"cc", "gcc", "clang"}) {
        std::string found = searchPath(candidate);
        if (!found.empty())
            return found;
    }
    return "";
}

bool
JitCompiler::hostCompilerAvailable()
{
    return !findHostCompiler().empty();
}

std::string
JitCompiler::cacheKey(const std::string &source) const
{
    uint64_t h = 0xcbf29ce484222325ULL;
    h = fnv1a(h, _compiler);
    for (const auto &f : _flags)
        h = fnv1a(h, f);
    h = fnv1a(h, source);
    std::ostringstream oss;
    oss << std::hex << h;
    return oss.str();
}

std::string
JitCompiler::compile(const std::string &source)
{
    UOV_REQUIRE(available(),
                "no host C compiler found (set UOV_CC or put cc, "
                "gcc, or clang on PATH)");
    fs::create_directories(_cache_dir);

    std::string key = cacheKey(source);
    std::string so_path =
        (fs::path(_cache_dir) / ("uovjit-" + key + ".so")).string();
    std::error_code ec;
    if (fs::exists(so_path, ec)) {
        ++_cache_hits;
        return so_path;
    }

    std::string c_path =
        (fs::path(_cache_dir) / ("uovjit-" + key + ".c")).string();
    {
        std::ofstream f(c_path);
        UOV_REQUIRE(f.good(), "cannot write " << c_path);
        f << source;
    }

    // Compile to a process-unique name, then publish atomically: a
    // concurrent process either misses (and compiles its own copy) or
    // sees a complete .so, never a torn one.
    std::string tmp_path =
        so_path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    ++_compiles;
    jit_detail::runHostCompiler(_compiler, _flags, c_path, tmp_path);
    fs::rename(tmp_path, so_path, ec);
    if (ec) {
        fs::remove(tmp_path, ec);
        UOV_REQUIRE(fs::exists(so_path),
                    "cannot publish " << so_path);
    }
    UOV_LOG_INFO("jit: compiled " << so_path);
    return so_path;
}

JitKernel
JitCompiler::load(const std::string &so_path) const
{
    void *handle = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (handle == nullptr) {
        const char *err = ::dlerror();
        throw UovError("dlopen('" + so_path +
                       "') failed: " + (err ? err : "unknown error"));
    }
    return JitKernel(handle, so_path);
}

JitKernel
JitCompiler::compileAndLoad(const GeneratedCode &code)
{
    return load(compile(code.source));
}

} // namespace uov
