#include "support/failpoint.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include "support/logging.h"
#include "support/rng.h"

namespace uov {
namespace failpoint {

namespace {

/** Safety clamp: an injected delay never exceeds this. */
constexpr int64_t kMaxDelayMs = 100;

} // namespace

Registry &
Registry::instance()
{
    static Registry registry;
    return registry;
}

Registry::Registry()
{
    const char *env = std::getenv("UOV_FAILPOINTS");
    if (env == nullptr || *env == '\0')
        return;
    std::string error;
    if (!armFromSpec(env, &error))
        UOV_LOG_WARN("ignoring malformed UOV_FAILPOINTS entry: "
                     << error);
}

void
Registry::arm(const std::string &site, Config config)
{
    UOV_REQUIRE(!site.empty(), "fail-point site name is empty");
    UOV_REQUIRE(config.probability >= 0.0 && config.probability <= 1.0,
                "fail-point probability " << config.probability
                                          << " outside [0, 1]");
    std::lock_guard<std::mutex> lock(_mutex);
    Point &point = _points[site];
    if (!point.armed)
        _armed_count.fetch_add(1, std::memory_order_relaxed);
    point.armed = true;
    point.config = config;
    point.rng_state = config.seed;
}

void
Registry::disarm(const std::string &site)
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto it = _points.find(site);
    if (it == _points.end() || !it->second.armed)
        return;
    it->second.armed = false;
    _armed_count.fetch_sub(1, std::memory_order_relaxed);
}

void
Registry::clear()
{
    std::lock_guard<std::mutex> lock(_mutex);
    for (auto &entry : _points) {
        if (entry.second.armed)
            _armed_count.fetch_sub(1, std::memory_order_relaxed);
        entry.second.armed = false;
    }
    _points.clear();
    _total_fires.store(0, std::memory_order_relaxed);
}

bool
Registry::armFromSpec(const std::string &spec, std::string *error)
{
    auto fail = [&](const std::string &why) {
        if (error != nullptr)
            *error = why;
        return false;
    };

    size_t pos = 0;
    while (pos < spec.size()) {
        size_t end = spec.find(',', pos);
        if (end == std::string::npos)
            end = spec.size();
        std::string entry = spec.substr(pos, end - pos);
        pos = end + 1;
        if (entry.empty())
            continue;

        // Split on ':' into site, prob, [seed], [action].
        std::vector<std::string> parts;
        size_t p = 0;
        while (p <= entry.size()) {
            size_t colon = entry.find(':', p);
            if (colon == std::string::npos)
                colon = entry.size();
            parts.push_back(entry.substr(p, colon - p));
            p = colon + 1;
        }
        if (parts.size() < 2 || parts.size() > 4)
            return fail("'" + entry +
                        "' is not site:prob[:seed[:action]]");
        if (parts[0].empty())
            return fail("'" + entry + "' has an empty site name");

        Config config;
        try {
            size_t used = 0;
            config.probability = std::stod(parts[1], &used);
            if (used != parts[1].size())
                throw std::invalid_argument(parts[1]);
            if (parts.size() >= 3) {
                config.seed = std::stoull(parts[2], &used);
                if (used != parts[2].size())
                    throw std::invalid_argument(parts[2]);
            }
        } catch (const std::logic_error &) {
            return fail("'" + entry + "' has a non-numeric field");
        }
        if (config.probability < 0.0 || config.probability > 1.0)
            return fail("'" + entry + "' probability outside [0, 1]");

        if (parts.size() == 4) {
            const std::string &act = parts[3];
            if (act == "throw") {
                config.action = Action::Throw;
            } else if (act.rfind("delay", 0) == 0) {
                config.action = Action::Delay;
                std::string ms = act.substr(5);
                if (!ms.empty()) {
                    try {
                        size_t used = 0;
                        config.delay_ms = std::stoll(ms, &used);
                        if (used != ms.size() || config.delay_ms < 0)
                            throw std::invalid_argument(ms);
                    } catch (const std::logic_error &) {
                        return fail("'" + entry +
                                    "' has a bad delay count");
                    }
                }
            } else {
                return fail("'" + entry + "' action must be throw or "
                                          "delayN");
            }
        }
        arm(parts[0], config);
    }
    return true;
}

void
Registry::hit(const std::string &site)
{
    if (_armed_count.load(std::memory_order_relaxed) == 0)
        return;

    Action action;
    int64_t delay_ms = 0;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        auto it = _points.find(site);
        if (it == _points.end() || !it->second.armed)
            return;
        Point &point = it->second;
        SplitMix64 rng(point.rng_state);
        double draw = rng.nextDouble();
        // Persist the advanced stream so successive hits walk one
        // deterministic sequence per site.
        point.rng_state += 0x9e3779b97f4a7c15ULL;
        if (draw >= point.config.probability)
            return;
        ++point.fire_count;
        _total_fires.fetch_add(1, std::memory_order_relaxed);
        action = point.config.action;
        delay_ms = std::min(point.config.delay_ms, kMaxDelayMs);
    }

    if (action == Action::Throw)
        throw FailPointError("fail point '" + site + "' fired");
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
}

uint64_t
Registry::fires(const std::string &site) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto it = _points.find(site);
    return it == _points.end() ? 0 : it->second.fire_count;
}

std::vector<std::string>
Registry::armedSites() const
{
    std::vector<std::string> sites;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        for (const auto &entry : _points)
            if (entry.second.armed)
                sites.push_back(entry.first);
    }
    std::sort(sites.begin(), sites.end());
    return sites;
}

} // namespace failpoint
} // namespace uov
