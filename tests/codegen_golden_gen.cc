/**
 * @file
 * Regenerates the codegen golden files.  Invoked by
 * scripts/update_codegen_golden.sh; writes one <name>.golden.c per
 * entry of codegen_golden_cases.h into the directory given as argv[1].
 */

#include <fstream>
#include <iostream>

#include "codegen_golden_cases.h"

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::cerr << "usage: codegen_golden_gen <output-dir>\n";
        return 2;
    }
    std::string dir = argv[1];
    for (const auto &gc : uov::golden::goldenCases()) {
        uov::MappingPlan plan = uov::planStorageMapping(gc.nest, 0);
        uov::GeneratedCode code =
            uov::generateC(gc.nest, plan, gc.options);
        std::string path = dir + "/" + gc.name + ".golden.c";
        std::ofstream out(path);
        if (!out.good()) {
            std::cerr << "cannot write " << path << "\n";
            return 1;
        }
        out << code.source;
        std::cout << "wrote " << path << " (" << code.source.size()
                  << " bytes)\n";
    }
    return 0;
}
