/**
 * @file
 * A persistent worker-thread pool with task futures.
 *
 * Spawning a std::thread costs tens of microseconds; the wavefront
 * executor and the scaling benches dispatch thousands of short tasks,
 * so they share one pool of long-lived workers instead (the classic
 * work-queue design).  Tasks are arbitrary callables; submit() returns
 * a std::future for the result, and parallelFor() chunks an index
 * range and blocks until every chunk is done (the caller's barrier).
 *
 * ThreadPool::shared() is the process-wide pool sized to the host's
 * hardware concurrency; independent pools can still be constructed
 * for tests or custom sizing.  All public members are safe to call
 * from multiple threads; tasks must not block on other tasks of the
 * same pool (no nested waiting), which every caller here respects by
 * keeping tasks leaf-level.
 */

#ifndef UOV_SUPPORT_THREAD_POOL_H
#define UOV_SUPPORT_THREAD_POOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace uov {

class ThreadPool
{
  public:
    /** Start @p threads workers (0 means hardware concurrency). */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains outstanding tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(_workers.size()); }

    /**
     * Enqueue @p fn; the future carries its result (or exception).
     */
    template <typename Fn>
    auto
    submit(Fn &&fn) -> std::future<std::invoke_result_t<Fn>>
    {
        using R = std::invoke_result_t<Fn>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<Fn>(fn));
        std::future<R> fut = task->get_future();
        enqueue([task] { (*task)(); });
        return fut;
    }

    /**
     * Run body(begin, end) over [0, n) split into at most @p chunks
     * contiguous ranges; returns when every chunk has finished
     * (rethrowing the first chunk exception, if any).  With n == 0 or
     * chunks <= 1 the body runs inline on the caller's thread.
     */
    void parallelFor(size_t n, size_t chunks,
                     const std::function<void(size_t, size_t)> &body);

    /** The process-wide pool (hardware-concurrency workers). */
    static ThreadPool &shared();

  private:
    void enqueue(std::function<void()> task);
    void workerLoop(unsigned index);

    std::mutex _mutex;
    std::condition_variable _cv;
    std::deque<std::function<void()>> _queue;
    std::vector<std::thread> _workers;
    bool _stopping = false;
};

} // namespace uov

#endif // UOV_SUPPORT_THREAD_POOL_H
