// Admin server tests: the socket lifecycle (ephemeral bind, resolved
// port, stop idempotence), the unit-testable handle() dispatch for
// every endpoint, readiness flips, the quit latch, and a real HTTP
// GET through a client socket.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "support/metrics.h"
#include "telemetry/admin_server.h"

using namespace uov;
using namespace uov::telemetry;

namespace {

/** One blocking HTTP/1.0 GET against 127.0.0.1:port. */
std::string
httpGet(uint16_t port, const std::string &path)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    std::string request =
        "GET " + path + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
    EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
              static_cast<ssize_t>(request.size()));
    std::string response;
    char buf[2048];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        response.append(buf, static_cast<size_t>(n));
    ::close(fd);
    return response;
}

std::string
body(const std::string &response)
{
    auto pos = response.find("\r\n\r\n");
    return pos == std::string::npos ? "" : response.substr(pos + 4);
}

} // namespace

TEST(AdminServer, EphemeralPortResolvesNonzero)
{
    MetricsRegistry metrics;
    AdminHooks hooks;
    hooks.metrics = &metrics;
    AdminServer server(hooks, 0);
    EXPECT_GT(server.port(), 0);
    server.stop();
    server.stop(); // idempotent
}

TEST(AdminServer, MetricsEndpointRendersRegistry)
{
    MetricsRegistry metrics;
    metrics.counter("service.requests").inc(3);
    AdminHooks hooks;
    hooks.metrics = &metrics;
    AdminServer server(hooks, 0);

    std::string response = server.handle("GET", "/metrics");
    EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(response.find("text/plain; version=0.0.4"),
              std::string::npos);
    EXPECT_NE(response.find("uov_service_requests_total 3"),
              std::string::npos);
}

TEST(AdminServer, QueryStringsAreStripped)
{
    MetricsRegistry metrics;
    AdminHooks hooks;
    hooks.metrics = &metrics;
    AdminServer server(hooks, 0);
    EXPECT_NE(server.handle("GET", "/metrics?x=1").find("200 OK"),
              std::string::npos);
}

TEST(AdminServer, HealthzReportsHookState)
{
    AdminHooks hooks;
    hooks.health = [] {
        HealthStatus h;
        h.store_configured = true;
        h.store_ok = true;
        h.queue_depth = 7;
        h.shed_high_water = 32;
        return h;
    };
    AdminServer server(hooks, 0);
    std::string response = server.handle("GET", "/healthz");
    EXPECT_NE(response.find("200 OK"), std::string::npos);
    EXPECT_NE(response.find("\"queue_depth\":7"), std::string::npos);
    EXPECT_NE(response.find("\"shed_high_water\":32"),
              std::string::npos);
    EXPECT_NE(response.find("\"configured\":true"), std::string::npos);
}

TEST(AdminServer, ReadyzFlipsWithShedAndStoreState)
{
    std::atomic<bool> shed{false};
    std::atomic<bool> store_ok{true};
    AdminHooks hooks;
    hooks.health = [&] {
        HealthStatus h;
        h.store_configured = true;
        h.store_ok = store_ok.load();
        h.shed_active = shed.load();
        return h;
    };
    AdminServer server(hooks, 0);

    EXPECT_NE(server.handle("GET", "/readyz").find("200 OK"),
              std::string::npos);
    shed = true;
    EXPECT_NE(
        server.handle("GET", "/readyz").find("503 Service Unavailable"),
        std::string::npos);
    shed = false;
    store_ok = false; // configured store failed to open
    EXPECT_NE(
        server.handle("GET", "/readyz").find("503 Service Unavailable"),
        std::string::npos);
    store_ok = true;
    EXPECT_NE(server.handle("GET", "/readyz").find("200 OK"),
              std::string::npos);
}

TEST(AdminServer, FlightAndSloEndpointsServeHookJson)
{
    FlightRecorder flight(8);
    FlightDigest d;
    d.trace_id = 0x42;
    d.request_index = 1;
    flight.record(d);
    SloTracker slo;
    slo.record(FlightDigest::Outcome::Optimal, 10);

    AdminHooks hooks;
    hooks.flight = &flight;
    hooks.slo = &slo;
    AdminServer server(hooks, 0);

    std::string fresp = server.handle("GET", "/flight");
    EXPECT_NE(fresp.find("\"recorded\":1"), std::string::npos);
    EXPECT_NE(fresp.find("0000000000000042"), std::string::npos);

    std::string sresp = server.handle("GET", "/slo");
    EXPECT_NE(sresp.find("\"total\":1"), std::string::npos);
}

TEST(AdminServer, MissingHooksDegradeGracefully)
{
    AdminHooks hooks; // everything null
    AdminServer server(hooks, 0);
    EXPECT_NE(server.handle("GET", "/metrics").find("200 OK"),
              std::string::npos);
    EXPECT_NE(server.handle("GET", "/healthz").find("200 OK"),
              std::string::npos);
    EXPECT_NE(
        server.handle("GET", "/flight").find("\"enabled\":false"),
        std::string::npos);
    EXPECT_NE(server.handle("GET", "/slo").find("\"enabled\":false"),
              std::string::npos);
    EXPECT_NE(
        server.handle("GET", "/spans").find("\"enabled\":false"),
        std::string::npos);
}

TEST(AdminServer, UnknownPathIs404AndPostIs405)
{
    AdminHooks hooks;
    AdminServer server(hooks, 0);
    EXPECT_NE(server.handle("GET", "/nope").find("404 Not Found"),
              std::string::npos);
    EXPECT_NE(
        server.handle("POST", "/metrics").find("405 Method Not"),
        std::string::npos);
}

TEST(AdminServer, QuitLatchReleasesWaiters)
{
    AdminHooks hooks;
    AdminServer server(hooks, 0);
    EXPECT_FALSE(server.quitRequested());

    std::thread waiter([&server] { server.waitQuit(); });
    std::string response = server.handle("GET", "/quitquitquit");
    EXPECT_NE(response.find("200 OK"), std::string::npos);
    EXPECT_TRUE(server.quitRequested());
    waiter.join();
}

TEST(AdminServer, ServesRealHttpOverTheSocket)
{
    MetricsRegistry metrics;
    metrics.counter("service.requests").inc(9);
    AdminHooks hooks;
    hooks.metrics = &metrics;
    AdminServer server(hooks, 0);

    std::string response = httpGet(server.port(), "/metrics");
    EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(body(response).find("uov_service_requests_total 9"),
              std::string::npos);
    EXPECT_GE(server.requestsServed(), 1u);

    // A malformed request draws a 400, not a hang.
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(server.port());
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    const char *garbage = "\r\n\r\n";
    ASSERT_EQ(::send(fd, garbage, std::strlen(garbage), 0), 4);
    char buf[256];
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0);
    EXPECT_NE(std::string(buf, static_cast<size_t>(n))
                  .find("400 Bad Request"),
              std::string::npos);
    ::close(fd);
}

TEST(AdminServer, ConcurrentScrapersAllGetAnswers)
{
    MetricsRegistry metrics;
    metrics.counter("service.requests").inc(1);
    AdminHooks hooks;
    hooks.metrics = &metrics;
    AdminServer server(hooks, 0);

    constexpr int kClients = 8;
    std::vector<std::thread> clients;
    std::atomic<int> ok{0};
    for (int i = 0; i < kClients; ++i)
        clients.emplace_back([&server, &ok] {
            std::string response = httpGet(server.port(), "/metrics");
            if (response.find("200 OK") != std::string::npos)
                ok.fetch_add(1);
        });
    for (auto &t : clients)
        t.join();
    EXPECT_EQ(ok.load(), kClients);
}
