/**
 * @file
 * The joint autotuner: search over (UOV candidate, schedule primitive
 * sequence, tile/unroll factors), scored by a pluggable evaluator.
 *
 * The paper decouples storage from scheduling; the tuner exploits
 * both halves of that freedom at once.  A run:
 *
 *  1. plans the nest (dependence analysis + regions, no search),
 *  2. pools UOV candidates from budgeted branch-and-bound runs under
 *     both objectives plus the always-legal ov_o seed,
 *  3. enumerates legal schedule compositions (ScheduleBuilder) per
 *     storage variant -- the default lexicographic OV-mapped kernel
 *     is always candidate 0,
 *  4. scores candidates in enumeration order until the SearchBudget
 *     expires, keeping the best (strictly smaller score wins, ties
 *     keep the earlier candidate).
 *
 * Anytime contract (PR 4 machinery): candidate 0 is evaluated before
 * the first budget poll, so even a 0 ms deadline returns a legal,
 * certified configuration -- tagged Degraded, deterministically.
 * Under the simulator evaluator the whole run is a pure function of
 * (nest, options), so repeated runs agree byte-for-byte; measurement
 * evaluators trade that for wall-clock truth.
 */

#ifndef UOV_TUNE_TUNE_H
#define UOV_TUNE_TUNE_H

#include <functional>
#include <string>
#include <vector>

#include "core/search.h"
#include "ir/program.h"
#include "tune/evaluator.h"

namespace uov {

/**
 * Realize a stencil as the paper's single-statement nest over
 * [lo, hi]: the statement writes N[q] and reads N[q - v] for every
 * dependence v (shared by 'query native'/'query tune', the fuzz
 * oracles, and the benches).
 */
LoopNest nestFromStencil(const Stencil &stencil, const IVec &lo,
                         const IVec &hi,
                         const std::string &name = "stencil");

namespace tune {

/** How a tune run ended (mirrors SearchStatus). */
enum class TuneStatus
{
    Optimal,  ///< every enumerated candidate was evaluated
    Degraded, ///< a budget axis expired; best-so-far returned
};

/** Tuner configuration. */
struct TuneOptions
{
    /** Shared wall-clock/node/cancel budget for the embedded UOV
     *  searches and the evaluation loop. */
    SearchBudget budget;

    /** Scoring backend; nullptr uses a built-in SimEvaluator with
     *  the Ultra 2 machine model. */
    Evaluator *evaluator = nullptr;

    /** Enumerate only candidates the C emitter can lower (the JIT
     *  evaluator's reach); false adds simulator-only compositions
     *  such as legal loop permutations. */
    bool lowerable_only = true;

    /** Evaluate at most this many candidates (0 = all). */
    size_t max_candidates = 0;

    /** Layout for non-prime OVs (pipeline.h convention). */
    ModLayout layout = ModLayout::Interleaved;

    /**
     * Observer invoked after every evaluation with the candidate,
     * its score, its enumeration index, and elapsed microseconds --
     * the bench's time-to-best trajectory hook and the fuzz oracle's
     * every-candidate-legal probe.
     */
    std::function<void(const TuneCandidate &, double score,
                       size_t index, int64_t elapsed_us)>
        on_candidate;
};

/** Outcome of one tune run. */
struct TuneResult
{
    TuneCandidate best;      ///< always set: candidate 0 at worst
    double best_score = 0.0; ///< evaluator units (cycles or ns)
    size_t evaluated = 0;
    size_t candidates_total = 0; ///< enumerated space size
    TuneStatus status = TuneStatus::Optimal;
    /** "deadline", "cancelled", "node-budget" (UOV search), or
     *  "candidate-budget"; empty for Optimal. */
    std::string degraded_reason;
    SearchResult uov_shortest; ///< embedded shortest-vector search
    SearchResult uov_storage;  ///< embedded bounded-storage search
    int64_t elapsed_us = 0;

    bool
    degraded() const
    {
        return status == TuneStatus::Degraded;
    }
};

/**
 * Joint (UOV, schedule, factors) tuner over one nest's statement 0.
 *
 * Deterministic under deterministic evaluators: the candidate space
 * and its order are pure functions of (nest, options), and budget
 * expiry only truncates the evaluation prefix.
 */
class Tuner
{
  public:
    /** @throws UovUserError when the nest has no regular stencil */
    explicit Tuner(LoopNest nest, TuneOptions options = {});

    /**
     * Run the tune.  The returned best candidate is certified: an
     * OV-mapped winner's vector is re-verified with the exact UOV
     * oracle before returning.
     * @throws UovUserError when planning fails (no temporaries);
     *         evaluator exceptions propagate
     */
    TuneResult run();

    const Stencil &stencil() const { return _stencil; }
    const LoopNest &nest() const { return _nest; }

    /** The enumerated candidate space (valid after run()). */
    const std::vector<TuneCandidate> &candidates() const
    {
        return _candidates;
    }

    /** Scores of the evaluated prefix, indexed like candidates(). */
    const std::vector<double> &scores() const { return _scores; }

  private:
    LoopNest _nest;
    TuneOptions _options;
    Stencil _stencil;
    std::vector<TuneCandidate> _candidates;
    std::vector<double> _scores;
};

} // namespace tune
} // namespace uov

#endif // UOV_TUNE_TUNE_H
