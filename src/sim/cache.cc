#include "sim/cache.h"

#include "support/error.h"

namespace uov {

namespace {

bool
isPowerOfTwo(int64_t v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

unsigned
log2OfPow2(int64_t v)
{
    unsigned s = 0;
    while ((int64_t{1} << s) < v)
        ++s;
    return s;
}

} // namespace

int64_t
CacheConfig::sets() const
{
    return size_bytes / (line_bytes * associativity);
}

void
CacheConfig::validate() const
{
    UOV_REQUIRE(isPowerOfTwo(line_bytes), name << ": line size must be a "
                                                  "power of two");
    UOV_REQUIRE(associativity >= 1, name << ": associativity >= 1");
    UOV_REQUIRE(size_bytes % (line_bytes * associativity) == 0,
                name << ": size must be sets*ways*line");
    UOV_REQUIRE(isPowerOfTwo(sets()), name << ": set count must be a "
                                              "power of two");
}

Cache::Cache(CacheConfig config) : _config(std::move(config))
{
    _config.validate();
    _sets = _config.sets();
    _line_shift = log2OfPow2(_config.line_bytes);
    _set_shift = log2OfPow2(_sets);
    _ways.assign(static_cast<size_t>(_sets * _config.associativity),
                 Way{});
}

bool
Cache::access(uint64_t addr, bool is_write)
{
    uint64_t line = addr >> _line_shift;
    auto set = static_cast<size_t>(line & (_sets - 1));
    uint64_t tag = line >> _set_shift;

    Way *base = &_ways[set * _config.associativity];
    ++_stamp;

    for (int64_t w = 0; w < _config.associativity; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == tag) {
            way.lru = _stamp;
            way.dirty = way.dirty || is_write;
            ++_hits;
            return true;
        }
    }

    // Miss: fill an invalid way if any, else evict the LRU way.
    Way *victim = base;
    for (int64_t w = 0; w < _config.associativity; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lru < victim->lru)
            victim = &base[w];
    }
    if (victim->valid && victim->dirty)
        ++_writebacks;
    victim->valid = true;
    victim->tag = tag;
    victim->lru = _stamp;
    victim->dirty = is_write;
    ++_misses;
    return false;
}

double
Cache::missRate() const
{
    uint64_t total = accesses();
    return total == 0 ? 0.0
                      : static_cast<double>(_misses) /
                            static_cast<double>(total);
}

void
Cache::reset()
{
    for (auto &w : _ways)
        w = Way{};
    _stamp = _hits = _misses = 0;
    _writebacks = 0;
}

} // namespace uov
