/**
 * @file
 * Machine models: the memory hierarchy + cycle accounting standing in
 * for the paper's three testbeds (Section 5: 200 MHz Pentium Pro,
 * 200 MHz Ultra 2, 500 MHz Alpha 21164, all gcc -O2).
 *
 * A MemorySystem replays an address stream through L1/L2(/L3) caches,
 * a TLB, and a finite physical memory with page-LRU replacement (the
 * paper's "falls out of memory" regime), and charges cycles:
 *
 *   cycles += base_per_op
 *           + first-missing-level penalty
 *           + TLB-miss penalty
 *           + page-fault penalty (when the resident set overflows)
 *
 * plus a deterministic expected-cost model for branches.  Parameters
 * follow the published cache geometries of the three machines; the
 * penalties are era-plausible round numbers.  Absolute cycle counts
 * are not the claim -- the paper-vs-us comparison is about curve
 * shapes (see EXPERIMENTS.md).
 */

#ifndef UOV_SIM_MACHINE_H
#define UOV_SIM_MACHINE_H

#include <optional>
#include <string>

#include "sim/cache.h"
#include "sim/tlb.h"
#include "support/table.h"

namespace uov {

/** Full parameterization of one simulated machine. */
struct MachineConfig
{
    std::string name;

    CacheConfig l1;
    CacheConfig l2;
    std::optional<CacheConfig> l3;

    int64_t tlb_entries = 64;
    int64_t page_bytes = 4096;

    int64_t memory_bytes = 32ll << 20; ///< physical memory capacity

    double base_cycles_per_op = 1.0; ///< issue cost of a memory op
    double l1_hit_cycles = 0.0;      ///< extra cost beyond base
    double l2_hit_cycles = 6.0;
    double l3_hit_cycles = 20.0;
    double memory_cycles = 50.0;
    double tlb_miss_cycles = 20.0;
    /** Cost of writing a dirty L1 victim back toward L2. */
    double writeback_cycles = 2.0;
    /** First touch of a page with free memory: allocation/zeroing. */
    double minor_fault_cycles = 1500.0;
    /** Fault with memory full: a dirty page goes to disk first. */
    double page_fault_cycles = 200000.0;

    double branch_cycles = 1.0;            ///< predicted-branch cost
    double branch_mispredict_cycles = 4.0;
    double branch_mispredict_rate = 0.10;  ///< expected-cost model

    /**
     * Next-line hardware prefetcher (Section 5 discusses whether
     * interleaved OV storage defeats prefetching): when an off-chip
     * access continues a recently missed line stream, it is served at
     * the L2 latency instead of full memory latency.  Off by default;
     * the mapping ablation flips it.
     */
    bool next_line_prefetch = false;

    /** The three paper testbeds. */
    static MachineConfig pentiumPro();
    static MachineConfig ultra2();
    static MachineConfig alpha21164();
};

/** Replay engine: feed it loads/stores/branches, read back cycles. */
class MemorySystem
{
  public:
    explicit MemorySystem(MachineConfig config);

    const MachineConfig &config() const { return _config; }

    /** One data access at byte address @p addr. */
    void access(uint64_t addr, bool is_write);

    /** One conditional branch (expected-cost accounting). */
    void branch();

    /** Pure compute cycles (arithmetic between memory ops). */
    void compute(double cycles) { _cycles += cycles; }

    double cycles() const { return _cycles; }
    uint64_t accesses() const { return _accesses; }
    uint64_t branches() const { return _branches; }
    uint64_t pageFaults() const { return _page_faults; }
    const Cache &l1() const { return _l1; }
    const Cache &l2() const { return _l2; }
    const Cache *l3() const { return _l3 ? &*_l3 : nullptr; }
    const Tlb &tlb() const { return _tlb; }

    /** Cold-start everything and zero the counters. */
    void reset();

    std::string statsString() const;

    /** Per-level breakdown as a printable table. */
    Table statsTable() const;

  private:
    MachineConfig _config;
    Cache _l1;
    Cache _l2;
    std::optional<Cache> _l3;
    Tlb _tlb;
    Tlb _resident; ///< physical memory modeled as a page-LRU "cache"

    double _cycles = 0.0;
    uint64_t _accesses = 0;
    uint64_t _branches = 0;
    uint64_t _page_faults = 0;
    uint64_t _prefetch_hits = 0;

    /** Recently missed line addresses (stream detector). */
    static constexpr size_t kStreamTableSize = 16;
    uint64_t _recent_miss_lines[kStreamTableSize] = {};
    size_t _recent_next = 0;

  public:
    uint64_t prefetchHits() const { return _prefetch_hits; }
};

} // namespace uov

#endif // UOV_SIM_MACHINE_H
