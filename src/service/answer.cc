#include "service/answer.h"

#include <sstream>

#include "core/uov.h"
#include "geometry/polyhedron.h"
#include "service/canonical.h"
#include "support/error.h"
#include "telemetry/trace_context.h"

namespace uov {
namespace service {

size_t
ServiceAnswer::byteSize() const
{
    size_t bytes = sizeof(ServiceAnswer);
    bytes += best_uov.dim() * sizeof(int64_t);
    bytes += degraded_reason.size();
    for (const auto &row : cert)
        bytes += sizeof(row) + row.size() * sizeof(int64_t);
    return bytes;
}

std::string
ServiceAnswer::str() const
{
    std::ostringstream oss;
    oss << "best=" << best_uov << " value=" << best_objective
        << " initial=" << initial_objective
        << " canon=" << canonical_deps;
    if (degraded)
        oss << " degraded=" << degraded_reason;
    oss << " cert=";
    for (size_t i = 0; i < cert.size(); ++i) {
        if (i)
            oss << "|";
        for (size_t j = 0; j < cert[i].size(); ++j) {
            if (j)
                oss << ",";
            oss << cert[i][j];
        }
    }
    return oss.str();
}

ServiceAnswer
solveCanonical(const Stencil &canonical, SearchObjective objective,
               const std::optional<IVec> &isg_lo,
               const std::optional<IVec> &isg_hi,
               const SearchBudget &budget)
{
    SearchOptions options;
    options.budget = budget;
    if (objective == SearchObjective::BoundedStorage) {
        UOV_REQUIRE(isg_lo.has_value() && isg_hi.has_value(),
                    "storage objective requires ISG bounds");
        options.isg = Polyhedron::box(*isg_lo, *isg_hi);
    }
    BranchBoundSearch search(canonical, objective, options);
    SearchResult result = search.run();
    telemetry::noteSearch(result.stats.visited);

    ServiceAnswer answer;
    answer.best_uov = result.best_uov;
    answer.best_objective = result.best_objective;
    answer.initial_objective = result.initial_objective;
    answer.canonical_deps = canonical.size();
    answer.degraded = result.degraded();
    answer.degraded_reason = result.degraded_reason;

    // Certification shares the search's cone memo: membership
    // subproblems proved during run()'s verification pass are reused.
    UovOracle oracle(search.memo());
    auto cert = oracle.certify(result.best_uov);
    UOV_CHECK(cert.has_value(),
              "search result " << result.best_uov.str()
                               << " failed certification over "
                               << canonical.str());
    answer.cert = std::move(cert->rows);
    return answer;
}

ServiceAnswer
solveDirect(const Stencil &stencil, SearchObjective objective,
            const std::optional<IVec> &isg_lo,
            const std::optional<IVec> &isg_hi,
            const SearchBudget &budget)
{
    return solveCanonical(canonicalizeStencil(stencil), objective,
                          isg_lo, isg_hi, budget);
}

} // namespace service
} // namespace uov
