#include "geometry/polyhedron.h"

#include <algorithm>
#include <optional>

#include "support/checked.h"
#include "support/error.h"

namespace uov {

Rational
dotRI(const RationalVec &p, const IVec &dir)
{
    UOV_CHECK(p.size() == dir.dim(), "dimension mismatch in dotRI");
    Rational acc(0);
    for (size_t i = 0; i < p.size(); ++i)
        acc = acc + p[i] * Rational(dir[i]);
    return acc;
}

Polyhedron::Polyhedron(IMatrix a, IVec b) : _a(std::move(a)), _b(std::move(b))
{
    UOV_REQUIRE(_a.rows() == _b.dim(),
                "constraint matrix rows " << _a.rows()
                    << " != rhs dimension " << _b.dim());
    UOV_REQUIRE(_a.cols() >= 1, "zero-dimensional polyhedron");
}

Polyhedron
Polyhedron::fromConstraints(IMatrix a, IVec b)
{
    return Polyhedron(std::move(a), std::move(b));
}

Polyhedron
Polyhedron::box(const IVec &lo, const IVec &hi)
{
    UOV_REQUIRE(lo.dim() == hi.dim(), "box corner dimension mismatch");
    size_t d = lo.dim();
    for (size_t i = 0; i < d; ++i)
        UOV_REQUIRE(lo[i] <= hi[i], "empty box in dimension " << i);
    IMatrix a(2 * d, d);
    IVec b(2 * d);
    for (size_t i = 0; i < d; ++i) {
        a(2 * i, i) = 1; //  x_i <= hi_i
        b[2 * i] = hi[i];
        a(2 * i + 1, i) = -1; // -x_i <= -lo_i
        b[2 * i + 1] = checkedNeg(lo[i]);
    }
    return Polyhedron(std::move(a), std::move(b));
}

namespace {

/** 2-D cross product (p1-p0) x (p2-p0). */
int64_t
cross2(const IVec &p0, const IVec &p1, const IVec &p2)
{
    int64_t ax = checkedSub(p1[0], p0[0]);
    int64_t ay = checkedSub(p1[1], p0[1]);
    int64_t bx = checkedSub(p2[0], p0[0]);
    int64_t by = checkedSub(p2[1], p0[1]);
    return checkedSub(checkedMul(ax, by), checkedMul(ay, bx));
}

/** Andrew monotone chain convex hull, CCW, no duplicate endpoints. */
std::vector<IVec>
convexHull2D(std::vector<IVec> pts)
{
    std::sort(pts.begin(), pts.end(),
              [](const IVec &a, const IVec &b) {
                  return a[0] != b[0] ? a[0] < b[0] : a[1] < b[1];
              });
    pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
    size_t n = pts.size();
    if (n <= 2)
        return pts;

    std::vector<IVec> hull(2 * n);
    size_t k = 0;
    for (size_t i = 0; i < n; ++i) { // lower
        while (k >= 2 && cross2(hull[k - 2], hull[k - 1], pts[i]) <= 0)
            --k;
        hull[k++] = pts[i];
    }
    size_t lower = k + 1;
    for (size_t i = n - 1; i-- > 0;) { // upper
        while (k >= lower && cross2(hull[k - 2], hull[k - 1], pts[i]) <= 0)
            --k;
        hull[k++] = pts[i];
    }
    hull.resize(k - 1);
    return hull;
}

} // namespace

Polyhedron
Polyhedron::fromVertices2D(const std::vector<IVec> &pts)
{
    UOV_REQUIRE(!pts.empty(), "fromVertices2D with no points");
    for (const auto &p : pts)
        UOV_REQUIRE(p.dim() == 2, "fromVertices2D expects 2-D points");

    std::vector<IVec> hull = convexHull2D(pts);
    UOV_REQUIRE(hull.size() >= 3,
                "fromVertices2D needs a full-dimensional polytope, hull has "
                    << hull.size() << " vertices");

    // For each CCW edge (u -> w), the inward side is the left side; the
    // constraint is n . x <= n . u with n the outward (right) normal.
    size_t m = hull.size();
    IMatrix a(m, 2);
    IVec b(m);
    for (size_t i = 0; i < m; ++i) {
        const IVec &u = hull[i];
        const IVec &w = hull[(i + 1) % m];
        int64_t ex = checkedSub(w[0], u[0]);
        int64_t ey = checkedSub(w[1], u[1]);
        // Outward normal of a CCW edge is (ey, -ex).
        a(i, 0) = ey;
        a(i, 1) = checkedNeg(ex);
        b[i] = checkedAdd(checkedMul(a(i, 0), u[0]),
                          checkedMul(a(i, 1), u[1]));
    }
    return Polyhedron(std::move(a), std::move(b));
}

bool
Polyhedron::contains(const IVec &p) const
{
    UOV_REQUIRE(p.dim() == dim(), "point dimension mismatch");
    for (size_t r = 0; r < _a.rows(); ++r) {
        if (_a.row(r).dot(p) > _b[r])
            return false;
    }
    return true;
}

namespace {

/**
 * Solve the square rational system m x = rhs by Gaussian elimination.
 * Returns nullopt when the system is singular.
 */
std::optional<RationalVec>
solveSquare(std::vector<RationalVec> m, RationalVec rhs)
{
    size_t n = rhs.size();
    for (size_t col = 0; col < n; ++col) {
        size_t piv = col;
        while (piv < n && m[piv][col] == Rational(0))
            ++piv;
        if (piv == n)
            return std::nullopt;
        std::swap(m[piv], m[col]);
        std::swap(rhs[piv], rhs[col]);
        Rational p = m[col][col];
        for (size_t r = 0; r < n; ++r) {
            if (r == col || m[r][col] == Rational(0))
                continue;
            Rational f = m[r][col] / p;
            for (size_t c = col; c < n; ++c)
                m[r][c] = m[r][c] - f * m[col][c];
            rhs[r] = rhs[r] - f * rhs[col];
        }
    }
    RationalVec x(n);
    for (size_t i = 0; i < n; ++i)
        x[i] = rhs[i] / m[i][i];
    return x;
}

} // namespace

void
Polyhedron::computeVertices() const
{
    size_t d = dim();
    size_t m = _a.rows();
    UOV_REQUIRE(m >= d, "polyhedron with fewer constraints than dimensions "
                        "cannot be bounded");

    std::vector<RationalVec> verts;
    std::vector<size_t> pick(d);

    // Enumerate all d-subsets of constraints.
    std::vector<size_t> idx(d);
    for (size_t i = 0; i < d; ++i)
        idx[i] = i;
    for (;;) {
        // Solve the active set.
        std::vector<RationalVec> sys(d, RationalVec(d));
        RationalVec rhs(d);
        for (size_t r = 0; r < d; ++r) {
            for (size_t c = 0; c < d; ++c)
                sys[r][c] = Rational(_a(idx[r], c));
            rhs[r] = Rational(_b[idx[r]]);
        }
        auto sol = solveSquare(std::move(sys), std::move(rhs));
        if (sol) {
            bool feasible = true;
            for (size_t r = 0; r < m && feasible; ++r) {
                Rational lhs(0);
                for (size_t c = 0; c < d; ++c)
                    lhs = lhs + Rational(_a(r, c)) * (*sol)[c];
                if (lhs > Rational(_b[r]))
                    feasible = false;
            }
            if (feasible &&
                std::find(verts.begin(), verts.end(), *sol) == verts.end())
                verts.push_back(*sol);
        }
        // Next combination.
        size_t i = d;
        while (i-- > 0) {
            if (idx[i] != i + m - d) {
                ++idx[i];
                for (size_t j = i + 1; j < d; ++j)
                    idx[j] = idx[j - 1] + 1;
                break;
            }
            if (i == 0) {
                i = SIZE_MAX;
                break;
            }
        }
        if (i == SIZE_MAX)
            break;
    }

    UOV_REQUIRE(!verts.empty(), "polyhedron is empty or unbounded (no "
                                "vertices found)");
    _vertices = std::move(verts);
    _verticesValid = true;
}

const std::vector<RationalVec> &
Polyhedron::vertices() const
{
    if (!_verticesValid)
        computeVertices();
    return _vertices;
}

Rational
Polyhedron::maxDot(const IVec &dir) const
{
    const auto &vs = vertices();
    Rational best = dotRI(vs[0], dir);
    for (size_t i = 1; i < vs.size(); ++i) {
        Rational v = dotRI(vs[i], dir);
        if (v > best)
            best = v;
    }
    return best;
}

Rational
Polyhedron::minDot(const IVec &dir) const
{
    const auto &vs = vertices();
    Rational best = dotRI(vs[0], dir);
    for (size_t i = 1; i < vs.size(); ++i) {
        Rational v = dotRI(vs[i], dir);
        if (v < best)
            best = v;
    }
    return best;
}

int64_t
Polyhedron::projectionCount(const IVec &dir) const
{
    int64_t hi = maxDot(dir).floor();
    int64_t lo = minDot(dir).ceil();
    return hi < lo ? 0 : checkedAdd(checkedSub(hi, lo), 1);
}

int64_t
Polyhedron::minProjectionCount() const
{
    if (dim() == 2) {
        // The minimizing direction for a 2-D polytope is normal to one
        // of its edges; our constraint normals are exactly those (for
        // hull-built polytopes) or a superset (boxes / general).
        int64_t best = INT64_MAX;
        for (size_t r = 0; r < _a.rows(); ++r) {
            IVec n = _a.row(r);
            if (n.isZero())
                continue;
            int64_t g = n.content();
            IVec prim = n.dividedBy(g);
            best = std::min(best, projectionCount(prim));
        }
        UOV_CHECK(best != INT64_MAX, "no usable constraint normals");
        return best;
    }

    // Boxes in any dimension: the shortest side, detected through the
    // axis projections; otherwise fall back to the trivial lower bound.
    bool axis_aligned = true;
    for (size_t r = 0; r < _a.rows() && axis_aligned; ++r) {
        int nonzero = 0;
        for (size_t c = 0; c < _a.cols(); ++c)
            if (_a(r, c) != 0)
                ++nonzero;
        if (nonzero != 1)
            axis_aligned = false;
    }
    if (axis_aligned) {
        int64_t best = INT64_MAX;
        for (size_t c = 0; c < dim(); ++c) {
            IVec axis(dim());
            axis[c] = 1;
            best = std::min(best, projectionCount(axis));
        }
        return best;
    }
    return 1;
}

void
Polyhedron::boundingBox(IVec &lo, IVec &hi) const
{
    size_t d = dim();
    lo = IVec(d);
    hi = IVec(d);
    for (size_t c = 0; c < d; ++c) {
        IVec axis(d);
        axis[c] = 1;
        lo[c] = minDot(axis).ceil();
        hi[c] = maxDot(axis).floor();
    }
}

int64_t
Polyhedron::countIntegerPoints(int64_t max_scan) const
{
    return static_cast<int64_t>(integerPoints(max_scan).size());
}

std::vector<IVec>
Polyhedron::integerPoints(int64_t max_scan) const
{
    IVec lo, hi;
    boundingBox(lo, hi);
    size_t d = dim();

    int64_t volume = 1;
    for (size_t c = 0; c < d; ++c) {
        if (hi[c] < lo[c])
            return {};
        volume = checkedMul(volume, checkedAdd(checkedSub(hi[c], lo[c]), 1));
    }
    UOV_REQUIRE(volume <= max_scan,
                "integer-point scan over " << volume
                    << " candidates exceeds limit " << max_scan);

    std::vector<IVec> out;
    IVec p = lo;
    for (;;) {
        if (contains(p))
            out.push_back(p);
        // Odometer increment.
        size_t c = 0;
        while (c < d) {
            if (p[c] < hi[c]) {
                ++p[c];
                break;
            }
            p[c] = lo[c];
            ++c;
        }
        if (c == d)
            break;
    }
    return out;
}

} // namespace uov
