#include "core/search.h"

#include <chrono>
#include <cmath>
#include <deque>
#include <queue>
#include <sstream>
#include <unordered_map>

#include "core/storage_count.h"
#include "core/uov.h"
#include "support/checked.h"
#include "support/error.h"
#include "support/logging.h"
#include "support/trace.h"

namespace uov {

std::string
SearchStats::str() const
{
    std::ostringstream oss;
    oss << "visited=" << visited << " enqueued=" << enqueued
        << " pruned=" << pruned << " bound_updates=" << bound_updates
        << " visits_to_best=" << visits_to_best << " elapsed_us="
        << elapsed_us;
    return oss.str();
}

BranchBoundSearch::BranchBoundSearch(Stencil stencil,
                                     SearchObjective objective,
                                     SearchOptions options)
    : _stencil(std::move(stencil)), _objective(objective),
      _options(std::move(options)), _pruner(_stencil)
{
    if (_objective == SearchObjective::BoundedStorage) {
        UOV_REQUIRE(_options.isg.has_value(),
                    "BoundedStorage objective requires an ISG");
        UOV_REQUIRE(_options.isg->dim() == _stencil.dim(),
                    "ISG dimension " << _options.isg->dim()
                        << " != stencil dimension " << _stencil.dim());
    }
}

int64_t
BranchBoundSearch::objectiveOf(const IVec &w) const
{
    switch (_objective) {
      case SearchObjective::ShortestVector:
        return w.normSquared();
      case SearchObjective::BoundedStorage:
        return storageCellCount(w, *_options.isg);
    }
    UOV_UNREACHABLE("bad objective");
}

SearchResult
BranchBoundSearch::run()
{
    const size_t m = _stencil.size();
    const uint32_t full_mask =
        m == 32 ? 0xffffffffu : ((1u << m) - 1);
    const auto start = std::chrono::steady_clock::now();
    const SearchBudget &budget = _options.budget;

    auto elapsed_us = [&] {
        return std::chrono::duration_cast<std::chrono::microseconds>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };

    // Capture the tracing flag once: a flip mid-run must not leave
    // half-open interval spans, and the disabled path must stay one
    // relaxed load per run, not per node.
    const bool traced = trace::tracingEnabled();
    if (traced)
        trace::begin("search.run");

    SearchResult result;

    // "search.interval" spans tile the run between incumbent
    // improvements, so the trace shows how long each bound survived.
    auto trace_incumbent = [&](int64_t obj, bool first) {
        if (!traced)
            return;
        trace::Tracer &tracer = trace::Tracer::instance();
        if (!first)
            tracer.endEvent("search.interval");
        trace::Arg args[2];
        args[0].key = "objective";
        args[0].type = trace::Arg::Type::Int;
        args[0].i = obj;
        args[1].key = "visited";
        args[1].type = trace::Arg::Type::Int;
        args[1].i = static_cast<int64_t>(result.stats.visited);
        tracer.instantEvent("search.incumbent", args, 2);
        tracer.beginEvent("search.interval");
    };

    result.best_uov = _stencil.initialUov();
    result.initial_objective = objectiveOf(result.best_uov);
    result.best_objective = result.initial_objective;
    if (_options.on_incumbent)
        _options.on_incumbent(result.best_uov, result.best_objective,
                              0, elapsed_us());
    trace_incumbent(result.best_objective, /*first=*/true);

    // Budget poll: nodes and cancellation every expansion, the clock
    // every 256th (and before the first, so a 0 ms deadline returns
    // the ov_o seed with nodes == 0, deterministically).
    auto out_of_budget = [&]() -> bool {
        if (result.stats.visited >= budget.max_nodes) {
            result.degraded_reason = "node-budget";
        } else if (budget.cancel.cancelled()) {
            result.degraded_reason = "cancelled";
        } else if (budget.deadline.bounded() &&
                   (result.stats.visited & 255) == 0 &&
                   budget.deadline.expired()) {
            result.degraded_reason = "deadline";
        } else {
            return false;
        }
        result.status = SearchStatus::Degraded;
        return true;
    };

    // Search region: offsets from which a better candidate is still
    // reachable.  For the shortest objective the radius shrinks with
    // the bound; for bounded storage it is fixed by the paper's
    // P_ovo * |ov_o| / P_M argument (shrinking it from improved
    // storage bounds is unsound for skewed ISGs, where storage does
    // not cleanly lower-bound length).
    int64_t radius_sq;
    if (_objective == SearchObjective::ShortestVector) {
        radius_sq = result.best_uov.normSquared();
    } else {
        radius_sq =
            knownBoundsRadiusSquared(result.best_uov, *_options.isg);
    }

    // Per-offset PATHSET state: best-known mask and the mask already
    // expanded with.  A point is (re)expanded only when its known mask
    // gained bits, so each offset is expanded at most |V| times.
    struct PointState
    {
        uint32_t known = 0;
        uint32_t expanded = 0;
    };
    std::unordered_map<IVec, PointState, IVecHash> state;

    struct QueueEntry
    {
        int64_t priority;
        uint64_t seq;
        IVec w;
    };
    struct EntryGreater
    {
        bool
        operator()(const QueueEntry &a, const QueueEntry &b) const
        {
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<QueueEntry, std::vector<QueueEntry>, EntryGreater>
        pq;
    std::deque<QueueEntry> fifo;
    uint64_t seq = 0;

    auto push = [&](const IVec &w) {
        QueueEntry e{objectiveOf(w), seq++, w};
        if (_options.use_priority_queue)
            pq.push(std::move(e));
        else
            fifo.push_back(std::move(e));
        ++result.stats.enqueued;
    };
    auto empty = [&] {
        return _options.use_priority_queue ? pq.empty() : fifo.empty();
    };
    auto pop = [&] {
        if (_options.use_priority_queue) {
            QueueEntry e = pq.top();
            pq.pop();
            return e;
        }
        QueueEntry e = fifo.front();
        fifo.pop_front();
        return e;
    };

    // Seed: the children of the origin q are one backward dependence
    // away; their PATHSET is the dependence traversed.
    for (size_t k = 0; k < m; ++k) {
        const IVec &w = _stencil.dep(k);
        state[w].known |= (1u << k);
        push(w);
    }

    while (!empty()) {
        QueueEntry e = pop();
        PointState &ps = state[e.w];
        uint32_t mask = ps.known;
        if (mask == ps.expanded)
            continue; // stale queue entry, nothing new to propagate

        if (out_of_budget())
            break;
        ++result.stats.visited;
        ps.expanded = mask;
        if (traced && (result.stats.visited & 255) == 0) {
            TRACE_COUNTER("search.nodes", "visited",
                          result.stats.visited);
            TRACE_COUNTER("search.pruned", "pruned",
                          result.stats.pruned);
            TRACE_COUNTER("search.enqueued", "enqueued",
                          result.stats.enqueued);
        }

        // Candidate check (paper Visit step 3).
        if (mask == full_mask) {
            int64_t obj = objectiveOf(e.w);
            if (obj < result.best_objective) {
                result.best_objective = obj;
                result.best_uov = e.w;
                ++result.stats.bound_updates;
                result.stats.visits_to_best = result.stats.visited;
                if (_objective == SearchObjective::ShortestVector &&
                    !_options.disable_bound_shrinking)
                    radius_sq = obj;
                if (_options.on_incumbent)
                    _options.on_incumbent(result.best_uov, obj,
                                          result.stats.visited,
                                          elapsed_us());
                trace_incumbent(obj, /*first=*/false);
                UOV_LOG_DEBUG("search bound -> " << obj << " at "
                                                 << e.w.str());
            }
        }

        // Expand children (paper Visit steps 1-2), bounded by the
        // reachable-region test.
        for (size_t k = 0; k < m; ++k) {
            IVec child = e.w + _stencil.dep(k);
            uint32_t child_mask = mask | (1u << k);
            auto it = state.find(child);
            uint32_t known = it == state.end() ? 0 : it->second.known;
            if ((known | child_mask) == known)
                continue; // nothing new for this child
            if (_pruner.prune(child, radius_sq)) {
                ++result.stats.pruned;
                continue;
            }
            state[child].known = known | child_mask;
            push(child);
        }
    }

    result.stats.elapsed_us = elapsed_us();

    if (traced) {
        trace::Tracer &tracer = trace::Tracer::instance();
        tracer.endEvent("search.interval");
        trace::Arg args[2];
        args[0].key = "visited";
        args[0].type = trace::Arg::Type::Int;
        args[0].i = static_cast<int64_t>(result.stats.visited);
        args[1].key = "pruned";
        args[1].type = trace::Arg::Type::Int;
        args[1].i = static_cast<int64_t>(result.stats.pruned);
        tracer.endEvent("search.run", args, 2);
    }

    // Contract: no vector leaves the search API unverified, whatever
    // path (seed, candidate, degraded best-so-far) produced it.
    UOV_CHECK(UovOracle(_stencil).isUov(result.best_uov),
              "search produced a non-UOV " << result.best_uov.str()
                                           << " for " << _stencil.str());
    return result;
}

SearchResult
exhaustiveUovSearch(const Stencil &stencil, SearchObjective objective,
                    const SearchOptions &options)
{
    UOV_REQUIRE(objective == SearchObjective::ShortestVector ||
                    options.isg.has_value(),
                "BoundedStorage objective requires an ISG");

    UovOracle oracle(stencil);
    IVec initial = stencil.initialUov();

    auto objective_of = [&](const IVec &w) {
        return objective == SearchObjective::ShortestVector
                   ? w.normSquared()
                   : storageCellCount(w, *options.isg);
    };

    SearchResult result;
    result.best_uov = initial;
    result.initial_objective = objective_of(initial);
    result.best_objective = result.initial_objective;

    int64_t radius_sq =
        objective == SearchObjective::ShortestVector
            ? initial.normSquared()
            : knownBoundsRadiusSquared(initial, *options.isg);
    auto radius = static_cast<int64_t>(std::sqrt(
                      static_cast<double>(radius_sq))) +
                  1;

    size_t d = stencil.dim();
    IVec w(d);
    for (size_t c = 0; c < d; ++c)
        w[c] = -radius;
    for (;;) {
        if (!w.isZero() && w.normSquared() <= radius_sq) {
            ++result.stats.visited;
            if (oracle.isUov(w)) {
                int64_t obj = objective_of(w);
                if (obj < result.best_objective ||
                    (obj == result.best_objective &&
                     w < result.best_uov)) {
                    result.best_objective = obj;
                    result.best_uov = w;
                    ++result.stats.bound_updates;
                }
            }
        }
        size_t c = d;
        bool done = false;
        while (c-- > 0) {
            if (w[c] < radius) {
                ++w[c];
                break;
            }
            w[c] = -radius;
            if (c == 0)
                done = true;
        }
        if (done)
            break;
    }
    return result;
}

} // namespace uov
