/**
 * @file
 * Unit tests for dependence analysis, region analysis, and the
 * end-to-end pipeline on the paper's codes.
 */

#include <gtest/gtest.h>

#include "analysis/dependence.h"
#include "analysis/pipeline.h"
#include "analysis/region.h"
#include "support/error.h"

namespace uov {
namespace {

TEST(DependenceAnalysis, SimpleExampleDistances)
{
    LoopNest nest = nests::simpleExample(5, 5);
    DependenceInfo info = analyzeDependences(nest, 0);
    ASSERT_EQ(info.reads.size(), 3u);
    for (const auto &r : info.reads)
        EXPECT_EQ(r.kind, ReadKind::LoopCarriedFlow) << r.str();
    auto flows = info.flowDistances();
    EXPECT_NE(std::find(flows.begin(), flows.end(), IVec{1, 0}),
              flows.end());
    EXPECT_NE(std::find(flows.begin(), flows.end(), IVec{0, 1}),
              flows.end());
    EXPECT_NE(std::find(flows.begin(), flows.end(), IVec{1, 1}),
              flows.end());
}

TEST(DependenceAnalysis, StencilMatchesPaper)
{
    EXPECT_EQ(extractStencil(nests::simpleExample(5, 5), 0),
              stencils::simpleExample());
    EXPECT_EQ(extractStencil(nests::fivePointStencil(6, 32), 0),
              stencils::fivePoint());
    EXPECT_EQ(extractStencil(nests::proteinMatching(5, 5), 0),
              stencils::proteinMatching());
}

TEST(DependenceAnalysis, ImportsClassified)
{
    // A statement reading a *forward* element always imports it.
    LoopNest nest("n", IVec{1, 1}, IVec{4, 4});
    Statement s;
    s.name = "s";
    s.write = uniformAccess("A", IVec{0, 0});
    s.reads = {uniformAccess("A", IVec{-1, 0}),
               uniformAccess("A", IVec{0, 1}),  // distance (0,-1): import
               uniformAccess("A", IVec{0, 0})}; // distance (0,0): import
    nest.addStatement(s);
    DependenceInfo info = analyzeDependences(nest, 0);
    ASSERT_EQ(info.reads.size(), 3u);
    EXPECT_EQ(info.reads[0].kind, ReadKind::LoopCarriedFlow);
    EXPECT_EQ(info.reads[1].kind, ReadKind::Import);
    EXPECT_EQ(info.reads[2].kind, ReadKind::Import);
    EXPECT_EQ(info.flowDistances().size(), 1u);
}

TEST(DependenceAnalysis, ReadsOfOtherArraysIgnored)
{
    LoopNest nest("n", IVec{1, 1}, IVec{4, 4});
    Statement s;
    s.name = "s";
    s.write = uniformAccess("A", IVec{0, 0});
    s.reads = {uniformAccess("A", IVec{-1, 0}),
               uniformAccess("W", IVec{0, 0})}; // weight table
    nest.addStatement(s);
    DependenceInfo info = analyzeDependences(nest, 0);
    EXPECT_EQ(info.reads.size(), 1u);
}

TEST(DependenceAnalysis, NonUniformReadRejected)
{
    LoopNest nest("n", IVec{1, 1}, IVec{4, 4});
    Statement s;
    s.name = "s";
    s.write = uniformAccess("A", IVec{0, 0});
    Access transposed;
    transposed.array = "A";
    transposed.coef = IMatrix({{0, 1}, {1, 0}});
    transposed.offset = IVec{0, 0};
    s.reads = {transposed};
    nest.addStatement(s);
    EXPECT_THROW(analyzeDependences(nest, 0), UovUserError);
}

TEST(DependenceAnalysis, NonUnimodularWriteRejected)
{
    LoopNest nest("n", IVec{1, 1}, IVec{4, 4});
    Statement s;
    s.name = "s";
    Access w;
    w.array = "A";
    w.coef = IMatrix({{2, 0}, {0, 1}});
    w.offset = IVec{0, 0};
    s.write = w;
    nest.addStatement(s);
    EXPECT_THROW(analyzeDependences(nest, 0), UovUserError);
}

TEST(RegionAnalysis, SimpleExampleCounts)
{
    // Figure 1(a) with live-out = last row (i == n).
    int64_t n = 6, m = 4;
    LoopNest nest = nests::simpleExample(n, m);
    RegionSummary s =
        analyzeRegions(nest, 0, live_out::hyperplane(0, n));
    EXPECT_EQ(s.written, n * m);
    // Imports: row 0 (m+1 incl. corner) plus column 0 (n entries).
    EXPECT_EQ(s.imported, (m + 1) + n);
    EXPECT_EQ(s.live_out, m);
    EXPECT_EQ(s.temporary, n * m - m);
    EXPECT_TRUE(s.hasTemporaries());
    EXPECT_FALSE(s.str().empty());
}

TEST(RegionAnalysis, EverythingLiveOutMeansNoTemporaries)
{
    LoopNest nest = nests::simpleExample(4, 4);
    RegionSummary s = analyzeRegions(nest, 0, live_out::everything());
    EXPECT_EQ(s.temporary, 0);
    EXPECT_FALSE(s.hasTemporaries());
}

TEST(Pipeline, SimpleExampleEndToEnd)
{
    int64_t n = 8, m = 6;
    PlanOptions opts;
    opts.live_out = live_out::hyperplane(0, n);
    MappingPlan plan =
        planStorageMapping(nests::simpleExample(n, m), 0, opts);

    EXPECT_EQ(plan.stencil, stencils::simpleExample());
    EXPECT_EQ(plan.search.best_uov, (IVec{1, 1}));
    // ISG is [1,n]x[1,m]; projection along (-1,1) spans -(n-1)..(m-1):
    // n+m-1 cells.  (Figure 1 counts the boundary input nodes too and
    // reports n+m+1; the kernel layer includes them explicitly.)
    EXPECT_EQ(plan.mapping.cellCount(), n + m - 1);
    EXPECT_EQ(plan.expanded_cells, n * m);
    EXPECT_GT(plan.expansionRatio(), 1.0);
    EXPECT_FALSE(plan.str().empty());
}

TEST(Pipeline, FivePointEndToEnd)
{
    MappingPlan plan =
        planStorageMapping(nests::fivePointStencil(50, 200), 0);
    EXPECT_EQ(plan.search.best_uov, (IVec{2, 0}));
    // Two rows of the (in-nest) ISG width.
    EXPECT_EQ(plan.mapping.cellCount(), 2 * 200);
    EXPECT_EQ(plan.expanded_cells, 50 * 200);
}

TEST(Pipeline, BoundedStorageObjective)
{
    PlanOptions opts;
    opts.objective = SearchObjective::BoundedStorage;
    MappingPlan plan =
        planStorageMapping(nests::fivePointStencil(40, 64), 0, opts);
    // Over a wide box the storage-optimal UOV is still (2,0).
    EXPECT_EQ(plan.search.best_uov, (IVec{2, 0}));
}

TEST(Pipeline, InitialUovAblation)
{
    PlanOptions opts;
    opts.use_initial_uov = true;
    MappingPlan plan =
        planStorageMapping(nests::fivePointStencil(40, 64), 0, opts);
    EXPECT_EQ(plan.search.best_uov, (IVec{5, 0}));
    EXPECT_EQ(plan.mapping.modClasses(), 5);
    // The initial UOV costs more storage than the searched one.
    MappingPlan best =
        planStorageMapping(nests::fivePointStencil(40, 64), 0);
    EXPECT_GT(plan.mapping.cellCount(), best.mapping.cellCount());
}

TEST(Pipeline, RejectsAllLiveOut)
{
    PlanOptions opts;
    opts.live_out = live_out::everything();
    EXPECT_THROW(planStorageMapping(nests::simpleExample(4, 4), 0, opts),
                 UovUserError);
}

} // namespace
} // namespace uov
