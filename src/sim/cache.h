/**
 * @file
 * A set-associative, write-allocate LRU cache model.
 *
 * Part of the testbed substitute (see DESIGN.md): the paper measured
 * on a Pentium Pro, an Ultra 2 and an Alpha 21164; we replay each
 * kernel's exact address stream through configurable cache hierarchies
 * so the 1998 memory-system shapes are reproducible deterministically
 * on any host.
 */

#ifndef UOV_SIM_CACHE_H
#define UOV_SIM_CACHE_H

#include <cstdint>
#include <string>
#include <vector>

namespace uov {

/** Geometry of one cache level. */
struct CacheConfig
{
    std::string name;
    int64_t size_bytes = 0;
    int64_t line_bytes = 0;
    int64_t associativity = 0;

    int64_t sets() const;
    void validate() const;
};

/** One cache level with LRU replacement. */
class Cache
{
  public:
    explicit Cache(CacheConfig config);

    const CacheConfig &config() const { return _config; }

    /**
     * Access the line containing @p addr; true on hit.  Write hits
     * and fills mark the line dirty (write-allocate, write-back);
     * evicting a dirty line counts a writeback.
     */
    bool access(uint64_t addr, bool is_write = false);

    uint64_t hits() const { return _hits; }
    uint64_t misses() const { return _misses; }
    uint64_t accesses() const { return _hits + _misses; }
    uint64_t writebacks() const { return _writebacks; }
    double missRate() const;

    /** Drop all contents and zero the statistics. */
    void reset();

  private:
    CacheConfig _config;
    int64_t _sets;
    int64_t _assoc;
    uint64_t _set_mask;
    unsigned _line_shift;
    unsigned _set_shift;

    struct Way
    {
        uint64_t tag = 0;
        uint64_t lru = 0; ///< last-use stamp
        bool valid = false;
        bool dirty = false;
    };
    std::vector<Way> _ways; ///< sets x associativity, row-major

    uint64_t _stamp = 0;
    uint64_t _hits = 0;
    uint64_t _misses = 0;
    uint64_t _writebacks = 0;
};

} // namespace uov

#endif // UOV_SIM_CACHE_H
