/**
 * @file
 * C code generation for OV-mapped loop nests (Section 4: "After
 * selecting an occupancy vector ... we must determine a storage
 * mapping in order to generate code").
 *
 * Given a loop nest, a mapping plan, and a schedule choice, emits a
 * self-contained C function:
 *
 *   void kernel(double *output);
 *
 * with the temporary array declared at exactly
 * plan.mapping.cellCount() elements and every access routed through
 * SM(q) = mv.q + shift + modterm.  Supported schedules: the original
 * lexicographic order (1- to 6-D nests), rectangular tiling of a
 * skewed space (2-D, Section 2's tiling), and a register-tiled
 * variant (innermost unroll + second-innermost unroll-and-jam with
 * factors picked by the regcost model, legality-checked against the
 * dependence distances).  The generated text is deterministic; the
 * integration tests and the codegen fuzz oracle compile it through
 * the JIT pipeline (codegen/jit.h) and compare bit-exactly against
 * interpretKernel, the C++ interpreter oracle.
 */

#ifndef UOV_CODEGEN_CODEGEN_H
#define UOV_CODEGEN_CODEGEN_H

#include <optional>
#include <string>
#include <vector>

#include "analysis/pipeline.h"
#include "geometry/matrix.h"
#include "ir/program.h"

namespace uov {

/** How the generated loops are ordered. */
enum class GenSchedule
{
    Lexicographic, ///< original program order
    SkewedTiled,   ///< rectangular tiles of the skewed space
    RegisterTiled, ///< unroll-and-jam in program order (regcost.h)
};

/** Storage discipline of the generated temporary array. */
enum class GenStorage
{
    Expanded, ///< full array over the iteration box (baseline)
    OvMapped, ///< plan.mapping's cells
};

/**
 * Code-generation parameters.
 *
 * Options are validated up front: tile_sizes is meaningful only for
 * SkewedTiled (exactly two sizes >= 1) and must be empty otherwise;
 * unroll/jam are meaningful only for RegisterTiled, where 0 asks the
 * regcost model to pick and an explicit jam must pass jamLegal.
 */
struct CodegenOptions
{
    GenSchedule schedule = GenSchedule::Lexicographic;
    GenStorage storage = GenStorage::OvMapped;
    std::vector<int64_t> tile_sizes; ///< SkewedTiled only: two sizes
    int64_t unroll = 0; ///< RegisterTiled innermost factor (0 = auto)
    int64_t jam = 0;    ///< RegisterTiled jam factor (0 = auto)
    std::string function_name = "uov_kernel";
};

/** A generated compilation unit. */
struct GeneratedCode
{
    std::string source;        ///< complete C translation unit
    std::string function_name; ///< exported symbol
    int64_t temp_cells;        ///< temporary array size in elements
    int64_t unroll = 1;        ///< innermost unroll actually emitted
    int64_t jam = 1;           ///< jam factor actually emitted
};

/**
 * Generate C for @p nest's statement 0 with @p plan's storage mapping.
 *
 * The emitted function signature is
 *   void <name>(double *output);
 * where boundary values follow the canned bval() convention (see the
 * generated comment) and output receives one value per
 * iteration-space point on the final hyperplane of dimension 0.
 *
 * @pre the nest is 1- to 6-D with a single statement whose reads all
 *      carry constant loop-carried distances (the paper's program
 *      class); SkewedTiled additionally requires depth 2
 */
GeneratedCode generateC(const LoopNest &nest, const MappingPlan &plan,
                        const CodegenOptions &options = {});

/**
 * The interpreter oracle: run @p nest's statement-0 computation (the
 * exact double-precision recurrence generateC emits) under the
 * original lexicographic order with fully expanded storage, and
 * return the final q0-hyperplane row-major over dimensions 1..d-1.
 * Generated kernels of every (schedule, storage) combination must
 * reproduce this vector bit-for-bit; the codegen fuzz oracle and the
 * test matrix both compare against it.
 */
std::vector<double> interpretKernel(const LoopNest &nest);

/** Elements in the output row (1 when the nest is 1-D). */
int64_t outputCellCount(const LoopNest &nest);

/**
 * Helper for tests/examples: compile @p code with the host C compiler
 * into a shared object under @p work_dir and return the .so path.
 * Unlike JitCompiler this never caches: the output lands at
 * <work_dir>/<function_name>.so unconditionally.
 * @throws UovError when no compiler is available or compilation fails
 *         (the message carries the compiler's stderr)
 */
std::string compileToSharedObject(const GeneratedCode &code,
                                  const std::string &work_dir);

} // namespace uov

#endif // UOV_CODEGEN_CODEGEN_H
