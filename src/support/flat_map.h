/**
 * @file
 * Flat, arena-backed containers for the search core.
 *
 *  - ArenaVector<T>: a growable array of trivially-copyable elements
 *    whose storage comes from an Arena (doubling growth; the old block
 *    is abandoned to the arena, which is the bump-allocation deal).
 *  - PackedCoordMap<Value>: an open-addressing hash map whose keys are
 *    packed fixed-dimension int64 coordinate tuples.  Entries are
 *    identified by dense 32-bit handles (insertion order), so client
 *    structures -- frontiers, heaps, memo stacks -- can hold 4-byte
 *    handles instead of copied coordinate vectors.  Handles stay
 *    stable across rehash; only the slot index is rebuilt.
 *
 * Both containers are single-threaded and never run destructors; see
 * support/arena.h for the lifetime rules.
 */

#ifndef UOV_SUPPORT_FLAT_MAP_H
#define UOV_SUPPORT_FLAT_MAP_H

#include <cstdint>
#include <cstring>
#include <type_traits>

#include "support/arena.h"
#include "support/error.h"

namespace uov {

/** Growable trivially-copyable array on an Arena. */
template <typename T>
class ArenaVector
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "ArenaVector grows by memcpy");

  public:
    explicit ArenaVector(Arena &arena, size_t initial_capacity = 16)
        : _arena(&arena)
    {
        reserve(initial_capacity ? initial_capacity : 1);
    }

    size_t size() const { return _size; }
    size_t capacity() const { return _capacity; }
    bool empty() const { return _size == 0; }

    T *data() { return _data; }
    const T *data() const { return _data; }

    T &operator[](size_t i) { return _data[i]; }
    const T &operator[](size_t i) const { return _data[i]; }

    T &back() { return _data[_size - 1]; }

    void
    push_back(const T &v)
    {
        if (_size == _capacity)
            reserve(_capacity * 2);
        _data[_size++] = v;
    }

    void pop_back() { --_size; }

    /** Drop all elements; capacity (and arena bytes) are kept. */
    void clear() { _size = 0; }

    void
    reserve(size_t capacity)
    {
        if (capacity <= _capacity)
            return;
        T *grown = _arena->allocateArray<T>(capacity);
        if (_size)
            std::memcpy(grown, _data, _size * sizeof(T));
        _data = grown;
        _capacity = capacity;
    }

  private:
    Arena *_arena;
    T *_data = nullptr;
    size_t _size = 0;
    size_t _capacity = 0;
};

/**
 * Open-addressing (linear probing) hash map over packed coordinate
 * keys.  Keys are @p dim consecutive int64 coordinates; values must be
 * trivially copyable.  New entries get a value-initialized Value{}.
 */
template <typename Value>
class PackedCoordMap
{
    static_assert(std::is_trivially_copyable_v<Value>,
                  "PackedCoordMap stores values in arena memory");

  public:
    /** Returned by find() when the key is absent. */
    static constexpr uint32_t kNone = UINT32_MAX;

    PackedCoordMap(Arena &arena, size_t dim,
                   size_t initial_slot_count = 64)
        : _arena(&arena), _dim(dim), _keys(arena, 16 * dim),
          _values(arena, 16)
    {
        UOV_CHECK(dim > 0, "PackedCoordMap needs dimension >= 1");
        size_t slots = 16;
        while (slots < initial_slot_count)
            slots *= 2;
        _slot_mask = slots - 1;
        _slots = arena.allocateArray<uint32_t>(slots);
        std::memset(_slots, 0xff, slots * sizeof(uint32_t));
    }

    size_t dim() const { return _dim; }
    uint32_t size() const { return static_cast<uint32_t>(_values.size()); }

    /** Handle of @p coords, or kNone when absent. */
    uint32_t
    find(const int64_t *coords) const
    {
        size_t at = hashKey(coords) & _slot_mask;
        for (;; at = (at + 1) & _slot_mask) {
            uint32_t h = _slots[at];
            if (h == kNone)
                return kNone;
            if (keyEquals(h, coords))
                return h;
        }
    }

    /**
     * Handle of @p coords, inserting a value-initialized entry when
     * absent.  @p inserted (optional) reports which case happened.
     */
    uint32_t
    findOrInsert(const int64_t *coords, bool *inserted = nullptr)
    {
        size_t at = hashKey(coords) & _slot_mask;
        for (;; at = (at + 1) & _slot_mask) {
            uint32_t h = _slots[at];
            if (h == kNone)
                break;
            if (keyEquals(h, coords)) {
                if (inserted)
                    *inserted = false;
                return h;
            }
        }
        UOV_CHECK(_values.size() < kNone,
                  "PackedCoordMap exceeded 2^32 - 1 entries");
        auto handle = static_cast<uint32_t>(_values.size());
        for (size_t c = 0; c < _dim; ++c)
            _keys.push_back(coords[c]);
        _values.push_back(Value{});
        _slots[at] = handle;
        if (inserted)
            *inserted = true;
        // Rehash at 70% load so probe chains stay short.
        if (_values.size() * 10 > (_slot_mask + 1) * 7)
            rehash();
        return handle;
    }

    Value &value(uint32_t handle) { return _values[handle]; }
    const Value &value(uint32_t handle) const { return _values[handle]; }

    /** The packed coordinates of @p handle (dim() int64s). */
    const int64_t *
    key(uint32_t handle) const
    {
        return _keys.data() + size_t{handle} * _dim;
    }

  private:
    uint64_t
    hashKey(const int64_t *coords) const
    {
        // SplitMix64-style per-coordinate mixing: cheap, and strong
        // enough that linear probing stays near one probe per lookup.
        uint64_t h = 0x9e3779b97f4a7c15ULL ^ (_dim * 0xff51afd7ed558ccdULL);
        for (size_t c = 0; c < _dim; ++c) {
            auto x = static_cast<uint64_t>(coords[c]);
            x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
            x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
            h = (h ^ (x ^ (x >> 31))) * 0x2545f4914f6cdd1dULL;
        }
        return h ^ (h >> 29);
    }

    bool
    keyEquals(uint32_t handle, const int64_t *coords) const
    {
        return std::memcmp(key(handle), coords,
                           _dim * sizeof(int64_t)) == 0;
    }

    void
    rehash()
    {
        size_t slots = (_slot_mask + 1) * 2;
        _slots = _arena->allocateArray<uint32_t>(slots);
        std::memset(_slots, 0xff, slots * sizeof(uint32_t));
        _slot_mask = slots - 1;
        for (uint32_t h = 0; h < _values.size(); ++h) {
            size_t at = hashKey(key(h)) & _slot_mask;
            while (_slots[at] != kNone)
                at = (at + 1) & _slot_mask;
            _slots[at] = h;
        }
    }

    Arena *_arena;
    size_t _dim;
    ArenaVector<int64_t> _keys;
    ArenaVector<Value> _values;
    uint32_t *_slots = nullptr;
    size_t _slot_mask = 0;
};

} // namespace uov

#endif // UOV_SUPPORT_FLAT_MAP_H
