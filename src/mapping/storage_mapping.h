/**
 * @file
 * OV-based storage mappings (Section 4).
 *
 * A storage mapping sends an iteration point q to an index in
 * one-dimensional memory:
 *
 *     SM_ov(q) = mv . q + shift + modterm
 *
 * where mv maps iterations to relative locations (kernel = the OV
 * line), shift makes the result non-negative over the ISG, and modterm
 * separates the gcd(ov) storage classes of a non-prime OV -- either
 * interleaved (classes alternate in memory) or blocked (each class
 * gets a contiguous block), exactly the two layouts of Section 4.2 /
 * Figure 5.
 *
 * The 2-D construction follows the paper literally (mv = (-j, i)); the
 * d-dimensional construction generalizes it through a unimodular
 * completion of the primitive OV, with the projected coordinates
 * linearized row-major over the projected bounding box.
 */

#ifndef UOV_MAPPING_STORAGE_MAPPING_H
#define UOV_MAPPING_STORAGE_MAPPING_H

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/ivec.h"
#include "geometry/polyhedron.h"

namespace uov {

/** Layouts for the gcd(ov) classes of a non-prime OV (Section 4.2). */
enum class ModLayout
{
    Interleaved, ///< classes alternate: SM = mv.q + (alpha.q mod g)
    Blocked,     ///< contiguous blocks: SM = mv'.q + (alpha.q mod g)*L
};

/**
 * A concrete, evaluable OV storage mapping over a bounded ISG.
 *
 * Guarantees (verified in tests):
 *  - SM(q + ov) == SM(q) for all q (requirement 1, Section 4.1);
 *  - SM(q) is an integer in [0, cellCount()) for every integer ISG
 *    point (requirements 2-3: integrality and consecutiveness).
 */
class StorageMapping
{
  public:
    /**
     * Build the mapping for @p ov over @p isg.
     *
     * @param block_pad extra cells appended to each class block in the
     *        Blocked layout (array padding, Section 4: "it would not
     *        be difficult to incorporate data layout techniques such
     *        as array padding"); breaks power-of-two block strides
     *        that alias in low-associativity caches.  Ignored for
     *        prime OVs and the Interleaved layout.
     * @pre ov is nonzero and matches the ISG dimension
     */
    static StorageMapping create(const IVec &ov, const Polyhedron &isg,
                                 ModLayout layout = ModLayout::Interleaved,
                                 int64_t block_pad = 0);

    /** Evaluate SM(q). */
    int64_t operator()(const IVec &q) const;

    /** Number of cells to allocate (range of SM over the ISG). */
    int64_t cellCount() const { return _cells; }

    const IVec &ov() const { return _ov; }
    ModLayout layout() const { return _layout; }

    /** gcd of the OV coordinates (1 for prime OVs). */
    int64_t modClasses() const { return _g; }

    /**
     * The linear part of the mapping, one vector per linearized
     * projected coordinate (a single vector in 2-D: the paper's mv).
     */
    const std::vector<IVec> &mappingVectors() const { return _mv; }

    /**
     * Symbolic pieces for code generation: SM(q) for a prime OV is
     *   sum_k (mv_k.q - rowLow(k)) * rowStride(k)
     * and for a non-prime OV the mod class (alpha.q mod g) is folded
     * in per the layout (interleaved: linear*g + class; blocked:
     * linear + class*modFactor()).
     */
    const IVec &alphaVector() const { return _alpha; }
    int64_t rowLow(size_t k) const { return _lo.at(k); }
    int64_t rowStride(size_t k) const { return _stride.at(k); }
    int64_t modFactor() const { return _mod_factor; }

    /** Human-readable form, e.g. "(0,2).q + (q0 mod 2) + 0". */
    std::string str() const;

  private:
    StorageMapping() = default;

    IVec _ov;
    ModLayout _layout = ModLayout::Interleaved;
    int64_t _g = 1;           ///< content(ov)
    IVec _alpha;              ///< class selector: alpha.q mod g
    std::vector<IVec> _mv;    ///< projection rows (1 in 2-D)
    std::vector<int64_t> _lo; ///< per-row minimum over the ISG
    std::vector<int64_t> _stride; ///< per-row linearization stride
    int64_t _mod_factor = 0;  ///< multiplier of the mod class
    int64_t _cells = 0;
};

} // namespace uov

#endif // UOV_MAPPING_STORAGE_MAPPING_H
