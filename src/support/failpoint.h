/**
 * @file
 * Named fail points for deterministic fault injection.
 *
 * Production code marks interesting sites with
 * `failpoint::fire("site_name")`.  Disarmed (the default, and the only
 * state unless `UOV_FAILPOINTS` is set or a test arms one) the call is
 * a single relaxed atomic load.  An armed site draws from its own
 * seeded SplitMix64 stream and, with the configured probability,
 * either throws FailPointError or sleeps a bounded delay -- letting
 * tests and the fault fuzz oracle exercise error-isolation and timeout
 * paths reproducibly.
 *
 * Spec grammar (env var or ScopedFailPoints):
 *
 *     UOV_FAILPOINTS=site:prob[:seed[:throw|delayN]][,site2:...]
 *
 * e.g. `cache_insert:0.5:7:throw,task_start:1:1:delay3`.  The action
 * defaults to throw; delays are clamped to 100 ms so a misconfigured
 * spec cannot wedge a batch.
 */

#ifndef UOV_SUPPORT_FAILPOINT_H
#define UOV_SUPPORT_FAILPOINT_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/error.h"

namespace uov {
namespace failpoint {

/** Thrown by an armed fail point configured with the throw action. */
class FailPointError : public UovError
{
  public:
    using UovError::UovError;
};

/** What an armed fail point does when it fires. */
enum class Action
{
    Throw, ///< throw FailPointError from the marked site
    Delay, ///< sleep delay_ms (clamped) at the marked site
};

/** One site's arming configuration. */
struct Config
{
    double probability = 1.0; ///< chance each hit fires, in [0, 1]
    uint64_t seed = 1;        ///< per-site SplitMix64 stream seed
    Action action = Action::Throw;
    int64_t delay_ms = 1;     ///< Delay action only; clamped to 100
};

/** Process-wide registry of armed fail points. */
class Registry
{
  public:
    /** The singleton; arms itself from UOV_FAILPOINTS on first use. */
    static Registry &instance();

    /** Arm (or re-arm, resetting the stream) one site. */
    void arm(const std::string &site, Config config);

    /** Disarm one site; its fire count is retained. */
    void disarm(const std::string &site);

    /** Disarm every site and zero all fire counts. */
    void clear();

    /**
     * Arm sites from a spec string (see file comment for the
     * grammar).  Returns false and leaves @p error describing the
     * problem on a malformed spec; earlier well-formed entries stay
     * armed.
     */
    bool armFromSpec(const std::string &spec,
                     std::string *error = nullptr);

    /**
     * Evaluate one site hit.  Disarmed sites return after one atomic
     * load.  Armed sites draw from their stream and may throw
     * FailPointError or sleep, incrementing the fire counters.
     */
    void hit(const std::string &site);

    /** Times @p site actually fired (threw or delayed). */
    uint64_t fires(const std::string &site) const;

    /** Total fires across all sites since the last clear(). */
    uint64_t
    totalFires() const
    {
        return _total_fires.load(std::memory_order_relaxed);
    }

    /** Currently armed site names, sorted. */
    std::vector<std::string> armedSites() const;

  private:
    Registry();

    struct Point
    {
        Config config;
        uint64_t rng_state = 0;
        uint64_t fire_count = 0;
        bool armed = false;
    };

    mutable std::mutex _mutex;
    std::unordered_map<std::string, Point> _points;
    std::atomic<size_t> _armed_count{0};
    std::atomic<uint64_t> _total_fires{0};
};

/** Mark a fail-point site; near-free unless the site is armed. */
inline void
fire(const char *site)
{
    Registry::instance().hit(site);
}

/**
 * RAII arming for tests and the fuzzer: arms a spec on construction,
 * clears the whole registry (counts included) on destruction so state
 * never leaks across cases.
 */
class ScopedFailPoints
{
  public:
    ScopedFailPoints() = default;

    explicit
    ScopedFailPoints(const std::string &spec)
    {
        std::string error;
        bool ok = Registry::instance().armFromSpec(spec, &error);
        UOV_CHECK(ok, "bad fail-point spec '" << spec << "': " << error);
    }

    ~ScopedFailPoints() { Registry::instance().clear(); }

    ScopedFailPoints(const ScopedFailPoints &) = delete;
    ScopedFailPoints &operator=(const ScopedFailPoints &) = delete;
};

} // namespace failpoint
} // namespace uov

#endif // UOV_SUPPORT_FAILPOINT_H
