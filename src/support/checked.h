/**
 * @file
 * Checked 64-bit integer arithmetic.
 *
 * All exact lattice/polyhedral computation in the library runs on
 * int64_t.  These helpers throw UovOverflowError instead of silently
 * wrapping, so a search over a pathological stencil fails loudly.
 */

#ifndef UOV_SUPPORT_CHECKED_H
#define UOV_SUPPORT_CHECKED_H

#include <cstdint>
#include <numeric>

#include "support/error.h"

namespace uov {

/** Add with overflow detection. */
inline int64_t
checkedAdd(int64_t a, int64_t b)
{
    int64_t r;
    if (__builtin_add_overflow(a, b, &r))
        throw UovOverflowError("add");
    return r;
}

/** Subtract with overflow detection. */
inline int64_t
checkedSub(int64_t a, int64_t b)
{
    int64_t r;
    if (__builtin_sub_overflow(a, b, &r))
        throw UovOverflowError("sub");
    return r;
}

/** Multiply with overflow detection. */
inline int64_t
checkedMul(int64_t a, int64_t b)
{
    int64_t r;
    if (__builtin_mul_overflow(a, b, &r))
        throw UovOverflowError("mul");
    return r;
}

/** Negate with overflow detection (INT64_MIN has no negation). */
inline int64_t
checkedNeg(int64_t a)
{
    if (a == INT64_MIN)
        throw UovOverflowError("neg");
    return -a;
}

/** |a| with overflow detection. */
inline int64_t
checkedAbs(int64_t a)
{
    return a < 0 ? checkedNeg(a) : a;
}

/**
 * Non-negative gcd; gcd(0, 0) == 0.  Uses std::gcd on magnitudes, with
 * the INT64_MIN edge handled by checkedAbs.
 */
inline int64_t
gcd64(int64_t a, int64_t b)
{
    return std::gcd(checkedAbs(a), checkedAbs(b));
}

/**
 * Floor division: floorDiv(7, 2) == 3, floorDiv(-7, 2) == -4.
 * @pre b != 0
 */
inline int64_t
floorDiv(int64_t a, int64_t b)
{
    UOV_CHECK(b != 0, "floorDiv by zero");
    int64_t q = a / b;
    int64_t r = a % b;
    if (r != 0 && ((r < 0) != (b < 0)))
        --q;
    return q;
}

/** Ceiling division. @pre b != 0 */
inline int64_t
ceilDiv(int64_t a, int64_t b)
{
    UOV_CHECK(b != 0, "ceilDiv by zero");
    return -floorDiv(-a, b);
}

/** Mathematical mod: result always in [0, b). @pre b > 0 */
inline int64_t
floorMod(int64_t a, int64_t b)
{
    UOV_CHECK(b > 0, "floorMod requires positive modulus");
    int64_t r = a % b;
    if (r < 0)
        r += b;
    return r;
}

} // namespace uov

#endif // UOV_SUPPORT_CHECKED_H
