#include "support/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <exception>

#include "support/error.h"
#include "support/trace.h"

namespace uov {

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    _workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        _workers.emplace_back([this, t] { workerLoop(t); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _stopping = true;
    }
    _cv.notify_all();
    for (auto &w : _workers)
        w.join();
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    // Only when tracing is live does a task pay for the wrapper that
    // splits queue wait from run time; the disabled path moves the
    // callable untouched.
    if (trace::tracingEnabled()) {
        auto enqueued = std::chrono::steady_clock::now();
        task = [enqueued, inner = std::move(task)] {
            auto wait_us =
                std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - enqueued)
                    .count();
            TRACE_COUNTER("pool.queue_wait", "us", wait_us);
            TRACE_SPAN("pool.task");
            inner();
        };
    }
    {
        std::lock_guard<std::mutex> lock(_mutex);
        UOV_CHECK(!_stopping, "submit on a stopping ThreadPool");
        _queue.push_back(std::move(task));
    }
    _cv.notify_one();
}

void
ThreadPool::workerLoop(unsigned index)
{
    trace::Tracer::setCurrentThreadName("pool-worker-" +
                                        std::to_string(index));
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _cv.wait(lock,
                     [this] { return _stopping || !_queue.empty(); });
            if (_queue.empty())
                return; // stopping and drained
            task = std::move(_queue.front());
            _queue.pop_front();
        }
        task(); // packaged_task captures any exception in the future
    }
}

void
ThreadPool::parallelFor(size_t n, size_t chunks,
                        const std::function<void(size_t, size_t)> &body)
{
    if (n == 0)
        return;
    chunks = std::min(chunks, n);
    if (chunks <= 1) {
        body(0, n);
        return;
    }
    size_t per = (n + chunks - 1) / chunks;
    std::vector<std::future<void>> futures;
    futures.reserve(chunks);
    for (size_t c = 0; c < chunks; ++c) {
        size_t begin = c * per;
        size_t end = std::min(n, begin + per);
        if (begin >= end)
            break;
        futures.push_back(submit([&body, begin, end] {
            body(begin, end);
        }));
    }
    std::exception_ptr first;
    for (auto &f : futures) {
        try {
            f.get();
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    if (first)
        std::rethrow_exception(first);
}

ThreadPool &
ThreadPool::shared()
{
    static ThreadPool pool;
    return pool;
}

} // namespace uov
