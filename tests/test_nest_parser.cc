/**
 * @file
 * Tests for the nest text format: valid inputs, precise error
 * reporting, round-trips, and end-to-end through the pipeline.
 */

#include <gtest/gtest.h>

#include "analysis/pipeline.h"
#include "driver/nest_parser.h"
#include "fuzz/generator.h"
#include "support/error.h"
#include "support/rng.h"

namespace uov {
namespace {

const char *kFivePoint =
    "# 5-point stencil\n"
    "nest stencil5\n"
    "bounds 1..18 0..99\n"
    "statement B\n"
    "  write B[0,0]\n"
    "  read  B[-1,-2]\n"
    "  read  B[-1,-1]\n"
    "  read  B[-1,0]\n"
    "  read  B[-1,1]\n"
    "  read  B[-1,2]\n";

TEST(NestParser, ParsesFivePoint)
{
    LoopNest nest = parseNestString(kFivePoint);
    EXPECT_EQ(nest.name(), "stencil5");
    EXPECT_EQ(nest.depth(), 2u);
    EXPECT_EQ(nest.lo(), (IVec{1, 0}));
    EXPECT_EQ(nest.hi(), (IVec{18, 99}));
    ASSERT_EQ(nest.statements().size(), 1u);
    EXPECT_EQ(nest.statement(0).reads.size(), 5u);
    EXPECT_EQ(nest.statement(0).write.array, "B");
    EXPECT_EQ(nest.statement(0).reads[0].offset, (IVec{-1, -2}));
}

TEST(NestParser, ParsedNestRunsThroughPipeline)
{
    LoopNest nest = parseNestString(kFivePoint);
    MappingPlan plan = planStorageMapping(nest, 0);
    EXPECT_EQ(plan.search.best_uov, (IVec{2, 0}));
    EXPECT_EQ(plan.mapping.cellCount(), 200);
}

TEST(NestParser, MultiStatementBlocks)
{
    LoopNest nest = parseNestString(
        "nest two\n"
        "bounds 1..4 1..4\n"
        "statement E\n"
        "  write E[0,0]\n"
        "  read E[0,-1]\n"
        "statement D\n"
        "  write D[0,0]\n"
        "  read D[-1,0]\n"
        "  read E[0,0]\n");
    ASSERT_EQ(nest.statements().size(), 2u);
    EXPECT_EQ(nest.statement(1).reads[1].array, "E");
}

TEST(NestParser, CommentsAndWhitespaceTolerated)
{
    LoopNest nest = parseNestString(
        "\n  # leading comment\n"
        "nest  n   # trailing comment\n"
        "\t bounds 0..3 0..3\n"
        "statement s\n"
        "  write A[0,0]   # the write\n"
        "  read A[-1,-1]\n\n");
    EXPECT_EQ(nest.tripCount(), 16);
}

TEST(NestParser, ThreeDimensional)
{
    LoopNest nest = parseNestString(
        "nest heat\n"
        "bounds 1..8 0..15 0..15\n"
        "statement H\n"
        "  write H[0,0,0]\n"
        "  read H[-1,0,0]\n"
        "  read H[-1,1,0]\n"
        "  read H[-1,-1,0]\n"
        "  read H[-1,0,1]\n"
        "  read H[-1,0,-1]\n");
    EXPECT_EQ(nest.depth(), 3u);
    MappingPlan plan = planStorageMapping(nest, 0);
    EXPECT_EQ(plan.search.best_uov, (IVec{2, 0, 0}));
}

TEST(NestParser, ErrorsCarryLineNumbers)
{
    auto expect_error = [](const std::string &text,
                           const std::string &needle) {
        try {
            parseNestString(text);
            FAIL() << "expected parse failure for: " << text;
        } catch (const UovUserError &e) {
            EXPECT_NE(std::string(e.what()).find(needle),
                      std::string::npos)
                << e.what();
        }
    };
    expect_error("nest n\nbounds 0..3\nstatement s\n  write A(0)\n",
                 "line 4");
    expect_error("nest n\nbounds 0-3\n", "bad range");
    expect_error("nest n\nbounds 0..3\nfrobnicate\n",
                 "unknown keyword");
    expect_error("nest n\nbounds 0..3\n  read A[0]\n",
                 "outside a statement");
    expect_error("nest n\nbounds 0..3\nstatement s\n  write A[x]\n",
                 "bad offset");
}

TEST(NestParser, StructuralErrors)
{
    EXPECT_THROW(parseNestString(""), UovUserError);
    EXPECT_THROW(parseNestString("nest n\n"), UovUserError);
    EXPECT_THROW(parseNestString("nest n\nbounds 0..3\n"),
                 UovUserError);
    // Statement without a write.
    EXPECT_THROW(parseNestString("nest n\nbounds 0..3\nstatement s\n"
                                 "  read A[0]\n"),
                 UovUserError);
    // Rank mismatch between bounds and accesses.
    EXPECT_THROW(parseNestString("nest n\nbounds 0..3 0..3\n"
                                 "statement s\n  write A[0]\n"),
                 UovUserError);
    // Two writes in one statement.
    EXPECT_THROW(parseNestString("nest n\nbounds 0..3\nstatement s\n"
                                 "  write A[0]\n  write B[0]\n"),
                 UovUserError);
}

TEST(NestParser, RoundTrip)
{
    LoopNest original = parseNestString(kFivePoint);
    std::string text = formatNest(original);
    LoopNest reparsed = parseNestString(text);
    EXPECT_EQ(reparsed.name(), original.name());
    EXPECT_EQ(reparsed.lo(), original.lo());
    EXPECT_EQ(reparsed.hi(), original.hi());
    ASSERT_EQ(reparsed.statements().size(),
              original.statements().size());
    for (size_t i = 0; i < original.statements().size(); ++i) {
        EXPECT_EQ(reparsed.statement(i).write.offset,
                  original.statement(i).write.offset);
        EXPECT_EQ(reparsed.statement(i).reads.size(),
                  original.statement(i).reads.size());
    }
}

// formatNest must be an exact left inverse of parseNest over the
// whole space the fuzzer draws from: format(parse(format(n))) ==
// format(n) and the reparsed IR matches field by field.  1000
// generated nests cover 2-D/3-D bounds (including negative corners),
// 1..3 statements, and stencils with mixed-sign offsets.
TEST(NestParser, FuzzedRoundTrip1000)
{
    SplitMix64 rng(20260805);
    for (int i = 0; i < 1000; ++i) {
        LoopNest nest = fuzz::randomNest(rng);
        std::string text = formatNest(nest);
        LoopNest reparsed = parseNestString(text);
        ASSERT_EQ(formatNest(reparsed), text) << text;
        EXPECT_EQ(reparsed.name(), nest.name());
        EXPECT_EQ(reparsed.lo(), nest.lo());
        EXPECT_EQ(reparsed.hi(), nest.hi());
        ASSERT_EQ(reparsed.statements().size(),
                  nest.statements().size());
        for (size_t s = 0; s < nest.statements().size(); ++s) {
            const Statement &a = nest.statement(s);
            const Statement &b = reparsed.statement(s);
            EXPECT_EQ(b.name, a.name);
            EXPECT_EQ(b.write.array, a.write.array);
            EXPECT_EQ(b.write.offset, a.write.offset);
            ASSERT_EQ(b.reads.size(), a.reads.size());
            for (size_t r = 0; r < a.reads.size(); ++r) {
                EXPECT_EQ(b.reads[r].array, a.reads[r].array);
                EXPECT_EQ(b.reads[r].offset, a.reads[r].offset);
            }
        }
    }
}

// Comment and whitespace edge cases must parse to the same nest as
// the canonical form -- and the canonical form must contain none of
// them back.
TEST(NestParser, CommentAndWhitespaceEdgeCases)
{
    const char *messy =
        "\n"
        "   # leading blank line and indented comment\n"
        "nest   edgecase   \n"
        "\t bounds\t0..3   -2..2\n"
        "# comment between sections\n"
        "   statement   S\n"
        "\twrite S[0,0]   \n"
        "  read\t S[-1,2]\n"
        "\n"
        "  read  S[0,-1]  # trailing comment, stripped\n";
    LoopNest a = parseNestString(messy);
    EXPECT_EQ(a.name(), "edgecase");
    EXPECT_EQ(a.lo(), (IVec{0, -2}));
    EXPECT_EQ(a.hi(), (IVec{3, 2}));
    ASSERT_EQ(a.statements().size(), 1u);
    EXPECT_EQ(a.statement(0).reads.size(), 2u);

    std::string canon = formatNest(a);
    LoopNest b = parseNestString(canon);
    EXPECT_EQ(formatNest(b), canon);
    EXPECT_EQ(canon.find('\t'), std::string::npos);
}

} // namespace
} // namespace uov
