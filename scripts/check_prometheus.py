#!/usr/bin/env python3
"""Lint a Prometheus text-exposition (0.0.4) document.

Validates what a scraper actually depends on:

  * metric and label names match the Prometheus grammar
    ([a-zA-Z_:][a-zA-Z0-9_:]*, labels without the colon);
  * every sample line parses (name, optional labels, numeric value);
  * every series is preceded by a # TYPE for its family, and counter
    family names end in _total;
  * label values escape backslash, double-quote, and newline;
  * histogram families are well-formed: cumulative non-decreasing
    _bucket counts in le order, a final le="+Inf" bucket, and
    _count == the +Inf bucket count;
  * no duplicate series (same name + label set twice).

Usage:
    check_prometheus.py FILE [FILE ...]
    curl -s localhost:PORT/metrics | check_prometheus.py -
    check_prometheus.py --self-test

Exit status 0 when every input passes, 1 otherwise.  Prints one
summary line per input so CI logs show what was validated.
"""

import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# name{labels} value  -- labels optional; value is the rest.
SAMPLE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})?\s+(\S+)$")
LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def bad_escape(value):
    """True when a backslash escapes anything but \\, ", or n."""
    i = 0
    while i < len(value):
        if value[i] == "\\":
            if i + 1 >= len(value) or value[i + 1] not in '\\"n':
                return True
            i += 2
        else:
            i += 1
    return False


def parse_value(text):
    if text in ("+Inf", "-Inf", "NaN"):
        return float(text.replace("Inf", "inf"))
    return float(text)


def family_of(name):
    """The family a series belongs to (strip histogram suffixes)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check_exposition(text, label):
    errors = []
    types = {}          # family -> declared type
    seen_series = set() # (name, sorted label items)
    histograms = {}     # family -> list of (le, count)
    hist_counts = {}    # family -> _count value
    samples = 0

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                errors.append(f"{lineno}: malformed TYPE line: {line!r}")
                continue
            _, _, name, kind = parts
            if not METRIC_NAME.match(name):
                errors.append(f"{lineno}: bad metric name {name!r}")
            if kind not in ("counter", "gauge", "histogram",
                            "summary", "untyped"):
                errors.append(f"{lineno}: unknown type {kind!r}")
            if kind == "counter" and not name.endswith("_total"):
                errors.append(
                    f"{lineno}: counter {name!r} should end in _total")
            if name in types:
                errors.append(f"{lineno}: duplicate TYPE for {name!r}")
            types[name] = kind
            continue
        if line.startswith("#"):
            continue  # HELP or comment

        m = SAMPLE.match(line)
        if not m:
            errors.append(f"{lineno}: unparsable sample: {line!r}")
            continue
        name, _, labeltext, valuetext = m.groups()
        samples += 1
        labels = []
        if labeltext:
            consumed = 0
            for pair in LABEL_PAIR.finditer(labeltext):
                lname, lvalue = pair.groups()
                if not LABEL_NAME.match(lname):
                    errors.append(f"{lineno}: bad label name {lname!r}")
                if bad_escape(lvalue):
                    errors.append(
                        f"{lineno}: bad escape in label value {lvalue!r}")
                labels.append((lname, lvalue))
                consumed = pair.end()
            rest = labeltext[consumed:].strip(", ")
            if rest:
                errors.append(
                    f"{lineno}: trailing junk in labels: {rest!r}")
        try:
            value = parse_value(valuetext)
        except ValueError:
            errors.append(f"{lineno}: non-numeric value {valuetext!r}")
            continue

        series = (name, tuple(sorted(labels)))
        if series in seen_series:
            errors.append(f"{lineno}: duplicate series {series}")
        seen_series.add(series)

        family = family_of(name)
        if family not in types and name not in types:
            errors.append(f"{lineno}: sample {name!r} has no TYPE")
        if types.get(family) == "histogram":
            if name.endswith("_bucket"):
                le = dict(labels).get("le")
                if le is None:
                    errors.append(
                        f"{lineno}: histogram bucket without le label")
                else:
                    histograms.setdefault(family, []).append(
                        (parse_value(le), value))
            elif name.endswith("_count"):
                hist_counts[family] = value

    for family, buckets in histograms.items():
        les = [le for le, _ in buckets]
        counts = [c for _, c in buckets]
        if les != sorted(les):
            errors.append(f"{family}: le values not sorted: {les}")
        if counts != sorted(counts):
            errors.append(
                f"{family}: bucket counts not cumulative: {counts}")
        if not les or les[-1] != float("inf"):
            errors.append(f"{family}: missing le=\"+Inf\" bucket")
        elif family in hist_counts and counts[-1] != hist_counts[family]:
            errors.append(
                f"{family}: +Inf bucket {counts[-1]} != _count "
                f"{hist_counts[family]}")

    for err in errors:
        print(f"{label}: {err}", file=sys.stderr)
    print(f"{label}: {samples} samples, {len(types)} families, "
          f"{len(errors)} errors")
    return not errors


SELF_TEST_GOOD = """\
# TYPE uov_requests_total counter
uov_requests_total 42
# TYPE uov_queue_depth gauge
uov_queue_depth 0
# TYPE uov_latency_us histogram
uov_latency_us_bucket{le="1"} 1
uov_latency_us_bucket{le="3"} 4
uov_latency_us_bucket{le="+Inf"} 5
uov_latency_us_sum 37
uov_latency_us_count 5
# TYPE uov_build_info gauge
uov_build_info{version="a\\"b\\\\c\\n"} 1
"""

SELF_TEST_BAD = [
    "uov_no_type_total 1\n",
    "# TYPE uov_x counter\nuov_x 1\n",           # counter sans _total
    "# TYPE 9bad gauge\n9bad 1\n",               # bad name
    "# TYPE uov_g gauge\nuov_g one\n",           # non-numeric
    "# TYPE uov_g gauge\nuov_g 1\nuov_g 2\n",    # duplicate series
    # non-cumulative histogram, missing +Inf
    "# TYPE uov_h histogram\n"
    'uov_h_bucket{le="1"} 5\nuov_h_bucket{le="2"} 3\nuov_h_count 5\n',
]


def self_test():
    ok = check_exposition(SELF_TEST_GOOD, "self-test-good")
    if not ok:
        print("self-test: the good document failed", file=sys.stderr)
        return False
    for i, doc in enumerate(SELF_TEST_BAD):
        if check_exposition(doc, f"self-test-bad-{i}"):
            print(f"self-test: bad document {i} passed the linter",
                  file=sys.stderr)
            return False
    print("self-test: ok")
    return True


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    if argv[1] == "--self-test":
        return 0 if self_test() else 1
    ok = True
    for path in argv[1:]:
        if path == "-":
            text = sys.stdin.read()
            label = "<stdin>"
        else:
            with open(path) as f:
                text = f.read()
            label = path
        ok = check_exposition(text, label) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
