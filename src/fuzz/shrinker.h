/**
 * @file
 * Greedy test-case shrinker: take any failing FuzzCase and minimize
 * it while the caller's predicate still reports a failure.
 *
 * The passes are the classic delta-debugging moves specialized to the
 * UOV input space: drop dependence vectors, pull coordinates toward
 * zero (halving, then decrement), drop membership candidates, shrink
 * candidate coordinates, and collapse the ISG box.  Every proposed
 * mutation is validated (the dependence set must still form a legal
 * stencil) before the predicate runs, and passes repeat to a fixpoint,
 * so the result is 1-minimal with respect to the move set.
 *
 * The shrunk case prints as a paste-able repro: the case seed plus
 * the equivalent loop-nest text (parseable by uovfuzz --corpus and
 * uovc alike), with the candidate vectors as comments.
 */

#ifndef UOV_FUZZ_SHRINKER_H
#define UOV_FUZZ_SHRINKER_H

#include <functional>
#include <string>

#include "fuzz/oracles.h"

namespace uov {
namespace fuzz {

/** Re-test a candidate case: true means "still fails". */
using FailPredicate = std::function<bool(const FuzzCase &)>;

/** Counters describing one shrink run. */
struct ShrinkStats
{
    uint64_t attempts = 0;  ///< mutations proposed
    uint64_t accepted = 0;  ///< mutations that kept the failure
    uint64_t rounds = 0;    ///< full passes until fixpoint
};

/**
 * Greedily minimize @p failing under @p fails.
 * @pre fails(failing) is true (checked; returns the input otherwise)
 */
FuzzCase shrinkCase(const FuzzCase &failing, const FailPredicate &fails,
                    ShrinkStats *stats = nullptr);

/** The loop-nest text equivalent of a case (single statement). */
std::string caseToNestText(const FuzzCase &c);

/** Full paste-able repro block: seed, replay command, nest text. */
std::string reproString(const FuzzCase &c, const std::string &oracle,
                        const std::string &detail);

} // namespace fuzz
} // namespace uov

#endif // UOV_FUZZ_SHRINKER_H
