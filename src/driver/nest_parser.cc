#include "driver/nest_parser.h"

#include <optional>
#include <sstream>

#include "support/error.h"

namespace uov {

namespace {

/** Strip comments and surrounding whitespace. */
std::string
cleanLine(const std::string &raw)
{
    std::string s = raw;
    auto hash = s.find('#');
    if (hash != std::string::npos)
        s.erase(hash);
    auto b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    auto e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

[[noreturn]] void
fail(int line_no, const std::string &msg)
{
    throw UovUserError("nest parse error, line " +
                       std::to_string(line_no) + ": " + msg);
}

/** Parse "NAME[o1,o2,...]" into a uniform access. */
Access
parseAccess(const std::string &text, int line_no)
{
    auto lb = text.find('[');
    auto rb = text.rfind(']');
    if (lb == std::string::npos || rb == std::string::npos || rb < lb)
        fail(line_no, "expected NAME[o1,o2,...], got '" + text + "'");
    std::string name = text.substr(0, lb);
    if (name.empty())
        fail(line_no, "empty array name in '" + text + "'");

    std::vector<int64_t> offsets;
    std::stringstream ss(text.substr(lb + 1, rb - lb - 1));
    std::string tok;
    while (std::getline(ss, tok, ',')) {
        try {
            size_t used = 0;
            offsets.push_back(std::stoll(tok, &used));
            while (used < tok.size()) {
                if (tok[used] != ' ' && tok[used] != '\t')
                    fail(line_no, "bad offset '" + tok + "'");
                ++used;
            }
        } catch (const std::logic_error &) {
            fail(line_no, "bad offset '" + tok + "'");
        }
    }
    if (offsets.empty())
        fail(line_no, "access '" + text + "' has no offsets");
    return uniformAccess(name, IVec(std::move(offsets)));
}

} // namespace

LoopNest
parseNest(std::istream &in)
{
    std::string name;
    std::optional<IVec> lo, hi;
    std::vector<Statement> stmts;
    std::optional<Statement> current;

    auto flush_statement = [&](int line_no) {
        if (!current)
            return;
        if (current->write.array.empty())
            fail(line_no, "statement '" + current->name +
                              "' has no write access");
        stmts.push_back(std::move(*current));
        current.reset();
    };

    std::string raw;
    int line_no = 0;
    while (std::getline(in, raw)) {
        ++line_no;
        std::string line = cleanLine(raw);
        if (line.empty())
            continue;
        std::stringstream ss(line);
        std::string keyword;
        ss >> keyword;

        if (keyword == "nest") {
            ss >> name;
            if (name.empty())
                fail(line_no, "nest needs a name");
        } else if (keyword == "bounds") {
            std::vector<int64_t> los, his;
            std::string range;
            while (ss >> range) {
                auto dots = range.find("..");
                if (dots == std::string::npos)
                    fail(line_no, "bad range '" + range +
                                      "', expected lo..hi");
                try {
                    los.push_back(std::stoll(range.substr(0, dots)));
                    his.push_back(std::stoll(range.substr(dots + 2)));
                } catch (const std::logic_error &) {
                    fail(line_no, "bad range '" + range + "'");
                }
            }
            if (los.empty())
                fail(line_no, "bounds needs at least one range");
            lo = IVec(std::move(los));
            hi = IVec(std::move(his));
        } else if (keyword == "statement") {
            flush_statement(line_no);
            current.emplace();
            ss >> current->name;
            if (current->name.empty())
                fail(line_no, "statement needs a name");
        } else if (keyword == "write") {
            if (!current)
                fail(line_no, "'write' outside a statement block");
            if (!current->write.array.empty())
                fail(line_no, "statement already has a write");
            std::string rest;
            ss >> rest;
            current->write = parseAccess(rest, line_no);
        } else if (keyword == "read") {
            if (!current)
                fail(line_no, "'read' outside a statement block");
            std::string rest;
            ss >> rest;
            current->reads.push_back(parseAccess(rest, line_no));
        } else {
            fail(line_no, "unknown keyword '" + keyword + "'");
        }
    }
    flush_statement(line_no);

    UOV_REQUIRE(!name.empty(), "nest description has no 'nest' line");
    UOV_REQUIRE(lo.has_value(), "nest description has no 'bounds' line");
    UOV_REQUIRE(!stmts.empty(), "nest description has no statements");

    LoopNest nest(name, *lo, *hi);
    for (auto &s : stmts) {
        UOV_REQUIRE(s.write.offset.dim() == nest.depth(),
                    "statement '" << s.name << "' access rank "
                        << s.write.offset.dim()
                        << " does not match bounds rank "
                        << nest.depth());
        nest.addStatement(std::move(s));
    }
    return nest;
}

LoopNest
parseNestString(const std::string &text)
{
    std::istringstream iss(text);
    return parseNest(iss);
}

std::string
formatNest(const LoopNest &nest)
{
    std::ostringstream oss;
    oss << "nest " << nest.name() << "\n";
    oss << "bounds";
    for (size_t c = 0; c < nest.depth(); ++c)
        oss << " " << nest.lo()[c] << ".." << nest.hi()[c];
    oss << "\n";
    auto emit_access = [&](const Access &a) {
        oss << a.array << "[";
        for (size_t c = 0; c < a.offset.dim(); ++c) {
            if (c)
                oss << ",";
            oss << a.offset[c];
        }
        oss << "]";
    };
    for (const auto &s : nest.statements()) {
        oss << "statement " << s.name << "\n";
        oss << "  write ";
        emit_access(s.write);
        oss << "\n";
        for (const auto &r : s.reads) {
            oss << "  read ";
            emit_access(r);
            oss << "\n";
        }
    }
    return oss.str();
}

} // namespace uov
