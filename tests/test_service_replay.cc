/**
 * @file
 * The service acceptance test: a 10k-request fuzz-generated replay
 * (duplicate-heavy after canonicalization) answered through the
 * concurrent service at thread counts {1, 4, hardware} must be
 * byte-identical to the single-threaded direct core/search reference,
 * with cache metrics reconciling exactly.
 *
 * UOV_REPLAY_REQUESTS overrides the request count (the sanitizer CI
 * job runs a smaller replay; the invariants are size-independent).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>
#include <thread>
#include <vector>

#include "fuzz/oracles.h"
#include "service/executor.h"
#include "support/rng.h"

namespace uov {
namespace service {
namespace {

constexpr uint64_t kVisitCap = 2'000;

size_t
replayRequestCount()
{
    if (const char *env = std::getenv("UOV_REPLAY_REQUESTS")) {
        long v = std::atol(env);
        if (v > 0)
            return static_cast<size_t>(v);
    }
    return 10'000;
}

/**
 * Unique query shapes from the fuzz generators.  Each fuzz case
 * contributes three presentations across both objectives: as
 * generated, reversed (same canonical key), and padded with
 * {3*v0, 2*v0} (a different canonical class in which 2*v0 is implied
 * and gets removed) -- so the replay exercises canonicalization, not
 * just literal request dedup.
 */
std::vector<Request>
uniqueQueries(size_t target)
{
    std::vector<Request> uniq;
    SplitMix64 rng(0xD1CEu);
    while (uniq.size() < target) {
        fuzz::FuzzCase c = fuzz::makeCase(rng.next());
        if (!c.valid())
            continue;
        std::vector<IVec> rev(c.deps.rbegin(), c.deps.rend());
        std::vector<IVec> padded = c.deps;
        padded.push_back(c.deps.front() * 3);
        padded.push_back(c.deps.front() * 2);
        for (const auto &deps : {c.deps, rev, padded}) {
            for (SearchObjective obj :
                 {SearchObjective::ShortestVector,
                  SearchObjective::BoundedStorage}) {
                Request r;
                r.deps = deps;
                r.objective = obj;
                if (obj == SearchObjective::BoundedStorage) {
                    r.isg_lo = c.lo;
                    r.isg_hi = c.hi;
                }
                uniq.push_back(std::move(r));
            }
        }
    }
    return uniq;
}

TEST(ServiceReplay, ConcurrentServiceMatchesDirectByteForByte)
{
    const size_t total = replayRequestCount();
    std::vector<Request> uniq = uniqueQueries(60);

    // Direct reference, one solve per unique shape; the replay's
    // expected responses are the unique payloads re-indexed.  (The
    // direct path is deterministic, so solving each unique line once
    // is byte-equivalent to solving all of them.)
    for (size_t u = 0; u < uniq.size(); ++u)
        uniq[u].index = u + 1;
    std::vector<std::string> direct = runBatchDirect(uniq, kVisitCap);
    std::vector<std::string> payload(uniq.size());
    std::vector<std::string> kind(uniq.size());
    for (size_t u = 0; u < uniq.size(); ++u) {
        const std::string &line = direct[u];
        size_t sp1 = line.find(' ');
        size_t sp2 = line.find(' ', sp1 + 1);
        kind[u] = line.substr(0, sp1);
        payload[u] = line.substr(sp2 + 1);
    }

    // The replay: sample unique shapes with heavy repetition.
    SplitMix64 rng(0xAB5EED);
    std::vector<Request> requests;
    std::vector<std::string> expected;
    requests.reserve(total);
    expected.reserve(total);
    for (size_t i = 0; i < total; ++i) {
        size_t u = rng.nextBelow(uniq.size());
        Request r = uniq[u];
        r.index = i + 1;
        requests.push_back(std::move(r));
        expected.push_back(kind[u] + " " + std::to_string(i + 1) +
                           " " + payload[u]);
    }

    // Duplicate ratio after canonicalization: count distinct
    // canonical keys among the replayed requests (well over the
    // >= 30% duplicate floor the service is specified against).
    std::set<std::string> distinct;
    for (const Request &r : requests) {
        Stencil canon = canonicalizeStencil(Stencil(r.deps));
        distinct.insert(
            makeKey(canon, r.objective, r.isg_lo, r.isg_hi).str());
    }
    double duplicate_ratio =
        1.0 - static_cast<double>(distinct.size()) /
                  static_cast<double>(requests.size());
    EXPECT_GE(duplicate_ratio, 0.30)
        << distinct.size() << " distinct canonical keys in "
        << requests.size() << " requests";

    unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    std::vector<unsigned> thread_counts;
    for (unsigned n : {1u, 4u, hw})
        if (std::find(thread_counts.begin(), thread_counts.end(),
                      n) == thread_counts.end())
            thread_counts.push_back(n);

    for (unsigned threads : thread_counts) {
        ServiceOptions opt;
        opt.max_visits = kVisitCap;
        MetricsRegistry metrics;
        QueryService svc(opt, metrics);
        ThreadPool pool(threads);
        std::vector<std::string> got = runBatch(svc, requests, pool);
        ASSERT_EQ(got.size(), expected.size());
        for (size_t i = 0; i < got.size(); ++i)
            ASSERT_EQ(got[i], expected[i])
                << "request " << (i + 1) << " at threads=" << threads;

        // Metric reconciliation: every request performs exactly one
        // cache lookup, and is served by a hit, a coalesced flight,
        // or its own search.
        EXPECT_EQ(metrics.counter("service.requests").value(), total);
        auto st = svc.cacheStats();
        EXPECT_EQ(st.hits + st.misses, total) << "threads=" << threads;
        uint64_t coalesced =
            metrics.counter("service.singleflight.coalesced").value();
        EXPECT_EQ(st.hits + coalesced + svc.searchesExecuted(), total)
            << "threads=" << threads;
        // Single-threaded execution cannot coalesce, so the search
        // count is exactly the distinct canonical keys replayed.
        if (threads == 1) {
            EXPECT_EQ(coalesced, 0u);
            EXPECT_EQ(svc.searchesExecuted(), distinct.size());
        }
    }
}

} // namespace
} // namespace service
} // namespace uov
