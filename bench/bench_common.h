/**
 * @file
 * Shared plumbing for the per-table / per-figure bench binaries.
 *
 * Every binary prints the paper-style rows as an aligned table on
 * stdout; pass --csv for machine-readable output instead.  The header
 * of each binary's output names the paper artifact it regenerates.
 */

#ifndef UOV_BENCH_BENCH_COMMON_H
#define UOV_BENCH_BENCH_COMMON_H

#include <chrono>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "sim/machine.h"
#include "support/table.h"

namespace uov {
namespace bench {

/** Common command-line options. */
struct Options
{
    bool csv = false;   ///< emit CSV instead of aligned tables
    bool quick = false; ///< shrink sweeps (used by CI smoke runs)
};

inline Options
parseArgs(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--csv")
            o.csv = true;
        else if (a == "--quick")
            o.quick = true;
        else if (a == "--help" || a == "-h") {
            std::cout << "usage: " << argv[0] << " [--csv] [--quick]\n";
            std::exit(0);
        }
    }
    return o;
}

inline void
emit(const Table &t, const Options &o)
{
    if (o.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);
    std::cout << "\n";
}

/** Banner naming the paper artifact being regenerated. */
inline void
banner(const std::string &what)
{
    std::cout << "# Strout et al., ASPLOS 1998 -- reproducing " << what
              << "\n\n";
}

/**
 * The three testbed machines.  @p memory_scale shrinks physical
 * memory so the paper's out-of-memory regime appears within a sweep
 * that simulates in seconds (documented per bench).
 */
inline std::vector<MachineConfig>
paperMachines(double memory_scale = 1.0)
{
    std::vector<MachineConfig> machines = {MachineConfig::pentiumPro(),
                                           MachineConfig::ultra2(),
                                           MachineConfig::alpha21164()};
    for (auto &m : machines) {
        auto scaled = static_cast<int64_t>(
            static_cast<double>(m.memory_bytes) * memory_scale);
        m.memory_bytes = std::max<int64_t>(scaled, m.page_bytes * 16);
    }
    return machines;
}

/** Median wall-clock nanoseconds of fn() over @p reps runs. */
inline double
measureNs(const std::function<void()> &fn, int reps = 5)
{
    std::vector<double> samples;
    samples.reserve(static_cast<size_t>(reps));
    for (int r = 0; r < reps; ++r) {
        auto start = std::chrono::steady_clock::now();
        fn();
        auto stop = std::chrono::steady_clock::now();
        samples.push_back(
            std::chrono::duration<double, std::nano>(stop - start)
                .count());
    }
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
}

} // namespace bench
} // namespace uov

#endif // UOV_BENCH_BENCH_COMMON_H
