/**
 * @file
 * Unit tests for admission control and load shedding: the
 * AdmissionController's hysteresis state machine, the shed-response
 * wire contract (a certified Degraded answer, never an error), and
 * the batch-level accounting invariant that optimal + degraded +
 * request_errors always partitions the batch.
 */

#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/uov.h"
#include "service/executor.h"
#include "support/failpoint.h"

namespace uov {
namespace service {
namespace {

/** Parse "best=(a,b,...)" out of a response line. */
std::optional<IVec>
parseBestVector(const std::string &line)
{
    size_t open = line.find("best=(");
    if (open == std::string::npos)
        return std::nullopt;
    size_t close = line.find(')', open);
    if (close == std::string::npos)
        return std::nullopt;
    std::vector<int64_t> coords;
    std::stringstream ss(line.substr(open + 6, close - open - 6));
    std::string part;
    while (std::getline(ss, part, ','))
        coords.push_back(std::stoll(part));
    if (coords.empty())
        return std::nullopt;
    return IVec(std::move(coords));
}

/** Parse " key=<int>" out of a response line. */
std::optional<int64_t>
parseField(const std::string &line, const std::string &key)
{
    std::string tag = " " + key + "=";
    size_t at = line.find(tag);
    if (at == std::string::npos)
        return std::nullopt;
    return std::stoll(line.substr(at + tag.size()));
}

std::vector<Request>
solveRequests(size_t n)
{
    std::vector<Request> reqs;
    for (size_t i = 0; i < n; ++i) {
        Request r;
        r.index = reqs.size() + 1;
        int64_t k = static_cast<int64_t>(i % 6) + 1;
        r.deps = {IVec{1, 0}, IVec{k, 1}, IVec{1, -k}};
        if (i % 2) {
            r.objective = SearchObjective::BoundedStorage;
            r.isg_lo = IVec{0, 0};
            r.isg_hi = IVec{9, 9};
        } else {
            r.objective = SearchObjective::ShortestVector;
        }
        reqs.push_back(std::move(r));
    }
    return reqs;
}

TEST(AdmissionController, AdmitsEverythingWhenDisabled)
{
    MetricsRegistry metrics;
    AdmissionOptions ao; // high_water == 0: disabled
    AdmissionController admission(ao, metrics);
    for (int64_t depth : {0, 100, 1000000})
        EXPECT_TRUE(admission.admit(depth));
    EXPECT_FALSE(admission.shedding());
    EXPECT_EQ(metrics.counter("service.shed.admitted").value(), 3u);
    EXPECT_EQ(metrics.counter("service.shed.responses").value(), 0u);
}

TEST(AdmissionController, DefaultsLowWaterToHalfOfHigh)
{
    MetricsRegistry metrics;
    AdmissionOptions ao;
    ao.high_water = 10;
    AdmissionController admission(ao, metrics);
    EXPECT_EQ(admission.options().low_water, 5);

    // A degenerate configuration still ends up with low < high.
    AdmissionOptions tight;
    tight.high_water = 1;
    tight.low_water = 9;
    AdmissionController clamped(tight, metrics);
    EXPECT_LT(clamped.options().low_water,
              clamped.options().high_water);
}

TEST(AdmissionController, HysteresisEngagesAndRecovers)
{
    MetricsRegistry metrics;
    AdmissionOptions ao;
    ao.high_water = 4;
    ao.low_water = 2;
    AdmissionController admission(ao, metrics);
    Gauge &active = metrics.gauge("service.shed.active");

    // Below high water: admitted, shedding stays off.
    EXPECT_TRUE(admission.admit(3));
    EXPECT_FALSE(admission.shedding());
    EXPECT_EQ(active.value(), 0);

    // Crossing high water engages shedding and sheds that request.
    EXPECT_FALSE(admission.admit(4));
    EXPECT_TRUE(admission.shedding());
    EXPECT_EQ(active.value(), 1);

    // Hysteresis: depths between low and high keep shedding -- no
    // flapping at the boundary.
    EXPECT_FALSE(admission.admit(3));
    EXPECT_TRUE(admission.shedding());

    // Draining to low water disengages; traffic is admitted again.
    EXPECT_TRUE(admission.admit(2));
    EXPECT_FALSE(admission.shedding());
    EXPECT_EQ(active.value(), 0);
    EXPECT_TRUE(admission.admit(3));

    // A second overload round engages again.
    EXPECT_FALSE(admission.admit(9));
    EXPECT_TRUE(admission.shedding());

    EXPECT_EQ(metrics.counter("service.shed.engaged").value(), 2u);
    EXPECT_EQ(metrics.counter("service.shed.recovered").value(), 1u);
    EXPECT_EQ(metrics.counter("service.shed.admitted").value(), 3u);
    EXPECT_EQ(metrics.counter("service.shed.responses").value(), 3u);
}

TEST(Shed, ShedRequestIsACertifiedDegradedAnswer)
{
    std::vector<Request> reqs = solveRequests(4);
    for (const Request &r : reqs) {
        std::string line = shedRequest(r);
        EXPECT_EQ(line.rfind("answer " + std::to_string(r.index), 0),
                  0u)
            << line;
        EXPECT_NE(line.find(" degraded=shed"), std::string::npos)
            << line;

        auto best = parseBestVector(line);
        auto value = parseField(line, "value");
        auto initial = parseField(line, "initial");
        ASSERT_TRUE(best && value && initial) << line;
        // The shed floor is still a *certified* universal vector no
        // worse than ov_o -- degraded, never wrong.
        UovOracle oracle{Stencil(r.deps)};
        EXPECT_TRUE(oracle.isUov(*best)) << line;
        EXPECT_LE(*value, *initial) << line;
    }

    // Malformed requests keep their parse error even when shed.
    Request bad;
    bad.index = 9;
    bad.error = "unknown verb 'bogus'";
    std::string line = shedRequest(bad);
    EXPECT_EQ(line, "error 9 unknown verb 'bogus'");
}

TEST(Shed, OverloadedBatchPartitionsIntoOptimalAndDegraded)
{
    std::vector<Request> reqs = solveRequests(24);
    Request bad;
    bad.index = reqs.size() + 1;
    bad.error = "unknown verb 'bogus'";
    reqs.push_back(bad);

    ServiceOptions so;
    MetricsRegistry metrics;
    QueryService svc(so, metrics);
    ThreadPool pool(2);
    AdmissionOptions ao;
    ao.high_water = 1; // shed nearly everything
    AdmissionController admission(ao, metrics);

    std::vector<std::string> responses =
        runBatch(svc, reqs, pool, &admission);
    ASSERT_EQ(responses.size(), reqs.size());

    uint64_t shed =
        metrics.counter("service.shed.responses").value();
    EXPECT_GT(shed, 0u) << "batch never crossed the high-water mark";
    EXPECT_EQ(metrics.counter("service.shed.admitted").value() + shed,
              static_cast<uint64_t>(reqs.size() - 1));

    // Satellite contract: the three response classes partition the
    // batch, and every degraded answer re-verifies against the exact
    // membership oracle.
    uint64_t optimal = metrics.counter("service.optimal").value();
    uint64_t degraded = metrics.counter("service.degraded").value();
    uint64_t errors =
        metrics.counter("service.request_errors").value();
    EXPECT_EQ(optimal + degraded + errors, reqs.size());
    EXPECT_EQ(errors, 1u); // only the parse error

    for (size_t i = 0; i < reqs.size(); ++i) {
        const std::string &line = responses[i];
        if (!reqs[i].error.empty()) {
            EXPECT_EQ(line.rfind("error ", 0), 0u) << line;
            continue;
        }
        auto best = parseBestVector(line);
        auto value = parseField(line, "value");
        auto initial = parseField(line, "initial");
        ASSERT_TRUE(best && value && initial) << line;
        UovOracle oracle{Stencil(reqs[i].deps)};
        EXPECT_TRUE(oracle.isUov(*best)) << line;
        EXPECT_LE(*value, *initial) << line;
    }
}

TEST(Shed, AdmissionFailPointDrawsErrorLinesNotCrashes)
{
    std::vector<Request> reqs = solveRequests(6);
    ServiceOptions so;
    MetricsRegistry metrics;
    QueryService svc(so, metrics);
    ThreadPool pool(2);
    AdmissionOptions ao;
    ao.high_water = 4;
    AdmissionController admission(ao, metrics);

    failpoint::ScopedFailPoints scope;
    failpoint::Config config;
    config.probability = 1.0;
    config.action = failpoint::Action::Throw;
    failpoint::Registry::instance().arm("admission", config);

    std::vector<std::string> responses =
        runBatch(svc, reqs, pool, &admission);
    for (size_t i = 0; i < reqs.size(); ++i)
        EXPECT_EQ(responses[i].rfind(
                      "error " + std::to_string(reqs[i].index), 0),
                  0u)
            << responses[i];
    EXPECT_EQ(metrics.counter("service.request_errors").value(),
              reqs.size());
}

} // namespace
} // namespace service
} // namespace uov
