/**
 * @file
 * A small process-local metrics registry: monotonic counters, up/down
 * gauges, and power-of-two latency histograms, all lock-free to update
 * (relaxed atomics -- metrics order nothing) and registered by name
 * under one mutex.
 *
 * Promoted from src/service so the span tracer (support/trace) and the
 * query service share one registry type; src/service/metrics.h remains
 * as a thin alias header for existing includes.
 *
 * Dumps are deterministic in *structure*: metrics are kept in a
 * sorted map, so the table and JSON renderings list them in name
 * order.  Values are whatever the run produced.
 */

#ifndef UOV_SUPPORT_METRICS_H
#define UOV_SUPPORT_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "support/table.h"

namespace uov {

/** Monotonically increasing event count. */
class Counter
{
  public:
    void
    inc(uint64_t n = 1)
    {
        _value.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        return _value.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> _value{0};
};

/** Instantaneous level (queue depth, cached bytes). */
class Gauge
{
  public:
    void
    add(int64_t n)
    {
        _value.fetch_add(n, std::memory_order_relaxed);
    }

    void
    sub(int64_t n)
    {
        _value.fetch_sub(n, std::memory_order_relaxed);
    }

    void
    set(int64_t v)
    {
        _value.store(v, std::memory_order_relaxed);
    }

    int64_t
    value() const
    {
        return _value.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<int64_t> _value{0};
};

/**
 * Histogram over non-negative values (microseconds, sizes) with
 * power-of-two buckets: bucket b counts observations v with
 * 2^(b-1) < v <= 2^b - roughly, bucket index = bit_width(v).
 */
class Histogram
{
  public:
    static constexpr size_t kBuckets = 48;

    /**
     * A scrape-consistent copy of the histogram.  The invariants a
     * concurrent reader can rely on (and the Prometheus renderer
     * depends on):
     *
     *  - count == sum over buckets (derived, never read separately),
     *    so the cumulative bucket series and the _count line can
     *    never disagree, and
     *  - sum covers every observation included in count: observe()
     *    adds to _sum before publishing the bucket increment with
     *    release order, and snapshot() reads buckets with acquire
     *    order before reading _sum -- so the rendered sum is never
     *    missing the value of a rendered observation (it may include
     *    values of observations still in flight, which is the benign
     *    direction: both series stay monotone across scrapes).
     */
    struct Snapshot
    {
        uint64_t buckets[kBuckets] = {};
        uint64_t count = 0;
        uint64_t sum = 0;

        uint64_t percentile(double q) const;
    };

    void observe(uint64_t v);

    Snapshot snapshot() const;

    uint64_t count() const;
    uint64_t sum() const;

    /**
     * Upper bound of the bucket containing the @p q quantile
     * (q in [0, 1]); 0 when empty.  Coarse by design -- within a
     * factor of 2 -- which is plenty for service dashboards.
     */
    uint64_t quantileUpperBound(double q) const;

    /**
     * Estimated @p q percentile (q in [0, 1]; 0 when empty) with
     * upper-bound interpolation inside the owning bucket: the target
     * rank's position within bucket b (values in [2^(b-1), 2^b - 1])
     * interpolates linearly toward the bucket's upper bound, so a
     * bucket holding a single observation reports that bucket's upper
     * bound.  Sharper than quantileUpperBound for the dashboard's
     * p50/p95/p99 while staying exact about which bucket owns the
     * rank.  Values past the last bucket saturate at its upper bound.
     */
    uint64_t percentile(double q) const;

    uint64_t bucketCount(size_t b) const;

  private:
    std::atomic<uint64_t> _buckets[kBuckets] = {};
    std::atomic<uint64_t> _count{0};
    std::atomic<uint64_t> _sum{0};
};

/**
 * Named metric registry.  Lookup-or-create is mutex-guarded and
 * returns a stable reference; updates through the returned reference
 * are lock-free.  One registry per service instance keeps tests and
 * embedded uses isolated (no process-global state).
 */
/**
 * One name-sorted, scrape-consistent copy of every registered metric.
 * Counters and gauges are single relaxed loads (each individually
 * consistent); histograms use Histogram::snapshot(), so no rendered
 * histogram is ever torn between its buckets and its count.
 */
struct MetricsSnapshot
{
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, int64_t>> gauges;
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
};

/**
 * Rank-interpolated @p q percentile over bit-width buckets (the
 * shared implementation behind Histogram::percentile and the SLO
 * tracker's windowed merge).  @p count must equal the bucket total.
 */
uint64_t bucketPercentile(const uint64_t *buckets, size_t n,
                          uint64_t count, double q);

class MetricsRegistry
{
  public:
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** Scrape-consistent copy of every metric (name-sorted). */
    MetricsSnapshot snapshot() const;

    /** All metrics as a support/table dump (name-sorted). */
    Table table() const;

    /** All metrics as one JSON object (name-sorted, no whitespace). */
    std::string json() const;

  private:
    mutable std::mutex _mutex;
    std::map<std::string, std::unique_ptr<Counter>> _counters;
    std::map<std::string, std::unique_ptr<Gauge>> _gauges;
    std::map<std::string, std::unique_ptr<Histogram>> _histograms;
};

} // namespace uov

#endif // UOV_SUPPORT_METRICS_H
