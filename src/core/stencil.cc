#include "core/stencil.h"

#include <algorithm>
#include <sstream>

#include "support/checked.h"
#include "support/error.h"

namespace uov {

Stencil::Stencil(std::vector<IVec> deps)
{
    UOV_REQUIRE(!deps.empty(), "stencil must have at least one dependence");
    size_t d = deps[0].dim();
    UOV_REQUIRE(d >= 1, "stencil dependences must have dimension >= 1");
    for (const auto &v : deps) {
        UOV_REQUIRE(v.dim() == d, "stencil dependence dimension mismatch: "
                                      << v.str());
        UOV_REQUIRE(!v.isZero(), "zero dependence vector");
        UOV_REQUIRE(v.isLexPositive(),
                    "dependence " << v.str()
                        << " is not lexicographically positive; the "
                           "original loop would be illegal");
    }
    std::sort(deps.begin(), deps.end());
    deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
    UOV_REQUIRE(deps.size() <= 32,
                "stencil has " << deps.size()
                    << " distinct dependences; PATHSET masks support <= 32");
    _deps = std::move(deps);
}

bool
Stencil::contains(const IVec &v) const
{
    return std::binary_search(_deps.begin(), _deps.end(), v);
}

IVec
Stencil::initialUov() const
{
    IVec sum(dim());
    for (const auto &v : _deps)
        sum += v;
    return sum;
}

std::optional<IVec>
Stencil::positiveFunctional() const
{
    size_t d = dim();
    // h = (M^{d-1}, ..., M, 1) with M > d * maxAbsCoord dominates lower
    // coordinates: for a lex-positive v the first nonzero coordinate
    // contributes at least M^k while the tail can subtract at most
    // (d-1) * maxAbs * M^{k-1} < M^k.
    int64_t max_abs = maxAbsCoord();
    int64_t m;
    if (__builtin_mul_overflow(max_abs, static_cast<int64_t>(d), &m))
        return std::nullopt;
    if (__builtin_add_overflow(m, static_cast<int64_t>(1), &m))
        return std::nullopt;

    IVec h(d);
    int64_t w = 1;
    for (size_t i = d; i-- > 0;) {
        h[i] = w;
        if (i > 0) {
            if (__builtin_mul_overflow(w, m, &w))
                return std::nullopt;
        }
    }
    // Also guard the dot products we will take: h . v for max coords.
    int64_t worst;
    if (__builtin_mul_overflow(h[0], max_abs, &worst))
        return std::nullopt;
    if (__builtin_mul_overflow(worst, static_cast<int64_t>(d), &worst))
        return std::nullopt;
    for (const auto &v : _deps)
        UOV_CHECK(h.dot(v) > 0, "positive functional on " << v.str());
    return h;
}

bool
Stencil::allNonNegativeInCoord(size_t c) const
{
    for (const auto &v : _deps)
        if (v[c] < 0)
            return false;
    return true;
}

bool
Stencil::allNonPositiveInCoord(size_t c) const
{
    for (const auto &v : _deps)
        if (v[c] > 0)
            return false;
    return true;
}

int64_t
Stencil::maxAbsCoord() const
{
    int64_t m = 0;
    for (const auto &v : _deps)
        m = std::max(m, v.normInf());
    return m;
}

std::pair<IVec, IVec>
Stencil::extremeVectors2D() const
{
    UOV_REQUIRE(dim() == 2, "extremeVectors2D requires a 2-D stencil");
    // All vectors are lex-positive, hence within the half-plane
    // { x > 0 } union { x == 0, y > 0 }: a total angular (clockwise)
    // order exists via the cross product.
    auto cross = [](const IVec &a, const IVec &b) {
        return checkedSub(checkedMul(a[0], b[1]), checkedMul(a[1], b[0]));
    };
    IVec lo = _deps[0], hi = _deps[0];
    for (const auto &v : _deps) {
        if (cross(lo, v) < 0)
            lo = v; // more clockwise
        if (cross(hi, v) > 0)
            hi = v; // more counter-clockwise
    }
    return {lo, hi};
}

std::string
Stencil::str() const
{
    std::ostringstream oss;
    oss << "{";
    for (size_t i = 0; i < _deps.size(); ++i) {
        if (i)
            oss << ", ";
        oss << _deps[i];
    }
    oss << "}";
    return oss.str();
}

namespace stencils {

Stencil
simpleExample()
{
    return Stencil({IVec{1, 0}, IVec{0, 1}, IVec{1, 1}});
}

Stencil
threeVector()
{
    // Figure 2 sketches three dependences of distinct slopes; the exact
    // values are not printed in the paper, so we use a representative
    // spread-out trio with the same qualitative geometry.
    return Stencil({IVec{1, -1}, IVec{1, 1}, IVec{0, 2}});
}

Stencil
fivePoint()
{
    return Stencil({IVec{1, -2}, IVec{1, -1}, IVec{1, 0}, IVec{1, 1},
                    IVec{1, 2}});
}

Stencil
proteinMatching()
{
    return Stencil({IVec{1, 0}, IVec{0, 1}, IVec{1, 1}});
}

Stencil
heat3D()
{
    return Stencil({IVec{1, 0, 0}, IVec{1, 1, 0}, IVec{1, -1, 0},
                    IVec{1, 0, 1}, IVec{1, 0, -1}});
}

} // namespace stencils

} // namespace uov
