// SLO tracker tests: rolling-window merge with an injected clock,
// window expiry, quantile agreement with bucketPercentile, target
// verdicts, and the /slo JSON document.

#include <gtest/gtest.h>

#include <algorithm>

#include "telemetry/slo.h"

using namespace uov;
using namespace uov::telemetry;

using Outcome = FlightDigest::Outcome;

namespace {

/** A tracker with a hand-cranked clock. */
struct Clocked
{
    int64_t now = 1000;
    SloTracker tracker;

    explicit Clocked(SloOptions options = {})
        : tracker(options, [this] { return now; })
    {
    }
};

} // namespace

TEST(SloTracker, CountsOutcomesInWindow)
{
    SloOptions opt;
    opt.window_s = 10;
    Clocked c(opt);
    c.tracker.record(Outcome::Optimal, 10);
    c.tracker.record(Outcome::Degraded, 20);
    c.tracker.record(Outcome::Shed, 1);
    c.tracker.record(Outcome::Error, 5);

    SloTracker::Report r = c.tracker.report();
    EXPECT_EQ(r.total, 4u);
    EXPECT_EQ(r.degraded, 1u);
    EXPECT_EQ(r.shed, 1u);
    EXPECT_EQ(r.errors, 1u);
    EXPECT_TRUE(r.ok);
    EXPECT_TRUE(r.violations.empty());
}

TEST(SloTracker, OldSecondsFallOutOfTheWindow)
{
    SloOptions opt;
    opt.window_s = 5;
    Clocked c(opt);
    c.tracker.record(Outcome::Error, 10);
    EXPECT_EQ(c.tracker.report().errors, 1u);

    // Advance past the window: the error second expires.
    c.now += 5;
    c.tracker.record(Outcome::Optimal, 10);
    SloTracker::Report r = c.tracker.report();
    EXPECT_EQ(r.total, 1u);
    EXPECT_EQ(r.errors, 0u);
}

TEST(SloTracker, RingLapReusesSlotsCleanly)
{
    SloOptions opt;
    opt.window_s = 3;
    Clocked c(opt);
    // Touch many distinct seconds so every ring slot is reused.
    for (int s = 0; s < 20; ++s) {
        c.tracker.record(Outcome::Optimal, 10);
        c.now += 1;
    }
    // Only the seconds still inside the window survive.
    SloTracker::Report r = c.tracker.report();
    EXPECT_LE(r.total, 3u);
}

TEST(SloTracker, WindowClampedToSaneRange)
{
    SloOptions tiny;
    tiny.window_s = 0;
    EXPECT_EQ(SloTracker(tiny).options().window_s, 1);
    SloOptions huge;
    huge.window_s = 10'000;
    EXPECT_EQ(SloTracker(huge).options().window_s, 600);
}

TEST(SloTracker, LatencyTargetsJudgeQuantiles)
{
    SloOptions opt;
    opt.window_s = 60;
    opt.p99_us = 100; // everything below: ok
    Clocked c(opt);
    for (int i = 0; i < 100; ++i)
        c.tracker.record(Outcome::Optimal, 10);
    EXPECT_TRUE(c.tracker.report().ok);

    // Blow the tail: p99 rises beyond the target.
    for (int i = 0; i < 50; ++i)
        c.tracker.record(Outcome::Optimal, 100'000);
    SloTracker::Report r = c.tracker.report();
    EXPECT_FALSE(r.ok);
    ASSERT_EQ(r.violations.size(), 1u);
    EXPECT_EQ(r.violations[0], "p99_us");
    EXPECT_GT(r.p99_us, 100u);
}

TEST(SloTracker, RatioCeilingsJudgeOutcomes)
{
    SloOptions opt;
    opt.max_error = 0.10;
    opt.max_shed = 0.50;
    Clocked c(opt);
    for (int i = 0; i < 8; ++i)
        c.tracker.record(Outcome::Optimal, 1);
    c.tracker.record(Outcome::Error, 1);

    // 1 error in 9 responses is 11% -- over the 10% ceiling.
    SloTracker::Report r = c.tracker.report();
    EXPECT_FALSE(r.ok);
    ASSERT_EQ(r.violations.size(), 1u);
    EXPECT_EQ(r.violations[0], "max_error");

    // Push the error ratio back under the ceiling.
    for (int i = 0; i < 3; ++i)
        c.tracker.record(Outcome::Optimal, 1);
    EXPECT_TRUE(c.tracker.report().ok);
}

TEST(SloTracker, DisabledTargetsNeverViolate)
{
    Clocked c; // all targets off by default
    for (int i = 0; i < 10; ++i)
        c.tracker.record(Outcome::Error, 1'000'000);
    SloTracker::Report r = c.tracker.report();
    EXPECT_TRUE(r.ok);
    EXPECT_TRUE(r.violations.empty());
}

TEST(SloTracker, JsonDocumentShape)
{
    SloOptions opt;
    opt.p99_us = 50;
    Clocked c(opt);
    // Three samples put the p99 target index (floor(0.99 * 3) = 2)
    // on a slow sample, so the 50us target is violated.
    c.tracker.record(Outcome::Optimal, 10);
    c.tracker.record(Outcome::Shed, 1'000'000);
    c.tracker.record(Outcome::Shed, 1'000'000);

    std::string json = c.tracker.json();
    EXPECT_NE(json.find("\"window_s\":60"), std::string::npos);
    EXPECT_NE(json.find("\"total\":3"), std::string::npos);
    EXPECT_NE(json.find("\"shed\":2"), std::string::npos);
    EXPECT_NE(json.find("\"targets\":{"), std::string::npos);
    EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
    EXPECT_NE(json.find("\"violations\":[\"p99_us\"]"),
              std::string::npos);
}
