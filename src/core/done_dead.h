/**
 * @file
 * DONE and DEAD sets (Section 3.1, Figure 2).
 *
 * For a stencil V and an iteration point q:
 *   DONE(V, q) = { p | q - p is a non-negative integer combination of V }
 *                -- points that must execute before q under any legal
 *                schedule;
 *   DEAD(V, q) = { p | for every v in V, p + v is in DONE(V, q) }
 *                -- points whose produced value is certainly consumed
 *                once q's inputs are available.
 * DEAD(V, q) is a subset of DONE(V, q), and
 * UOV(V) = { q - p | p in DEAD(V, q) }, independent of q.
 */

#ifndef UOV_CORE_DONE_DEAD_H
#define UOV_CORE_DONE_DEAD_H

#include <memory>
#include <vector>

#include "core/cone.h"
#include "geometry/ivec.h"

namespace uov {

/** Queries and enumerations over DONE / DEAD sets. */
class DoneDeadAnalysis
{
  public:
    explicit DoneDeadAnalysis(Stencil stencil);

    /** Share an existing cone memo (same stencil) with the analysis. */
    explicit DoneDeadAnalysis(std::shared_ptr<ConeMemo> memo);

    const Stencil &stencil() const { return _cone.stencil(); }

    /**
     * Is p in DONE(V, q)?  Note q itself is in DONE(V, q): the
     * defining combination allows all-zero coefficients.
     */
    bool isDone(const IVec &q, const IVec &p);

    /** Is p in DEAD(V, q)? */
    bool isDead(const IVec &q, const IVec &p);

    /** All DONE points within the box [lo, hi] around q. */
    std::vector<IVec> enumerateDone(const IVec &q, const IVec &lo,
                                    const IVec &hi);

    /** All DEAD points within the box [lo, hi] around q. */
    std::vector<IVec> enumerateDead(const IVec &q, const IVec &lo,
                                    const IVec &hi);

  private:
    template <typename Pred>
    std::vector<IVec> enumerateBox(const IVec &lo, const IVec &hi,
                                   Pred pred);

    ConeSolver _cone;
};

} // namespace uov

#endif // UOV_CORE_DONE_DEAD_H
