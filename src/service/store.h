/**
 * @file
 * Persistent disk-backed result store: the durability layer under the
 * in-memory ResultCache.
 *
 * A solved query is a pure function of its CanonicalKey (the UOV is
 * universal under *every* legal schedule -- the paper's core result),
 * so a certified answer is cacheable forever and across process
 * lifetimes.  The store is an append-only log of (CanonicalKey,
 * ServiceAnswer) records; a restarted daemon preloads it into the
 * ResultCache and answers its whole corpus at warm-cache speed with
 * zero branch-and-bound searches.
 *
 * Log format (all integers little-endian):
 *
 *     8-byte magic "UOVSTO01"
 *     repeated records: u32 payload_len | u64 fnv1a(payload) | payload
 *
 * Durability discipline:
 *
 *  - append() writes the framed record, then fsyncs; only then is the
 *    append acknowledged (returns true).  On ANY failure -- an armed
 *    `store_write`/`store_fsync` fail point, a short write, a failed
 *    fsync -- the partial record is rolled back (ftruncate to the
 *    pre-append offset) before the mutex is released, so the log
 *    never carries a torn record in its *middle*.  Acknowledged
 *    records are therefore exactly the on-disk records; a store write
 *    failure degrades durability for that one answer, never the
 *    query itself (callers treat false as "served but not persisted").
 *
 *  - A hard kill (SIGKILL, power loss) mid-append can still leave a
 *    torn *tail*.  open() validates records front to back and stops
 *    at the first framing or checksum violation; when a torn tail is
 *    found, the validated prefix is rewritten to `<path>.tmp.<pid>`
 *    and renamed over the original -- the same atomic tmp+rename
 *    publish discipline as JitCompiler's object cache -- so a crashed
 *    recovery leaves either the old damaged file or the repaired one,
 *    never a half-repaired hybrid.  The reopened store is always a
 *    checksummed prefix of what was acknowledged.
 *
 *  - compact() rewrites the live index (last record per key wins) via
 *    the same tmp+rename publish, dropping superseded duplicates.
 *
 * Thread safety: all members are safe to call concurrently (one mutex
 * over the fd, the index, and the counters -- the store sits behind
 * the cache, so it is not a hot path).
 *
 * Fail-point sites: `store_open` (fired inside open, before the scan),
 * `store_write` (before the record write), `store_fsync` (before the
 * fsync).  The `durability` fuzz oracle drives all three.
 */

#ifndef UOV_SERVICE_STORE_H
#define UOV_SERVICE_STORE_H

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "service/answer.h"
#include "service/canonical.h"
#include "service/metrics.h"

namespace uov {
namespace service {

class ResultCache;

class ResultStore
{
  public:
    struct Stats
    {
        uint64_t records_loaded = 0;  ///< valid records read at open
        uint64_t truncated_bytes = 0; ///< torn tail dropped at open
        uint64_t appends = 0;         ///< acknowledged appends
        uint64_t append_errors = 0;   ///< rolled-back appends
        uint64_t lookups = 0;
        uint64_t hits = 0;
        uint64_t entries = 0;         ///< live (deduped) index size
        uint64_t file_bytes = 0;      ///< log size after open/append
        uint64_t compactions = 0;     ///< compact() calls completed
        uint64_t reclaimed_bytes = 0; ///< total bytes compact() dropped
    };

    /**
     * Open (creating if absent) the log at @p path, validate it, and
     * load every intact record into the in-memory index.  A torn tail
     * is truncated via tmp+rename repair.  @p metrics optionally
     * mirrors the counters as service.store.*.
     *
     * @throws UovUserError when the file cannot be opened or created,
     *         or carries a foreign magic (not silently overwritten).
     */
    explicit ResultStore(std::string path,
                         MetricsRegistry *metrics = nullptr);

    ~ResultStore();

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    /**
     * Durably append one record.  True = acknowledged (bytes framed,
     * checksummed, written, and fsynced); false = rolled back (log
     * unchanged, answer not persisted).  Never throws for write-path
     * failures -- durability degrades, the query does not.
     */
    bool append(const CanonicalKey &key, const ServiceAnswer &answer);

    /** Copy out the stored answer for @p key, if present. */
    std::optional<ServiceAnswer> lookup(const CanonicalKey &key);

    /**
     * Visit every live (deduped) record in first-appended order.
     * Used by the warm-start preload.
     */
    void forEach(const std::function<void(const CanonicalKey &,
                                          const ServiceAnswer &)> &fn)
        const;

    /**
     * Visit every on-disk record in log order, duplicates included
     * (the durability oracle asserts the acknowledged-prefix property
     * against the raw log, not the index).
     */
    void forEachRaw(const std::function<void(const CanonicalKey &,
                                             const ServiceAnswer &)>
                        &fn) const;

    /**
     * Rewrite the log as the live index only (last record per key
     * wins), published atomically via tmp+rename.  Returns the bytes
     * reclaimed.
     */
    uint64_t compact();

    /** Insert every live record into @p cache; returns the count. */
    size_t preload(ResultCache &cache) const;

    Stats stats() const;
    const std::string &path() const { return _path; }

    /**
     * Serialize / parse one record payload (exposed for tests and the
     * durability oracle; the framing -- length and checksum -- is the
     * store's own business).
     */
    static std::string encodePayload(const CanonicalKey &key,
                                     const ServiceAnswer &answer);
    static bool decodePayload(const std::string &payload,
                              CanonicalKey &key, ServiceAnswer &answer);

  private:
    struct Record
    {
        CanonicalKey key;
        ServiceAnswer answer;
    };

    /** Validate + load the log; repair a torn tail. No lock held. */
    void open();

    /** Write the full buffer or throw. */
    void writeAll(int fd, const char *data, size_t len);

    /** Rewrite @p records to <path>.tmp.<pid>, fsync, rename. */
    void publishSegment(const std::vector<Record> &records);

    std::string _path;
    int _fd = -1;
    uint64_t _end = 0; ///< validated log size (append offset)
    bool _broken = false; ///< a rollback failed; appends disabled

    mutable std::mutex _mutex;
    std::vector<Record> _log; ///< raw records in log order
    std::unordered_map<CanonicalKey, size_t, CanonicalKeyHash>
        _index; ///< key -> latest _log position

    Stats _stats;
    Counter *_hits_metric = nullptr;
    Counter *_appends_metric = nullptr;
    Counter *_append_errors_metric = nullptr;
    Counter *_loaded_metric = nullptr;
    Counter *_truncated_metric = nullptr;
    Counter *_compactions_metric = nullptr;
    Counter *_reclaimed_metric = nullptr;
};

} // namespace service
} // namespace uov

#endif // UOV_SERVICE_STORE_H
