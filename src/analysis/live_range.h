/**
 * @file
 * Live-range analysis: the storage lower bound.
 *
 * Under a schedule sigma, the value produced at p is live from
 * sigma(p) until its last in-domain consumer runs.  No storage
 * mapping whatsoever can use fewer cells than the maximum number of
 * simultaneously live values, so this is the yardstick the paper's
 * numbers sit against: the storage-optimized codes sit essentially on
 * the bound for their fixed schedule, the UOV mapping sits slightly
 * above the *worst* legal schedule's bound -- the price of schedule
 * independence.
 */

#ifndef UOV_ANALYSIS_LIVE_RANGE_H
#define UOV_ANALYSIS_LIVE_RANGE_H

#include <cstdint>

#include "core/stencil.h"
#include "schedule/schedule.h"

namespace uov {

/** Live-value statistics of one scheduled execution. */
struct LiveRangeResult
{
    int64_t max_live = 0;   ///< peak simultaneously live values
    double avg_live = 0.0;  ///< time-averaged live values
    uint64_t points = 0;
};

/**
 * Exact live-range sweep of @p schedule over [lo, hi] with consumers
 * given by @p stencil.  A value with no in-domain consumer is live
 * only during its producing step.
 */
LiveRangeResult maxLiveValues(const Schedule &schedule, const IVec &lo,
                              const IVec &hi, const Stencil &stencil);

} // namespace uov

#endif // UOV_ANALYSIS_LIVE_RANGE_H
