/**
 * @file
 * Unit tests for the span tracer (support/trace): inert disabled
 * path, ring-buffer recording and drop-newest overflow, balanced
 * Chrome JSON export (including synthesized End events), flat
 * summary totals/self-time, multi-thread buffers, and thread names.
 *
 * The tracer is process-global, so every test starts and ends from a
 * disabled, cleared state (the fixture enforces it).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>

#include "support/trace.h"

namespace uov {
namespace trace {
namespace {

size_t
countOf(const std::string &haystack, const std::string &needle)
{
    size_t n = 0;
    for (size_t pos = haystack.find(needle); pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size()))
        ++n;
    return n;
}

class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Tracer::instance().disable();
        Tracer::instance().clear();
    }

    void
    TearDown() override
    {
        Tracer::instance().disable();
        Tracer::instance().clear();
    }

    std::string
    exported()
    {
        std::ostringstream oss;
        Tracer::instance().writeChromeJson(oss);
        return oss.str();
    }
};

TEST_F(TraceTest, DisabledPathRecordsNothing)
{
    ASSERT_FALSE(tracingEnabled());
    {
        TRACE_SPAN("inert");
        TRACE_COUNTER("inert.counter", "v", 7);
        trace::begin("raw");
        trace::end("raw");
    }
    EXPECT_EQ(Tracer::instance().eventCount(), 0u);
    EXPECT_EQ(Tracer::instance().droppedCount(), 0u);
}

TEST_F(TraceTest, SpanArgsAttachAfterDisableAreInert)
{
    // A Span constructed while disabled stays inert even if tracing
    // turns on before its destructor: byte-identity depends on no
    // stray E events from half-open spans.
    Span span("straddler");
    EXPECT_FALSE(span.active());
    Tracer::instance().enable();
    span.arg("k", int64_t{1});
    EXPECT_EQ(Tracer::instance().eventCount(), 0u);
}

TEST_F(TraceTest, NestedSpansExportBalancedJson)
{
    Tracer::instance().enable();
    {
        TRACE_SPAN("outer");
        {
            TRACE_SPAN("inner");
            TRACE_COUNTER("work", "items", 3);
        }
    }
    Tracer::instance().disable();
    EXPECT_EQ(Tracer::instance().eventCount(), 5u); // 2B + 2E + 1C

    std::string json = exported();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"work\""), std::string::npos);
    EXPECT_NE(json.find("\"items\":3"), std::string::npos);
    EXPECT_EQ(countOf(json, "\"ph\":\"B\""),
              countOf(json, "\"ph\":\"E\""));
}

TEST_F(TraceTest, UnclosedBeginGetsSynthesizedEnd)
{
    Tracer::instance().enable();
    trace::begin("never.closed");
    trace::begin("also.open");
    Tracer::instance().disable();

    std::string json = exported();
    EXPECT_EQ(countOf(json, "\"ph\":\"B\""), 2u);
    EXPECT_EQ(countOf(json, "\"ph\":\"E\""), 2u);
    // Synthesized Ends close innermost-first.
    size_t inner_e = json.rfind("\"name\":\"also.open\"");
    size_t outer_e = json.rfind("\"name\":\"never.closed\"");
    EXPECT_LT(inner_e, outer_e);
}

TEST_F(TraceTest, OrphanEndIsSkippedInExport)
{
    Tracer::instance().enable();
    trace::end("no.begin"); // e.g. a span that straddled enable()
    trace::begin("real");
    trace::end("real");
    Tracer::instance().disable();

    std::string json = exported();
    EXPECT_EQ(countOf(json, "\"ph\":\"B\""), 1u);
    EXPECT_EQ(countOf(json, "\"ph\":\"E\""), 1u);
    EXPECT_EQ(json.find("no.begin"), std::string::npos);
}

TEST_F(TraceTest, SpanArgsAppearOnEndEvent)
{
    Tracer::instance().enable();
    {
        Span span("args.span");
        span.arg("count", int64_t{42});
        span.arg("label", "hello");
        span.arg("ignored", int64_t{3}); // beyond kMaxArgs, dropped
    }
    Tracer::instance().disable();

    std::string json = exported();
    EXPECT_NE(json.find("\"count\":42"), std::string::npos);
    EXPECT_NE(json.find("\"label\":\"hello\""), std::string::npos);
    EXPECT_EQ(json.find("\"ignored\""), std::string::npos);
}

TEST_F(TraceTest, DropNewestWhenRingIsFull)
{
    Tracer::instance().enable(/*capacity=*/4);
    for (int i = 0; i < 10; ++i)
        TRACE_COUNTER("flood", "i", i);
    Tracer::instance().disable();

    EXPECT_EQ(Tracer::instance().eventCount(), 4u);
    EXPECT_EQ(Tracer::instance().droppedCount(), 6u);
    // The oldest events survive (drop-newest, not a wrapping ring).
    std::string json = exported();
    EXPECT_NE(json.find("\"i\":0"), std::string::npos);
    EXPECT_EQ(json.find("\"i\":9"), std::string::npos);
    EXPECT_NE(json.find("\"droppedEvents\":\"6\""), std::string::npos);
}

TEST_F(TraceTest, ClearDropsEventsAndKeepsRecording)
{
    Tracer::instance().enable();
    trace::begin("before");
    trace::end("before");
    ASSERT_GT(Tracer::instance().eventCount(), 0u);

    Tracer::instance().clear();
    EXPECT_EQ(Tracer::instance().eventCount(), 0u);
    EXPECT_TRUE(Tracer::instance().enabled());

    trace::begin("after");
    trace::end("after");
    EXPECT_EQ(Tracer::instance().eventCount(), 2u);
    std::string json = exported();
    EXPECT_EQ(json.find("before"), std::string::npos);
    EXPECT_NE(json.find("after"), std::string::npos);
}

TEST_F(TraceTest, SummaryComputesTotalAndSelfTime)
{
    Tracer::instance().enable();
    {
        TRACE_SPAN("parent");
        {
            TRACE_SPAN("child");
        }
        {
            TRACE_SPAN("child");
        }
    }
    Tracer::instance().disable();

    auto summary = Tracer::instance().summarize();
    ASSERT_EQ(summary.size(), 2u); // name-sorted: child, parent
    EXPECT_EQ(summary[0].name, "child");
    EXPECT_EQ(summary[0].count, 2u);
    EXPECT_EQ(summary[1].name, "parent");
    EXPECT_EQ(summary[1].count, 1u);
    // Parent's self time excludes both child spans; every duration is
    // non-negative and children nest inside the parent.
    EXPECT_GE(summary[0].total_ns, 0);
    EXPECT_GE(summary[1].total_ns, summary[0].total_ns);
    EXPECT_EQ(summary[1].self_ns,
              summary[1].total_ns - summary[0].total_ns);
}

TEST_F(TraceTest, SummaryTableListsSpans)
{
    Tracer::instance().enable();
    {
        TRACE_SPAN("tabled.span");
    }
    Tracer::instance().disable();

    std::ostringstream oss;
    Tracer::instance().summaryTable().print(oss);
    std::string out = oss.str();
    EXPECT_NE(out.find("tabled.span"), std::string::npos);
    EXPECT_NE(out.find("Self us"), std::string::npos);
}

TEST_F(TraceTest, ThreadsGetOwnBuffersAndNames)
{
    Tracer::instance().enable();
    trace::begin("main.work");
    trace::end("main.work");
    std::thread worker([] {
        Tracer::setCurrentThreadName("unit-worker");
        TRACE_SPAN("worker.work");
    });
    worker.join();
    Tracer::instance().disable();

    EXPECT_EQ(Tracer::instance().eventCount(), 4u);
    std::string json = exported();
    EXPECT_NE(json.find("\"name\":\"worker.work\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"unit-worker\""), std::string::npos);
    // Two distinct data tids (metadata aside, tid 0 is the process
    // name record): main's buffer and the worker's.
    EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
    EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
}

TEST_F(TraceTest, ExportToFileRejectsBadPath)
{
    Tracer::instance().enable();
    trace::begin("x");
    trace::end("x");
    Tracer::instance().disable();
    std::string error;
    EXPECT_FALSE(Tracer::instance().exportToFile(
        "/nonexistent-dir/trace.json", &error));
    EXPECT_NE(error.find("/nonexistent-dir/trace.json"),
              std::string::npos);
}

TEST_F(TraceTest, TimestampsAreMonotonicPerThread)
{
    Tracer::instance().enable();
    for (int i = 0; i < 100; ++i) {
        trace::begin("tick");
        trace::end("tick");
    }
    Tracer::instance().disable();

    // Parse the ts values back out of the JSON in file order; within
    // one thread they must never decrease (check_trace.py asserts the
    // same invariant over the driver's real traces).
    std::string json = exported();
    double last = -1.0;
    size_t pos = 0;
    size_t seen = 0;
    while ((pos = json.find("\"ts\":", pos)) != std::string::npos) {
        pos += 5;
        double ts = std::stod(json.substr(pos));
        EXPECT_GE(ts, last);
        last = ts;
        ++seen;
    }
    EXPECT_EQ(seen, 200u);
}

} // namespace
} // namespace trace
} // namespace uov
