/**
 * @file
 * A small loop-nest IR: exactly the program class the paper handles.
 *
 * A LoopNest is a perfect nest of depth d with constant integer bounds
 * whose body is a list of assignment statements.  Each statement
 * writes one array element and reads several, all through affine
 * accesses element = M*q + offset.  Uniform (constant-distance)
 * dependences arise when reads and the write share the same linear
 * part M; this is the "regular stencil of dependences" the paper
 * requires (Section 2), and the analysis layer checks it rather than
 * assuming it.
 */

#ifndef UOV_IR_PROGRAM_H
#define UOV_IR_PROGRAM_H

#include <string>
#include <vector>

#include "geometry/ivec.h"
#include "geometry/matrix.h"
#include "geometry/polyhedron.h"

namespace uov {

/** An affine array access: element = coef * q + offset. */
struct Access
{
    std::string array;
    IMatrix coef; ///< rank x depth linear part
    IVec offset;  ///< rank-dimensional constant part

    /** The element touched at iteration q. */
    IVec elementAt(const IVec &q) const;

    std::string str() const;
};

/** Identity-access helper: array[q + offset] at nest depth d. */
Access uniformAccess(std::string array, IVec offset);

/** One assignment statement: write = f(reads...). */
struct Statement
{
    std::string name;
    Access write;
    std::vector<Access> reads;
};

/** A perfect loop nest over the integer box [lo, hi]. */
class LoopNest
{
  public:
    LoopNest(std::string name, IVec lo, IVec hi);

    const std::string &name() const { return _name; }
    size_t depth() const { return _lo.dim(); }
    const IVec &lo() const { return _lo; }
    const IVec &hi() const { return _hi; }

    /** The iteration-space polyhedron (a box for this IR). */
    Polyhedron domain() const;

    /** Number of iterations. */
    int64_t tripCount() const;

    /** Append a statement; validates access shapes against depth(). */
    void addStatement(Statement stmt);

    const std::vector<Statement> &statements() const { return _stmts; }
    const Statement &statement(size_t i) const;

    /** Index of the statement writing @p array, or npos. */
    size_t writerOf(const std::string &array) const;

    static constexpr size_t npos = SIZE_MAX;

    std::string str() const;

  private:
    std::string _name;
    IVec _lo;
    IVec _hi;
    std::vector<Statement> _stmts;
};

/** Canned loop nests mirroring the paper's codes (for tests/examples). */
namespace nests {

/** Figure 1(a): A[i,j] = f(A[i-1,j], A[i,j-1], A[i-1,j-1]). */
LoopNest simpleExample(int64_t n, int64_t m);

/** Section 5: 5-point stencil over time, B[t,i] from B[t-1, i-2..i+2]. */
LoopNest fivePointStencil(int64_t t_steps, int64_t len);

/**
 * Section 5: protein string matching scores D[i,j] from D[i-1,j],
 * D[i,j-1], D[i-1,j-1] (plus the weight table, which carries no
 * loop-carried dependence).
 */
LoopNest proteinMatching(int64_t n0, int64_t n1);

} // namespace nests

} // namespace uov

#endif // UOV_IR_PROGRAM_H
