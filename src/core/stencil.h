/**
 * @file
 * Stencil: a regular pattern of value (flow) dependences.
 *
 * The paper's setting (Section 2): a perfectly nested loop whose
 * reduced ISG has the same set V = {v_1 ... v_m} of constant-distance
 * value dependences at every node.  Each v points from the producing
 * iteration to the consuming iteration, so legality of the original
 * program makes every v lexicographically positive.
 */

#ifndef UOV_CORE_STENCIL_H
#define UOV_CORE_STENCIL_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "geometry/ivec.h"

namespace uov {

/** An immutable, validated dependence stencil. */
class Stencil
{
  public:
    /**
     * Build a stencil from dependence distance vectors.
     *
     * @throws UovUserError when empty, dimensions disagree, a vector is
     *         zero or not lexicographically positive, or there are more
     *         than 32 distinct vectors (PATHSET masks are 32-bit).
     * Duplicates are removed.
     */
    explicit Stencil(std::vector<IVec> deps);

    size_t dim() const { return _deps[0].dim(); }
    size_t size() const { return _deps.size(); }

    const std::vector<IVec> &deps() const { return _deps; }
    const IVec &dep(size_t i) const { return _deps[i]; }

    bool contains(const IVec &v) const;

    /**
     * The trivially computed initial universal occupancy vector
     * ~ov_o = sum of all v_i (Section 3.2.1).  Always a legal UOV: for
     * every i, ov_o - v_i = sum of the remaining vectors, which is a
     * non-negative combination.
     */
    IVec initialUov() const;

    /**
     * A positive linear functional: h with h . v > 0 for every
     * dependence.  Exists for any set of lexicographically positive
     * vectors; used to prove termination of cone-membership search.
     *
     * Returns std::nullopt when the exact weights would overflow
     * int64 (pathological stencils, e.g. NP-completeness reduction
     * instances); callers then rely on component-wise pruning.
     */
    std::optional<IVec> positiveFunctional() const;

    /**
     * True iff every dependence has a non-negative coordinate @p c.
     * Used for component-wise cone pruning.
     */
    bool allNonNegativeInCoord(size_t c) const;

    /** True iff every dependence has a non-positive coordinate @p c. */
    bool allNonPositiveInCoord(size_t c) const;

    /** Largest |coordinate| over all dependences. */
    int64_t maxAbsCoord() const;

    /**
     * Extreme vectors of the 2-D dependence cone (Section 3.2.1 uses
     * these to bound the search): the two angularly extreme
     * dependences.  @pre dim() == 2
     */
    std::pair<IVec, IVec> extremeVectors2D() const;

    std::string str() const;

    bool operator==(const Stencil &o) const { return _deps == o._deps; }

  private:
    std::vector<IVec> _deps;
};

/** Named stencils used throughout the paper, for tests and benches. */
namespace stencils {

/** Figure 1: A[i,j] = f(A[i-1,j], A[i,j-1], A[i-1,j-1]). */
Stencil simpleExample();

/** Figure 2's 3-vector stencil (one of each slope). */
Stencil threeVector();

/** Section 5: 5-point 1-D stencil over time, deps (1,-2)..(1,2). */
Stencil fivePoint();

/** Section 5: protein string matching, deps (1,0), (0,1), (1,1). */
Stencil proteinMatching();

/** 3-D: 7-point heat-equation stencil over time (t, x, y). */
Stencil heat3D();

} // namespace stencils

} // namespace uov

#endif // UOV_CORE_STENCIL_H
