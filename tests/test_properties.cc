/**
 * @file
 * Property-based sweeps over randomly generated stencils, OVs, ISGs
 * and schedules: the invariants the whole system rests on, checked on
 * inputs nobody hand-picked.  All randomness is seeded (SplitMix64),
 * so failures are reproducible.
 */

#include <gtest/gtest.h>

#include "core/greedy.h"
#include "core/search.h"
#include "core/storage_count.h"
#include "core/uov.h"
#include "mapping/storage_mapping.h"
#include "schedule/executor.h"
#include "schedule/legality.h"
#include "support/rng.h"

namespace uov {
namespace {

/** Random small 2-D stencil with lex-positive vectors. */
Stencil
randomStencil2D(SplitMix64 &rng)
{
    size_t m = 1 + rng.nextBelow(4);
    std::vector<IVec> deps;
    for (size_t i = 0; i < m; ++i) {
        int64_t a = rng.nextInRange(0, 2);
        int64_t b = a == 0 ? rng.nextInRange(1, 3)
                           : rng.nextInRange(-3, 3);
        deps.push_back(IVec{a, b});
    }
    return Stencil(std::move(deps));
}

class SeededProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(SeededProperty, InitialUovIsAlwaysUniversal)
{
    SplitMix64 rng(GetParam());
    for (int k = 0; k < 20; ++k) {
        Stencil s = randomStencil2D(rng);
        UovOracle oracle(s);
        EXPECT_TRUE(oracle.isUov(s.initialUov())) << s.str();
    }
}

TEST_P(SeededProperty, SearchResultIsUniversalAndMatchesExhaustive)
{
    SplitMix64 rng(GetParam() ^ 0xABCD);
    for (int k = 0; k < 10; ++k) {
        Stencil s = randomStencil2D(rng);
        SearchResult bb =
            BranchBoundSearch(s, SearchObjective::ShortestVector).run();
        SearchResult ex =
            exhaustiveUovSearch(s, SearchObjective::ShortestVector);
        UovOracle oracle(s);
        EXPECT_TRUE(oracle.isUov(bb.best_uov)) << s.str();
        EXPECT_EQ(bb.best_objective, ex.best_objective) << s.str();
        EXPECT_LE(bb.best_objective, s.initialUov().normSquared())
            << s.str();
    }
}

TEST_P(SeededProperty, GreedyIsUniversalAndNoBetterThanExact)
{
    SplitMix64 rng(GetParam() ^ 0x1234);
    for (int k = 0; k < 10; ++k) {
        Stencil s = randomStencil2D(rng);
        GreedyResult greedy = greedyUovSearch(s);
        SearchResult bb =
            BranchBoundSearch(s, SearchObjective::ShortestVector).run();
        EXPECT_TRUE(UovOracle(s).isUov(greedy.uov)) << s.str();
        EXPECT_GE(greedy.objective, bb.best_objective) << s.str();
    }
}

TEST_P(SeededProperty, UovSetClosedUnderGeneratorAddition)
{
    SplitMix64 rng(GetParam() ^ 0x5678);
    for (int k = 0; k < 10; ++k) {
        Stencil s = randomStencil2D(rng);
        SearchResult bb =
            BranchBoundSearch(s, SearchObjective::ShortestVector).run();
        UovOracle oracle(s);
        for (const auto &v : s.deps())
            EXPECT_TRUE(oracle.isUov(bb.best_uov + v))
                << s.str() << " + " << v.str();
    }
}

TEST_P(SeededProperty, MappingInvariantsForRandomOvs)
{
    SplitMix64 rng(GetParam() ^ 0x9E37);
    for (int k = 0; k < 15; ++k) {
        IVec ov{rng.nextInRange(-3, 3), rng.nextInRange(-3, 3)};
        if (ov.isZero())
            ov = IVec{1, 1};
        int64_t n = 4 + static_cast<int64_t>(rng.nextBelow(8));
        int64_t m = 4 + static_cast<int64_t>(rng.nextBelow(8));
        Polyhedron isg = Polyhedron::box(IVec{0, 0}, IVec{n, m});
        for (ModLayout layout :
             {ModLayout::Interleaved, ModLayout::Blocked}) {
            StorageMapping sm = StorageMapping::create(ov, isg, layout);
            EXPECT_EQ(sm.cellCount(), storageCellCount(ov, isg));
            for (int64_t x = 0; x <= n; ++x) {
                for (int64_t y = 0; y <= m; ++y) {
                    IVec q{x, y};
                    int64_t i = sm(q);
                    EXPECT_GE(i, 0) << ov.str() << q.str();
                    EXPECT_LT(i, sm.cellCount()) << ov.str() << q.str();
                    EXPECT_EQ(sm(q), sm(q + ov)) << ov.str() << q.str();
                }
            }
        }
    }
}

TEST_P(SeededProperty, UovCorrectUnderRandomLegalSchedules)
{
    SplitMix64 rng(GetParam() ^ 0xF00D);
    for (int k = 0; k < 5; ++k) {
        Stencil s = randomStencil2D(rng);
        SearchResult bb =
            BranchBoundSearch(s, SearchObjective::ShortestVector).run();
        StencilComputation comp(s);
        for (int j = 0; j < 3; ++j) {
            RandomTopoSchedule sched(s, rng.next());
            ExecutionResult r = runWithOvStorage(
                comp, sched, IVec{0, 0}, IVec{6, 6}, bb.best_uov);
            EXPECT_TRUE(r.correct()) << s.str();
            EXPECT_EQ(r.clobbers, 0u) << s.str();
        }
    }
}

TEST_P(SeededProperty, NonMembersShorterThanUovFailSomeSchedule)
{
    // For every strictly-shorter non-UOV candidate that maps at least
    // two in-box points together, some random schedule must clobber.
    SplitMix64 rng(GetParam() ^ 0xBEEF);
    for (int k = 0; k < 5; ++k) {
        Stencil s = randomStencil2D(rng);
        UovOracle oracle(s);
        SearchResult bb =
            BranchBoundSearch(s, SearchObjective::ShortestVector).run();
        // Pick a lex-positive non-UOV shorter than the optimum.
        IVec bad(2);
        bool found = false;
        for (int64_t a = 0; a <= 2 && !found; ++a) {
            for (int64_t b = -2; b <= 2 && !found; ++b) {
                IVec cand{a, b};
                if (cand.isZero() || !cand.isLexPositive())
                    continue;
                if (cand.normSquared() >= bb.best_objective)
                    continue;
                if (!oracle.isUov(cand)) {
                    bad = cand;
                    found = true;
                }
            }
        }
        if (!found)
            continue; // optimum is already minimal over candidates
        StencilComputation comp(s);
        bool failed = false;
        for (uint64_t seed = 0; seed < 12 && !failed; ++seed) {
            ExecutionResult r = runWithOvStorage(
                comp, RandomTopoSchedule(s, seed), IVec{0, 0},
                IVec{7, 7}, bad);
            if (!r.correct())
                failed = true;
        }
        EXPECT_TRUE(failed) << s.str() << " bad ov " << bad.str();
    }
}

TEST_P(SeededProperty, ConeMembershipConsistentWithCertificates)
{
    SplitMix64 rng(GetParam() ^ 0xCAFE);
    for (int k = 0; k < 10; ++k) {
        Stencil s = randomStencil2D(rng);
        ConeSolver solver(s);
        for (int j = 0; j < 10; ++j) {
            IVec w{rng.nextInRange(0, 6), rng.nextInRange(-6, 6)};
            bool member = solver.contains(w);
            auto cert = solver.certificate(w);
            EXPECT_EQ(member, cert.has_value()) << s.str() << w.str();
            if (cert) {
                IVec sum(2);
                for (size_t i = 0; i < cert->size(); ++i) {
                    EXPECT_GE((*cert)[i], 0);
                    sum += s.dep(i) * (*cert)[i];
                }
                EXPECT_EQ(sum, w) << s.str();
            }
        }
    }
}

TEST_P(SeededProperty, ThreeDimensionalSearchMatchesExhaustive)
{
    // Random 3-D stencils exercise the conservative (dual-functional)
    // pruning path; optimality must still hold.
    SplitMix64 rng(GetParam() ^ 0x3D3D);
    for (int k = 0; k < 5; ++k) {
        std::vector<IVec> deps;
        size_t m = 1 + rng.nextBelow(3);
        for (size_t i = 0; i < m; ++i) {
            deps.push_back(IVec{1 + rng.nextInRange(0, 1),
                                rng.nextInRange(-2, 2),
                                rng.nextInRange(-2, 2)});
        }
        Stencil s(std::move(deps));
        SearchResult bb =
            BranchBoundSearch(s, SearchObjective::ShortestVector).run();
        SearchResult ex =
            exhaustiveUovSearch(s, SearchObjective::ShortestVector);
        EXPECT_EQ(bb.best_objective, ex.best_objective) << s.str();
        EXPECT_TRUE(UovOracle(s).isUov(bb.best_uov)) << s.str();
    }
}

TEST_P(SeededProperty, NegativeOriginIsgsThroughMappingAndExecutor)
{
    // ISG boxes that do not start at the origin: shifts must place
    // every cell in range and execution must stay exact.
    SplitMix64 rng(GetParam() ^ 0x0FF5);
    for (int k = 0; k < 5; ++k) {
        Stencil s = randomStencil2D(rng);
        SearchResult bb =
            BranchBoundSearch(s, SearchObjective::ShortestVector).run();
        IVec lo{rng.nextInRange(-9, -1), rng.nextInRange(-9, -1)};
        IVec hi{lo[0] + 6 + rng.nextInRange(0, 4),
                lo[1] + 6 + rng.nextInRange(0, 4)};
        Polyhedron isg = Polyhedron::box(lo, hi);
        StorageMapping sm = StorageMapping::create(bb.best_uov, isg);
        for (int64_t x = lo[0]; x <= hi[0]; ++x) {
            for (int64_t y = lo[1]; y <= hi[1]; ++y) {
                int64_t i = sm(IVec{x, y});
                EXPECT_GE(i, 0);
                EXPECT_LT(i, sm.cellCount());
            }
        }
        StencilComputation comp(s);
        ExecutionResult r =
            runWithOvStorage(comp, RandomTopoSchedule(s, rng.next()),
                             lo, hi, bb.best_uov);
        EXPECT_TRUE(r.correct()) << s.str();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u,
                                           21u, 34u));

} // namespace
} // namespace uov
