/**
 * @file
 * Empirical validation of multi-statement storage plans: run the
 * two-statement PSM-style recurrence with per-array OV storage (as
 * chosen by planMultiStatement) under the legal schedule family,
 * checking every value against fully expanded reference arrays and
 * counting clobbers per array.
 */

#include <gtest/gtest.h>

#include <memory>

#include "analysis/multi.h"
#include "mapping/expanded_array.h"
#include "mapping/ov_array.h"
#include "schedule/schedule.h"

namespace uov {
namespace {

/** The two-statement nest: E then D (see test_multi.cc). */
LoopNest
psmTwoStatementNest(int64_t n)
{
    LoopNest nest("psm2", IVec{1, 1}, IVec{n, n});
    Statement e;
    e.name = "E";
    e.write = uniformAccess("E", IVec{0, 0});
    e.reads = {uniformAccess("E", IVec{0, -1}),
               uniformAccess("D", IVec{0, -1})};
    nest.addStatement(e);
    Statement d;
    d.name = "D";
    d.write = uniformAccess("D", IVec{0, 0});
    d.reads = {uniformAccess("D", IVec{-1, -1}),
               uniformAccess("D", IVec{-1, 0}),
               uniformAccess("E", IVec{0, 0})};
    nest.addStatement(d);
    return nest;
}

uint64_t
mix(uint64_t a, uint64_t b)
{
    uint64_t z = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    return z ^ (z >> 27);
}

uint64_t
boundary(const IVec &p)
{
    return mix(0x1234, static_cast<uint64_t>(p[0] * 131 + p[1]));
}

struct MultiRun
{
    uint64_t mismatches = 0;
    uint64_t clobbers = 0;
};

/** Execute E/D with per-array OV storage under a schedule. */
MultiRun
runMulti(const Schedule &sched, int64_t n, const IVec &e_ov,
         const IVec &d_ov)
{
    IVec lo{1, 1}, hi{n, n};
    Polyhedron domain = Polyhedron::box(lo, hi);

    // Reference with full expansion, original order.
    ExpandedArray<uint64_t> e_ref(lo, hi), d_ref(lo, hi);
    auto val_or = [&](ExpandedArray<uint64_t> &arr, const IVec &p) {
        return arr.inBounds(p) ? arr.at(p) : boundary(p);
    };
    for (int64_t i = 1; i <= n; ++i) {
        for (int64_t j = 1; j <= n; ++j) {
            IVec q{i, j};
            uint64_t ev = mix(val_or(e_ref, q - IVec{0, 1}),
                              val_or(d_ref, q - IVec{0, 1}));
            e_ref.at(q) = ev;
            uint64_t dv = mix(mix(val_or(d_ref, q - IVec{1, 1}),
                                  val_or(d_ref, q - IVec{1, 0})),
                              ev);
            d_ref.at(q) = dv;
        }
    }

    // OV-mapped run under the given schedule.
    CheckedOVArray<uint64_t> e_arr(StorageMapping::create(e_ov, domain));
    CheckedOVArray<uint64_t> d_arr(StorageMapping::create(d_ov, domain));
    auto in_box = [&](const IVec &p) {
        return p[0] >= 1 && p[1] >= 1 && p[0] <= n && p[1] <= n;
    };

    MultiRun result;
    sched.forEach(lo, hi, [&](const IVec &q) {
        IVec pe = q - IVec{0, 1};
        uint64_t e_in = in_box(pe) ? e_arr.read(q, pe) : boundary(pe);
        uint64_t d_in1 = in_box(pe) ? d_arr.read(q, pe) : boundary(pe);
        uint64_t ev = mix(e_in, d_in1);
        e_arr.write(q, ev);
        if (ev != e_ref.at(q))
            ++result.mismatches;

        IVec pd1 = q - IVec{1, 1};
        IVec pd2 = q - IVec{1, 0};
        uint64_t a = in_box(pd1) ? d_arr.read(q, pd1) : boundary(pd1);
        uint64_t b = in_box(pd2) ? d_arr.read(q, pd2) : boundary(pd2);
        uint64_t dv = mix(mix(a, b), ev);
        d_arr.write(q, dv);
        if (dv != d_ref.at(q))
            ++result.mismatches;
    });
    result.clobbers =
        e_arr.violations().size() + d_arr.violations().size();
    return result;
}

std::vector<std::unique_ptr<Schedule>>
legalSchedules()
{
    // Stencil of the whole nest: {(1,0),(0,1),(1,1)} -- rectangular
    // tiling legal, interchange legal.
    std::vector<std::unique_ptr<Schedule>> out;
    out.push_back(
        std::make_unique<LexSchedule>(LexSchedule::identity(2)));
    out.push_back(
        std::make_unique<LexSchedule>(std::vector<size_t>{1, 0}));
    out.push_back(std::make_unique<TiledSchedule>(
        TiledSchedule::rectangular({3, 5})));
    out.push_back(std::make_unique<WavefrontSchedule>(IVec{2, 1}));
    out.push_back(std::make_unique<RandomTopoSchedule>(
        stencils::proteinMatching(), 17));
    out.push_back(std::make_unique<RandomTopoSchedule>(
        stencils::proteinMatching(), 99));
    return out;
}

TEST(MultiExecutor, PlannedOvsSurviveEverySchedule)
{
    int64_t n = 12;
    MultiNestPlan plan = planMultiStatement(psmTwoStatementNest(n));
    ASSERT_EQ(plan.arrays[0].array, "E");
    IVec e_ov = plan.arrays[0].uov; // (0,1): one cell per row
    IVec d_ov = plan.arrays[1].uov; // (1,1): anti-diagonal
    for (const auto &sched : legalSchedules()) {
        MultiRun r = runMulti(*sched, n, e_ov, d_ov);
        EXPECT_EQ(r.mismatches, 0u) << sched->name();
        EXPECT_EQ(r.clobbers, 0u) << sched->name();
    }
}

TEST(MultiExecutor, ConservativeAntiDiagonalAlsoWorks)
{
    // The hand kernels' conservative choice ((1,1) for both arrays)
    // must also be safe -- more storage, same correctness.
    int64_t n = 12;
    for (const auto &sched : legalSchedules()) {
        MultiRun r = runMulti(*sched, n, IVec{1, 1}, IVec{1, 1});
        EXPECT_EQ(r.mismatches, 0u) << sched->name();
        EXPECT_EQ(r.clobbers, 0u) << sched->name();
    }
}

TEST(MultiExecutor, TooAggressiveEOvFails)
{
    // E with ov = (0,1) is exactly right; D with (0,1) is too
    // aggressive (D[i-1][j] and D[i-1][j-1] are still needed) and
    // must clobber under some schedule -- including the original one.
    int64_t n = 12;
    MultiRun r = runMulti(LexSchedule::identity(2), n, IVec{0, 1},
                          IVec{0, 1});
    EXPECT_GT(r.mismatches + r.clobbers, 0u);
}

} // namespace
} // namespace uov
