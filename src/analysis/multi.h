/**
 * @file
 * Multi-statement storage planning (the paper's Section 3 note --
 * "If the loop has multiple assignments, we would treat each
 * separately, resulting in disjoint storage" -- plus its Section 7
 * future work, cross-statement consumers handled exactly).
 *
 * For a nest with several assignment statements:
 *  - legal schedules are constrained by the union of ALL loop-carried
 *    flow dependences (the schedule cone);
 *  - each written array's liveness is governed by its own consumer
 *    distances, which may come from *other* statements, including
 *    same-iteration (distance zero) uses by textually later
 *    statements;
 *  - each array gets its own occupancy vector, safe under every legal
 *    schedule of the whole nest, and its own disjoint OVArray.
 *
 * The protein-matching DP with its score and gap-chain arrays is the
 * canonical two-statement instance (see tests).
 */

#ifndef UOV_ANALYSIS_MULTI_H
#define UOV_ANALYSIS_MULTI_H

#include <string>
#include <vector>

#include "core/stencil.h"
#include "ir/program.h"
#include "mapping/storage_mapping.h"

namespace uov {

/** Storage decision for one written array. */
struct ArrayStoragePlan
{
    std::string array;
    size_t statement_index;
    std::vector<IVec> consumers; ///< flow distances into reads, all stmts
    IVec uov;                    ///< safe under every legal nest schedule
    StorageMapping mapping;

    std::string str() const;
};

/** Whole-nest storage plan: disjoint per-array OV storage. */
struct MultiNestPlan
{
    Stencil schedule_cone; ///< union of loop-carried flow dependences
    std::vector<ArrayStoragePlan> arrays;

    /** Total cells over all arrays. */
    int64_t totalCells() const;

    std::string str() const;
};

/**
 * Plan storage for every statement of @p nest.
 *
 * @throws UovUserError when the nest has no loop-carried flow at all,
 *         or when a cross-statement read breaks the uniform-access
 *         precondition.
 */
MultiNestPlan planMultiStatement(const LoopNest &nest,
                                 ModLayout layout =
                                     ModLayout::Interleaved);

/**
 * Cross-statement value-flow extraction for one written array:
 * distances of every read of @p array across all statements, with
 * zero-distance reads allowed only from textually later statements.
 */
std::vector<IVec> consumerDistances(const LoopNest &nest,
                                    const std::string &array);

} // namespace uov

#endif // UOV_ANALYSIS_MULTI_H
