#include "support/logging.h"

#include <chrono>

#include "support/json.h"

namespace uov {

Logger &
Logger::instance()
{
    static Logger logger;
    return logger;
}

std::string
traceIdHex(uint64_t id)
{
    static const char *digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<size_t>(i)] = digits[id & 0xf];
        id >>= 4;
    }
    return out;
}

void
Logger::write(LogLevel lvl, const std::string &msg)
{
    if (!_sink)
        return;
    uint64_t trace_id = _trace_id != nullptr ? _trace_id() : 0;
    if (!_json) {
        *_sink << "[uov:" << logLevelName(lvl) << "] " << msg;
        if (trace_id != 0)
            *_sink << " trace_id=" << traceIdHex(trace_id);
        *_sink << "\n";
        return;
    }
    // Millisecond offset from the first JSON-mode line: stable across
    // machines (no wall-clock parsing) and still orders the stream.
    static const auto t0 = std::chrono::steady_clock::now();
    auto ts = std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    *_sink << "{\"ts\":" << ts << ",\"level\":\"" << logLevelName(lvl)
           << "\"";
    if (trace_id != 0)
        *_sink << ",\"trace_id\":\"" << traceIdHex(trace_id) << "\"";
    *_sink << ",\"msg\":\"" << jsonEscape(msg) << "\"}\n";
}

const char *
logLevelName(LogLevel lvl)
{
    switch (lvl) {
      case LogLevel::Error: return "error";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Info:  return "info";
      case LogLevel::Debug: return "debug";
    }
    return "?";
}

} // namespace uov
