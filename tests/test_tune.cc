/**
 * @file
 * The joint autotuner's contracts: the anytime floor (a 0 ms deadline
 * still returns a legal, certified, Degraded best-so-far), simulator
 * determinism (identical configurations replay byte-for-byte), the
 * candidate-budget axis, the observer hook, and the 'query tune'
 * service verb's deterministic response prefix.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "codegen/jit.h"
#include "core/uov.h"
#include "service/executor.h"
#include "tune/tune.h"

namespace uov {
namespace {

LoopNest
fivePointNest(int64_t t_hi = 6, int64_t x_hi = 12)
{
    return nestFromStencil(stencils::fivePoint(), IVec{0, 0},
                           IVec{t_hi, x_hi});
}

/** A winner must be legal; OV-mapped winners must carry a true UOV. */
void
expectCertified(const tune::TuneCandidate &best, const Stencil &s)
{
    EXPECT_TRUE(best.schedule.legal(s)) << best.str();
    if (best.storage == GenStorage::OvMapped) {
        EXPECT_GE(best.uov()[0], 1) << best.str();
        EXPECT_TRUE(UovOracle(s).isUov(best.uov())) << best.str();
    }
}

TEST(Tuner, UnboundedRunEvaluatesTheWholeSpace)
{
    tune::Tuner tuner(fivePointNest());
    tune::TuneResult res = tuner.run();

    EXPECT_EQ(res.status, tune::TuneStatus::Optimal);
    EXPECT_TRUE(res.degraded_reason.empty());
    EXPECT_EQ(res.evaluated, res.candidates_total);
    EXPECT_GT(res.candidates_total, 1u);
    expectCertified(res.best, tuner.stencil());

    // Candidate 0 is pinned: the default lexicographic OV-mapped
    // kernel, the baseline every speedup claim is made against.
    ASSERT_FALSE(tuner.candidates().empty());
    const tune::TuneCandidate &base = tuner.candidates()[0];
    EXPECT_EQ(base.schedule.str(), "lex");
    EXPECT_EQ(base.storage, GenStorage::OvMapped);

    // The winner is never worse than the baseline it includes.
    EXPECT_LE(res.best_score, tuner.scores()[0]);
}

TEST(Tuner, ZeroDeadlineReturnsLegalCertifiedDegradedBest)
{
    tune::TuneOptions opt;
    opt.budget.deadline = Deadline::afterMillis(0);
    tune::Tuner tuner(fivePointNest(), opt);
    tune::TuneResult res = tuner.run();

    EXPECT_EQ(res.status, tune::TuneStatus::Degraded);
    EXPECT_EQ(res.degraded_reason, "deadline");
    EXPECT_GE(res.evaluated, 1u) << "anytime floor: candidate 0 is "
                                    "always evaluated";
    EXPECT_LT(res.evaluated, res.candidates_total);
    expectCertified(res.best, tuner.stencil());
}

TEST(Tuner, ZeroDeadlineRunsAreDeterministic)
{
    // deadline_ms 0 is inside the byte-determinism contract: the
    // evaluated prefix is exactly the candidate-0 floor both times.
    auto once = [] {
        tune::TuneOptions opt;
        opt.budget.deadline = Deadline::afterMillis(0);
        tune::Tuner tuner(fivePointNest(), opt);
        tune::TuneResult res = tuner.run();
        std::ostringstream oss;
        oss << res.best.str() << "|" << res.best_score << "|"
            << res.evaluated << "/" << res.candidates_total << "|"
            << res.degraded_reason;
        return oss.str();
    };
    EXPECT_EQ(once(), once());
}

TEST(Tuner, SimulatorRunsReplayExactly)
{
    auto once = [] {
        tune::Tuner tuner(fivePointNest());
        tune::TuneResult res = tuner.run();
        std::ostringstream oss;
        oss << res.best.str() << "|" << res.best_score << "|"
            << res.evaluated;
        for (double s : tuner.scores())
            oss << "|" << s;
        return oss.str();
    };
    EXPECT_EQ(once(), once());
}

TEST(Tuner, CandidateBudgetTruncatesAndTags)
{
    tune::TuneOptions opt;
    opt.max_candidates = 1;
    tune::Tuner tuner(fivePointNest(), opt);
    tune::TuneResult res = tuner.run();

    EXPECT_EQ(res.evaluated, 1u);
    EXPECT_EQ(res.status, tune::TuneStatus::Degraded);
    EXPECT_EQ(res.degraded_reason, "candidate-budget");
    // With only candidate 0 evaluated, the baseline IS the best.
    EXPECT_EQ(res.best.schedule.str(), "lex");
    expectCertified(res.best, tuner.stencil());
}

TEST(Tuner, ObserverSeesEveryEvaluationInOrder)
{
    size_t calls = 0;
    size_t last_index = 0;
    bool monotone = true;
    tune::TuneOptions opt;
    opt.on_candidate = [&](const tune::TuneCandidate &, double,
                           size_t index, int64_t) {
        if (calls > 0 && index <= last_index)
            monotone = false;
        last_index = index;
        ++calls;
    };
    tune::Tuner tuner(fivePointNest(), opt);
    tune::TuneResult res = tuner.run();
    EXPECT_EQ(calls, res.evaluated);
    EXPECT_TRUE(monotone) << "evaluation order must follow "
                             "enumeration order";
}

TEST(TuneService, ParsesTheTuneVerb)
{
    service::Request r = service::parseRequestLine(
        "query tune bounds 0..5 0..9 deps [1,-1] [1,0] [1,1]", 1);
    EXPECT_TRUE(r.error.empty()) << r.error;
    EXPECT_TRUE(r.tune);
    EXPECT_FALSE(r.native);
    ASSERT_TRUE(r.isg_lo.has_value());
    EXPECT_EQ(r.deps.size(), 3u);
}

TEST(TuneService, TuneNeedsBounds)
{
    service::Request r = service::parseRequestLine(
        "query tune deps [1,0] [1,1]", 1);
    EXPECT_FALSE(r.error.empty());
    EXPECT_NE(r.error.find("bounds"), std::string::npos) << r.error;
}

TEST(TuneService, ZeroDeadlineResponseIsDeterministic)
{
    // With deadline_ms 0 the measurement tail is constant ("deadline"
    // or "unavailable"), so the whole response line must replay.
    service::Request r = service::parseRequestLine(
        "query tune deadline_ms 0 bounds 0..5 0..9 deps [1,-1] [1,0] "
        "[1,1]",
        1);
    ASSERT_TRUE(r.error.empty()) << r.error;
    std::string a = service::runTuneRequest(r);
    std::string b = service::runTuneRequest(r);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.rfind("answer 1 tune uov=", 0), 0u) << a;
    EXPECT_NE(a.find(" degraded=deadline"), std::string::npos) << a;
    EXPECT_NE(a.find(" evaluated="), std::string::npos) << a;
    EXPECT_EQ(a.find("_ns"), std::string::npos)
        << "expired deadline must not reach the measurement tail: "
        << a;
}

TEST(TuneService, BatchDirectRoutesTuneRequests)
{
    std::istringstream in("query tune deadline_ms 0 bounds 0..5 0..9 "
                          "deps [1,-1] [1,0] [1,1]\n");
    std::vector<service::Request> reqs = service::parseRequests(in);
    ASSERT_EQ(reqs.size(), 1u);
    std::vector<std::string> out = service::runBatchDirect(reqs);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], service::runTuneRequest(reqs[0]));
}

TEST(TuneService, MeasuredResponseReportsSpeedup)
{
    if (!JitCompiler::hostCompilerAvailable())
        GTEST_SKIP() << "no host C compiler on PATH";
    service::Request r = service::parseRequestLine(
        "query tune bounds 0..5 0..9 deps [1,-1] [1,0] [1,1]", 1);
    ASSERT_TRUE(r.error.empty()) << r.error;
    std::string line = service::runTuneRequest(r);
    EXPECT_EQ(line.rfind("answer 1 tune uov=", 0), 0u) << line;
    EXPECT_NE(line.find(" lex_ns="), std::string::npos) << line;
    EXPECT_NE(line.find(" best_ns="), std::string::npos) << line;
    EXPECT_NE(line.find(" speedup_vs_lex="), std::string::npos)
        << line;
    EXPECT_NE(line.find(" verified=ok"), std::string::npos) << line;
}

TEST(NativeService, ExpiredDeadlineIsOneActionableError)
{
    // 'query native' exists to time a full JIT run; a deadline it
    // cannot meet must become a deterministic error line up front,
    // not a wasted compile.
    service::Request r = service::parseRequestLine(
        "query native deadline_ms 0 bounds 0..5 0..9 deps [1,-1] "
        "[1,0] [1,1]",
        1);
    ASSERT_TRUE(r.error.empty()) << r.error;
    std::string a = service::runNativeRequest(r);
    std::string b = service::runNativeRequest(r);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.rfind("error 1 ", 0), 0u) << a;
    EXPECT_NE(a.find("deadline_ms 0 expired"), std::string::npos)
        << a;
    EXPECT_NE(a.find("raise or drop the deadline"), std::string::npos)
        << a;
}

TEST(Tuner, JitEvaluatedTuneVerifiesBitExactness)
{
    if (!JitCompiler::hostCompilerAvailable())
        GTEST_SKIP() << "no host C compiler on PATH";
    // JitEvaluator verifies every measured kernel against the
    // interpreter internally; a clean run over the lowerable space is
    // the positive half of that contract.
    tune::JitEvalOptions jopts;
    jopts.runs = 1;
    tune::JitEvaluator jit_eval(jopts);
    tune::TuneOptions opt;
    opt.evaluator = &jit_eval;
    opt.max_candidates = 4;
    tune::Tuner tuner(fivePointNest(), opt);
    tune::TuneResult res = tuner.run();
    EXPECT_GE(res.evaluated, 1u);
    expectCertified(res.best, tuner.stencil());
}

} // namespace
} // namespace uov
