#include "tune/evaluator.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <sstream>
#include <unordered_set>

#include "support/error.h"
#include "support/trace.h"

namespace uov {
namespace tune {

int64_t
TuneCandidate::cells() const
{
    return storage == GenStorage::OvMapped ? plan->mapping.cellCount()
                                           : plan->expanded_cells;
}

std::string
TuneCandidate::str() const
{
    std::ostringstream oss;
    oss << "storage="
        << (storage == GenStorage::OvMapped ? "ov" : "expanded");
    if (storage == GenStorage::OvMapped)
        oss << " uov=" << plan->mapping.ov().str();
    oss << " schedule=" << schedule.str();
    return oss.str();
}

const std::vector<double> &
TuneContext::reference()
{
    if (!_ref) {
        TRACE_SPAN("tune.reference");
        _ref = interpretKernel(*_nest);
    }
    return *_ref;
}

namespace {

/**
 * Streams one candidate's accesses through a MemorySystem with the
 * emitted body grouping: within a group (one register-tiled body),
 * reads forwarded from an already executed in-group write are free,
 * repeated reads of one cell share a load, and the group costs one
 * loop branch.
 */
class AccessStream
{
  public:
    AccessStream(MemorySystem &mem, const TuneCandidate &cand,
                 const std::vector<IVec> &deps, const IVec &lo,
                 const IVec &hi)
        : _mem(mem), _cand(cand), _deps(deps), _lo(lo), _hi(hi),
          _ov(cand.storage == GenStorage::OvMapped)
    {
        size_t d = lo.dim();
        _stride.assign(d, 1);
        for (size_t k = d; k-- > 1;)
            _stride[k - 1] = _stride[k] * (hi[k] - lo[k] + 1);
    }

    void
    point(const IVec &q)
    {
        _group.push_back(q);
    }

    void
    flush()
    {
        if (_group.empty())
            return;
        _loaded.clear();
        _executed.clear();
        for (const IVec &q : _group) {
            for (const IVec &v : _deps) {
                IVec src = q - v;
                if (!inBox(src)) {
                    // Boundary value: computed arithmetically by the
                    // generated bval(), no memory traffic.
                    _mem.compute(1.0);
                    continue;
                }
                if (_executed.count(linear(src)) != 0)
                    continue; // forwarded through a register
                int64_t cell = cellOf(src);
                if (_loaded.insert(cell).second)
                    _mem.access(static_cast<uint64_t>(cell) * 8, false);
            }
            _mem.access(static_cast<uint64_t>(cellOf(q)) * 8, true);
            _executed.insert(linear(q));
            // The add chain: one flop per read plus the store issue.
            _mem.compute(1.0 +
                         0.5 * static_cast<double>(_deps.size()));
        }
        _mem.branch();
        _group.clear();
    }

  private:
    bool
    inBox(const IVec &q) const
    {
        for (size_t k = 0; k < q.dim(); ++k)
            if (q[k] < _lo[k] || q[k] > _hi[k])
                return false;
        return true;
    }

    int64_t
    linear(const IVec &q) const
    {
        int64_t idx = 0;
        for (size_t k = 0; k < q.dim(); ++k)
            idx += (q[k] - _lo[k]) * _stride[k];
        return idx;
    }

    int64_t
    cellOf(const IVec &q) const
    {
        return _ov ? _cand.plan->mapping(q) : linear(q);
    }

    MemorySystem &_mem;
    const TuneCandidate &_cand;
    const std::vector<IVec> &_deps;
    const IVec &_lo;
    const IVec &_hi;
    bool _ov;
    std::vector<int64_t> _stride;
    std::vector<IVec> _group;
    std::set<int64_t> _loaded;
    std::unordered_set<int64_t> _executed;
};

/**
 * Replay the exact register-tiled emission order (codegen.cc
 * emitRegisterTiled): main jam blocks of J x U copies, an unroll
 * remainder of J x 1 groups, then a jam remainder of 1 x U and 1 x 1
 * groups.  Copies execute innermost-offset-major, jam-offset minor.
 */
void
replayRegisterTiled(AccessStream &stream, const IVec &lo,
                    const IVec &hi, int64_t jam, int64_t unroll)
{
    size_t d = lo.dim();
    size_t u = d - 1;
    size_t j = d >= 2 ? d - 2 : 0;

    auto innerLoops = [&](IVec &q, int64_t copies) {
        for (int64_t qu = lo[u]; qu + unroll - 1 <= hi[u];
             qu += unroll) {
            for (int64_t b = 0; b < unroll; ++b)
                for (int64_t a = 0; a < copies; ++a) {
                    if (d >= 2)
                        q[j] += a;
                    q[u] = qu + b;
                    stream.point(q);
                    if (d >= 2)
                        q[j] -= a;
                }
            stream.flush();
        }
        int64_t rem_from =
            lo[u] + ((hi[u] - lo[u] + 1) / unroll) * unroll;
        for (int64_t qu = rem_from; qu <= hi[u]; ++qu) {
            for (int64_t a = 0; a < copies; ++a) {
                if (d >= 2)
                    q[j] += a;
                q[u] = qu;
                stream.point(q);
                if (d >= 2)
                    q[j] -= a;
            }
            stream.flush();
        }
    };

    auto jamLoops = [&](IVec &q) {
        if (d == 1) {
            innerLoops(q, 1);
            return;
        }
        int64_t qj = lo[j];
        for (; qj + jam - 1 <= hi[j]; qj += jam) {
            q[j] = qj;
            innerLoops(q, jam);
        }
        for (; qj <= hi[j]; ++qj) {
            q[j] = qj;
            innerLoops(q, 1);
        }
    };

    IVec q(d);
    if (d <= 2) {
        jamLoops(q);
        return;
    }
    // Plain lexicographic odometer over dims 0..d-3.
    for (size_t k = 0; k < j; ++k)
        q[k] = lo[k];
    for (;;) {
        jamLoops(q);
        size_t k = j;
        for (;;) {
            if (k == 0)
                return;
            --k;
            if (++q[k] <= hi[k])
                break;
            q[k] = lo[k];
        }
    }
}

} // namespace

double
SimEvaluator::score(TuneContext &ctx, const TuneCandidate &cand)
{
    TRACE_SPAN("tune.sim_score");
    const LoopNest &nest = ctx.nest();
    const IVec &lo = nest.lo();
    const IVec &hi = nest.hi();
    const std::vector<IVec> &deps = ctx.stencil().deps();

    MemorySystem mem(_machine);
    AccessStream stream(mem, cand, deps, lo, hi);

    auto lowered = cand.schedule.lower(ctx.stencil());
    if (lowered && lowered->form == LoweredForm::RegisterTiled) {
        replayRegisterTiled(stream, lo, hi,
                            std::max<int64_t>(lowered->jam, 1),
                            std::max<int64_t>(lowered->unroll, 1));
    } else {
        // Everything else visits points one per body; the builder's
        // Schedule object supplies the order (lex, skewed, tiled,
        // reordered) exactly as the empirical legality oracle sees it.
        auto schedule = cand.schedule.buildSchedule(lo, hi);
        schedule->forEach(lo, hi, [&](const IVec &q) {
            stream.point(q);
            stream.flush();
        });
    }
    stream.flush();
    return mem.cycles();
}

JitEvaluator::JitEvaluator(JitEvalOptions options)
    : _jit(options.jit), _runs(options.runs < 1 ? 1 : options.runs)
{
    UOV_REQUIRE(_jit.available(),
                "tune JIT evaluator needs a host C compiler (set "
                "UOV_CC or put cc, gcc, or clang on PATH)");
}

double
JitEvaluator::score(TuneContext &ctx, const TuneCandidate &cand)
{
    TRACE_SPAN("tune.jit_score");
    auto lowered = cand.schedule.lower(ctx.stencil());
    UOV_REQUIRE(lowered.has_value(),
                "tune JIT evaluator: schedule '"
                    << cand.schedule.str()
                    << "' has no native lowering (simulator only)");

    CodegenOptions opts;
    switch (lowered->form) {
    case LoweredForm::Lexicographic:
        opts.schedule = GenSchedule::Lexicographic;
        break;
    case LoweredForm::SkewedTiled:
        opts.schedule = GenSchedule::SkewedTiled;
        break;
    case LoweredForm::RegisterTiled:
        opts.schedule = GenSchedule::RegisterTiled;
        break;
    }
    opts.storage = cand.storage;
    opts.tile_sizes = lowered->tile_sizes;
    opts.unroll = lowered->unroll;
    opts.jam = lowered->jam;
    opts.function_name = "uov_tune_kernel";

    GeneratedCode code = generateC(ctx.nest(), *cand.plan, opts);
    JitKernel kernel = _jit.compileAndLoad(code);
    auto fn = kernel.fn<void (*)(double *)>(code.function_name);

    const std::vector<double> &ref = ctx.reference();
    std::vector<double> out(ref.size(), 0.0);
    fn(out.data());
    UOV_CHECK(out == ref, "tune candidate {" << cand.str()
                              << "} diverged from the interpreter");

    // Small kernels finish in microseconds, where a single call is
    // mostly clock noise; amortize by looping each sample until it
    // spans ~100 us (the verification call above doubles as warmup
    // and sizes the repetition count).
    auto t0 = std::chrono::steady_clock::now();
    fn(out.data());
    auto t1 = std::chrono::steady_clock::now();
    int64_t once =
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count();
    int64_t iters = once > 0 ? 100'000 / once : 1000;
    iters = std::max<int64_t>(1, std::min<int64_t>(iters, 1000));

    std::vector<int64_t> ns(static_cast<size_t>(_runs));
    for (int r = 0; r < _runs; ++r) {
        auto s0 = std::chrono::steady_clock::now();
        for (int64_t i = 0; i < iters; ++i)
            fn(out.data());
        auto s1 = std::chrono::steady_clock::now();
        ns[static_cast<size_t>(r)] =
            std::chrono::duration_cast<std::chrono::nanoseconds>(s1 -
                                                                 s0)
                .count() /
            iters;
    }
    std::sort(ns.begin(), ns.end());
    int64_t median = ns[ns.size() / 2];
    return static_cast<double>(median < 1 ? 1 : median);
}

} // namespace tune
} // namespace uov
