/**
 * @file
 * Reproduces Table 2: temporary storage of protein string matching's
 * natural, OV-mapped and storage-optimized versions.
 */

#include "bench_common.h"

#include "analysis/pipeline.h"
#include "kernels/psm.h"

using namespace uov;

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseArgs(argc, argv);
    bench::banner("Table 2 (protein string matching temporary "
                  "storage)");

    Table t("Table 2: strings of length n0 and n1");
    t.header({"version", "paper formula", "n0=n1=1000",
              "n0=2000,n1=500"});
    struct Row
    {
        PsmVariant v;
        const char *formula;
    };
    for (const Row &r :
         {Row{PsmVariant::Natural, "n0*n1 + n0 + n1"},
          Row{PsmVariant::Ov, "2*n0 + 2*n1 + 1"},
          Row{PsmVariant::StorageOptimized, "2*n0 + 3"}}) {
        t.addRow()
            .cell(psmVariantName(r.v))
            .cell(r.formula)
            .cell(formatCount(psmTemporaryStorage(r.v, 1000, 1000)))
            .cell(formatCount(psmTemporaryStorage(r.v, 2000, 500)));
    }
    bench::emit(t, opt);

    // Pipeline cross-check on the DP nest: UOV (1,1), one
    // anti-diagonal per value array.
    MappingPlan plan =
        planStorageMapping(nests::proteinMatching(1000, 1000), 0);
    std::cout << "pipeline-derived UOV " << plan.search.best_uov
              << ": " << plan.mapping.cellCount()
              << " cells per value array; the kernel uses two arrays "
                 "(scores and gap chain), giving the paper's "
              << formatCount(psmTemporaryStorage(PsmVariant::Ov, 1000,
                                                 1000))
              << " (+-1 boundary cell)\n";
    return plan.search.best_uov == IVec{1, 1} ? 0 : 1;
}
