/**
 * @file
 * A sharded, mutex-striped LRU cache of certified query answers.
 *
 * UOV search is the NP-complete hot path; a production service
 * survives traffic by never solving the same canonical query twice.
 * Keys hash onto 2^k independent shards, each a classic
 * (mutex, intrusive LRU list, hash index) triple, so concurrent
 * lookups contend only when they collide on a shard -- the standard
 * stripe design.  The byte budget is split evenly across shards and
 * enforced per shard on insert (evict from the cold end until the
 * new entry fits).
 *
 * Counters (hits, misses, evictions) are tallied per shard under the
 * shard mutex and mirrored into an optional MetricsRegistry, giving
 * the reconciliation invariant the replay test asserts:
 * hits + misses == lookups == requests that reached the cache.
 */

#ifndef UOV_SERVICE_RESULT_CACHE_H
#define UOV_SERVICE_RESULT_CACHE_H

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "service/answer.h"
#include "service/canonical.h"
#include "service/metrics.h"

namespace uov {
namespace service {

class ResultCache
{
  public:
    struct Stats
    {
        uint64_t lookups = 0;
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t insertions = 0;
        uint64_t evictions = 0;
        uint64_t entries = 0;
        uint64_t bytes = 0;
    };

    /**
     * @param max_bytes total budget across all shards (0 disables
     *        storage: every lookup misses, inserts are dropped)
     * @param shards requested stripe count, rounded up to a power of
     *        two and clamped to [1, 256]
     * @param metrics optional registry mirror (service.cache.*)
     */
    explicit ResultCache(size_t max_bytes, size_t shards = 16,
                         MetricsRegistry *metrics = nullptr);

    /** Copy out the answer and refresh its recency, if present. */
    std::optional<ServiceAnswer> lookup(const CanonicalKey &key);

    /**
     * Insert (or refresh) an answer, evicting cold entries of the
     * same shard until it fits.  An entry larger than a whole shard
     * budget is dropped (never cached).
     */
    void insert(const CanonicalKey &key, const ServiceAnswer &answer);

    /** Aggregate counters over all shards (racy-read consistent). */
    Stats stats() const;

    size_t shardCount() const { return _shards.size(); }
    size_t maxBytes() const { return _per_shard_bytes * _shards.size(); }

  private:
    struct Entry
    {
        CanonicalKey key;
        ServiceAnswer answer;
        size_t bytes = 0;
    };

    struct Shard
    {
        mutable std::mutex mutex;
        std::list<Entry> lru; ///< front = hottest
        std::unordered_map<CanonicalKey, std::list<Entry>::iterator,
                           CanonicalKeyHash>
            index;
        size_t bytes = 0;
        uint64_t lookups = 0;
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t insertions = 0;
        uint64_t evictions = 0;
    };

    Shard &shardOf(const CanonicalKey &key);

    size_t _per_shard_bytes;
    std::vector<std::unique_ptr<Shard>> _shards;
    Counter *_hits = nullptr;
    Counter *_misses = nullptr;
    Counter *_evictions = nullptr;
    Gauge *_bytes_gauge = nullptr;
};

} // namespace service
} // namespace uov

#endif // UOV_SERVICE_RESULT_CACHE_H
