/**
 * @file
 * Query-service throughput: cold-cache vs warm-cache queries/second
 * across thread counts, on a duplicate-heavy workload drawn from the
 * fuzz generators.
 *
 * "Cold" answers a fresh batch against an empty cache (in-batch
 * duplicates still coalesce and hit -- that is the production shape);
 * "warm" replays the identical batch against the now-populated cache,
 * so every request is a pure lookup.  The warm/cold ratio is the
 * headline number: the service exists because an NP-complete search
 * answered once should never be paid for twice.
 *
 * Not a paper artifact -- this measures the serving layer added on
 * top of the reproduction (see DESIGN.md, "Query service").
 */

#include <algorithm>
#include <thread>

#include "bench_common.h"
#include "fuzz/workload.h"
#include "service/executor.h"

using namespace uov;
using namespace uov::bench;
using namespace uov::service;

namespace {

double
qps(size_t requests, double wall_ns)
{
    return wall_ns > 0 ? static_cast<double>(requests) * 1e9 / wall_ns
                       : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);
    std::cout << "# Query-service throughput: cold vs. warm result "
                 "cache (not a paper artifact)\n\n";

    const size_t requests = opt.quick ? 240 : 2000;
    const size_t distinct = opt.quick ? 6 : 24;
    const uint64_t kVisitCap = 50'000;
    fuzz::WorkloadOptions wopt;
    wopt.requests = requests;
    wopt.distinct = distinct;
    wopt.seed = 42;
    std::vector<Request> workload = fuzz::makeWorkload(wopt);

    unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    std::vector<unsigned> thread_counts;
    for (unsigned n : {1u, 4u, hw})
        if (std::find(thread_counts.begin(), thread_counts.end(), n) ==
            thread_counts.end())
            thread_counts.push_back(n);

    Table t("Service throughput, " + std::to_string(requests) +
            " requests over " + std::to_string(distinct) +
            " distinct queries");
    t.header({"Threads", "Cold ms", "Cold QPS", "Warm ms", "Warm QPS",
              "Warm/Cold", "Hit rate %", "p99 us", "p999 us"});

    for (unsigned threads : thread_counts) {
        ServiceOptions so;
        so.max_visits = kVisitCap;
        MetricsRegistry metrics;
        QueryService svc(so, metrics);
        ThreadPool pool(threads);

        auto start = std::chrono::steady_clock::now();
        runBatch(svc, workload, pool);
        auto mid = std::chrono::steady_clock::now();
        runBatch(svc, workload, pool);
        auto stop = std::chrono::steady_clock::now();

        double cold_ns =
            std::chrono::duration<double, std::nano>(mid - start)
                .count();
        double warm_ns =
            std::chrono::duration<double, std::nano>(stop - mid)
                .count();
        auto st = svc.cacheStats();
        double hit_rate =
            st.lookups
                ? 100.0 * static_cast<double>(st.hits) /
                      static_cast<double>(st.lookups)
                : 0.0;
        // Tail latency across both passes, from the service's own
        // request histogram (what --metrics would report).
        Histogram &latency = metrics.histogram("service.latency_us");

        t.addRow()
            .cell(static_cast<uint64_t>(threads))
            .cell(cold_ns / 1e6)
            .cell(qps(workload.size(), cold_ns), 0)
            .cell(warm_ns / 1e6)
            .cell(qps(workload.size(), warm_ns), 0)
            .cell(warm_ns > 0 ? cold_ns / warm_ns : 0.0, 1)
            .cell(hit_rate, 1)
            .cell(latency.percentile(0.99))
            .cell(latency.percentile(0.999));
    }
    emit(t, opt);
    return 0;
}
