/**
 * @file
 * Reproduces Figure 3: over an ISG with known (constant) bounds, a
 * longer occupancy vector can need less storage than the shortest one
 * -- ov1 = (3,1) takes 16 cells where ov2 = (3,0) takes 27 on the
 * paper's parallelogram.  Also runs the known-bounds branch-and-bound
 * search to show the storage objective picking the longer vector.
 */

#include "bench_common.h"

#include "core/search.h"
#include "core/storage_count.h"
#include "core/uov.h"

using namespace uov;

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseArgs(argc, argv);
    bench::banner("Figure 3 (known ISG bounds: longer OV, less "
                  "storage)");

    // The paper's parallelogram: corners (1,1), (1,6), (10,4), (10,9).
    Polyhedron isg = Polyhedron::fromVertices2D(
        {IVec{1, 1}, IVec{1, 6}, IVec{10, 4}, IVec{10, 9}});

    Table t("Figure 3: storage of candidate OVs over the "
            "parallelogram (1,1)-(1,6)-(10,9)-(10,4)");
    t.header({"ov", "|ov|^2", "mapping vector", "cells (paper)",
              "cells (ours)"});
    struct Row
    {
        IVec ov;
        int64_t paper;
    };
    for (const Row &r : {Row{IVec{3, 1}, 16}, Row{IVec{3, 0}, 27}}) {
        t.addRow()
            .cell(r.ov.str())
            .cell(r.ov.normSquared())
            .cell(mappingVector2D(r.ov).str())
            .cell(r.paper)
            .cell(storageCellCount(r.ov, isg));
    }
    bench::emit(t, opt);

    // A stencil for which both candidates are UOVs, to drive the
    // known-bounds search end to end (the paper does not print the
    // stencil behind Figure 3).
    Stencil stencil({IVec{1, 0}, IVec{1, 1}, IVec{2, 1}});
    UovOracle oracle(stencil);

    SearchOptions sopts;
    sopts.isg = isg;
    SearchResult storage_best =
        BranchBoundSearch(stencil, SearchObjective::BoundedStorage,
                          sopts)
            .run();
    SearchResult shortest =
        BranchBoundSearch(stencil, SearchObjective::ShortestVector)
            .run();

    Table s("Known-bounds search vs shortest-vector search, stencil " +
            stencil.str());
    s.header({"objective", "uov", "|uov|^2", "cells", "visited"});
    s.addRow()
        .cell("shortest vector")
        .cell(shortest.best_uov.str())
        .cell(shortest.best_uov.normSquared())
        .cell(storageCellCount(shortest.best_uov, isg))
        .cell(shortest.stats.visited);
    s.addRow()
        .cell("bounded storage")
        .cell(storage_best.best_uov.str())
        .cell(storage_best.best_uov.normSquared())
        .cell(storage_best.best_objective)
        .cell(storage_best.stats.visited);
    bench::emit(s, opt);

    bool both_uov = oracle.isUov(shortest.best_uov) &&
                    oracle.isUov(storage_best.best_uov);
    bool saves = storage_best.best_objective <=
                 storageCellCount(shortest.best_uov, isg);
    std::cout << "both results are UOVs: " << (both_uov ? "yes" : "NO")
              << "; storage objective saves cells vs shortest: "
              << (saves ? "yes" : "NO") << "\n";
    return both_uov && saves ? 0 : 1;
}
