#!/usr/bin/env python3
"""uovtop: a live terminal dashboard for a running uovd admin plane.

Polls /metrics and /flight on the admin port and renders request
rates, cache/store hit ratios, latency quantiles, shed state, and the
most recent flight-recorder digests.  Uses curses when stdout is a
terminal; falls back to plain text (one frame per poll) when piped.

Usage:
    uovtop.py --port PORT [--host 127.0.0.1] [--interval 1.0]
    uovtop.py --port PORT --once          # one plain-text frame
    uovtop.py --self-test                 # parser unit checks, no I/O

Requires only the Python standard library.
"""

import argparse
import json
import sys
import time
import urllib.request


def fetch(host, port, path, timeout=2.0):
    url = f"http://{host}:{port}{path}"
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.read().decode("utf-8", "replace")


def parse_metrics(text):
    """Prometheus text -> {series_name: value} (labels folded in)."""
    out = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        parts = line.rsplit(None, 1)
        if len(parts) != 2:
            continue
        name, value = parts
        try:
            out[name] = float(value)
        except ValueError:
            continue
    return out


def ratio(a, b):
    return a / b if b else 0.0


class Sampler:
    """Keeps the previous sample to derive per-second rates."""

    def __init__(self):
        self.prev = None
        self.prev_t = None

    def rates(self, metrics, now):
        rates = {}
        if self.prev is not None and now > self.prev_t:
            dt = now - self.prev_t
            for k, v in metrics.items():
                if k.endswith("_total"):
                    rates[k] = max(0.0, v - self.prev.get(k, 0.0)) / dt
        self.prev = dict(metrics)
        self.prev_t = now
        return rates


def metric(metrics, name, default=0.0):
    return metrics.get(name, default)


def render_frame(metrics, rates, flight, width=100):
    """Build the dashboard as a list of lines."""
    m = lambda n: metric(metrics, n)
    lines = []
    lines.append("uovtop -- uovd live telemetry")
    lines.append("-" * width)

    requests = m("uov_service_requests_total")
    lines.append(
        f"requests {requests:10.0f}   "
        f"rate {rates.get('uov_service_requests_total', 0.0):8.1f}/s   "
        f"searches {m('uov_service_searches_total'):8.0f}   "
        f"coalesced {m('uov_service_singleflight_coalesced_total'):6.0f}")

    hits = m("uov_service_cache_hits_total")
    misses = m("uov_service_cache_misses_total")
    lines.append(
        f"cache    hit {100 * ratio(hits, hits + misses):5.1f}%   "
        f"hits {hits:9.0f}   misses {misses:8.0f}   "
        f"store hits {m('uov_service_store_hits_total'):7.0f}")

    lines.append(
        f"outcomes optimal {m('uov_service_optimal_total'):8.0f}   "
        f"degraded {m('uov_service_degraded_total'):7.0f}   "
        f"errors {m('uov_service_request_errors_total'):6.0f}   "
        f"shed {m('uov_service_shed_responses_total'):6.0f}")

    shed = "ENGAGED" if m("uov_service_shed_active") else "off"
    lines.append(
        f"latency  p50 {m('uov_service_latency_us_p50'):7.0f} us   "
        f"p99 {m('uov_service_latency_us_p99'):8.0f} us   "
        f"queue {m('uov_service_queue_depth'):4.0f}   shed {shed}")

    lines.append("-" * width)
    digests = (flight or {}).get("digests", [])
    lines.append(f"flight (last {len(digests)} of "
                 f"{(flight or {}).get('recorded', 0)} recorded)")
    header = (f"{'idx':>5} {'verb':<8} {'outcome':<8} {'wall_us':>8} "
              f"{'nodes':>7} {'hit':<5} {'cause':<16} trace_id")
    lines.append(header)
    for d in digests[-10:]:
        hit = ("c" if d.get("cache_hit") else
               "s" if d.get("store_hit") else
               "f" if d.get("coalesced") else "-")
        lines.append(
            f"{d.get('index', 0):>5} {d.get('verb', '?'):<8} "
            f"{d.get('outcome', '?'):<8} {d.get('wall_us', 0):>8} "
            f"{d.get('nodes', 0):>7} {hit:<5} "
            f"{d.get('cause', ''):<16.16} {d.get('trace_id', '')}")
    return [line[:width] for line in lines]


def run_once(args):
    metrics = parse_metrics(fetch(args.host, args.port, "/metrics"))
    try:
        flight = json.loads(fetch(args.host, args.port, "/flight"))
    except (ValueError, OSError):
        flight = {}
    for line in render_frame(metrics, {}, flight):
        print(line)
    return 0


def run_plain(args):
    sampler = Sampler()
    while True:
        metrics = parse_metrics(fetch(args.host, args.port, "/metrics"))
        rates = sampler.rates(metrics, time.monotonic())
        try:
            flight = json.loads(fetch(args.host, args.port, "/flight"))
        except (ValueError, OSError):
            flight = {}
        print("\n".join(render_frame(metrics, rates, flight)))
        print()
        time.sleep(args.interval)


def run_curses(args):
    import curses

    def loop(stdscr):
        curses.curs_set(0)
        stdscr.nodelay(True)
        sampler = Sampler()
        while True:
            try:
                metrics = parse_metrics(
                    fetch(args.host, args.port, "/metrics"))
                rates = sampler.rates(metrics, time.monotonic())
                flight = json.loads(
                    fetch(args.host, args.port, "/flight"))
                lines = render_frame(metrics, rates, flight,
                                     width=curses.COLS - 1)
            except OSError as e:
                lines = [f"uovtop: cannot reach "
                         f"{args.host}:{args.port}: {e}"]
            stdscr.erase()
            for y, line in enumerate(lines[: curses.LINES - 1]):
                stdscr.addnstr(y, 0, line, curses.COLS - 1)
            stdscr.refresh()
            if stdscr.getch() in (ord("q"), 27):
                return
            time.sleep(args.interval)

    curses.wrapper(loop)
    return 0


def self_test():
    metrics = parse_metrics(
        "# TYPE uov_service_requests_total counter\n"
        "uov_service_requests_total 10\n"
        "uov_service_cache_hits_total 4\n"
        "uov_service_cache_misses_total 6\n"
        "uov_service_latency_us_p50 12\n"
        "not a sample line\n")
    assert metrics["uov_service_requests_total"] == 10.0
    assert "not" not in metrics

    sampler = Sampler()
    assert sampler.rates(metrics, 100.0) == {}
    later = dict(metrics, uov_service_requests_total=30.0)
    rates = sampler.rates(later, 102.0)
    assert rates["uov_service_requests_total"] == 10.0

    flight = {"recorded": 2, "digests": [
        {"index": 1, "verb": "shortest", "outcome": "optimal",
         "wall_us": 55, "nodes": 7, "cache_hit": False,
         "store_hit": False, "coalesced": False, "cause": "",
         "trace_id": "deadbeefdeadbeef"},
        {"index": 2, "verb": "storage", "outcome": "shed",
         "wall_us": 3, "nodes": 0, "cache_hit": True,
         "store_hit": False, "coalesced": False, "cause": "shed",
         "trace_id": "cafecafecafecafe"},
    ]}
    frame = render_frame(later, rates, flight)
    text = "\n".join(frame)
    assert "deadbeefdeadbeef" in text
    assert "shed" in text
    assert "rate     10.0/s" in text or "10.0/s" in text
    print("self-test: ok")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int)
    ap.add_argument("--interval", type=float, default=1.0)
    ap.add_argument("--once", action="store_true",
                    help="print one plain frame and exit")
    ap.add_argument("--plain", action="store_true",
                    help="plain text frames even on a terminal")
    ap.add_argument("--self-test", action="store_true",
                    help="run parser/renderer checks without a daemon")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if args.port is None:
        ap.error("--port is required (or use --self-test)")
    try:
        if args.once:
            return run_once(args)
        if args.plain or not sys.stdout.isatty():
            return run_plain(args)
        return run_curses(args)
    except KeyboardInterrupt:
        return 0
    except OSError as e:
        print(f"uovtop: cannot reach {args.host}:{args.port}: {e}",
              file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
