#!/usr/bin/env sh
# Regenerate the codegen golden files (tests/data/codegen/*.golden.c)
# from the triples pinned in tests/codegen_golden_cases.h.
#
# Usage: scripts/update_codegen_golden.sh [build-dir]
#
# Run after an intentional emitter change, review the diff, and commit
# the updated files alongside the change.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

cmake --build "$build_dir" --target codegen_golden_gen
mkdir -p "$repo_root/tests/data/codegen"
"$build_dir/tests/codegen_golden_gen" "$repo_root/tests/data/codegen"

echo "Review with: git diff tests/data/codegen"
