#include "mapping/modular_mapping.h"

#include <sstream>

#include "core/uov.h"
// ovLegalForLinearSchedule comes from core (schedule-free rule).
#include "support/checked.h"
#include "support/error.h"

namespace uov {

ModularMapping::ModularMapping(IVec moduli, IVec lo)
    : _m(std::move(moduli)), _lo(std::move(lo))
{
    UOV_REQUIRE(_m.dim() == _lo.dim() && _m.dim() >= 1,
                "moduli/corner dimension mismatch");
    _stride.assign(_m.dim(), 1);
    _cells = 1;
    for (size_t c = _m.dim(); c-- > 0;) {
        UOV_REQUIRE(_m[c] >= 1, "modulus must be >= 1");
        _stride[c] = _cells;
        _cells = checkedMul(_cells, _m[c]);
    }
}

int64_t
ModularMapping::operator()(const IVec &q) const
{
    UOV_CHECK(q.dim() == _m.dim(), "point dimension mismatch");
    int64_t idx = 0;
    for (size_t c = 0; c < _m.dim(); ++c) {
        int64_t coord = floorMod(checkedSub(q[c], _lo[c]), _m[c]);
        idx = checkedAdd(idx, checkedMul(coord, _stride[c]));
    }
    return idx;
}

std::string
ModularMapping::str() const
{
    std::ostringstream oss;
    oss << "cell(q) = q mod " << _m << "  [" << _cells << " cells]";
    return oss.str();
}

namespace {

/**
 * Enumerate the nonzero lattice differences of m realizable within
 * the box extents, calling pred on each; returns false as soon as an
 * unsafe difference is found.
 */
template <typename Pred>
bool
allDifferencesSafe(const IVec &m, const IVec &ext, Pred safe)
{
    size_t d = m.dim();
    // c_k ranges over multiples with |c_k * m_k| <= ext_k - 1.
    std::vector<int64_t> max_mult(d);
    for (size_t c = 0; c < d; ++c)
        max_mult[c] = (ext[c] - 1) / m[c];

    IVec mult(d);
    for (size_t c = 0; c < d; ++c)
        mult[c] = -max_mult[c];
    for (;;) {
        bool zero = true;
        for (size_t c = 0; c < d; ++c)
            if (mult[c] != 0)
                zero = false;
        if (!zero) {
            IVec diff(d);
            for (size_t c = 0; c < d; ++c)
                diff[c] = mult[c] * m[c];
            if (!safe(diff))
                return false;
        }
        size_t c = d;
        bool done = false;
        while (c-- > 0) {
            if (mult[c] < max_mult[c]) {
                ++mult[c];
                break;
            }
            mult[c] = -max_mult[c];
            if (c == 0)
                done = true;
        }
        if (done)
            break;
    }
    return true;
}

template <typename SafetyCheck>
ModuliSearchResult
searchModuli(const IVec &lo, const IVec &hi, SafetyCheck safe_moduli)
{
    size_t d = lo.dim();
    IVec ext(d);
    int64_t search_space = 1;
    for (size_t c = 0; c < d; ++c) {
        ext[c] = hi[c] - lo[c] + 1;
        search_space = checkedMul(search_space, ext[c]);
    }
    UOV_REQUIRE(search_space <= 1000000,
                "moduli search over " << search_space
                    << " combinations; use a smaller ISG");

    ModuliSearchResult best;
    best.moduli = ext; // trivial: no reuse, always safe
    best.cells = 1;
    for (size_t c = 0; c < d; ++c)
        best.cells = checkedMul(best.cells, ext[c]);
    best.trivial = true;

    IVec m(d);
    for (size_t c = 0; c < d; ++c)
        m[c] = 1;
    for (;;) {
        int64_t cells = 1;
        for (size_t c = 0; c < d; ++c)
            cells = checkedMul(cells, m[c]);
        if (cells < best.cells && safe_moduli(m, ext)) {
            best.moduli = m;
            best.cells = cells;
            best.trivial = (m == ext);
        }
        size_t c = d;
        bool done = false;
        while (c-- > 0) {
            if (m[c] < ext[c]) {
                ++m[c];
                break;
            }
            m[c] = 1;
            if (c == 0)
                done = true;
        }
        if (done)
            break;
    }
    return best;
}

} // namespace

ModuliSearchResult
universallySafeModuli(const Stencil &stencil, const IVec &lo,
                      const IVec &hi)
{
    UOV_REQUIRE(stencil.dim() == lo.dim() && lo.dim() == hi.dim(),
                "dimension mismatch");
    UovOracle oracle(stencil);
    auto safe = [&](const IVec &m, const IVec &ext) {
        return allDifferencesSafe(m, ext, [&](const IVec &diff) {
            IVec w = diff.isLexPositive() ? diff : -diff;
            return oracle.isUov(w);
        });
    };
    return searchModuli(lo, hi, safe);
}

ModuliSearchResult
scheduleSpecificModuli(const IVec &h, const Stencil &stencil,
                       const IVec &lo, const IVec &hi)
{
    UOV_REQUIRE(stencil.dim() == lo.dim() && lo.dim() == hi.dim(),
                "dimension mismatch");
    for (const auto &v : stencil.deps())
        UOV_REQUIRE(h.dot(v) > 0, "h is not a legal schedule vector");

    auto safe = [&](const IVec &m, const IVec &ext) {
        return allDifferencesSafe(m, ext, [&](const IVec &diff) {
            int64_t hd = h.dot(diff);
            if (hd == 0)
                return false; // concurrent conflicting points
            IVec w = hd > 0 ? diff : -diff;
            return ovLegalForLinearSchedule(h, w, stencil);
        });
    };
    return searchModuli(lo, hi, safe);
}

} // namespace uov
