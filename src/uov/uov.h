/**
 * @file
 * Umbrella header: everything a library user needs with one include.
 *
 *     #include "uov/uov.h"
 *
 * Layered from the bottom up; include individual headers instead when
 * compile time matters.
 */

#ifndef UOV_UOV_H
#define UOV_UOV_H

// Support and exact geometry.
#include "geometry/ivec.h"
#include "geometry/lattice.h"
#include "geometry/matrix.h"
#include "geometry/polyhedron.h"
#include "geometry/rational.h"
#include "support/error.h"
#include "support/logging.h"
#include "support/rng.h"
#include "support/table.h"

// The paper's contribution.
#include "core/cone.h"
#include "core/done_dead.h"
#include "core/greedy.h"
#include "core/reduction.h"
#include "core/search.h"
#include "core/stencil.h"
#include "core/storage_count.h"
#include "core/uov.h"

// Storage mappings and containers.
#include "mapping/expanded_array.h"
#include "mapping/modular_mapping.h"
#include "mapping/ov_array.h"
#include "mapping/storage_mapping.h"

// IR, analysis, and the compiler pipeline.
#include "analysis/dependence.h"
#include "analysis/multi.h"
#include "analysis/pipeline.h"
#include "analysis/region.h"
#include "ir/program.h"

// Schedules, legality, execution, and baselines.
#include "schedule/executor.h"
#include "schedule/legality.h"
#include "schedule/ov_legality.h"
#include "schedule/schedule.h"
#include "schedule/schedule_specific.h"

// Machine models and kernels.
#include "kernels/heat3d.h"
#include "kernels/psm.h"
#include "kernels/simple.h"
#include "kernels/stencil5.h"
#include "sim/machine.h"
#include "sim/memory_policy.h"
#include "sim/streaming.h"
#include "sim/trace.h"

// Tools.
#include "codegen/codegen.h"
#include "driver/nest_parser.h"

#endif // UOV_UOV_H
