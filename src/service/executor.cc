#include "service/executor.h"

#include <chrono>
#include <functional>
#include <future>
#include <iomanip>
#include <istream>
#include <limits>
#include <sstream>

#include <algorithm>

#include "codegen/codegen.h"
#include "codegen/jit.h"
#include "support/error.h"
#include "tune/tune.h"
#include "support/failpoint.h"
#include "support/logging.h"
#include "support/trace.h"
#include "telemetry/trace_context.h"

namespace uov {
namespace service {

namespace {

/** Strip comments and surrounding whitespace (nest_parser rules). */
std::string
cleanLine(const std::string &raw)
{
    std::string s = raw;
    auto hash = s.find('#');
    if (hash != std::string::npos)
        s.erase(hash);
    auto b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    auto e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

/** Parse one signed integer, rejecting trailing junk. */
bool
parseInt(const std::string &tok, int64_t &out)
{
    try {
        size_t used = 0;
        out = std::stoll(tok, &used);
        return used == tok.size();
    } catch (const std::logic_error &) {
        return false;
    }
}

/** Parse "[o1,o2,...]" (nest_parser access-offset syntax). */
bool
parseVec(const std::string &tok, IVec &out)
{
    if (tok.size() < 3 || tok.front() != '[' || tok.back() != ']')
        return false;
    std::vector<int64_t> coords;
    std::stringstream ss(tok.substr(1, tok.size() - 2));
    std::string part;
    while (std::getline(ss, part, ',')) {
        int64_t v;
        if (!parseInt(part, v))
            return false;
        coords.push_back(v);
    }
    if (coords.empty())
        return false;
    out = IVec(std::move(coords));
    return true;
}

/** Parse "lo..hi" (nest_parser bounds syntax). */
bool
parseRange(const std::string &tok, int64_t &lo, int64_t &hi)
{
    auto dots = tok.find("..");
    if (dots == std::string::npos)
        return false;
    return parseInt(tok.substr(0, dots), lo) &&
           parseInt(tok.substr(dots + 2), hi);
}

using SolveFn = std::function<ServiceAnswer(const Stencil &)>;

/**
 * Shared response formatter: the service path and the direct
 * reference path must agree byte-for-byte, including on errors, so
 * both route through this one function.
 */
std::string
answerRequest(const Request &request, const SolveFn &solve)
{
    std::ostringstream oss;
    if (!request.error.empty()) {
        oss << "error " << request.index << " " << request.error;
        return oss.str();
    }
    try {
        Stencil stencil(request.deps);
        ServiceAnswer answer = solve(stencil);
        failpoint::fire("answer_render");
        TRACE_SPAN("service.render");
        oss << "answer " << request.index << " " << answer.str();
    } catch (const UovUserError &e) {
        oss.str("");
        oss << "error " << request.index << " " << e.what();
    } catch (const UovOverflowError &e) {
        oss.str("");
        oss << "error " << request.index << " " << e.what();
    } catch (const failpoint::FailPointError &e) {
        oss.str("");
        oss << "error " << request.index << " " << e.what();
    }
    return oss.str();
}

} // namespace

Request
parseRequestLine(const std::string &line, size_t index,
                 int64_t default_deadline_ms)
{
    TRACE_SPAN("service.parse");
    Request r;
    r.index = index;
    r.deadline_ms = default_deadline_ms < 0 ? -1 : default_deadline_ms;
    auto fail = [&](const std::string &msg) {
        r.error = msg;
        return r;
    };

    std::stringstream ss(line);
    std::string tok;
    ss >> tok;
    if (tok != "query")
        return fail("expected 'query', got '" + tok + "'");

    ss >> tok;
    if (tok == "shortest") {
        r.objective = SearchObjective::ShortestVector;
    } else if (tok == "storage") {
        r.objective = SearchObjective::BoundedStorage;
    } else if (tok == "native") {
        r.native = true;
    } else if (tok == "tune") {
        r.tune = true;
    } else {
        return fail("bad objective '" + tok +
                    "', expected shortest|storage|native|tune");
    }

    if (!(ss >> tok))
        return fail("missing 'deps'");

    if (tok == "deadline_ms") {
        if (!(ss >> tok))
            return fail("'deadline_ms' needs a millisecond count");
        int64_t ms;
        if (!parseInt(tok, ms) || ms < -1)
            return fail("bad deadline '" + tok +
                        "', expected -1 or a millisecond count");
        r.deadline_ms = ms;
        if (!(ss >> tok))
            return fail("missing 'deps'");
    }

    if (tok == "bounds") {
        std::vector<int64_t> los, his;
        while (ss >> tok && tok != "deps") {
            int64_t lo, hi;
            if (!parseRange(tok, lo, hi))
                return fail("bad range '" + tok +
                            "', expected lo..hi");
            if (lo > hi)
                return fail("empty range '" + tok + "'");
            los.push_back(lo);
            his.push_back(hi);
        }
        if (los.empty())
            return fail("'bounds' needs at least one range");
        if (tok != "deps")
            return fail("missing 'deps'");
        r.isg_lo = IVec(std::move(los));
        r.isg_hi = IVec(std::move(his));
    }

    if (tok != "deps")
        return fail("expected 'bounds' or 'deps', got '" + tok + "'");

    while (ss >> tok) {
        IVec v;
        if (!parseVec(tok, v))
            return fail("bad dependence '" + tok +
                        "', expected [o1,o2,...]");
        r.deps.push_back(std::move(v));
    }
    if (r.deps.empty())
        return fail("'deps' needs at least one vector");

    if (r.native && !r.isg_lo)
        return fail("native query needs 'bounds'");
    if (r.tune && !r.isg_lo)
        return fail("tune query needs 'bounds'");
    bool bounded_objective = r.native || r.tune ||
                             r.objective == SearchObjective::BoundedStorage;
    if (!r.native && !r.tune &&
        r.objective == SearchObjective::BoundedStorage && !r.isg_lo)
        return fail("storage query needs 'bounds'");
    if (!bounded_objective && r.isg_lo)
        return fail("'bounds' is only valid for storage, native, and "
                    "tune queries");
    if (r.isg_lo && r.isg_lo->dim() != r.deps[0].dim())
        return fail("bounds rank " +
                    std::to_string(r.isg_lo->dim()) +
                    " does not match dependence rank " +
                    std::to_string(r.deps[0].dim()));
    return r;
}

std::vector<Request>
parseRequests(std::istream &in, int64_t default_deadline_ms)
{
    std::vector<Request> requests;
    std::string raw;
    while (std::getline(in, raw)) {
        std::string line = cleanLine(raw);
        if (line.empty())
            continue;
        requests.push_back(parseRequestLine(line, requests.size() + 1,
                                            default_deadline_ms));
    }
    return requests;
}

namespace {

/** Best-of-3 wall-clock nanoseconds for @p fn. */
int64_t
bestOfThreeNs(const std::function<void()> &fn)
{
    int64_t best = std::numeric_limits<int64_t>::max();
    for (int rep = 0; rep < 3; ++rep) {
        auto t0 = std::chrono::steady_clock::now();
        fn();
        auto t1 = std::chrono::steady_clock::now();
        best = std::min(
            best, std::chrono::duration_cast<std::chrono::nanoseconds>(
                      t1 - t0)
                      .count());
    }
    return best < 1 ? 1 : best;
}

} // namespace

std::string
runNativeRequest(const Request &request)
{
    std::ostringstream oss;
    if (!request.error.empty()) {
        oss << "error " << request.index << " " << request.error;
        return oss.str();
    }
    try {
        Stencil stencil(request.deps);
        // The deadline gate precedes the compiler probe so a 0 ms
        // request draws the same (deterministic) error line on every
        // host.  Native timing has no anytime fallback -- a partial
        // compile is worthless -- so an expired budget is an error,
        // not a degraded answer.
        Deadline deadline = Deadline::afterMillis(request.deadline_ms);
        auto requireTime = [&](const char *stage) {
            UOV_REQUIRE(!deadline.expired(),
                        "deadline_ms " << request.deadline_ms
                            << " expired " << stage
                            << "; native timing needs the full run "
                               "(raise or drop the deadline)");
        };
        requireTime("before compilation");
        UOV_REQUIRE(JitCompiler::hostCompilerAvailable(),
                    "native query needs a host C compiler (set UOV_CC "
                    "or put cc, gcc, or clang on PATH)");

        // Realize the stencil as the paper's single-statement nest
        // over the bounds box (reads at minus each distance).
        LoopNest nest = nestFromStencil(stencil, *request.isg_lo,
                                        *request.isg_hi, "native");

        MappingPlan plan = planStorageMapping(nest, 0);
        GenStorage storage = plan.mapping.ov()[0] >= 1
                                 ? GenStorage::OvMapped
                                 : GenStorage::Expanded;

        std::vector<double> ref;
        int64_t interp_ns =
            bestOfThreeNs([&] { ref = interpretKernel(nest); });
        requireTime("after the interpreter baseline");

        JitCompiler jit;
        GeneratedCode lex_code, rtile_code;
        {
            CodegenOptions opts;
            opts.storage = storage;
            opts.function_name = "uov_native_lex";
            lex_code = generateC(nest, plan, opts);
            opts.schedule = GenSchedule::RegisterTiled;
            opts.function_name = "uov_native_rtile";
            rtile_code = generateC(nest, plan, opts);
        }

        auto timeKernel = [&](const GeneratedCode &code) {
            requireTime("before JIT compilation");
            JitKernel kernel = jit.compileAndLoad(code);
            auto fn =
                kernel.fn<void (*)(double *)>(code.function_name);
            std::vector<double> out(ref.size(), 0.0);
            int64_t ns = bestOfThreeNs([&] { fn(out.data()); });
            UOV_REQUIRE(out == ref,
                        "native kernel " << code.function_name
                            << " diverged from the interpreter");
            return ns;
        };
        int64_t lex_ns = timeKernel(lex_code);
        int64_t rtile_ns = timeKernel(rtile_code);

        oss << "answer " << request.index << " native uov="
            << plan.mapping.ov().str()
            << " cells=" << plan.mapping.cellCount() << " storage="
            << (storage == GenStorage::OvMapped ? "ov" : "expanded")
            << " unroll=" << rtile_code.unroll
            << " jam=" << rtile_code.jam << std::fixed
            << std::setprecision(2) << " interp_ns=" << interp_ns
            << " lex_ns=" << lex_ns << " rtile_ns=" << rtile_ns
            << " speedup_lex="
            << static_cast<double>(interp_ns) /
                   static_cast<double>(lex_ns)
            << " speedup_rtile="
            << static_cast<double>(interp_ns) /
                   static_cast<double>(rtile_ns)
            << " verified=ok";
    } catch (const UovError &e) {
        oss.str("");
        oss << "error " << request.index << " " << e.what();
    }
    return oss.str();
}

std::string
runTuneRequest(const Request &request)
{
    std::ostringstream oss;
    if (!request.error.empty()) {
        oss << "error " << request.index << " " << request.error;
        return oss.str();
    }
    try {
        TRACE_SPAN("service.tune");
        Stencil stencil(request.deps);
        LoopNest nest = nestFromStencil(stencil, *request.isg_lo,
                                        *request.isg_hi, "tune");

        tune::TuneOptions topt;
        topt.budget.deadline = Deadline::afterMillis(request.deadline_ms);
        tune::SimEvaluator sim;
        topt.evaluator = &sim;
        tune::Tuner tuner(nest, topt);
        tune::TuneResult res = tuner.run();

        const tune::TuneCandidate &best = res.best;
        bool ov = best.storage == GenStorage::OvMapped;
        oss << "answer " << request.index << " tune uov="
            << (ov ? best.uov().str() : "none") << " storage="
            << (ov ? "ov" : "expanded")
            << " schedule=" << best.schedule.str()
            << " cells=" << best.cells() << " sim_cycles="
            << static_cast<int64_t>(res.best_score)
            << " evaluated=" << res.evaluated << "/"
            << res.candidates_total;
        if (res.degraded())
            oss << " degraded=" << res.degraded_reason;

        // Measurement tail: wall-clock figures, exempt from the
        // byte-determinism contract like 'query native' timings.
        if (!JitCompiler::hostCompilerAvailable()) {
            oss << " measure=unavailable";
            return oss.str();
        }
        if (topt.budget.deadline.expired()) {
            oss << " measure=deadline";
            return oss.str();
        }
        tune::JitEvaluator jit_eval;
        tune::TuneContext ctx(nest, tuner.stencil());
        const auto &cands = tuner.candidates();
        const auto &scores = tuner.scores();

        // Candidate 0 is the default lexicographic kernel; measure
        // it, then the top simulator-ranked lowerable candidates.
        double lex_ns = jit_eval.score(ctx, cands[0]);
        std::vector<size_t> ranked;
        for (size_t i = 0; i < scores.size(); ++i)
            if (cands[i].schedule.lower(stencil).has_value())
                ranked.push_back(i);
        std::stable_sort(ranked.begin(), ranked.end(),
                         [&](size_t a, size_t b) {
                             return scores[a] < scores[b];
                         });
        double best_ns = lex_ns;
        size_t best_idx = 0;
        size_t measured = 0;
        for (size_t idx : ranked) {
            if (measured >= 4 || topt.budget.deadline.expired())
                break;
            if (idx == 0)
                continue; // the lex baseline, already measured
            double ns = jit_eval.score(ctx, cands[idx]);
            ++measured;
            if (ns < best_ns) {
                best_ns = ns;
                best_idx = idx;
            }
        }
        oss << std::fixed << std::setprecision(2)
            << " lex_ns=" << static_cast<int64_t>(lex_ns)
            << " best_ns=" << static_cast<int64_t>(best_ns)
            << " speedup_vs_lex=" << lex_ns / best_ns
            << " best_measured={" << cands[best_idx].str() << "}"
            << " verified=ok";
    } catch (const UovError &e) {
        oss.str("");
        oss << "error " << request.index << " " << e.what();
    }
    return oss.str();
}

std::string
runRequest(QueryService &service, const Request &request)
{
    if (request.native)
        return runNativeRequest(request);
    if (request.tune)
        return runTuneRequest(request);
    return answerRequest(request, [&](const Stencil &s) {
        return service.query(s, request.objective, request.isg_lo,
                             request.isg_hi, request.deadline_ms);
    });
}

Watchdog::Watchdog(int64_t poll_ms, Counter *overdue)
    : _overdue(overdue)
{
    if (poll_ms > 0)
        _thread = std::thread([this, poll_ms] { loop(poll_ms); });
}

Watchdog::~Watchdog()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _stop = true;
    }
    _cv.notify_all();
    if (_thread.joinable())
        _thread.join();
}

void
Watchdog::loop(int64_t poll_ms)
{
    std::unique_lock<std::mutex> lock(_mutex);
    while (!_stop) {
        _cv.wait_for(lock, std::chrono::milliseconds(poll_ms),
                     [this] { return _stop; });
        if (_stop)
            return;
        lock.unlock();
        flagOverdue();
        lock.lock();
    }
}

void
Watchdog::start(size_t index, int64_t deadline_ms)
{
    std::lock_guard<std::mutex> lock(_mutex);
    Entry entry;
    entry.started = Deadline::Clock::now();
    entry.deadline_ms = deadline_ms;
    _entries[index] = entry;
}

void
Watchdog::finish(size_t index)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _entries.erase(index);
}

size_t
Watchdog::flagOverdue()
{
    size_t flagged = 0;
    auto now = Deadline::Clock::now();
    std::lock_guard<std::mutex> lock(_mutex);
    for (auto &[index, entry] : _entries) {
        if (entry.flagged || entry.deadline_ms < 0)
            continue;
        auto running =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                now - entry.started)
                .count();
        if (running < 2 * entry.deadline_ms)
            continue;
        entry.flagged = true;
        ++flagged;
        if (_overdue != nullptr)
            _overdue->inc();
        UOV_LOG_WARN("watchdog: request " << index << " still running "
                     << running << " ms after its "
                     << entry.deadline_ms << " ms deadline");
    }
    return flagged;
}

AdmissionController::AdmissionController(AdmissionOptions options,
                                         MetricsRegistry &metrics)
    : _options(options),
      _admitted(metrics.counter("service.shed.admitted")),
      _responses(metrics.counter("service.shed.responses")),
      _engaged(metrics.counter("service.shed.engaged")),
      _recovered(metrics.counter("service.shed.recovered")),
      _active(metrics.gauge("service.shed.active"))
{
    if (_options.low_water < 0)
        _options.low_water = _options.high_water / 2;
    if (_options.low_water >= _options.high_water)
        _options.low_water =
            _options.high_water > 0 ? _options.high_water - 1 : 0;
}

bool
AdmissionController::admit(int64_t queue_depth)
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (_options.high_water <= 0) {
        _admitted.inc();
        return true;
    }
    if (!_shedding && queue_depth >= _options.high_water) {
        _shedding = true;
        _engaged.inc();
        _active.set(1);
    } else if (_shedding && queue_depth <= _options.low_water) {
        _shedding = false;
        _recovered.inc();
        _active.set(0);
    }
    if (_shedding) {
        _responses.inc();
        return false;
    }
    _admitted.inc();
    return true;
}

bool
AdmissionController::shedding() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _shedding;
}

std::string
shedRequest(const Request &request)
{
    return answerRequest(request, [&](const Stencil &s) {
        // The PR 4 anytime floor: a zero-node budget deterministically
        // returns the certified ov_o incumbent without expanding a
        // single search node -- exactly what an overloaded server can
        // afford.
        SearchBudget budget;
        budget.max_nodes = 0;
        ServiceAnswer answer =
            solveDirect(s, request.objective, request.isg_lo,
                        request.isg_hi, budget);
        answer.degraded = true;
        answer.degraded_reason = "shed";
        return answer;
    });
}

telemetry::FlightDigest::Outcome
classifyResponse(const std::string &response)
{
    using Outcome = telemetry::FlightDigest::Outcome;
    if (response.rfind("error ", 0) == 0)
        return Outcome::Error;
    auto pos = response.find(" degraded=");
    if (pos == std::string::npos)
        return Outcome::Optimal;
    // The reason is the whitespace-delimited token after '='.
    size_t begin = pos + 10;
    size_t end = response.find(' ', begin);
    std::string reason = response.substr(
        begin, end == std::string::npos ? std::string::npos
                                        : end - begin);
    return reason == "shed" ? Outcome::Shed : Outcome::Degraded;
}

namespace {

telemetry::FlightDigest::Verb
requestVerb(const Request &request)
{
    using Verb = telemetry::FlightDigest::Verb;
    if (!request.error.empty())
        return Verb::Unknown;
    if (request.native)
        return Verb::Native;
    if (request.tune)
        return Verb::Tune;
    return request.objective == SearchObjective::BoundedStorage
               ? Verb::Storage
               : Verb::Shortest;
}

/** The digest's cause field: degraded reason or error message head. */
std::string
responseCause(const std::string &response,
              telemetry::FlightDigest::Outcome outcome)
{
    using Outcome = telemetry::FlightDigest::Outcome;
    if (outcome == Outcome::Error) {
        // Skip "error <idx> "; keep the message head.
        size_t sp = response.find(' ');
        sp = sp == std::string::npos ? std::string::npos
                                     : response.find(' ', sp + 1);
        return sp == std::string::npos ? response
                                       : response.substr(sp + 1);
    }
    if (outcome == Outcome::Degraded || outcome == Outcome::Shed) {
        size_t pos = response.find(" degraded=");
        size_t begin = pos + 10;
        size_t end = response.find(' ', begin);
        return response.substr(begin, end == std::string::npos
                                          ? std::string::npos
                                          : end - begin);
    }
    return "";
}

/**
 * One request's telemetry epilogue: digest into the flight recorder,
 * sample into the SLO window, optionally log the non-optimal outcome
 * (inside the request's TraceScope, so the log line carries the id).
 */
void
recordOutcome(const TelemetryPlane &plane, const Request &request,
              telemetry::TraceContext ctx,
              const telemetry::RequestAnnotations &notes,
              const std::string &response, uint64_t wall_us)
{
    using FD = telemetry::FlightDigest;
    FD digest;
    digest.trace_id = ctx.id;
    digest.key_hash = notes.key_hash;
    digest.request_index = request.index;
    digest.nodes = notes.nodes;
    digest.wall_us = wall_us;
    digest.verb = requestVerb(request);
    digest.outcome = classifyResponse(response);
    digest.cache_hit = notes.cache_hit;
    digest.store_hit = notes.store_hit;
    digest.coalesced = notes.coalesced;
    digest.setCause(responseCause(response, digest.outcome));
    if (plane.flight != nullptr)
        plane.flight->record(digest);
    if (plane.slo != nullptr)
        plane.slo->record(digest.outcome, wall_us);
    if (plane.log_outcomes && digest.outcome != FD::Outcome::Optimal)
        UOV_LOG_INFO("request " << request.index << " outcome="
                     << FD::outcomeName(digest.outcome) << " cause='"
                     << digest.causeStr() << "' verb="
                     << FD::verbName(digest.verb)
                     << " wall_us=" << wall_us);
}

/** Wall-clock microseconds since @p start (clamped non-negative). */
uint64_t
wallMicrosSince(Deadline::Clock::time_point start)
{
    int64_t us = std::chrono::duration_cast<std::chrono::microseconds>(
                     Deadline::Clock::now() - start)
                     .count();
    return us < 0 ? 0 : static_cast<uint64_t>(us);
}

} // namespace

std::vector<std::string>
runBatch(QueryService &service, const std::vector<Request> &requests,
         ThreadPool &pool, AdmissionController *admission,
         const TelemetryPlane *plane)
{
    std::vector<std::string> responses(requests.size());
    Gauge &depth = service.metrics().gauge("service.queue_depth");
    Histogram &queue_wait =
        service.metrics().histogram("service.queue_wait_us");
    Watchdog watchdog(
        25, &service.metrics().counter("service.watchdog.overdue"));
    uint64_t fires_before =
        failpoint::Registry::instance().totalFires();

    // Telemetry wrapper for responses produced on the submitting
    // thread (shed answers, admission-failpoint errors): same scope,
    // digest, and opt-in trace_id token as pooled requests.
    auto inlineResponse = [&](const Request &request,
                              const std::function<std::string()> &fn) {
        if (plane == nullptr)
            return fn();
        telemetry::TraceContext ctx = telemetry::newTrace();
        auto started = Deadline::Clock::now();
        std::string response;
        {
            telemetry::TraceScope scope(ctx);
            response = fn();
            recordOutcome(*plane, request, ctx, scope.notes(),
                          response, wallMicrosSince(started));
        }
        if (plane->trace_ids)
            response += " trace_id=" + traceIdHex(ctx.id);
        return response;
    };

    std::vector<std::future<void>> futures;
    futures.reserve(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
        // Admission decision happens on the submitting thread, before
        // the request touches the queue: a shed request is answered
        // inline with the certified ov_o floor and never enqueued.
        const Request &to_submit = requests[i];
        if (admission != nullptr && !to_submit.native &&
            !to_submit.tune && to_submit.error.empty()) {
            try {
                failpoint::fire("admission");
            } catch (const std::exception &e) {
                std::string message = e.what();
                responses[i] = inlineResponse(to_submit, [&] {
                    return "error " +
                           std::to_string(to_submit.index) + " " +
                           message;
                });
                continue;
            }
            if (!admission->admit(depth.value())) {
                responses[i] = inlineResponse(to_submit, [&] {
                    return shedRequest(to_submit);
                });
                continue;
            }
        }
        depth.add(1);
        auto enqueued = Deadline::Clock::now();
        futures.push_back(pool.submit([&service, &requests, &responses,
                                       &watchdog, &depth, &queue_wait,
                                       plane, enqueued, i] {
            const Request &request = requests[i];
            int64_t wait_us =
                std::chrono::duration_cast<std::chrono::microseconds>(
                    Deadline::Clock::now() - enqueued)
                    .count();
            queue_wait.observe(
                wait_us < 0 ? 0 : static_cast<uint64_t>(wait_us));
            TRACE_COUNTER("service.queue_wait", "us", wait_us);
            // The request runs whole on this pool thread, so a
            // thread-local trace scope covers every layer it enters;
            // the span arg links the Perfetto track to the same id.
            telemetry::TraceContext ctx;
            std::optional<telemetry::TraceScope> scope;
            if (plane != nullptr) {
                ctx = telemetry::newTrace();
                scope.emplace(ctx);
            }
            trace::Span span("service.request");
            span.arg("index", static_cast<int64_t>(request.index));
            if (ctx.valid())
                span.arg("trace_id", static_cast<int64_t>(ctx.id));
            auto started = Deadline::Clock::now();
            // Per-request error isolation: whatever this request
            // throws -- an armed fail point, even an internal error
            // -- becomes its own error line; the batch always runs
            // to completion.
            try {
                failpoint::fire("task_start");
                watchdog.start(i, request.deadline_ms);
                responses[i] = runRequest(service, request);
            } catch (const std::exception &e) {
                responses[i] = "error " +
                               std::to_string(request.index) + " " +
                               e.what();
            }
            watchdog.finish(i);
            depth.sub(1);
            if (plane != nullptr) {
                recordOutcome(*plane, request, ctx, scope->notes(),
                              responses[i], wallMicrosSince(started));
                if (plane->trace_ids)
                    responses[i] += " trace_id=" + traceIdHex(ctx.id);
            }
        }));
    }
    // Drain every future before unwinding (tasks capture locals).
    for (auto &f : futures)
        f.get();

    // Classify every response exactly once; the three counters sum
    // to the batch size (asserted by the fault fuzz oracle).
    Counter &optimal = service.metrics().counter("service.optimal");
    Counter &degraded =
        service.metrics().counter("service.degraded");
    Counter &errors =
        service.metrics().counter("service.request_errors");
    for (const std::string &response : responses) {
        if (response.rfind("error ", 0) == 0)
            errors.inc();
        else if (response.find(" degraded=") != std::string::npos)
            degraded.inc();
        else
            optimal.inc();
    }
    uint64_t fires_after = failpoint::Registry::instance().totalFires();
    if (fires_after > fires_before)
        service.metrics().counter("service.failpoint_fires")
            .inc(fires_after - fires_before);
    return responses;
}

std::vector<std::string>
runBatchDirect(const std::vector<Request> &requests, uint64_t max_visits)
{
    std::vector<std::string> responses;
    responses.reserve(requests.size());
    for (const Request &r : requests) {
        if (r.native) {
            responses.push_back(runNativeRequest(r));
            continue;
        }
        if (r.tune) {
            responses.push_back(runTuneRequest(r));
            continue;
        }
        responses.push_back(answerRequest(r, [&](const Stencil &s) {
            SearchBudget budget;
            budget.max_nodes = max_visits;
            budget.deadline = Deadline::afterMillis(r.deadline_ms);
            return solveDirect(s, r.objective, r.isg_lo, r.isg_hi,
                               budget);
        }));
    }
    return responses;
}

} // namespace service
} // namespace uov
