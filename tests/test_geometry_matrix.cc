/**
 * @file
 * Unit tests for IMatrix and lattice algebra (extended gcd, Bezout
 * vectors, unimodular completion, congruence solving).
 */

#include <gtest/gtest.h>

#include <numeric>

#include "geometry/lattice.h"
#include "geometry/matrix.h"
#include "support/error.h"

namespace uov {
namespace {

TEST(IMatrix, IdentityAndAccess)
{
    IMatrix i3 = IMatrix::identity(3);
    EXPECT_EQ(i3(0, 0), 1);
    EXPECT_EQ(i3(0, 1), 0);
    EXPECT_EQ(i3.rows(), 3u);
    EXPECT_THROW(i3(3, 0), UovInternalError);
}

TEST(IMatrix, MultiplyMatrixAndVector)
{
    IMatrix a({{1, 2}, {3, 4}});
    IMatrix b({{0, 1}, {1, 0}});
    IMatrix ab = a * b;
    EXPECT_EQ(ab(0, 0), 2);
    EXPECT_EQ(ab(0, 1), 1);
    EXPECT_EQ(ab(1, 0), 4);
    EXPECT_EQ(ab(1, 1), 3);

    EXPECT_EQ(a * IVec({5, 7}), (IVec{19, 43}));
}

TEST(IMatrix, Determinant)
{
    EXPECT_EQ(IMatrix({{1, 2}, {3, 4}}).determinant(), -2);
    EXPECT_EQ(IMatrix::identity(4).determinant(), 1);
    EXPECT_EQ(IMatrix({{2, 0}, {0, 3}}).determinant(), 6);
    // Singular.
    EXPECT_EQ(IMatrix({{1, 2}, {2, 4}}).determinant(), 0);
    // Needs a pivot swap.
    EXPECT_EQ(IMatrix({{0, 1}, {1, 0}}).determinant(), -1);
    // 3x3 with mixed signs.
    EXPECT_EQ(IMatrix({{2, -1, 0}, {-1, 2, -1}, {0, -1, 2}}).determinant(),
              4);
}

TEST(IMatrix, InverseUnimodular)
{
    IMatrix u({{2, 1}, {1, 1}}); // det 1
    IMatrix inv = u.inverseUnimodular();
    EXPECT_EQ(u * inv, IMatrix::identity(2));
    EXPECT_EQ(inv * u, IMatrix::identity(2));

    IMatrix v({{0, 1}, {1, 0}}); // det -1
    EXPECT_EQ(v * v.inverseUnimodular(), IMatrix::identity(2));

    EXPECT_THROW(IMatrix({{2, 0}, {0, 2}}).inverseUnimodular(),
                 UovUserError);
}

TEST(IMatrix, RowOpsAndTranspose)
{
    IMatrix m({{1, 2}, {3, 4}});
    m.addRowMultiple(1, 0, -3);
    EXPECT_EQ(m(1, 0), 0);
    EXPECT_EQ(m(1, 1), -2);
    m.swapRows(0, 1);
    EXPECT_EQ(m(0, 1), -2);

    IMatrix t = IMatrix({{1, 2, 3}}).transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 1u);
    EXPECT_EQ(t(2, 0), 3);
}

TEST(ExtGcdTest, BasicIdentity)
{
    for (int64_t a : {-36, -5, 0, 7, 48}) {
        for (int64_t b : {-27, -1, 0, 9, 30}) {
            ExtGcd e = extGcd(a, b);
            EXPECT_EQ(e.g, std::gcd(std::abs(a), std::abs(b)));
            EXPECT_EQ(a * e.x + b * e.y, e.g)
                << "a=" << a << " b=" << b;
        }
    }
}

TEST(BezoutVectorTest, CertificateMatchesContent)
{
    for (const IVec &v : {IVec{3, 5}, IVec{4, 6}, IVec{0, 7}, IVec{-4, 6},
                          IVec{2, 0, 3}, IVec{6, 10, 15}, IVec{0, 0, -5}}) {
        IVec alpha = bezoutVector(v);
        EXPECT_EQ(alpha.dot(v), v.content()) << v.str();
    }
    EXPECT_THROW(bezoutVector(IVec{0, 0}), UovUserError);
}

TEST(UnimodularCompletionTest, MapsVectorToE0)
{
    for (const IVec &v :
         {IVec{1, 0}, IVec{0, 1}, IVec{1, 1}, IVec{2, 3}, IVec{-3, 5},
          IVec{1, 0, 0}, IVec{2, 3, 5}, IVec{7, -4, 9}, IVec{0, 1, 0, 0},
          IVec{3, 5, 7, 11}}) {
        IMatrix u = unimodularCompletion(v);
        EXPECT_TRUE(u.isUnimodular()) << v.str();
        IVec e = u * v;
        EXPECT_EQ(e[0], 1) << v.str();
        for (size_t i = 1; i < e.dim(); ++i)
            EXPECT_EQ(e[i], 0) << v.str();
        // Rows 1..d-1 annihilate v: the projection has kernel Z*v.
        for (size_t r = 1; r < u.rows(); ++r)
            EXPECT_EQ(u.row(r).dot(v), 0) << v.str();
    }
}

TEST(UnimodularCompletionTest, RejectsNonPrimitive)
{
    EXPECT_THROW(unimodularCompletion(IVec{2, 4}), UovUserError);
    EXPECT_THROW(unimodularCompletion(IVec{0, 0}), UovUserError);
}

TEST(SolveCongruenceTest, SolvesAndValidates)
{
    // 3x == 1 (mod 7)  ->  x = 5.
    EXPECT_EQ(solveCongruence(3, 1, 7), 5);
    // 2x == 4 (mod 6) -> x in {2, 5}; result must satisfy and be in
    // range.
    int64_t x = solveCongruence(2, 4, 6);
    EXPECT_EQ((2 * x) % 6, 4 % 6);
    EXPECT_GE(x, 0);
    EXPECT_LT(x, 6);
    // 2x == 3 (mod 6) has no solution.
    EXPECT_THROW(solveCongruence(2, 3, 6), UovUserError);
    EXPECT_THROW(solveCongruence(2, 3, 0), UovUserError);
}

} // namespace
} // namespace uov
