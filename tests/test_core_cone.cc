/**
 * @file
 * Unit tests for ConeSolver: exact non-negative integer cone
 * membership with certificates.
 */

#include <gtest/gtest.h>

#include "core/cone.h"
#include "support/error.h"

namespace uov {
namespace {

TEST(ConeSolver, ZeroIsAlwaysMember)
{
    ConeSolver solver(stencils::simpleExample());
    EXPECT_TRUE(solver.contains(IVec{0, 0}));
}

TEST(ConeSolver, GeneratorsAreMembers)
{
    ConeSolver solver(stencils::fivePoint());
    for (const auto &v : solver.stencil().deps())
        EXPECT_TRUE(solver.contains(v)) << v.str();
}

TEST(ConeSolver, SimpleExampleMembership)
{
    ConeSolver solver(stencils::simpleExample());
    // Any (a, b) with a, b >= 0 is in the cone of {(1,0),(0,1),(1,1)}.
    EXPECT_TRUE(solver.contains(IVec{3, 5}));
    EXPECT_TRUE(solver.contains(IVec{7, 0}));
    EXPECT_FALSE(solver.contains(IVec{-1, 2}));
    EXPECT_FALSE(solver.contains(IVec{2, -1}));
}

TEST(ConeSolver, FivePointMembership)
{
    ConeSolver solver(stencils::fivePoint());
    // First coordinate counts the number of generators used.
    EXPECT_TRUE(solver.contains(IVec{1, 2}));
    EXPECT_TRUE(solver.contains(IVec{2, 0}));  // (1,2)+(1,-2) etc.
    EXPECT_TRUE(solver.contains(IVec{2, 4}));  // (1,2)+(1,2)
    EXPECT_FALSE(solver.contains(IVec{1, 3})); // one step reaches +-2 max
    EXPECT_FALSE(solver.contains(IVec{2, 5})); // two steps reach +-4 max
    EXPECT_FALSE(solver.contains(IVec{0, 2})); // no zero-time generator
}

TEST(ConeSolver, SparseLatticeGaps)
{
    // Generators (2,0) and (0,3): membership requires even x, y % 3 == 0.
    ConeSolver solver(Stencil({IVec{2, 0}, IVec{0, 3}}));
    EXPECT_TRUE(solver.contains(IVec{4, 6}));
    EXPECT_FALSE(solver.contains(IVec{3, 6}));
    EXPECT_FALSE(solver.contains(IVec{4, 4}));
}

TEST(ConeSolver, MixedSignSecondCoordinate)
{
    // {(1,5), (1,-5)}: (2,0) reachable though both steps overshoot.
    ConeSolver solver(Stencil({IVec{1, 5}, IVec{1, -5}}));
    EXPECT_TRUE(solver.contains(IVec{2, 0}));
    EXPECT_TRUE(solver.contains(IVec{3, 5}));
    EXPECT_FALSE(solver.contains(IVec{2, 1}));
}

TEST(ConeSolver, CertificateReconstructsVector)
{
    ConeSolver solver(stencils::fivePoint());
    IVec w{4, 2};
    auto cert = solver.certificate(w);
    ASSERT_TRUE(cert.has_value());
    IVec sum(2);
    int64_t total = 0;
    for (size_t i = 0; i < cert->size(); ++i) {
        EXPECT_GE((*cert)[i], 0);
        sum += solver.stencil().dep(i) * (*cert)[i];
        total += (*cert)[i];
    }
    EXPECT_EQ(sum, w);
    EXPECT_EQ(total, 4); // five-point generators all advance time by 1
}

TEST(ConeSolver, CertificateAbsentForNonMembers)
{
    ConeSolver solver(stencils::simpleExample());
    EXPECT_FALSE(solver.certificate(IVec{-1, 0}).has_value());
}

TEST(ConeSolver, MemoizationSharesWork)
{
    ConeSolver solver(stencils::simpleExample());
    EXPECT_TRUE(solver.contains(IVec{10, 10}));
    uint64_t nodes_first = solver.nodesExpanded();
    EXPECT_GT(nodes_first, 0u);
    // Second identical query costs no new expansions.
    EXPECT_TRUE(solver.contains(IVec{10, 10}));
    EXPECT_EQ(solver.nodesExpanded(), nodes_first);
    EXPECT_GT(solver.memoSize(), 0u);
}

TEST(ConeSolver, DimensionMismatchThrows)
{
    ConeSolver solver(stencils::simpleExample());
    EXPECT_THROW(solver.contains(IVec{1, 2, 3}), UovUserError);
}

TEST(ConeSolver, BudgetGuardTrips)
{
    ConeSolver solver(stencils::simpleExample(), /*max_nodes=*/5);
    EXPECT_THROW(solver.contains(IVec{50, 50}), UovUserError);
}

TEST(ConeSolver, ThreeDimensionalStencil)
{
    ConeSolver solver(stencils::heat3D());
    EXPECT_TRUE(solver.contains(IVec{2, 1, 1}));  // (1,1,0)+(1,0,1)
    EXPECT_TRUE(solver.contains(IVec{2, 0, 0}));  // (1,1,0)+(1,-1,0)
    EXPECT_FALSE(solver.contains(IVec{1, 1, 1}));
    EXPECT_FALSE(solver.contains(IVec{0, 1, 0}));
}

TEST(ConeSolver, HugeCoordinatesUseComponentwiseTermination)
{
    // positiveFunctional overflows here, but every generator has a
    // strictly positive second coordinate, so search still terminates.
    int64_t big = int64_t{1} << 40;
    Stencil s({IVec{1, big}, IVec{0, big}});
    ConeSolver solver(s);
    EXPECT_TRUE(solver.contains(IVec{1, 2 * big}));
    EXPECT_FALSE(solver.contains(IVec{1, 2 * big + 1}));
}

TEST(ConeSolver, DimensionMismatchNamesBothDimensions)
{
    ConeSolver solver(Stencil({IVec{1, 0}, IVec{0, 1}}));
    try {
        solver.contains(IVec{1, 2, 3});
        FAIL() << "expected UovUserError";
    } catch (const UovUserError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("dimension 3"), std::string::npos) << msg;
        EXPECT_NE(msg.find("dimension 2"), std::string::npos) << msg;
    }
}

TEST(ConeSolver, BudgetErrorNamesTheStencil)
{
    // A tight node budget must fail with the stencil spelled out so
    // the failing query is reconstructible from the message alone.
    Stencil s({IVec{1, -1}, IVec{1, 1}});
    ConeSolver solver(s, /*max_nodes=*/2);
    try {
        // Membership needs more than two search nodes.
        solver.contains(IVec{40, 0});
        FAIL() << "expected UovUserError";
    } catch (const UovUserError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find(s.str()), std::string::npos) << msg;
        EXPECT_NE(msg.find("budget"), std::string::npos) << msg;
    }
}

TEST(ConeSolver, SemigroupGapCertificates)
{
    // {2, 3, 5} generates the numerical semigroup with gap 1: every
    // n >= 2 is reachable, 1 is not.  The canonicalizer keeps this
    // stencil intact precisely because no generator is implied by the
    // others, so certificates must be exact here.
    Stencil s({IVec{2, 0}, IVec{3, 0}, IVec{5, 0}});
    ConeSolver solver(s);

    EXPECT_FALSE(solver.contains(IVec{1, 0}));
    EXPECT_FALSE(solver.certificate(IVec{1, 0}).has_value());

    for (int64_t n = 2; n <= 20; ++n) {
        auto cert = solver.certificate(IVec{n, 0});
        ASSERT_TRUE(cert.has_value()) << "n=" << n;
        ASSERT_EQ(cert->size(), 3u);
        int64_t sum = (*cert)[0] * 2 + (*cert)[1] * 3 + (*cert)[2] * 5;
        EXPECT_EQ(sum, n) << "n=" << n;
        for (int64_t coeff : *cert)
            EXPECT_GE(coeff, 0) << "n=" << n;
    }
    // Off the generator line nothing is reachable.
    EXPECT_FALSE(solver.contains(IVec{7, 1}));
}

TEST(ConeSolver, MemoReuseAcrossRepeatedQueries)
{
    // Second identical contains()/certificate() queries must be pure
    // memo walks: the node counter does not grow at all.
    Stencil s({IVec{2, 0}, IVec{3, 0}, IVec{5, 0}});
    ConeSolver solver(s);

    EXPECT_TRUE(solver.contains(IVec{17, 0}));
    auto first_cert = solver.certificate(IVec{17, 0});
    ASSERT_TRUE(first_cert.has_value());
    uint64_t nodes = solver.nodesExpanded();
    uint64_t memo = solver.memoSize();
    EXPECT_GT(nodes, 0u);

    EXPECT_TRUE(solver.contains(IVec{17, 0}));
    auto second_cert = solver.certificate(IVec{17, 0});
    ASSERT_TRUE(second_cert.has_value());
    EXPECT_EQ(*second_cert, *first_cert);
    EXPECT_EQ(solver.nodesExpanded(), nodes);
    EXPECT_EQ(solver.memoSize(), memo);
}

TEST(ConeSolver, SharedMemoMakesSiblingQueriesFree)
{
    // A sibling solver sharing the memo answers already-proved
    // subproblems without expanding a single node of its own.
    auto memo = std::make_shared<ConeMemo>(
        Stencil({IVec{2, 0}, IVec{3, 0}, IVec{5, 0}}));
    ConeSolver first(memo);
    EXPECT_TRUE(first.contains(IVec{17, 0}));
    EXPECT_GT(first.nodesExpanded(), 0u);

    ConeSolver second(memo);
    EXPECT_TRUE(second.contains(IVec{17, 0}));
    EXPECT_EQ(second.nodesExpanded(), 0u);
    EXPECT_EQ(second.memoSize(), first.memoSize());
}

TEST(ConeSolver, SharedMemoServesOracleAndDoneDead)
{
    // The memo() accessor exists so UovOracle / DoneDeadAnalysis over
    // the same stencil can pool membership work; verify the pooled
    // answers match fresh solvers.
    Stencil s({IVec{1, 1}, IVec{1, -1}});
    ConeSolver pooled(s);
    EXPECT_TRUE(pooled.contains(IVec{2, 0}));
    size_t memo_after_first = pooled.memoSize();

    ConeSolver sibling(pooled.memo());
    EXPECT_TRUE(sibling.contains(IVec{2, 0}));
    EXPECT_EQ(sibling.nodesExpanded(), 0u);
    EXPECT_EQ(pooled.memoSize(), memo_after_first);
}

} // namespace
} // namespace uov
