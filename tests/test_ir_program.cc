/**
 * @file
 * Unit tests for the loop-nest IR.
 */

#include <gtest/gtest.h>

#include "ir/program.h"
#include "support/error.h"

namespace uov {
namespace {

TEST(LoopNestIr, ConstructionAndBasics)
{
    LoopNest nest("n", IVec{1, 0}, IVec{4, 9});
    EXPECT_EQ(nest.depth(), 2u);
    EXPECT_EQ(nest.tripCount(), 4 * 10);
    EXPECT_TRUE(nest.domain().contains(IVec{2, 5}));
    EXPECT_FALSE(nest.domain().contains(IVec{0, 5}));
    EXPECT_THROW(LoopNest("bad", IVec{2, 0}, IVec{1, 9}), UovUserError);
    EXPECT_THROW(LoopNest("bad", IVec{1}, IVec{1, 2}), UovUserError);
}

TEST(LoopNestIr, UniformAccessElementAt)
{
    Access a = uniformAccess("A", IVec{-1, 2});
    EXPECT_EQ(a.elementAt(IVec{5, 5}), (IVec{4, 7}));
    EXPECT_EQ(a.array, "A");
}

TEST(LoopNestIr, NonIdentityAccess)
{
    // A transposed access: element = (j, i).
    Access a;
    a.array = "T";
    a.coef = IMatrix({{0, 1}, {1, 0}});
    a.offset = IVec{0, 0};
    EXPECT_EQ(a.elementAt(IVec{2, 7}), (IVec{7, 2}));
}

TEST(LoopNestIr, StatementValidation)
{
    LoopNest nest("n", IVec{0, 0}, IVec{3, 3});
    Statement s;
    s.name = "bad";
    s.write = uniformAccess("A", IVec{0}); // wrong rank vs depth
    EXPECT_THROW(nest.addStatement(s), UovUserError);
}

TEST(LoopNestIr, SingleWriterPerArray)
{
    LoopNest nest("n", IVec{0, 0}, IVec{3, 3});
    Statement s1;
    s1.name = "w1";
    s1.write = uniformAccess("A", IVec{0, 0});
    nest.addStatement(s1);
    Statement s2;
    s2.name = "w2";
    s2.write = uniformAccess("A", IVec{0, 1});
    EXPECT_THROW(nest.addStatement(s2), UovUserError);
    EXPECT_EQ(nest.writerOf("A"), 0u);
    EXPECT_EQ(nest.writerOf("nope"), LoopNest::npos);
}

TEST(LoopNestIr, CannedNestsShape)
{
    LoopNest simple = nests::simpleExample(4, 6);
    EXPECT_EQ(simple.depth(), 2u);
    EXPECT_EQ(simple.statements().size(), 1u);
    EXPECT_EQ(simple.statement(0).reads.size(), 3u);

    LoopNest five = nests::fivePointStencil(10, 100);
    EXPECT_EQ(five.statement(0).reads.size(), 5u);
    EXPECT_EQ(five.tripCount(), 10 * 100);

    LoopNest psm = nests::proteinMatching(8, 9);
    EXPECT_EQ(psm.tripCount(), 72);
    EXPECT_THROW(psm.statement(1), UovUserError);
}

} // namespace
} // namespace uov
