/**
 * @file
 * Span tracing with thread-local ring buffers and Perfetto export.
 *
 * The service's metrics (support/metrics) say *how much* time each
 * stage consumed in aggregate; this tracer says *where* any single
 * request's time went.  Production code marks regions with
 *
 *     TRACE_SPAN("service.search");            // RAII begin/end
 *     TRACE_COUNTER("search.nodes", "nodes", visited);
 *
 * and when tracing is disabled (the default) every macro costs one
 * relaxed atomic load -- the same discipline as failpoint.h, so the
 * instrumentation can stay in the hot paths permanently.  When
 * enabled, events are appended to a fixed-capacity *thread-local*
 * ring buffer: no locks, no CAS, no cross-thread cache traffic on the
 * record path.  A buffer that fills up drops new events (drop-newest)
 * and counts the drops; published slots are never overwritten, so the
 * exporter can run concurrently with writers under the release/
 * acquire publication of each buffer's count.
 *
 * Export produces Chrome trace-event JSON ("traceEvents" array of
 * B/E/C/i/M phases, microsecond timestamps) loadable in Perfetto or
 * chrome://tracing, plus a flat summary table of total/self wall time
 * per span name.  `uovd --trace FILE` and the `UOV_TRACE=FILE`
 * environment fallback (armed at static initialization, exported at
 * process exit -- covering benches, fuzzers, and test binaries with
 * no code changes) are the two entry points.
 *
 * Event names and argument keys must be string literals (or otherwise
 * static-duration strings): the hot path stores the pointer only.
 *
 * Thread-safety: recording is safe from any thread at any time.
 * enable()/disable()/clear() are transitions for the controlling
 * thread (driver main, test body) and must not race each other;
 * concurrent recorders simply keep or stop appending.  clear() frees
 * buffers and must only be called while instrumented threads are
 * quiescent (buffer reuse is epoch-guarded, but a thread mid-append
 * during clear() would touch freed memory -- the same quiescence rule
 * exporters already need for complete data).
 */

#ifndef UOV_SUPPORT_TRACE_H
#define UOV_SUPPORT_TRACE_H

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "support/table.h"

namespace uov {
namespace trace {

namespace detail {
/** Fast-path flag; nothing else is touched while tracing is off. */
extern std::atomic<bool> g_enabled;
} // namespace detail

/** Whether tracing is currently enabled (one relaxed atomic load). */
inline bool
tracingEnabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/** One typed key/value annotation on an event. */
struct Arg
{
    enum class Type : uint8_t { None, Int, Dbl, Str };

    const char *key = nullptr; ///< static-duration string
    Type type = Type::None;
    union
    {
        int64_t i;
        double d;
        const char *s; ///< static-duration string
    };
};

/** One trace event; fixed-size so ring slots never allocate. */
struct Event
{
    static constexpr int kMaxArgs = 2;

    const char *name = nullptr; ///< static-duration string
    int64_t ts_ns = 0;          ///< since the tracer's enable() epoch
    char phase = '?';           ///< Chrome phase: B, E, C, i
    uint8_t nargs = 0;
    Arg args[kMaxArgs];
};

/** Totals for one span name in the flat summary. */
struct SpanSummary
{
    std::string name;
    uint64_t count = 0;
    int64_t total_ns = 0; ///< sum of span durations
    int64_t self_ns = 0;  ///< total minus directly nested child spans
};

/**
 * The process-wide tracer.  All recording goes through the free
 * helpers / macros below; the class manages buffers and export.
 */
class Tracer
{
  public:
    /** Default events per thread buffer (~4 MiB per thread). */
    static constexpr size_t kDefaultCapacity = size_t{1} << 16;

    static Tracer &instance();

    /**
     * Start recording; per-thread ring buffers hold @p capacity
     * events each.  Idempotent while enabled (the capacity of
     * already-allocated buffers is not changed); a fresh enable after
     * disable() keeps previously recorded events until clear().
     */
    void enable(size_t capacity = kDefaultCapacity);

    /** Stop recording; buffers are kept for export. */
    void disable();

    bool
    enabled() const
    {
        return tracingEnabled();
    }

    /**
     * Drop all buffers and zero the drop counters (quiescence
     * required; see the file comment).  Keeps the enabled state.
     */
    void clear();

    /** Events currently recorded across all thread buffers. */
    uint64_t eventCount() const;

    /** Events dropped because a thread's ring buffer was full. */
    uint64_t droppedCount() const;

    /**
     * Write everything recorded so far as Chrome trace-event JSON.
     * Spans a writer left open (or whose End was dropped) are closed
     * with synthesized End events at that thread's last timestamp, so
     * the output always has balanced B/E pairs per tid.
     */
    void writeChromeJson(std::ostream &os) const;

    /** Flat per-span-name totals, name-sorted. */
    std::vector<SpanSummary> summarize() const;

    /** summarize() rendered as a support/table dump. */
    Table summaryTable() const;

    /**
     * writeChromeJson to @p path.  Returns false (with @p error set)
     * when the file cannot be written.
     */
    bool exportToFile(const std::string &path,
                      std::string *error = nullptr) const;

    // Recording primitives (used by the Span/macro layer; callable
    // directly for explicit begin/end pairs).  No-ops when disabled.
    void beginEvent(const char *name);
    void endEvent(const char *name, const Arg *args = nullptr,
                  int nargs = 0);
    void counterEvent(const char *name, const char *key, int64_t value);
    void instantEvent(const char *name, const Arg *args = nullptr,
                      int nargs = 0);

    /**
     * Name the calling thread in the exported trace ("M" metadata
     * event).  Cheap; callable whether or not tracing is enabled (the
     * name is remembered in a thread-local and attached when the
     * thread's buffer is created).
     */
    static void setCurrentThreadName(const std::string &name);

  private:
    Tracer();
    ~Tracer();

    struct Impl;
    Impl *_impl;
};

/** Convenience wrappers so call sites read as trace::begin("x"). */
inline void
begin(const char *name)
{
    if (tracingEnabled())
        Tracer::instance().beginEvent(name);
}

inline void
end(const char *name)
{
    if (tracingEnabled())
        Tracer::instance().endEvent(name);
}

inline void
counter(const char *name, const char *key, int64_t value)
{
    if (tracingEnabled())
        Tracer::instance().counterEvent(name, key, value);
}

/**
 * RAII span: records a Begin event at construction and an End event
 * (carrying any attached args) at destruction.  When tracing is
 * disabled at construction the span is fully inert -- including a
 * destructor that touches nothing.
 */
class Span
{
  public:
    explicit Span(const char *name)
    {
        if (!tracingEnabled())
            return;
        _name = name;
        Tracer::instance().beginEvent(name);
    }

    ~Span()
    {
        if (_name != nullptr)
            Tracer::instance().endEvent(_name, _args, _nargs);
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** Attach a typed key/value to the span's End event. */
    void
    arg(const char *key, int64_t value)
    {
        if (_name == nullptr || _nargs >= Event::kMaxArgs)
            return;
        _args[_nargs].key = key;
        _args[_nargs].type = Arg::Type::Int;
        _args[_nargs].i = value;
        ++_nargs;
    }

    void
    arg(const char *key, double value)
    {
        if (_name == nullptr || _nargs >= Event::kMaxArgs)
            return;
        _args[_nargs].key = key;
        _args[_nargs].type = Arg::Type::Dbl;
        _args[_nargs].d = value;
        ++_nargs;
    }

    void
    arg(const char *key, const char *value)
    {
        if (_name == nullptr || _nargs >= Event::kMaxArgs)
            return;
        _args[_nargs].key = key;
        _args[_nargs].type = Arg::Type::Str;
        _args[_nargs].s = value;
        ++_nargs;
    }

    /** Whether the span is actually recording. */
    bool active() const { return _name != nullptr; }

  private:
    const char *_name = nullptr;
    Arg _args[Event::kMaxArgs];
    int _nargs = 0;
};

} // namespace trace
} // namespace uov

#define UOV_TRACE_CONCAT2(a, b) a##b
#define UOV_TRACE_CONCAT(a, b) UOV_TRACE_CONCAT2(a, b)

/** Anonymous RAII span covering the rest of the enclosing scope. */
#define TRACE_SPAN(name)                                                  \
    ::uov::trace::Span UOV_TRACE_CONCAT(uov_trace_span_, __LINE__)(name)

/** One sample of a named counter series (Chrome "C" event). */
#define TRACE_COUNTER(name, key, value)                                   \
    ::uov::trace::counter(name, key,                                      \
                          static_cast<int64_t>(value))

#endif // UOV_SUPPORT_TRACE_H
