/**
 * @file
 * Tests for the extension features: hierarchical tiling schedules and
 * the greedy UOV heuristic.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/greedy.h"
#include "core/search.h"
#include "core/uov.h"
#include "schedule/executor.h"
#include "schedule/legality.h"

namespace uov {
namespace {

TEST(HierarchicalTiling, EnumeratesCompletely)
{
    IVec lo{0, 0}, hi{10, 13};
    HierarchicalTiledSchedule sched({2, 3}, {2, 2},
                                    IMatrix::identity(2));
    std::set<std::vector<int64_t>> seen;
    uint64_t count = 0;
    sched.forEach(lo, hi, [&](const IVec &q) {
        ++count;
        EXPECT_TRUE(seen.insert(q.coords()).second) << q.str();
    });
    EXPECT_EQ(count, 11u * 14u);
}

TEST(HierarchicalTiling, SkewedIsLegalForFivePoint)
{
    Stencil five = stencils::fivePoint();
    IMatrix skew = skewToNonNegative(five);
    HierarchicalTiledSchedule sched({2, 4}, {2, 3}, skew, "hier");
    EXPECT_TRUE(scheduleRespectsStencil(sched, IVec{0, 0}, IVec{8, 8},
                                        five));
    // Unskewed rectangular hierarchy is illegal for this stencil.
    HierarchicalTiledSchedule rect({2, 4}, {2, 3},
                                   IMatrix::identity(2));
    EXPECT_FALSE(scheduleRespectsStencil(rect, IVec{0, 0}, IVec{8, 8},
                                         five));
}

TEST(HierarchicalTiling, UovSurvivesHierarchy)
{
    // The UOV guarantee covers two-level tiling like any other legal
    // schedule.
    Stencil five = stencils::fivePoint();
    IMatrix skew = skewToNonNegative(five);
    StencilComputation comp(five);
    HierarchicalTiledSchedule sched({2, 4}, {2, 3}, skew, "hier");
    ExecutionResult r = runWithOvStorage(comp, sched, IVec{0, 0},
                                         IVec{9, 11}, IVec{2, 0});
    EXPECT_TRUE(r.correct());
    EXPECT_EQ(r.clobbers, 0u);
}

TEST(HierarchicalTiling, ThreeDimensional)
{
    Stencil heat = stencils::heat3D();
    IMatrix skew = skewToNonNegative(heat);
    HierarchicalTiledSchedule sched({2, 3, 3}, {2, 2, 2}, skew,
                                    "hier3d");
    EXPECT_TRUE(scheduleRespectsStencil(sched, IVec{0, 0, 0},
                                        IVec{4, 5, 5}, heat));
}

TEST(HierarchicalTiling, RejectsBadShapes)
{
    EXPECT_THROW(HierarchicalTiledSchedule({2}, {2, 2},
                                           IMatrix::identity(2)),
                 UovUserError);
    EXPECT_THROW(HierarchicalTiledSchedule({2, 0}, {2, 2},
                                           IMatrix::identity(2)),
                 UovUserError);
}

TEST(GreedySearch, OptimalOnPaperStencils)
{
    for (const Stencil &s :
         {stencils::simpleExample(), stencils::fivePoint(),
          stencils::proteinMatching(), stencils::heat3D()}) {
        GreedyResult greedy = greedyUovSearch(s);
        SearchResult exact =
            BranchBoundSearch(s, SearchObjective::ShortestVector).run();
        EXPECT_EQ(greedy.objective, exact.best_objective) << s.str();
        EXPECT_TRUE(UovOracle(s).isUov(greedy.uov)) << s.str();
        EXPECT_GT(greedy.probes, 0u);
    }
}

TEST(GreedySearch, AlwaysReturnsAUov)
{
    // A zoo of odd stencils: greedy must stay legal even when it is
    // not optimal.
    std::vector<Stencil> zoo = {
        Stencil({IVec{1, 5}, IVec{1, -5}}),
        Stencil({IVec{2, 1}, IVec{1, 2}}),
        Stencil({IVec{1, 3}, IVec{2, -1}, IVec{3, 0}}),
        Stencil({IVec{0, 1}, IVec{1, -4}}),
    };
    for (const Stencil &s : zoo) {
        GreedyResult greedy = greedyUovSearch(s);
        EXPECT_TRUE(UovOracle(s).isUov(greedy.uov)) << s.str();
        SearchResult exact =
            BranchBoundSearch(s, SearchObjective::ShortestVector).run();
        EXPECT_GE(greedy.objective, exact.best_objective) << s.str();
    }
}

TEST(GreedySearch, CanBeSuboptimal)
{
    // {(1,5),(1,-5)}: initial (2,0) is already optimal here, so use a
    // case where subtract-moves dead-end: {(1,1),(1,-1),(0,2)}.
    // Initial (2,2); optimal shortest is (2,0) ((2,0)-(1,1)=(1,-1),
    // (2,0)-(1,-1)=(1,1), (2,0)-(0,2)=(2,-2)=2*(1,-1): all in cone).
    // Greedy from (2,2): -(1,1)=(1,1)? (1,1)-(0,2)=(1,-1) in cone,
    // (1,1)-(1,1)=0, (1,1)-(1,-1)=(0,2): (1,1) is a UOV with norm 2 <
    // optimal 4?  Then greedy WINS here; just assert consistency.
    Stencil s({IVec{1, 1}, IVec{1, -1}, IVec{0, 2}});
    GreedyResult greedy = greedyUovSearch(s);
    SearchResult exact =
        BranchBoundSearch(s, SearchObjective::ShortestVector).run();
    EXPECT_GE(greedy.objective, exact.best_objective);
    EXPECT_TRUE(UovOracle(s).isUov(greedy.uov));
}

} // namespace
} // namespace uov
