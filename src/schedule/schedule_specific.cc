#include "schedule/schedule_specific.h"

#include <cmath>

#include "core/storage_count.h"
#include "support/error.h"

namespace uov {

ScheduleSpecificResult
bestOvForLinearSchedule(const IVec &h, const Stencil &stencil,
                        const std::optional<Polyhedron> &isg)
{
    UOV_REQUIRE(h.dim() == stencil.dim(), "dimension mismatch");
    for (const auto &v : stencil.deps())
        UOV_REQUIRE(h.dot(v) > 0, "h." << v.str()
                                       << " <= 0: not a legal schedule");
    if (isg)
        UOV_REQUIRE(isg->dim() == stencil.dim(),
                    "ISG dimension mismatch");

    auto objective_of = [&](const IVec &w) {
        return isg ? storageCellCount(w, *isg) : w.normSquared();
    };

    // The initial UOV is legal for every legal linear schedule:
    // for each dependence v, h.v < h.(sum of deps) unless the stencil
    // is the single vector {v} == ov (also legal).
    IVec initial = stencil.initialUov();
    UOV_CHECK(ovLegalForLinearSchedule(h, initial, stencil),
              "initial UOV must be schedule-legal");

    ScheduleSpecificResult best{initial, objective_of(initial), 0};

    int64_t radius_sq = initial.normSquared();
    if (isg) {
        // Length bound from the storage bound, as in Section 3.2.1.
        radius_sq = knownBoundsRadiusSquared(initial, *isg);
    }
    auto radius = static_cast<int64_t>(
                      std::sqrt(static_cast<double>(radius_sq))) +
                  1;

    size_t d = stencil.dim();
    IVec w(d);
    for (size_t c = 0; c < d; ++c)
        w[c] = -radius;
    for (;;) {
        if (!w.isZero() && w.normSquared() <= radius_sq &&
            h.dot(w) > 0) {
            ++best.candidates;
            if (ovLegalForLinearSchedule(h, w, stencil)) {
                int64_t obj = objective_of(w);
                if (obj < best.objective ||
                    (obj == best.objective && w < best.ov)) {
                    best.objective = obj;
                    best.ov = w;
                }
            }
        }
        size_t c = d;
        bool done = false;
        while (c-- > 0) {
            if (w[c] < radius) {
                ++w[c];
                break;
            }
            w[c] = -radius;
            if (c == 0)
                done = true;
        }
        if (done)
            break;
    }
    return best;
}

} // namespace uov
