/**
 * @file
 * Composable schedule primitives (the FreeTensor-style builder the
 * autotuner enumerates over).
 *
 * A ScheduleBuilder starts from the original lexicographic order and
 * records primitive applications -- reorder, skew, split/tile, unroll,
 * unroll-and-jam -- as (a) a unimodular transform, (b) per-dimension
 * tile sizes, and (c) register-tiling factors.  The composition is
 * validated as a whole against the dependence stencil with the
 * existing algebraic checkers (legality.h, regcost.h's jamLegal), can
 * be materialized as a Schedule object for the simulators and the
 * empirical legality oracle, and -- when it matches one of the forms
 * the C emitter knows -- lowers to exact CodegenOptions fields for the
 * native backend.
 *
 * Builders are cheap value types: the tuner copies them freely while
 * enumerating the candidate space, and str() renders the primitive
 * sequence deterministically for response lines and bench tables.
 */

#ifndef UOV_SCHEDULE_BUILDER_H
#define UOV_SCHEDULE_BUILDER_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/stencil.h"
#include "geometry/matrix.h"
#include "schedule/schedule.h"

namespace uov {

/** The GenSchedule form a builder lowers to (codegen.h re-exported
 *  would be a cyclic include; the integer values match GenSchedule). */
enum class LoweredForm
{
    Lexicographic,
    SkewedTiled,
    RegisterTiled,
};

/** Exact CodegenOptions fields for a lowerable builder. */
struct LoweredSchedule
{
    LoweredForm form = LoweredForm::Lexicographic;
    std::vector<int64_t> tile_sizes; ///< SkewedTiled only: two sizes
    int64_t unroll = 0;              ///< RegisterTiled only
    int64_t jam = 0;                 ///< RegisterTiled only
};

/**
 * A composed sequence of schedule primitives over a depth-d nest.
 *
 * Primitives mutate the builder and return *this so applications
 * chain; each records itself for str().  Primitives validate their
 * own shape eagerly (bad dimension index, non-positive factor ->
 * UovUserError) but legality against a stencil is checked as a whole
 * by validate(), so partial compositions that pass through an illegal
 * intermediate state are fine.
 */
class ScheduleBuilder
{
  public:
    /** Depth-0 placeholder (containers); not usable until assigned. */
    ScheduleBuilder() = default;

    /** The identity (original lexicographic) schedule for depth d. */
    explicit ScheduleBuilder(size_t depth);

    /**
     * Permute the loops: perm[k] names the original dimension iterated
     * at nest level k (LexSchedule convention).
     * @throws UovUserError unless perm is a permutation of 0..d-1
     */
    ScheduleBuilder &reorder(const std::vector<size_t> &perm);

    /**
     * Skew dimension @p target by @p factor times dimension @p source
     * (y_target = q_target + factor * q_source), an elementary
     * unimodular row operation.
     * @throws UovUserError on out-of-range or equal dimensions
     */
    ScheduleBuilder &skew(size_t target, size_t source, int64_t factor);

    /**
     * The canonical legal skew for @p stencil (legality.h): after it,
     * every transformed distance is component-wise non-negative, so
     * rectangular tiling is legal.
     * @throws UovUserError if some dependence has v_0 <= 0
     */
    ScheduleBuilder &skewToNonNegative(const Stencil &stencil);

    /**
     * Tile (strip-mine) transformed dimension @p dim with tiles of
     * @p size iterations; tiles execute as atomic units in
     * lexicographic order.  Applying split to an already-split
     * dimension replaces its size.
     * @throws UovUserError on out-of-range dim or size < 1
     */
    ScheduleBuilder &split(size_t dim, int64_t size);

    /** split() every dimension: sizes[k] tiles dimension k (0 keeps
     *  dimension k untiled). */
    ScheduleBuilder &tile(const std::vector<int64_t> &sizes);

    /** Unroll the innermost loop by @p factor (order-preserving). */
    ScheduleBuilder &unroll(int64_t factor);

    /**
     * Unroll-and-jam the second-innermost loop by @p factor.  Changes
     * execution order, so validate() checks jamLegal against the
     * transformed distances.
     * @throws UovUserError when depth < 2 or factor < 1
     */
    ScheduleBuilder &unrollJam(int64_t factor);

    size_t depth() const { return _depth; }
    const IMatrix &transform() const { return _transform; }
    /** Per-dimension tile sizes; 0 = untiled. */
    const std::vector<int64_t> &tileSizes() const { return _tiles; }
    /** True when any dimension is tiled. */
    bool tiled() const;
    int64_t unrollFactor() const { return _unroll; }
    int64_t jamFactor() const { return _jam; }
    /** Statement copies per emitted body under unroll/jam. */
    int64_t copies() const { return _unroll * _jam; }

    /**
     * Check the whole composition against @p stencil: the transform
     * must keep every distance lexicographically positive
     * (transformLegal), tiling additionally needs component-wise
     * non-negative transformed distances (tilingLegal), and a jam
     * factor > 1 must pass jamLegal on the transformed distances.
     * @throws UovUserError naming the first failing primitive
     */
    void validate(const Stencil &stencil) const;

    /** Non-throwing validate(). */
    bool legal(const Stencil &stencil) const;

    /**
     * Materialize as a Schedule object over [lo, hi] (for simulators
     * and the empirical oracle).  Untiled dimensions become one tile
     * spanning the whole transformed extent of the box.  Unroll/jam
     * factors do not change the visit order, so they do not appear.
     */
    std::unique_ptr<Schedule> buildSchedule(const IVec &lo,
                                            const IVec &hi) const;

    /**
     * Lower to the exact CodegenOptions fields of a GenSchedule form
     * the C emitter supports, or nullopt when the composition has no
     * native lowering:
     *  - identity transform, untiled         -> Lexicographic, or
     *    RegisterTiled when unroll/jam > 1
     *  - canonical skew (== skewToNonNegative(stencil)), both of two
     *    dimensions tiled, no unroll/jam     -> SkewedTiled
     */
    std::optional<LoweredSchedule> lower(const Stencil &stencil) const;

    /** Deterministic primitive sequence, e.g.
     *  "skew(1,0,2);tile(8,32)"; the identity renders as "lex". */
    std::string str() const;

    bool operator==(const ScheduleBuilder &o) const;

  private:
    size_t _depth = 0;
    IMatrix _transform;          ///< unimodular, composed primitives
    std::vector<int64_t> _tiles; ///< per-dim tile size, 0 = untiled
    int64_t _unroll = 1;
    int64_t _jam = 1;
    std::vector<std::string> _primitives; ///< for str()
};

} // namespace uov

#endif // UOV_SCHEDULE_BUILDER_H
