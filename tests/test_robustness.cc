/**
 * @file
 * Robustness sweeps: deterministic fuzzing of the nest parser,
 * randomized lattice-algebra stress, polyhedra beyond rectangles, and
 * golden checksums pinning the kernels' bit-exact outputs.
 */

#include <gtest/gtest.h>

#include "driver/nest_parser.h"
#include "geometry/lattice.h"
#include "geometry/polyhedron.h"
#include "kernels/heat3d.h"
#include "kernels/psm.h"
#include "kernels/stencil5.h"
#include "support/rng.h"

namespace uov {
namespace {

TEST(ParserFuzz, GarbageNeverCrashes)
{
    SplitMix64 rng(0xF022);
    const std::string alphabet =
        "nestbounds statementwriteread[],.-0123456789\n\t #x";
    for (int trial = 0; trial < 300; ++trial) {
        std::string text;
        size_t len = rng.nextBelow(200);
        for (size_t i = 0; i < len; ++i)
            text += alphabet[rng.nextBelow(alphabet.size())];
        // Must either parse (rare) or throw a UovError -- never crash
        // or throw anything else.
        try {
            LoopNest nest = parseNestString(text);
            EXPECT_GE(nest.depth(), 1u);
        } catch (const UovError &) {
            // expected for garbage
        }
    }
}

TEST(ParserFuzz, MutatedValidInputsFailCleanly)
{
    const std::string valid =
        "nest n\nbounds 1..8 1..8\nstatement s\n  write A[0,0]\n"
        "  read A[-1,0]\n  read A[0,-1]\n";
    SplitMix64 rng(0xBADF00D);
    for (int trial = 0; trial < 200; ++trial) {
        std::string text = valid;
        // Flip a few characters.
        for (int k = 0; k < 3; ++k) {
            size_t pos = rng.nextBelow(text.size());
            text[pos] = static_cast<char>(32 + rng.nextBelow(90));
        }
        try {
            parseNestString(text);
        } catch (const UovError &) {
        }
    }
    SUCCEED();
}

TEST(ParserFuzz, RandomValidNestsRoundTrip)
{
    SplitMix64 rng(0x90DD);
    for (int trial = 0; trial < 50; ++trial) {
        size_t d = 1 + rng.nextBelow(3);
        IVec lo(d), hi(d);
        for (size_t c = 0; c < d; ++c) {
            lo[c] = rng.nextInRange(-3, 3);
            hi[c] = lo[c] + 1 + rng.nextInRange(0, 6);
        }
        LoopNest nest("fuzz", lo, hi);
        Statement s;
        s.name = "s";
        s.write = uniformAccess("A", IVec(std::vector<int64_t>(d, 0)));
        size_t reads = 1 + rng.nextBelow(4);
        for (size_t r = 0; r < reads; ++r) {
            IVec off(d);
            for (size_t c = 0; c < d; ++c)
                off[c] = rng.nextInRange(-2, 2);
            s.reads.push_back(uniformAccess("A", off));
        }
        nest.addStatement(s);

        LoopNest reparsed = parseNestString(formatNest(nest));
        EXPECT_EQ(reparsed.lo(), nest.lo());
        EXPECT_EQ(reparsed.hi(), nest.hi());
        EXPECT_EQ(reparsed.statement(0).reads.size(),
                  nest.statement(0).reads.size());
    }
}

TEST(LatticeStress, RandomPrimitiveCompletions)
{
    SplitMix64 rng(0x1A77);
    int done = 0;
    while (done < 60) {
        size_t d = 2 + rng.nextBelow(4); // 2..5
        IVec v(d);
        for (size_t c = 0; c < d; ++c)
            v[c] = rng.nextInRange(-9, 9);
        if (v.isZero() || v.content() != 1)
            continue;
        ++done;
        IMatrix u = unimodularCompletion(v);
        EXPECT_TRUE(u.isUnimodular()) << v.str();
        IVec e = u * v;
        EXPECT_EQ(e[0], 1) << v.str();
        for (size_t i = 1; i < d; ++i)
            EXPECT_EQ(e[i], 0) << v.str();
        // Bezout agrees with content.
        EXPECT_EQ(bezoutVector(v).dot(v), 1) << v.str();
    }
}

TEST(PolyhedronShapes, HexagonVerticesAndProjections)
{
    // |x| <= 4, |y| <= 4, |x+y| <= 6: an octagon-ish hexagon.
    IMatrix a({{1, 0}, {-1, 0}, {0, 1}, {0, -1}, {1, 1}, {-1, -1}});
    Polyhedron p = Polyhedron::fromConstraints(
        a, IVec{4, 4, 4, 4, 6, 6});
    EXPECT_EQ(p.vertices().size(), 6u);
    EXPECT_TRUE(p.contains(IVec{0, 0}));
    EXPECT_TRUE(p.contains(IVec{4, 2}));
    EXPECT_FALSE(p.contains(IVec{4, 3}));
    EXPECT_EQ(p.projectionCount(IVec{1, 0}), 9);
    EXPECT_EQ(p.projectionCount(IVec{1, 1}), 13);
    // Count integer points by scan and confirm symmetric.
    EXPECT_GT(p.countIntegerPoints(), 0);
}

TEST(GoldenChecksums, KernelsAreBitStable)
{
    // Pin exact outputs so refactors of the kernels or RNG cannot
    // silently change the computations (all variants are compared to
    // these references elsewhere, so this pins every variant).
    VirtualArena arena;
    NativeMem mem;
    {
        Stencil5Config cfg;
        cfg.length = 64;
        cfg.steps = 5;
        EXPECT_DOUBLE_EQ(
            runStencil5(Stencil5Variant::Natural, cfg, mem, arena),
            34.515047013759613);
    }
    {
        PsmConfig cfg;
        cfg.n0 = 40;
        cfg.n1 = 50;
        EXPECT_EQ(runPsm(PsmVariant::Natural, cfg, mem, arena), 70);
    }
    {
        Heat3DConfig cfg;
        cfg.nx = 12;
        cfg.ny = 10;
        cfg.steps = 4;
        EXPECT_DOUBLE_EQ(
            runHeat3D(Heat3DVariant::Natural, cfg, mem, arena),
            61.81656475935597);
    }
}

} // namespace
} // namespace uov
