/**
 * @file
 * The paper's 5-point stencil code (Section 5) in every measured
 * storage variant.
 *
 * A 1-D array of length L evolves for T time steps; each element
 * becomes a weighted average of its five neighbours in the previous
 * time step.  The dependence stencil is {(1,-2),(1,-1),(1,0),(1,1),
 * (1,2)} and the UOV is (2,0) (Figure 5), so OV-mapped code needs two
 * rows of storage -- consecutive ("blocked") or interleaved.
 *
 * Variants (Table 1 / Figures 7, 9-11):
 *   Natural              (T+1) x L array, row-major
 *   NaturalTiled         same storage, skewed (time) tiling
 *   Ov                   2 x L rows, A[(t mod 2)*L + i]
 *   OvInterleaved        2 x L interleaved, A[2*i + (t mod 2)]
 *   OvTiled              skewed tiling over Ov storage
 *   OvInterleavedTiled   skewed tiling over interleaved storage
 *   StorageOptimized     in-place row + 3 temporaries (untilable)
 *
 * Every variant computes bit-identical results (same per-point FP
 * expression); the kernels are templated on the memory policy so one
 * code path serves both wall-clock and simulated-machine runs.
 */

#ifndef UOV_KERNELS_STENCIL5_H
#define UOV_KERNELS_STENCIL5_H

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/memory_policy.h"
#include "support/error.h"
#include "support/rng.h"

namespace uov {

/** The measured code versions of the 5-point stencil. */
enum class Stencil5Variant
{
    Natural,
    NaturalTiled,
    Ov,
    OvInterleaved,
    OvTiled,
    OvInterleavedTiled,
    StorageOptimized,
};

/** All variants, in the paper's reporting order. */
const std::vector<Stencil5Variant> &allStencil5Variants();

const char *stencil5VariantName(Stencil5Variant v);
bool stencil5VariantTiled(Stencil5Variant v);

/** Problem and tiling parameters. */
struct Stencil5Config
{
    int64_t length = 1024; ///< L
    int64_t steps = 16;    ///< T
    int64_t tile_t = 8;    ///< time-tile height (tiled variants)
    int64_t tile_s = 512;  ///< skewed-space tile width
};

/**
 * Temporary-storage cells of each variant (Table 1): natural T*L,
 * OV-mapped 2*L, storage-optimized L+3.
 */
int64_t stencil5TemporaryStorage(Stencil5Variant v, int64_t length,
                                 int64_t steps);

/** Deterministic input row for a given length. */
std::vector<float> stencil5Input(int64_t length, uint64_t seed = 1);

namespace detail {

/** Stencil weights (sum to 1). */
inline constexpr float kW0 = 0.10f, kW1 = 0.20f, kW2 = 0.40f,
                       kW3 = 0.20f, kW4 = 0.10f;

/// Arithmetic cycles charged per interior point on simulated machines.
inline constexpr double kStencilComputeCycles = 3.0;

/** Shared skewed-tiling driver: calls body(t, i) in tile order. */
template <typename Body>
void
forEachSkewTiled(int64_t steps, int64_t length, int64_t tile_t,
                 int64_t tile_s, Body body)
{
    // Skew s = i + 2t makes every dependence component-wise
    // non-negative, so rectangular (tb, sb) tiles in (t, s) space are
    // atomic-legal (Section 2; legality is tested in
    // tests/test_kernels_stencil5.cc against the schedule layer).
    const int64_t s_min = 2;           // t = 1, i = 0 -> s = 2
    const int64_t s_max = 2 * steps + length - 1;
    for (int64_t tb = 1; tb <= steps; tb += tile_t) {
        for (int64_t sb = s_min; sb <= s_max; sb += tile_s) {
            int64_t t_end = std::min(tb + tile_t - 1, steps);
            for (int64_t t = tb; t <= t_end; ++t) {
                int64_t s_lo = std::max(sb, 2 * t);
                int64_t s_hi =
                    std::min(sb + tile_s - 1, 2 * t + length - 1);
                for (int64_t s = s_lo; s <= s_hi; ++s)
                    body(t, s - 2 * t);
            }
        }
    }
}

} // namespace detail

/**
 * Run one variant; returns the sum of the final row (identical across
 * variants for the same input).  @p mem is NativeMem or SimMem.
 */
template <typename Mem>
double
runStencil5(Stencil5Variant variant, const Stencil5Config &cfg, Mem &mem,
            VirtualArena &arena)
{
    using detail::kW0;
    using detail::kW1;
    using detail::kW2;
    using detail::kW3;
    using detail::kW4;

    const int64_t len = cfg.length;
    const int64_t steps = cfg.steps;
    UOV_REQUIRE(len >= 8, "stencil needs length >= 8");
    UOV_REQUIRE(steps >= 1, "stencil needs at least one step");

    std::vector<float> input = stencil5Input(len);

    auto interior = [&](auto load_prev, int64_t i) {
        float v = kW0 * load_prev(i - 2) + kW1 * load_prev(i - 1) +
                  kW2 * load_prev(i) + kW3 * load_prev(i + 1) +
                  kW4 * load_prev(i + 2);
        mem.compute(detail::kStencilComputeCycles);
        return v;
    };

    auto sum_row = [&](auto load_final) {
        double acc = 0;
        for (int64_t i = 0; i < len; ++i)
            acc += load_final(i);
        return acc;
    };

    switch (variant) {
      case Stencil5Variant::Natural:
      case Stencil5Variant::NaturalTiled: {
        SimBuffer<float> a(arena,
                           static_cast<size_t>((steps + 1) * len));
        for (int64_t i = 0; i < len; ++i)
            a.data()[i] = input[static_cast<size_t>(i)];
        auto point = [&](int64_t t, int64_t i) {
            auto prev = [&](int64_t k) {
                return mem.load(a,
                                static_cast<size_t>((t - 1) * len + k));
            };
            float v = (i >= 2 && i < len - 2)
                          ? interior(prev, i)
                          : prev(i); // boundary copy
            mem.store(a, static_cast<size_t>(t * len + i), v);
        };
        if (variant == Stencil5Variant::Natural) {
            for (int64_t t = 1; t <= steps; ++t)
                for (int64_t i = 0; i < len; ++i)
                    point(t, i);
        } else {
            detail::forEachSkewTiled(steps, len, cfg.tile_t, cfg.tile_s,
                                     point);
        }
        return sum_row([&](int64_t i) {
            return mem.load(a, static_cast<size_t>(steps * len + i));
        });
      }

      case Stencil5Variant::Ov:
      case Stencil5Variant::OvTiled: {
        // UOV (2,0), blocked: two consecutive rows.
        SimBuffer<float> a(arena, static_cast<size_t>(2 * len));
        for (int64_t i = 0; i < len; ++i)
            a.data()[i] = input[static_cast<size_t>(i)];
        auto cell = [len](int64_t t, int64_t i) {
            return static_cast<size_t>((t & 1) * len + i);
        };
        auto point = [&](int64_t t, int64_t i) {
            auto prev = [&](int64_t k) {
                return mem.load(a, cell(t - 1, k));
            };
            float v = (i >= 2 && i < len - 2) ? interior(prev, i)
                                              : prev(i);
            mem.store(a, cell(t, i), v);
        };
        if (variant == Stencil5Variant::Ov) {
            for (int64_t t = 1; t <= steps; ++t)
                for (int64_t i = 0; i < len; ++i)
                    point(t, i);
        } else {
            detail::forEachSkewTiled(steps, len, cfg.tile_t, cfg.tile_s,
                                     point);
        }
        return sum_row([&](int64_t i) {
            return mem.load(a, cell(steps, i));
        });
      }

      case Stencil5Variant::OvInterleaved:
      case Stencil5Variant::OvInterleavedTiled: {
        // UOV (2,0), interleaved: SM(q) = (0,2).q + (t mod 2)
        // (Figure 5 literally).
        SimBuffer<float> a(arena, static_cast<size_t>(2 * len));
        for (int64_t i = 0; i < len; ++i)
            a.data()[static_cast<size_t>(2 * i)] =
                input[static_cast<size_t>(i)];
        auto cell = [](int64_t t, int64_t i) {
            return static_cast<size_t>(2 * i + (t & 1));
        };
        auto point = [&](int64_t t, int64_t i) {
            auto prev = [&](int64_t k) {
                return mem.load(a, cell(t - 1, k));
            };
            float v = (i >= 2 && i < len - 2) ? interior(prev, i)
                                              : prev(i);
            mem.store(a, cell(t, i), v);
        };
        if (variant == Stencil5Variant::OvInterleaved) {
            for (int64_t t = 1; t <= steps; ++t)
                for (int64_t i = 0; i < len; ++i)
                    point(t, i);
        } else {
            detail::forEachSkewTiled(steps, len, cfg.tile_t, cfg.tile_s,
                                     point);
        }
        return sum_row([&](int64_t i) {
            return mem.load(a, cell(steps, i));
        });
      }

      case Stencil5Variant::StorageOptimized: {
        // In-place row plus three rotating temporaries (Table 1:
        // L + 3).  The temporaries create storage dependences between
        // every pair of iterations, so only this schedule is legal --
        // the code cannot be tiled (Figure 1(c)'s phenomenon).
        SimBuffer<float> a(arena, static_cast<size_t>(len));
        for (int64_t i = 0; i < len; ++i)
            a.data()[i] = input[static_cast<size_t>(i)];
        for (int64_t t = 1; t <= steps; ++t) {
            float tm2 = mem.load(a, 0);
            float tm1 = mem.load(a, 1);
            for (int64_t i = 2; i < len - 2; ++i) {
                float cur = mem.load(a, static_cast<size_t>(i));
                float v = kW0 * tm2 + kW1 * tm1 + kW2 * cur +
                          kW3 * mem.load(a, static_cast<size_t>(i + 1)) +
                          kW4 * mem.load(a, static_cast<size_t>(i + 2));
                mem.compute(detail::kStencilComputeCycles);
                mem.store(a, static_cast<size_t>(i), v);
                tm2 = tm1;
                tm1 = cur;
            }
        }
        return sum_row([&](int64_t i) {
            return mem.load(a, static_cast<size_t>(i));
        });
      }
    }
    UOV_UNREACHABLE("bad stencil variant");
}

} // namespace uov

#endif // UOV_KERNELS_STENCIL5_H
