/**
 * @file
 * Unit tests for the bump allocator (support/arena.h) and the flat
 * arena-backed containers (support/flat_map.h).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "support/arena.h"
#include "support/flat_map.h"

namespace uov {
namespace {

TEST(Arena, AllocationsAreDistinctAndAligned)
{
    Arena arena;
    void *a = arena.allocate(1, 1);
    void *b = arena.allocate(1, 1);
    EXPECT_NE(a, b);

    auto *p = arena.allocateArray<int64_t>(3);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % alignof(int64_t), 0u);
    p[0] = 1;
    p[1] = 2;
    p[2] = 3;
    EXPECT_EQ(p[0] + p[1] + p[2], 6);
}

TEST(Arena, ZeroByteAllocationsStayDistinct)
{
    Arena arena;
    void *a = arena.allocate(0, 1);
    void *b = arena.allocate(0, 1);
    EXPECT_NE(a, b);
}

TEST(Arena, GrowsAcrossChunks)
{
    Arena arena(64); // tiny first chunk forces growth
    std::vector<char *> blocks;
    for (int i = 0; i < 100; ++i) {
        auto *p = static_cast<char *>(arena.allocate(40, 8));
        std::memset(p, i, 40);
        blocks.push_back(p);
    }
    // Every block retains its contents: nothing was recycled.
    for (int i = 0; i < 100; ++i)
        for (int j = 0; j < 40; ++j)
            EXPECT_EQ(blocks[i][j], static_cast<char>(i));
    EXPECT_GE(arena.bytesUsed(), 100u * 40u);
    EXPECT_GE(arena.bytesReserved(), arena.bytesUsed());
}

TEST(Arena, ResetRetainsCapacityAndRewindsUsage)
{
    Arena arena(64);
    for (int i = 0; i < 50; ++i)
        arena.allocate(100, 8);
    size_t reserved = arena.bytesReserved();
    arena.reset();
    EXPECT_EQ(arena.bytesUsed(), 0u);
    EXPECT_EQ(arena.bytesReserved(), reserved);
    // Re-filling after reset must not grow the reservation.
    for (int i = 0; i < 50; ++i)
        arena.allocate(100, 8);
    EXPECT_EQ(arena.bytesReserved(), reserved);
}

TEST(Arena, ScopeRewindsNestedAllocations)
{
    Arena arena(64);
    arena.allocate(32, 8);
    size_t before = arena.bytesUsed();
    {
        Arena::Scope scope(arena);
        for (int i = 0; i < 20; ++i)
            arena.allocate(64, 8);
        EXPECT_GT(arena.bytesUsed(), before);
    }
    EXPECT_EQ(arena.bytesUsed(), before);
    // The rewound space is reusable.
    size_t reserved = arena.bytesReserved();
    for (int i = 0; i < 20; ++i)
        arena.allocate(64, 8);
    EXPECT_EQ(arena.bytesReserved(), reserved);
}

TEST(Arena, RejectsNonPowerOfTwoAlignment)
{
    Arena arena;
    EXPECT_THROW(arena.allocate(8, 3), UovError);
}

TEST(ArenaVector, PushGrowClearKeepContents)
{
    Arena arena;
    ArenaVector<int> v(arena, 2);
    for (int i = 0; i < 1000; ++i)
        v.push_back(i);
    ASSERT_EQ(v.size(), 1000u);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(v[i], i);
    EXPECT_EQ(v.back(), 999);
    v.pop_back();
    EXPECT_EQ(v.back(), 998);
    v.clear();
    EXPECT_TRUE(v.empty());
    EXPECT_GE(v.capacity(), 999u); // capacity survives clear
}

TEST(PackedCoordMap, FindMissThenInsertThenHit)
{
    Arena arena;
    PackedCoordMap<int> map(arena, 2);
    int64_t key[2] = {3, -7};
    EXPECT_EQ(map.find(key), map.kNone);

    bool inserted = false;
    uint32_t h = map.findOrInsert(key, &inserted);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(map.value(h), 0); // value-initialized
    map.value(h) = 42;

    inserted = true;
    EXPECT_EQ(map.findOrInsert(key, &inserted), h);
    EXPECT_FALSE(inserted);
    EXPECT_EQ(map.find(key), h);
    EXPECT_EQ(map.value(h), 42);
    EXPECT_EQ(map.key(h)[0], 3);
    EXPECT_EQ(map.key(h)[1], -7);
}

TEST(PackedCoordMap, HandlesAreDenseAndStableAcrossRehash)
{
    Arena arena;
    PackedCoordMap<uint32_t> map(arena, 3, 16); // small: force rehashes
    // Insert a grid big enough to rehash several times.
    for (int64_t x = 0; x < 12; ++x) {
        for (int64_t y = 0; y < 12; ++y) {
            for (int64_t z = 0; z < 4; ++z) {
                int64_t key[3] = {x, y, z};
                uint32_t h = map.findOrInsert(key);
                EXPECT_EQ(h, map.size() - 1); // dense insertion order
                map.value(h) = static_cast<uint32_t>(x * 100 + y * 10 + z);
            }
        }
    }
    ASSERT_EQ(map.size(), 12u * 12u * 4u);
    // Every key still resolves to its original handle and value.
    for (int64_t x = 0; x < 12; ++x) {
        for (int64_t y = 0; y < 12; ++y) {
            for (int64_t z = 0; z < 4; ++z) {
                int64_t key[3] = {x, y, z};
                uint32_t h = map.find(key);
                ASSERT_NE(h, map.kNone);
                EXPECT_EQ(map.value(h),
                          static_cast<uint32_t>(x * 100 + y * 10 + z));
            }
        }
    }
    // Absent keys still miss after all that rehashing.
    int64_t miss[3] = {99, 99, 99};
    EXPECT_EQ(map.find(miss), map.kNone);
}

TEST(PackedCoordMap, NegativeAndLargeCoordinates)
{
    Arena arena;
    PackedCoordMap<int64_t> map(arena, 2);
    std::vector<std::pair<int64_t, int64_t>> keys = {
        {INT64_MIN, INT64_MAX}, {-1, 1}, {0, 0},
        {INT64_MAX, INT64_MIN}, {1LL << 40, -(1LL << 40)}};
    for (size_t i = 0; i < keys.size(); ++i) {
        int64_t k[2] = {keys[i].first, keys[i].second};
        map.value(map.findOrInsert(k)) = static_cast<int64_t>(i);
    }
    for (size_t i = 0; i < keys.size(); ++i) {
        int64_t k[2] = {keys[i].first, keys[i].second};
        uint32_t h = map.find(k);
        ASSERT_NE(h, map.kNone);
        EXPECT_EQ(map.value(h), static_cast<int64_t>(i));
    }
}

} // namespace
} // namespace uov
