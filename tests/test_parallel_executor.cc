/**
 * @file
 * Parallel wavefront executor tests: UOV storage is race-free and
 * bit-exact across thread counts; illegal wavefronts and too-short
 * OVs are caught.
 */

#include <gtest/gtest.h>

#include "core/uov.h"
#include "schedule/parallel_executor.h"

namespace uov {
namespace {

TEST(ParallelExecutor, UovCorrectAcrossThreadCounts)
{
    struct Case
    {
        Stencil stencil;
        IVec h;
        IVec uov;
    };
    std::vector<Case> cases = {
        {stencils::simpleExample(), IVec{2, 1}, IVec{1, 1}},
        {stencils::fivePoint(), IVec{3, 1}, IVec{2, 0}},
        {stencils::fivePoint(), IVec{5, 1}, IVec{5, 0}},
    };
    for (const auto &c : cases) {
        ASSERT_TRUE(UovOracle(c.stencil).isUov(c.uov));
        StencilComputation comp(c.stencil);
        for (unsigned threads : {1u, 2u, 4u}) {
            ParallelExecutionResult r = runParallelWavefront(
                comp, IVec{0, 0}, IVec{15, 23}, c.h, c.uov, threads);
            EXPECT_TRUE(r.correct())
                << c.stencil.str() << " h=" << c.h.str()
                << " threads=" << threads << " mismatches="
                << r.mismatches;
            EXPECT_EQ(r.points, 16u * 24u);
            EXPECT_EQ(r.threads, threads);
            EXPECT_GT(r.waves, 0);
        }
    }
}

TEST(ParallelExecutor, MatchesSequentialChecksum)
{
    Stencil s = stencils::fivePoint();
    StencilComputation comp(s);
    ExecutionResult seq = runWithOvStorage(
        comp, WavefrontSchedule(IVec{3, 1}), IVec{0, 0}, IVec{11, 11},
        IVec{2, 0});
    ParallelExecutionResult par = runParallelWavefront(
        comp, IVec{0, 0}, IVec{11, 11}, IVec{3, 1}, IVec{2, 0}, 4);
    EXPECT_TRUE(seq.correct());
    EXPECT_TRUE(par.correct());
    EXPECT_EQ(seq.points, par.points);
}

TEST(ParallelExecutor, IllegalWavefrontRejected)
{
    StencilComputation comp(stencils::fivePoint());
    EXPECT_THROW(runParallelWavefront(comp, IVec{0, 0}, IVec{7, 7},
                                      IVec{1, 1}, IVec{2, 0}, 2),
                 UovUserError);
}

TEST(ParallelExecutor, ShortOvProducesMismatches)
{
    // (1,0) is not a UOV for the simple example; the wavefront order
    // clobbers it regardless of thread count.
    Stencil s = stencils::simpleExample();
    StencilComputation comp(s);
    ParallelExecutionResult r = runParallelWavefront(
        comp, IVec{0, 0}, IVec{11, 11}, IVec{2, 1}, IVec{1, 0}, 2);
    EXPECT_FALSE(r.correct());
}

TEST(ParallelExecutor, BlockedLayoutAlsoSafe)
{
    StencilComputation comp(stencils::fivePoint());
    ParallelExecutionResult r = runParallelWavefront(
        comp, IVec{0, 0}, IVec{10, 20}, IVec{3, 1}, IVec{2, 0}, 3,
        ModLayout::Blocked);
    EXPECT_TRUE(r.correct());
}

} // namespace
} // namespace uov
