/**
 * @file
 * Reproduces Figure 8: protein-string-matching overhead at in-cache
 * sizes.  The paper observes OV-mapped code has less overhead than the
 * natural version, and the storage-optimized version the least.
 */

#include "bench_common.h"

#include "kernels/psm.h"

using namespace uov;

namespace {

double
simCyclesPerIter(PsmVariant v, const PsmConfig &cfg,
                 const MachineConfig &machine, int reps)
{
    MemorySystem ms(machine);
    SimMem mem{&ms};
    for (int r = 0; r < reps; ++r) {
        VirtualArena arena;
        runPsm(v, cfg, mem, arena);
    }
    double iters = static_cast<double>(cfg.n0) *
                   static_cast<double>(cfg.n1) * reps;
    return ms.cycles() / iters;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseArgs(argc, argv);
    bench::banner("Figure 8 (protein string matching overhead, "
                  "in-cache sizes)");

    PsmConfig cfg;
    cfg.n0 = cfg.n1 = 24; // natural D+E arrays = 5 KiB: fits L1
    const int reps = opt.quick ? 4 : 16;

    const PsmVariant versions[] = {
        PsmVariant::StorageOptimized,
        PsmVariant::Natural,
        PsmVariant::Ov,
    };

    Table t("Figure 8: cycles per iteration, n0=n1=" +
            std::to_string(cfg.n0) + " (fits L1)");
    std::vector<std::string> header = {"version"};
    for (const auto &m : bench::paperMachines())
        header.push_back(m.name);
    t.header(header);

    for (PsmVariant v : versions) {
        auto row = t.addRow();
        row.cell(psmVariantName(v));
        for (const auto &machine : bench::paperMachines())
            row.cell(simCyclesPerIter(v, cfg, machine, reps), 2);
    }
    bench::emit(t, opt);

    // Ordering check per machine: optimized <= ov <= natural.
    bool ordered = true;
    for (const auto &machine : bench::paperMachines()) {
        double so = simCyclesPerIter(PsmVariant::StorageOptimized, cfg,
                                     machine, reps);
        double ov = simCyclesPerIter(PsmVariant::Ov, cfg, machine,
                                     reps);
        double nat = simCyclesPerIter(PsmVariant::Natural, cfg, machine,
                                      reps);
        if (!(so <= ov * 1.02 && ov <= nat * 1.02))
            ordered = false;
    }
    std::cout << "paper's ordering (storage-optimized <= OV-mapped <= "
                 "natural): "
              << (ordered ? "reproduced" : "NOT reproduced") << "\n";
    return 0;
}
