/**
 * @file
 * Unit tests for the service's stencil canonicalizer and cache key:
 * the removal theorem's worked examples (including the counterexample
 * that motivates condition (b)), idempotence, key equality across
 * presentations, and fuzz-generated evidence that canonicalization
 * preserves the UOV set pointwise and the search optimum exactly.
 */

#include <gtest/gtest.h>

#include "core/search.h"
#include "core/uov.h"
#include "fuzz/oracles.h"
#include "service/canonical.h"
#include "support/rng.h"

namespace uov {
namespace service {
namespace {

std::vector<IVec>
deps(std::initializer_list<IVec> vs)
{
    return std::vector<IVec>(vs);
}

TEST(Canonical, RemovesImpliedCollinearDependence)
{
    // (2,0) is implied: it lies in cone{(1,0),(3,0)} and
    // (3,0) - (2,0) = (1,0) is in the cone too (condition (b)).
    Stencil canon =
        canonicalizeStencil(Stencil(deps({{1, 0}, {2, 0}, {3, 0}})));
    EXPECT_EQ(canon.deps(), deps({{1, 0}, {3, 0}}));
}

TEST(Canonical, KeepsSemigroupGapDependence)
{
    // (5,0) = (2,0) + (3,0) satisfies condition (a) but not (b):
    // dropping it would admit w = (6,0) even though (6,0) - (5,0) =
    // (1,0) is outside the numerical semigroup <2,3>.  The
    // canonicalizer must keep all three.
    Stencil s(deps({{2, 0}, {3, 0}, {5, 0}}));
    EXPECT_EQ(canonicalizeStencil(s).deps(), s.deps());
}

TEST(Canonical, IsIdempotent)
{
    for (auto ds : {deps({{1, 0}, {2, 0}, {3, 0}}),
                    deps({{2, 0}, {3, 0}, {5, 0}}),
                    deps({{1, -1}, {1, 0}, {1, 1}, {2, 0}})}) {
        Stencil once = canonicalizeStencil(Stencil(ds));
        Stencil twice = canonicalizeStencil(once);
        EXPECT_EQ(once.deps(), twice.deps());
    }
}

TEST(Canonical, ScaledPadPresentationsShareAKey)
{
    // V + {2v, 3v} reduces to V + {3v}: 2v is removable once 3v is
    // present (3v - 2v = v), while 3v itself generally is not.
    std::vector<IVec> base = deps({{1, 0}, {1, 1}});
    std::vector<IVec> with3 = base;
    with3.push_back(IVec{3, 3});
    std::vector<IVec> with23 = with3;
    with23.push_back(IVec{2, 2});

    Stencil a = canonicalizeStencil(Stencil(with23));
    Stencil b = canonicalizeStencil(Stencil(with3));
    EXPECT_EQ(a.deps(), b.deps());

    CanonicalKey ka = makeKey(a, SearchObjective::ShortestVector,
                              std::nullopt, std::nullopt);
    CanonicalKey kb = makeKey(b, SearchObjective::ShortestVector,
                              std::nullopt, std::nullopt);
    EXPECT_TRUE(ka == kb);
    EXPECT_EQ(ka.hash(), kb.hash());
}

TEST(Canonical, PresentationOrderAndDuplicatesAreFree)
{
    // Stencil construction sorts and dedups, so shuffled and
    // duplicated presentations build identical keys.
    Stencil a(deps({{1, 1}, {0, 1}, {1, 0}}));
    Stencil b(deps({{1, 0}, {1, 1}, {0, 1}, {1, 1}}));
    EXPECT_EQ(a.deps(), b.deps());
    CanonicalKey ka =
        makeKey(canonicalizeStencil(a), SearchObjective::ShortestVector,
                std::nullopt, std::nullopt);
    CanonicalKey kb =
        makeKey(canonicalizeStencil(b), SearchObjective::ShortestVector,
                std::nullopt, std::nullopt);
    EXPECT_TRUE(ka == kb);
}

TEST(Canonical, KeySeparatesObjectiveAndBounds)
{
    Stencil s = canonicalizeStencil(Stencil(deps({{1, 0}, {0, 1}})));
    CanonicalKey shortest = makeKey(s, SearchObjective::ShortestVector,
                                    std::nullopt, std::nullopt);
    CanonicalKey storage = makeKey(s, SearchObjective::BoundedStorage,
                                   IVec{0, 0}, IVec{7, 7});
    CanonicalKey storage2 = makeKey(s, SearchObjective::BoundedStorage,
                                    IVec{0, 0}, IVec{7, 8});
    EXPECT_FALSE(shortest == storage);
    EXPECT_FALSE(storage == storage2);
    EXPECT_TRUE(storage ==
                makeKey(s, SearchObjective::BoundedStorage, IVec{0, 0},
                        IVec{7, 7}));
}

// The theorem in canonical.h claims the UOV set is preserved
// *pointwise*.  Probe it on fuzz-generated stencils: membership of
// every generated candidate must agree before and after.
TEST(Canonical, FuzzMembershipIsPreservedPointwise)
{
    SplitMix64 seeds(20260805);
    size_t checked = 0;
    for (int i = 0; i < 120; ++i) {
        fuzz::FuzzCase c = fuzz::makeCase(seeds.next());
        if (!c.valid())
            continue;
        Stencil s = c.stencil();
        Stencil canon = canonicalizeStencil(s);
        UovOracle orig(s);
        UovOracle reduced(canon);
        for (const IVec &w : c.candidates) {
            ++checked;
            EXPECT_EQ(orig.isUov(w), reduced.isUov(w))
                << "stencil " << s.str() << " canon " << canon.str()
                << " candidate " << w.str();
        }
        EXPECT_TRUE(reduced.isUov(s.initialUov()))
            << "initial UOV of " << s.str()
            << " lost after canonicalization to " << canon.str();
    }
    EXPECT_GT(checked, 100u);
}

// Key-equal queries must have the same optimum: the branch-and-bound
// search run to completion on the original and the canonical stencil
// finds the same best objective value.
TEST(Canonical, FuzzShortestOptimumUnchanged)
{
    SplitMix64 seeds(77);
    size_t compared = 0;
    for (int i = 0; i < 60 && compared < 25; ++i) {
        fuzz::FuzzCase c = fuzz::makeCase(seeds.next());
        if (!c.valid())
            continue;
        Stencil s = c.stencil();
        Stencil canon = canonicalizeStencil(s);
        SearchOptions opts;
        opts.budget.max_nodes = 200'000;
        SearchResult orig =
            BranchBoundSearch(s, SearchObjective::ShortestVector, opts)
                .run();
        SearchResult reduced =
            BranchBoundSearch(canon, SearchObjective::ShortestVector,
                              opts)
                .run();
        if (orig.degraded() || reduced.degraded())
            continue; // degraded runs may legitimately differ
        ++compared;
        EXPECT_EQ(orig.best_objective, reduced.best_objective)
            << "stencil " << s.str() << " canon " << canon.str();
    }
    EXPECT_GE(compared, 10u);
}

} // namespace
} // namespace service
} // namespace uov
