/**
 * @file
 * Batch executor: the newline-delimited query protocol and the fan-out
 * of parsed requests onto a ThreadPool.
 *
 * Protocol (one request per line; '#' comments and blank lines are
 * skipped and consume no request index; sub-syntax -- 'lo..hi' ranges
 * and bracketed integer tuples -- matches driver/nest_parser):
 *
 *     # best UOV by squared length
 *     query shortest deps [1,0] [0,1] [1,1]
 *     # best UOV by storage cells over the bounded ISG
 *     query storage bounds 0..17 0..99 deps [1,-2] [1,-1] [1,0] [1,1] [1,2]
 *     # anytime: degrade to the best answer found within 5 ms
 *     query shortest deadline_ms 5 deps [1,-1] [1,0] [1,1]
 *     # JIT-compile the mapped kernel and time it vs the interpreter
 *     query native bounds 0..17 0..99 deps [1,-1] [1,0] [1,1]
 *     # jointly tune (UOV, schedule, factors) over the bounds box
 *     query tune bounds 0..17 0..99 deps [1,-1] [1,0] [1,1]
 *
 * Responses are written strictly in request order, one line each:
 *
 *     answer <idx> best=(1, 1) value=2 initial=4 canon=3 cert=...
 *     error <idx> <message>
 *
 * so output is byte-deterministic for a given input at every thread
 * count (deadline_ms 0 and unbounded requests included; a positive
 * wall-clock deadline only promises a certified answer no worse than
 * ov_o).  A malformed or throwing request yields an error response
 * and the batch keeps going; the error text is part of the
 * deterministic contract.
 */

#ifndef UOV_SERVICE_EXECUTOR_H
#define UOV_SERVICE_EXECUTOR_H

#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "service/service.h"
#include "support/deadline.h"
#include "support/thread_pool.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/slo.h"

namespace uov {
namespace service {

/** One parsed protocol line (or its parse failure). */
struct Request
{
    size_t index = 0;       ///< 1-based request number
    std::string error;      ///< nonempty: parse failed, text to echo
    std::vector<IVec> deps; ///< as presented (not yet canonical)
    SearchObjective objective = SearchObjective::ShortestVector;
    bool native = false;    ///< 'query native': JIT timing request
    bool tune = false;      ///< 'query tune': joint autotune request
    std::optional<IVec> isg_lo;
    std::optional<IVec> isg_hi;
    int64_t deadline_ms = -1; ///< wall-clock budget; -1 = unbounded
};

/**
 * Parse every request line in @p in.  Never throws: malformed lines
 * become Requests carrying an error message.  Lines without an
 * explicit deadline_ms clause inherit @p default_deadline_ms.
 */
std::vector<Request> parseRequests(std::istream &in,
                                   int64_t default_deadline_ms = -1);

/** Parse one request line (no comment/blank handling). */
Request parseRequestLine(const std::string &line, size_t index,
                         int64_t default_deadline_ms = -1);

/**
 * Tracks in-flight requests and logs any still running past 2x their
 * deadline -- a stuck search is diagnosed while it is stuck, not
 * after.  A background thread polls every @p poll_ms; 0 disables the
 * thread so tests can drive flagOverdue() deterministically.
 */
class Watchdog
{
  public:
    explicit Watchdog(int64_t poll_ms = 25,
                      Counter *overdue = nullptr);
    ~Watchdog();

    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

    /** Register request @p index as running now. */
    void start(size_t index, int64_t deadline_ms);

    /** Unregister a finished request. */
    void finish(size_t index);

    /**
     * Scan for requests past 2x deadline; each is warned about (and
     * counted) once.  Returns how many were newly flagged.
     */
    size_t flagOverdue();

  private:
    void loop(int64_t poll_ms);

    struct Entry
    {
        Deadline::Clock::time_point started;
        int64_t deadline_ms = -1;
        bool flagged = false;
    };

    std::mutex _mutex;
    std::condition_variable _cv;
    std::unordered_map<size_t, Entry> _entries;
    Counter *_overdue;
    bool _stop = false;
    std::thread _thread;
};

/**
 * Answer one request through the service; returns the full response
 * line ("answer ..." or "error ...").  Input-dependent failures
 * (invalid stencil, bad bounds) become error responses; internal
 * errors propagate.
 */
std::string runRequest(QueryService &service, const Request &request);

/**
 * Answer a 'query native' request: realize the stencil as a
 * single-statement nest over the bounds box, plan its storage
 * mapping, JIT-compile the lexicographic and register-tiled OV-mapped
 * kernels with the host C compiler, verify both bit-exactly against
 * the interpreter, and report interpreter-vs-native timings:
 *
 *     answer <idx> native cells=<n> interp_ns=<t> lex_ns=<t>
 *         rtile_ns=<t> speedup_lex=<x> speedup_rtile=<x> verified=ok
 *
 * Timing figures are wall-clock and NOT covered by the
 * byte-determinism contract (which is scoped to shortest/storage);
 * everything before the first _ns field is deterministic.  A missing
 * host compiler or an unplannable stencil becomes an "error <idx>"
 * response, like any other input-dependent failure.
 */
std::string runNativeRequest(const Request &request);

/**
 * Answer a 'query tune' request: realize the stencil over the bounds
 * box and run the joint (UOV, schedule, tile/unroll) tuner under the
 * request deadline, scoring with the deterministic cache/TLB
 * simulator:
 *
 *     answer <idx> tune uov=(2, 0) storage=ov schedule=unroll(4)
 *         cells=<n> sim_cycles=<c> evaluated=<k>/<total>
 *         [degraded=<reason>] ...
 *
 * Everything up to here is byte-deterministic (deadline_ms in
 * {-1, 0}; positive deadlines truncate the evaluated prefix).  When a
 * host compiler is available and the deadline has not expired, the
 * top simulator-ranked lowerable candidates plus the default
 * lexicographic kernel are then JIT-measured (each verified
 * bit-exactly against the interpreter) and the line continues in the
 * _ns-exempt zone:
 *
 *     ... lex_ns=<t> best_ns=<t> speedup_vs_lex=<x>
 *         best_measured={...} verified=ok
 *
 * With no compiler the tail is " measure=unavailable"; with an
 * expired deadline, " measure=deadline".
 */
std::string runTuneRequest(const Request &request);

/** Admission-control configuration. */
struct AdmissionOptions
{
    /**
     * Engage shedding when service.queue_depth reaches this many
     * in-flight requests; 0 disables admission control entirely.
     */
    int64_t high_water = 0;
    /**
     * Disengage once depth falls back to this level; -1 means
     * high_water / 2.  The gap is the hysteresis band -- without it a
     * queue hovering at the high-water mark would flap between
     * admitting and shedding on every request.
     */
    int64_t low_water = -1;
};

/**
 * Overload policy for the batch executor: past the high-water mark,
 * new solve requests are answered *inline* with the certified ov_o
 * anytime floor (a zero-node-budget solveDirect, degraded_reason
 * "shed") instead of being queued -- the caller still gets a legal,
 * certified UOV, just not an optimized one, and the queue cannot grow
 * without bound.  Native/tune requests and parse errors bypass
 * admission (they never enter the solver queue's cost model).
 *
 * Metrics: counters service.shed.admitted / .responses (shed answers
 * served) / .engaged / .recovered (hysteresis transitions) and gauge
 * service.shed.active.  Thread-safe; one controller may serve many
 * batches.
 *
 * Shedding makes *which* requests degrade timing-dependent, so a batch
 * run with a controller attached is exempt from the byte-determinism
 * contract -- every individual line is still either a certified answer
 * or a deterministic error line.
 */
class AdmissionController
{
  public:
    AdmissionController(AdmissionOptions options,
                        MetricsRegistry &metrics);

    /**
     * Decide one request's fate given the current queue depth.
     * True = admit (enqueue normally); false = shed.
     */
    bool admit(int64_t queue_depth);

    /** Currently past the high-water mark (test introspection). */
    bool shedding() const;

    const AdmissionOptions &options() const { return _options; }

  private:
    AdmissionOptions _options;
    mutable std::mutex _mutex;
    bool _shedding = false;
    Counter &_admitted;
    Counter &_responses;
    Counter &_engaged;
    Counter &_recovered;
    Gauge &_active;
};

/**
 * Build the inline shed response for @p request: the certified ov_o
 * seed (zero-node search budget) marked degraded=shed.  Exposed so
 * tests and the durability oracle can assert shed-answer legality.
 */
std::string shedRequest(const Request &request);

/**
 * The batch executor's hookup to the live telemetry plane.  When a
 * plane is attached to runBatch, every request (inline shed and
 * admission-error responses included) runs inside a fresh TraceScope:
 * one 64-bit trace id links the structured log lines, the
 * flight-recorder digest, the SLO sample, and the "service.request"
 * Perfetto span for that request.  All pointers optional; a
 * default-constructed plane still mints trace ids (log/span linkage
 * without a recorder).
 *
 * Determinism: recording is observation-only.  Response bytes are
 * unchanged unless @p trace_ids opts in, which appends the
 * " trace_id=<16 hex>" token -- timing-unique, hence exempt from the
 * byte-determinism contract exactly like native/tune _ns fields.
 */
struct TelemetryPlane
{
    telemetry::FlightRecorder *flight = nullptr;
    telemetry::SloTracker *slo = nullptr;
    bool trace_ids = false;    ///< append " trace_id=..." to responses
    bool log_outcomes = false; ///< Info log per non-optimal outcome
};

/**
 * Classify one response line the way the executor's metrics do:
 * "error " prefix -> Error; " degraded=shed" -> Shed; any other
 * " degraded=" -> Degraded; else Optimal.  Exposed for tests and the
 * flight recorder.
 */
telemetry::FlightDigest::Outcome
classifyResponse(const std::string &response);

/**
 * Answer a batch on @p pool (requests fan out; identical in-flight
 * queries coalesce inside the service).  Responses are returned in
 * request order.  The pool's queue depth is tracked in the service's
 * "service.queue_depth" gauge.
 *
 * Error isolation: every exception a request raises -- bad input, an
 * armed fail point, even an internal error -- becomes that request's
 * "error <idx> ..." line; the batch always completes.  Each response
 * is classified into exactly one of the "service.optimal",
 * "service.degraded", or "service.request_errors" counters, so the
 * three always sum to the batch size.
 *
 * @p admission, when non-null, applies overload shedding to solve
 * requests (see AdmissionController); the fail-point site "admission"
 * fires per admission decision.  @p plane, when non-null, attaches
 * the live telemetry plane (see TelemetryPlane).
 */
std::vector<std::string> runBatch(QueryService &service,
                                  const std::vector<Request> &requests,
                                  ThreadPool &pool,
                                  AdmissionController *admission = nullptr,
                                  const TelemetryPlane *plane = nullptr);

/** Single-threaded reference executor (no pool, no service state). */
std::vector<std::string>
runBatchDirect(const std::vector<Request> &requests,
               uint64_t max_visits = 10'000'000);

} // namespace service
} // namespace uov

#endif // UOV_SERVICE_EXECUTOR_H
