/**
 * @file
 * Unit tests for Polyhedron: vertex enumeration, containment,
 * projections, bounding boxes, integer-point scans.  Includes the
 * paper's Figure 3 parallelogram.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "geometry/polyhedron.h"
#include "support/error.h"

namespace uov {
namespace {

bool
hasVertex(const Polyhedron &p, std::initializer_list<int64_t> coords)
{
    RationalVec want;
    for (int64_t c : coords)
        want.push_back(Rational(c));
    const auto &vs = p.vertices();
    return std::find(vs.begin(), vs.end(), want) != vs.end();
}

TEST(Polyhedron, BoxVerticesAndContainment)
{
    Polyhedron box = Polyhedron::box(IVec{0, 0}, IVec{3, 2});
    EXPECT_EQ(box.vertices().size(), 4u);
    EXPECT_TRUE(hasVertex(box, {0, 0}));
    EXPECT_TRUE(hasVertex(box, {3, 2}));
    EXPECT_TRUE(hasVertex(box, {0, 2}));
    EXPECT_TRUE(hasVertex(box, {3, 0}));

    EXPECT_TRUE(box.contains(IVec{1, 1}));
    EXPECT_TRUE(box.contains(IVec{3, 2}));
    EXPECT_FALSE(box.contains(IVec{4, 0}));
    EXPECT_FALSE(box.contains(IVec{-1, 0}));
}

TEST(Polyhedron, EmptyBoxRejected)
{
    EXPECT_THROW(Polyhedron::box(IVec{2, 0}, IVec{1, 5}), UovUserError);
}

TEST(Polyhedron, BoxIn3D)
{
    Polyhedron box = Polyhedron::box(IVec{0, 0, 0}, IVec{1, 2, 3});
    EXPECT_EQ(box.vertices().size(), 8u);
    EXPECT_EQ(box.countIntegerPoints(), 2 * 3 * 4);
    EXPECT_EQ(box.minProjectionCount(), 2); // shortest side
}

TEST(Polyhedron, FromVertices2DBuildsHull)
{
    // A triangle plus an interior point that must be dropped.
    Polyhedron tri = Polyhedron::fromVertices2D(
        {IVec{0, 0}, IVec{4, 0}, IVec{0, 4}, IVec{1, 1}});
    EXPECT_EQ(tri.vertices().size(), 3u);
    EXPECT_TRUE(tri.contains(IVec{1, 1}));
    EXPECT_TRUE(tri.contains(IVec{0, 4}));
    EXPECT_FALSE(tri.contains(IVec{3, 3}));
    // Integer points of x,y >= 0, x+y <= 4: 15.
    EXPECT_EQ(tri.countIntegerPoints(), 15);
}

TEST(Polyhedron, DegenerateHullRejected)
{
    EXPECT_THROW(
        Polyhedron::fromVertices2D({IVec{0, 0}, IVec{1, 1}, IVec{2, 2}}),
        UovUserError);
}

TEST(Polyhedron, ProjectionCounts)
{
    Polyhedron box = Polyhedron::box(IVec{0, 0}, IVec{9, 4});
    EXPECT_EQ(box.projectionCount(IVec{1, 0}), 10);
    EXPECT_EQ(box.projectionCount(IVec{0, 1}), 5);
    // Along (1,1): values 0..13.
    EXPECT_EQ(box.projectionCount(IVec{1, 1}), 14);
    // Figure 6: rectangle (0,0)-(n,m), mv=(-1,1): n+m+1 values.
    int64_t n = 9, m = 4;
    EXPECT_EQ(box.projectionCount(IVec{-1, 1}), n + m + 1);
}

TEST(Polyhedron, Figure3Parallelogram)
{
    // The ISG of Figure 3: corners (1,1), (1,6), (10,4), (10,9).
    Polyhedron isg = Polyhedron::fromVertices2D(
        {IVec{1, 1}, IVec{1, 6}, IVec{10, 4}, IVec{10, 9}});
    EXPECT_EQ(isg.vertices().size(), 4u);

    // ov1 = (3,1): mv = (-1,3); values at corners: 2, 17, 2, 17.
    EXPECT_EQ(isg.projectionCount(IVec{-1, 3}), 16);
    // ov2 = (3,0): primitive mv = (0,1); values 1..9.
    EXPECT_EQ(isg.projectionCount(IVec{0, 1}), 9);
}

TEST(Polyhedron, MinProjection2DIsEdgeNormalMinimum)
{
    Polyhedron box = Polyhedron::box(IVec{0, 0}, IVec{9, 4});
    EXPECT_EQ(box.minProjectionCount(), 5);
}

TEST(Polyhedron, BoundingBox)
{
    Polyhedron tri = Polyhedron::fromVertices2D(
        {IVec{1, 2}, IVec{5, 3}, IVec{2, 7}});
    IVec lo, hi;
    tri.boundingBox(lo, hi);
    EXPECT_EQ(lo, (IVec{1, 2}));
    EXPECT_EQ(hi, (IVec{5, 7}));
}

TEST(Polyhedron, IntegerPointsMatchManualCount)
{
    Polyhedron box = Polyhedron::box(IVec{-1, -1}, IVec{1, 1});
    auto pts = box.integerPoints();
    EXPECT_EQ(pts.size(), 9u);
}

TEST(Polyhedron, ScanLimitEnforced)
{
    Polyhedron big = Polyhedron::box(IVec{0, 0}, IVec{100000, 100000});
    EXPECT_THROW(big.integerPoints(1000), UovUserError);
}

TEST(Polyhedron, UnboundedRejected)
{
    // Single half-plane: unbounded, no vertices.
    IMatrix a({{1, 0}});
    EXPECT_THROW(
        Polyhedron::fromConstraints(a, IVec{5}).vertices(),
        UovUserError);
}

TEST(Polyhedron, MaxMinDotRational)
{
    // Triangle with a rational chebyshev-ish vertex: constraints
    // x >= 0, y >= 0, 2x + 3y <= 7 has vertex (0, 7/3).
    IMatrix a({{-1, 0}, {0, -1}, {2, 3}});
    Polyhedron p = Polyhedron::fromConstraints(a, IVec{0, 0, 7});
    EXPECT_EQ(p.maxDot(IVec{0, 1}), Rational(7, 3));
    EXPECT_EQ(p.minDot(IVec{0, 1}), Rational(0));
    EXPECT_EQ(p.projectionCount(IVec{0, 1}), 3); // y in {0, 1, 2}
}

} // namespace
} // namespace uov
