/**
 * @file
 * Flight recorder: a lock-light ring buffer of the last K request
 * digests, answering "why was request X degraded/shed?" *after* the
 * fact without a trace session armed in advance.
 *
 * Every mapped answer is a pure function of its canonical key (the
 * paper's schedule-independence result), so a request's provenance --
 * cache hit, store hit, fresh search, shed floor -- plus its outcome
 * and wall time is a tiny fixed-size record that is cheap to keep and
 * links (via the trace id) to the structured log and any exported
 * Perfetto span for the same request.
 *
 * Concurrency: record() claims a slot with one fetch_add and
 * publishes it under a per-slot seqlock (odd = being written).  A
 * concurrent snapshot() copies each slot and keeps it only when the
 * sequence word was even and unchanged across the copy -- readers
 * never block writers, writers never wait, and a digest is either
 * observed whole or not at all.  Digests are trivially copyable by
 * construction (fixed char cause field, no heap), which is what makes
 * the seqlock copy race-free in practice and TSan-clean via the
 * atomic fences around it.
 */

#ifndef UOV_TELEMETRY_FLIGHT_RECORDER_H
#define UOV_TELEMETRY_FLIGHT_RECORDER_H

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

namespace uov {
namespace telemetry {

/** One request's post-hoc digest (fixed-size, trivially copyable). */
struct FlightDigest
{
    enum class Verb : uint8_t { Shortest, Storage, Native, Tune, Unknown };
    enum class Outcome : uint8_t { Optimal, Degraded, Shed, Error };

    static constexpr size_t kCauseBytes = 24;

    uint64_t seq = 0;      ///< recorder-assigned, monotone from 1
    uint64_t trace_id = 0; ///< links log / span / response token
    uint64_t key_hash = 0; ///< canonical-key hash (0 = never keyed)
    uint64_t request_index = 0;
    uint64_t nodes = 0;    ///< branch-and-bound nodes expanded
    uint64_t wall_us = 0;
    Verb verb = Verb::Unknown;
    Outcome outcome = Outcome::Optimal;
    bool cache_hit = false;
    bool store_hit = false;
    bool coalesced = false;
    char cause[kCauseBytes] = {}; ///< degraded reason / error head

    /** Truncating NUL-terminated copy into the cause field. */
    void setCause(const std::string &text);
    std::string causeStr() const;

    static const char *verbName(Verb v);
    static const char *outcomeName(Outcome o);
};

class FlightRecorder
{
  public:
    /** @p capacity is rounded up to at least 8 digests. */
    explicit FlightRecorder(size_t capacity = 256);

    /** Record one digest (seq is assigned here). Lock-free. */
    void record(FlightDigest digest);

    /**
     * Consistent copies of the retained digests, oldest first.
     * Slots mid-write during the scan are skipped (they reappear in
     * the next snapshot); the result is therefore always a set of
     * whole digests in seq order.
     */
    std::vector<FlightDigest> snapshot() const;

    /** Total digests ever recorded (monotone). */
    uint64_t recorded() const;

    size_t capacity() const { return _capacity; }

    /** The /flight JSON document: capacity, recorded, digests[]. */
    std::string json() const;

  private:
    /** Digest payload as whole words, copied through atomics so the
     *  seqlock protocol stays free of data races (TSan-clean). */
    static constexpr size_t kDigestWords =
        (sizeof(FlightDigest) + 7) / 8;

    struct Slot
    {
        std::atomic<uint64_t> state{0}; ///< odd = write in progress
        std::atomic<uint64_t> words[kDigestWords] = {};
    };

    size_t _capacity;
    std::unique_ptr<Slot[]> _slots;
    std::atomic<uint64_t> _next{0};
};

} // namespace telemetry
} // namespace uov

#endif // UOV_TELEMETRY_FLIGHT_RECORDER_H
