#include "kernels/psm.h"

#include "support/rng.h"

namespace uov {

const std::vector<PsmVariant> &
allPsmVariants()
{
    static const std::vector<PsmVariant> all = {
        PsmVariant::StorageOptimized, PsmVariant::Natural,
        PsmVariant::NaturalTiled,     PsmVariant::Ov,
        PsmVariant::OvTiled,
    };
    return all;
}

const char *
psmVariantName(PsmVariant v)
{
    switch (v) {
      case PsmVariant::Natural:          return "Natural";
      case PsmVariant::NaturalTiled:     return "Natural Tiled";
      case PsmVariant::Ov:               return "OV-Mapped";
      case PsmVariant::OvTiled:          return "OV-Mapped Tiled";
      case PsmVariant::StorageOptimized: return "Storage Optimized";
    }
    return "?";
}

bool
psmVariantTiled(PsmVariant v)
{
    return v == PsmVariant::NaturalTiled || v == PsmVariant::OvTiled;
}

int64_t
psmTemporaryStorage(PsmVariant v, int64_t n0, int64_t n1)
{
    switch (v) {
      case PsmVariant::Natural:
      case PsmVariant::NaturalTiled:
        return n0 * n1 + n0 + n1; // Table 2
      case PsmVariant::Ov:
      case PsmVariant::OvTiled:
        return 2 * n0 + 2 * n1 + 1; // Table 2
      case PsmVariant::StorageOptimized:
        return 2 * n0 + 3; // Table 2 (from [1])
    }
    return 0;
}

std::vector<uint8_t>
psmString(int64_t length, uint64_t seed)
{
    // Synthetic amino-acid sequence: the paper's protein inputs are
    // unavailable, so we draw uniformly over the 23-letter alphabet
    // from a fixed seed (see DESIGN.md, substitutions).
    SplitMix64 rng(seed);
    std::vector<uint8_t> s(static_cast<size_t>(length));
    for (auto &c : s)
        c = static_cast<uint8_t>(rng.nextBelow(kPsmAlphabet));
    return s;
}

const std::vector<int32_t> &
psmWeightTable()
{
    // BLOSUM-like: symmetric, positive diagonal (matches score well),
    // mildly negative off-diagonal, deterministic.
    static const std::vector<int32_t> table = [] {
        std::vector<int32_t> t(kPsmAlphabet * kPsmAlphabet);
        SplitMix64 rng(0xB10500);
        for (int r = 0; r < kPsmAlphabet; ++r) {
            for (int c = r; c < kPsmAlphabet; ++c) {
                int32_t w;
                if (r == c) {
                    w = 4 + static_cast<int32_t>(rng.nextBelow(8)); // 4..11
                } else {
                    w = -4 + static_cast<int32_t>(rng.nextBelow(8)); // -4..3
                }
                t[r * kPsmAlphabet + c] = w;
                t[c * kPsmAlphabet + r] = w;
            }
        }
        return t;
    }();
    return table;
}

} // namespace uov
