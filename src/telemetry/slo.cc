#include "telemetry/slo.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <sstream>

namespace uov {
namespace telemetry {

namespace {

int64_t
steadySeconds()
{
    return std::chrono::duration_cast<std::chrono::seconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

SloTracker::SloTracker(SloOptions options, NowFn now)
    : _options(options), _now(now ? std::move(now) : steadySeconds)
{
    _options.window_s = std::clamp<int64_t>(_options.window_s, 1, 600);
    // One spare slot beyond the window so the second currently being
    // written never evicts the oldest second still being reported.
    _slots.resize(static_cast<size_t>(_options.window_s) + 1);
}

SloTracker::Slot &
SloTracker::slotFor(int64_t sec)
{
    Slot &slot = _slots[static_cast<size_t>(sec) % _slots.size()];
    if (slot.epoch != sec) {
        slot = Slot{};
        slot.epoch = sec;
    }
    return slot;
}

void
SloTracker::record(FlightDigest::Outcome outcome, uint64_t latency_us)
{
    size_t b = std::bit_width(latency_us);
    if (b >= Histogram::kBuckets)
        b = Histogram::kBuckets - 1;
    std::lock_guard<std::mutex> lock(_mutex);
    Slot &slot = slotFor(std::max<int64_t>(_now(), 0));
    slot.total += 1;
    slot.buckets[b] += 1;
    switch (outcome) {
      case FlightDigest::Outcome::Degraded:
        slot.degraded += 1;
        break;
      case FlightDigest::Outcome::Shed:
        slot.shed += 1;
        break;
      case FlightDigest::Outcome::Error:
        slot.errors += 1;
        break;
      case FlightDigest::Outcome::Optimal:
        break;
    }
}

SloTracker::Report
SloTracker::report() const
{
    Report r;
    r.window_s = _options.window_s;
    uint64_t merged[Histogram::kBuckets] = {};
    {
        std::lock_guard<std::mutex> lock(_mutex);
        int64_t now = std::max<int64_t>(_now(), 0);
        int64_t oldest = now - _options.window_s + 1;
        for (const Slot &slot : _slots) {
            if (slot.epoch < oldest || slot.epoch > now)
                continue;
            r.total += slot.total;
            r.degraded += slot.degraded;
            r.shed += slot.shed;
            r.errors += slot.errors;
            for (size_t b = 0; b < Histogram::kBuckets; ++b)
                merged[b] += slot.buckets[b];
        }
    }
    r.p50_us = bucketPercentile(merged, Histogram::kBuckets, r.total,
                                0.5);
    r.p99_us = bucketPercentile(merged, Histogram::kBuckets, r.total,
                                0.99);
    r.p999_us = bucketPercentile(merged, Histogram::kBuckets, r.total,
                                 0.999);

    auto violate = [&](const char *what) {
        r.ok = false;
        r.violations.push_back(what);
    };
    if (_options.p50_us > 0 && r.p50_us > _options.p50_us)
        violate("p50_us");
    if (_options.p99_us > 0 && r.p99_us > _options.p99_us)
        violate("p99_us");
    if (_options.p999_us > 0 && r.p999_us > _options.p999_us)
        violate("p999_us");
    if (r.total > 0) {
        double total = static_cast<double>(r.total);
        if (_options.max_degraded >= 0 &&
            static_cast<double>(r.degraded) / total >
                _options.max_degraded)
            violate("max_degraded");
        if (_options.max_shed >= 0 &&
            static_cast<double>(r.shed) / total > _options.max_shed)
            violate("max_shed");
        if (_options.max_error >= 0 &&
            static_cast<double>(r.errors) / total > _options.max_error)
            violate("max_error");
    }
    return r;
}

std::string
SloTracker::json() const
{
    Report r = report();
    std::ostringstream oss;
    oss << "{\"window_s\":" << r.window_s << ",\"total\":" << r.total
        << ",\"degraded\":" << r.degraded << ",\"shed\":" << r.shed
        << ",\"errors\":" << r.errors << ",\"p50_us\":" << r.p50_us
        << ",\"p99_us\":" << r.p99_us << ",\"p999_us\":" << r.p999_us
        << ",\"targets\":{\"p50_us\":" << _options.p50_us
        << ",\"p99_us\":" << _options.p99_us
        << ",\"p999_us\":" << _options.p999_us
        << ",\"max_degraded\":" << _options.max_degraded
        << ",\"max_shed\":" << _options.max_shed
        << ",\"max_error\":" << _options.max_error
        << "},\"ok\":" << (r.ok ? "true" : "false")
        << ",\"violations\":[";
    for (size_t i = 0; i < r.violations.size(); ++i) {
        if (i)
            oss << ",";
        oss << "\"" << r.violations[i] << "\"";
    }
    oss << "]}";
    return oss.str();
}

} // namespace telemetry
} // namespace uov
