#include "core/storage_count.h"

#include <cmath>
#include <unordered_set>

#include "geometry/lattice.h"
#include "support/checked.h"
#include "support/error.h"

namespace uov {

IVec
mappingVector2D(const IVec &ov)
{
    UOV_REQUIRE(ov.dim() == 2, "mappingVector2D needs a 2-D OV");
    UOV_REQUIRE(!ov.isZero(), "zero occupancy vector");
    int64_t g = ov.content();
    IVec prim = ov.dividedBy(g);
    return IVec{checkedNeg(prim[1]), prim[0]};
}

int64_t
storageCellCount(const IVec &ov, const Polyhedron &isg)
{
    UOV_REQUIRE(ov.dim() == isg.dim(), "OV/ISG dimension mismatch");
    UOV_REQUIRE(!ov.isZero(), "zero occupancy vector");
    int64_t g = ov.content();

    if (ov.dim() == 2) {
        IVec mv = mappingVector2D(ov);
        return checkedMul(isg.projectionCount(mv), g);
    }

    IVec prim = ov.dividedBy(g);
    IMatrix u = unimodularCompletion(prim);
    int64_t cells = g;
    for (size_t r = 1; r < u.rows(); ++r)
        cells = checkedMul(cells, isg.projectionCount(u.row(r)));
    return cells;
}

int64_t
storageCellCountExact(const IVec &ov, const Polyhedron &isg,
                      int64_t max_scan)
{
    UOV_REQUIRE(ov.dim() == isg.dim(), "OV/ISG dimension mismatch");
    UOV_REQUIRE(!ov.isZero(), "zero occupancy vector");

    // Two points share a cell iff they differ by an integral multiple
    // of ov.  Canonicalize each point by walking it back along ov as
    // far as possible in a fixed direction and hash the representative.
    // Two points p and p + k*ov measure k apart under the Bezout
    // functional beta (beta . ov == content), so canonicalizing the
    // functional value into [0, content) picks one representative per
    // storage class.
    IVec beta = bezoutVector(ov);
    int64_t g = ov.content();
    std::unordered_set<IVec, IVecHash> classes;
    for (const auto &p : isg.integerPoints(max_scan)) {
        int64_t pos = floorDiv(beta.dot(p), g);
        classes.insert(p - ov * pos);
    }
    return static_cast<int64_t>(classes.size());
}

int64_t
knownBoundsRadiusSquared(const IVec &initial_ov, const Polyhedron &isg)
{
    UOV_REQUIRE(!initial_ov.isZero(), "zero initial OV");
    int64_t p_ovo = storageCellCount(initial_ov, isg);
    int64_t pm = isg.minProjectionCount();
    UOV_CHECK(pm >= 1, "minimum projection count must be positive");

    // |ov_best| <= p_ovo * |ov_o| / pm; square it and round up.
    int64_t len_sq = initial_ov.normSquared();
    int64_t num = checkedMul(checkedMul(p_ovo, p_ovo), len_sq);
    int64_t r_sq = ceilDiv(num, checkedMul(pm, pm));
    return std::max(r_sq, len_sq);
}

} // namespace uov
