/**
 * @file
 * Reproduces Figures 9-11: 5-point stencil cycles per iteration over
 * a length sweep, all seven code versions, on the three simulated
 * testbeds.
 *
 * Testbed substitution notes (DESIGN.md): physical memory is set to
 * 8 / 16 / 32 MiB (PPro / Ultra2 / Alpha) so that the paper's
 * "falls out of memory" regime -- natural first, OV-mapped much
 * later, storage-optimized last -- appears inside a sweep that
 * simulates in seconds.  Tiled variants tile for L1 (two rows of
 * tile_s floats ~ L1 size).  The expected shape:
 *   - in-cache sizes: all versions close;
 *   - past L2: untiled versions pay memory latency, OV-tiled stays
 *     low;
 *   - past memory: natural skyrockets first, then OV-untiled; the
 *     storage-optimized and tiled-OV versions survive longest.
 */

#include "bench_common.h"

#include "kernels/stencil5.h"

using namespace uov;

namespace {

double
simCyclesPerIter(Stencil5Variant v, const Stencil5Config &cfg,
                 const MachineConfig &machine)
{
    MemorySystem ms(machine);
    SimMem mem{&ms};
    VirtualArena arena;
    runStencil5(v, cfg, mem, arena);
    double iters = static_cast<double>(cfg.length) *
                   static_cast<double>(cfg.steps);
    return ms.cycles() / iters;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseArgs(argc, argv);
    bench::banner("Figures 9-11 (5-point stencil scaling across "
                  "lengths, 3 machines)");

    std::vector<int64_t> lengths = {1000, 10000, 100000, 300000,
                                    1000000, 2000000};
    if (opt.quick)
        lengths = {1000, 10000, 100000};
    const int64_t steps = 8;

    auto machines = bench::paperMachines();
    machines[0].memory_bytes = 8ll << 20;  // PentiumPro
    machines[1].memory_bytes = 16ll << 20; // Ultra2
    machines[2].memory_bytes = 32ll << 20; // Alpha

    for (const auto &machine : machines) {
        Table t("Figure " +
                std::string(machine.name == "PentiumPro-200" ? "9"
                            : machine.name == "Ultra2-200"   ? "10"
                                                             : "11") +
                ": cycles/iteration on " + machine.name + " (T=" +
                std::to_string(steps) + ", memory " +
                std::to_string(machine.memory_bytes >> 20) + " MiB)");
        std::vector<std::string> header = {"Length"};
        for (Stencil5Variant v : allStencil5Variants())
            header.push_back(stencil5VariantName(v));
        t.header(header);

        for (int64_t len : lengths) {
            Stencil5Config cfg;
            cfg.length = len;
            cfg.steps = steps;
            cfg.tile_t = steps;
            // Tile for L1: 2 rows of tile_s floats ~ L1 capacity.
            cfg.tile_s =
                std::max<int64_t>(64, machine.l1.size_bytes / (4 * 2));

            auto row = t.addRow();
            row.cell(formatCount(len));
            for (Stencil5Variant v : allStencil5Variants())
                row.cell(simCyclesPerIter(v, cfg, machine), 1);
        }
        bench::emit(t, opt);
    }

    // Shape assertions matching the paper's story at the largest size.
    {
        const auto &machine = machines[0];
        Stencil5Config cfg;
        cfg.length = lengths.back();
        cfg.steps = steps;
        cfg.tile_t = steps;
        cfg.tile_s = machine.l1.size_bytes / 8;
        double natural =
            simCyclesPerIter(Stencil5Variant::Natural, cfg, machine);
        double ov_tiled =
            simCyclesPerIter(Stencil5Variant::OvTiled, cfg, machine);
        double opt_v = simCyclesPerIter(
            Stencil5Variant::StorageOptimized, cfg, machine);
        std::cerr << "shape check @ L=" << formatCount(cfg.length)
                  << " on " << machine.name << ": natural="
                  << formatDouble(natural, 1)
                  << " >> ov_tiled=" << formatDouble(ov_tiled, 1)
                  << " ~ storage_optimized=" << formatDouble(opt_v, 1)
                  << " -> "
                  << (natural > 2 * ov_tiled ? "reproduced"
                                             : "NOT reproduced")
                  << "\n";
    }
    return 0;
}
