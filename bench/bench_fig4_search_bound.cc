/**
 * @file
 * Reproduces Figure 4: how the initial UOV ov_o = sum(V) bounds the
 * search region, and how much the reachability pruning (the paper's
 * extreme-vector parallelepiped) cuts from the search.
 */

#include "bench_common.h"

#include "core/cone_pruner.h"
#include "core/reduction.h"
#include "core/search.h"
#include "support/rng.h"

using namespace uov;

namespace {

/**
 * Seeded PARTITION instance sized n, parity-fixed to an even sum --
 * the same construction (and seed, in main) as bench_search_anytime,
 * so the two benches exercise identical hard instances.
 */
PartitionInstance
randomInstance(size_t n, SplitMix64 &rng)
{
    PartitionInstance inst;
    for (size_t i = 0; i < n; ++i)
        inst.values.push_back(
            1 + static_cast<int64_t>(rng.nextInRange(0, 9)));
    int64_t total = 0;
    for (int64_t v : inst.values)
        total += v;
    if (total % 2)
        inst.values.back() += 1;
    return inst;
}

int64_t
nodesPerSecond(uint64_t visited, int64_t elapsed_us)
{
    if (elapsed_us <= 0)
        return 0;
    return static_cast<int64_t>(visited * 1'000'000 /
                                static_cast<uint64_t>(elapsed_us));
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseArgs(argc, argv);
    bench::banner("Figure 4 (bounding the search with ov_o and the "
                  "dependence cone)");

    Table t("Search-region geometry per stencil");
    t.header({"stencil", "ov_o", "|ov_o|^2", "extreme vectors",
              "visited", "pruned", "best uov"});

    for (const Stencil &s :
         {stencils::simpleExample(), stencils::threeVector(),
          stencils::fivePoint(),
          Stencil({IVec{1, 5}, IVec{1, -5}, IVec{2, 0}})}) {
        auto [lo, hi] = s.extremeVectors2D();
        SearchResult r =
            BranchBoundSearch(s, SearchObjective::ShortestVector).run();
        t.addRow()
            .cell(s.str())
            .cell(s.initialUov().str())
            .cell(s.initialUov().normSquared())
            .cell(lo.str() + " / " + hi.str())
            .cell(r.stats.visited)
            .cell(r.stats.pruned)
            .cell(r.best_uov.str());
    }
    bench::emit(t, opt);

    // Demonstrate the pruning region test on the 5-point stencil.
    Stencil five = stencils::fivePoint();
    ConePruner pruner(five);
    int64_t radius_sq = five.initialUov().normSquared();

    Table p("Reachability pruning around the 5-point stencil "
            "(radius^2 = |ov_o|^2 = " +
            std::to_string(radius_sq) + ")");
    p.header({"offset w", "min reachable |.|^2 (lower bound)",
              "pruned?"});
    for (const IVec &w : {IVec{1, 0}, IVec{1, 2}, IVec{2, 4}, IVec{3, 6},
                          IVec{4, 8}, IVec{5, 10}}) {
        double lb = pruner.minReachableNormSquared(w);
        p.addRow()
            .cell(w.str())
            .cell(lb, 2)
            .cell(pruner.prune(w, radius_sq) ? "yes" : "no");
    }
    bench::emit(p, opt);

    // Search-core throughput on the NP-completeness construction: the
    // PARTITION-reduction stencils are where expansion cost dominates,
    // so nodes/s here tracks the flat point-table + arena frontier
    // data layout directly.  "Problem Size" makes plot_benches.py pick
    // the table up; the nodes/s columns are per-unit diagnostics it
    // skips by contract.
    Table part("PARTITION-reduction search throughput "
               "(priority queue vs FIFO worklist)");
    part.header({"Problem Size", "pq visited", "fifo visited",
                 "pq nodes/s", "fifo nodes/s", "arena KiB",
                 "optimal value"});

    SplitMix64 rng(19981004);
    size_t max_n = opt.quick ? 6 : 8;
    for (size_t n = 3; n <= max_n; ++n) {
        PartitionInstance inst = randomInstance(n, rng);
        UovMembershipInstance red = buildReduction(inst);
        if (n < 6)
            continue; // keep the RNG stream aligned with the
                      // anytime bench; only n >= 6 is search-bound

        SearchOptions pq_opt;
        SearchResult pq_r =
            BranchBoundSearch(red.stencil,
                              SearchObjective::ShortestVector, pq_opt)
                .run();

        SearchOptions fifo_opt;
        fifo_opt.use_priority_queue = false;
        SearchResult fifo_r =
            BranchBoundSearch(red.stencil,
                              SearchObjective::ShortestVector,
                              fifo_opt)
                .run();

        part.addRow()
            .cell(int64_t(n))
            .cell(pq_r.stats.visited)
            .cell(fifo_r.stats.visited)
            .cell(nodesPerSecond(pq_r.stats.visited,
                                 pq_r.stats.elapsed_us))
            .cell(nodesPerSecond(fifo_r.stats.visited,
                                 fifo_r.stats.elapsed_us))
            .cell(int64_t(pq_r.stats.arena_bytes / 1024))
            .cell(pq_r.best_objective);
    }
    bench::emit(part, opt);
    return 0;
}
