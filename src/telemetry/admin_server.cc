#include "telemetry/admin_server.h"

#include <cerrno>
#include <cstring>
#include <sstream>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "support/error.h"
#include "telemetry/prometheus.h"

namespace uov {
namespace telemetry {

namespace {

std::string
httpResponse(int status, const char *reason, const char *content_type,
             const std::string &body)
{
    std::ostringstream oss;
    oss << "HTTP/1.0 " << status << " " << reason << "\r\n"
        << "Content-Type: " << content_type << "\r\n"
        << "Content-Length: " << body.size() << "\r\n"
        << "Connection: close\r\n\r\n"
        << body;
    return oss.str();
}

void
closeFd(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

} // namespace

std::string
HealthStatus::json() const
{
    std::ostringstream oss;
    oss << "{\"ready\":" << (ready ? "true" : "false")
        << ",\"store\":{\"configured\":"
        << (store_configured ? "true" : "false")
        << ",\"ok\":" << (store_ok ? "true" : "false")
        << "},\"shed_active\":" << (shed_active ? "true" : "false")
        << ",\"queue_depth\":" << queue_depth
        << ",\"shed_high_water\":" << shed_high_water << "}";
    return oss.str();
}

AdminServer::AdminServer(AdminHooks hooks, uint16_t port)
    : _hooks(std::move(hooks))
{
    _listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    UOV_REQUIRE(_listen_fd >= 0,
                "admin: socket() failed: " << std::strerror(errno));
    int one = 1;
    ::setsockopt(_listen_fd, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(_listen_fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        int err = errno;
        closeFd(_listen_fd);
        UOV_REQUIRE(false, "admin: cannot bind 127.0.0.1:"
                               << port << ": " << std::strerror(err));
    }
    if (::listen(_listen_fd, 16) != 0) {
        int err = errno;
        closeFd(_listen_fd);
        UOV_REQUIRE(false, "admin: listen failed: "
                               << std::strerror(err));
    }
    socklen_t len = sizeof(addr);
    ::getsockname(_listen_fd, reinterpret_cast<sockaddr *>(&addr),
                  &len);
    _port = ntohs(addr.sin_port);

    if (::pipe(_wake_fds) != 0) {
        int err = errno;
        closeFd(_listen_fd);
        UOV_REQUIRE(false,
                    "admin: pipe failed: " << std::strerror(err));
    }
    _thread = std::thread([this] { serveLoop(); });
}

AdminServer::~AdminServer()
{
    stop();
}

uint64_t
AdminServer::requestsServed() const
{
    return _served.load(std::memory_order_relaxed);
}

bool
AdminServer::quitRequested() const
{
    return _quit.load(std::memory_order_acquire);
}

void
AdminServer::waitQuit()
{
    std::unique_lock<std::mutex> lock(_quit_mutex);
    _quit_cv.wait(lock, [this] {
        return _quit.load(std::memory_order_acquire) ||
               _stop.load(std::memory_order_acquire);
    });
}

void
AdminServer::stop()
{
    bool expected = false;
    if (_stop.compare_exchange_strong(expected, true)) {
        // Wake the poll() so the loop observes _stop promptly.
        char b = 'q';
        (void)!::write(_wake_fds[1], &b, 1);
    }
    {
        std::lock_guard<std::mutex> lock(_quit_mutex);
    }
    _quit_cv.notify_all();
    if (_thread.joinable())
        _thread.join();
    closeFd(_listen_fd);
    closeFd(_wake_fds[0]);
    closeFd(_wake_fds[1]);
}

std::string
AdminServer::handle(const std::string &method, const std::string &path)
{
    _served.fetch_add(1, std::memory_order_relaxed);
    if (method != "GET")
        return httpResponse(405, "Method Not Allowed", "text/plain",
                            "only GET is served here\n");

    // Strip a query string: pollers append cache busters.
    std::string p = path.substr(0, path.find('?'));

    if (p == "/metrics") {
        std::string body = _hooks.metrics != nullptr
                               ? renderPrometheus(*_hooks.metrics)
                               : std::string();
        return httpResponse(200, "OK", prometheusContentType(), body);
    }
    if (p == "/healthz") {
        HealthStatus h =
            _hooks.health ? _hooks.health() : HealthStatus{};
        return httpResponse(200, "OK", "application/json",
                            h.json() + "\n");
    }
    if (p == "/readyz") {
        HealthStatus h =
            _hooks.health ? _hooks.health() : HealthStatus{};
        bool ready = h.ready && !h.shed_active &&
                     (!h.store_configured || h.store_ok);
        return httpResponse(ready ? 200 : 503,
                            ready ? "OK" : "Service Unavailable",
                            "application/json", h.json() + "\n");
    }
    if (p == "/slo") {
        std::string body = _hooks.slo != nullptr
                               ? _hooks.slo->json()
                               : std::string("{\"enabled\":false}");
        return httpResponse(200, "OK", "application/json", body + "\n");
    }
    if (p == "/flight") {
        std::string body = _hooks.flight != nullptr
                               ? _hooks.flight->json()
                               : std::string("{\"enabled\":false}");
        return httpResponse(200, "OK", "application/json", body + "\n");
    }
    if (p == "/spans") {
        std::string body = _hooks.spans_json
                               ? _hooks.spans_json()
                               : std::string("{\"enabled\":false}");
        return httpResponse(200, "OK", "application/json", body + "\n");
    }
    if (p == "/quitquitquit") {
        _quit.store(true, std::memory_order_release);
        {
            std::lock_guard<std::mutex> lock(_quit_mutex);
        }
        _quit_cv.notify_all();
        return httpResponse(200, "OK", "text/plain", "bye\n");
    }
    return httpResponse(
        404, "Not Found", "text/plain",
        "no such endpoint; try /metrics /healthz /readyz /slo "
        "/flight /spans /quitquitquit\n");
}

void
AdminServer::serveLoop()
{
    while (!_stop.load(std::memory_order_acquire)) {
        pollfd fds[2];
        fds[0].fd = _listen_fd;
        fds[0].events = POLLIN;
        fds[1].fd = _wake_fds[0];
        fds[1].events = POLLIN;
        int rc = ::poll(fds, 2, 1000);
        if (rc <= 0)
            continue;
        if ((fds[1].revents & POLLIN) != 0)
            continue; // woken for shutdown; loop re-checks _stop
        if ((fds[0].revents & POLLIN) == 0)
            continue;

        int conn = ::accept(_listen_fd, nullptr, nullptr);
        if (conn < 0)
            continue;
        timeval tv{2, 0}; // a stalled client cannot wedge the plane
        ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

        // Read until the end of the request head (or 4 KiB: admin
        // requests are one line plus a few headers).
        std::string head;
        char buf[1024];
        while (head.size() < 4096 &&
               head.find("\r\n\r\n") == std::string::npos &&
               head.find("\n\n") == std::string::npos) {
            ssize_t n = ::recv(conn, buf, sizeof(buf), 0);
            if (n <= 0)
                break;
            head.append(buf, static_cast<size_t>(n));
        }
        std::string method, path;
        {
            std::istringstream iss(head);
            iss >> method >> path;
        }
        std::string response =
            (method.empty() || path.empty())
                ? httpResponse(400, "Bad Request", "text/plain",
                               "malformed request line\n")
                : handle(method, path);
        size_t off = 0;
        while (off < response.size()) {
            ssize_t n = ::send(conn, response.data() + off,
                               response.size() - off, MSG_NOSIGNAL);
            if (n <= 0)
                break;
            off += static_cast<size_t>(n);
        }
        ::close(conn);
    }
}

} // namespace telemetry
} // namespace uov
