// Trace-context tests: id minting (unique, nonzero, int64-safe),
// scope push/pop semantics, annotation plumbing, cross-thread
// isolation, and the logger trace-id hook.

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "support/logging.h"
#include "telemetry/trace_context.h"

using namespace uov;
using namespace uov::telemetry;

TEST(TraceIds, UniqueNonzeroTopBitClear)
{
    std::set<uint64_t> seen;
    for (int i = 0; i < 10'000; ++i) {
        TraceContext ctx = newTrace();
        ASSERT_NE(ctx.id, 0u);
        ASSERT_EQ(ctx.id >> 63, 0u) << "top bit must be clear";
        ASSERT_TRUE(seen.insert(ctx.id).second) << "duplicate id";
    }
}

TEST(TraceIds, UniqueAcrossThreads)
{
    constexpr int kThreads = 8;
    constexpr int kPerThread = 2'000;
    std::vector<std::vector<uint64_t>> ids(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&ids, t] {
            for (int i = 0; i < kPerThread; ++i)
                ids[t].push_back(newTrace().id);
        });
    for (auto &t : threads)
        t.join();
    std::set<uint64_t> all;
    for (const auto &v : ids)
        for (uint64_t id : v)
            ASSERT_TRUE(all.insert(id).second) << "duplicate id";
    EXPECT_EQ(all.size(), size_t{kThreads} * kPerThread);
}

TEST(TraceScope, CurrentFollowsScopeNesting)
{
    EXPECT_FALSE(currentTrace().valid());
    EXPECT_EQ(currentTraceHex(), "");

    TraceContext outer = newTrace();
    {
        TraceScope scope(outer);
        EXPECT_EQ(currentTrace().id, outer.id);
        EXPECT_EQ(currentTraceHex(), traceIdHex(outer.id));

        TraceContext inner = newTrace();
        {
            TraceScope nested(inner);
            EXPECT_EQ(currentTrace().id, inner.id);
        }
        EXPECT_EQ(currentTrace().id, outer.id);
    }
    EXPECT_FALSE(currentTrace().valid());
}

TEST(TraceScope, AnnotationsAccumulateInScope)
{
    EXPECT_EQ(annotations(), nullptr);
    noteCacheHit(); // no-op outside any scope, must not crash

    TraceScope scope(newTrace());
    ASSERT_NE(annotations(), nullptr);
    EXPECT_FALSE(annotations()->cache_hit);

    noteKeyHash(0xabcd);
    noteCacheHit();
    noteStoreHit();
    noteCoalesced();
    noteSearch(123);

    EXPECT_EQ(scope.notes().key_hash, 0xabcdu);
    EXPECT_TRUE(scope.notes().cache_hit);
    EXPECT_TRUE(scope.notes().store_hit);
    EXPECT_TRUE(scope.notes().coalesced);
    EXPECT_TRUE(scope.notes().searched);
    EXPECT_EQ(scope.notes().nodes, 123u);
}

TEST(TraceScope, NestedScopeHasFreshAnnotations)
{
    TraceScope outer(newTrace());
    noteCacheHit();
    {
        TraceScope inner(newTrace());
        EXPECT_FALSE(annotations()->cache_hit);
        noteStoreHit();
    }
    EXPECT_TRUE(annotations()->cache_hit);
    EXPECT_FALSE(annotations()->store_hit);
}

TEST(TraceScope, ThreadLocalIsolation)
{
    TraceScope scope(newTrace());
    uint64_t other_id = 1; // sentinel: other thread sees no scope
    std::thread t([&other_id] { other_id = currentTrace().id; });
    t.join();
    EXPECT_EQ(other_id, 0u);
    EXPECT_TRUE(currentTrace().valid());
}

TEST(TraceIdHex, SixteenLowercaseHexDigits)
{
    EXPECT_EQ(traceIdHex(0), "0000000000000000");
    EXPECT_EQ(traceIdHex(0xabc), "0000000000000abc");
    EXPECT_EQ(traceIdHex(0x123456789abcdef0ull), "123456789abcdef0");
}

TEST(LoggerHook, LogLinesCarryTheScopeId)
{
    installLoggerTraceIds();
    std::ostringstream captured;
    Logger &logger = Logger::instance();
    std::ostream *old_sink = &std::cerr;
    logger.sink(&captured);

    TraceContext ctx = newTrace();
    {
        TraceScope scope(ctx);
        UOV_LOG_WARN("inside the scope");
    }
    UOV_LOG_WARN("outside the scope");

    logger.sink(old_sink);
    logger.setTraceIdProvider(nullptr);

    std::string out = captured.str();
    std::string token = "trace_id=" + traceIdHex(ctx.id);
    auto first = out.find("inside the scope");
    auto second = out.find("outside the scope");
    ASSERT_NE(first, std::string::npos);
    ASSERT_NE(second, std::string::npos);
    // The id is stamped on the in-scope line only.
    EXPECT_NE(out.find(token), std::string::npos);
    EXPECT_LT(out.find(token), second);
    EXPECT_EQ(out.find("trace_id=", second), std::string::npos);
}

TEST(LoggerHook, JsonModeEmitsTraceIdKey)
{
    installLoggerTraceIds();
    std::ostringstream captured;
    Logger &logger = Logger::instance();
    logger.sink(&captured);
    logger.setJsonMode(true);

    TraceContext ctx = newTrace();
    {
        TraceScope scope(ctx);
        UOV_LOG_WARN("structured");
    }

    logger.setJsonMode(false);
    logger.sink(&std::cerr);
    logger.setTraceIdProvider(nullptr);

    std::string out = captured.str();
    EXPECT_NE(out.find("\"trace_id\":\"" + traceIdHex(ctx.id) + "\""),
              std::string::npos);
    EXPECT_NE(out.find("\"msg\":\"structured\""), std::string::npos);
}
