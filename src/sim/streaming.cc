#include "sim/streaming.h"

#include "support/error.h"
#include "support/trace.h"

namespace uov {

MultiMachineSim::MultiMachineSim(
    const std::vector<MachineConfig> &configs)
{
    UOV_REQUIRE(!configs.empty(),
                "streaming simulation needs at least one machine");
    _systems.reserve(configs.size());
    for (const MachineConfig &cfg : configs)
        _systems.push_back(std::make_unique<MemorySystem>(cfg));
}

MemorySystem &
MultiMachineSim::system(size_t i)
{
    UOV_REQUIRE(i < _systems.size(),
                "machine index " << i << " out of range");
    return *_systems[i];
}

const MemorySystem &
MultiMachineSim::system(size_t i) const
{
    UOV_REQUIRE(i < _systems.size(),
                "machine index " << i << " out of range");
    return *_systems[i];
}

StreamingSim
MultiMachineSim::policy()
{
    StreamingSim p;
    p.systems.reserve(_systems.size());
    for (auto &ms : _systems)
        p.systems.push_back(ms.get());
    return p;
}

uint64_t
MultiMachineSim::eventsProcessed() const
{
    uint64_t n = 0;
    for (const auto &ms : _systems)
        n += ms->accesses() + ms->branches();
    return n;
}

void
MultiMachineSim::traceCycleCounters() const
{
    if (!trace::tracingEnabled())
        return;
    static const char *const kKeys[] = {"m0", "m1", "m2", "m3",
                                        "m4", "m5", "m6", "m7"};
    constexpr size_t kMaxKeys = sizeof kKeys / sizeof kKeys[0];
    for (size_t i = 0; i < _systems.size() && i < kMaxKeys; ++i)
        trace::counter("sim.machine.cycles", kKeys[i],
                       static_cast<int64_t>(_systems[i]->cycles()));
}

void
MultiMachineSim::reset()
{
    for (auto &ms : _systems)
        ms->reset();
}

} // namespace uov
