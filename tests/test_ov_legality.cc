/**
 * @file
 * Schedule-specific OV legality tests: the algebraic linear-schedule
 * rule, the empirical oracle, agreement between them, agreement with
 * the executor's clobber detection, and the UOV universality property
 * expressed through this lens.
 */

#include <gtest/gtest.h>

#include "core/uov.h"
#include "schedule/executor.h"
#include "schedule/legality.h"
#include "schedule/ov_legality.h"

namespace uov {
namespace {

TEST(OvLegalityLinear, UovSafeForEveryLegalWavefront)
{
    Stencil s = stencils::simpleExample();
    IVec uov{1, 1};
    ASSERT_TRUE(UovOracle(s).isUov(uov));
    for (int64_t a = 1; a <= 4; ++a) {
        for (int64_t b = 1; b <= 4; ++b) {
            IVec h{a, b};
            if (!wavefrontLegal(h, s))
                continue;
            EXPECT_TRUE(ovLegalForLinearSchedule(h, uov, s)) << h.str();
        }
    }
}

TEST(OvLegalityLinear, ShortOvSafeOnlyForAlignedSchedules)
{
    // Stencil {(1,0)}: ov=(0,1) is not universal.  sigma = h.q with
    // h=(1,0) ties all points in a column; h=(K,1)-style schedules
    // that advance j fast make it safe only if h.(1,0) < h.(0,1).
    Stencil s({IVec{1, 0}});
    IVec ov{0, 1};
    ASSERT_FALSE(UovOracle(s).isUov(ov));

    // h = (2,1): h.v = 2 >= h.ov = 1 -> unsafe.
    EXPECT_FALSE(ovLegalForLinearSchedule(IVec{2, 1}, ov, s));
    // h = (1,2): h.v = 1 < h.ov = 2 -> safe (column-major-like).
    EXPECT_TRUE(ovLegalForLinearSchedule(IVec{1, 2}, ov, s));
}

TEST(OvLegalityLinear, OverwriterMayBeConsumer)
{
    // ov equal to a dependence: legal because the read happens before
    // the write within the iteration (Figure 1's UOV (1,1) is a
    // dependence).
    Stencil s = stencils::simpleExample();
    EXPECT_TRUE(ovLegalForLinearSchedule(IVec{1, 1}, IVec{1, 1}, s));
    // But an equal-level *different* consumer is unsafe.
    Stencil two({IVec{1, 0}, IVec{0, 1}});
    // h=(1,1): h.(1,0) == h.(0,1) == h.ov(0,1)? ov=(0,1): consumer
    // (1,0) has h.v = 1 == h.ov = 1 and v != ov -> unsafe.
    EXPECT_FALSE(ovLegalForLinearSchedule(IVec{1, 1}, IVec{0, 1}, two));
}

TEST(OvLegalityLinear, RejectsIllegalScheduleVector)
{
    EXPECT_THROW(ovLegalForLinearSchedule(IVec{1, 1}, IVec{2, 0},
                                          stencils::fivePoint()),
                 UovUserError);
}

TEST(OvLegalityEmpirical, Figure1cStorageOptimizedPattern)
{
    // Figure 1(c)'s in-place row is, in OV terms, ov = (1,0) on the
    // simple-example stencil: each iteration overwrites the value one
    // row up.  That is legal only for the original row-major
    // schedule... in fact not even for it: (i-1,j) is still needed by
    // (i, j+1).  The truly compatible pattern is ov = (1,0) with the
    // *column*-major schedule?  No: consumer (i-1,j)+(0,1) follows.
    // The executor already showed ov=(1,0) fails; the oracle agrees
    // for both canonical orders.
    Stencil s = stencils::simpleExample();
    IVec lo{0, 0}, hi{6, 6};
    EXPECT_FALSE(ovLegalForSchedule(LexSchedule::identity(2), lo, hi,
                                    IVec{1, 0}, s));
    EXPECT_FALSE(ovLegalForSchedule(LexSchedule({1, 0}), lo, hi,
                                    IVec{1, 0}, s));
    // The UOV is safe under both.
    EXPECT_TRUE(ovLegalForSchedule(LexSchedule::identity(2), lo, hi,
                                   IVec{1, 1}, s));
    EXPECT_TRUE(ovLegalForSchedule(LexSchedule({1, 0}), lo, hi,
                                   IVec{1, 1}, s));
}

TEST(OvLegalityEmpirical, ScheduleDependentOvMatchesExecutor)
{
    // Stencil {(1,0)}, ov=(0,1): safe column-major, clobbers
    // row-major -- the oracle and the executor must agree.
    Stencil s({IVec{1, 0}});
    IVec ov{0, 1};
    IVec lo{0, 0}, hi{6, 6};
    StencilComputation comp(s);

    LexSchedule row_major = LexSchedule::identity(2);
    LexSchedule col_major({1, 0});

    bool oracle_row = ovLegalForSchedule(row_major, lo, hi, ov, s);
    bool oracle_col = ovLegalForSchedule(col_major, lo, hi, ov, s);
    EXPECT_FALSE(oracle_row);
    EXPECT_TRUE(oracle_col);

    EXPECT_EQ(runWithOvStorage(comp, row_major, lo, hi, ov).correct(),
              oracle_row);
    EXPECT_EQ(runWithOvStorage(comp, col_major, lo, hi, ov).correct(),
              oracle_col);
}

TEST(OvLegalityEmpirical, AgreesWithLinearRuleOnWavefronts)
{
    Stencil s = stencils::fivePoint();
    IVec lo{0, 0}, hi{8, 8};
    for (const IVec &h : {IVec{3, 1}, IVec{4, 1}, IVec{5, 2}}) {
        ASSERT_TRUE(wavefrontLegal(h, s)) << h.str();
        for (const IVec &ov :
             {IVec{2, 0}, IVec{1, 0}, IVec{3, 1}, IVec{1, 2}}) {
            bool algebraic = ovLegalForLinearSchedule(h, ov, s);
            bool empirical = ovLegalForSchedule(
                WavefrontSchedule(h), lo, hi, ov, s);
            // The algebraic rule is conservative about ties; whenever
            // it accepts, the empirical order must too.
            if (algebraic) {
                EXPECT_TRUE(empirical) << h.str() << " " << ov.str();
            }
        }
    }
}

TEST(OvLegalityEmpirical, UovSafeUnderRandomSchedules)
{
    Stencil s = stencils::fivePoint();
    IVec lo{0, 0}, hi{7, 9};
    for (uint64_t seed = 0; seed < 8; ++seed) {
        RandomTopoSchedule sched(s, seed);
        EXPECT_TRUE(
            ovLegalForSchedule(sched, lo, hi, IVec{2, 0}, s))
            << seed;
    }
}

TEST(OvLegalityEmpirical, NonUovFailsSomeRandomSchedule)
{
    // A non-universal short OV must be rejected by some random
    // topological order.
    Stencil s = stencils::simpleExample();
    IVec lo{0, 0}, hi{7, 7};
    bool rejected_somewhere = false;
    for (uint64_t seed = 0; seed < 16 && !rejected_somewhere; ++seed) {
        if (!ovLegalForSchedule(RandomTopoSchedule(s, seed), lo, hi,
                                IVec{1, 0}, s))
            rejected_somewhere = true;
    }
    EXPECT_TRUE(rejected_somewhere);
}

} // namespace
} // namespace uov
