/**
 * @file
 * Runtime containers backed by an OV storage mapping.
 *
 * OVArray is the production container: cellCount() cells addressed by
 * iteration point through the StorageMapping.
 *
 * CheckedOVArray is the validation container: it additionally records,
 * for every cell, which iteration last wrote it, so a read can assert
 * that the value it receives was produced by the iteration the
 * dataflow says it should come from.  A violation is precisely a
 * storage clobber introduced by a (non-universal) occupancy vector
 * under some schedule -- the executor uses this to demonstrate both
 * the safety of UOVs and the unsafety of shorter non-universal OVs.
 */

#ifndef UOV_MAPPING_OV_ARRAY_H
#define UOV_MAPPING_OV_ARRAY_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mapping/storage_mapping.h"
#include "support/error.h"

namespace uov {

/** A value store addressed by iteration point through an OV mapping. */
template <typename T>
class OVArray
{
  public:
    explicit OVArray(StorageMapping mapping, T fill = T{})
        : _mapping(std::move(mapping)),
          _data(static_cast<size_t>(_mapping.cellCount()), fill)
    {
    }

    const StorageMapping &mapping() const { return _mapping; }
    int64_t cellCount() const { return _mapping.cellCount(); }

    /** Value cell for iteration q. */
    T &
    at(const IVec &q)
    {
        return _data[index(q)];
    }

    const T &
    at(const IVec &q) const
    {
        return _data[index(q)];
    }

    /** Raw cell access (for layout-sensitive diagnostics). */
    const std::vector<T> &cells() const { return _data; }

  private:
    size_t
    index(const IVec &q) const
    {
        int64_t i = _mapping(q);
        UOV_CHECK(i >= 0 && i < _mapping.cellCount(),
                  "mapped index " << i << " out of [0, "
                                  << _mapping.cellCount() << ") for q="
                                  << q.str());
        return static_cast<size_t>(i);
    }

    StorageMapping _mapping;
    std::vector<T> _data;
};

/** One detected storage clobber. */
struct ClobberViolation
{
    IVec reader;          ///< iteration performing the read
    IVec expected_writer; ///< iteration the value should come from
    IVec actual_writer;   ///< iteration that last wrote the cell
    int64_t cell;         ///< the shared storage cell

    std::string
    str() const
    {
        return "read at " + reader.str() + " expected value of " +
               expected_writer.str() + " but cell " +
               std::to_string(cell) + " holds value of " +
               actual_writer.str();
    }
};

/** OVArray with per-cell writer tracking and clobber detection. */
template <typename T>
class CheckedOVArray
{
  public:
    explicit CheckedOVArray(StorageMapping mapping, T fill = T{})
        : _values(std::move(mapping), fill),
          _writers(static_cast<size_t>(_values.cellCount()))
    {
    }

    const StorageMapping &mapping() const { return _values.mapping(); }

    /** Record iteration @p q writing @p value. */
    void
    write(const IVec &q, const T &value)
    {
        _values.at(q) = value;
        _writers[static_cast<size_t>(mapping()(q))] = q;
    }

    /**
     * Read the value produced by iteration @p producer on behalf of
     * @p reader.  If the cell was clobbered, the violation is recorded
     * and the (wrong) stored value returned -- execution continues so
     * tests can count total violations.
     */
    T
    read(const IVec &reader, const IVec &producer)
    {
        int64_t cell = mapping()(producer);
        const auto &writer = _writers[static_cast<size_t>(cell)];
        if (!writer.has_value() || *writer != producer) {
            ClobberViolation v;
            v.reader = reader;
            v.expected_writer = producer;
            v.actual_writer = writer.value_or(IVec(producer.dim()));
            v.cell = cell;
            _violations.push_back(std::move(v));
        }
        return _values.at(producer);
    }

    /** Read without clobber bookkeeping (boundary values etc.). */
    const T &peek(const IVec &q) const { return _values.at(q); }

    const std::vector<ClobberViolation> &violations() const
    {
        return _violations;
    }

    bool clean() const { return _violations.empty(); }

  private:
    OVArray<T> _values;
    std::vector<std::optional<IVec>> _writers;
    std::vector<ClobberViolation> _violations;
};

} // namespace uov

#endif // UOV_MAPPING_OV_ARRAY_H
