#include "codegen/regcost.h"

#include <set>
#include <sstream>
#include <vector>

#include "support/error.h"

namespace uov {

std::string
RegisterPlan::str() const
{
    std::ostringstream oss;
    oss << "jam=" << jam << " unroll=" << unroll << " loads=" << loads
        << " forwards=" << forwards << " regs=" << regs;
    return oss.str();
}

RegisterPlan
evaluateRegisterPlan(const std::vector<IVec> &dists, size_t depth,
                     int64_t jam, int64_t unroll, int64_t live_hint)
{
    UOV_CHECK(depth >= 1, "zero-depth nest");
    UOV_CHECK(jam >= 1 && unroll >= 1, "factors must be >= 1");
    UOV_CHECK(depth >= 2 || jam == 1, "1-D nests cannot jam");

    RegisterPlan plan;
    plan.jam = jam;
    plan.unroll = unroll;

    size_t jdim = depth >= 2 ? depth - 2 : 0;
    size_t udim = depth - 1;

    // A copy (a, b) reads cell (base + a*e_j + b*e_u) - dist.  Two
    // copies share a load iff their shifted distances coincide; a
    // read is forwarded iff its shifted distance lands on another
    // copy's write offset (a'*e_j + b'*e_u with in-tile a', b').
    std::set<std::vector<int64_t>> loads;
    for (int64_t a = 0; a < jam; ++a) {
        for (int64_t b = 0; b < unroll; ++b) {
            for (const IVec &d : dists) {
                std::vector<int64_t> cell(depth, 0);
                for (size_t k = 0; k < depth; ++k)
                    cell[k] = -d[k];
                if (depth >= 2)
                    cell[jdim] += a;
                cell[udim] += b;

                bool in_tile = true;
                for (size_t k = 0; k < depth; ++k) {
                    int64_t hi_k = k == udim   ? unroll - 1
                                   : (depth >= 2 && k == jdim) ? jam - 1
                                                               : 0;
                    if (cell[k] < 0 || cell[k] > hi_k) {
                        in_tile = false;
                        break;
                    }
                }
                if (in_tile)
                    ++plan.forwards;
                else
                    loads.insert(cell);
            }
        }
    }
    plan.loads = static_cast<int64_t>(loads.size());
    if (live_hint > 0 && plan.loads > live_hint)
        plan.loads = live_hint;

    // Pressure: one register per distinct loaded value, one
    // accumulator per copy, plus index/pointer overhead.
    plan.regs = plan.loads + plan.copies() + 2;
    return plan;
}

RegisterPlan
pickRegisterPlan(const std::vector<IVec> &dists, size_t depth,
                 int64_t available_regs, int64_t live_hint)
{
    UOV_REQUIRE(depth >= 1, "register plan needs depth >= 1");
    for (const IVec &d : dists)
        UOV_REQUIRE(d.dim() == depth,
                    "distance " << d.str() << " has dimension "
                                << d.dim() << ", nest depth is "
                                << depth);

    RegisterPlan best = evaluateRegisterPlan(dists, depth, 1, 1,
                                             live_hint);
    for (int64_t jam : {int64_t{1}, int64_t{2}, int64_t{4}}) {
        if (depth < 2 && jam > 1)
            continue;
        if (depth >= 2 && !jamLegal(dists, depth - 2, jam))
            continue;
        for (int64_t unroll :
             {int64_t{1}, int64_t{2}, int64_t{4}, int64_t{8}}) {
            RegisterPlan cand = evaluateRegisterPlan(
                dists, depth, jam, unroll, live_hint);
            if (cand.regs > available_regs)
                continue;
            double c = cand.loadsPerIter(), b = best.loadsPerIter();
            // Fewest loads per iteration; ties go to the smaller
            // body (less I-cache, cheaper remainders).
            if (c < b ||
                (c == b && cand.copies() < best.copies()) ||
                (c == b && cand.copies() == best.copies() &&
                 cand.forwards > best.forwards))
                best = cand;
        }
    }
    return best;
}

} // namespace uov
