#include "telemetry/flight_recorder.h"

#include <algorithm>
#include <sstream>
#include <type_traits>

#include "support/json.h"
#include "support/logging.h"

namespace uov {
namespace telemetry {

static_assert(std::is_trivially_copyable_v<FlightDigest>,
              "digests are copied through the seqlock word buffer");

void
FlightDigest::setCause(const std::string &text)
{
    size_t n = std::min(text.size(), kCauseBytes - 1);
    std::memcpy(cause, text.data(), n);
    cause[n] = '\0';
}

std::string
FlightDigest::causeStr() const
{
    return std::string(cause,
                       strnlen(cause, kCauseBytes));
}

const char *
FlightDigest::verbName(Verb v)
{
    switch (v) {
      case Verb::Shortest: return "shortest";
      case Verb::Storage:  return "storage";
      case Verb::Native:   return "native";
      case Verb::Tune:     return "tune";
      case Verb::Unknown:  return "unknown";
    }
    return "?";
}

const char *
FlightDigest::outcomeName(Outcome o)
{
    switch (o) {
      case Outcome::Optimal:  return "optimal";
      case Outcome::Degraded: return "degraded";
      case Outcome::Shed:     return "shed";
      case Outcome::Error:    return "error";
    }
    return "?";
}

FlightRecorder::FlightRecorder(size_t capacity)
    : _capacity(std::max<size_t>(capacity, 8)),
      _slots(std::make_unique<Slot[]>(_capacity))
{
}

void
FlightRecorder::record(FlightDigest digest)
{
    uint64_t idx = _next.fetch_add(1, std::memory_order_relaxed);
    digest.seq = idx + 1;
    Slot &slot = _slots[idx % _capacity];

    uint64_t buf[kDigestWords] = {};
    std::memcpy(buf, &digest, sizeof(digest));

    // Per-slot seqlock: odd = write in progress.  The payload words
    // are themselves atomic, so a racing snapshot reads defined
    // values and discards any it cannot certify as one generation.
    // (A digest could only tear if _capacity concurrent writers
    // lapped the ring inside this window -- record() is one claim
    // and ~10 relaxed stores, so with capacity >= 8 that regime is
    // unreachable in practice.)
    slot.state.store(2 * idx + 1, std::memory_order_release);
    for (size_t w = 0; w < kDigestWords; ++w)
        slot.words[w].store(buf[w], std::memory_order_relaxed);
    slot.state.store(2 * idx + 2, std::memory_order_release);
}

std::vector<FlightDigest>
FlightRecorder::snapshot() const
{
    std::vector<FlightDigest> out;
    out.reserve(_capacity);
    for (size_t s = 0; s < _capacity; ++s) {
        const Slot &slot = _slots[s];
        uint64_t s1 = slot.state.load(std::memory_order_acquire);
        if (s1 == 0 || (s1 & 1) != 0)
            continue; // never written, or mid-write: skip this scan
        uint64_t buf[kDigestWords];
        for (size_t w = 0; w < kDigestWords; ++w)
            buf[w] = slot.words[w].load(std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_acquire);
        uint64_t s2 = slot.state.load(std::memory_order_relaxed);
        if (s1 != s2)
            continue; // overwritten while copying
        FlightDigest d;
        std::memcpy(&d, buf, sizeof(d));
        out.push_back(d);
    }
    std::sort(out.begin(), out.end(),
              [](const FlightDigest &a, const FlightDigest &b) {
                  return a.seq < b.seq;
              });
    return out;
}

uint64_t
FlightRecorder::recorded() const
{
    return _next.load(std::memory_order_relaxed);
}

std::string
FlightRecorder::json() const
{
    std::vector<FlightDigest> digests = snapshot();
    std::ostringstream oss;
    oss << "{\"capacity\":" << _capacity
        << ",\"recorded\":" << recorded() << ",\"digests\":[";
    for (size_t i = 0; i < digests.size(); ++i) {
        const FlightDigest &d = digests[i];
        if (i)
            oss << ",";
        oss << "{\"seq\":" << d.seq << ",\"trace_id\":\""
            << traceIdHex(d.trace_id) << "\",\"key_hash\":\""
            << traceIdHex(d.key_hash) << "\",\"index\":"
            << d.request_index << ",\"verb\":\""
            << FlightDigest::verbName(d.verb) << "\",\"outcome\":\""
            << FlightDigest::outcomeName(d.outcome) << "\",\"cause\":\""
            << jsonEscape(d.causeStr()) << "\",\"nodes\":" << d.nodes
            << ",\"cache_hit\":" << (d.cache_hit ? "true" : "false")
            << ",\"store_hit\":" << (d.store_hit ? "true" : "false")
            << ",\"coalesced\":" << (d.coalesced ? "true" : "false")
            << ",\"wall_us\":" << d.wall_us << "}";
    }
    oss << "]}";
    return oss.str();
}

} // namespace telemetry
} // namespace uov
