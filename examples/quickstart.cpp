/**
 * @file
 * Quickstart: the five-minute tour of the library.
 *
 * Given a loop's dependence stencil, find the best universal occupancy
 * vector, build the storage mapping, and show the storage saved over
 * full array expansion.
 *
 *   $ ./quickstart
 */

#include <iostream>

#include "core/search.h"
#include "core/uov.h"
#include "mapping/storage_mapping.h"

using namespace uov;

int
main()
{
    // 1. Describe the loop's value dependences.  This is the paper's
    //    Figure 1 loop: A[i,j] = f(A[i-1,j], A[i,j-1], A[i-1,j-1]).
    Stencil stencil({IVec{1, 0}, IVec{0, 1}, IVec{1, 1}});
    std::cout << "stencil: " << stencil.str() << "\n";

    // 2. The trivial legal UOV is the sum of the dependences...
    std::cout << "initial UOV (always legal): " << stencil.initialUov()
              << "\n";

    // 3. ...and the branch-and-bound search finds the best one.
    SearchResult best =
        BranchBoundSearch(stencil, SearchObjective::ShortestVector)
            .run();
    std::cout << "optimal UOV: " << best.best_uov << "  ("
              << best.stats.str() << ")\n";

    // 4. Check any candidate yourself.
    UovOracle oracle(stencil);
    std::cout << "(1,0) universal? "
              << (oracle.isUov(IVec{1, 0}) ? "yes" : "no")
              << "   (1,1) universal? "
              << (oracle.isUov(IVec{1, 1}) ? "yes" : "no") << "\n";

    // 5. Build the storage mapping over a concrete iteration space.
    int64_t n = 1000, m = 800;
    Polyhedron isg = Polyhedron::box(IVec{0, 0}, IVec{n, m});
    StorageMapping sm = StorageMapping::create(best.best_uov, isg);
    std::cout << "mapping: " << sm.str() << "\n";
    std::cout << "cells: " << sm.cellCount() << " instead of "
              << (n + 1) * (m + 1) << " fully expanded ("
              << ((n + 1) * (m + 1)) / sm.cellCount() << "x less)\n";

    // 6. Iterations an OV apart share a cell; everything else is
    //    distinct -- and because the OV is *universal*, this stays
    //    correct no matter how the loop is scheduled or tiled.
    std::cout << "SM(10,10) == SM(11,11): "
              << (sm(IVec{10, 10}) == sm(IVec{11, 11}) ? "yes" : "no")
              << ", SM(10,10) == SM(10,11): "
              << (sm(IVec{10, 10}) == sm(IVec{10, 11}) ? "yes" : "no")
              << "\n";
    return 0;
}
