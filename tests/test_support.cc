/**
 * @file
 * Unit tests for src/support: checked arithmetic, logging, tables,
 * RNG, and the shared worker-thread pool.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <sstream>

#include "support/checked.h"
#include "support/error.h"
#include "support/logging.h"
#include "support/rng.h"
#include "support/table.h"
#include "support/thread_pool.h"

namespace uov {
namespace {

TEST(CheckedArithmetic, AddDetectsOverflow)
{
    EXPECT_EQ(checkedAdd(2, 3), 5);
    EXPECT_EQ(checkedAdd(-2, -3), -5);
    EXPECT_THROW(checkedAdd(INT64_MAX, 1), UovOverflowError);
    EXPECT_THROW(checkedAdd(INT64_MIN, -1), UovOverflowError);
}

TEST(CheckedArithmetic, SubDetectsOverflow)
{
    EXPECT_EQ(checkedSub(2, 5), -3);
    EXPECT_THROW(checkedSub(INT64_MIN, 1), UovOverflowError);
}

TEST(CheckedArithmetic, MulDetectsOverflow)
{
    EXPECT_EQ(checkedMul(-4, 5), -20);
    EXPECT_THROW(checkedMul(INT64_MAX, 2), UovOverflowError);
    EXPECT_THROW(checkedMul(INT64_MIN, -1), UovOverflowError);
}

TEST(CheckedArithmetic, NegAndAbs)
{
    EXPECT_EQ(checkedNeg(7), -7);
    EXPECT_EQ(checkedAbs(-7), 7);
    EXPECT_EQ(checkedAbs(0), 0);
    EXPECT_THROW(checkedNeg(INT64_MIN), UovOverflowError);
    EXPECT_THROW(checkedAbs(INT64_MIN), UovOverflowError);
}

TEST(CheckedArithmetic, Gcd)
{
    EXPECT_EQ(gcd64(12, 18), 6);
    EXPECT_EQ(gcd64(-12, 18), 6);
    EXPECT_EQ(gcd64(0, 5), 5);
    EXPECT_EQ(gcd64(0, 0), 0);
}

TEST(CheckedArithmetic, FloorCeilDiv)
{
    EXPECT_EQ(floorDiv(7, 2), 3);
    EXPECT_EQ(floorDiv(-7, 2), -4);
    EXPECT_EQ(floorDiv(7, -2), -4);
    EXPECT_EQ(floorDiv(-7, -2), 3);
    EXPECT_EQ(ceilDiv(7, 2), 4);
    EXPECT_EQ(ceilDiv(-7, 2), -3);
    EXPECT_THROW(floorDiv(1, 0), UovError);
}

TEST(CheckedArithmetic, FloorMod)
{
    EXPECT_EQ(floorMod(7, 3), 1);
    EXPECT_EQ(floorMod(-7, 3), 2);
    EXPECT_EQ(floorMod(0, 3), 0);
    EXPECT_THROW(floorMod(1, 0), UovError);
    EXPECT_THROW(floorMod(1, -3), UovError);
}

TEST(ErrorMacros, CheckThrowsInternalWithLocation)
{
    try {
        UOV_CHECK(1 == 2, "custom " << 42);
        FAIL() << "expected throw";
    } catch (const UovInternalError &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("test_support.cc"), std::string::npos);
        EXPECT_NE(what.find("custom 42"), std::string::npos);
    }
}

TEST(ErrorMacros, RequireThrowsUserError)
{
    EXPECT_THROW(UOV_REQUIRE(false, "nope"), UovUserError);
    EXPECT_NO_THROW(UOV_REQUIRE(true, "fine"));
}

TEST(Logging, RespectsLevelAndSink)
{
    std::ostringstream oss;
    Logger::instance().sink(&oss);
    Logger::instance().level(LogLevel::Warn);
    UOV_LOG_INFO("hidden");
    UOV_LOG_WARN("shown");
    Logger::instance().sink(&std::cerr);

    std::string out = oss.str();
    EXPECT_EQ(out.find("hidden"), std::string::npos);
    EXPECT_NE(out.find("shown"), std::string::npos);
    EXPECT_NE(out.find("[uov:warn]"), std::string::npos);
}

TEST(Logging, JsonModeEmitsOneObjectPerLine)
{
    std::ostringstream oss;
    Logger::instance().sink(&oss);
    Logger::instance().level(LogLevel::Warn);
    Logger::instance().setJsonMode(true);
    UOV_LOG_WARN("first");
    UOV_LOG_ERROR("second");
    Logger::instance().setJsonMode(false);
    Logger::instance().sink(&std::cerr);

    std::string out = oss.str();
    // Two lines, each a {"ts":...,"level":...,"msg":...} object; no
    // prefix-format leakage.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
    EXPECT_NE(out.find("\"level\":\"warn\",\"msg\":\"first\""),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("\"level\":\"error\",\"msg\":\"second\""),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("\"ts\":"), std::string::npos);
    EXPECT_EQ(out.find("[uov:"), std::string::npos);
}

TEST(Logging, JsonModeEscapesMessageText)
{
    std::ostringstream oss;
    Logger::instance().sink(&oss);
    Logger::instance().level(LogLevel::Warn);
    Logger::instance().setJsonMode(true);
    UOV_LOG_WARN("quote\" back\\slash\nnewline\ttab \x01"
                 "ctl");
    UOV_LOG_WARN("non-ascii \xc3\xa9 stays"); // UTF-8 e-acute
    Logger::instance().setJsonMode(false);
    Logger::instance().sink(&std::cerr);

    std::string out = oss.str();
    EXPECT_NE(out.find("quote\\\" back\\\\slash\\nnewline\\ttab "
                       "\\u0001ctl"),
              std::string::npos)
        << out;
    // Valid UTF-8 above 0x1f passes through byte-for-byte.
    EXPECT_NE(out.find("non-ascii \xc3\xa9 stays"), std::string::npos)
        << out;
    // The embedded newline was escaped: still one line per message.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
    EXPECT_EQ(out.find('\t'), std::string::npos);
}

TEST(Rng, DeterministicAcrossInstances)
{
    SplitMix64 a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, NextBelowInRange)
{
    SplitMix64 rng(7);
    for (int i = 0; i < 1000; ++i) {
        uint64_t v = rng.nextBelow(13);
        EXPECT_LT(v, 13u);
    }
    EXPECT_THROW(rng.nextBelow(0), UovError);
}

TEST(Rng, NextInRangeHitsEndpoints)
{
    SplitMix64 rng(1);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = rng.nextInRange(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo |= (v == -2);
        saw_hi |= (v == 2);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    SplitMix64 rng(3);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, NextInRangeFullInt64Span)
{
    // [INT64_MIN, INT64_MAX] makes the unsigned span wrap to 0; the
    // generator must take the dedicated full-range path (one raw draw,
    // no rejection loop) rather than calling nextBelow(0).
    SplitMix64 rng(99), twin(99);
    for (int i = 0; i < 100; ++i) {
        int64_t v = rng.nextInRange(INT64_MIN, INT64_MAX);
        EXPECT_EQ(v, static_cast<int64_t>(twin.next()));
    }
}

TEST(Rng, NextInRangeFullSpanCoversBothSigns)
{
    SplitMix64 rng(5);
    bool saw_neg = false, saw_pos = false;
    for (int i = 0; i < 200; ++i) {
        int64_t v = rng.nextInRange(INT64_MIN, INT64_MAX);
        saw_neg |= (v < 0);
        saw_pos |= (v > 0);
    }
    EXPECT_TRUE(saw_neg);
    EXPECT_TRUE(saw_pos);
}

TEST(Rng, NextBelowRejectionPath)
{
    // bound = 2^63 + 1 puts the rejection threshold at 2^63 - 1, so
    // just under half of all raw draws are rejected: the loop body
    // that kills modulo bias actually executes.  A twin generator
    // replays the published algorithm step by step; results and
    // consumed stream positions must match exactly.
    const uint64_t bound = (1ULL << 63) + 1;
    const uint64_t threshold = (0 - bound) % bound;
    EXPECT_EQ(threshold, (1ULL << 63) - 1);

    SplitMix64 rng(1234), twin(1234);
    uint64_t rejections = 0;
    for (int i = 0; i < 64; ++i) {
        uint64_t v = rng.nextBelow(bound);
        uint64_t r;
        do {
            r = twin.next();
            if (r < threshold)
                ++rejections;
        } while (r < threshold);
        EXPECT_EQ(v, r % bound);
        EXPECT_LT(v, bound);
    }
    // P(zero rejections in 64 draws) ~ 2^-64: the path ran.
    EXPECT_GT(rejections, 0u);
}

TEST(Rng, NextBelowOneIsAlwaysZeroAndConsumesOneDraw)
{
    SplitMix64 rng(8), twin(8);
    for (int i = 0; i < 20; ++i) {
        EXPECT_EQ(rng.nextBelow(1), 0u);
        twin.next(); // threshold is 0 for bound 1: exactly one draw
    }
    EXPECT_EQ(rng.next(), twin.next());
}

TEST(Table, AlignedPrintContainsCells)
{
    Table t("demo");
    t.header({"name", "value"});
    t.addRow().cell("alpha").cell(int64_t{10});
    t.addRow().cell("beta").cell(3.5, 1);

    std::ostringstream oss;
    t.print(oss);
    std::string out = oss.str();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("3.5"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows)
{
    Table t("demo");
    t.header({"a", "b"});
    EXPECT_THROW(t.row({"only-one"}), UovUserError);
}

TEST(Table, CsvEscapesSpecials)
{
    Table t("demo");
    t.header({"a", "b"});
    t.row({"x,y", "say \"hi\""});
    std::ostringstream oss;
    t.printCsv(oss);
    std::string out = oss.str();
    EXPECT_NE(out.find("\"x,y\""), std::string::npos);
    EXPECT_NE(out.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Format, FormatCountInsertsSeparators)
{
    EXPECT_EQ(formatCount(0), "0");
    EXPECT_EQ(formatCount(999), "999");
    EXPECT_EQ(formatCount(1000), "1,000");
    EXPECT_EQ(formatCount(1234567), "1,234,567");
    EXPECT_EQ(formatCount(-1234567), "-1,234,567");
}

TEST(Format, FormatDoubleFixedPrecision)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(2.0, 0), "2");
}

TEST(ThreadPoolTest, SubmitReturnsResultsViaFutures)
{
    ThreadPool pool(2);
    EXPECT_EQ(pool.size(), 2u);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 32; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions)
{
    ThreadPool pool(1);
    auto f = pool.submit(
        []() -> int { throw UovUserError("boom"); });
    EXPECT_THROW(f.get(), UovUserError);
    // The worker survives a throwing task.
    EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce)
{
    ThreadPool pool(4);
    const size_t n = 10000;
    std::vector<std::atomic<int>> touched(n);
    pool.parallelFor(n, 7, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i)
            touched[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(touched[i].load(), 1) << i;
    // Degenerate shapes run inline and still cover everything.
    std::atomic<size_t> count{0};
    pool.parallelFor(5, 1, [&](size_t b, size_t e) {
        count += e - b;
    });
    pool.parallelFor(0, 4, [&](size_t, size_t) { count += 1000; });
    EXPECT_EQ(count.load(), 5u);
}

TEST(ThreadPoolTest, ParallelForRethrowsChunkException)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(100, 4,
                                  [](size_t begin, size_t) {
                                      if (begin == 0)
                                          throw UovUserError("chunk");
                                  }),
                 UovUserError);
}

TEST(ThreadPoolTest, SharedPoolIsUsableAndStable)
{
    ThreadPool &a = ThreadPool::shared();
    ThreadPool &b = ThreadPool::shared();
    EXPECT_EQ(&a, &b);
    EXPECT_GE(a.size(), 1u);
    EXPECT_EQ(a.submit([] { return 42; }).get(), 42);
}

TEST(ThreadPoolTest, IdlePoolConstructsAndDestructsCleanly)
{
    // Zero tasks: construction and destruction must not hang on the
    // empty queue.
    {
        ThreadPool pool(3);
        EXPECT_EQ(pool.size(), 3u);
    }
    {
        ThreadPool pool(1);
        pool.parallelFor(0, 8, [](size_t, size_t) { FAIL(); });
    }
}

TEST(ThreadPoolTest, ManyMoreTasksThanThreads)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 500; ++i)
        futures.push_back(pool.submit(
            [&ran] { ran.fetch_add(1, std::memory_order_relaxed); }));
    for (auto &f : futures)
        f.get();
    EXPECT_EQ(ran.load(), 500);
}

TEST(ThreadPoolTest, PoolStaysUsableAfterManyThrowingTasks)
{
    ThreadPool pool(2);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 16; ++i)
        futures.push_back(pool.submit([i]() -> int {
            if (i % 2 == 0)
                throw UovUserError("task " + std::to_string(i));
            return i;
        }));
    for (int i = 0; i < 16; ++i) {
        if (i % 2 == 0)
            EXPECT_THROW(futures[static_cast<size_t>(i)].get(),
                         UovUserError);
        else
            EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i);
    }
    EXPECT_EQ(pool.submit([] { return 99; }).get(), 99);
}

TEST(ThreadPoolTest, DestructionDrainsPendingWork)
{
    // Queue far more work than the single worker can have started;
    // the destructor promises to drain the queue, so every task must
    // have run by the time the pool is gone.
    std::atomic<int> ran{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 200; ++i)
            pool.submit([&ran] {
                ran.fetch_add(1, std::memory_order_relaxed);
            });
        // No future.get(): destruction races task startup on purpose.
    }
    EXPECT_EQ(ran.load(), 200);
}

} // namespace
} // namespace uov
