#include "core/greedy.h"

#include "core/uov.h"
#include "support/error.h"

namespace uov {

GreedyResult
greedyUovSearch(const Stencil &stencil)
{
    UovOracle oracle(stencil);
    GreedyResult r;
    r.uov = stencil.initialUov();
    r.objective = r.uov.normSquared();

    bool improved = true;
    while (improved) {
        improved = false;

        // Move 1: divide out the content (e.g. (4,0) -> (2,0) when
        // still universal).
        int64_t g = r.uov.content();
        if (g > 1) {
            for (int64_t div = g; div >= 2; --div) {
                if (g % div != 0)
                    continue;
                IVec cand = r.uov.dividedBy(div);
                ++r.probes;
                if (oracle.isUov(cand) &&
                    cand.normSquared() < r.objective) {
                    r.uov = cand;
                    r.objective = cand.normSquared();
                    ++r.moves;
                    improved = true;
                    break;
                }
            }
            if (improved)
                continue;
        }

        // Move 2: subtract a stencil vector.
        for (const auto &v : stencil.deps()) {
            IVec cand = r.uov - v;
            if (cand.isZero())
                continue;
            ++r.probes;
            if (oracle.isUov(cand) && cand.normSquared() < r.objective) {
                r.uov = cand;
                r.objective = cand.normSquared();
                ++r.moves;
                improved = true;
                break;
            }
        }
    }
    UOV_CHECK(oracle.isUov(r.uov), "greedy result must stay universal");
    return r;
}

} // namespace uov
