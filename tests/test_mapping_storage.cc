/**
 * @file
 * Unit tests for StorageMapping: the paper's Section 4 requirements
 * (OV-invariance, integrality, consecutiveness), the worked mappings of
 * Figures 1(b) and 5, interleaved vs blocked layouts, and the
 * d-dimensional generalization.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/storage_count.h"
#include "mapping/storage_mapping.h"
#include "support/error.h"

namespace uov {
namespace {

/** All integer points of a 2-D box. */
std::vector<IVec>
boxPoints(int64_t x0, int64_t y0, int64_t x1, int64_t y1)
{
    std::vector<IVec> pts;
    for (int64_t x = x0; x <= x1; ++x)
        for (int64_t y = y0; y <= y1; ++y)
            pts.push_back(IVec{x, y});
    return pts;
}

TEST(StorageMapping, Figure1bSimpleExampleMapping)
{
    // Figure 1(b): ov = (1,1) over the (0..n) x (0..m) ISG (including
    // the boundary input nodes); SM(q) = (-1,1).q + n, n+m+1 cells.
    int64_t n = 6, m = 4;
    Polyhedron isg = Polyhedron::box(IVec{0, 0}, IVec{n, m});
    StorageMapping sm = StorageMapping::create(IVec{1, 1}, isg);

    EXPECT_EQ(sm.cellCount(), n + m + 1);
    EXPECT_EQ(sm.modClasses(), 1);
    for (const auto &q : boxPoints(0, 0, n, m))
        EXPECT_EQ(sm(q), -q[0] + q[1] + n) << q.str();
}

TEST(StorageMapping, Figure5InterleavedFivePoint)
{
    // Figure 5: ov = (2,0), interleaved: SM(q) = (0,2).q + (q_t mod 2).
    int64_t t_max = 9, len = 7;
    Polyhedron isg = Polyhedron::box(IVec{0, 0}, IVec{t_max, len});
    StorageMapping sm = StorageMapping::create(
        IVec{2, 0}, isg, ModLayout::Interleaved);

    EXPECT_EQ(sm.cellCount(), 2 * (len + 1));
    EXPECT_EQ(sm.modClasses(), 2);
    for (const auto &q : boxPoints(0, 0, t_max, len))
        EXPECT_EQ(sm(q), 2 * q[1] + (q[0] % 2)) << q.str();
}

TEST(StorageMapping, Figure5BlockedFivePoint)
{
    // Blocked layout: SM(q) = (0,1).q + (q_t mod 2) * (len+1).
    int64_t t_max = 9, len = 7;
    Polyhedron isg = Polyhedron::box(IVec{0, 0}, IVec{t_max, len});
    StorageMapping sm =
        StorageMapping::create(IVec{2, 0}, isg, ModLayout::Blocked);

    EXPECT_EQ(sm.cellCount(), 2 * (len + 1));
    for (const auto &q : boxPoints(0, 0, t_max, len))
        EXPECT_EQ(sm(q), q[1] + (q[0] % 2) * (len + 1)) << q.str();
}

TEST(StorageMapping, OvInvarianceRequirement)
{
    // Requirement 1 (Section 4.1): q and q + ov share a cell.
    Polyhedron isg = Polyhedron::box(IVec{0, 0}, IVec{12, 12});
    for (const IVec &ov :
         {IVec{1, 1}, IVec{2, 0}, IVec{2, 1}, IVec{3, -1}, IVec{2, 2},
          IVec{4, 6}}) {
        for (ModLayout layout :
             {ModLayout::Interleaved, ModLayout::Blocked}) {
            StorageMapping sm = StorageMapping::create(ov, isg, layout);
            for (const auto &q : boxPoints(0, 0, 6, 6))
                EXPECT_EQ(sm(q), sm(q + ov))
                    << ov.str() << " q=" << q.str();
        }
    }
}

TEST(StorageMapping, RangeWithinCellCount)
{
    // Requirements 2-3: integer results packed into [0, cells).
    Polyhedron isg = Polyhedron::box(IVec{0, 0}, IVec{10, 8});
    for (const IVec &ov :
         {IVec{1, 1}, IVec{2, 0}, IVec{2, 1}, IVec{1, -2}, IVec{3, 3}}) {
        for (ModLayout layout :
             {ModLayout::Interleaved, ModLayout::Blocked}) {
            StorageMapping sm = StorageMapping::create(ov, isg, layout);
            for (const auto &q : boxPoints(0, 0, 10, 8)) {
                int64_t i = sm(q);
                EXPECT_GE(i, 0) << ov.str() << " q=" << q.str();
                EXPECT_LT(i, sm.cellCount())
                    << ov.str() << " q=" << q.str();
            }
        }
    }
}

TEST(StorageMapping, ConsecutiveStorageForPaperCases)
{
    // For the paper's unit mapping vectors every cell is used.
    Polyhedron isg = Polyhedron::box(IVec{0, 0}, IVec{9, 9});
    for (const IVec &ov : {IVec{1, 1}, IVec{2, 0}, IVec{1, -1}}) {
        StorageMapping sm = StorageMapping::create(ov, isg);
        std::set<int64_t> used;
        for (const auto &q : boxPoints(0, 0, 9, 9))
            used.insert(sm(q));
        EXPECT_EQ(static_cast<int64_t>(used.size()), sm.cellCount())
            << ov.str();
        EXPECT_EQ(*used.begin(), 0) << ov.str();
        EXPECT_EQ(*used.rbegin(), sm.cellCount() - 1) << ov.str();
    }
}

TEST(StorageMapping, CellCountMatchesStorageCount)
{
    Polyhedron isg = Polyhedron::box(IVec{0, 0}, IVec{11, 7});
    for (const IVec &ov :
         {IVec{1, 1}, IVec{2, 0}, IVec{2, 1}, IVec{2, 2}, IVec{3, -2}}) {
        StorageMapping sm = StorageMapping::create(ov, isg);
        EXPECT_EQ(sm.cellCount(), storageCellCount(ov, isg)) << ov.str();
    }
}

TEST(StorageMapping, ThreeDimensionalMapping)
{
    Polyhedron isg = Polyhedron::box(IVec{0, 0, 0}, IVec{6, 5, 4});
    for (const IVec &ov : {IVec{2, 0, 0}, IVec{1, 1, 0}, IVec{1, 1, 1},
                           IVec{2, 2, 0}}) {
        StorageMapping sm = StorageMapping::create(ov, isg);
        EXPECT_EQ(sm.cellCount(), storageCellCount(ov, isg)) << ov.str();
        for (int64_t t = 0; t <= 3; ++t) {
            for (int64_t x = 0; x <= 3; ++x) {
                for (int64_t y = 0; y <= 3; ++y) {
                    IVec q{t, x, y};
                    EXPECT_EQ(sm(q), sm(q + ov))
                        << ov.str() << " q=" << q.str();
                    EXPECT_GE(sm(q), 0);
                    EXPECT_LT(sm(q), sm.cellCount());
                }
            }
        }
    }
}

TEST(StorageMapping, OneDimensionalMapping)
{
    // ov = (3) over a 1-D loop: 3 rotating cells.
    Polyhedron isg = Polyhedron::box(IVec{0}, IVec{20});
    StorageMapping sm = StorageMapping::create(IVec{3}, isg);
    EXPECT_EQ(sm.cellCount(), 3);
    for (int64_t i = 0; i <= 20; ++i) {
        EXPECT_EQ(sm(IVec{i}), i % 3);
    }
}

TEST(StorageMapping, BlockPaddingShiftsClassBlocks)
{
    int64_t t_max = 9, len = 7;
    Polyhedron isg = Polyhedron::box(IVec{0, 0}, IVec{t_max, len});
    StorageMapping padded = StorageMapping::create(
        IVec{2, 0}, isg, ModLayout::Blocked, /*block_pad=*/5);
    StorageMapping plain =
        StorageMapping::create(IVec{2, 0}, isg, ModLayout::Blocked);

    EXPECT_EQ(padded.cellCount(), plain.cellCount() + 2 * 5);
    EXPECT_EQ(padded.modFactor(), plain.modFactor() + 5);
    // Class 0 unchanged; class 1 shifted by the pad.
    EXPECT_EQ(padded(IVec{0, 3}), plain(IVec{0, 3}));
    EXPECT_EQ(padded(IVec{1, 3}), plain(IVec{1, 3}) + 5);
    // Still OV-invariant and in range.
    for (const auto &q : boxPoints(0, 0, 7, 7)) {
        EXPECT_EQ(padded(q), padded(q + IVec{2, 0}));
        EXPECT_GE(padded(q), 0);
        EXPECT_LT(padded(q), padded.cellCount());
    }
}

TEST(StorageMapping, PaddingIgnoredWhereMeaningless)
{
    Polyhedron isg = Polyhedron::box(IVec{0, 0}, IVec{9, 7});
    // Prime OV: no blocks to pad.
    StorageMapping prime = StorageMapping::create(
        IVec{1, 1}, isg, ModLayout::Blocked, 5);
    EXPECT_EQ(prime.cellCount(), 9 + 7 + 1);
    // Interleaved layout: classes are not contiguous blocks.
    StorageMapping inter = StorageMapping::create(
        IVec{2, 0}, isg, ModLayout::Interleaved, 5);
    EXPECT_EQ(inter.cellCount(), 2 * (7 + 1));
    EXPECT_THROW(StorageMapping::create(IVec{2, 0}, isg,
                                        ModLayout::Blocked, -1),
                 UovUserError);
}

TEST(StorageMapping, RejectsBadInput)
{
    Polyhedron isg = Polyhedron::box(IVec{0, 0}, IVec{5, 5});
    EXPECT_THROW(StorageMapping::create(IVec{0, 0}, isg), UovUserError);
    EXPECT_THROW(StorageMapping::create(IVec{1, 1, 1}, isg),
                 UovUserError);
}

TEST(StorageMapping, StrMentionsLayoutAndCells)
{
    Polyhedron isg = Polyhedron::box(IVec{0, 0}, IVec{9, 7});
    StorageMapping sm = StorageMapping::create(IVec{2, 0}, isg);
    std::string s = sm.str();
    EXPECT_NE(s.find("interleaved"), std::string::npos);
    EXPECT_NE(s.find("16 cells"), std::string::npos);
    EXPECT_NE(s.find("mod 2"), std::string::npos);
}

} // namespace
} // namespace uov
