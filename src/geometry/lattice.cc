#include "geometry/lattice.h"

#include "support/checked.h"
#include "support/error.h"

namespace uov {

ExtGcd
extGcd(int64_t a, int64_t b)
{
    // Iterative extended Euclid on (a, b); fix signs afterwards so the
    // reported gcd is non-negative.
    int64_t old_r = a, r = b;
    int64_t old_x = 1, x = 0;
    int64_t old_y = 0, y = 1;
    while (r != 0) {
        int64_t q = old_r / r;
        int64_t tmp;
        tmp = checkedSub(old_r, checkedMul(q, r));
        old_r = r;
        r = tmp;
        tmp = checkedSub(old_x, checkedMul(q, x));
        old_x = x;
        x = tmp;
        tmp = checkedSub(old_y, checkedMul(q, y));
        old_y = y;
        y = tmp;
    }
    if (old_r < 0) {
        old_r = checkedNeg(old_r);
        old_x = checkedNeg(old_x);
        old_y = checkedNeg(old_y);
    }
    return ExtGcd{old_r, old_x, old_y};
}

IVec
bezoutVector(const IVec &v)
{
    UOV_REQUIRE(!v.isZero(), "bezoutVector of zero vector");
    size_t d = v.dim();
    IVec alpha(d);

    // Fold coordinates left to right: maintain g = gcd(v[0..i]) and a
    // certificate alpha[0..i] with alpha . v[0..i] == g.
    int64_t g = 0;
    for (size_t i = 0; i < d; ++i) {
        if (v[i] == 0)
            continue;
        if (g == 0) {
            // First nonzero coordinate.
            g = checkedAbs(v[i]);
            alpha[i] = v[i] > 0 ? 1 : -1;
            continue;
        }
        ExtGcd e = extGcd(g, v[i]);
        // New certificate: (alpha * e.x) for seen coords, e.y here.
        for (size_t j = 0; j < i; ++j)
            alpha[j] = checkedMul(alpha[j], e.x);
        alpha[i] = e.y;
        g = e.g;
    }
    UOV_CHECK(alpha.dot(v) == v.content(), "bezoutVector certificate");
    return alpha;
}

IMatrix
unimodularCompletion(const IVec &v)
{
    UOV_REQUIRE(v.content() == 1,
                "unimodularCompletion requires a primitive vector, got "
                    << v.str() << " with content " << v.content());
    size_t d = v.dim();
    IMatrix u = IMatrix::identity(d);
    IVec w = v;

    // Zero out w[d-1] ... w[1] using 2x2 unimodular row transforms on
    // (U, w).  Invariant: U * v == w.
    for (size_t i = d - 1; i >= 1; --i) {
        int64_t a = w[i - 1];
        int64_t b = w[i];
        if (b == 0)
            continue;
        ExtGcd e = extGcd(a, b);
        UOV_CHECK(e.g > 0, "gcd positive");
        int64_t p = e.x, q = e.y;
        int64_t r = checkedNeg(b / e.g);
        int64_t s = a / e.g;
        // [p q; r s] has determinant p*s - q*r = (x*a + y*b)/g = 1.
        IMatrix t = IMatrix::identity(d);
        t(i - 1, i - 1) = p;
        t(i - 1, i) = q;
        t(i, i - 1) = r;
        t(i, i) = s;
        u = t * u;
        int64_t new_top = checkedAdd(checkedMul(p, a), checkedMul(q, b));
        int64_t new_bot = checkedAdd(checkedMul(r, a), checkedMul(s, b));
        w[i - 1] = new_top;
        w[i] = new_bot;
        UOV_CHECK(w[i] == 0, "transform zeroes trailing coordinate");
    }

    // After folding everything into w[0], primitivity gives w[0] = +-1.
    if (w[0] == -1) {
        IMatrix t = IMatrix::identity(d);
        t(0, 0) = -1;
        u = t * u;
        w[0] = 1;
    }
    UOV_CHECK(w[0] == 1, "completion folds to e0, got " << w.str());
    UOV_CHECK((u * v)[0] == 1, "U*v == e0 head");
    for (size_t i = 1; i < d; ++i)
        UOV_CHECK((u * v)[i] == 0, "U*v == e0 tail");
    UOV_CHECK(u.isUnimodular(), "completion is unimodular");
    return u;
}

int64_t
solveCongruence(int64_t a, int64_t c, int64_t m)
{
    UOV_REQUIRE(m > 0, "solveCongruence requires positive modulus");
    ExtGcd e = extGcd(a, m);
    UOV_REQUIRE(e.g != 0 && c % e.g == 0,
                "congruence " << a << "*x == " << c << " (mod " << m
                              << ") has no solution");
    // a*x == c (mod m)  with  a*e.x == g (mod m)  =>  x = e.x * (c/g).
    int64_t x = checkedMul(e.x, c / e.g);
    int64_t mg = m / e.g;
    (void)mg;
    return floorMod(x, m);
}

} // namespace uov
