/**
 * @file
 * Tests for protein string matching variants and the Figure 1 simple
 * example: identical scores across storage versions, Table 2 storage
 * formulas, and DP sanity properties.
 */

#include <gtest/gtest.h>

#include "core/uov.h"
#include "kernels/psm.h"
#include "kernels/simple.h"

namespace uov {
namespace {

int32_t
runNative(PsmVariant v, const PsmConfig &cfg)
{
    VirtualArena arena;
    NativeMem mem;
    return runPsm(v, cfg, mem, arena);
}

TEST(PsmKernel, AllVariantsAgree)
{
    PsmConfig cfg;
    cfg.n0 = 93;
    cfg.n1 = 121;
    cfg.tile_i = 17;
    cfg.tile_j = 31;
    int32_t reference = runNative(PsmVariant::Natural, cfg);
    for (PsmVariant v : allPsmVariants())
        EXPECT_EQ(runNative(v, cfg), reference) << psmVariantName(v);
}

class PsmSweep
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>>
{
};

TEST_P(PsmSweep, VariantsAgreeAcrossShapes)
{
    auto [n0, n1] = GetParam();
    PsmConfig cfg;
    cfg.n0 = n0;
    cfg.n1 = n1;
    cfg.tile_i = 8;
    cfg.tile_j = 13;
    int32_t reference = runNative(PsmVariant::Natural, cfg);
    for (PsmVariant v : allPsmVariants()) {
        EXPECT_EQ(runNative(v, cfg), reference)
            << psmVariantName(v) << " n0=" << n0 << " n1=" << n1;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PsmSweep,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(1, 9),
                      std::make_tuple(9, 1), std::make_tuple(16, 16),
                      std::make_tuple(33, 65), std::make_tuple(100, 7)));

TEST(PsmKernel, Table2StorageFormulas)
{
    int64_t n0 = 500, n1 = 700;
    EXPECT_EQ(psmTemporaryStorage(PsmVariant::Natural, n0, n1),
              n0 * n1 + n0 + n1);
    EXPECT_EQ(psmTemporaryStorage(PsmVariant::Ov, n0, n1),
              2 * n0 + 2 * n1 + 1);
    EXPECT_EQ(psmTemporaryStorage(PsmVariant::StorageOptimized, n0, n1),
              2 * n0 + 3);
}

TEST(PsmKernel, UovIsTheAntiDiagonal)
{
    EXPECT_TRUE(UovOracle(stencils::proteinMatching()).isUov(IVec{1, 1}));
}

TEST(PsmKernel, WeightTableSymmetricWithPositiveDiagonal)
{
    const auto &w = psmWeightTable();
    ASSERT_EQ(w.size(),
              static_cast<size_t>(kPsmAlphabet * kPsmAlphabet));
    for (int r = 0; r < kPsmAlphabet; ++r) {
        EXPECT_GE(w[r * kPsmAlphabet + r], 4);
        for (int c = 0; c < kPsmAlphabet; ++c)
            EXPECT_EQ(w[r * kPsmAlphabet + c], w[c * kPsmAlphabet + r]);
    }
}

TEST(PsmKernel, StringsDeterministicAndInAlphabet)
{
    auto s1 = psmString(64, 11);
    auto s2 = psmString(64, 11);
    EXPECT_EQ(s1, s2);
    for (uint8_t c : s1)
        EXPECT_LT(c, kPsmAlphabet);
    EXPECT_NE(psmString(64, 12), s1);
}

TEST(PsmKernel, IdenticalStringsScoreAtLeastMismatched)
{
    // Aligning a string against itself scores >= aligning against an
    // unrelated string (the diagonal weights dominate).
    PsmConfig cfg;
    cfg.n0 = cfg.n1 = 40;
    VirtualArena arena;
    NativeMem mem;
    int32_t mismatched = runPsm(PsmVariant::Natural, cfg, mem, arena);

    // Self-alignment via a tiny bespoke DP using the kernel pieces.
    auto s = psmString(40, 11);
    const auto &w = psmWeightTable();
    int32_t diag_sum = 0;
    for (uint8_t c : s)
        diag_sum += w[c * kPsmAlphabet + c];
    EXPECT_GE(diag_sum, mismatched);
}

TEST(PsmKernel, SimulatedRunMatchesNative)
{
    PsmConfig cfg;
    cfg.n0 = 48;
    cfg.n1 = 56;
    int32_t native = runNative(PsmVariant::OvTiled, cfg);
    VirtualArena arena;
    MemorySystem ms(MachineConfig::ultra2());
    SimMem sim{&ms};
    EXPECT_EQ(runPsm(PsmVariant::OvTiled, cfg, sim, arena), native);
    EXPECT_GT(ms.branches(), 0u); // the max() comparisons are counted
}

TEST(PsmKernel, BranchesPerIterationIsThree)
{
    PsmConfig cfg;
    cfg.n0 = 32;
    cfg.n1 = 32;
    VirtualArena arena;
    MemorySystem ms(MachineConfig::ultra2());
    SimMem sim{&ms};
    runPsm(PsmVariant::Natural, cfg, sim, arena);
    EXPECT_EQ(ms.branches(),
              static_cast<uint64_t>(3 * cfg.n0 * cfg.n1));
}

TEST(SimpleKernel, Figure1VariantsAgree)
{
    for (int64_t n : {1, 3, 8, 20}) {
        for (int64_t m : {1, 4, 9, 15}) {
            VirtualArena arena;
            NativeMem mem;
            int64_t a = runSimple(SimpleVariant::Natural, n, m, mem,
                                  arena);
            int64_t b = runSimple(SimpleVariant::OvMapped, n, m, mem,
                                  arena);
            int64_t c = runSimple(SimpleVariant::StorageOptimized, n, m,
                                  mem, arena);
            EXPECT_EQ(a, b) << n << "x" << m;
            EXPECT_EQ(a, c) << n << "x" << m;
        }
    }
}

TEST(SimpleKernel, Figure1StorageCaptions)
{
    int64_t n = 30, m = 20;
    EXPECT_EQ(simpleStorage(SimpleVariant::Natural, n, m), n * m);
    EXPECT_EQ(simpleStorage(SimpleVariant::OvMapped, n, m), n + m + 1);
    EXPECT_EQ(simpleStorage(SimpleVariant::StorageOptimized, n, m),
              m + 2);
}

TEST(SimpleKernel, VariantNames)
{
    EXPECT_STREQ(simpleVariantName(SimpleVariant::OvMapped),
                 "OV-Mapped");
}

} // namespace
} // namespace uov
