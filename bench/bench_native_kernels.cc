/**
 * @file
 * google-benchmark suite over the kernel variants on the host: the
 * wall-clock complement to the simulated-machine figure benches.  The
 * relative shapes (tiled OV-mapped competitive at large sizes; natural
 * degrading as its footprint explodes) are architecture-robust even
 * though the host is not a 1998 machine.
 *
 * --native-table switches to the codegen comparison instead: for each
 * config it plans the storage mapping, JIT-compiles the lexicographic
 * and register-tiled OV-mapped kernels (codegen/jit.h), verifies both
 * bit-exactly against interpretKernel, and prints an
 * interpreter-vs-native speedup table with a nodes-touched traffic
 * column (nodes x (reads+1) x 8 bytes, reported as GB and as the
 * register-tiled kernel's GB/s).  Skips with a message when no host C
 * compiler is available.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/pipeline.h"
#include "codegen/codegen.h"
#include "codegen/jit.h"
#include "kernels/psm.h"
#include "kernels/simple.h"
#include "kernels/stencil5.h"
#include "support/error.h"

using namespace uov;

namespace {

void
BM_Stencil5(benchmark::State &state)
{
    auto variant = static_cast<Stencil5Variant>(state.range(0));
    Stencil5Config cfg;
    cfg.length = state.range(1);
    cfg.steps = 8;
    cfg.tile_t = 8;
    cfg.tile_s = 2048;
    for (auto _ : state) {
        VirtualArena arena;
        NativeMem mem;
        benchmark::DoNotOptimize(runStencil5(variant, cfg, mem, arena));
    }
    state.SetItemsProcessed(state.iterations() * cfg.length *
                            cfg.steps);
    state.SetLabel(stencil5VariantName(variant));
}

void
BM_Psm(benchmark::State &state)
{
    auto variant = static_cast<PsmVariant>(state.range(0));
    PsmConfig cfg;
    cfg.n0 = cfg.n1 = state.range(1);
    cfg.tile_i = cfg.tile_j = 128;
    for (auto _ : state) {
        VirtualArena arena;
        NativeMem mem;
        benchmark::DoNotOptimize(runPsm(variant, cfg, mem, arena));
    }
    state.SetItemsProcessed(state.iterations() * cfg.n0 * cfg.n1);
    state.SetLabel(psmVariantName(variant));
}

void
BM_Simple(benchmark::State &state)
{
    auto variant = static_cast<SimpleVariant>(state.range(0));
    int64_t n = state.range(1);
    for (auto _ : state) {
        VirtualArena arena;
        NativeMem mem;
        benchmark::DoNotOptimize(
            runSimple(variant, n, n, mem, arena));
    }
    state.SetItemsProcessed(state.iterations() * n * n);
    state.SetLabel(simpleVariantName(variant));
}

void
registerAll()
{
    for (Stencil5Variant v : allStencil5Variants()) {
        for (int64_t len : {int64_t{4096}, int64_t{1048576}}) {
            benchmark::RegisterBenchmark("BM_Stencil5", BM_Stencil5)
                ->Args({static_cast<int64_t>(v), len})
                ->MinTime(0.05);
        }
    }
    for (PsmVariant v : allPsmVariants()) {
        for (int64_t n : {int64_t{128}, int64_t{1024}}) {
            benchmark::RegisterBenchmark("BM_Psm", BM_Psm)
                ->Args({static_cast<int64_t>(v), n})
                ->MinTime(0.05);
        }
    }
    for (SimpleVariant v :
         {SimpleVariant::Natural, SimpleVariant::OvMapped,
          SimpleVariant::StorageOptimized}) {
        benchmark::RegisterBenchmark("BM_Simple", BM_Simple)
            ->Args({static_cast<int64_t>(v), 512})
            ->MinTime(0.05);
    }
}

// --- --native-table: interpreter vs JIT-compiled kernels ----------

/** The 3-D heat nest, sized for benchmarking. */
LoopNest
heatNest3d(int64_t t_steps, int64_t n)
{
    LoopNest nest("heat", IVec{1, 0, 0}, IVec{t_steps, n - 1, n - 1});
    Statement s;
    s.name = "H";
    s.write = uniformAccess("H", IVec{0, 0, 0});
    s.reads = {uniformAccess("H", IVec{-1, 0, 0}),
               uniformAccess("H", IVec{-1, 1, 0}),
               uniformAccess("H", IVec{-1, -1, 0}),
               uniformAccess("H", IVec{-1, 0, 1}),
               uniformAccess("H", IVec{-1, 0, -1})};
    nest.addStatement(s);
    return nest;
}

/**
 * Best-of-3 wall-clock time of one @p fn invocation, in ns.  Each
 * sample repeats @p fn until ~2 ms have accumulated so sub-microsecond
 * kernels are still resolvable.
 */
template <typename Fn>
double
bestOfThreeNs(Fn &&fn)
{
    using Clock = std::chrono::steady_clock;
    constexpr int64_t kMinSampleNs = 2'000'000;
    fn(); // warm up (page in the kernel, fault the output buffer)
    double best = std::numeric_limits<double>::infinity();
    for (int sample = 0; sample < 3; ++sample) {
        int64_t reps = 0, elapsed = 0;
        auto start = Clock::now();
        do {
            fn();
            ++reps;
            elapsed = std::chrono::duration_cast<
                          std::chrono::nanoseconds>(Clock::now() -
                                                    start)
                          .count();
        } while (elapsed < kMinSampleNs);
        best = std::min(best,
                        static_cast<double>(elapsed) /
                            static_cast<double>(reps));
    }
    return best;
}

struct NativeRow
{
    std::string config;
    int64_t nodes = 0;
    double gb_touched = 0.0; ///< nodes x (reads+1) x 8 bytes, in GB
    std::string storage;
    int64_t unroll = 1, jam = 1;
    double interp_ns = 0, lex_ns = 0, rtile_ns = 0;
    bool verified = false;
};

NativeRow
runNativeConfig(const std::string &config_name, const LoopNest &nest,
                JitCompiler &jit)
{
    NativeRow row;
    row.config = config_name;
    const IVec &lo = nest.lo(), &hi = nest.hi();
    row.nodes = 1;
    for (size_t k = 0; k < lo.dim(); ++k)
        row.nodes *= hi[k] - lo[k] + 1;
    size_t reads = nest.statements()[0].reads.size();
    row.gb_touched = static_cast<double>(row.nodes) *
                     static_cast<double>(reads + 1) * 8.0 / 1e9;

    MappingPlan plan = planStorageMapping(nest, 0);
    GenStorage storage = plan.mapping.ov()[0] >= 1
                             ? GenStorage::OvMapped
                             : GenStorage::Expanded;
    row.storage = storage == GenStorage::OvMapped ? "ov" : "expanded";

    std::vector<double> ref = interpretKernel(nest);
    row.interp_ns = bestOfThreeNs([&] {
        std::vector<double> out = interpretKernel(nest);
        benchmark::DoNotOptimize(out.data());
    });

    std::vector<double> out(ref.size());
    auto timeVariant = [&](GenSchedule schedule,
                           const std::string &fn_name,
                           int64_t *unroll, int64_t *jam) {
        CodegenOptions opts;
        opts.schedule = schedule;
        opts.storage = storage;
        opts.function_name = fn_name;
        GeneratedCode code = generateC(nest, plan, opts);
        if (unroll)
            *unroll = code.unroll;
        if (jam)
            *jam = code.jam;
        JitKernel kernel = jit.compileAndLoad(code);
        auto fn = kernel.fn<void (*)(double *)>(code.function_name);
        fn(out.data());
        UOV_REQUIRE(out == ref, "native kernel '" + fn_name +
                                    "' disagrees with the interpreter "
                                    "on " + config_name);
        return bestOfThreeNs([&] { fn(out.data()); });
    };
    row.lex_ns = timeVariant(GenSchedule::Lexicographic,
                             "uov_bench_lex", nullptr, nullptr);
    row.rtile_ns = timeVariant(GenSchedule::RegisterTiled,
                               "uov_bench_rtile", &row.unroll,
                               &row.jam);
    row.verified = true;
    return row;
}

int
runNativeTable()
{
    if (!JitCompiler::hostCompilerAvailable()) {
        std::fprintf(stderr,
                     "bench_native_kernels: no host C compiler (set "
                     "UOV_CC or put cc/gcc/clang on PATH); skipping "
                     "--native-table\n");
        return 0;
    }
    JitCompiler jit;

    struct Config
    {
        std::string name;
        LoopNest nest;
    };
    std::vector<Config> configs;
    configs.push_back(
        Config{"stencil5_64x512", nests::fivePointStencil(64, 512)});
    configs.push_back(Config{"stencil5_128x2048",
                             nests::fivePointStencil(128, 2048)});
    configs.push_back(Config{"heat3d_16x64", heatNest3d(16, 64)});
    configs.push_back(Config{"heat3d_32x96", heatNest3d(32, 96)});

    std::printf("# interpreter vs JIT-compiled kernels "
                "(bit-exact verified; best-of-3 wall clock)\n");
    std::printf("# gb = nodes x (reads+1) x 8 bytes of node traffic; "
                "gb/s uses the register-tiled time\n");
    std::printf("%-18s %10s %8s %9s %6s %12s %12s %12s %8s %8s %8s\n",
                "config", "nodes", "gb", "storage", "UxJ",
                "interp_ns", "lex_ns", "rtile_ns", "lex_x",
                "rtile_x", "gb/s");
    for (const Config &c : configs) {
        NativeRow row = runNativeConfig(c.name, c.nest, jit);
        std::string uxj = std::to_string(row.unroll) + "x" +
                          std::to_string(row.jam);
        std::printf("%-18s %10lld %8.4f %9s %6s %12.0f %12.0f %12.0f "
                    "%8.2f %8.2f %8.2f\n",
                    row.config.c_str(),
                    static_cast<long long>(row.nodes), row.gb_touched,
                    row.storage.c_str(), uxj.c_str(), row.interp_ns,
                    row.lex_ns, row.rtile_ns,
                    row.interp_ns / row.lex_ns,
                    row.interp_ns / row.rtile_ns,
                    row.gb_touched * 1e9 / row.rtile_ns);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--native-table") == 0) {
            try {
                return runNativeTable();
            } catch (const UovError &e) {
                std::fprintf(stderr, "bench_native_kernels: %s\n",
                             e.what());
                return 1;
            }
        }
    }
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
