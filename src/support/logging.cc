#include "support/logging.h"

#include <chrono>

#include "support/json.h"

namespace uov {

Logger &
Logger::instance()
{
    static Logger logger;
    return logger;
}

void
Logger::write(LogLevel lvl, const std::string &msg)
{
    if (!_sink)
        return;
    if (!_json) {
        *_sink << "[uov:" << logLevelName(lvl) << "] " << msg << "\n";
        return;
    }
    // Millisecond offset from the first JSON-mode line: stable across
    // machines (no wall-clock parsing) and still orders the stream.
    static const auto t0 = std::chrono::steady_clock::now();
    auto ts = std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    *_sink << "{\"ts\":" << ts << ",\"level\":\"" << logLevelName(lvl)
           << "\",\"msg\":\"" << jsonEscape(msg) << "\"}\n";
}

const char *
logLevelName(LogLevel lvl)
{
    switch (lvl) {
      case LogLevel::Error: return "error";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Info:  return "info";
      case LogLevel::Debug: return "debug";
    }
    return "?";
}

} // namespace uov
