#include "schedule/ov_legality.h"

#include <unordered_map>

#include "support/error.h"

namespace uov {

bool
ovLegalForSchedule(const Schedule &schedule, const IVec &lo,
                   const IVec &hi, const IVec &ov,
                   const Stencil &stencil)
{
    UOV_REQUIRE(!ov.isZero(), "zero occupancy vector");
    UOV_REQUIRE(lo.dim() == stencil.dim() && ov.dim() == stencil.dim(),
                "dimension mismatch");

    std::unordered_map<IVec, uint64_t, IVecHash> position;
    uint64_t counter = 0;
    schedule.forEach(lo, hi, [&](const IVec &q) {
        position.emplace(q, counter++);
    });

    auto in_box = [&](const IVec &p) {
        for (size_t c = 0; c < p.dim(); ++c)
            if (p[c] < lo[c] || p[c] > hi[c])
                return false;
        return true;
    };

    for (const auto &[p, pos_p] : position) {
        IVec overwriter = p + ov;
        auto it = position.find(overwriter);
        if (it == position.end())
            continue; // p's cell is never reused inside the box
        uint64_t pos_w = it->second;
        for (const auto &v : stencil.deps()) {
            IVec consumer = p + v;
            if (consumer == overwriter)
                continue; // reads precede the write in one iteration
            if (!in_box(consumer))
                continue;
            auto cit = position.find(consumer);
            UOV_CHECK(cit != position.end(),
                      "schedule skipped point " << consumer.str());
            if (cit->second > pos_w)
                return false; // consumer after overwrite: clobber
        }
    }
    return true;
}

} // namespace uov
