/**
 * @file
 * Reproduces Figures 9-11: 5-point stencil cycles per iteration over
 * a length sweep, all seven code versions, on the three simulated
 * testbeds.
 *
 * Testbed substitution notes (DESIGN.md): physical memory is set to
 * 8 / 16 / 32 MiB (PPro / Ultra2 / Alpha) so that the paper's
 * "falls out of memory" regime -- natural first, OV-mapped much
 * later, storage-optimized last -- appears inside a sweep that
 * simulates in seconds.  Tiled variants tile for L1 (two rows of
 * tile_s floats ~ L1 size).  The expected shape:
 *   - in-cache sizes: all versions close;
 *   - past L2: untiled versions pay memory latency, OV-tiled stays
 *     low;
 *   - past memory: natural skyrockets first, then OV-untiled; the
 *     storage-optimized and tiled-OV versions survive longest.
 *
 * Execution pipeline (streaming + shared thread pool): every sweep
 * point is an independent task on the shared pool, and each task
 * streams one kernel pass into all machines that observe the same
 * address stream (untiled variants fuse all three; tiled variants
 * group machines by L1-derived tile size).  No trace is materialized
 * and no kernel pass is repeated per machine.  The MEvents/s column
 * is the aggregate simulation throughput for that row's runs (events
 * summed across machines / task wall time summed, i.e. per-core).
 */

#include "bench_common.h"

#include <numeric>

#include "kernels/stencil5.h"

using namespace uov;

namespace {

Stencil5Config
configFor(const MachineConfig &machine, int64_t len, int64_t steps)
{
    Stencil5Config cfg;
    cfg.length = len;
    cfg.steps = steps;
    cfg.tile_t = steps;
    // Tile for L1: 2 rows of tile_s floats ~ L1 capacity.
    cfg.tile_s = std::max<int64_t>(64, machine.l1.size_bytes / (4 * 2));
    return cfg;
}

/**
 * Machines that may share one fused kernel pass: all of them for
 * untiled variants; same-tile_s machines for tiled ones.
 */
std::vector<std::vector<size_t>>
machineGroups(const std::vector<MachineConfig> &machines,
              Stencil5Variant v, int64_t len, int64_t steps)
{
    if (!stencil5VariantTiled(v)) {
        std::vector<size_t> all(machines.size());
        std::iota(all.begin(), all.end(), size_t{0});
        return {all};
    }
    std::vector<std::vector<size_t>> groups;
    std::vector<int64_t> keys;
    for (size_t i = 0; i < machines.size(); ++i) {
        int64_t key = configFor(machines[i], len, steps).tile_s;
        size_t g = 0;
        while (g < keys.size() && keys[g] != key)
            ++g;
        if (g == keys.size()) {
            keys.push_back(key);
            groups.emplace_back();
        }
        groups[g].push_back(i);
    }
    return groups;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseArgs(argc, argv);
    bench::banner("Figures 9-11 (5-point stencil scaling across "
                  "lengths, 3 machines)");

    std::vector<int64_t> lengths = {1000, 10000, 100000, 300000,
                                    1000000, 2000000};
    if (opt.quick)
        lengths = {1000, 10000, 100000};
    const int64_t steps = 8;

    auto machines = bench::paperMachines();
    machines[0].memory_bytes = 8ll << 20;  // PentiumPro
    machines[1].memory_bytes = 16ll << 20; // Ultra2
    machines[2].memory_bytes = 32ll << 20; // Alpha

    const auto &variants = allStencil5Variants();

    // Dispatch every (length, variant, machine-group) as a pool task.
    struct Meta
    {
        size_t li, vi;
    };
    std::vector<Meta> metas;
    std::vector<std::future<bench::FusedRun>> futures;
    for (size_t li = 0; li < lengths.size(); ++li) {
        for (size_t vi = 0; vi < variants.size(); ++vi) {
            Stencil5Variant v = variants[vi];
            for (auto &group :
                 machineGroups(machines, v, lengths[li], steps)) {
                Stencil5Config cfg =
                    configFor(machines[group[0]], lengths[li], steps);
                metas.push_back({li, vi});
                futures.push_back(ThreadPool::shared().submit(
                    [&machines, group, cfg, v] {
                        return bench::runFusedGroup(
                            machines, group,
                            [&](StreamingSim &mem, VirtualArena &arena) {
                                runStencil5(v, cfg, mem, arena);
                            });
                    }));
            }
        }
    }

    // cycles[machine][length][variant]
    std::vector<std::vector<std::vector<double>>> cycles(
        machines.size(),
        std::vector<std::vector<double>>(
            lengths.size(), std::vector<double>(variants.size(), 0)));
    std::vector<double> row_events(lengths.size(), 0);
    std::vector<double> row_ns(lengths.size(), 0);
    for (size_t t = 0; t < futures.size(); ++t) {
        bench::FusedRun r = futures[t].get();
        for (size_t k = 0; k < r.machines.size(); ++k)
            cycles[r.machines[k]][metas[t].li][metas[t].vi] =
                r.cycles[k];
        row_events[metas[t].li] += static_cast<double>(r.events);
        row_ns[metas[t].li] += r.wall_ns;
    }

    for (size_t mi = 0; mi < machines.size(); ++mi) {
        const auto &machine = machines[mi];
        Table t("Figure " +
                std::string(machine.name == "PentiumPro-200" ? "9"
                            : machine.name == "Ultra2-200"   ? "10"
                                                             : "11") +
                ": cycles/iteration on " + machine.name + " (T=" +
                std::to_string(steps) + ", memory " +
                std::to_string(machine.memory_bytes >> 20) + " MiB)");
        std::vector<std::string> header = {"Length"};
        for (Stencil5Variant v : variants)
            header.push_back(stencil5VariantName(v));
        header.push_back(bench::kThroughputHeader);
        t.header(header);

        for (size_t li = 0; li < lengths.size(); ++li) {
            double iters = static_cast<double>(lengths[li]) *
                           static_cast<double>(steps);
            auto row = t.addRow();
            row.cell(formatCount(lengths[li]));
            for (size_t vi = 0; vi < variants.size(); ++vi)
                row.cell(cycles[mi][li][vi] / iters, 1);
            row.cell(bench::mEventsPerSec(row_events[li], row_ns[li]),
                     2);
        }
        bench::emit(t, opt);
    }

    // Shape assertions matching the paper's story at the largest size
    // (read off the fused results; tile_s there equals L1/8 floats,
    // the same tile the table rows use).
    {
        auto vi = [&](Stencil5Variant v) {
            for (size_t i = 0; i < variants.size(); ++i)
                if (variants[i] == v)
                    return i;
            return size_t{0};
        };
        size_t last = lengths.size() - 1;
        double iters = static_cast<double>(lengths[last]) *
                       static_cast<double>(steps);
        double natural =
            cycles[0][last][vi(Stencil5Variant::Natural)] / iters;
        double ov_tiled =
            cycles[0][last][vi(Stencil5Variant::OvTiled)] / iters;
        double opt_v =
            cycles[0][last][vi(Stencil5Variant::StorageOptimized)] /
            iters;
        std::cerr << "shape check @ L=" << formatCount(lengths[last])
                  << " on " << machines[0].name << ": natural="
                  << formatDouble(natural, 1)
                  << " >> ov_tiled=" << formatDouble(ov_tiled, 1)
                  << " ~ storage_optimized=" << formatDouble(opt_v, 1)
                  << " -> "
                  << (natural > 2 * ov_tiled ? "reproduced"
                                             : "NOT reproduced")
                  << "\n";
    }
    return 0;
}
