/**
 * @file
 * Tests for trace recording and replay: record-once/replay-anywhere
 * equivalence with direct simulation, footprint accounting, and the
 * Table 1 storage story read off real address streams.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "kernels/psm.h"
#include "kernels/stencil5.h"
#include "sim/trace.h"

namespace uov {
namespace {

TEST(TraceModel, CountsAndFootprint)
{
    Trace t;
    t.record(TraceEvent::Kind::Load, 0);
    t.record(TraceEvent::Kind::Load, 8);
    t.record(TraceEvent::Kind::Store, 64);
    t.record(TraceEvent::Kind::Branch, 0);
    EXPECT_EQ(t.loadCount(), 2u);
    EXPECT_EQ(t.storeCount(), 1u);
    EXPECT_EQ(t.branchCount(), 1u);
    // Two 64-byte lines touched.
    EXPECT_EQ(t.footprintBytes(64), 128u);
    EXPECT_FALSE(t.summary().empty());
}

TEST(TraceModel, ReplayMatchesDirectSimulation)
{
    Stencil5Config cfg;
    cfg.length = 256;
    cfg.steps = 6;

    // Record once.
    Trace trace;
    double kernel_result;
    {
        VirtualArena arena;
        TracingMem mem{&trace, 0};
        kernel_result = runStencil5(Stencil5Variant::Ov, cfg, mem,
                                    arena);
    }
    EXPECT_GT(trace.size(), 0u);

    // Direct simulation with identical addresses.
    double direct_result;
    MemorySystem direct(MachineConfig::pentiumPro());
    {
        VirtualArena arena;
        SimMem mem{&direct};
        direct_result =
            runStencil5(Stencil5Variant::Ov, cfg, mem, arena);
    }
    EXPECT_EQ(kernel_result, direct_result);

    // Replay: identical access stream -> identical memory cycles
    // modulo the compute() hints the direct run adds.
    MemorySystem replayed(MachineConfig::pentiumPro());
    double replay_cycles = trace.replay(replayed);
    EXPECT_EQ(replayed.accesses(), direct.accesses());
    EXPECT_EQ(replayed.l1().misses(), direct.l1().misses());
    EXPECT_EQ(replayed.pageFaults(), direct.pageFaults());
    double compute = 3.0 * (cfg.length - 4) * cfg.steps;
    EXPECT_NEAR(replay_cycles + compute, direct.cycles(), 1.0);
}

TEST(TraceModel, ReplayAcrossMachinesWithoutRerunningKernel)
{
    Stencil5Config cfg;
    cfg.length = 512;
    cfg.steps = 4;
    Trace trace;
    {
        VirtualArena arena;
        TracingMem mem{&trace, 0};
        runStencil5(Stencil5Variant::Natural, cfg, mem, arena);
    }
    double prev = 0;
    for (const MachineConfig &m :
         {MachineConfig::pentiumPro(), MachineConfig::ultra2(),
          MachineConfig::alpha21164()}) {
        MemorySystem ms(m);
        double c = trace.replay(ms);
        EXPECT_GT(c, 0.0) << m.name;
        EXPECT_NE(c, prev) << m.name; // machines differ
        prev = c;
    }
}

TEST(TraceModel, InterleavedAndBlockedAddressSignatures)
{
    // The two Figure 5 layouts must be visible in the raw address
    // streams: blocked writes march in 4-byte steps within a row,
    // interleaved writes in 8-byte steps (two floats per element).
    Stencil5Config cfg;
    cfg.length = 64;
    cfg.steps = 2;
    auto write_stride = [&](Stencil5Variant v) {
        Trace t;
        VirtualArena arena;
        TracingMem mem{&t, 0};
        runStencil5(v, cfg, mem, arena);
        // Find two consecutive interior stores and report their gap.
        uint64_t prev = 0;
        std::vector<uint64_t> gaps;
        for (const auto &e : t.events()) {
            if (e.kind != TraceEvent::Kind::Store)
                continue;
            if (prev != 0 && e.addr > prev)
                gaps.push_back(e.addr - prev);
            prev = e.addr;
        }
        // The dominant gap.
        std::sort(gaps.begin(), gaps.end());
        return gaps[gaps.size() / 2];
    };
    EXPECT_EQ(write_stride(Stencil5Variant::Ov), 4u);
    EXPECT_EQ(write_stride(Stencil5Variant::OvInterleaved), 8u);
}

TEST(TraceModel, PsmTraceCountsBranchesAndTableLoads)
{
    PsmConfig cfg;
    cfg.n0 = 16;
    cfg.n1 = 20;
    Trace t;
    VirtualArena arena;
    TracingMem mem{&t, 0};
    runPsm(PsmVariant::Natural, cfg, mem, arena);
    EXPECT_EQ(t.branchCount(),
              static_cast<uint64_t>(3 * cfg.n0 * cfg.n1));
    // Loads per iteration: 2 string chars + 1 weight + 4 dp reads.
    EXPECT_GE(t.loadCount(),
              static_cast<uint64_t>(7 * cfg.n0 * cfg.n1));
}

TEST(TraceModel, FootprintsTellTheTable1Story)
{
    Stencil5Config cfg;
    cfg.length = 1024;
    cfg.steps = 8;
    auto footprint = [&](Stencil5Variant v) {
        Trace t;
        VirtualArena arena;
        TracingMem mem{&t, 0};
        runStencil5(v, cfg, mem, arena);
        return t.footprintBytes(4); // element-granular
    };
    uint64_t natural = footprint(Stencil5Variant::Natural);
    uint64_t ov = footprint(Stencil5Variant::Ov);
    uint64_t opt = footprint(Stencil5Variant::StorageOptimized);
    // Natural ~ (T+1)L floats; OV ~ 2L; optimized ~ L.
    EXPECT_GT(natural, 3 * ov);
    EXPECT_GT(ov, opt);
    EXPECT_NEAR(static_cast<double>(ov) / (2 * 1024 * 4), 1.0, 0.05);
}

} // namespace
} // namespace uov
