/**
 * @file
 * 3-D extension kernel: a 2-D heat (5-point Jacobi) stencil stepped
 * through time -- the (t, x, y) iteration space the paper's machinery
 * generalizes to.
 *
 * Dependence stencil {(1,0,0), (1,±1,0), (1,0,±1)}; the shortest UOV
 * is (2,0,0) (two planes of storage, found by the same search that
 * yields (2,0) in 2-D).  Variants:
 *
 *   Natural           (T+1) x N x M array
 *   NaturalTiled      same storage, time-skewed 3-D tiling
 *   Ov                two N x M planes, A[(t mod 2)][x][y]
 *   OvTiled           time-skewed tiling over the two planes
 *   StorageOptimized  in-place plane + two row buffers
 *                     (N*M + 2*M cells, schedule-locked)
 *
 * All variants produce bit-identical results.
 */

#ifndef UOV_KERNELS_HEAT3D_H
#define UOV_KERNELS_HEAT3D_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/memory_policy.h"
#include "support/error.h"
#include "support/rng.h"

namespace uov {

enum class Heat3DVariant
{
    Natural,
    NaturalTiled,
    Ov,
    OvTiled,
    StorageOptimized,
};

const std::vector<Heat3DVariant> &allHeat3DVariants();
const char *heat3DVariantName(Heat3DVariant v);

struct Heat3DConfig
{
    int64_t nx = 64;   ///< N
    int64_t ny = 64;   ///< M
    int64_t steps = 8; ///< T
    int64_t tile_t = 4;
    int64_t tile_x = 32;
    int64_t tile_y = 32;
};

/** Temporary-storage cells per variant. */
int64_t heat3DTemporaryStorage(Heat3DVariant v, const Heat3DConfig &cfg);

/** Deterministic initial plane. */
std::vector<float> heat3DInput(int64_t nx, int64_t ny,
                               uint64_t seed = 5);

namespace detail {

inline constexpr float kHW0 = 0.5f;  // centre
inline constexpr float kHW1 = 0.125f; // each neighbour

/** Time-skewed 3-D tiling driver: body(t, x, y) in tile order. */
template <typename Body>
void
forEachSkewTiled3D(const Heat3DConfig &cfg, Body body)
{
    // Skew u = x + t, w = y + t: all dependences become
    // component-wise non-negative, so rectangular tiles in (t, u, w)
    // executed lexicographically are legal.
    const int64_t u_min = 1, u_max = cfg.steps + cfg.nx - 1;
    const int64_t w_min = 1, w_max = cfg.steps + cfg.ny - 1;
    for (int64_t tb = 1; tb <= cfg.steps; tb += cfg.tile_t) {
        for (int64_t ub = u_min; ub <= u_max; ub += cfg.tile_x) {
            for (int64_t wb = w_min; wb <= w_max; wb += cfg.tile_y) {
                int64_t t_end = std::min(tb + cfg.tile_t - 1, cfg.steps);
                for (int64_t t = tb; t <= t_end; ++t) {
                    int64_t u_lo = std::max(ub, t);
                    int64_t u_hi =
                        std::min(ub + cfg.tile_x - 1, t + cfg.nx - 1);
                    for (int64_t u = u_lo; u <= u_hi; ++u) {
                        int64_t w_lo = std::max(wb, t);
                        int64_t w_hi = std::min(wb + cfg.tile_y - 1,
                                                t + cfg.ny - 1);
                        for (int64_t w = w_lo; w <= w_hi; ++w)
                            body(t, u - t, w - t);
                    }
                }
            }
        }
    }
}

} // namespace detail

/** Run one variant; returns the sum of the final plane. */
template <typename Mem>
double
runHeat3D(Heat3DVariant variant, const Heat3DConfig &cfg, Mem &mem,
          VirtualArena &arena)
{
    using detail::kHW0;
    using detail::kHW1;
    const int64_t nx = cfg.nx, ny = cfg.ny, steps = cfg.steps;
    UOV_REQUIRE(nx >= 4 && ny >= 4, "heat3d needs nx, ny >= 4");
    UOV_REQUIRE(steps >= 1, "heat3d needs steps >= 1");

    std::vector<float> input = heat3DInput(nx, ny);

    auto plane_sum = [&](auto load_final) {
        double acc = 0;
        for (int64_t x = 0; x < nx; ++x)
            for (int64_t y = 0; y < ny; ++y)
                acc += load_final(x, y);
        return acc;
    };

    switch (variant) {
      case Heat3DVariant::Natural:
      case Heat3DVariant::NaturalTiled: {
        SimBuffer<float> a(
            arena, static_cast<size_t>((steps + 1) * nx * ny));
        for (int64_t i = 0; i < nx * ny; ++i)
            a.data()[i] = input[static_cast<size_t>(i)];
        auto at = [nx, ny](int64_t t, int64_t x, int64_t y) {
            return static_cast<size_t>((t * nx + x) * ny + y);
        };
        auto point = [&](int64_t t, int64_t x, int64_t y) {
            float v;
            if (x >= 1 && x < nx - 1 && y >= 1 && y < ny - 1) {
                v = kHW0 * mem.load(a, at(t - 1, x, y)) +
                    kHW1 * (mem.load(a, at(t - 1, x - 1, y)) +
                            mem.load(a, at(t - 1, x + 1, y)) +
                            mem.load(a, at(t - 1, x, y - 1)) +
                            mem.load(a, at(t - 1, x, y + 1)));
                mem.compute(4.0);
            } else {
                v = mem.load(a, at(t - 1, x, y));
            }
            mem.store(a, at(t, x, y), v);
        };
        if (variant == Heat3DVariant::Natural) {
            for (int64_t t = 1; t <= steps; ++t)
                for (int64_t x = 0; x < nx; ++x)
                    for (int64_t y = 0; y < ny; ++y)
                        point(t, x, y);
        } else {
            detail::forEachSkewTiled3D(cfg, point);
        }
        return plane_sum([&](int64_t x, int64_t y) {
            return mem.load(a, at(steps, x, y));
        });
      }

      case Heat3DVariant::Ov:
      case Heat3DVariant::OvTiled: {
        // UOV (2,0,0): two planes.
        SimBuffer<float> a(arena, static_cast<size_t>(2 * nx * ny));
        for (int64_t i = 0; i < nx * ny; ++i)
            a.data()[i] = input[static_cast<size_t>(i)];
        auto at = [nx, ny](int64_t t, int64_t x, int64_t y) {
            return static_cast<size_t>(((t & 1) * nx + x) * ny + y);
        };
        auto point = [&](int64_t t, int64_t x, int64_t y) {
            float v;
            if (x >= 1 && x < nx - 1 && y >= 1 && y < ny - 1) {
                v = kHW0 * mem.load(a, at(t - 1, x, y)) +
                    kHW1 * (mem.load(a, at(t - 1, x - 1, y)) +
                            mem.load(a, at(t - 1, x + 1, y)) +
                            mem.load(a, at(t - 1, x, y - 1)) +
                            mem.load(a, at(t - 1, x, y + 1)));
                mem.compute(4.0);
            } else {
                v = mem.load(a, at(t - 1, x, y));
            }
            mem.store(a, at(t, x, y), v);
        };
        if (variant == Heat3DVariant::Ov) {
            for (int64_t t = 1; t <= steps; ++t)
                for (int64_t x = 0; x < nx; ++x)
                    for (int64_t y = 0; y < ny; ++y)
                        point(t, x, y);
        } else {
            detail::forEachSkewTiled3D(cfg, point);
        }
        return plane_sum([&](int64_t x, int64_t y) {
            return mem.load(a, at(steps, x, y));
        });
      }

      case Heat3DVariant::StorageOptimized: {
        // In-place plane with a one-row history buffer: when updating
        // row x, `prev_row` holds the t-1 values of row x-1 and
        // `cur_row` buffers row x before overwrite.  N*M + 2*M cells
        // (+ scalars); the in-place writes lock the schedule.
        SimBuffer<float> a(arena, static_cast<size_t>(nx * ny));
        SimBuffer<float> prev_row(arena, static_cast<size_t>(ny));
        SimBuffer<float> cur_row(arena, static_cast<size_t>(ny));
        for (int64_t i = 0; i < nx * ny; ++i)
            a.data()[i] = input[static_cast<size_t>(i)];
        auto at = [ny](int64_t x, int64_t y) {
            return static_cast<size_t>(x * ny + y);
        };
        for (int64_t t = 1; t <= steps; ++t) {
            for (int64_t y = 0; y < ny; ++y)
                mem.store(prev_row, static_cast<size_t>(y),
                          mem.load(a, at(0, y)));
            for (int64_t x = 1; x < nx - 1; ++x) {
                for (int64_t y = 0; y < ny; ++y)
                    mem.store(cur_row, static_cast<size_t>(y),
                              mem.load(a, at(x, y)));
                for (int64_t y = 1; y < ny - 1; ++y) {
                    float v =
                        kHW0 * mem.load(cur_row,
                                        static_cast<size_t>(y)) +
                        kHW1 *
                            (mem.load(prev_row,
                                      static_cast<size_t>(y)) +
                             mem.load(a, at(x + 1, y)) +
                             mem.load(cur_row,
                                      static_cast<size_t>(y - 1)) +
                             mem.load(cur_row,
                                      static_cast<size_t>(y + 1)));
                    mem.compute(4.0);
                    mem.store(a, at(x, y), v);
                }
                for (int64_t y = 0; y < ny; ++y)
                    mem.store(prev_row, static_cast<size_t>(y),
                              mem.load(cur_row,
                                       static_cast<size_t>(y)));
            }
        }
        return plane_sum([&](int64_t x, int64_t y) {
            return mem.load(a, at(x, y));
        });
      }
    }
    UOV_UNREACHABLE("bad heat3d variant");
}

} // namespace uov

#endif // UOV_KERNELS_HEAT3D_H
