#include "tune/tune.h"

#include <algorithm>
#include <chrono>

#include "analysis/dependence.h"
#include "core/uov.h"
#include "schedule/legality.h"
#include "support/error.h"
#include "support/trace.h"

namespace uov {

LoopNest
nestFromStencil(const Stencil &stencil, const IVec &lo, const IVec &hi,
                const std::string &name)
{
    size_t d = stencil.dim();
    UOV_REQUIRE(lo.dim() == d && hi.dim() == d,
                "nestFromStencil: bounds rank " << lo.dim()
                    << " does not match stencil rank " << d);
    LoopNest nest(name, lo, hi);
    Statement st;
    st.name = "N";
    st.write = uniformAccess("N", IVec(d));
    for (const IVec &dep : stencil.deps()) {
        std::vector<int64_t> off(d);
        for (size_t k = 0; k < d; ++k)
            off[k] = -dep[k];
        st.reads.push_back(uniformAccess("N", IVec(std::move(off))));
    }
    nest.addStatement(st);
    return nest;
}

namespace tune {

namespace {

/** The register-tiling factor grid (legality-filtered later). */
constexpr int64_t kUnrollGrid[] = {1, 2, 4, 8, 16};
constexpr int64_t kJamGrid[] = {1, 2, 4};
constexpr int64_t kMaxCopies = 32;

/** The skewed-tiling size grid for 2-D stencils. */
constexpr int64_t kTileGrid[][2] = {
    {4, 16}, {8, 32}, {16, 64}, {32, 128}};

/**
 * Legal schedule compositions for @p stencil, deterministic order,
 * lex first.  @p lowerable_only drops simulator-only compositions
 * (loop permutations the C emitter cannot lower).
 */
std::vector<ScheduleBuilder>
enumerateSchedules(const Stencil &stencil, bool lowerable_only)
{
    size_t d = stencil.dim();
    std::vector<ScheduleBuilder> specs;
    auto push = [&](const ScheduleBuilder &b) {
        for (const ScheduleBuilder &seen : specs)
            if (seen == b)
                return;
        specs.push_back(b);
    };

    specs.emplace_back(d); // the original lexicographic order

    for (int64_t u : kUnrollGrid)
        for (int64_t j : kJamGrid) {
            if (u == 1 && j == 1)
                continue; // that is lex
            if (d < 2 && j > 1)
                continue;
            if (u * j > kMaxCopies)
                continue;
            ScheduleBuilder b(d);
            if (u > 1)
                b.unroll(u);
            if (j > 1)
                b.unrollJam(j);
            if (b.legal(stencil))
                push(b);
        }

    bool skewable = d == 2;
    for (const IVec &v : stencil.deps())
        skewable = skewable && v[0] > 0;
    if (skewable)
        for (const auto &sizes : kTileGrid) {
            ScheduleBuilder b(d);
            b.skewToNonNegative(stencil).tile({sizes[0], sizes[1]});
            if (b.legal(stencil))
                push(b);
        }

    if (!lowerable_only && d >= 2 && d <= 4) {
        std::vector<size_t> perm(d);
        for (size_t k = 0; k < d; ++k)
            perm[k] = k;
        while (std::next_permutation(perm.begin(), perm.end())) {
            if (!permutationLegal(perm, stencil))
                continue;
            ScheduleBuilder b(d);
            b.reorder(perm);
            push(b);
        }
    }
    return specs;
}

} // namespace

Tuner::Tuner(LoopNest nest, TuneOptions options)
    : _nest(std::move(nest)), _options(std::move(options)),
      _stencil(extractStencil(_nest, 0))
{}

TuneResult
Tuner::run()
{
    TRACE_SPAN("tune.run");
    auto t_start = std::chrono::steady_clock::now();
    auto elapsed_us = [&] {
        return std::chrono::duration_cast<std::chrono::microseconds>(
                   std::chrono::steady_clock::now() - t_start)
            .count();
    };

    TuneResult result;
    _candidates.clear();
    _scores.clear();

    // (1) Plan once without searching: dependence analysis, regions,
    // and the ov_o-seeded mapping every candidate plan is copied from.
    PlanOptions popt;
    popt.layout = _options.layout;
    popt.use_initial_uov = true;
    MappingPlan base = planStorageMapping(_nest, 0, popt);

    // (2) Pool UOV candidates from budgeted searches (both always
    // return a certified vector, degrading to ov_o on expiry).
    auto search = [&](SearchObjective objective) {
        TRACE_SPAN("tune.uov_search");
        SearchOptions so;
        so.budget = _options.budget;
        if (objective == SearchObjective::BoundedStorage)
            so.isg = _nest.domain();
        BranchBoundSearch bb(_stencil, objective, so);
        return bb.run();
    };
    result.uov_shortest = search(SearchObjective::ShortestVector);
    result.uov_storage = search(SearchObjective::BoundedStorage);

    std::vector<IVec> pool;
    auto poolPush = [&](const IVec &uov) {
        for (const IVec &seen : pool)
            if (seen == uov)
                return;
        pool.push_back(uov);
    };
    poolPush(result.uov_shortest.best_uov);
    poolPush(result.uov_storage.best_uov);
    poolPush(_stencil.initialUov());

    // (3) Storage variants: one OV-mapped plan per pool vector whose
    // first component supports sound output copying (codegen's
    // ov[0] >= 1 rule), plus the expanded baseline.  The first
    // variant mirrors 'query native''s default plan so candidate 0
    // is exactly the default lexicographic kernel.
    struct Variant
    {
        GenStorage storage;
        std::shared_ptr<const MappingPlan> plan;
    };
    std::vector<Variant> variants;
    auto planFor = [&](const IVec &uov) {
        auto p = std::make_shared<MappingPlan>(base);
        if (!(uov == base.mapping.ov())) {
            p->mapping = StorageMapping::create(uov, _nest.domain(),
                                                _options.layout);
            p->search.best_uov = uov;
        }
        return p;
    };
    for (const IVec &uov : pool)
        if (uov[0] >= 1)
            variants.push_back({GenStorage::OvMapped, planFor(uov)});
    variants.push_back({GenStorage::Expanded,
                        std::make_shared<MappingPlan>(base)});

    // (4) The candidate space: variants x schedule compositions,
    // candidate 0 = (default storage, lex).
    std::vector<ScheduleBuilder> specs =
        enumerateSchedules(_stencil, _options.lowerable_only);
    for (const Variant &variant : variants)
        for (const ScheduleBuilder &spec : specs) {
            TuneCandidate cand;
            cand.schedule = spec;
            cand.storage = variant.storage;
            cand.plan = variant.plan;
            _candidates.push_back(std::move(cand));
        }
    result.candidates_total = _candidates.size();
    TRACE_COUNTER("tune.candidates", "count",
                  static_cast<int64_t>(_candidates.size()));

    // (5) Score in order until a budget axis expires.  Candidate 0
    // is evaluated before the first poll: the anytime floor.
    SimEvaluator default_eval;
    Evaluator *eval = _options.evaluator != nullptr
                          ? _options.evaluator
                          : &default_eval;
    TuneContext ctx(_nest, _stencil);
    auto exhausted = [&]() -> std::string {
        if (_options.budget.cancel.cancelled())
            return "cancelled";
        if (_options.budget.deadline.expired())
            return "deadline";
        if (_options.max_candidates != 0 &&
            result.evaluated >= _options.max_candidates)
            return "candidate-budget";
        return "";
    };
    for (size_t i = 0; i < _candidates.size(); ++i) {
        if (i > 0) {
            std::string why = exhausted();
            if (!why.empty()) {
                result.status = TuneStatus::Degraded;
                result.degraded_reason = why;
                break;
            }
        }
        TRACE_SPAN("tune.evaluate");
        double score = eval->score(ctx, _candidates[i]);
        _scores.push_back(score);
        ++result.evaluated;
        if (result.evaluated == 1 || score < result.best_score) {
            result.best = _candidates[i];
            result.best_score = score;
        }
        if (_options.on_candidate)
            _options.on_candidate(_candidates[i], score, i,
                                  elapsed_us());
    }

    // An exhausted UOV-search budget means the pool itself may be
    // missing better vectors: the answer is still certified, but not
    // provably optimal over the full joint space.
    if (result.status == TuneStatus::Optimal &&
        (result.uov_shortest.degraded() ||
         result.uov_storage.degraded())) {
        result.status = TuneStatus::Degraded;
        result.degraded_reason =
            result.uov_shortest.degraded()
                ? result.uov_shortest.degraded_reason
                : result.uov_storage.degraded_reason;
    }

    // Certify the winner: the pool is built from certified searches,
    // but the contract is re-checked with the exact oracle.
    if (result.best.storage == GenStorage::OvMapped) {
        UovOracle oracle(_stencil);
        UOV_CHECK(oracle.isUov(result.best.uov()),
                  "tuner produced an uncertified OV "
                      << result.best.uov().str());
    }
    result.elapsed_us = elapsed_us();
    TRACE_COUNTER("tune.evaluated", "count",
                  static_cast<int64_t>(result.evaluated));
    return result;
}

} // namespace tune
} // namespace uov
