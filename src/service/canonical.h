/**
 * @file
 * Stencil canonicalization for the UOV query service.
 *
 * Heavy query traffic repeats itself: the same dependence pattern
 * arrives shuffled, duplicated, or padded with implied dependences.
 * Canonicalization maps every member of such an equivalence class to
 * one representative so symmetric queries share a single search and a
 * single cache entry.
 *
 * Two normalization layers, both of which provably preserve the UOV
 * set *pointwise* (not merely up to isomorphism -- the cache returns
 * the stored vector verbatim, so nothing weaker suffices):
 *
 *  1. Presentation: dependence order and duplicates.  Stencil's
 *     constructor already sorts and dedups, so UOV(V) depends only on
 *     the dependence *set*.
 *
 *  2. Implied dependences.  Write C for the non-negative integer cone
 *     of V and recall UOV(V) = { w != 0 : w - v in C for all v in V }.
 *     A dependence r may be dropped when both
 *       (a) r in cone(V \ {r})            -- the cone is unchanged, and
 *       (b) some v_i in V \ {r} has v_i - r in C
 *                                          -- r's constraint is implied:
 *              w - r = (w - v_i) + (v_i - r) in C + C = C.
 *     Then UOV(V) = UOV(V \ {r}) pointwise.  Example: in
 *     {(1,0), (2,0), (3,0)}, (2,0) is removable ((3,0)-(2,0) = (1,0)).
 *     Condition (b) is essential: in {(2,0), (3,0), (5,0)} the vector
 *     (5,0) = (2,0)+(3,0) satisfies (a) but dropping it would admit
 *     w = (6,0), which is not universal for the full stencil because
 *     (6,0)-(5,0) = (1,0) is outside the numerical semigroup <2,3>.
 *
 * Because canonicalization only *removes* dependences, a certificate
 * for the canonical stencil is a certificate for the original (the
 * removed constraints are implied), and every objective value
 * (squared norm, storage cells over an ISG) is stencil-independent.
 * The service therefore answers every query from its canonical
 * representative; see DESIGN.md "Query service".
 */

#ifndef UOV_SERVICE_CANONICAL_H
#define UOV_SERVICE_CANONICAL_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/search.h"
#include "core/stencil.h"
#include "geometry/ivec.h"

namespace uov {
namespace service {

/**
 * The canonical representative of @p s: the deterministic fixpoint of
 * removing implied dependences (lex-smallest removable first).  The
 * result's dependence set is a subset of s.deps(); canonicalization
 * is idempotent.  Cone-membership queries whose search budget is
 * exhausted conservatively keep the dependence.
 */
Stencil canonicalizeStencil(const Stencil &s);

/**
 * A result-cache key: canonical dependence set, objective, (for
 * BoundedStorage) the ISG box, and the request deadline class.
 * Key-equal queries receive the identical answer -- the service
 * computes on the canonical stencil, and objectives/bounds are part
 * of the key.  The deadline is part of the key because a
 * deadline-degraded answer is only valid for queries with the same
 * budget: caching a 0 ms answer for an unbounded query would
 * silently pessimize it, and vice versa.
 */
struct CanonicalKey
{
    std::vector<IVec> deps; ///< canonical, sorted (Stencil order)
    SearchObjective objective = SearchObjective::ShortestVector;
    std::optional<IVec> isg_lo; ///< set iff objective == BoundedStorage
    std::optional<IVec> isg_hi;
    int64_t deadline_ms = -1;   ///< per-request budget; -1 = unbounded

    bool operator==(const CanonicalKey &o) const;

    size_t hash() const;

    /** Approximate heap footprint, for cache byte accounting. */
    size_t byteSize() const;

    std::string str() const;
};

struct CanonicalKeyHash
{
    size_t operator()(const CanonicalKey &k) const { return k.hash(); }
};

/** Build the cache key for an (already canonical) stencil. */
CanonicalKey makeKey(const Stencil &canonical, SearchObjective objective,
                     const std::optional<IVec> &isg_lo,
                     const std::optional<IVec> &isg_hi,
                     int64_t deadline_ms = -1);

} // namespace service
} // namespace uov

#endif // UOV_SERVICE_CANONICAL_H
