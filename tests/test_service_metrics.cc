/**
 * @file
 * Unit tests for the metrics registry: counter/gauge semantics, stable
 * references, power-of-two histogram buckets and quantile bounds, and
 * the deterministic (name-sorted) table and JSON renderings.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "service/metrics.h"

namespace uov {
namespace service {
namespace {

TEST(Metrics, CounterIncrements)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
}

TEST(Metrics, GaugeMovesBothWays)
{
    Gauge g;
    g.add(10);
    g.sub(3);
    EXPECT_EQ(g.value(), 7);
    g.set(-2);
    EXPECT_EQ(g.value(), -2);
}

TEST(Metrics, RegistryReturnsStableReferences)
{
    MetricsRegistry r;
    Counter &a = r.counter("service.requests");
    Counter &b = r.counter("service.requests");
    EXPECT_EQ(&a, &b);
    a.inc();
    EXPECT_EQ(b.value(), 1u);
    // Distinct names are distinct metrics; gauges and histograms
    // live in separate namespaces from counters.
    EXPECT_NE(&r.counter("other"), &a);
    EXPECT_EQ(&r.gauge("service.requests"),
              &r.gauge("service.requests"));
    EXPECT_EQ(&r.histogram("h"), &r.histogram("h"));
}

TEST(Metrics, HistogramBucketsByBitWidth)
{
    Histogram h;
    h.observe(0); // bucket 0
    h.observe(1); // bucket 1
    h.observe(2); // bucket 2
    h.observe(3); // bucket 2
    h.observe(1000); // bucket 10
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 1006u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 2u);
    EXPECT_EQ(h.bucketCount(10), 1u);
}

TEST(Metrics, HistogramQuantileUpperBounds)
{
    Histogram h;
    EXPECT_EQ(h.quantileUpperBound(0.5), 0u); // empty
    for (int i = 0; i < 99; ++i)
        h.observe(3); // bucket 2, upper bound 3
    h.observe(1 << 20); // one outlier in bucket 21
    EXPECT_EQ(h.quantileUpperBound(0.5), 3u);
    EXPECT_EQ(h.quantileUpperBound(0.99), 3u);
    EXPECT_EQ(h.quantileUpperBound(1.0), (uint64_t{1} << 21) - 1);
}

TEST(Metrics, PercentileOfEmptyHistogramIsZero)
{
    Histogram h;
    EXPECT_EQ(h.percentile(0.0), 0u);
    EXPECT_EQ(h.percentile(0.5), 0u);
    EXPECT_EQ(h.percentile(1.0), 0u);
}

TEST(Metrics, PercentileOfSingleValueReturnsBucketUpperBound)
{
    Histogram h;
    h.observe(100); // bucket 7: [64, 127]
    // One observation owns every rank; interpolation lands on the
    // bucket's upper bound at any q.
    EXPECT_EQ(h.percentile(0.0), 127u);
    EXPECT_EQ(h.percentile(0.5), 127u);
    EXPECT_EQ(h.percentile(1.0), 127u);
    // Zero lives in its own single-value bucket and reports exactly.
    Histogram z;
    z.observe(0);
    EXPECT_EQ(z.percentile(0.5), 0u);
}

TEST(Metrics, PercentileInterpolatesWithinOwningBucket)
{
    Histogram h;
    for (int i = 0; i < 4; ++i)
        h.observe(5); // bucket 3: [4, 7]
    // target rank r of 4 in-bucket observations -> 4 + (r/4) * 3.
    EXPECT_EQ(h.percentile(0.25), 4u);
    EXPECT_EQ(h.percentile(0.5), 5u);
    EXPECT_EQ(h.percentile(1.0), 7u);
}

TEST(Metrics, PercentileCrossesBucketsAtTheRightRank)
{
    Histogram h;
    for (int i = 0; i < 99; ++i)
        h.observe(3); // bucket 2: [2, 3]
    h.observe(1 << 20); // bucket 21
    EXPECT_LE(h.percentile(0.5), 3u);
    EXPECT_GE(h.percentile(0.5), 2u);
    EXPECT_EQ(h.percentile(0.99), 3u);
    EXPECT_EQ(h.percentile(1.0), (uint64_t{1} << 21) - 1);
}

TEST(Metrics, PercentileOverflowBucketSaturates)
{
    Histogram h;
    h.observe(~uint64_t{0}); // clamped into the last bucket
    EXPECT_EQ(h.percentile(0.5),
              (uint64_t{1} << (Histogram::kBuckets - 1)) - 1);
}

TEST(Metrics, TablePercentilesUseInterpolation)
{
    MetricsRegistry r;
    r.histogram("lat").observe(100);
    std::ostringstream oss;
    r.table().print(oss);
    std::string out = oss.str();
    EXPECT_NE(out.find("p50=127"), std::string::npos) << out;
    EXPECT_NE(out.find("p99=127"), std::string::npos) << out;
}

TEST(Metrics, TableIsNameSortedWithOneRowPerMetric)
{
    MetricsRegistry r;
    r.counter("zeta").inc(3);
    r.counter("alpha").inc(1);
    r.gauge("depth").set(5);
    r.histogram("lat").observe(7);

    Table t = r.table();
    EXPECT_EQ(t.rowCount(), 4u);
    std::ostringstream oss;
    t.print(oss);
    std::string out = oss.str();
    // Counters render name-sorted before gauges and histograms.
    EXPECT_LT(out.find("alpha"), out.find("zeta"));
    EXPECT_NE(out.find("counter"), std::string::npos);
    EXPECT_NE(out.find("gauge"), std::string::npos);
    EXPECT_NE(out.find("histogram"), std::string::npos);
    EXPECT_NE(out.find("count=1"), std::string::npos);
}

TEST(Metrics, JsonRendering)
{
    MetricsRegistry r;
    r.counter("service.requests").inc(12);
    r.gauge("service.queue_depth").set(-1);
    r.histogram("service.latency_us").observe(100);

    std::string json = r.json();
    EXPECT_NE(json.find("\"counters\":{\"service.requests\":12}"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"gauges\":{\"service.queue_depth\":-1}"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"service.latency_us\":{\"count\":1,\"sum\":"
                        "100,\"p50_le\":127,\"p99_le\":127}"),
              std::string::npos)
        << json;
}

TEST(Metrics, JsonEscapesMetricNames)
{
    MetricsRegistry r;
    r.counter("quote\"back\\slash").inc(1);
    r.gauge("tab\there").set(2);
    r.histogram(std::string("ctl\x01") + "byte").observe(3);

    std::string json = r.json();
    EXPECT_NE(json.find("\"quote\\\"back\\\\slash\":1"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"tab\\there\":2"), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"ctl\\u0001byte\""), std::string::npos)
        << json;
    // No raw control bytes or unescaped quotes survive inside names.
    EXPECT_EQ(json.find('\x01'), std::string::npos);
    EXPECT_EQ(json.find('\t'), std::string::npos);
}

TEST(Metrics, HistogramOverflowBucketSaturates)
{
    Histogram h;
    h.observe(~uint64_t{0});       // bit width 64 -> clamped
    h.observe(uint64_t{1} << 60);  // bit width 61 -> clamped
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.bucketCount(Histogram::kBuckets - 1), 2u);
    // Everything below the overflow bucket stays empty.
    for (size_t b = 0; b + 1 < Histogram::kBuckets; ++b)
        EXPECT_EQ(h.bucketCount(b), 0u) << "bucket " << b;
    EXPECT_EQ(h.quantileUpperBound(0.5),
              (uint64_t{1} << (Histogram::kBuckets - 1)) - 1);
}

TEST(Metrics, SnapshotUnderConcurrentIncrement)
{
    // Render table() and json() while writers hammer the registry;
    // TSan (the `service` CI label) validates the synchronization,
    // this test validates nothing crashes and totals land intact.
    MetricsRegistry r;
    constexpr int kWriters = 4;
    constexpr int kPerThread = 5000;
    std::atomic<bool> done{false};
    std::vector<std::thread> workers;
    for (int t = 0; t < kWriters; ++t) {
        workers.emplace_back([&r] {
            for (int i = 0; i < kPerThread; ++i) {
                r.counter("snap.c").inc();
                r.gauge("snap.g").add(1);
                r.histogram("snap.h").observe(
                    static_cast<uint64_t>(i));
            }
        });
    }
    std::thread reader([&] {
        while (!done.load()) {
            std::string json = r.json();
            EXPECT_NE(json.find("\"counters\""), std::string::npos);
            std::ostringstream oss;
            r.table().print(oss);
        }
    });
    for (auto &w : workers)
        w.join();
    done.store(true);
    reader.join();
    EXPECT_EQ(r.counter("snap.c").value(),
              static_cast<uint64_t>(kWriters) * kPerThread);
    EXPECT_EQ(r.gauge("snap.g").value(), kWriters * kPerThread);
    EXPECT_EQ(r.histogram("snap.h").count(),
              static_cast<uint64_t>(kWriters) * kPerThread);
}

TEST(Metrics, ConcurrentUpdatesLoseNothing)
{
    MetricsRegistry r;
    constexpr int kThreads = 8;
    constexpr int kPerThread = 10000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&r] {
            // Lookup-or-create races with updates on every round.
            for (int i = 0; i < kPerThread; ++i) {
                r.counter("c").inc();
                r.histogram("h").observe(static_cast<uint64_t>(i));
            }
        });
    }
    for (auto &w : workers)
        w.join();
    EXPECT_EQ(r.counter("c").value(),
              static_cast<uint64_t>(kThreads) * kPerThread);
    EXPECT_EQ(r.histogram("h").count(),
              static_cast<uint64_t>(kThreads) * kPerThread);
}

} // namespace
} // namespace service
} // namespace uov
