#include "geometry/ivec.h"

#include <sstream>

#include "support/checked.h"
#include "support/error.h"

namespace uov {

int64_t
IVec::operator[](size_t i) const
{
    UOV_CHECK(i < _c.size(), "IVec index " << i << " out of range "
                                           << _c.size());
    return _c[i];
}

int64_t &
IVec::operator[](size_t i)
{
    UOV_CHECK(i < _c.size(), "IVec index " << i << " out of range "
                                           << _c.size());
    return _c[i];
}

IVec
IVec::operator+(const IVec &o) const
{
    UOV_CHECK(dim() == o.dim(), "dimension mismatch " << dim() << " vs "
                                                      << o.dim());
    IVec r(dim());
    for (size_t i = 0; i < dim(); ++i)
        r._c[i] = checkedAdd(_c[i], o._c[i]);
    return r;
}

IVec
IVec::operator-(const IVec &o) const
{
    UOV_CHECK(dim() == o.dim(), "dimension mismatch " << dim() << " vs "
                                                      << o.dim());
    IVec r(dim());
    for (size_t i = 0; i < dim(); ++i)
        r._c[i] = checkedSub(_c[i], o._c[i]);
    return r;
}

IVec
IVec::operator-() const
{
    IVec r(dim());
    for (size_t i = 0; i < dim(); ++i)
        r._c[i] = checkedNeg(_c[i]);
    return r;
}

IVec
IVec::operator*(int64_t s) const
{
    IVec r(dim());
    for (size_t i = 0; i < dim(); ++i)
        r._c[i] = checkedMul(_c[i], s);
    return r;
}

IVec &
IVec::operator+=(const IVec &o)
{
    *this = *this + o;
    return *this;
}

IVec &
IVec::operator-=(const IVec &o)
{
    *this = *this - o;
    return *this;
}

bool
IVec::operator<(const IVec &o) const
{
    UOV_CHECK(dim() == o.dim(), "dimension mismatch in comparison");
    return _c < o._c;
}

bool
IVec::isZero() const
{
    for (int64_t c : _c)
        if (c != 0)
            return false;
    return true;
}

bool
IVec::isLexPositive() const
{
    for (int64_t c : _c) {
        if (c > 0)
            return true;
        if (c < 0)
            return false;
    }
    return false;
}

int64_t
IVec::dot(const IVec &o) const
{
    UOV_CHECK(dim() == o.dim(), "dimension mismatch in dot product");
    int64_t acc = 0;
    for (size_t i = 0; i < dim(); ++i)
        acc = checkedAdd(acc, checkedMul(_c[i], o._c[i]));
    return acc;
}

int64_t
IVec::normSquared() const
{
    return dot(*this);
}

int64_t
IVec::norm1() const
{
    int64_t acc = 0;
    for (int64_t c : _c)
        acc = checkedAdd(acc, checkedAbs(c));
    return acc;
}

int64_t
IVec::normInf() const
{
    int64_t m = 0;
    for (int64_t c : _c) {
        int64_t a = checkedAbs(c);
        if (a > m)
            m = a;
    }
    return m;
}

int64_t
IVec::content() const
{
    int64_t g = 0;
    for (int64_t c : _c)
        g = gcd64(g, c);
    return g;
}

IVec
IVec::dividedBy(int64_t s) const
{
    UOV_CHECK(s != 0, "division by zero");
    IVec r(dim());
    for (size_t i = 0; i < dim(); ++i) {
        UOV_CHECK(_c[i] % s == 0,
                  s << " does not divide coordinate " << _c[i]);
        r._c[i] = _c[i] / s;
    }
    return r;
}

std::string
IVec::str() const
{
    std::ostringstream oss;
    oss << *this;
    return oss.str();
}

size_t
IVec::hash() const
{
    // FNV-1a over the coordinate bytes; stable and fast for short vectors.
    size_t h = 1469598103934665603ULL;
    for (int64_t c : _c) {
        auto u = static_cast<uint64_t>(c);
        for (int b = 0; b < 8; ++b) {
            h ^= (u >> (8 * b)) & 0xff;
            h *= 1099511628211ULL;
        }
    }
    return h;
}

std::ostream &
operator<<(std::ostream &os, const IVec &v)
{
    os << "(";
    for (size_t i = 0; i < v.dim(); ++i) {
        if (i)
            os << ", ";
        os << v[i];
    }
    os << ")";
    return os;
}

} // namespace uov
