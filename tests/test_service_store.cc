/**
 * @file
 * Unit tests for the persistent result store and its integration with
 * the query service: payload round-trips, torn-tail truncation,
 * checksum rejection, fail-point rollback, compaction, warm-restart
 * byte-identity with zero searches, store hits after cache eviction,
 * and graceful storeless degradation when the store cannot open.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "service/executor.h"
#include "service/store.h"
#include "support/failpoint.h"

namespace uov {
namespace service {
namespace {

namespace fs = std::filesystem;

/** Per-test scratch file, removed on destruction. */
struct ScratchPath
{
    std::string path;
    explicit ScratchPath(const std::string &tag)
        : path((fs::temp_directory_path() /
                ("uov-store-test-" + tag + "-" +
                 std::to_string(static_cast<long>(::getpid()))))
                   .string())
    {
        std::error_code ec;
        fs::remove(path, ec);
    }
    ~ScratchPath()
    {
        std::error_code ec;
        fs::remove(path, ec);
    }
};

/** Distinct same-shaped keys: {(1,0),(k,1)} for varying k. */
CanonicalKey
keyFor(int64_t k)
{
    return makeKey(Stencil({IVec{1, 0}, IVec{k, 1}}),
                   SearchObjective::ShortestVector, std::nullopt,
                   std::nullopt);
}

ServiceAnswer
answerFor(int64_t k)
{
    ServiceAnswer a;
    a.best_uov = IVec{k, 1};
    a.best_objective = k * k + 1;
    a.initial_objective = 4 * a.best_objective;
    a.canonical_deps = 2;
    a.cert = {{1, 0}, {0, 1}};
    return a;
}

uint64_t
fileSize(const std::string &path)
{
    return static_cast<uint64_t>(fs::file_size(path));
}

TEST(ResultStorePayload, RoundTripsEveryField)
{
    CanonicalKey key =
        makeKey(Stencil({IVec{1, -2}, IVec{1, 3}}),
                SearchObjective::BoundedStorage, IVec{0, 0},
                IVec{7, 9}, /*deadline_ms=*/5);
    ServiceAnswer answer = answerFor(3);
    answer.degraded = true;
    answer.degraded_reason = "deadline";

    std::string payload = ResultStore::encodePayload(key, answer);
    CanonicalKey key2;
    ServiceAnswer answer2;
    ASSERT_TRUE(ResultStore::decodePayload(payload, key2, answer2));
    EXPECT_TRUE(key2 == key);
    EXPECT_EQ(answer2.str(), answer.str());
    EXPECT_EQ(answer2.cert, answer.cert);
}

TEST(ResultStorePayload, RejectsTruncationAndTrailingJunk)
{
    std::string payload =
        ResultStore::encodePayload(keyFor(1), answerFor(1));
    CanonicalKey key;
    ServiceAnswer answer;
    for (size_t cut = 0; cut < payload.size(); ++cut)
        EXPECT_FALSE(ResultStore::decodePayload(
            payload.substr(0, cut), key, answer))
            << "payload truncated to " << cut << " bytes decoded";
    EXPECT_FALSE(
        ResultStore::decodePayload(payload + "x", key, answer));
}

TEST(ResultStore, AppendLookupSurvivesReopen)
{
    ScratchPath scratch("reopen");
    {
        ResultStore store(scratch.path);
        EXPECT_TRUE(store.append(keyFor(1), answerFor(1)));
        EXPECT_TRUE(store.append(keyFor(2), answerFor(2)));
        auto st = store.stats();
        EXPECT_EQ(st.appends, 2u);
        EXPECT_EQ(st.entries, 2u);
    }
    ResultStore reopened(scratch.path);
    auto st = reopened.stats();
    EXPECT_EQ(st.records_loaded, 2u);
    EXPECT_EQ(st.truncated_bytes, 0u);
    auto got = reopened.lookup(keyFor(1));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->str(), answerFor(1).str());
    EXPECT_FALSE(reopened.lookup(keyFor(9)).has_value());
}

TEST(ResultStore, LastRecordPerKeyWins)
{
    ScratchPath scratch("lastwins");
    ResultStore store(scratch.path);
    ServiceAnswer first = answerFor(1);
    ServiceAnswer second = answerFor(1);
    second.degraded = true;
    second.degraded_reason = "deadline";
    EXPECT_TRUE(store.append(keyFor(1), first));
    EXPECT_TRUE(store.append(keyFor(1), second));
    auto got = store.lookup(keyFor(1));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->str(), second.str());
    EXPECT_EQ(store.stats().entries, 1u);
}

TEST(ResultStore, TornTailIsTruncatedAndRepairIsIdempotent)
{
    ScratchPath scratch("torn");
    {
        ResultStore store(scratch.path);
        EXPECT_TRUE(store.append(keyFor(1), answerFor(1)));
        EXPECT_TRUE(store.append(keyFor(2), answerFor(2)));
    }
    uint64_t clean_size = fileSize(scratch.path);
    {
        // A crash mid-append tears the tail: garbage frame bytes.
        std::ofstream f(scratch.path,
                        std::ios::binary | std::ios::app);
        f.write("\x07\x00\x00\x00junk", 8);
    }
    {
        ResultStore store(scratch.path);
        auto st = store.stats();
        EXPECT_EQ(st.records_loaded, 2u);
        EXPECT_EQ(st.truncated_bytes, 8u);
        EXPECT_TRUE(store.lookup(keyFor(2)).has_value());
    }
    // The repair rewrote the validated prefix; a second open sees a
    // clean log of the original size.
    EXPECT_EQ(fileSize(scratch.path), clean_size);
    ResultStore again(scratch.path);
    EXPECT_EQ(again.stats().truncated_bytes, 0u);
    EXPECT_EQ(again.stats().records_loaded, 2u);
}

TEST(ResultStore, CorruptedRecordDropsItAndItsSuffix)
{
    ScratchPath scratch("corrupt");
    uint64_t first_record_end = 0;
    {
        ResultStore store(scratch.path);
        EXPECT_TRUE(store.append(keyFor(1), answerFor(1)));
        first_record_end = fileSize(scratch.path);
        EXPECT_TRUE(store.append(keyFor(2), answerFor(2)));
    }
    {
        // Flip one payload byte inside record 2.
        std::fstream f(scratch.path, std::ios::in | std::ios::out |
                                         std::ios::binary);
        f.seekp(static_cast<std::streamoff>(first_record_end + 12));
        char byte = 0;
        f.seekg(static_cast<std::streamoff>(first_record_end + 12));
        f.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0x01);
        f.seekp(static_cast<std::streamoff>(first_record_end + 12));
        f.write(&byte, 1);
    }
    ResultStore store(scratch.path);
    EXPECT_EQ(store.stats().records_loaded, 1u);
    EXPECT_GT(store.stats().truncated_bytes, 0u);
    EXPECT_TRUE(store.lookup(keyFor(1)).has_value());
    EXPECT_FALSE(store.lookup(keyFor(2)).has_value());
}

TEST(ResultStore, RefusesForeignFiles)
{
    ScratchPath scratch("foreign");
    {
        std::ofstream f(scratch.path, std::ios::binary);
        f << "NOTUOVST this is somebody else's file";
    }
    EXPECT_THROW(ResultStore store(scratch.path), UovUserError);
    // And the foreign file is left untouched.
    std::ifstream f(scratch.path, std::ios::binary);
    std::string head(8, '\0');
    f.read(head.data(), 8);
    EXPECT_EQ(head, "NOTUOVST");
}

TEST(ResultStore, FailedWriteRollsBackCompletely)
{
    for (const char *site : {"store_write", "store_fsync"}) {
        ScratchPath scratch(std::string("rollback-") + site);
        ResultStore store(scratch.path);
        EXPECT_TRUE(store.append(keyFor(1), answerFor(1)));
        uint64_t size_before = fileSize(scratch.path);
        {
            failpoint::ScopedFailPoints scope;
            failpoint::Config config;
            config.probability = 1.0;
            config.action = failpoint::Action::Throw;
            failpoint::Registry::instance().arm(site, config);
            EXPECT_FALSE(store.append(keyFor(2), answerFor(2)))
                << site;
        }
        // Rolled back: no torn bytes on disk, no index entry, and
        // the store still accepts appends afterwards.
        EXPECT_EQ(fileSize(scratch.path), size_before) << site;
        EXPECT_FALSE(store.lookup(keyFor(2)).has_value()) << site;
        EXPECT_TRUE(store.append(keyFor(3), answerFor(3))) << site;
        auto st = store.stats();
        EXPECT_EQ(st.appends, 2u) << site;
        EXPECT_EQ(st.append_errors, 1u) << site;

        ResultStore reopened(scratch.path);
        EXPECT_EQ(reopened.stats().records_loaded, 2u) << site;
        EXPECT_EQ(reopened.stats().truncated_bytes, 0u) << site;
    }
}

TEST(ResultStore, CompactDropsSupersededRecords)
{
    ScratchPath scratch("compact");
    ResultStore store(scratch.path);
    for (int round = 0; round < 3; ++round)
        for (int64_t k = 1; k <= 2; ++k)
            EXPECT_TRUE(store.append(keyFor(k), answerFor(k)));
    uint64_t before = fileSize(scratch.path);
    uint64_t reclaimed = store.compact();
    EXPECT_GT(reclaimed, 0u);
    EXPECT_EQ(fileSize(scratch.path), before - reclaimed);
    EXPECT_EQ(store.stats().entries, 2u);
    ASSERT_TRUE(store.lookup(keyFor(1)).has_value());

    ResultStore reopened(scratch.path);
    EXPECT_EQ(reopened.stats().records_loaded, 2u);
    EXPECT_EQ(reopened.lookup(keyFor(2))->str(), answerFor(2).str());
}

/** Protocol requests for a few distinct stencils. */
std::vector<Request>
someRequests()
{
    std::vector<Request> reqs;
    for (int64_t k = 1; k <= 4; ++k) {
        Request r;
        r.index = reqs.size() + 1;
        r.deps = {IVec{1, 0}, IVec{k, 1}};
        r.objective = SearchObjective::ShortestVector;
        reqs.push_back(std::move(r));
    }
    return reqs;
}

TEST(ServiceStore, WarmRestartAnswersByteIdenticalWithZeroSearches)
{
    ScratchPath scratch("svc-restart");
    std::vector<Request> reqs = someRequests();
    std::vector<std::string> first;
    {
        ServiceOptions so;
        so.store_path = scratch.path;
        MetricsRegistry metrics;
        QueryService svc(so, metrics);
        ThreadPool pool(2);
        first = runBatch(svc, reqs, pool);
        EXPECT_EQ(svc.searchesExecuted(), reqs.size());
    }
    for (size_t cache_bytes : {size_t{64} << 20, size_t{0}}) {
        ServiceOptions so;
        so.store_path = scratch.path;
        so.cache_bytes = cache_bytes;
        MetricsRegistry metrics;
        QueryService svc(so, metrics);
        ThreadPool pool(2);
        std::vector<std::string> replay = runBatch(svc, reqs, pool);
        EXPECT_EQ(replay, first) << "cache_bytes=" << cache_bytes;
        EXPECT_EQ(svc.searchesExecuted(), 0u)
            << "cache_bytes=" << cache_bytes;
        if (cache_bytes == 0)
            EXPECT_EQ(
                metrics.counter("service.store.hits").value(),
                reqs.size());
        else
            EXPECT_EQ(
                metrics.counter("service.store.preloaded").value(),
                reqs.size());
    }
}

TEST(ServiceStore, EvictedEntriesAreServedFromDiskWithoutASearch)
{
    // A cache far too small for even one entry forces every insert
    // to evict immediately; the store must still absorb each answer
    // and serve every repeat, keeping the search count flat.
    ScratchPath scratch("svc-evict");
    ServiceOptions so;
    so.store_path = scratch.path;
    so.cache_bytes = 64; // smaller than any entry: constant churn
    MetricsRegistry metrics;
    QueryService svc(so, metrics);
    ThreadPool pool(2);

    std::vector<Request> reqs = someRequests();
    std::vector<std::string> first = runBatch(svc, reqs, pool);
    uint64_t searches = svc.searchesExecuted();
    EXPECT_EQ(searches, reqs.size());

    // Every repeat is evicted-then-rehit: cache misses, store hits,
    // and -- the satellite's contract -- the searches counter does
    // not move.
    std::vector<std::string> again = runBatch(svc, reqs, pool);
    EXPECT_EQ(again, first);
    EXPECT_EQ(svc.searchesExecuted(), searches);
    EXPECT_GE(metrics.counter("service.store.hits").value(),
              reqs.size());
}

TEST(ServiceStore, UnopenableStoreDegradesToStorelessService)
{
    ScratchPath scratch("svc-noopen");
    std::vector<Request> reqs = someRequests();
    std::vector<std::string> direct = runBatchDirect(reqs);

    failpoint::ScopedFailPoints scope;
    failpoint::Config config;
    config.probability = 1.0;
    config.action = failpoint::Action::Throw;
    failpoint::Registry::instance().arm("store_open", config);

    ServiceOptions so;
    so.store_path = scratch.path;
    MetricsRegistry metrics;
    QueryService svc(so, metrics);
    EXPECT_EQ(metrics.counter("service.store.open_errors").value(),
              1u);
    ThreadPool pool(2);
    EXPECT_EQ(runBatch(svc, reqs, pool), direct);
}

} // namespace
} // namespace service
} // namespace uov
