/**
 * @file
 * Extension experiment (beyond the paper's figures): the 3-D heat
 * stencil (t, x, y) through the same pipeline -- UOV (2,0,0), two
 * planes of storage, time-skewed 3-D tiling -- swept across plane
 * sizes on the three simulated testbeds.  The paper's 2-D story
 * (natural thrashes, OV-tiled stays flat, storage-optimized is
 * untilable) recurs one dimension up.
 *
 * Execution pipeline: like Figures 9-11, sweep points run as tasks
 * on the shared thread pool, each streaming one kernel pass into all
 * machines sharing the address stream.  The MEvents/s column is
 * aggregate per-core simulation throughput for the row.
 */

#include "bench_common.h"

#include <cmath>
#include <numeric>

#include "kernels/heat3d.h"

using namespace uov;

namespace {

Heat3DConfig
configFor(const MachineConfig &machine, int64_t n)
{
    Heat3DConfig cfg;
    cfg.nx = cfg.ny = n;
    cfg.steps = 8;
    cfg.tile_t = 8;
    // Tile for L1: two tile planes of tile_x*tile_y floats.
    auto side = static_cast<int64_t>(
        std::sqrt(machine.l1.size_bytes / 8.0));
    cfg.tile_x = cfg.tile_y = std::max<int64_t>(8, side);
    return cfg;
}

std::vector<std::vector<size_t>>
machineGroups(const std::vector<MachineConfig> &machines,
              Heat3DVariant v, int64_t n)
{
    bool tiled = v == Heat3DVariant::NaturalTiled ||
                 v == Heat3DVariant::OvTiled;
    if (!tiled) {
        std::vector<size_t> all(machines.size());
        std::iota(all.begin(), all.end(), size_t{0});
        return {all};
    }
    std::vector<std::vector<size_t>> groups;
    std::vector<int64_t> keys;
    for (size_t i = 0; i < machines.size(); ++i) {
        int64_t key = configFor(machines[i], n).tile_x;
        size_t g = 0;
        while (g < keys.size() && keys[g] != key)
            ++g;
        if (g == keys.size()) {
            keys.push_back(key);
            groups.emplace_back();
        }
        groups[g].push_back(i);
    }
    return groups;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseArgs(argc, argv);
    bench::banner("extension: 3-D heat stencil scaling (UOV "
                  "(2,0,0), two planes)");

    std::vector<int64_t> sides = {32, 64, 128, 256, 512};
    if (opt.quick)
        sides = {32, 64, 128};

    auto machines = bench::paperMachines();
    machines[0].memory_bytes = 8ll << 20;
    machines[1].memory_bytes = 16ll << 20;
    machines[2].memory_bytes = 32ll << 20;

    const auto &variants = allHeat3DVariants();

    struct Meta
    {
        size_t li, vi;
    };
    std::vector<Meta> metas;
    std::vector<std::future<bench::FusedRun>> futures;
    for (size_t li = 0; li < sides.size(); ++li) {
        for (size_t vi = 0; vi < variants.size(); ++vi) {
            Heat3DVariant v = variants[vi];
            for (auto &group : machineGroups(machines, v, sides[li])) {
                Heat3DConfig cfg =
                    configFor(machines[group[0]], sides[li]);
                metas.push_back({li, vi});
                futures.push_back(ThreadPool::shared().submit(
                    [&machines, group, cfg, v] {
                        return bench::runFusedGroup(
                            machines, group,
                            [&](StreamingSim &mem, VirtualArena &arena) {
                                runHeat3D(v, cfg, mem, arena);
                            });
                    }));
            }
        }
    }

    std::vector<std::vector<std::vector<double>>> cycles(
        machines.size(),
        std::vector<std::vector<double>>(
            sides.size(), std::vector<double>(variants.size(), 0)));
    std::vector<double> row_events(sides.size(), 0);
    std::vector<double> row_ns(sides.size(), 0);
    for (size_t t = 0; t < futures.size(); ++t) {
        bench::FusedRun r = futures[t].get();
        for (size_t k = 0; k < r.machines.size(); ++k)
            cycles[r.machines[k]][metas[t].li][metas[t].vi] =
                r.cycles[k];
        row_events[metas[t].li] += static_cast<double>(r.events);
        row_ns[metas[t].li] += r.wall_ns;
    }

    const int64_t steps = 8;
    for (size_t mi = 0; mi < machines.size(); ++mi) {
        const auto &machine = machines[mi];
        Table t("heat3d cycles/iteration on " + machine.name +
                " (T=8, N=M swept)");
        std::vector<std::string> header = {"N=M"};
        for (Heat3DVariant v : variants)
            header.push_back(heat3DVariantName(v));
        header.push_back(bench::kThroughputHeader);
        t.header(header);

        for (size_t li = 0; li < sides.size(); ++li) {
            double iters = static_cast<double>(sides[li]) *
                           static_cast<double>(sides[li]) *
                           static_cast<double>(steps);
            auto row = t.addRow();
            row.cell(formatCount(sides[li]));
            for (size_t vi = 0; vi < variants.size(); ++vi)
                row.cell(cycles[mi][li][vi] / iters, 1);
            row.cell(bench::mEventsPerSec(row_events[li], row_ns[li]),
                     2);
        }
        bench::emit(t, opt);
    }

    // Shape check at the largest size on the PentiumPro (the table's
    // L1-derived tile side is 32 there, matching the seed's check).
    {
        auto vi = [&](Heat3DVariant v) {
            for (size_t i = 0; i < variants.size(); ++i)
                if (variants[i] == v)
                    return i;
            return size_t{0};
        };
        size_t last = sides.size() - 1;
        double iters = static_cast<double>(sides[last]) *
                       static_cast<double>(sides[last]) *
                       static_cast<double>(steps);
        double natural =
            cycles[0][last][vi(Heat3DVariant::Natural)] / iters;
        double ov_tiled =
            cycles[0][last][vi(Heat3DVariant::OvTiled)] / iters;
        std::cerr << "shape check @ N=M=" << sides[last] << " on "
                  << machines[0].name << ": natural="
                  << formatDouble(natural, 1)
                  << " vs ov_tiled=" << formatDouble(ov_tiled, 1)
                  << " -> " << (ov_tiled < natural ? "2-D story "
                                                     "recurs in 3-D"
                                                   : "NOT reproduced")
                  << "\n";
    }
    return 0;
}
