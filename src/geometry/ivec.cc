#include "geometry/ivec.h"

#include <sstream>

#include "support/checked.h"
#include "support/error.h"

namespace uov {

int64_t
IVec::operator[](size_t i) const
{
    UOV_CHECK(i < _size, "IVec index " << i << " out of range "
                                       << _size);
    return data()[i];
}

int64_t &
IVec::operator[](size_t i)
{
    UOV_CHECK(i < _size, "IVec index " << i << " out of range "
                                       << _size);
    return data()[i];
}

IVec
IVec::operator+(const IVec &o) const
{
    UOV_CHECK(dim() == o.dim(), "dimension mismatch " << dim() << " vs "
                                                      << o.dim());
    IVec r(dim());
    const int64_t *a = data(), *b = o.data();
    int64_t *out = r.data();
    for (size_t i = 0; i < _size; ++i)
        out[i] = checkedAdd(a[i], b[i]);
    return r;
}

IVec
IVec::operator-(const IVec &o) const
{
    UOV_CHECK(dim() == o.dim(), "dimension mismatch " << dim() << " vs "
                                                      << o.dim());
    IVec r(dim());
    const int64_t *a = data(), *b = o.data();
    int64_t *out = r.data();
    for (size_t i = 0; i < _size; ++i)
        out[i] = checkedSub(a[i], b[i]);
    return r;
}

IVec
IVec::operator-() const
{
    IVec r(dim());
    const int64_t *a = data();
    int64_t *out = r.data();
    for (size_t i = 0; i < _size; ++i)
        out[i] = checkedNeg(a[i]);
    return r;
}

IVec
IVec::operator*(int64_t s) const
{
    IVec r(dim());
    const int64_t *a = data();
    int64_t *out = r.data();
    for (size_t i = 0; i < _size; ++i)
        out[i] = checkedMul(a[i], s);
    return r;
}

IVec &
IVec::operator+=(const IVec &o)
{
    UOV_CHECK(dim() == o.dim(), "dimension mismatch " << dim() << " vs "
                                                      << o.dim());
    int64_t *a = data();
    const int64_t *b = o.data();
    for (size_t i = 0; i < _size; ++i)
        a[i] = checkedAdd(a[i], b[i]);
    return *this;
}

IVec &
IVec::operator-=(const IVec &o)
{
    UOV_CHECK(dim() == o.dim(), "dimension mismatch " << dim() << " vs "
                                                      << o.dim());
    int64_t *a = data();
    const int64_t *b = o.data();
    for (size_t i = 0; i < _size; ++i)
        a[i] = checkedSub(a[i], b[i]);
    return *this;
}

bool
IVec::operator<(const IVec &o) const
{
    UOV_CHECK(dim() == o.dim(), "dimension mismatch in comparison");
    const int64_t *a = data(), *b = o.data();
    for (size_t i = 0; i < _size; ++i) {
        if (a[i] != b[i])
            return a[i] < b[i];
    }
    return false;
}

bool
IVec::isZero() const
{
    const int64_t *a = data();
    for (size_t i = 0; i < _size; ++i)
        if (a[i] != 0)
            return false;
    return true;
}

bool
IVec::isLexPositive() const
{
    const int64_t *a = data();
    for (size_t i = 0; i < _size; ++i) {
        if (a[i] > 0)
            return true;
        if (a[i] < 0)
            return false;
    }
    return false;
}

int64_t
IVec::dot(const IVec &o) const
{
    UOV_CHECK(dim() == o.dim(), "dimension mismatch in dot product");
    const int64_t *a = data(), *b = o.data();
    int64_t acc = 0;
    for (size_t i = 0; i < _size; ++i)
        acc = checkedAdd(acc, checkedMul(a[i], b[i]));
    return acc;
}

int64_t
IVec::normSquared() const
{
    return dot(*this);
}

int64_t
IVec::norm1() const
{
    const int64_t *a = data();
    int64_t acc = 0;
    for (size_t i = 0; i < _size; ++i)
        acc = checkedAdd(acc, checkedAbs(a[i]));
    return acc;
}

int64_t
IVec::normInf() const
{
    const int64_t *a = data();
    int64_t m = 0;
    for (size_t i = 0; i < _size; ++i) {
        int64_t v = checkedAbs(a[i]);
        if (v > m)
            m = v;
    }
    return m;
}

int64_t
IVec::content() const
{
    const int64_t *a = data();
    int64_t g = 0;
    for (size_t i = 0; i < _size; ++i)
        g = gcd64(g, a[i]);
    return g;
}

IVec
IVec::dividedBy(int64_t s) const
{
    UOV_CHECK(s != 0, "division by zero");
    IVec r(dim());
    const int64_t *a = data();
    int64_t *out = r.data();
    for (size_t i = 0; i < _size; ++i) {
        UOV_CHECK(a[i] % s == 0,
                  s << " does not divide coordinate " << a[i]);
        out[i] = a[i] / s;
    }
    return r;
}

std::string
IVec::str() const
{
    std::ostringstream oss;
    oss << *this;
    return oss.str();
}

size_t
IVec::hash() const
{
    // FNV-1a over the coordinate bytes; stable and fast for short vectors.
    size_t h = 1469598103934665603ULL;
    const int64_t *a = data();
    for (size_t i = 0; i < _size; ++i) {
        auto u = static_cast<uint64_t>(a[i]);
        for (int b = 0; b < 8; ++b) {
            h ^= (u >> (8 * b)) & 0xff;
            h *= 1099511628211ULL;
        }
    }
    return h;
}

std::ostream &
operator<<(std::ostream &os, const IVec &v)
{
    os << "(";
    for (size_t i = 0; i < v.dim(); ++i) {
        if (i)
            os << ", ";
        os << v[i];
    }
    os << ")";
    return os;
}

} // namespace uov
