/**
 * @file
 * Unit tests for the batch executor: protocol parsing (including every
 * rejection path), request-ordered responses, byte-identity with the
 * single-threaded direct reference at several thread counts, and the
 * cache collapsing duplicate queries to one search per canonical key.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "codegen/jit.h"
#include "service/executor.h"
#include "support/failpoint.h"

namespace uov {
namespace service {
namespace {

constexpr uint64_t kVisitCap = 2'000;

TEST(Executor, ParsesShortestQuery)
{
    Request r = parseRequestLine(
        "query shortest deps [1,0] [0,1] [1,1]", 3);
    EXPECT_TRUE(r.error.empty()) << r.error;
    EXPECT_EQ(r.index, 3u);
    EXPECT_EQ(r.objective, SearchObjective::ShortestVector);
    ASSERT_EQ(r.deps.size(), 3u);
    EXPECT_EQ(r.deps[0], (IVec{1, 0}));
    EXPECT_FALSE(r.isg_lo.has_value());
}

TEST(Executor, ParsesStorageQueryWithBounds)
{
    Request r = parseRequestLine(
        "query storage bounds 0..17 0..99 deps [1,-1] [1,0] [1,1]", 1);
    EXPECT_TRUE(r.error.empty()) << r.error;
    EXPECT_EQ(r.objective, SearchObjective::BoundedStorage);
    ASSERT_TRUE(r.isg_lo.has_value());
    EXPECT_EQ(*r.isg_lo, (IVec{0, 0}));
    EXPECT_EQ(*r.isg_hi, (IVec{17, 99}));
}

TEST(Executor, RejectsMalformedLines)
{
    struct Case
    {
        const char *line;
        const char *substring;
    };
    const Case cases[] = {
        {"solve shortest deps [1,0]", "expected 'query'"},
        {"query fastest deps [1,0]", "bad objective"},
        {"query shortest", "missing 'deps'"},
        {"query shortest deps", "'deps' needs at least one vector"},
        {"query shortest deps (1,0)", "bad dependence"},
        {"query shortest deps [1,x]", "bad dependence"},
        {"query storage deps [1,0]", "storage query needs 'bounds'"},
        {"query shortest bounds 0..3 deps [1,0]",
         "'bounds' is only valid for storage, native, and tune "
        "queries"},
        {"query native deps [1,0]", "native query needs 'bounds'"},
        {"query storage bounds deps [1,0]",
         "'bounds' needs at least one range"},
        {"query storage bounds 0-3 deps [1,0]", "bad range"},
        {"query storage bounds 5..3 deps [1,0]", "empty range"},
        {"query storage bounds 0..9 deps [1,0]",
         "does not match dependence rank"},
    };
    for (const Case &c : cases) {
        Request r = parseRequestLine(c.line, 1);
        EXPECT_NE(r.error.find(c.substring), std::string::npos)
            << "line '" << c.line << "' produced error '" << r.error
            << "'";
    }
}

TEST(Executor, ParsesNativeQuery)
{
    Request r = parseRequestLine(
        "query native bounds 0..9 0..9 deps [1,-1] [1,0] [1,1]", 2);
    EXPECT_TRUE(r.error.empty()) << r.error;
    EXPECT_TRUE(r.native);
    ASSERT_TRUE(r.isg_lo.has_value());
    EXPECT_EQ(*r.isg_hi, (IVec{9, 9}));
}

TEST(Executor, NativeQueryAnswersWithVerifiedTimings)
{
    if (!JitCompiler::hostCompilerAvailable())
        GTEST_SKIP() << "no host C compiler on PATH";
    Request r = parseRequestLine(
        "query native bounds 0..9 0..9 deps [1,-1] [1,0] [1,1]", 1);
    ASSERT_TRUE(r.error.empty()) << r.error;
    std::string resp = runNativeRequest(r);
    EXPECT_EQ(resp.rfind("answer 1 native uov=(2, 0) ", 0), 0u)
        << resp;
    EXPECT_NE(resp.find(" interp_ns="), std::string::npos) << resp;
    EXPECT_NE(resp.find(" speedup_rtile="), std::string::npos) << resp;
    EXPECT_NE(resp.find(" verified=ok"), std::string::npos) << resp;

    // The direct batch path routes native requests the same way.
    std::vector<std::string> direct = runBatchDirect({r});
    ASSERT_EQ(direct.size(), 1u);
    EXPECT_EQ(direct[0].rfind("answer 1 native ", 0), 0u) << direct[0];
}

TEST(Executor, SkipsCommentsAndBlankLines)
{
    std::istringstream in(
        "# corpus of queries\n"
        "\n"
        "query shortest deps [1,0] [0,1]   # trailing comment\n"
        "   \t\n"
        "bogus line\n");
    std::vector<Request> reqs = parseRequests(in);
    ASSERT_EQ(reqs.size(), 2u);
    EXPECT_EQ(reqs[0].index, 1u);
    EXPECT_TRUE(reqs[0].error.empty());
    EXPECT_EQ(reqs[1].index, 2u);
    EXPECT_FALSE(reqs[1].error.empty());
}

std::vector<Request>
mixedBatch()
{
    std::istringstream in(
        "query shortest deps [1,0] [0,1] [1,1]\n"
        "query shortest deps [1,1] [0,1] [1,0]\n" // same, reordered
        "query shortest deps [1,0] [2,0] [3,0]\n" // canonicalizes
        "query shortest deps [1,0] [3,0]\n"       // ...to this one
        "query storage bounds 0..7 0..7 deps [1,-1] [1,0] [1,1]\n"
        "query storage bounds 0..7 0..7 deps [1,1] [1,0] [1,-1]\n"
        "not even close\n"
        "query storage deps [1,0]\n" // storage without bounds
        "query shortest deps [1,0] [0,1] [1,1]\n");
    return parseRequests(in);
}

TEST(Executor, BatchMatchesDirectReferenceAtEveryThreadCount)
{
    std::vector<Request> reqs = mixedBatch();
    std::vector<std::string> direct = runBatchDirect(reqs, kVisitCap);
    ASSERT_EQ(direct.size(), reqs.size());
    // Responses carry the request index in order.
    EXPECT_EQ(direct[6].rfind("error 7 ", 0), 0u) << direct[6];
    EXPECT_EQ(direct[0].rfind("answer 1 ", 0), 0u) << direct[0];

    for (unsigned threads : {1u, 4u}) {
        ServiceOptions opt;
        opt.max_visits = kVisitCap;
        MetricsRegistry metrics;
        QueryService svc(opt, metrics);
        ThreadPool pool(threads);
        std::vector<std::string> got = runBatch(svc, reqs, pool);
        EXPECT_EQ(got, direct) << "threads=" << threads;
    }
}

TEST(Executor, NoCacheStillMatchesDirect)
{
    std::vector<Request> reqs = mixedBatch();
    std::vector<std::string> direct = runBatchDirect(reqs, kVisitCap);
    ServiceOptions opt;
    opt.cache_bytes = 0;
    opt.max_visits = kVisitCap;
    MetricsRegistry metrics;
    QueryService svc(opt, metrics);
    ThreadPool pool(2);
    EXPECT_EQ(runBatch(svc, reqs, pool), direct);
}

TEST(Executor, CacheCollapsesSearchesToDistinctCanonicalKeys)
{
    std::vector<Request> reqs = mixedBatch();
    ServiceOptions opt;
    opt.max_visits = kVisitCap;
    MetricsRegistry metrics;
    QueryService svc(opt, metrics);
    // One worker: no single-flight races, so every duplicate must be
    // a cache hit and the search count equals the distinct canonical
    // keys among the 7 well-formed requests:
    //   {(1,0),(0,1),(1,1)} shortest   (requests 1, 2, 9)
    //   {(1,0),(3,0)}       shortest   (requests 3, 4 -- request 3
    //                                   canonicalizes to request 4)
    //   5-point storage over [0,7]^2   (requests 5, 6)
    ThreadPool pool(1);
    runBatch(svc, reqs, pool);
    EXPECT_EQ(svc.searchesExecuted(), 3u);
    auto st = svc.cacheStats();
    EXPECT_EQ(st.misses, 3u);
    EXPECT_EQ(st.hits, 4u);
    // Every response for the same canonical key after the first is a
    // hit: hits + misses covers exactly the well-formed requests.
    EXPECT_EQ(st.hits + st.misses, 7u);
}

TEST(Executor, ParsesPerRequestDeadline)
{
    Request r = parseRequestLine(
        "query shortest deadline_ms 250 deps [1,0] [0,1]", 1);
    EXPECT_TRUE(r.error.empty()) << r.error;
    EXPECT_EQ(r.deadline_ms, 250);

    // The default applies when the line carries no deadline...
    Request d = parseRequestLine("query shortest deps [1,0]", 1, 40);
    EXPECT_TRUE(d.error.empty()) << d.error;
    EXPECT_EQ(d.deadline_ms, 40);
    // ...and an explicit deadline overrides it, including -1.
    Request o = parseRequestLine(
        "query shortest deadline_ms -1 deps [1,0]", 1, 40);
    EXPECT_TRUE(o.error.empty()) << o.error;
    EXPECT_EQ(o.deadline_ms, -1);
    // No deadline anywhere means unbounded.
    Request u = parseRequestLine("query shortest deps [1,0]", 1);
    EXPECT_EQ(u.deadline_ms, -1);

    // Storage queries take the deadline before 'bounds'.
    Request s = parseRequestLine(
        "query storage deadline_ms 0 bounds 0..3 0..3 "
        "deps [1,0] [0,1]", 2);
    EXPECT_TRUE(s.error.empty()) << s.error;
    EXPECT_EQ(s.deadline_ms, 0);
}

TEST(Executor, RejectsBadDeadlines)
{
    struct Case
    {
        const char *line;
        const char *substring;
    };
    const Case cases[] = {
        {"query shortest deadline_ms deps [1,0]", "bad deadline"},
        {"query shortest deadline_ms", "needs a millisecond count"},
        {"query shortest deadline_ms -2 deps [1,0]", "bad deadline"},
        {"query shortest deadline_ms 10x deps [1,0]", "bad deadline"},
    };
    for (const Case &c : cases) {
        Request r = parseRequestLine(c.line, 1);
        EXPECT_NE(r.error.find(c.substring), std::string::npos)
            << "line '" << c.line << "' produced error '" << r.error
            << "'";
    }
}

std::vector<Request>
deadlineBatch()
{
    // Mixed good, bad, zero-deadline, and explicit-deadline lines:
    // the determinism contract covers deadline_ms in {-1, 0}, so this
    // batch must stay byte-identical between service and direct.
    std::istringstream in(
        "query shortest deps [1,0] [0,1] [1,1]\n"
        "query shortest deadline_ms 0 deps [1,0] [0,1] [1,1]\n"
        "query storage deadline_ms 0 bounds 0..7 0..7 "
        "deps [1,-1] [1,0] [1,1]\n"
        "query shortest deadline_ms -2 deps [1,0]\n" // parse error
        "malformed\n"
        "query shortest deadline_ms -1 deps [1,0] [3,0]\n"
        "query shortest deadline_ms 0 deps [1,0] [0,1] [1,1]\n");
    return parseRequests(in);
}

TEST(Executor, ZeroDeadlineBatchStaysByteIdentical)
{
    std::vector<Request> reqs = deadlineBatch();
    std::vector<std::string> direct = runBatchDirect(reqs, kVisitCap);
    ASSERT_EQ(direct.size(), reqs.size());
    // Zero-deadline answers degrade deterministically to ov_o.
    EXPECT_NE(direct[1].find(" degraded=deadline"), std::string::npos)
        << direct[1];
    EXPECT_EQ(direct[1].rfind("answer 2 ", 0), 0u) << direct[1];
    EXPECT_EQ(direct[3].rfind("error 4 ", 0), 0u) << direct[3];
    // An unbounded duplicate of a zero-deadline query stays optimal.
    EXPECT_EQ(direct[0].find(" degraded="), std::string::npos)
        << direct[0];

    for (unsigned threads : {1u, 4u}) {
        ServiceOptions opt;
        opt.max_visits = kVisitCap;
        MetricsRegistry metrics;
        QueryService svc(opt, metrics);
        ThreadPool pool(threads);
        std::vector<std::string> got = runBatch(svc, reqs, pool);
        EXPECT_EQ(got, direct) << "threads=" << threads;
        // Classification counters partition the batch.
        uint64_t optimal = metrics.counter("service.optimal").value();
        uint64_t degraded =
            metrics.counter("service.degraded").value();
        uint64_t errors =
            metrics.counter("service.request_errors").value();
        EXPECT_EQ(optimal + degraded + errors, reqs.size());
        EXPECT_EQ(errors, 2u);
        EXPECT_EQ(degraded, 3u);
    }
}

TEST(Executor, FailPointErrorsAreIsolatedPerRequest)
{
    std::vector<Request> reqs = mixedBatch();
    failpoint::ScopedFailPoints scope("task_start:1");
    ServiceOptions opt;
    opt.max_visits = kVisitCap;
    MetricsRegistry metrics;
    QueryService svc(opt, metrics);
    ThreadPool pool(2);
    std::vector<std::string> got = runBatch(svc, reqs, pool);
    ASSERT_EQ(got.size(), reqs.size());
    // Every request fails, none is dropped, and the batch finishes.
    for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].rfind("error " + std::to_string(i + 1) + " ",
                               0),
                  0u)
            << got[i];
    }
    EXPECT_EQ(metrics.counter("service.request_errors").value(),
              reqs.size());
    EXPECT_EQ(metrics.counter("service.optimal").value(), 0u);
    EXPECT_GE(metrics.counter("service.failpoint_fires").value(),
              reqs.size());
}

TEST(Executor, WatchdogFlagsOverdueRequestsOnce)
{
    MetricsRegistry metrics;
    Counter &overdue = metrics.counter("service.watchdog.overdue");
    Watchdog dog(0, &overdue); // poll_ms 0: manual flagOverdue()
    dog.start(0, 0);  // 0 ms deadline: instantly 2x overdue
    dog.start(1, -1); // unbounded: never flagged
    dog.start(2, 60'000); // far future: not flagged
    EXPECT_EQ(dog.flagOverdue(), 1u);
    // Already-flagged entries are not re-flagged.
    EXPECT_EQ(dog.flagOverdue(), 0u);
    EXPECT_EQ(overdue.value(), 1u);
    dog.finish(0);
    dog.finish(1);
    dog.finish(2);
    EXPECT_EQ(dog.flagOverdue(), 0u);
}

TEST(Executor, WatchdogCountsEachOverdueRequestExactlyOnce)
{
    MetricsRegistry metrics;
    Counter &overdue = metrics.counter("service.watchdog.overdue");
    Watchdog dog(0, &overdue); // poll_ms 0: manual flagOverdue()
    // Three instantly-overdue requests (0 ms deadline is already past
    // its 2x mark), flagged across repeated polls: the counter ends
    // at exactly three no matter how often the poll loop runs.
    dog.start(0, 0);
    dog.start(1, 0);
    EXPECT_EQ(dog.flagOverdue(), 2u);
    dog.start(2, 0);
    EXPECT_EQ(dog.flagOverdue(), 1u);
    for (int poll = 0; poll < 5; ++poll)
        EXPECT_EQ(dog.flagOverdue(), 0u);
    EXPECT_EQ(overdue.value(), 3u);
}

TEST(Executor, WatchdogNeverFlagsOnTimeRequests)
{
    MetricsRegistry metrics;
    Counter &overdue = metrics.counter("service.watchdog.overdue");
    Watchdog dog(0, &overdue);
    // Far-future deadlines and unbounded requests survive any number
    // of polls unflagged; finishing them keeps the counter at zero.
    dog.start(0, 60'000);
    dog.start(1, -1);
    for (int poll = 0; poll < 5; ++poll)
        EXPECT_EQ(dog.flagOverdue(), 0u);
    dog.finish(0);
    dog.finish(1);
    EXPECT_EQ(dog.flagOverdue(), 0u);
    EXPECT_EQ(overdue.value(), 0u);
}

TEST(Executor, WatchdogFinishedRequestCannotBecomeOverdue)
{
    MetricsRegistry metrics;
    Counter &overdue = metrics.counter("service.watchdog.overdue");
    Watchdog dog(0, &overdue);
    // A request that finishes before any poll is gone: later polls
    // cannot flag it even though its deadline has long passed.
    dog.start(0, 0);
    dog.finish(0);
    EXPECT_EQ(dog.flagOverdue(), 0u);
    EXPECT_EQ(overdue.value(), 0u);
}

TEST(Executor, WatchdogWithoutCounterStillFlags)
{
    Watchdog dog(0, nullptr);
    dog.start(0, 0);
    EXPECT_EQ(dog.flagOverdue(), 1u);
    EXPECT_EQ(dog.flagOverdue(), 0u);
}

} // namespace
} // namespace service
} // namespace uov
