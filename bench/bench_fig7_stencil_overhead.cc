/**
 * @file
 * Reproduces Figure 7: overhead of the 5-point stencil versions at
 * problem sizes that fit in L1 cache -- cycles per iteration on the
 * three simulated testbeds.  With the working set cache-resident, the
 * differences are pure indexing/copy overhead, and all versions land
 * close together (the paper's observation).
 */

#include "bench_common.h"

#include "kernels/stencil5.h"

using namespace uov;

namespace {

double
simCyclesPerIter(Stencil5Variant v, const Stencil5Config &cfg,
                 const MachineConfig &machine, int reps)
{
    MemorySystem ms(machine);
    SimMem mem{&ms};
    for (int r = 0; r < reps; ++r) {
        VirtualArena arena; // same addresses every rep: warm caches
        runStencil5(v, cfg, mem, arena);
    }
    double iters = static_cast<double>(cfg.length) *
                   static_cast<double>(cfg.steps) * reps;
    return ms.cycles() / iters;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseArgs(argc, argv);
    bench::banner("Figure 7 (5-point stencil overhead, in-cache "
                  "sizes)");

    // Natural storage (T+1)*L*4B = 8 KiB: fits every machine's L1.
    Stencil5Config cfg;
    cfg.length = 128;
    cfg.steps = 15;
    const int reps = opt.quick ? 4 : 16;

    const Stencil5Variant versions[] = {
        Stencil5Variant::StorageOptimized,
        Stencil5Variant::Natural,
        Stencil5Variant::OvInterleaved,
        Stencil5Variant::Ov,
    };

    Table t("Figure 7: cycles per iteration, L=" +
            std::to_string(cfg.length) + ", T=" +
            std::to_string(cfg.steps) + " (fits L1)");
    std::vector<std::string> header = {"version"};
    for (const auto &m : bench::paperMachines())
        header.push_back(m.name);
    t.header(header);

    double max_spread = 0;
    for (Stencil5Variant v : versions) {
        auto row = t.addRow();
        row.cell(stencil5VariantName(v));
        for (const auto &machine : bench::paperMachines()) {
            double cpi = simCyclesPerIter(v, cfg, machine, reps);
            row.cell(cpi, 2);
        }
    }
    // Spread check: per machine, max/min across versions.
    for (const auto &machine : bench::paperMachines()) {
        double lo = 1e30, hi = 0;
        for (Stencil5Variant v : versions) {
            double cpi = simCyclesPerIter(v, cfg, machine, reps);
            lo = std::min(lo, cpi);
            hi = std::max(hi, cpi);
        }
        max_spread = std::max(max_spread, hi / lo);
    }
    bench::emit(t, opt);

    std::cout << "paper's claim: with in-cache sizes the versions "
                 "perform similarly (negligible OV overhead).\n"
              << "max cross-version spread here: "
              << formatDouble(max_spread, 2) << "x\n";
    return 0;
}
