/**
 * @file
 * Value-based dependence analysis for uniform loop nests (Section 2).
 *
 * In the paper's program class -- a single write per array, affine
 * accesses sharing the write's linear part -- the last-write tree of
 * every read collapses to a constant distance vector: the value read
 * at iteration q was written at q - d, where d is determined by the
 * access offsets.  This module computes those distances, validates the
 * regular-stencil assumptions instead of assuming them, and classifies
 * each read as loop-carried flow, within-iteration import, or boundary
 * import.
 */

#ifndef UOV_ANALYSIS_DEPENDENCE_H
#define UOV_ANALYSIS_DEPENDENCE_H

#include <string>
#include <vector>

#include "core/stencil.h"
#include "ir/program.h"

namespace uov {

/** Classification of one read access. */
enum class ReadKind
{
    /** Value produced by an earlier in-nest iteration (flow dep). */
    LoopCarriedFlow,
    /**
     * Distance is zero or lexicographically negative: under the
     * original schedule the producing iteration has not run, so the
     * read always sees pre-loop (imported) data.
     */
    Import,
};

/** One analyzed read. */
struct ReadDependence
{
    size_t read_index;  ///< position in Statement::reads
    IVec distance;      ///< consumer - producer (write-to-read)
    ReadKind kind;

    std::string str() const;
};

/** Full dependence summary of one statement. */
struct DependenceInfo
{
    size_t statement_index;
    std::vector<ReadDependence> reads;

    /** Distances of the loop-carried flow reads only. */
    std::vector<IVec> flowDistances() const;
};

/**
 * Analyze statement @p stmt_index of @p nest.
 *
 * @throws UovUserError when a read of the statement's own array does
 *         not share the write's (unimodular) linear part -- the
 *         regular-stencil precondition fails and no constant distance
 *         exists.  Reads of other arrays are ignored (they carry no
 *         dependence on this statement's values).
 */
DependenceInfo analyzeDependences(const LoopNest &nest,
                                  size_t stmt_index);

/**
 * The reduced-ISG stencil of the statement: its loop-carried flow
 * distances (Section 3, "reduced ISG").
 * @throws UovUserError if the statement has no loop-carried flow
 */
Stencil extractStencil(const LoopNest &nest, size_t stmt_index);

} // namespace uov

#endif // UOV_ANALYSIS_DEPENDENCE_H
